// Command hmlcheck parses and validates hypermedia markup language (HML)
// documents, optionally printing the canonical serialization, the document
// statistics and the reconstructed playout timeline.
//
// Usage:
//
//	hmlcheck [-print] [-stats] [-timeline] [file.hml ...]
//
// With no files it reads standard input. The bundled Figure 2 scenario can
// be checked with -figure2.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/hml"
	"repro/internal/scenario"
)

func main() {
	printCanon := flag.Bool("print", false, "print the canonical serialization")
	showStats := flag.Bool("stats", false, "print document statistics")
	timeline := flag.Bool("timeline", false, "print the playout timeline")
	screen := flag.String("screen", "", "render the desktop layout at the given time (e.g. 3s)")
	conflicts := flag.Bool("conflicts", false, "report overlapping simultaneous placements")
	figure2 := flag.Bool("figure2", false, "check the bundled Figure 2 scenario")
	flag.Parse()

	type input struct {
		name string
		src  string
	}
	var inputs []input
	if *figure2 {
		inputs = append(inputs, input{"figure2", hml.Figure2Source})
	}
	for _, f := range flag.Args() {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hmlcheck: %v\n", err)
			os.Exit(2)
		}
		inputs = append(inputs, input{f, string(data)})
	}
	if len(inputs) == 0 {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hmlcheck: stdin: %v\n", err)
			os.Exit(2)
		}
		inputs = append(inputs, input{"<stdin>", string(data)})
	}

	bad := 0
	for _, in := range inputs {
		doc, err := hml.Parse(in.src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: PARSE ERROR: %v\n", in.name, err)
			bad++
			continue
		}
		doc.Name = in.name
		if err := hml.Validate(doc); err != nil {
			fmt.Fprintf(os.Stderr, "%s: INVALID: %v\n", in.name, err)
			bad++
			continue
		}
		fmt.Printf("%s: ok — %q, length %s\n", in.name, doc.Title, doc.Length())
		if *showStats {
			st := hml.Statistics(doc)
			fmt.Printf("  sentences=%d headings=%d texts=%d images=%d audios=%d videos=%d sync-groups=%d links=%d (timed %d)\n",
				st.Sentences, st.Headings, st.Texts, st.Images, st.Audios, st.Videos, st.SyncGroups, st.Links, st.TimedLinks)
		}
		if *timeline {
			sc, err := scenario.FromDocument(doc)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", in.name, err)
				bad++
				continue
			}
			fmt.Print(scenario.RenderTimeline(sc, 64))
		}
		if *screen != "" || *conflicts {
			l, err := hml.BuildLayout(doc)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: layout: %v\n", in.name, err)
				bad++
				continue
			}
			if *conflicts {
				for _, c := range l.Conflicts() {
					fmt.Printf("  layout conflict: %s overlaps %s from t=%s\n", c.A, c.B, hml.FormatTime(c.From))
				}
			}
			if *screen != "" {
				at, err := hml.ParseTime(*screen)
				if err != nil {
					fmt.Fprintln(os.Stderr, "hmlcheck:", err)
					os.Exit(2)
				}
				fmt.Print(l.RenderScreen(at, 72, 18))
			}
		}
		if *printCanon {
			fmt.Print(hml.Serialize(doc))
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}

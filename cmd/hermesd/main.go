// Command hermesd runs a live Hermes multimedia server over real loopback
// sockets (TCP for control and stills, UDP for audio/video RTP), serving
// either a generated course or a directory of .hml lesson files.
//
// Usage:
//
//	hermesd -name hermes-a                      # serve a generated course
//	hermesd -name hermes-a -lessons ./lessons   # serve *.hml from a directory
//	hermesd -name hermes-a -peers hermes-b      # federate search
//	hermesd -peers hermes-b -placement lec=hermes-a+hermes-b \
//	        -redirect-watermark 0.8 -cluster-key secret   # cluster mode
//	hermesd -metrics-every 10s                  # periodic telemetry dump
//	hermesd -trace trace.jsonl                  # write event trace on exit
//	hermesd -series series.jsonl                # write metric time series on exit
//	hermesd -flight ./flightdir                 # anomaly-triggered flight dumps
//
// Users subscribe in-band via the browser, or a test user "student"/"pw"
// can be pre-created with -testuser.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/hermes"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/server"
	"repro/internal/transport"
)

func main() {
	name := flag.String("name", "hermes-a", "server host name")
	lessonsDir := flag.String("lessons", "", "directory of .hml lesson files (empty = generated course)")
	course := flag.String("course", "algorithms", "generated course name")
	units := flag.Int("units", 3, "generated course units")
	capacity := flag.Float64("capacity", 50_000_000, "admission capacity (bits/s)")
	grace := flag.Duration("grace", 30*time.Second, "suspended-connection grace period")
	heartbeatEvery := flag.Duration("heartbeat-every", time.Second, "expected client heartbeat spacing")
	livenessMisses := flag.Int("liveness-misses", 3, "missed heartbeats before a session is auto-suspended")
	peers := flag.String("peers", "", "comma-separated peer server names for federated search")
	placement := flag.String("placement", "", "cluster document placement map, doc=srvA+srvB,doc2=srvB (enables redirect/handoff)")
	redirectWatermark := flag.Float64("redirect-watermark", 0, "redirect fresh connects once reserved bandwidth reaches this fraction of capacity (0 = off)")
	sessionWatermark := flag.Int("session-watermark", 0, "redirect fresh connects once this many sessions are resident (0 = off)")
	clusterKey := flag.String("cluster-key", "", "shared HMAC key signing cross-server handoff tickets (empty = unsigned handoffs)")
	sharedFlows := flag.Bool("shared-flows", false, "fan each hot document out from one paced flow per stream (one encode, N subscribers)")
	hostmap := flag.String("hosts", "", "host=ip overrides (host=127.0.0.5,...)")
	testuser := flag.Bool("testuser", true, "pre-subscribe user student/pw")
	metricsEvery := flag.Duration("metrics-every", 0, "dump the telemetry dashboard periodically (0 = only at exit)")
	tracePath := flag.String("trace", "", "write the JSONL event trace to this file at exit")
	seriesPath := flag.String("series", "", "write the JSONL metric time series to this file at exit")
	seriesEvery := flag.Duration("series-every", 10*time.Second, "time-series snapshot interval")
	flightDir := flag.String("flight", "", "arm the flight recorder; anomaly dumps land in this directory")
	flag.Parse()

	scope := obs.NewScope(clock.NewWall())
	series := scope.EnableTimeSeries(obs.DefaultSeriesCap)
	series.Start(*seriesEvery)
	defer series.Stop()
	var flight *obs.Recorder
	if *flightDir != "" {
		flight = scope.EnableFlightRecorder(obs.RecorderOptions{Dir: *flightDir})
	}
	live := transport.NewLiveObs(scope)
	defer live.Close()
	if err := live.ParseHostMap(*hostmap); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	users := auth.NewDB()
	if *testuser {
		users.Subscribe(auth.User{
			Name: "student", Password: "pw", RealName: "Test Student",
			Email: "student@example.gr", Class: qos.Standard,
		}, time.Now())
	}

	db := server.NewDatabase()
	if *lessonsDir != "" {
		files, err := filepath.Glob(filepath.Join(*lessonsDir, "*.hml"))
		if err != nil || len(files) == 0 {
			fmt.Fprintf(os.Stderr, "hermesd: no lessons in %s\n", *lessonsDir)
			os.Exit(2)
		}
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hermesd:", err)
				os.Exit(2)
			}
			lessonName := strings.TrimSuffix(filepath.Base(f), ".hml")
			if err := db.Put(lessonName, string(data), f); err != nil {
				fmt.Fprintf(os.Stderr, "hermesd: %s: %v\n", f, err)
				os.Exit(2)
			}
		}
	} else {
		for _, l := range hermes.MakeCourse(*course, *units, 3, 10*time.Second) {
			if err := db.Put(l.Name, l.Source, l.Description); err != nil {
				fmt.Fprintln(os.Stderr, "hermesd:", err)
				os.Exit(2)
			}
		}
	}

	sopts := server.Options{
		Capacity:          *capacity,
		Grace:             *grace,
		HeartbeatEvery:    *heartbeatEvery,
		LivenessMisses:    *livenessMisses,
		Obs:               scope,
		RedirectWatermark: *redirectWatermark,
		SessionWatermark:  *sessionWatermark,
		SharedFlows:       *sharedFlows,
	}
	if *placement != "" {
		dir, err := server.ParsePlacement(*placement)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hermesd:", err)
			os.Exit(2)
		}
		sopts.Directory = dir
	}
	if *clusterKey != "" {
		sopts.ClusterKey = []byte(*clusterKey)
	}
	srv, err := server.New(*name, clock.NewWall(), live, users, db, sopts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hermesd:", err)
		os.Exit(1)
	}
	if *peers != "" {
		srv.SetPeers(strings.Split(*peers, ","))
	}
	fmt.Printf("hermesd: serving %d lessons as %q (control %s:%d)\n",
		db.Len(), *name, *name, server.ControlPort)
	for _, n := range db.Names() {
		fmt.Printf("  - %s\n", n)
	}

	// Periodic telemetry dump: registry (including the transport counters)
	// plus the tail of the event trace.
	stopDump := make(chan struct{})
	if *metricsEvery > 0 {
		go func() {
			t := time.NewTicker(*metricsEvery)
			defer t.Stop()
			for {
				select {
				case <-stopDump:
					return
				case <-t.C:
					fmt.Printf("hermesd: telemetry %s\n%s", time.Now().Format(time.RFC3339), scope.Dashboard(10))
					fmt.Print(series.Table(6))
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	close(stopDump)
	fmt.Println("hermesd: shutting down")
	fmt.Printf("hermesd: cluster redirects=%d handoffs issued=%d accepted=%d\n",
		scope.Counter("cluster_redirects").Value(),
		scope.Counter("cluster_handoffs").Value(),
		scope.Counter("cluster_handoff_accepts").Value())
	fmt.Print(scope.Registry().Table())
	fmt.Print(live.Metrics().Table())
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hermesd:", err)
			os.Exit(1)
		}
		if err := scope.Trace().WriteJSONL(f); err != nil {
			fmt.Fprintln(os.Stderr, "hermesd:", err)
		}
		f.Close()
		fmt.Printf("hermesd: wrote %d trace events to %s\n", scope.Trace().Len(), *tracePath)
	}
	if *seriesPath != "" {
		f, err := os.Create(*seriesPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hermesd:", err)
			os.Exit(1)
		}
		if err := series.WriteJSONL(f); err != nil {
			fmt.Fprintln(os.Stderr, "hermesd:", err)
		}
		f.Close()
		fmt.Printf("hermesd: wrote %d time-series samples to %s\n", series.Len(), *seriesPath)
	}
	if flight != nil {
		fmt.Printf("hermesd: flight recorder wrote %d dumps (last: %s)\n",
			flight.Dumps(), flight.LastDumpPath())
	}
}

// Command experiments runs the full reproduction harness: every figure
// (F1–F5) and every evaluated claim (E1–E8) of DESIGN.md, printing the
// tables that EXPERIMENTS.md records.
//
// Usage:
//
//	experiments [-seed N] [-quick] [-only F2,E3] [-dataplane out.json] [-verify-bench dir]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed")
	quick := flag.Bool("quick", false, "shrink parameter sweeps")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. F2,E3); empty = all")
	dataplane := flag.String("dataplane", "", "run the data-plane load benchmark and write its JSON results to this path")
	controlplane := flag.String("controlplane", "", "run the control-plane load benchmark and write its JSON results to this path")
	clusterOut := flag.String("cluster", "", "run the federated-cluster load/chaos benchmark and write its JSON results to this path")
	netsimOut := flag.String("netsim", "", "run the sharded discrete-event simulator benchmark and write its JSON results to this path")
	verifyBench := flag.String("verify-bench", "", "validate every committed BENCH_*.json under this directory against its schema and gates, then exit")
	flag.Parse()

	if *verifyBench != "" {
		summary, err := experiments.VerifyBenchFiles(*verifyBench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-verify FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(summary)
		return
	}

	if *controlplane != "" {
		tb, results, err := experiments.ControlPlane(nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "controlplane FAILED: %v\n", err)
			os.Exit(1)
		}
		buf, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "controlplane FAILED: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*controlplane, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "controlplane FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(tb)
		fmt.Printf("wrote %s\n", *controlplane)
		return
	}

	if *netsimOut != "" {
		tb, rep, err := experiments.Netsim(nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netsim FAILED: %v\n", err)
			os.Exit(1)
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "netsim FAILED: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*netsimOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "netsim FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(tb)
		fmt.Printf("wrote %s\n", *netsimOut)
		return
	}

	if *clusterOut != "" {
		tb, results, err := experiments.Cluster(nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cluster FAILED: %v\n", err)
			os.Exit(1)
		}
		buf, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "cluster FAILED: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*clusterOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cluster FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(tb)
		fmt.Printf("wrote %s\n", *clusterOut)
		return
	}

	if *dataplane != "" {
		tb, results, err := experiments.DataPlane(nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dataplane FAILED: %v\n", err)
			os.Exit(1)
		}
		buf, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dataplane FAILED: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*dataplane, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dataplane FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(tb)
		fmt.Printf("wrote %s\n", *dataplane)
		return
	}

	want := map[string]bool{}
	for _, id := range strings.Split(strings.ToUpper(*only), ",") {
		if id != "" {
			want[id] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	fail := 0
	show := func(id string, tb *stats.Table, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", id, err)
			fail++
			return
		}
		fmt.Println(tb)
	}

	if sel("F1") {
		tb, err := experiments.F1Grammar()
		show("F1", tb, err)
	}
	if sel("F2") {
		chart, tb, err := experiments.F2Timeline()
		if err == nil {
			fmt.Println("== F2 — Figure 2 timeline (reconstructed from the markup) ==")
			fmt.Println(chart)
		}
		show("F2", tb, err)
	}
	if sel("F3") {
		tb, _, err := experiments.F3EndToEnd(*seed)
		show("F3", tb, err)
	}
	if sel("F4") {
		tb, err := experiments.F4Protocol()
		show("F4", tb, err)
	}
	if sel("F5") {
		tb, _, err := experiments.F5StackSplit(*seed)
		show("F5", tb, err)
	}
	if sel("E1") {
		tb, err := experiments.E1TimeWindow(*seed, *quick)
		show("E1", tb, err)
	}
	if sel("E2") {
		tb, err := experiments.E2SkewControl(*seed)
		show("E2", tb, err)
	}
	if sel("E3") {
		tb, err := experiments.E3Grading(*seed)
		show("E3", tb, err)
	}
	if sel("E4") {
		tb, err := experiments.E4Combined(*seed)
		show("E4", tb, err)
	}
	if sel("E5") {
		tb, err := experiments.E5Admission(*seed)
		show("E5", tb, err)
	}
	if sel("E6") {
		tb, err := experiments.E6Startup(*seed)
		show("E6", tb, err)
	}
	if sel("E7") {
		tb, err := experiments.E7Suspend(*seed)
		show("E7", tb, err)
	}
	if sel("E8") {
		tb, err := experiments.E8Search(*seed, *quick)
		show("E8", tb, err)
	}
	if sel("E9") {
		tb, err := experiments.E9Scale(*seed, *quick)
		show("E9", tb, err)
	}
	if sel("E10") {
		tb, err := experiments.E10SharedUplink(*seed)
		show("E10", tb, err)
	}
	if sel("E12") {
		tb, err := experiments.E12FlightRecorder(*seed)
		show("E12", tb, err)
	}
	if sel("E13") {
		tb, err := experiments.E13Cluster()
		show("E13", tb, err)
	}
	if sel("A1") {
		tb, err := experiments.A1DegradeOrder(*seed)
		show("A1", tb, err)
	}
	if sel("A2") {
		tb, err := experiments.A2Hysteresis(*seed)
		show("A2", tb, err)
	}
	if sel("A3") {
		tb, err := experiments.A3WindowSafety(*seed)
		show("A3", tb, err)
	}
	if fail > 0 {
		os.Exit(1)
	}
}

// Command hermes is the live Hermes browser: an interactive command-line
// client that connects to hermesd servers over real loopback sockets,
// browses and plays lessons, and exercises every interactive operation of
// the service.
//
// Usage:
//
//	hermes -server hermes-a
//
// Commands at the prompt:
//
//	subscribe <user> <password> <email>   fill the subscription form
//	topics                                list this server's lessons
//	search <token>                        federated content search
//	get <lesson>                          play a lesson (trace to stdout)
//	pause | resume | reload               playback control
//	disable <stream-id>                   stop one media stream
//	annotate <text...>                    attach a remark
//	report                                playout quality of the last lesson
//	stats                                 server-side telemetry snapshot
//	local                                 this browser's telemetry dashboard
//	history                               documents viewed
//	state                                 protocol state per server
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/playout"
	"repro/internal/protocol"
	"repro/internal/qos"
	"repro/internal/transport"
)

func main() {
	serverName := flag.String("server", "hermes-a", "server host name")
	user := flag.String("user", "student", "user name")
	password := flag.String("pass", "pw", "password")
	hostname := flag.String("name", "browser-1", "this browser's host name")
	hostmap := flag.String("hosts", "", "host=ip overrides")
	script := flag.String("script", "", "semicolon-separated commands to run non-interactively")
	tracePath := flag.String("trace", "", "write the JSONL event trace to this file at exit")
	heartbeatEvery := flag.Duration("heartbeat-every", time.Second, "session heartbeat spacing")
	livenessMisses := flag.Int("liveness-misses", 3, "unanswered heartbeats before the server is declared dead")
	retryTimeout := flag.Duration("retry-timeout", 750*time.Millisecond, "initial control-request reply timeout")
	retryAttempts := flag.Int("retry-attempts", 5, "control-request transmissions before giving up")
	peers := flag.String("peers", "", "comma-separated replica servers seeding the failover/redirect set")
	redirectHops := flag.Int("max-redirect-hops", 3, "admission redirects followed before giving up")
	flag.Parse()

	scope := obs.NewScope(clock.NewWall())
	live := transport.NewLiveObs(scope)
	defer live.Close()
	if err := live.ParseHostMap(*hostmap); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	copts := client.Options{
		User: *user, Password: *password, Class: qos.Standard,
		AutoFollowLinks:   true,
		HeartbeatInterval: *heartbeatEvery,
		LivenessMisses:    *livenessMisses,
		RetryTimeout:      *retryTimeout,
		RetryAttempts:     *retryAttempts,
		MaxRedirectHops:   *redirectHops,
		Obs:               scope,
	}
	if *peers != "" {
		copts.Peers = strings.Split(*peers, ",")
	}
	c, err := client.New(*hostname, clock.NewWall(), live, copts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hermes:", err)
		os.Exit(1)
	}
	// Runs before the deferred live.Close(), so the snapshot is complete.
	defer func() {
		fmt.Fprintf(os.Stderr, "hermes: cluster redirects followed=%d handoffs=%d completed=%d fallbacks=%d\n",
			scope.Counter("client_redirects_followed").Value(),
			scope.Counter("client_handoffs").Value(),
			scope.Counter("client_handoffs_completed").Value(),
			scope.Counter("client_handoff_fallbacks").Value())
		fmt.Fprint(os.Stderr, live.Metrics().Table())
		if *tracePath == "" {
			return
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hermes:", err)
			return
		}
		if err := scope.Trace().WriteJSONL(f); err != nil {
			fmt.Fprintln(os.Stderr, "hermes:", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "hermes: wrote %d trace events to %s\n", scope.Trace().Len(), *tracePath)
	}()

	fmt.Printf("hermes: connecting to %s as %s...\n", *serverName, *user)
	c.Connect(*serverName)
	// A Redirect answer is not terminal: the client is already backing off
	// toward a less-loaded peer, so keep waiting for the hop to resolve.
	waitUntil(5*time.Second, func() bool {
		lc := c.LastConnect()
		return lc != nil && !lc.Redirect
	})
	lc := c.LastConnect()
	switch {
	case lc == nil:
		fmt.Println("hermes: no answer from server")
		os.Exit(1)
	case lc.Redirect:
		fmt.Printf("hermes: redirected but no peer admitted us: %s\n", lc.Reason)
		os.Exit(1)
	case lc.OK:
		fmt.Printf("hermes: connected (session %s)\n", lc.SessionID)
	case lc.NeedSubscription:
		fmt.Println("hermes: not subscribed — use: subscribe <user> <pass> <email>")
	default:
		fmt.Printf("hermes: refused: %s\n", lc.Reason)
		os.Exit(1)
	}

	run := func(line string) bool { return execute(c, scope, *serverName, line) }
	if *script != "" {
		for _, cmd := range strings.Split(*script, ";") {
			if !run(strings.TrimSpace(cmd)) {
				break
			}
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		if !run(strings.TrimSpace(sc.Text())) {
			return
		}
		fmt.Print("> ")
	}
}

func waitUntil(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return cond()
}

func execute(c *client.Client, scope *obs.Scope, serverName, line string) bool {
	if line == "" {
		return true
	}
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "quit", "exit":
		c.Disconnect()
		time.Sleep(100 * time.Millisecond)
		return false

	case "subscribe":
		if len(args) < 3 {
			fmt.Println("usage: subscribe <user> <password> <email>")
			return true
		}
		c.Subscribe(protocol.SubscriptionForm{
			User: args[0], Password: args[1], Email: args[2],
			RealName: args[0], Class: qos.Standard,
		})
		waitUntil(2*time.Second, func() bool { return c.LastSubscribe() != nil })
		if ls := c.LastSubscribe(); ls != nil && ls.OK {
			fmt.Println("subscribed; reconnecting")
			c.Connect(serverName)
			waitUntil(2*time.Second, func() bool { return c.LastConnect() != nil })
		} else if ls != nil {
			fmt.Println("refused:", ls.Reason)
		}

	case "topics":
		c.RequestTopics()
		waitUntil(2*time.Second, func() bool { return len(c.Topics()) > 0 })
		for _, t := range c.Topics() {
			fmt.Printf("  %-20s %q (%s)\n", t.Name, t.Title, t.Server)
		}

	case "search":
		if len(args) == 0 {
			fmt.Println("usage: search <token>")
			return true
		}
		c.Search(strings.Join(args, " "))
		waitUntil(4*time.Second, func() bool { _, done := c.SearchResults(); return done })
		hits, _ := c.SearchResults()
		if len(hits) == 0 {
			fmt.Println("  no matches")
		}
		for _, h := range hits {
			fmt.Printf("  %-20s %q on %s\n", h.Name, h.Title, h.Server)
		}

	case "get":
		if len(args) == 0 {
			fmt.Println("usage: get <lesson>")
			return true
		}
		c.RequestDoc(args[0])
		if !waitUntil(5*time.Second, func() bool { return c.Player() != nil }) {
			fmt.Println("  no document:", c.LastError())
			return true
		}
		fmt.Println("  playing; 'pause'/'resume' control it, 'report' when done")

	case "pause":
		c.Pause()
	case "resume":
		c.Resume()
	case "reload":
		c.Reload()
	case "disable":
		if len(args) == 1 {
			c.DisableMedia(args[0])
		}
	case "annotate":
		c.Annotate(strings.Join(args, " "))

	case "annotations":
		doc := ""
		if len(args) > 0 {
			doc = args[0]
		}
		c.RequestAnnotations(doc)
		waitUntil(2*time.Second, func() bool { return c.Annotations() != nil })
		if ann := c.Annotations(); ann != nil {
			fmt.Printf("  remarks on %s:\n", ann.Doc)
			for _, r := range ann.Records {
				fmt.Printf("    [%s] %s\n", r.User, r.Text)
			}
		}

	case "report":
		p := c.Player()
		if p == nil {
			fmt.Println("  nothing played yet")
			return true
		}
		rep := p.Report()
		ids := make([]string, 0, len(rep.Streams))
		for id := range rep.Streams {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			s := rep.Streams[id]
			fmt.Printf("  %-12s plays %d/%d gaps %d drops %d\n", id, s.Plays, s.Expected, s.Gaps, s.Drops)
		}
		fmt.Printf("  startup delay %v, display events %d\n",
			c.StartupDelay(), len(c.Display().Events()))
		_ = playout.EvPlay

	case "stats":
		c.RequestStats()
		if !waitUntil(2*time.Second, func() bool { return c.Stats() != nil }) {
			fmt.Println("  no stats answer from server")
			return true
		}
		st := c.Stats()
		fmt.Printf("  server %s: %d metrics, trace %d events (%d dropped)\n",
			st.Server, len(st.Metrics), st.TraceEvents, st.TraceDropped)
		for _, p := range st.Metrics {
			if p.Kind == "histogram" {
				// FmtMS picks the unit (µs/ms/s) per value, matching the
				// local dashboard, so µs-scale service times don't print
				// as "0.0ms" next to second-scale playout histograms.
				fmt.Printf("  %-40s %-10s n=%d mean=%s p50=%s p95=%s p99=%s min=%s max=%s\n",
					p.Name, p.Kind, p.Count, obs.FmtMS(p.Value),
					obs.FmtMS(p.P50), obs.FmtMS(p.P95), obs.FmtMS(p.P99),
					obs.FmtMS(p.Min), obs.FmtMS(p.Max))
				continue
			}
			fmt.Printf("  %-40s %-10s %.0f\n", p.Name, p.Kind, p.Value)
		}

	case "local":
		fmt.Print(scope.Dashboard(15))

	case "back":
		if !c.Back() {
			fmt.Println("  nowhere to go back to")
		}
	case "forward":
		if !c.Forward() {
			fmt.Println("  nowhere to go forward to")
		}

	case "history":
		for i, h := range c.History() {
			fmt.Printf("  %d. %s\n", i+1, h)
		}

	case "state":
		fmt.Printf("  %s: %s\n", serverName, c.State(serverName))

	default:
		fmt.Println("unknown command:", cmd)
	}
	return true
}

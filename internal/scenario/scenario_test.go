package scenario

import (
	"strings"
	"testing"
	"time"

	"repro/internal/hml"
)

func fig2(t testing.TB) *Scenario {
	sc, err := FromDocument(hml.Figure2())
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestFromDocumentFigure2(t *testing.T) {
	sc := fig2(t)
	if sc.Title != "Figure 2 scenario" {
		t.Fatalf("title = %q", sc.Title)
	}
	// 1 text + 2 images + 2 sync halves + 1 audio = 6 streams.
	if len(sc.Streams) != 6 {
		t.Fatalf("streams = %d, want 6", len(sc.Streams))
	}
	if len(sc.Links) != 2 {
		t.Fatalf("links = %d, want 2", len(sc.Links))
	}
	a1 := sc.Stream("A1")
	v := sc.Stream("V")
	if a1 == nil || v == nil {
		t.Fatal("missing sync streams")
	}
	if a1.SyncGroup == "" || a1.SyncGroup != v.SyncGroup {
		t.Fatalf("sync groups: %q vs %q", a1.SyncGroup, v.SyncGroup)
	}
	if a1.Type != TypeAudio || v.Type != TypeVideo {
		t.Fatalf("types: %v/%v", a1.Type, v.Type)
	}
}

func TestFromDocumentRejectsInvalid(t *testing.T) {
	doc := hml.MustParse(`<TITLE>t</TITLE><AU ID=a STARTIME=0 DURATION=5> </AU>`)
	if _, err := FromDocument(doc); err == nil {
		t.Fatal("invalid document accepted")
	}
}

func TestParseConvenience(t *testing.T) {
	sc, err := Parse(hml.Figure2Source)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Stream("I1") == nil {
		t.Fatal("I1 missing")
	}
	if _, err := Parse("<bogus"); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestStreamActiveAt(t *testing.T) {
	s := &Stream{Start: 2 * time.Second, Duration: 3 * time.Second}
	cases := []struct {
		t    time.Duration
		want bool
	}{
		{0, false}, {2 * time.Second, true}, {4 * time.Second, true},
		{5 * time.Second, false}, {10 * time.Second, false},
	}
	for _, c := range cases {
		if got := s.ActiveAt(c.t); got != c.want {
			t.Errorf("ActiveAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	open := &Stream{Start: time.Second}
	if open.ActiveAt(0) || !open.ActiveAt(time.Hour) {
		t.Fatal("open-ended activity wrong")
	}
}

func TestScenarioLength(t *testing.T) {
	sc := fig2(t)
	if got := sc.Length(); got != hml.Figure2Times.LinkAt {
		t.Fatalf("Length = %v, want %v", got, hml.Figure2Times.LinkAt)
	}
}

func TestNextTimedLink(t *testing.T) {
	sc := fig2(t)
	l := sc.NextTimedLink(0)
	if l == nil || l.At != hml.Figure2Times.LinkAt {
		t.Fatalf("NextTimedLink(0) = %+v", l)
	}
	if sc.NextTimedLink(l.At+time.Second) != nil {
		t.Fatal("link found past the last activation")
	}
}

func TestPeakConcurrency(t *testing.T) {
	sc := fig2(t)
	// At t=10s: I2 active (8–18), A1 and V active (10–22) → 3.
	if got := sc.PeakConcurrency(); got != 3 {
		t.Fatalf("PeakConcurrency = %d, want 3", got)
	}
}

func TestActiveAtBoundaries(t *testing.T) {
	sc := fig2(t)
	at10 := sc.ActiveAt(10 * time.Second)
	ids := map[string]bool{}
	for _, s := range at10 {
		ids[s.ID] = true
	}
	for _, want := range []string{"I2", "A1", "V"} {
		if !ids[want] {
			t.Errorf("stream %s not active at 10s (got %v)", want, ids)
		}
	}
	if ids["I1"] {
		t.Error("I1 still active at 10s")
	}
}

func TestBuildScheduleOrdering(t *testing.T) {
	sc := fig2(t)
	sch := BuildSchedule(sc)
	if err := sch.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sch.Entries) != 5 {
		t.Fatalf("entries = %d, want 5", len(sch.Entries))
	}
	var order []string
	for _, e := range sch.Entries {
		order = append(order, e.Stream.ID)
	}
	want := []string{"I1", "I2", "A1", "V", "A2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if !sch.HasLinkAt || sch.LinkAt != hml.Figure2Times.LinkAt {
		t.Fatalf("LinkAt = %v/%v", sch.LinkAt, sch.HasLinkAt)
	}
}

func TestSchedulePeers(t *testing.T) {
	sch := BuildSchedule(fig2(t))
	a1 := sch.Entry("A1")
	if a1 == nil || len(a1.Peers) != 1 || a1.Peers[0] != "V" {
		t.Fatalf("A1 peers = %+v", a1)
	}
	v := sch.Entry("V")
	if v == nil || len(v.Peers) != 1 || v.Peers[0] != "A1" {
		t.Fatalf("V peers = %+v", v)
	}
	if sch.Entry("nope") != nil {
		t.Fatal("phantom entry")
	}
}

func TestScheduleDueBy(t *testing.T) {
	sch := BuildSchedule(fig2(t))
	due := sch.DueBy(9 * time.Second)
	if len(due) != 2 { // I1 (0) and I2 (8)
		t.Fatalf("DueBy(9s) = %d entries", len(due))
	}
}

func TestScheduleValidateCatchesBrokenPeers(t *testing.T) {
	sch := BuildSchedule(fig2(t))
	sch.Entry("A1").Peers = []string{"ghost"}
	if err := sch.Validate(); err == nil || !strings.Contains(err.Error(), "missing peer") {
		t.Fatalf("err = %v", err)
	}
	sch = BuildSchedule(fig2(t))
	sch.Entry("V").PlayAt += time.Second
	// Re-sort not applied: detect either ordering or peer-timing issue.
	if err := sch.Validate(); err == nil {
		t.Fatal("mis-timed peers accepted")
	}
}

func TestBuildFlowLeadsAndOrdering(t *testing.T) {
	sc := fig2(t)
	flows := BuildFlow(sc, FlowOptions{PreRoll: 2 * time.Second, StillLead: time.Second})
	if len(flows) != 5 {
		t.Fatalf("flows = %d, want 5", len(flows))
	}
	for i := 1; i < len(flows); i++ {
		if flows[i].SendAt < flows[i-1].SendAt {
			t.Fatal("flow scenario not ordered by send time")
		}
	}
	byID := map[string]*FlowSpec{}
	for _, f := range flows {
		byID[f.Stream.ID] = f
	}
	// I1 starts at 0: send time clamps to 0 and the pre-roll shrinks.
	if f := byID["I1"]; f.SendAt != 0 || f.PreRoll != 0 {
		t.Fatalf("I1 flow = %+v", f)
	}
	// A1 starts at 10s with a 2s pre-roll → send at 8s.
	if f := byID["A1"]; f.SendAt != 8*time.Second || f.PreRoll != 2*time.Second {
		t.Fatalf("A1 flow = %+v", f)
	}
	// I2 is a still with a 1s lead → send at 7s.
	if f := byID["I2"]; f.SendAt != 7*time.Second {
		t.Fatalf("I2 flow = %+v", f)
	}
	// Video volume: 1.5 Mb/s × 12 s / 8 = 2.25 MB.
	if f := byID["V"]; f.Bytes != int64(1_500_000*12/8) {
		t.Fatalf("V bytes = %d", f.Bytes)
	}
}

func TestBuildFlowDefaults(t *testing.T) {
	flows := BuildFlow(fig2(t), FlowOptions{})
	for _, f := range flows {
		if f.Rate <= 0 {
			t.Fatalf("flow %s rate = %v", f.Stream.ID, f.Rate)
		}
	}
}

// Still flows must price what the wire carries: the RateFunc value for a
// still is its total encoded size in bits, so the flow rate is that size
// spread over the transmission lead and Bytes is the actual one-shot size —
// not size/8 "per second" figures that ignored the lead entirely.
func TestBuildFlowStillAccounting(t *testing.T) {
	sc := fig2(t)
	flows := BuildFlow(sc, FlowOptions{PreRoll: 2 * time.Second, StillLead: 4 * time.Second})
	for _, f := range flows {
		if f.Stream.Type.TimeSensitive() {
			continue
		}
		totalBits := DefaultRates(f.Stream)
		if f.Bytes != int64(totalBits/8) {
			t.Fatalf("%s bytes = %d, want %d", f.Stream.ID, f.Bytes, int64(totalBits/8))
		}
		lead := f.Stream.Start - f.SendAt
		if lead <= 0 {
			lead = 4 * time.Second
		}
		want := totalBits / lead.Seconds()
		if diff := f.Rate - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("%s rate = %v, want %v (size %v bits over %v lead)",
				f.Stream.ID, f.Rate, want, totalBits, lead)
		}
	}
}

// PeakBandwidth must not double-count boundaries where several flows start at
// the same instant: duplicate marks are harmless for the max but wasteful,
// and deduping keeps the evaluation O(unique boundaries).
func TestPeakBandwidthDedupedMarks(t *testing.T) {
	mk := func(id string, rate float64) *FlowSpec {
		return &FlowSpec{
			Stream: &Stream{ID: id, Type: TypeAudio, Start: time.Second, Duration: 10 * time.Second},
			SendAt: 0, Rate: rate,
		}
	}
	flows := []*FlowSpec{mk("a", 100), mk("b", 200), mk("c", 300)}
	if got := PeakBandwidth(flows); got != 600 {
		t.Fatalf("peak = %v, want 600", got)
	}
}

func TestPeakBandwidth(t *testing.T) {
	sc := fig2(t)
	flows := BuildFlow(sc, FlowOptions{PreRoll: 2 * time.Second})
	peak := PeakBandwidth(flows)
	// A1+V overlap: ≥ 1.564 Mb/s.
	if peak < 1_564_000 {
		t.Fatalf("peak = %v, want ≥ 1.564 Mb/s", peak)
	}
}

func TestTimelineEventsOrdered(t *testing.T) {
	evs := Timeline(fig2(t))
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("events out of order")
		}
	}
	// Expect: starts for I1..A2 (5), stops (5), 1 timed link = 11.
	if len(evs) != 11 {
		t.Fatalf("events = %d, want 11", len(evs))
	}
	last := evs[len(evs)-1]
	if last.Kind != EventLink || last.At != hml.Figure2Times.LinkAt {
		t.Fatalf("last event = %+v", last)
	}
}

func TestEventKindString(t *testing.T) {
	if EventStart.String() != "start" || EventStop.String() != "stop" || EventLink.String() != "link" {
		t.Fatal("event kind names wrong")
	}
}

func TestRenderTimelineContainsRows(t *testing.T) {
	out := RenderTimeline(fig2(t), 64)
	for _, id := range []string{"I1", "I2", "A1", "V", "A2", "link"} {
		if !strings.Contains(out, id) {
			t.Errorf("row %s missing:\n%s", id, out)
		}
	}
	if !strings.Contains(out, "=") || !strings.Contains(out, "^") {
		t.Fatalf("bars missing:\n%s", out)
	}
}

func TestRenderTimelineEmptyAndNarrow(t *testing.T) {
	empty := &Scenario{Title: "x"}
	if out := RenderTimeline(empty, 64); !strings.Contains(out, "empty") {
		t.Fatalf("empty render = %q", out)
	}
	// Narrow width is clamped, must not panic.
	_ = RenderTimeline(fig2(t), 1)
}

func TestCheckFigure2RelationsHold(t *testing.T) {
	if bad := CheckFigure2Relations(fig2(t)); len(bad) != 0 {
		t.Fatalf("violated: %v", bad)
	}
}

func TestCheckFigure2RelationsDetectViolation(t *testing.T) {
	sc := fig2(t)
	sc.Stream("V").Start += time.Second
	bad := CheckFigure2Relations(sc)
	if len(bad) == 0 {
		t.Fatal("broken sync not detected")
	}
	sc2 := &Scenario{}
	if bad := CheckFigure2Relations(sc2); len(bad) == 0 {
		t.Fatal("missing streams not detected")
	}
}

func TestMediaTypeProperties(t *testing.T) {
	if !TypeAudio.TimeSensitive() || !TypeVideo.TimeSensitive() {
		t.Fatal("audio/video must be time sensitive")
	}
	if TypeText.TimeSensitive() || TypeImage.TimeSensitive() {
		t.Fatal("text/image must not be time sensitive")
	}
	names := map[MediaType]string{TypeText: "text", TypeImage: "image", TypeAudio: "audio", TypeVideo: "video"}
	for mt, want := range names {
		if mt.String() != want {
			t.Errorf("%d.String() = %q", mt, mt.String())
		}
	}
}

func TestLessonScenario(t *testing.T) {
	sc, err := Parse(hml.LessonSource("db", 4, 20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	sch := BuildSchedule(sc)
	if err := sch.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sc.SyncGroups()) != 4 {
		t.Fatalf("sync groups = %d", len(sc.SyncGroups()))
	}
	if sc.Length() != 80*time.Second {
		t.Fatalf("length = %v", sc.Length())
	}
}

func TestAfterResolution(t *testing.T) {
	sc, err := Parse(hml.GrammarCorpus()["after-chain"])
	if err != nil {
		t.Fatal(err)
	}
	// ra: 0–4s; rb AFTER ra → 4–8s; rc AFTER rb +1s → 9–14s.
	if got := sc.Stream("rb").Start; got != 4*time.Second {
		t.Fatalf("rb start = %v", got)
	}
	if got := sc.Stream("rc").Start; got != 9*time.Second {
		t.Fatalf("rc start = %v", got)
	}
	if sc.Length() != 14*time.Second {
		t.Fatalf("length = %v", sc.Length())
	}
	// The provenance field is cleared once resolved.
	if sc.Stream("rb").After != "" {
		t.Fatal("After not cleared")
	}
}

func TestAfterCycleRejected(t *testing.T) {
	_, err := Parse(`<TITLE>t</TITLE>
<IMG SOURCE=a ID=p AFTER=q DURATION=1> </IMG>
<IMG SOURCE=b ID=q AFTER=p DURATION=1> </IMG>`)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
}

func TestAfterOnSyncGroupKeepsHalvesCoTimed(t *testing.T) {
	sc, err := Parse(`<TITLE>t</TITLE>
<IMG SOURCE=i ID=lead STARTIME=0 DURATION=6> </IMG>
<AU_VI SOURCE=au/a SOURCE=vi/v ID=ga ID=gv AFTER=lead DURATION=8> </AU_VI>`)
	if err != nil {
		t.Fatal(err)
	}
	ga, gv := sc.Stream("ga"), sc.Stream("gv")
	if ga.Start != 6*time.Second {
		t.Fatalf("ga start = %v", ga.Start)
	}
	if gv.Start != ga.Start || gv.End() != ga.End() {
		t.Fatalf("halves diverged: %v/%v vs %v/%v", ga.Start, ga.End(), gv.Start, gv.End())
	}
	// The schedule stays valid.
	if err := BuildSchedule(sc).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAfterOpenEndedTarget(t *testing.T) {
	// AFTER an open-ended still means after its appearance.
	sc, err := Parse(`<TITLE>t</TITLE>
<IMG SOURCE=i ID=bg STARTIME=2> </IMG>
<AU SOURCE=a ID=voice AFTER=bg DURATION=3> </AU>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Stream("voice").Start; got != 2*time.Second {
		t.Fatalf("voice start = %v", got)
	}
}

// Package scenario turns parsed HML documents into the runtime presentation
// scenario the service operates on: the set of media streams S_i with their
// relative playout start times t_i and durations d_i, synchronization groups,
// hyperlinks, the client-side playout schedule (the paper's E_i structures),
// and the server-side flow scenario computed by the flow scheduler.
package scenario

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/hml"
)

// MediaType classifies a stream's media.
type MediaType int

// Media types, ordered roughly by timing sensitivity.
const (
	TypeText MediaType = iota
	TypeImage
	TypeAudio
	TypeVideo
)

func (t MediaType) String() string {
	switch t {
	case TypeText:
		return "text"
	case TypeImage:
		return "image"
	case TypeAudio:
		return "audio"
	case TypeVideo:
		return "video"
	default:
		return "unknown"
	}
}

// TimeSensitive reports whether the media type has hard playout deadlines
// per frame (audio/video) as opposed to a single appearance deadline.
func (t MediaType) TimeSensitive() bool { return t == TypeAudio || t == TypeVideo }

// Stream is one media stream S_i of the presentation scenario.
type Stream struct {
	// ID is the unique component identification key.
	ID string
	// Type is the media type.
	Type MediaType
	// Source is the media-server retrieval key.
	Source string
	// Start is the relative playout start time t_i.
	Start time.Duration
	// Duration is the playout duration d_i (zero = open-ended still).
	Duration time.Duration
	// After names the stream this one starts after (already resolved into
	// Start by FromDocument; kept for provenance).
	After string
	// SyncGroup names the AU_VI group this stream belongs to ("" = none).
	// Streams sharing a group must start and stop together.
	SyncGroup string
	// Width, Height are display dimensions for visual media.
	Width, Height int
	// Note is the author's annotation.
	Note string
	// Text holds inline text content for TypeText streams.
	Text string
}

// End returns t_i + d_i.
func (s *Stream) End() time.Duration { return s.Start + s.Duration }

// ActiveAt reports whether the stream is playing at scenario-relative time t.
// Open-ended streams (Duration 0) remain active once started.
func (s *Stream) ActiveAt(t time.Duration) bool {
	if t < s.Start {
		return false
	}
	return s.Duration == 0 || t < s.End()
}

// Link is a hyperlink of the scenario.
type Link struct {
	Kind   hml.LinkKind
	Target string
	Host   string
	At     time.Duration
	HasAt  bool
	Note   string
}

// Scenario is the runtime form of a hypermedia document's presentation
// scenario.
type Scenario struct {
	Title   string
	Name    string
	Streams []*Stream
	Links   []Link
}

// FromDocument converts a validated HML document into a Scenario. Text items
// become one open-ended text stream each (always shown, per the Figure 2
// narrative); the AU_VI halves become two streams sharing a sync group.
func FromDocument(doc *hml.Document) (*Scenario, error) {
	if err := hml.Validate(doc); err != nil {
		return nil, err
	}
	sc := &Scenario{Title: doc.Title, Name: doc.Name}
	textN := 0
	groupN := 0
	for _, it := range doc.Items() {
		switch v := it.(type) {
		case *hml.Text:
			textN++
			sc.Streams = append(sc.Streams, &Stream{
				ID:   fmt.Sprintf("text-%d", textN),
				Type: TypeText,
				Text: v.Plain(),
			})
		case *hml.Image:
			sc.Streams = append(sc.Streams, fromMedia(v.Media, TypeImage, ""))
		case *hml.Audio:
			sc.Streams = append(sc.Streams, fromMedia(v.Media, TypeAudio, ""))
		case *hml.Video:
			sc.Streams = append(sc.Streams, fromMedia(v.Media, TypeVideo, ""))
		case *hml.AudioVideo:
			groupN++
			group := fmt.Sprintf("sync-%d", groupN)
			sc.Streams = append(sc.Streams,
				fromMedia(v.Audio, TypeAudio, group),
				fromMedia(v.Video, TypeVideo, group))
		case *hml.Link:
			sc.Links = append(sc.Links, Link{
				Kind: v.Kind, Target: v.Target, Host: v.Host,
				At: v.At, HasAt: v.HasAt, Note: v.Note,
			})
		}
	}
	if err := resolveAfter(sc); err != nil {
		return nil, err
	}
	return sc, nil
}

// resolveAfter turns AFTER references into absolute start times: a stream
// with AFTER=x starts at x's end time plus its own STARTIME offset. Sync
// partners of an AU_VI group stay co-timed. Reference cycles are an error.
func resolveAfter(sc *Scenario) error {
	byID := map[string]*Stream{}
	for _, s := range sc.Streams {
		if s.ID != "" {
			byID[s.ID] = s
		}
	}
	const (
		unvisited = iota
		visiting
		done
	)
	state := map[string]int{}
	var resolve func(s *Stream) error
	resolve = func(s *Stream) error {
		if s.After == "" || state[s.ID] == done {
			return nil
		}
		if state[s.ID] == visiting {
			return fmt.Errorf("scenario: AFTER cycle involving %q", s.ID)
		}
		state[s.ID] = visiting
		target, ok := byID[s.After]
		if !ok {
			return fmt.Errorf("scenario: %q AFTER unknown media %q", s.ID, s.After)
		}
		if err := resolve(target); err != nil {
			return err
		}
		s.Start += target.End()
		s.After = ""
		state[s.ID] = done
		// Keep AU_VI halves co-timed when only one carried the AFTER.
		if s.SyncGroup != "" {
			for _, peer := range sc.Streams {
				if peer.SyncGroup == s.SyncGroup && peer.ID != s.ID && peer.After == "" {
					peer.Start = s.Start
				}
			}
		}
		return nil
	}
	for _, s := range sc.Streams {
		if err := resolve(s); err != nil {
			return err
		}
	}
	return nil
}

func fromMedia(m hml.Media, t MediaType, group string) *Stream {
	return &Stream{
		ID:        m.ID,
		Type:      t,
		Source:    m.Source,
		Start:     m.Start,
		After:     m.After,
		Duration:  m.Duration,
		SyncGroup: group,
		Width:     m.Width,
		Height:    m.Height,
		Note:      m.Note,
	}
}

// Parse is a convenience combining hml.Parse, hml.Validate and FromDocument.
func Parse(src string) (*Scenario, error) {
	doc, err := hml.Parse(src)
	if err != nil {
		return nil, err
	}
	return FromDocument(doc)
}

// Stream returns the stream with the given ID, or nil.
func (sc *Scenario) Stream(id string) *Stream {
	for _, s := range sc.Streams {
		if s.ID == id {
			return s
		}
	}
	return nil
}

// TimedStreams returns the streams that carry timing (everything except
// text, which is shown throughout).
func (sc *Scenario) TimedStreams() []*Stream {
	var out []*Stream
	for _, s := range sc.Streams {
		if s.Type != TypeText {
			out = append(out, s)
		}
	}
	return out
}

// SyncGroups returns the scenario's synchronization groups keyed by group
// name, each holding the member streams in declaration order.
func (sc *Scenario) SyncGroups() map[string][]*Stream {
	out := map[string][]*Stream{}
	for _, s := range sc.Streams {
		if s.SyncGroup != "" {
			out[s.SyncGroup] = append(out[s.SyncGroup], s)
		}
	}
	return out
}

// Length returns the scenario length: the maximum of the last media end time
// and the latest timed-link activation.
func (sc *Scenario) Length() time.Duration {
	var max time.Duration
	for _, s := range sc.Streams {
		if s.Duration > 0 && s.End() > max {
			max = s.End()
		}
		if s.Duration == 0 && s.Start > max {
			max = s.Start
		}
	}
	for _, l := range sc.Links {
		if l.HasAt && l.At > max {
			max = l.At
		}
	}
	return max
}

// NextTimedLink returns the earliest timed link activating at or after t, or
// nil when none remains: this is the hyperlink the presentation will follow
// automatically "in the absence of user involvement".
func (sc *Scenario) NextTimedLink(t time.Duration) *Link {
	var best *Link
	for i := range sc.Links {
		l := &sc.Links[i]
		if !l.HasAt || l.At < t {
			continue
		}
		if best == nil || l.At < best.At {
			best = l
		}
	}
	return best
}

// ActiveAt returns the streams active at scenario-relative time t, in
// declaration order.
func (sc *Scenario) ActiveAt(t time.Duration) []*Stream {
	var out []*Stream
	for _, s := range sc.Streams {
		if s.Type == TypeText || s.ActiveAt(t) {
			if s.Type != TypeText {
				out = append(out, s)
			} else {
				out = append(out, s)
			}
		}
	}
	return out
}

// PeakConcurrency returns the maximum number of simultaneously active timed
// streams over the scenario, evaluated at every start/end boundary.
func (sc *Scenario) PeakConcurrency() int {
	var marks []time.Duration
	for _, s := range sc.TimedStreams() {
		marks = append(marks, s.Start)
		if s.Duration > 0 {
			marks = append(marks, s.End()-time.Nanosecond)
		}
	}
	sort.Slice(marks, func(i, j int) bool { return marks[i] < marks[j] })
	peak := 0
	for _, m := range marks {
		n := 0
		for _, s := range sc.TimedStreams() {
			if s.ActiveAt(m) {
				n++
			}
		}
		if n > peak {
			peak = n
		}
	}
	return peak
}

package scenario

import (
	"sort"
	"time"
)

// RateFunc maps a stream to its nominal transmission rate in bits per
// second. The flow scheduler is parameterized on it so the media package can
// supply codec-accurate rates without a dependency cycle. For stills (image,
// text) the returned value is the total encoded size in bits — the nominal
// "deliver within one second" rate — which BuildFlow spreads over the
// still's actual transmission lead.
type RateFunc func(*Stream) float64

// FlowSpec is one stream's entry in the flow scenario: the sending start
// time instance and transmission properties the paper's flow scheduler
// derives from the presentation scenario.
type FlowSpec struct {
	Stream *Stream
	// SendAt is when the media server must begin transmitting, relative
	// to session start: the playout start minus the pre-roll lead that
	// fills the client's media time window.
	SendAt time.Duration
	// Rate is the nominal transmission rate in bits per second. For
	// stills it is the encoded size spread over the transmission lead, so
	// admission and peak-bandwidth sums price the still at what the wire
	// actually carries during [SendAt, Start).
	Rate float64
	// Bytes is the total payload volume for the stream (Rate × Duration
	// for streams; the one-shot encoded size for stills).
	Bytes int64
	// PreRoll is the lead applied (how far ahead of the playout deadline
	// transmission starts).
	PreRoll time.Duration
}

// FlowOptions tunes flow-scenario computation.
type FlowOptions struct {
	// PreRoll is the transmission lead for time-sensitive streams: it
	// equals the client's media time window so that the buffer holds one
	// window of data when playout begins.
	PreRoll time.Duration
	// StillLead is the lead for images and text (delivered in full before
	// their appearance deadline).
	StillLead time.Duration
	// Rate supplies per-stream nominal rates; nil uses DefaultRates.
	Rate RateFunc
}

// DefaultRates approximates mid-1990s codec rates: 1.5 Mb/s MPEG-1 video,
// 64 kb/s PCM telephone-quality audio, a 64 KiB still image delivered over
// its lead time, and negligible text.
func DefaultRates(s *Stream) float64 {
	switch s.Type {
	case TypeVideo:
		return 1_500_000
	case TypeAudio:
		return 64_000
	case TypeImage:
		return 512 * 1024 // bits, spread over the still lead
	default:
		return 8_000
	}
}

// BuildFlow computes the flow scenario for every timed stream: "the flow
// scheduler uses the retrieved presentation scenario to compute a flow
// scenario for each participating media stream" specifying "the sending
// start time instances ... as well as other transmission properties".
func BuildFlow(sc *Scenario, opts FlowOptions) []*FlowSpec {
	if opts.Rate == nil {
		opts.Rate = DefaultRates
	}
	if opts.PreRoll <= 0 {
		opts.PreRoll = 2 * time.Second
	}
	if opts.StillLead <= 0 {
		opts.StillLead = opts.PreRoll
	}
	var out []*FlowSpec
	for _, s := range sc.TimedStreams() {
		lead := opts.PreRoll
		if !s.Type.TimeSensitive() {
			lead = opts.StillLead
		}
		sendAt := s.Start - lead
		if sendAt < 0 {
			sendAt = 0
		}
		rate := opts.Rate(s)
		var bytes int64
		if s.Type.TimeSensitive() {
			bytes = int64(rate * s.Duration.Seconds() / 8)
		} else {
			// For stills the RateFunc value is the total encoded size in
			// bits. The wire delivers that size once, spread over the
			// actual transmission lead, so the priced rate is size/lead —
			// not the raw "per second" figure, which overstated flows with
			// longer leads and understated clamped ones.
			totalBits := rate
			bytes = int64(totalBits / 8)
			effLead := s.Start - sendAt
			if effLead <= 0 {
				effLead = opts.StillLead
			}
			rate = totalBits / effLead.Seconds()
		}
		out = append(out, &FlowSpec{
			Stream:  s,
			SendAt:  sendAt,
			Rate:    rate,
			Bytes:   bytes,
			PreRoll: s.Start - sendAt,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].SendAt != out[j].SendAt {
			return out[i].SendAt < out[j].SendAt
		}
		return out[i].Stream.ID < out[j].Stream.ID
	})
	return out
}

// PeakBandwidth returns the maximum aggregate nominal rate (bits/s) of
// simultaneously transmitting streams under the flow scenario, evaluated at
// every send-start boundary. Stills count over [SendAt, Start); streams over
// [SendAt, End).
func PeakBandwidth(flows []*FlowSpec) float64 {
	var marks []time.Duration
	seen := make(map[time.Duration]bool, len(flows))
	for _, f := range flows {
		if !seen[f.SendAt] {
			seen[f.SendAt] = true
			marks = append(marks, f.SendAt)
		}
	}
	peak := 0.0
	for _, m := range marks {
		sum := 0.0
		for _, f := range flows {
			end := f.Stream.End()
			if !f.Stream.Type.TimeSensitive() {
				end = f.Stream.Start
				if end <= f.SendAt {
					end = f.SendAt + time.Millisecond
				}
			}
			if m >= f.SendAt && m < end {
				sum += f.Rate
			}
		}
		if sum > peak {
			peak = sum
		}
	}
	return peak
}

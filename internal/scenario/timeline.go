package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// EventKind classifies timeline events.
type EventKind int

// Timeline event kinds.
const (
	EventStart EventKind = iota
	EventStop
	EventLink
)

func (k EventKind) String() string {
	switch k {
	case EventStart:
		return "start"
	case EventStop:
		return "stop"
	case EventLink:
		return "link"
	default:
		return "unknown"
	}
}

// Event is one boundary in the scenario timeline.
type Event struct {
	At     time.Duration
	Kind   EventKind
	Stream *Stream // nil for link events
	Link   *Link   // nil for stream events
}

// Timeline returns the scenario's ordered boundary events: every stream
// start and stop and every timed-link activation, sorted by time with
// starts before stops at equal instants (a stream handing over to another at
// the same boundary is considered seamless).
func Timeline(sc *Scenario) []Event {
	var evs []Event
	for _, s := range sc.TimedStreams() {
		evs = append(evs, Event{At: s.Start, Kind: EventStart, Stream: s})
		if s.Duration > 0 {
			evs = append(evs, Event{At: s.End(), Kind: EventStop, Stream: s})
		}
	}
	for i := range sc.Links {
		l := &sc.Links[i]
		if l.HasAt {
			evs = append(evs, Event{At: l.At, Kind: EventLink, Link: l})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		return evs[i].Kind < evs[j].Kind
	})
	return evs
}

// RenderTimeline draws an ASCII Gantt chart of the scenario — the textual
// equivalent of the paper's Figure 2 playout-timeline illustration. Each
// timed stream gets a row; '=' marks active playout, open-ended stills trail
// with '-'. width is the chart width in characters.
func RenderTimeline(sc *Scenario, width int) string {
	if width < 20 {
		width = 20
	}
	length := sc.Length()
	if length <= 0 {
		return "(empty scenario)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %q — length %s\n", sc.Title, length)
	scale := func(t time.Duration) int {
		p := int(float64(t) / float64(length) * float64(width))
		if p > width {
			p = width
		}
		return p
	}
	idW := 2
	for _, s := range sc.TimedStreams() {
		if len(s.ID) > idW {
			idW = len(s.ID)
		}
	}
	for _, s := range sc.TimedStreams() {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		from := scale(s.Start)
		to := width
		fill := byte('-')
		if s.Duration > 0 {
			to = scale(s.End())
			fill = '='
		}
		if to <= from {
			to = from + 1
			if to > width {
				from, to = width-1, width
			}
		}
		for i := from; i < to; i++ {
			row[i] = fill
		}
		tag := ""
		if s.SyncGroup != "" {
			tag = " [" + s.SyncGroup + "]"
		}
		fmt.Fprintf(&b, "%-*s |%s| %5s→%-5s %s%s\n", idW, s.ID, string(row),
			shortDur(s.Start), shortDurEnd(s), s.Type, tag)
	}
	for i := range sc.Links {
		l := &sc.Links[i]
		if !l.HasAt {
			continue
		}
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		p := scale(l.At)
		if p >= width {
			p = width - 1
		}
		row[p] = '^'
		fmt.Fprintf(&b, "%-*s |%s| at %s follow %q\n", idW, "link", string(row), shortDur(l.At), l.Target)
	}
	return b.String()
}

func shortDur(d time.Duration) string {
	return fmt.Sprintf("%gs", float64(d)/float64(time.Second))
}

func shortDurEnd(s *Stream) string {
	if s.Duration == 0 {
		return "∞"
	}
	return shortDur(s.End())
}

// CheckFigure2Relations verifies the temporal relations the Figure 2
// narrative states, returning a list of violated relations (empty = all
// hold). Used by the F2 experiment to assert the reconstructed timeline.
func CheckFigure2Relations(sc *Scenario) []string {
	var bad []string
	need := func(id string) *Stream {
		s := sc.Stream(id)
		if s == nil {
			bad = append(bad, "missing stream "+id)
		}
		return s
	}
	i1, i2 := need("I1"), need("I2")
	a1, v := need("A1"), need("V")
	a2 := need("A2")
	if len(bad) > 0 {
		return bad
	}
	if i1.Start != 0 {
		bad = append(bad, "I1 must start at presentation start")
	}
	if i2.Start < i1.End() {
		bad = append(bad, "I2 must appear after I1 ends")
	}
	if a1.Start != v.Start || a1.End() != v.End() {
		bad = append(bad, "A1 and V must start and stop together")
	}
	if a1.SyncGroup == "" || a1.SyncGroup != v.SyncGroup {
		bad = append(bad, "A1 and V must share a sync group")
	}
	if a2.Start < a1.End() {
		bad = append(bad, "A2 must play after the synchronized segment")
	}
	return bad
}

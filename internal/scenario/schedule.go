package scenario

import (
	"sort"
	"time"
)

// Entry is the paper's per-stream structure E_i: everything the client's
// presentation scheduler needs to arrange one stream's playout — its timing
// parameters, its buffer key and bookkeeping fields.
type Entry struct {
	// Stream is the scheduled stream S_i.
	Stream *Stream
	// PlayAt is the playout deadline t_i relative to presentation start.
	PlayAt time.Duration
	// EndAt is t_i + d_i (equal to PlayAt for open-ended stills).
	EndAt time.Duration
	// BufferKey identifies the media buffer thread carrying this stream's
	// data (one buffer per parallel media connection).
	BufferKey string
	// Peers lists the IDs of streams in the same sync group.
	Peers []string
}

// Schedule is the client playout schedule: the E_i entries ordered by
// playout deadline, as produced by preprocessing the presentation scenario.
type Schedule struct {
	Entries []*Entry
	// LinkAt is the earliest timed-link activation (0,false when none):
	// the instant the presentation auto-navigates away.
	LinkAt    time.Duration
	HasLinkAt bool
	// Length is the scenario length.
	Length time.Duration
}

// BuildSchedule preprocesses the scenario into its playout schedule,
// mirroring the paper's client-side preprocessing step ("every media stream
// S_i is recognized by its corresponding language rule and a structure E_i
// is informed").
func BuildSchedule(sc *Scenario) *Schedule {
	groups := sc.SyncGroups()
	sch := &Schedule{Length: sc.Length()}
	for _, s := range sc.TimedStreams() {
		e := &Entry{
			Stream:    s,
			PlayAt:    s.Start,
			EndAt:     s.End(),
			BufferKey: s.ID,
		}
		if s.SyncGroup != "" {
			for _, peer := range groups[s.SyncGroup] {
				if peer.ID != s.ID {
					e.Peers = append(e.Peers, peer.ID)
				}
			}
		}
		sch.Entries = append(sch.Entries, e)
	}
	sort.SliceStable(sch.Entries, func(i, j int) bool {
		a, b := sch.Entries[i], sch.Entries[j]
		if a.PlayAt != b.PlayAt {
			return a.PlayAt < b.PlayAt
		}
		return a.Stream.ID < b.Stream.ID
	})
	if l := sc.NextTimedLink(0); l != nil {
		sch.LinkAt, sch.HasLinkAt = l.At, true
	}
	return sch
}

// Entry returns the schedule entry for stream id, or nil.
func (sch *Schedule) Entry(id string) *Entry {
	for _, e := range sch.Entries {
		if e.Stream.ID == id {
			return e
		}
	}
	return nil
}

// DueBy returns the entries whose playout deadline is ≤ t, in order.
func (sch *Schedule) DueBy(t time.Duration) []*Entry {
	var out []*Entry
	for _, e := range sch.Entries {
		if e.PlayAt <= t {
			out = append(out, e)
		}
	}
	return out
}

// Validate checks schedule invariants: entries sorted by deadline, sync
// peers symmetric and co-timed.
func (sch *Schedule) Validate() error {
	for i := 1; i < len(sch.Entries); i++ {
		if sch.Entries[i].PlayAt < sch.Entries[i-1].PlayAt {
			return errOutOfOrder(sch.Entries[i-1], sch.Entries[i])
		}
	}
	byID := map[string]*Entry{}
	for _, e := range sch.Entries {
		byID[e.Stream.ID] = e
	}
	for _, e := range sch.Entries {
		for _, pid := range e.Peers {
			p, ok := byID[pid]
			if !ok {
				return errMissingPeer(e, pid)
			}
			if p.PlayAt != e.PlayAt || p.EndAt != e.EndAt {
				return errPeerTiming(e, p)
			}
			found := false
			for _, back := range p.Peers {
				if back == e.Stream.ID {
					found = true
				}
			}
			if !found {
				return errAsymmetricPeer(e, p)
			}
		}
	}
	return nil
}

type scheduleError struct{ msg string }

func (e *scheduleError) Error() string { return "scenario: " + e.msg }

func errOutOfOrder(a, b *Entry) error {
	return &scheduleError{msg: "entries out of order: " + a.Stream.ID + " before " + b.Stream.ID}
}
func errMissingPeer(e *Entry, pid string) error {
	return &scheduleError{msg: "entry " + e.Stream.ID + " references missing peer " + pid}
}
func errPeerTiming(e, p *Entry) error {
	return &scheduleError{msg: "sync peers " + e.Stream.ID + "/" + p.Stream.ID + " not co-timed"}
}
func errAsymmetricPeer(e, p *Entry) error {
	return &scheduleError{msg: "peer relation " + e.Stream.ID + "→" + p.Stream.ID + " not symmetric"}
}

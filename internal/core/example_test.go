package core_test

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
)

// ExamplePlay runs the paper's whole architecture around one document: a
// multimedia server with its flow scheduler and media senders, a simulated
// broadband network, and the Hermes browser with its buffers and
// presentation scheduler.
func ExamplePlay() {
	res, err := core.Play(core.PlayConfig{
		DocSource: `<TITLE>One clip</TITLE>
<AU_VI SOURCE=au/a SOURCE=vi/v ID=a ID=v STARTIME=0 DURATION=5> </AU_VI>`,
		Seed: 1,
		Link: netsim.LinkConfig{Bandwidth: 8_000_000, Delay: 10 * time.Millisecond},
	})
	if err != nil {
		fmt.Println("session failed:", err)
		return
	}
	fmt.Printf("played %d/%d frames, %d gaps\n", res.Plays(), res.Expected(), res.Gaps())
	// Output:
	// played 375/375 frames, 0 gaps
}

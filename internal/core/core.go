// Package core is the library's top-level API: it assembles the full
// on-demand hypermedia service (multimedia server, simulated broadband
// network, Hermes browser) around a single document and plays it, returning
// the complete set of quality metrics — playout report, intermedia skew,
// quality-grading trajectory, network statistics and startup delay.
//
// One call to Play is a complete instance of the paper's architecture
// (Figure 3) in motion; the experiment harness and the benchmarks are built
// on it.
package core

import (
	"fmt"
	"time"

	"repro/internal/auth"
	"repro/internal/buffer"
	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/playout"
	"repro/internal/qos"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/stats"
)

// PlayConfig describes one single-document session experiment.
type PlayConfig struct {
	// DocSource is the document's HML text.
	DocSource string
	// Link configures the duplex server↔client network path.
	Link netsim.LinkConfig
	// Phases are congestion episodes applied to the media direction
	// (server → client).
	Phases []netsim.Phase
	// Seed drives all randomness (same seed = identical run).
	Seed uint64
	// Client tunes the browser (window, playout options, feedback).
	Client client.Options
	// Server tunes the server (grading policy, pre-roll, capacity).
	Server server.Options
	// RunFor bounds the simulation; zero runs scenario length + 10 s.
	RunFor time.Duration
	// User pricing class (subscription is handled automatically).
	Class qos.PricingClass
	// Sniffer, when set, observes every packet sent on the simulated
	// network (protocol-stack accounting).
	Sniffer func(netsim.Packet)
}

// Result carries every metric of a completed session.
type Result struct {
	// Scenario is the parsed presentation scenario.
	Scenario *scenario.Scenario
	// Startup is the deliberate initial delay before playout began.
	Startup time.Duration
	// Playout is the per-stream quality report.
	Playout playout.Report
	// Display is the full playout trace.
	Display *playout.Display
	// Skew maps sync groups to their skew samples (milliseconds).
	Skew map[string]*stats.Sample
	// Actions is the server's quality-grading action log.
	Actions []qos.Action
	// LevelSeries maps stream ids to quality-level trajectories.
	LevelSeries map[string]*stats.Series
	// Net is the media-direction link statistics.
	Net netsim.LinkStats
	// Monitor exposes the client's final QoS measurements.
	Monitor []qos.Report
	// Buffers holds each stream buffer's lifetime counters (underflows,
	// duplications, drops, stale arrivals).
	Buffers map[string]buffer.Stats
	// Client and server wall identifiers, for composed setups.
	ClientHost, ServerHost string
}

// Play runs one complete session and collects the metrics.
func Play(cfg PlayConfig) (*Result, error) {
	sc, err := scenario.Parse(cfg.DocSource)
	if err != nil {
		return nil, err
	}
	clk := clock.NewSim()
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	net := netsim.New(clk, cfg.Seed)
	link := cfg.Link
	if link.Bandwidth == 0 && link.Delay == 0 {
		link = netsim.DefaultLAN()
	}
	net.SetDefaultLink(link)
	net.Sniffer = cfg.Sniffer
	for _, p := range cfg.Phases {
		net.AddPhase("server", "viewer", p)
	}

	users := auth.NewDB()
	if err := users.Subscribe(auth.User{
		Name: "user", Password: "pw", RealName: "Experiment User",
		Email: "user@example.gr", Class: cfg.Class,
	}, clk.Now()); err != nil {
		return nil, err
	}
	db := server.NewDatabase()
	if err := db.Put("doc", cfg.DocSource, "experiment document"); err != nil {
		return nil, err
	}
	srv, err := server.New("server", clk, net, users, db, cfg.Server)
	if err != nil {
		return nil, err
	}

	copts := cfg.Client
	copts.User = "user"
	copts.Password = "pw"
	copts.Class = cfg.Class
	c, err := client.New("viewer", clk, net, copts)
	if err != nil {
		return nil, err
	}

	c.Connect("server")
	clk.RunFor(time.Second)
	if lc := c.LastConnect(); lc == nil || !lc.OK {
		reason := c.LastError()
		if lc != nil {
			reason = lc.Reason
		}
		return nil, fmt.Errorf("core: connection refused: %s", reason)
	}
	c.RequestDoc("doc")
	horizon := cfg.RunFor
	if horizon <= 0 {
		horizon = sc.Length() + 10*time.Second
	}
	clk.RunFor(horizon)

	res := &Result{
		Scenario:    c.Scenario(),
		Startup:     c.StartupDelay(),
		Display:     c.Display(),
		Net:         net.Stats("server", "viewer"),
		Monitor:     c.Monitor().Reports(),
		LevelSeries: map[string]*stats.Series{},
		ClientHost:  "viewer",
		ServerHost:  "server",
	}
	if res.Scenario == nil {
		res.Scenario = sc
	}
	if p := c.Player(); p != nil {
		res.Playout = p.Report()
		res.Skew = res.Playout.Skew
	}
	res.Buffers = map[string]buffer.Stats{}
	if bs := c.Buffers(); bs != nil {
		for _, b := range bs.All() {
			res.Buffers[b.StreamID] = b.Stats()
		}
	}
	if mgr := srv.QoSManager(netsim.MakeAddr("viewer", 6000)); mgr != nil {
		res.Actions = mgr.Actions()
		for _, st := range sc.TimedStreams() {
			if s := mgr.LevelSeries(st.ID); s != nil {
				res.LevelSeries[st.ID] = s
			}
		}
	}
	c.Disconnect()
	clk.RunFor(time.Second)
	return res, nil
}

// Gaps returns the total playout gaps across all streams.
func (r *Result) Gaps() int {
	n := 0
	for _, s := range r.Playout.Streams {
		n += s.Gaps
	}
	return n
}

// Drops returns the total frames discarded by short-term control.
func (r *Result) Drops() int {
	n := 0
	for _, s := range r.Playout.Streams {
		n += s.Drops
	}
	return n
}

// Plays returns the total frames presented.
func (r *Result) Plays() int {
	n := 0
	for _, s := range r.Playout.Streams {
		n += s.Plays
	}
	return n
}

// Expected returns the total nominal frame count.
func (r *Result) Expected() int {
	n := 0
	for _, s := range r.Playout.Streams {
		n += s.Expected
	}
	return n
}

// MaxSkewMS returns the worst intermedia skew observed (milliseconds).
func (r *Result) MaxSkewMS() float64 {
	max := 0.0
	for _, s := range r.Skew {
		if v := s.Max(); v > max {
			max = v
		}
	}
	return max
}

// MeanSkewMS returns the mean skew across groups (milliseconds).
func (r *Result) MeanSkewMS() float64 {
	var sum float64
	n := 0
	for _, s := range r.Skew {
		sum += s.Mean()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// DegradeCount counts quality-degrade actions.
func (r *Result) DegradeCount() int {
	n := 0
	for _, a := range r.Actions {
		if a.Kind == qos.ActDegrade || a.Kind == qos.ActCutoff {
			n++
		}
	}
	return n
}

// QualityScore is the composite presentation-quality metric used by the E4
// experiment: the fraction of expected frames actually played, penalized by
// gap rate and by intermedia skew beyond the ±80 ms lip-sync tolerance.
// 1.0 is a perfect presentation; 0 is unusable.
func (r *Result) QualityScore() float64 {
	exp := r.Expected()
	if exp == 0 {
		return 0
	}
	playRatio := float64(r.Plays()) / float64(exp)
	if playRatio > 1 {
		playRatio = 1
	}
	gapPenalty := float64(r.Gaps()) / float64(exp)
	skewPenalty := 0.0
	for _, s := range r.Skew {
		if p95 := s.Percentile(95); p95 > 80 {
			over := (p95 - 80) / 1000 // seconds beyond tolerance
			if over > 0.5 {
				over = 0.5
			}
			skewPenalty += over
		}
	}
	score := playRatio - gapPenalty - skewPenalty
	if score < 0 {
		score = 0
	}
	return score
}

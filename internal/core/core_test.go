package core

import (
	"testing"
	"time"

	"repro/internal/hml"
	"repro/internal/netsim"
	"repro/internal/qos"
)

func TestPlayFigure2Clean(t *testing.T) {
	res, err := Play(PlayConfig{DocSource: hml.Figure2Source, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Startup <= 0 {
		t.Fatal("no startup delay recorded")
	}
	if res.Plays() < res.Expected()*9/10 {
		t.Fatalf("plays = %d/%d", res.Plays(), res.Expected())
	}
	if res.QualityScore() < 0.9 {
		t.Fatalf("quality = %v on a clean LAN", res.QualityScore())
	}
	if res.Net.Delivered == 0 {
		t.Fatal("no media delivered")
	}
	// The Figure 2 sync group was tracked.
	if len(res.Skew) != 1 {
		t.Fatalf("skew groups = %d", len(res.Skew))
	}
}

func TestPlayDeterministicAcrossRuns(t *testing.T) {
	run := func() (int, int, float64) {
		res, err := Play(PlayConfig{DocSource: hml.Figure2Source, Seed: 42,
			Link: netsim.LinkConfig{Bandwidth: 3_000_000, Delay: 30 * time.Millisecond,
				Jitter: 40 * time.Millisecond, Loss: 0.02}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Plays(), res.Gaps(), res.QualityScore()
	}
	p1, g1, q1 := run()
	p2, g2, q2 := run()
	if p1 != p2 || g1 != g2 || q1 != q2 {
		t.Fatalf("non-deterministic: %d/%d/%v vs %d/%d/%v", p1, g1, q1, p2, g2, q2)
	}
}

func TestPlayRejectsBadDocument(t *testing.T) {
	if _, err := Play(PlayConfig{DocSource: "<broken"}); err == nil {
		t.Fatal("bad doc accepted")
	}
}

func TestPlayRejectsWhenAdmissionFails(t *testing.T) {
	cfg := PlayConfig{DocSource: hml.Figure2Source}
	cfg.Server.Capacity = 1 // effectively no bandwidth
	cfg.Client.PeakRate = 5_000_000
	cfg.Client.MinRate = 5_000_000
	if _, err := Play(cfg); err == nil {
		t.Fatal("admission failure not surfaced")
	}
}

func TestPlayCongestionDegradesQuality(t *testing.T) {
	clean, err := Play(PlayConfig{DocSource: hml.Figure2Source, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	congested, err := Play(PlayConfig{
		DocSource: hml.Figure2Source, Seed: 7,
		Phases: []netsim.Phase{{Start: 5 * time.Second, Duration: 20 * time.Second,
			LossFactor: 600, ExtraJitter: 150 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if congested.QualityScore() >= clean.QualityScore() {
		t.Fatalf("congestion did not hurt: %v vs %v", congested.QualityScore(), clean.QualityScore())
	}
	if congested.Gaps() <= clean.Gaps() {
		t.Fatalf("gaps: %d vs %d", congested.Gaps(), clean.Gaps())
	}
}

func TestPlayGradingActsUnderCongestion(t *testing.T) {
	cfg := PlayConfig{
		DocSource: `<TITLE>long</TITLE><AU_VI SOURCE=au/a SOURCE=vi/v ID=a ID=v STARTIME=0 DURATION=30> </AU_VI>`,
		Seed:      9,
		Phases: []netsim.Phase{{Start: 3 * time.Second, Duration: 20 * time.Second,
			LossFactor: 400}},
	}
	cfg.Client.FeedbackInterval = 500 * time.Millisecond
	res, err := Play(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradeCount() == 0 {
		t.Fatalf("no degrades; actions = %+v", res.Actions)
	}
	vSeries := res.LevelSeries["v"]
	if vSeries == nil || vSeries.N() < 2 {
		t.Fatalf("video level series = %+v", vSeries)
	}
	// Video degraded before audio (video-first rule).
	for _, a := range res.Actions {
		if a.Kind == qos.ActDegrade {
			if a.StreamID != "v" {
				t.Fatalf("first degrade on %s", a.StreamID)
			}
			break
		}
	}
}

func TestResultAccessorsOnEmpty(t *testing.T) {
	r := &Result{}
	if r.Gaps() != 0 || r.Plays() != 0 || r.Expected() != 0 || r.Drops() != 0 {
		t.Fatal("empty result sums non-zero")
	}
	if r.QualityScore() != 0 || r.MaxSkewMS() != 0 || r.MeanSkewMS() != 0 {
		t.Fatal("empty result metrics non-zero")
	}
	if r.DegradeCount() != 0 {
		t.Fatal("empty degrades")
	}
}

func TestPlayExposesBufferStats(t *testing.T) {
	res, err := Play(PlayConfig{DocSource: hml.Figure2Source, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Buffers) != 5 {
		t.Fatalf("buffer stats for %d streams", len(res.Buffers))
	}
	v := res.Buffers["V"]
	if v.Pushed == 0 || v.Popped == 0 {
		t.Fatalf("video buffer stats = %+v", v)
	}
}

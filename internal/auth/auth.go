// Package auth implements the service's user-facing administrative
// primitives: the subscription form and the "coherent, centralized database
// of authorized users", authentication, the pricing mechanism, and the
// access log that captures "the exact time logged into the service, as well
// as the lessons that are retrieved".
package auth

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/qos"
)

// User is one subscribed user record.
type User struct {
	Name     string
	Password string
	RealName string
	Address  string
	Email    string
	Phone    string
	Class    qos.PricingClass
	// SubscribedAt records when the subscription form was accepted.
	SubscribedAt time.Time
}

// AccessKind classifies access-log entries.
type AccessKind int

// Access log entry kinds.
const (
	AccessLogin AccessKind = iota
	AccessLogout
	AccessRetrieve
	AccessDenied
)

func (k AccessKind) String() string {
	switch k {
	case AccessLogin:
		return "login"
	case AccessLogout:
		return "logout"
	case AccessRetrieve:
		return "retrieve"
	case AccessDenied:
		return "denied"
	default:
		return "unknown"
	}
}

// AccessEntry is one access-log record.
type AccessEntry struct {
	At     time.Time
	User   string
	Kind   AccessKind
	Detail string
}

// Charge is one pricing-mechanism record.
type Charge struct {
	At     time.Time
	User   string
	Amount float64 // service units
	Detail string
}

// Errors returned by the database.
var (
	ErrUnknownUser  = errors.New("auth: unknown user")
	ErrBadPassword  = errors.New("auth: bad password")
	ErrDuplicate    = errors.New("auth: user already subscribed")
	ErrorIncomplete = errors.New("auth: incomplete subscription form")
)

// DB is the centralized database of authorized users, shared by all servers
// of the service (the paper propagates the form "to every server of the
// service"; a shared store models the resulting coherent database).
type DB struct {
	mu      sync.Mutex
	users   map[string]*User
	log     []AccessEntry
	charges []Charge
	// RatePerSecond prices connection time per class.
	rates map[qos.PricingClass]float64
}

// NewDB creates an empty user database with default pricing rates.
func NewDB() *DB {
	return &DB{
		users: map[string]*User{},
		rates: map[qos.PricingClass]float64{
			qos.Economy:  1,
			qos.Standard: 2,
			qos.Premium:  5,
		},
	}
}

// Subscribe validates and stores a subscription form.
func (db *DB) Subscribe(u User, at time.Time) error {
	if u.Name == "" || u.Password == "" || u.Email == "" {
		return ErrorIncomplete
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.users[u.Name]; ok {
		return ErrDuplicate
	}
	u.SubscribedAt = at
	db.users[u.Name] = &u
	return nil
}

// Authenticate verifies credentials and logs the attempt.
func (db *DB) Authenticate(name, password string, at time.Time) (*User, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	u, ok := db.users[name]
	if !ok {
		db.log = append(db.log, AccessEntry{At: at, User: name, Kind: AccessDenied, Detail: "unknown user"})
		return nil, ErrUnknownUser
	}
	if u.Password != password {
		db.log = append(db.log, AccessEntry{At: at, User: name, Kind: AccessDenied, Detail: "bad password"})
		return nil, ErrBadPassword
	}
	db.log = append(db.log, AccessEntry{At: at, User: name, Kind: AccessLogin})
	cp := *u
	return &cp, nil
}

// Known reports whether a user is subscribed.
func (db *DB) Known(name string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, ok := db.users[name]
	return ok
}

// LogRetrieval records a lesson retrieval.
func (db *DB) LogRetrieval(user, lesson string, at time.Time) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.log = append(db.log, AccessEntry{At: at, User: user, Kind: AccessRetrieve, Detail: lesson})
}

// LogLogout records a disconnect.
func (db *DB) LogLogout(user string, at time.Time) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.log = append(db.log, AccessEntry{At: at, User: user, Kind: AccessLogout})
}

// AccessLog returns entries for a user ("" = all).
func (db *DB) AccessLog(user string) []AccessEntry {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []AccessEntry
	for _, e := range db.log {
		if user == "" || e.User == user {
			out = append(out, e)
		}
	}
	return out
}

// ChargeSession records the pricing for a completed session of the given
// duration and returns the amount.
func (db *DB) ChargeSession(user string, d time.Duration, at time.Time) (float64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	u, ok := db.users[user]
	if !ok {
		return 0, ErrUnknownUser
	}
	amount := db.rates[u.Class] * d.Seconds()
	db.charges = append(db.charges, Charge{
		At: at, User: user, Amount: amount,
		Detail: fmt.Sprintf("session %.0fs @ %s", d.Seconds(), u.Class),
	})
	return amount, nil
}

// Balance returns a user's total charges.
func (db *DB) Balance(user string) float64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	sum := 0.0
	for _, c := range db.charges {
		if c.User == user {
			sum += c.Amount
		}
	}
	return sum
}

// Users returns the number of subscribed users.
func (db *DB) Users() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.users)
}

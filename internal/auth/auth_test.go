package auth

import (
	"errors"
	"testing"
	"time"

	"repro/internal/qos"
)

var t0 = time.Date(1996, 8, 6, 9, 0, 0, 0, time.UTC)

func form(name string) User {
	return User{
		Name: name, Password: "pw", RealName: "Real " + name,
		Address: "Rio, Patras", Email: name + "@example.gr", Phone: "061-123456",
		Class: qos.Standard,
	}
}

func TestSubscribeAndAuthenticate(t *testing.T) {
	db := NewDB()
	if err := db.Subscribe(form("alice"), t0); err != nil {
		t.Fatal(err)
	}
	if !db.Known("alice") || db.Known("bob") {
		t.Fatal("Known wrong")
	}
	u, err := db.Authenticate("alice", "pw", t0.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if u.Class != qos.Standard || u.SubscribedAt != t0 {
		t.Fatalf("user = %+v", u)
	}
	if db.Users() != 1 {
		t.Fatalf("users = %d", db.Users())
	}
}

func TestSubscribeValidation(t *testing.T) {
	db := NewDB()
	bad := form("x")
	bad.Email = ""
	if err := db.Subscribe(bad, t0); !errors.Is(err, ErrorIncomplete) {
		t.Fatalf("err = %v", err)
	}
	db.Subscribe(form("x"), t0)
	if err := db.Subscribe(form("x"), t0); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("dup err = %v", err)
	}
}

func TestAuthenticateFailures(t *testing.T) {
	db := NewDB()
	db.Subscribe(form("alice"), t0)
	if _, err := db.Authenticate("bob", "pw", t0); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.Authenticate("alice", "wrong", t0); !errors.Is(err, ErrBadPassword) {
		t.Fatalf("err = %v", err)
	}
	// Both failures logged as denied.
	denied := 0
	for _, e := range db.AccessLog("") {
		if e.Kind == AccessDenied {
			denied++
		}
	}
	if denied != 2 {
		t.Fatalf("denied = %d", denied)
	}
}

func TestAccessLogCapture(t *testing.T) {
	db := NewDB()
	db.Subscribe(form("alice"), t0)
	db.Authenticate("alice", "pw", t0)
	db.LogRetrieval("alice", "lesson-1", t0.Add(time.Minute))
	db.LogRetrieval("alice", "lesson-2", t0.Add(2*time.Minute))
	db.LogLogout("alice", t0.Add(3*time.Minute))
	log := db.AccessLog("alice")
	if len(log) != 4 {
		t.Fatalf("log = %d entries", len(log))
	}
	kinds := []AccessKind{AccessLogin, AccessRetrieve, AccessRetrieve, AccessLogout}
	for i, k := range kinds {
		if log[i].Kind != k {
			t.Fatalf("entry %d = %v, want %v", i, log[i].Kind, k)
		}
	}
	if log[1].Detail != "lesson-1" {
		t.Fatalf("detail = %q", log[1].Detail)
	}
	if len(db.AccessLog("nobody")) != 0 {
		t.Fatal("phantom log")
	}
}

func TestPricingByClassAndDuration(t *testing.T) {
	db := NewDB()
	eco, prem := form("eco"), form("prem")
	eco.Class, prem.Class = qos.Economy, qos.Premium
	db.Subscribe(eco, t0)
	db.Subscribe(prem, t0)
	ae, err := db.ChargeSession("eco", 100*time.Second, t0)
	if err != nil {
		t.Fatal(err)
	}
	ap, _ := db.ChargeSession("prem", 100*time.Second, t0)
	if ae != 100 || ap != 500 {
		t.Fatalf("charges = %v / %v", ae, ap)
	}
	db.ChargeSession("prem", 10*time.Second, t0)
	if db.Balance("prem") != 550 {
		t.Fatalf("balance = %v", db.Balance("prem"))
	}
	if _, err := db.ChargeSession("ghost", time.Second, t0); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("ghost charge err = %v", err)
	}
	if db.Balance("ghost") != 0 {
		t.Fatal("ghost balance")
	}
}

func TestAccessKindStrings(t *testing.T) {
	for k := AccessLogin; k <= AccessDenied; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
	if AccessKind(99).String() != "unknown" {
		t.Fatal("out of range")
	}
}

package playout

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/scenario"
)

// RenderTrace draws what actually happened during a presentation: one row
// per stream with its scheduled playout span, overlaid with the trouble the
// display trace recorded — '!' gaps (missed deadlines), 'x' drops, 'h'
// holds, 'L' a late still. A clean presentation shows uninterrupted '='
// bars; congestion paints its history onto them.
func RenderTrace(disp *Display, sch *scenario.Schedule, width int) string {
	if width < 20 {
		width = 20
	}
	length := sch.Length
	if sch.HasLinkAt && sch.LinkAt > length {
		length = sch.LinkAt
	}
	if length <= 0 {
		return "(empty schedule)\n"
	}
	scale := func(t time.Duration) int {
		p := int(float64(t) / float64(length) * float64(width))
		if p < 0 {
			p = 0
		}
		if p > width-1 {
			p = width - 1
		}
		return p
	}
	idW := 2
	for _, e := range sch.Entries {
		if len(e.Stream.ID) > idW {
			idW = len(e.Stream.ID)
		}
	}
	events := disp.Events()
	var b strings.Builder
	fmt.Fprintf(&b, "playout trace — %s scheduled, '!' gap  'x' drop  'h' hold  'L' late still\n", length)
	type trouble struct{ gaps, drops, holds int }
	for _, e := range sch.Entries {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		from := scale(e.PlayAt)
		to := width
		if e.Stream.Duration > 0 {
			to = scale(e.EndAt)
		}
		if to <= from {
			to = from + 1
		}
		for i := from; i < to && i < width; i++ {
			row[i] = '='
		}
		var tr trouble
		for _, ev := range events {
			if ev.StreamID != e.Stream.ID {
				continue
			}
			switch ev.Kind {
			case EvGap:
				row[scale(ev.At)] = '!'
				tr.gaps++
			case EvDrop:
				row[scale(ev.At)] = 'x'
				tr.drops++
			case EvHold:
				row[scale(ev.At)] = 'h'
				tr.holds++
			case EvLate:
				row[scale(ev.At)] = 'L'
			}
		}
		note := ""
		if tr.gaps+tr.drops+tr.holds > 0 {
			note = fmt.Sprintf("  (%d gaps, %d drops, %d holds)", tr.gaps, tr.drops, tr.holds)
		}
		fmt.Fprintf(&b, "%-*s |%s|%s\n", idW, e.Stream.ID, string(row), note)
	}
	return b.String()
}

// Summarize renders the per-stream quality report as text, ordered by
// stream id.
func (r Report) Summarize() string {
	ids := make([]string, 0, len(r.Streams))
	for id := range r.Streams {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b strings.Builder
	for _, id := range ids {
		s := r.Streams[id]
		fmt.Fprintf(&b, "%-12s plays %4d/%4d  gaps %3d  drops %3d  holds %3d  late μ=%.1fms max=%.1fms\n",
			id, s.Plays, s.Expected, s.Gaps, s.Drops, s.Holds, s.MeanLatenessMS, s.MaxLatenessMS)
	}
	for group, sk := range r.Skew {
		fmt.Fprintf(&b, "%-12s skew μ=%.1fms p95=%.1fms max=%.1fms (%d samples)\n",
			group, sk.Mean(), sk.Percentile(95), sk.Max(), sk.N())
	}
	return b.String()
}

// Package playout implements the client's presentation scheduler: the
// component that preprocesses the presentation scenario into per-stream
// playout processes, enforces intra-media deadlines, measures inter-media
// skew within synchronization groups, and applies the paper's short-term
// recovery actions — duplicating frames of a lagging stream and dropping
// frames of a leading or over-buffered stream — before the long-term
// quality-grading mechanism at the server kicks in.
//
// The scheduler is written against clock.Clock, so the same code runs as a
// discrete-event simulation (clock.Virtual) and in real time (clock.Wall).
package playout

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/media"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// EventKind classifies playout trace events.
type EventKind int

// Playout event kinds.
const (
	// EvStart marks a stream's playout process starting.
	EvStart EventKind = iota
	// EvPlay is a frame presented on its device.
	EvPlay
	// EvGap is a playout tick that found no data: the previous frame is
	// duplicated to conceal the gap (buffer underflow).
	EvGap
	// EvHold is a deliberate duplication ordered by skew control on a
	// leading stream.
	EvHold
	// EvDrop is a frame discarded by skew or watermark control.
	EvDrop
	// EvLate is a still that missed its appearance deadline.
	EvLate
	// EvStop marks a stream's playout end.
	EvStop
	// EvLink is a timed hyperlink firing.
	EvLink
	// EvPause and EvResume bracket user pauses.
	EvPause
	// EvResume marks presentation resumption.
	EvResume
)

func (k EventKind) String() string {
	switch k {
	case EvStart:
		return "start"
	case EvPlay:
		return "play"
	case EvGap:
		return "gap"
	case EvHold:
		return "hold"
	case EvDrop:
		return "drop"
	case EvLate:
		return "late"
	case EvStop:
		return "stop"
	case EvLink:
		return "link"
	case EvPause:
		return "pause"
	case EvResume:
		return "resume"
	default:
		return "unknown"
	}
}

// Event is one entry in the playout trace.
type Event struct {
	// At is the presentation-relative time of the event.
	At time.Duration
	// StreamID is the stream concerned ("" for presentation-level events).
	StreamID string
	// Kind classifies the event.
	Kind EventKind
	// Frame is the access unit involved (plays, drops).
	Frame media.Frame
	// Lateness is how far behind its ideal instant the frame played.
	Lateness time.Duration
	// Note carries free-form detail.
	Note string
}

// Display records playout events — the trace stand-in for the browser's
// rendering surface. It is safe for concurrent use.
type Display struct {
	mu     sync.Mutex
	events []Event
}

// NewDisplay creates an empty display trace.
func NewDisplay() *Display { return &Display{} }

// Record appends an event.
func (d *Display) Record(ev Event) {
	d.mu.Lock()
	d.events = append(d.events, ev)
	d.mu.Unlock()
}

// Events returns a copy of the trace.
func (d *Display) Events() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Event, len(d.events))
	copy(out, d.events)
	return out
}

// Count returns how many events of kind k (optionally restricted to a
// stream; "" = all) were recorded.
func (d *Display) Count(k EventKind, streamID string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, ev := range d.events {
		if ev.Kind == k && (streamID == "" || ev.StreamID == streamID) {
			n++
		}
	}
	return n
}

// Options tunes the presentation scheduler.
type Options struct {
	// SkewThreshold is the intermedia skew beyond which short-term
	// recovery acts. Steinmetz-style lip-sync tolerance is ±80 ms.
	SkewThreshold time.Duration
	// SkewCheckInterval is the monitor period.
	SkewCheckInterval time.Duration
	// EnableSkewControl turns the short-term recovery on.
	EnableSkewControl bool
	// EnableWatermarkControl drops frames when a buffer exceeds its high
	// watermark.
	EnableWatermarkControl bool
	// OnLink is invoked when a timed hyperlink fires.
	OnLink func(scenario.Link)
	// StillRetryInterval is how often an unplayed still checks for its
	// data after missing its deadline.
	StillRetryInterval time.Duration
	// Obs, when set, receives playout counters, a lateness histogram, and
	// deadline-miss/skew-action trace events.
	Obs *obs.Scope
}

func (o *Options) fill() {
	if o.SkewThreshold <= 0 {
		o.SkewThreshold = 80 * time.Millisecond
	}
	if o.SkewCheckInterval <= 0 {
		o.SkewCheckInterval = 100 * time.Millisecond
	}
	if o.StillRetryInterval <= 0 {
		o.StillRetryInterval = 50 * time.Millisecond
	}
}

// streamState is the runtime state of one playout process.
type streamState struct {
	entry    *scenario.Entry
	buf      *buffer.Buffer
	interval time.Duration
	still    bool

	started bool
	done    bool
	// mediaPos is the PTS the stream expects to play next.
	mediaPos time.Duration
	// holdTicks orders deliberate duplications (skew control on a leader).
	holdTicks int
	ticker    *clock.Timer
	lateness  stats.Sample
	plays     int
	gaps      int
	holds     int
	drops     int
	lateStill bool
}

// Player is the presentation scheduler.
type Player struct {
	mu   sync.Mutex
	clk  clock.Clock
	sc   *scenario.Scenario
	sch  *scenario.Schedule
	bufs *buffer.Set
	disp *Display
	opts Options

	origin    time.Time // wall instant of presentation time zero
	started   bool
	finished  bool
	paused    bool
	pausedAt  time.Duration
	streams   map[string]*streamState
	timers    []*clock.Timer
	skewTimer *clock.Timer
	linkFired bool
	// skew samples per sync group (milliseconds).
	skew map[string]*stats.Sample

	// Telemetry (no-ops when Options carried no scope).
	obs       *obs.Scope
	spans     *obs.FrameSpans
	mPlays    *stats.Counter
	mGaps     *stats.Counter
	mHolds    *stats.Counter
	mDrops    *stats.Counter
	hLateness *stats.DurationHistogram
}

// New builds a player over prepared buffers. The schedule must come from
// the same scenario.
func New(clk clock.Clock, sc *scenario.Scenario, sch *scenario.Schedule, bufs *buffer.Set, disp *Display, opts Options) *Player {
	opts.fill()
	p := &Player{
		clk: clk, sc: sc, sch: sch, bufs: bufs, disp: disp, opts: opts,
		streams:   map[string]*streamState{},
		skew:      map[string]*stats.Sample{},
		obs:       opts.Obs,
		spans:     opts.Obs.FrameSpans(),
		mPlays:    opts.Obs.Counter("playout_plays"),
		mGaps:     opts.Obs.Counter("playout_gaps"),
		mHolds:    opts.Obs.Counter("playout_holds"),
		mDrops:    opts.Obs.Counter("playout_drops"),
		hLateness: opts.Obs.Histogram("playout_lateness"),
	}
	for _, e := range sch.Entries {
		b := bufs.Get(e.BufferKey)
		interval := time.Second
		if b != nil {
			interval = b.FrameInterval
		}
		p.streams[e.Stream.ID] = &streamState{
			entry:    e,
			buf:      b,
			interval: interval,
			still:    !e.Stream.Type.TimeSensitive(),
		}
	}
	return p
}

// now returns the current presentation-relative time.
func (p *Player) now() time.Duration {
	if p.paused {
		return p.pausedAt
	}
	return p.clk.Since(p.origin)
}

// Now exposes the presentation clock (0 before Start).
func (p *Player) Now() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.started {
		return 0
	}
	return p.now()
}

// Start begins the presentation at the current instant. The caller is
// responsible for the deliberate initial delay (waiting for buffers to
// fill) before calling Start.
func (p *Player) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return
	}
	p.started = true
	p.origin = p.clk.Now()
	p.armAllLocked(0)
}

// armAllLocked schedules every pending timer from presentation time from.
func (p *Player) armAllLocked(from time.Duration) {
	for _, s := range p.streams {
		p.armStreamLocked(s, from)
	}
	if p.sch.HasLinkAt && !p.linkFired && p.sch.LinkAt >= from {
		p.addTimer(p.sch.LinkAt-from, p.fireLink)
	}
	// The monitor always runs so skew is measured even when the recovery
	// actions are disabled (the E2 ablation compares the two).
	p.skewTimer = p.clk.AfterFunc(p.opts.SkewCheckInterval, p.skewCheck)
}

func (p *Player) addTimer(d time.Duration, fn func()) {
	t := p.clk.AfterFunc(d, fn)
	p.timers = append(p.timers, t)
}

func (p *Player) armStreamLocked(s *streamState, from time.Duration) {
	if s.done {
		return
	}
	id := s.entry.Stream.ID
	if !s.started {
		delay := s.entry.PlayAt - from
		if delay < 0 {
			delay = 0
		}
		p.addTimer(delay, func() { p.startStream(id) })
		return
	}
	// Already started: resume ticking / end timers.
	if s.still {
		if !s.done && s.entry.Stream.Duration > 0 {
			p.addTimer(s.entry.EndAt-from, func() { p.stopStream(id) })
		}
		return
	}
	s.ticker = p.clk.AfterFunc(s.interval, func() { p.tick(id) })
	if s.entry.Stream.Duration > 0 {
		p.addTimer(s.entry.EndAt-from, func() { p.stopStream(id) })
	}
}

func (p *Player) startStream(id string) {
	p.mu.Lock()
	s := p.streams[id]
	if s == nil || s.started || s.done || p.finished || p.paused {
		p.mu.Unlock()
		return
	}
	s.started = true
	at := p.now()
	p.disp.Record(Event{At: at, StreamID: id, Kind: EvStart})
	if s.still {
		p.mu.Unlock()
		p.playStill(id)
		p.mu.Lock()
		if s.entry.Stream.Duration > 0 {
			p.addTimer(s.entry.EndAt-p.now(), func() { p.stopStream(id) })
		}
		p.mu.Unlock()
		return
	}
	if s.entry.Stream.Duration > 0 {
		p.addTimer(s.entry.EndAt-at, func() { p.stopStream(id) })
	}
	p.mu.Unlock()
	p.tick(id)
}

// playStill attempts to present a still (image/text). If its data has not
// arrived it records one EvLate and retries.
func (p *Player) playStill(id string) {
	p.mu.Lock()
	s := p.streams[id]
	if s == nil || s.done || p.finished || p.paused {
		p.mu.Unlock()
		return
	}
	it, ok := s.buf.Pop()
	at := p.now()
	ideal := s.entry.PlayAt
	if ok {
		late := at - ideal
		if late < 0 {
			late = 0
		}
		s.plays++
		s.lateness.AddDuration(late)
		p.mPlays.Inc()
		p.hLateness.Observe(late)
		p.disp.Record(Event{At: at, StreamID: id, Kind: EvPlay, Frame: it.Frame, Lateness: late})
		p.mu.Unlock()
		return
	}
	if !s.lateStill {
		s.lateStill = true
		s.gaps++
		p.mGaps.Inc()
		p.obs.Emit(obs.EvDeadlineMiss, id, 1, "still data not yet arrived")
		p.disp.Record(Event{At: at, StreamID: id, Kind: EvLate, Note: "data not yet arrived"})
	}
	p.addTimer(p.opts.StillRetryInterval, func() { p.playStill(id) })
	p.mu.Unlock()
}

// tick is one playout-process step for a time-sensitive stream.
func (p *Player) tick(id string) {
	p.mu.Lock()
	s := p.streams[id]
	if s == nil || s.done || !s.started || p.finished || p.paused {
		p.mu.Unlock()
		return
	}
	at := p.now()
	if s.holdTicks > 0 {
		// Skew control ordered this leader to hold: replay last frame.
		s.holdTicks--
		s.holds++
		p.mHolds.Inc()
		p.disp.Record(Event{At: at, StreamID: id, Kind: EvHold, Note: "skew control hold"})
	} else {
		// Play only the frame that is actually due: a playout slot whose
		// expected frame has not arrived is a gap, concealed by
		// duplicating the previous frame — never papered over by pulling
		// a future frame forward.
		duePTS := at - s.entry.PlayAt
		it, ok := s.buf.PopDue(duePTS)
		if ok {
			ideal := s.entry.PlayAt + it.Frame.PTS
			late := at - ideal
			if late < 0 {
				late = 0
			}
			s.plays++
			s.lateness.AddDuration(late)
			s.mediaPos = it.Frame.PTS + s.interval
			p.mPlays.Inc()
			p.hLateness.Observe(late)
			if p.spans.Sampled(uint32(it.Frame.Index)) && !it.ArrivedAt.IsZero() {
				// Deadline slack: how long the frame sat reassembled before
				// its ideal play instant (0 when it arrived late).
				slack := p.origin.Add(ideal).Sub(it.ArrivedAt)
				if slack < 0 {
					slack = 0
				}
				p.spans.RecordSlack(id, slack)
			}
			p.disp.Record(Event{At: at, StreamID: id, Kind: EvPlay, Frame: it.Frame, Lateness: late})
		} else {
			// Underflow: conceal with a duplicate; media position holds.
			s.gaps++
			p.mGaps.Inc()
			p.obs.Emit(obs.EvDeadlineMiss, id, 1, "underflow gap")
			p.disp.Record(Event{At: at, StreamID: id, Kind: EvGap, Frame: it.Frame, Note: "underflow duplicate"})
		}
	}
	s.ticker = p.clk.AfterFunc(s.interval, func() { p.tick(id) })
	p.mu.Unlock()
}

// stopStream ends one stream's playout.
func (p *Player) stopStream(id string) {
	p.mu.Lock()
	s := p.streams[id]
	if s == nil || s.done {
		p.mu.Unlock()
		return
	}
	s.done = true
	if s.ticker != nil {
		s.ticker.Stop()
	}
	p.disp.Record(Event{At: p.now(), StreamID: id, Kind: EvStop})
	p.mu.Unlock()
}

// fireLink follows the scenario's timed hyperlink and ends the presentation.
func (p *Player) fireLink() {
	p.mu.Lock()
	if p.linkFired || p.finished || p.paused {
		p.mu.Unlock()
		return
	}
	p.linkFired = true
	link := p.sc.NextTimedLink(0)
	at := p.now()
	p.disp.Record(Event{At: at, StreamID: "", Kind: EvLink, Note: link.Target})
	cb := p.opts.OnLink
	p.mu.Unlock()
	if cb != nil && link != nil {
		cb(*link)
	}
	p.Finish()
}

// skewCheck is the periodic buffer/synchronization monitor.
func (p *Player) skewCheck() {
	p.mu.Lock()
	if p.finished || p.paused {
		p.mu.Unlock()
		return
	}
	now := p.now()
	if p.opts.EnableWatermarkControl {
		for id, s := range p.streams {
			if s.still || !s.started || s.done || s.buf == nil {
				continue
			}
			if s.buf.AboveHigh() {
				// Trim the stale backlog behind the playout position,
				// never future frames: high occupancy from pre-rolled
				// upcoming data is healthy, accumulated lateness is not.
				due := now - s.entry.PlayAt
				excess := int((s.buf.Occupancy() - s.buf.Window) / s.interval)
				if excess > 0 {
					n, floor := s.buf.DropBefore(due, excess)
					if n > 0 {
						s.drops += n
						if floor > s.mediaPos {
							s.mediaPos = floor
						}
						p.mDrops.Add(int64(n))
						p.obs.Emit(obs.EvFrameDrop, id, int64(n), "watermark trim")
						p.disp.Record(Event{At: now, StreamID: id, Kind: EvDrop,
							Note: fmt.Sprintf("watermark drop ×%d", n)})
					}
				}
			}
		}
	}
	for group, members := range p.sc.SyncGroups() {
		p.controlGroupLocked(group, members, now)
	}
	p.skewTimer = p.clk.AfterFunc(p.opts.SkewCheckInterval, p.skewCheck)
	p.mu.Unlock()
}

// controlGroupLocked measures the group's pairwise skew and applies the
// short-term actions: the lagging stream drops buffered frames to catch up;
// when it has nothing to drop, the leading stream holds (duplicates).
func (p *Player) controlGroupLocked(group string, members []*scenario.Stream, now time.Duration) {
	var lead, lag *streamState
	for _, m := range members {
		s := p.streams[m.ID]
		if s == nil || !s.started || s.done {
			return // group not fully active
		}
		if lead == nil || s.mediaPos > lead.mediaPos {
			lead = s
		}
		if lag == nil || s.mediaPos < lag.mediaPos {
			lag = s
		}
	}
	if lead == nil || lag == nil || lead == lag {
		return
	}
	skew := lead.mediaPos - lag.mediaPos
	sample := p.skew[group]
	if sample == nil {
		sample = &stats.Sample{}
		p.skew[group] = sample
	}
	sample.AddDuration(skew)
	if !p.opts.EnableSkewControl || skew <= p.opts.SkewThreshold {
		return
	}
	frames := int(skew / lag.interval)
	if frames < 1 {
		frames = 1
	}
	if lag.buf != nil && lag.buf.Len() > 0 {
		n, floor := lag.buf.Drop(frames)
		lag.drops += n
		if floor > lag.mediaPos {
			lag.mediaPos = floor
		}
		p.mDrops.Add(int64(n))
		if p.obs.Enabled() {
			p.obs.Emit(obs.EvSkewAction, lag.entry.Stream.ID, int64(n),
				fmt.Sprintf("drop to catch up (group %s, skew %v)", group, skew))
		}
		p.disp.Record(Event{At: now, StreamID: lag.entry.Stream.ID, Kind: EvDrop,
			Note: fmt.Sprintf("skew catch-up ×%d (group %s)", n, group)})
		return
	}
	holdFrames := int(skew / lead.interval)
	if holdFrames < 1 {
		holdFrames = 1
	}
	if lead.holdTicks < holdFrames {
		lead.holdTicks = holdFrames
		if p.obs.Enabled() {
			p.obs.Emit(obs.EvSkewAction, lead.entry.Stream.ID, int64(holdFrames),
				fmt.Sprintf("hold to let group %s catch up (skew %v)", group, skew))
		}
		p.disp.Record(Event{At: now, StreamID: lead.entry.Stream.ID, Kind: EvHold,
			Note: fmt.Sprintf("skew hold ×%d (group %s)", holdFrames, group)})
	}
}

// Pause freezes the presentation (user control operation).
func (p *Player) Pause() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.started || p.paused || p.finished {
		return
	}
	p.pausedAt = p.now()
	p.paused = true
	p.cancelTimersLocked()
	p.disp.Record(Event{At: p.pausedAt, Kind: EvPause})
}

// Resume continues a paused presentation from where it stopped.
func (p *Player) Resume() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.paused || p.finished {
		return
	}
	p.paused = false
	p.origin = p.clk.Now().Add(-p.pausedAt)
	p.disp.Record(Event{At: p.pausedAt, Kind: EvResume})
	p.armAllLocked(p.pausedAt)
}

// Paused reports the pause state.
func (p *Player) Paused() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.paused
}

// Finish ends the presentation, stopping every stream.
func (p *Player) Finish() {
	p.mu.Lock()
	if p.finished {
		p.mu.Unlock()
		return
	}
	p.finished = true
	now := p.now()
	p.cancelTimersLocked()
	for id, s := range p.streams {
		if s.started && !s.done {
			s.done = true
			p.disp.Record(Event{At: now, StreamID: id, Kind: EvStop})
		} else {
			s.done = true
		}
	}
	p.mu.Unlock()
}

// Finished reports completion.
func (p *Player) Finished() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.finished
}

func (p *Player) cancelTimersLocked() {
	for _, t := range p.timers {
		t.Stop()
	}
	p.timers = nil
	if p.skewTimer != nil {
		p.skewTimer.Stop()
		p.skewTimer = nil
	}
	for _, s := range p.streams {
		if s.ticker != nil {
			s.ticker.Stop()
			s.ticker = nil
		}
	}
}

// StreamReport summarizes one stream's playout quality.
type StreamReport struct {
	StreamID string
	Plays    int
	Gaps     int
	Holds    int
	Drops    int
	// MeanLatenessMS and MaxLatenessMS summarize play lateness.
	MeanLatenessMS float64
	MaxLatenessMS  float64
	// Expected is the nominal frame count (duration / interval).
	Expected int
}

// DeadlineMissRate returns the fraction of expected frames that missed
// their deadline (gaps) — the intra-media synchronization metric.
func (r StreamReport) DeadlineMissRate() float64 {
	if r.Expected == 0 {
		return 0
	}
	return float64(r.Gaps) / float64(r.Expected)
}

// Report summarizes the whole presentation.
type Report struct {
	Streams map[string]StreamReport
	// Skew holds per-group skew samples in milliseconds.
	Skew map[string]*stats.Sample
}

// Report builds the quality summary.
func (p *Player) Report() Report {
	p.mu.Lock()
	defer p.mu.Unlock()
	rep := Report{Streams: map[string]StreamReport{}, Skew: p.skew}
	for id, s := range p.streams {
		expected := 0
		if !s.still && s.interval > 0 && s.entry.Stream.Duration > 0 {
			expected = int(s.entry.Stream.Duration / s.interval)
		} else if s.still {
			expected = 1
		}
		rep.Streams[id] = StreamReport{
			StreamID:       id,
			Plays:          s.plays,
			Gaps:           s.gaps,
			Holds:          s.holds,
			Drops:          s.drops,
			MeanLatenessMS: s.lateness.Mean(),
			MaxLatenessMS:  s.lateness.Max(),
			Expected:       expected,
		}
	}
	return rep
}

// GroupSkew returns the recorded skew sample for a sync group (nil when the
// group never had both members active).
func (p *Player) GroupSkew(group string) *stats.Sample {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.skew[group]
}

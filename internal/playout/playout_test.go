package playout

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/media"
	"repro/internal/scenario"
)

const avSource = `<TITLE>av</TITLE>
<AU_VI SOURCE=au/a SOURCE=vi/v ID=a ID=v STARTIME=0 DURATION=10> </AU_VI>`

const fullSource = `<TITLE>full</TITLE>
<IMG SOURCE=img/i ID=i STARTIME=1 DURATION=5 WIDTH=64 HEIGHT=64> </IMG>
<AU_VI SOURCE=au/a SOURCE=vi/v ID=a ID=v STARTIME=0 DURATION=10> </AU_VI>
<HLINK HREF=next.hml AT=12 KIND=SEQ> </HLINK>`

// rig wires a scenario to buffers, a display and a player on a virtual
// clock, and provides a frame feeder that emulates network arrivals.
type rig struct {
	clk  *clock.Virtual
	sc   *scenario.Scenario
	sch  *scenario.Schedule
	bufs *buffer.Set
	disp *Display
	p    *Player
}

func newRig(t testing.TB, src string, opts Options) *rig {
	t.Helper()
	sc, err := scenario.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	clk := clock.NewSim()
	bufs := buffer.NewSet()
	for _, s := range sc.TimedStreams() {
		fi := 40 * time.Millisecond
		switch s.Type {
		case scenario.TypeAudio:
			fi = 20 * time.Millisecond
		case scenario.TypeImage, scenario.TypeText:
			fi = time.Second
		}
		bufs.Create(buffer.Config{
			StreamID:      s.ID,
			FrameInterval: fi,
			Window:        400 * time.Millisecond,
		})
	}
	disp := NewDisplay()
	sch := scenario.BuildSchedule(sc)
	p := New(clk, sc, sch, bufs, disp, opts)
	return &rig{clk: clk, sc: sc, sch: sch, bufs: bufs, disp: disp, p: p}
}

// feed schedules arrivals for stream id: each frame of src in [0,dur)
// arrives at startOffset + PTS + delay(i).
func (r *rig) feed(id string, src media.Source, dur time.Duration, startOffset time.Duration, delay func(i int) time.Duration) {
	buf := r.bufs.Get(id)
	frames := src.FramesIn(0, dur, 0)
	for _, f := range frames {
		f := f
		d := startOffset + f.PTS
		if delay != nil {
			d += delay(f.Index)
		}
		r.clk.AfterFunc(d, func() {
			buf.Push(buffer.Item{Frame: f, ArrivedAt: r.clk.Now()})
		})
	}
}

func (r *rig) run(d time.Duration) { r.clk.RunFor(d) }

func TestPerfectDeliveryPlaysEverything(t *testing.T) {
	r := newRig(t, avSource, Options{EnableSkewControl: true})
	au := media.NewAudio("a", nil)
	vi := media.NewVideo("v", nil)
	r.feed("a", au, 10*time.Second, 0, nil)
	r.feed("v", vi, 10*time.Second, 0, nil)
	// Start after the 400ms window fills.
	r.clk.AfterFunc(500*time.Millisecond, r.p.Start)
	r.run(15 * time.Second)
	rep := r.p.Report()
	a, v := rep.Streams["a"], rep.Streams["v"]
	if a.Plays < a.Expected-2 || v.Plays < v.Expected-2 {
		t.Fatalf("plays a=%d/%d v=%d/%d", a.Plays, a.Expected, v.Plays, v.Expected)
	}
	// Few or no gaps under perfect delivery with a filled window.
	if a.Gaps > 1 || v.Gaps > 1 {
		t.Fatalf("gaps a=%d v=%d", a.Gaps, v.Gaps)
	}
	// Skew stays tiny.
	if sk := r.p.GroupSkew("sync-1"); sk == nil || sk.Max() > 100 {
		t.Fatalf("skew sample = %+v", sk)
	}
	if r.disp.Count(EvStop, "a") != 1 || r.disp.Count(EvStop, "v") != 1 {
		t.Fatal("streams did not stop")
	}
}

func TestOutageCausesGapsWithoutControl(t *testing.T) {
	r := newRig(t, avSource, Options{EnableSkewControl: false})
	au := media.NewAudio("a", nil)
	vi := media.NewVideo("v", nil)
	r.feed("a", au, 10*time.Second, 0, nil)
	// Video frames due in [2s,4s) all arrive at 4s (burst outage).
	r.feed("v", vi, 10*time.Second, 0, func(i int) time.Duration {
		pts := time.Duration(i) * 40 * time.Millisecond
		if pts >= 2*time.Second && pts < 4*time.Second {
			return 4*time.Second - pts
		}
		return 0
	})
	r.clk.AfterFunc(500*time.Millisecond, r.p.Start)
	r.run(15 * time.Second)
	rep := r.p.Report()
	v := rep.Streams["v"]
	if v.Gaps < 20 {
		t.Fatalf("video gaps = %d, want many during outage", v.Gaps)
	}
	// Without control the backlog leaves lasting skew.
	sk := r.p.GroupSkew("sync-1")
	if sk == nil {
		t.Fatal("no skew recorded")
	}
	if last := sk.Percentile(100); last < 500 {
		t.Fatalf("max skew %vms, want large without control", last)
	}
}

func TestSkewControlCatchesUpAfterOutage(t *testing.T) {
	r := newRig(t, avSource, Options{EnableSkewControl: true, SkewThreshold: 80 * time.Millisecond})
	au := media.NewAudio("a", nil)
	vi := media.NewVideo("v", nil)
	r.feed("a", au, 10*time.Second, 0, nil)
	r.feed("v", vi, 10*time.Second, 0, func(i int) time.Duration {
		pts := time.Duration(i) * 40 * time.Millisecond
		if pts >= 2*time.Second && pts < 4*time.Second {
			return 4*time.Second - pts
		}
		return 0
	})
	r.clk.AfterFunc(500*time.Millisecond, r.p.Start)
	r.run(15 * time.Second)
	rep := r.p.Report()
	v := rep.Streams["v"]
	if v.Drops == 0 {
		t.Fatal("skew control never dropped")
	}
	// Final skew must be back under control: sample the tail.
	sk := r.p.GroupSkew("sync-1")
	vals := sk.Values()
	tail := vals[len(vals)-1]
	// Values() sorts ascending, so compare via a fresh measurement:
	// re-check that median skew is far below the no-control case.
	if sk.Median() > 400 {
		t.Fatalf("median skew %.0fms with control", sk.Median())
	}
	_ = tail
	if r.disp.Count(EvDrop, "v") == 0 {
		t.Fatal("no drop events recorded")
	}
}

func TestWatermarkControlDropsStaleBacklog(t *testing.T) {
	r := newRig(t, avSource, Options{EnableWatermarkControl: true})
	au := media.NewAudio("a", nil)
	vi := media.NewVideo("v", nil)
	r.feed("a", au, 10*time.Second, 0, nil)
	// A 3s video outage whose frames all arrive late in one burst: a
	// large backlog of frames whose deadlines have already passed.
	r.feed("v", vi, 10*time.Second, 0, func(i int) time.Duration {
		pts := time.Duration(i) * 40 * time.Millisecond
		if pts >= time.Second && pts < 4*time.Second {
			return 4*time.Second - pts
		}
		return 0
	})
	r.clk.AfterFunc(500*time.Millisecond, r.p.Start)
	r.run(6 * time.Second)
	if r.disp.Count(EvDrop, "v") == 0 {
		t.Fatal("watermark control never dropped the stale backlog")
	}
	vb := r.bufs.Get("v")
	if vb.Occupancy() > vb.HighWM {
		t.Fatalf("occupancy %v still above high WM %v", vb.Occupancy(), vb.HighWM)
	}
}

func TestWatermarkControlKeepsFutureFrames(t *testing.T) {
	r := newRig(t, avSource, Options{EnableWatermarkControl: true})
	au := media.NewAudio("a", nil)
	vi := media.NewVideo("v", nil)
	r.feed("a", au, 10*time.Second, 0, nil)
	// The whole video arrives up front: occupancy far above the high
	// watermark, but every frame is ahead of its deadline — none may be
	// dropped.
	r.feed("v", vi, 10*time.Second, 0, func(i int) time.Duration {
		return -time.Duration(i) * 40 * time.Millisecond // all at t=0
	})
	r.clk.AfterFunc(500*time.Millisecond, r.p.Start)
	r.run(12 * time.Second)
	rep := r.p.Report()
	v := rep.Streams["v"]
	if v.Drops != 0 {
		t.Fatalf("future frames dropped: %d", v.Drops)
	}
	if v.Plays < v.Expected-2 {
		t.Fatalf("plays = %d/%d", v.Plays, v.Expected)
	}
}

func TestStillPlaysOnTimeAndLate(t *testing.T) {
	r := newRig(t, fullSource, Options{})
	au := media.NewAudio("a", nil)
	vi := media.NewVideo("v", nil)
	im := media.NewImage("i", 64, 64)
	r.feed("a", au, 10*time.Second, 0, nil)
	r.feed("v", vi, 10*time.Second, 0, nil)
	// Image due at presentation time 1s arrives late at sim time 3s.
	r.clk.AfterFunc(3*time.Second, func() {
		r.bufs.Get("i").Push(buffer.Item{Frame: im.FrameAt(0, 0), ArrivedAt: r.clk.Now()})
	})
	r.clk.AfterFunc(500*time.Millisecond, r.p.Start)
	r.run(15 * time.Second)
	if r.disp.Count(EvLate, "i") != 1 {
		t.Fatalf("late events = %d, want 1", r.disp.Count(EvLate, "i"))
	}
	if r.disp.Count(EvPlay, "i") != 1 {
		t.Fatalf("image plays = %d, want 1", r.disp.Count(EvPlay, "i"))
	}
	// Lateness recorded: ~1.5s (arrived 3s, due at presentation 1s which
	// is sim 1.5s).
	for _, ev := range r.disp.Events() {
		if ev.StreamID == "i" && ev.Kind == EvPlay {
			if ev.Lateness < time.Second || ev.Lateness > 2*time.Second {
				t.Fatalf("image lateness = %v", ev.Lateness)
			}
		}
	}
}

func TestTimedLinkFiresAndFinishes(t *testing.T) {
	var followed scenario.Link
	r := newRig(t, fullSource, Options{OnLink: func(l scenario.Link) { followed = l }})
	au := media.NewAudio("a", nil)
	vi := media.NewVideo("v", nil)
	im := media.NewImage("i", 64, 64)
	r.feed("a", au, 10*time.Second, 0, nil)
	r.feed("v", vi, 10*time.Second, 0, nil)
	r.bufs.Get("i").Push(buffer.Item{Frame: im.FrameAt(0, 0)})
	r.p.Start()
	r.run(20 * time.Second)
	if followed.Target != "next.hml" {
		t.Fatalf("link followed = %+v", followed)
	}
	if !r.p.Finished() {
		t.Fatal("presentation not finished after link")
	}
	if r.disp.Count(EvLink, "") != 1 {
		t.Fatal("link event missing")
	}
	// Link fires at presentation time 12s.
	for _, ev := range r.disp.Events() {
		if ev.Kind == EvLink && ev.At != 12*time.Second {
			t.Fatalf("link at %v", ev.At)
		}
	}
}

func TestPauseFreezesPlayout(t *testing.T) {
	r := newRig(t, avSource, Options{})
	au := media.NewAudio("a", nil)
	vi := media.NewVideo("v", nil)
	r.feed("a", au, 10*time.Second, 0, nil)
	r.feed("v", vi, 10*time.Second, 0, nil)
	r.p.Start()
	r.run(2 * time.Second)
	r.p.Pause()
	if !r.p.Paused() {
		t.Fatal("not paused")
	}
	playsAtPause := r.disp.Count(EvPlay, "a")
	r.run(5 * time.Second)
	if got := r.disp.Count(EvPlay, "a"); got != playsAtPause {
		t.Fatalf("plays advanced during pause: %d → %d", playsAtPause, got)
	}
	if got := r.p.Now(); got != 2*time.Second {
		t.Fatalf("presentation clock moved during pause: %v", got)
	}
	r.p.Resume()
	if r.p.Paused() {
		t.Fatal("still paused")
	}
	r.run(20 * time.Second)
	rep := r.p.Report()
	a := rep.Streams["a"]
	if a.Plays < a.Expected*9/10 {
		t.Fatalf("after resume plays = %d/%d", a.Plays, a.Expected)
	}
	if r.disp.Count(EvPause, "") != 1 || r.disp.Count(EvResume, "") != 1 {
		t.Fatal("pause/resume events missing")
	}
}

func TestDoubleStartAndFinishIdempotent(t *testing.T) {
	r := newRig(t, avSource, Options{})
	r.p.Start()
	r.p.Start()
	r.p.Finish()
	r.p.Finish()
	if !r.p.Finished() {
		t.Fatal("not finished")
	}
	// Pause after finish is a no-op.
	r.p.Pause()
	if r.p.Paused() {
		t.Fatal("paused after finish")
	}
}

func TestReportExpectations(t *testing.T) {
	r := newRig(t, fullSource, Options{})
	rep := r.p.Report()
	// Audio: 10s / 20ms = 500; video: 10s / 40ms = 250; image still: 1.
	if rep.Streams["a"].Expected != 500 {
		t.Fatalf("audio expected = %d", rep.Streams["a"].Expected)
	}
	if rep.Streams["v"].Expected != 250 {
		t.Fatalf("video expected = %d", rep.Streams["v"].Expected)
	}
	if rep.Streams["i"].Expected != 1 {
		t.Fatalf("image expected = %d", rep.Streams["i"].Expected)
	}
	sr := StreamReport{Gaps: 25, Expected: 250}
	if sr.DeadlineMissRate() != 0.1 {
		t.Fatalf("miss rate = %v", sr.DeadlineMissRate())
	}
	if (StreamReport{}).DeadlineMissRate() != 0 {
		t.Fatal("empty miss rate")
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EvStart; k <= EvResume; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
	if EventKind(99).String() != "unknown" {
		t.Fatal("unknown kind")
	}
}

func TestHoldWhenLaggardHasNothingToDrop(t *testing.T) {
	// Audio runs normally; video receives nothing at all after the prefix:
	// the laggard has an empty buffer, so the leader must hold.
	r := newRig(t, avSource, Options{EnableSkewControl: true, SkewThreshold: 80 * time.Millisecond})
	au := media.NewAudio("a", nil)
	vi := media.NewVideo("v", nil)
	r.feed("a", au, 10*time.Second, 0, nil)
	r.feed("v", vi, time.Second, 0, nil) // only the first second of video
	r.clk.AfterFunc(500*time.Millisecond, r.p.Start)
	r.run(6 * time.Second)
	if r.disp.Count(EvHold, "a") == 0 {
		t.Fatal("leader never held while laggard starved")
	}
}

func TestRenderTraceShowsTrouble(t *testing.T) {
	r := newRig(t, avSource, Options{EnableSkewControl: true})
	au := media.NewAudio("a", nil)
	vi := media.NewVideo("v", nil)
	r.feed("a", au, 10*time.Second, 0, nil)
	r.feed("v", vi, 10*time.Second, 0, func(i int) time.Duration {
		pts := time.Duration(i) * 40 * time.Millisecond
		if pts >= 2*time.Second && pts < 4*time.Second {
			return 4*time.Second - pts
		}
		return 0
	})
	r.clk.AfterFunc(500*time.Millisecond, r.p.Start)
	r.run(15 * time.Second)
	out := RenderTrace(r.disp, r.sch, 64)
	if !strings.Contains(out, "a ") || !strings.Contains(out, "v ") {
		t.Fatalf("rows missing:\n%s", out)
	}
	if !strings.Contains(out, "!") {
		t.Fatalf("gaps not drawn:\n%s", out)
	}
	if !strings.Contains(out, "gaps") {
		t.Fatalf("note missing:\n%s", out)
	}
	// Summary text renders every stream and the skew line.
	sum := r.p.Report().Summarize()
	if !strings.Contains(sum, "plays") || !strings.Contains(sum, "skew") {
		t.Fatalf("summary:\n%s", sum)
	}
}

func TestRenderTraceEmpty(t *testing.T) {
	out := RenderTrace(NewDisplay(), &scenario.Schedule{}, 40)
	if !strings.Contains(out, "empty") {
		t.Fatalf("empty = %q", out)
	}
}

// Property: whatever the arrival pattern (early, late, bursty, missing
// tail), every playout slot resolves to exactly one play, gap or hold:
// plays + gaps + holds ≈ expected (modulo the start/stop boundary), plays
// never exceed expected, and the playout clock never plays a frame before
// its PTS is due.
func TestQuickSlotConservation(t *testing.T) {
	f := func(seed uint64, dropMask []bool, delayMS []uint16) bool {
		r := newRig(t, avSource, Options{EnableSkewControl: seed%2 == 0})
		au := media.NewAudio("a", nil)
		vi := media.NewVideo("v", nil)
		r.feed("a", au, 10*time.Second, 0, nil)
		buf := r.bufs.Get("v")
		frames := vi.FramesIn(0, 10*time.Second, 0)
		for _, fr := range frames {
			fr := fr
			if int(fr.Index) < len(dropMask) && dropMask[fr.Index] {
				continue // lost frame
			}
			d := fr.PTS
			if int(fr.Index) < len(delayMS) {
				d += time.Duration(delayMS[fr.Index]%1000) * time.Millisecond
			}
			r.clk.AfterFunc(d, func() {
				buf.Push(buffer.Item{Frame: fr, ArrivedAt: r.clk.Now()})
			})
		}
		r.clk.AfterFunc(500*time.Millisecond, r.p.Start)
		r.run(20 * time.Second)
		rep := r.p.Report()
		v := rep.Streams["v"]
		if v.Plays > v.Expected {
			t.Logf("plays %d > expected %d", v.Plays, v.Expected)
			return false
		}
		slots := v.Plays + v.Gaps + v.Holds
		if slots < v.Expected-2 || slots > v.Expected+2 {
			t.Logf("slots %d (plays %d gaps %d holds %d) vs expected %d",
				slots, v.Plays, v.Gaps, v.Holds, v.Expected)
			return false
		}
		// No frame played before it was due.
		for _, ev := range r.disp.Events() {
			if ev.StreamID == "v" && ev.Kind == EvPlay {
				due := ev.Frame.PTS // entry.PlayAt is 0 for this scenario
				if ev.At < due {
					t.Logf("frame %d played at %v before its PTS %v", ev.Frame.Index, ev.At, due)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

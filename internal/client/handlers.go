package client

import (
	"time"

	"repro/internal/buffer"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/playout"
	"repro/internal/protocol"
	"repro/internal/rtp"
	"repro/internal/scenario"
)

// handleCtrl dispatches control-channel packets from servers. Replies to
// tracked requests echo the request ID: the first one resolves the pending
// retransmission entry, duplicates (from retransmitted requests the server
// deduplicated) are dropped here so they cannot double-apply.
func (c *Client) handleCtrl(pkt netsim.Packet) {
	mt, reqID, body, err := protocol.DecodeReq(pkt.Payload)
	if err != nil {
		return
	}
	from := pkt.From.Host()
	if reqID != 0 {
		c.mu.Lock()
		ok := c.completePendingLocked(reqID)
		c.mu.Unlock()
		if !ok {
			return
		}
	}
	switch mt {
	case protocol.MsgConnectResult:
		var m protocol.ConnectResult
		if protocol.DecodeBody(body, &m) == nil {
			c.onConnectResult(from, m)
		}
	case protocol.MsgSubscribeResult:
		var m protocol.SubscribeResult
		if protocol.DecodeBody(body, &m) == nil {
			c.onSubscribeResult(from, m)
		}
	case protocol.MsgTopics:
		var m protocol.Topics
		if protocol.DecodeBody(body, &m) == nil {
			c.mu.Lock()
			c.topics = m.Topics
			c.mu.Unlock()
		}
	case protocol.MsgSearchResult:
		var m protocol.SearchResult
		if protocol.DecodeBody(body, &m) == nil {
			c.mu.Lock()
			c.searchHits = m.Hits
			c.searchDone = true
			c.mu.Unlock()
		}
	case protocol.MsgDocResponse:
		var m protocol.DocResponse
		if protocol.DecodeBody(body, &m) == nil {
			c.onDocResponse(from, m)
		}
	case protocol.MsgAnnotations:
		var m protocol.Annotations
		if protocol.DecodeBody(body, &m) == nil {
			c.mu.Lock()
			c.annotations = &m
			c.mu.Unlock()
		}
	case protocol.MsgSuspendResult:
		var m protocol.SuspendResult
		if protocol.DecodeBody(body, &m) == nil {
			c.onSuspendResult(from, m)
		}
	case protocol.MsgStatsResult:
		var m protocol.StatsResult
		if protocol.DecodeBody(body, &m) == nil {
			c.mu.Lock()
			c.lastStats = &m
			c.mu.Unlock()
		}
	case protocol.MsgHeartbeatAck:
		var m protocol.HeartbeatAck
		if protocol.DecodeBody(body, &m) == nil {
			c.onHeartbeatAck(from, m)
		}
	case protocol.MsgError:
		var m protocol.ErrorMsg
		if protocol.DecodeBody(body, &m) == nil {
			c.mu.Lock()
			c.lastError = m.Msg
			mach := c.machine(from)
			if mach.State() == protocol.StSuspended && mach.Can(protocol.InGraceExpired) {
				mach.Apply(protocol.InGraceExpired)
				delete(c.suspendTokens, from)
			}
			c.logEvent("server error: " + m.Msg)
			c.mu.Unlock()
		}
	}
}

func (c *Client) onConnectResult(from string, m protocol.ConnectResult) {
	c.mu.Lock()
	c.lastConnect = &m
	mach := c.machine(from)
	if m.OK {
		c.sessions[from] = m.SessionID
		// The server advertises its suspend grace window and replica set on
		// every successful connect: they bound recovery probing and name the
		// failover candidates.
		if m.GraceSecs > 0 {
			c.graceSecs = m.GraceSecs
		}
		if len(m.Peers) > 0 {
			c.peers = append([]string(nil), m.Peers...)
		}
		// A server is serving us again: any failover/redirect episode is
		// over. Replicas that failed during it become eligible again for
		// later, unrelated episodes — failedPeers must not be sticky across
		// episodes, or a once-failed replica is shunned forever.
		if len(c.failedPeers) > 0 {
			c.failedPeers = map[string]bool{}
		}
		c.redirectHops = 0
		c.redirectTried = nil
		recovered := c.recovering == from
		if recovered {
			c.recovering = ""
		}
		switch mach.State() {
		case protocol.StConnecting:
			mach.Apply(protocol.InAuthOK)
		case protocol.StSuspended:
			if recovered && m.Resumed && c.player != nil && !c.player.Finished() && c.docHost == from {
				// Resumed in place within the grace window: straight back
				// to viewing, the frozen presentation continues.
				mach.Apply(protocol.InRecover)
				if c.userPaused {
					// The user paused before the outage: recover into the
					// paused presentation. The server kept the sender
					// user-paused across the suspend, so nothing resumes
					// until the user asks.
					mach.Apply(protocol.InPause)
				} else {
					c.player.Resume()
				}
			} else {
				mach.Apply(protocol.InReturn)
			}
			delete(c.suspendTokens, from)
		}
		if recovered {
			c.opts.Obs.Counter("client_sessions_resumed").Inc()
			c.opts.Obs.Emit(obs.EvSessionResume, from, 0, "session "+m.SessionID+" recovered")
			c.logEvent("session recovered: " + from)
		} else {
			c.logEvent("connected to " + from)
			c.opts.Obs.Emit(obs.EvSessionStart, from, 0, "session "+m.SessionID)
		}
		if from == c.current {
			c.startHeartbeatLocked()
		}
		if c.pendingDoc != "" {
			doc := c.pendingDoc
			c.pendingDoc = ""
			c.requestDocLocked(doc)
		}
	} else if m.NeedSubscription {
		if mach.State() == protocol.StConnecting {
			mach.Apply(protocol.InAuthNeedSubscribe)
		}
		c.logEvent("subscription required at " + from)
	} else if m.Redirect {
		// Load-aware admission redirect: retry at a less-loaded peer.
		c.onRedirectLocked(from, m)
	} else if m.SessionLost && c.recovering == from {
		// The server came back but restarted without our session: the
		// grace window cannot help, fail over now.
		c.lastError = m.Reason
		c.logEvent("session lost at " + from)
		c.failoverLocked(from)
	} else if c.handoffFrom != "" && from != c.handoffFrom {
		// The handoff target answered but refused (bad ticket, admission
		// reject): treat like an unreachable target and fall back.
		c.lastError = m.Reason
		c.logEvent("handoff refused by " + from + ": " + m.Reason)
		c.handoffConnectFailedLocked(from)
	} else {
		if mach.Can(protocol.InAuthReject) {
			mach.Apply(protocol.InAuthReject)
		}
		c.lastError = m.Reason
		c.logEvent("connection rejected: " + m.Reason)
	}
	c.mu.Unlock()
}

func (c *Client) onSubscribeResult(from string, m protocol.SubscribeResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastSubscribe = &m
	mach := c.machine(from)
	if m.OK {
		if mach.State() == protocol.StSubscribing {
			mach.Apply(protocol.InSubscribed)
		}
		c.logEvent("subscribed at " + from)
		// The connection attempt that triggered the subscription never
		// created a server-side session; re-handshake transparently so
		// admission runs with the now-known user.
		c.sendReqLocked(from, protocol.MsgConnect, protocol.Connect{
			User: c.opts.User, Password: c.opts.Password, Class: c.opts.Class,
			PeakRate: c.opts.PeakRate, MinRate: c.opts.MinRate,
			FloorLevel: c.opts.FloorLevel,
		}, time.Time{}, nil)
	} else {
		if mach.Can(protocol.InSubscribeFail) {
			mach.Apply(protocol.InSubscribeFail)
		}
		c.lastError = m.Reason
	}
}

func (c *Client) onSuspendResult(from string, m protocol.SuspendResult) {
	c.mu.Lock()
	if m.OK {
		c.suspendTokens[from] = m.ResumeToken
	}
	after := c.pendingAfterSuspend
	c.pendingAfterSuspend = nil
	c.mu.Unlock()
	if after != nil {
		after()
	}
}

// onDocResponse is the heart of the browser: it preprocesses the received
// presentation scenario, creates the per-stream buffers and stream
// handlers, inserts the deliberate initial delay, and starts the
// presentation scheduler.
func (c *Client) onDocResponse(from string, m protocol.DocResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	mach := c.machine(from)
	if !m.OK {
		if m.Redirect != "" {
			// The document is homed on another server: the source suspended
			// our session and hands us off there.
			c.onDocHandoffLocked(from, m)
			return
		}
		if mach.Can(protocol.InDocFail) {
			mach.Apply(protocol.InDocFail)
		}
		c.lastError = m.Reason
		c.logEvent("document failed: " + m.Reason)
		if c.handoffFrom != "" && from != c.handoffFrom {
			// The handoff target could not serve the document after all.
			c.clearHandoffLocked()
		}
		return
	}
	if len(m.Peers) > 0 {
		// Per-document replica set: failover while viewing this document
		// must land on a server that holds it.
		c.peers = append([]string(nil), m.Peers...)
	}
	if c.handoffFrom != "" && from != c.handoffFrom && !c.handoffStart.IsZero() {
		lat := c.clk.Now().Sub(c.handoffStart)
		c.hHandoff.Observe(lat)
		c.opts.Obs.Counter("client_handoffs_completed").Inc()
		c.opts.Obs.Emit(obs.EvHandoff, from, lat.Microseconds(), "handoff complete: "+m.Name)
		c.logEvent("handoff complete → " + from)
		c.clearHandoffLocked()
	}
	sc, err := scenario.Parse(m.ScenarioSrc)
	if err != nil {
		if mach.Can(protocol.InDocFail) {
			mach.Apply(protocol.InDocFail)
		}
		c.lastError = err.Error()
		return
	}
	c.teardownPresentationLocked()
	if mach.Can(protocol.InDocReady) {
		mach.Apply(protocol.InDocReady)
	}
	c.sc = sc
	c.sch = scenario.BuildSchedule(sc)
	// Maintain the back/forward stacks around the document switch.
	prev := navEntry{Host: c.docHost, Name: c.docName}
	switch c.navDirection {
	case -1: // back
		if prev.Name != "" {
			c.fwdStack = append(c.fwdStack, prev)
		}
	case 1: // forward
		if prev.Name != "" {
			c.backStack = append(c.backStack, prev)
		}
	case 2: // reload: stacks untouched
	default: // new navigation
		if prev.Name != "" {
			c.backStack = append(c.backStack, prev)
		}
		c.fwdStack = nil
	}
	c.navDirection = 0
	c.docName = m.Name
	if c.docName == "" {
		c.docName = sc.Title
	}
	c.docHost = from
	sc.Name = c.docName
	c.docAt = c.clk.Now()
	c.history = append(c.history, c.docName)
	c.bufs = buffer.NewSet()
	c.display = playout.NewDisplay()
	c.streamInfo = map[string]protocol.StreamAnnounce{}
	c.asm = map[uint32]map[uint32]*assembly{}
	c.started = false
	c.startDelay = 0

	// One buffer handler and one stream handler (port listener) per
	// parallel media connection.
	for _, ann := range m.Streams {
		ann := ann
		interval := time.Duration(ann.FrameIntervalUS) * time.Microsecond
		window := c.opts.Window
		if window <= 0 {
			window = buffer.ComputeWindow(interval, c.opts.JitterBudget, c.opts.WindowSafety)
		}
		c.bufs.Create(buffer.Config{
			StreamID:      ann.StreamID,
			FrameInterval: interval,
			Window:        window,
			Obs:           c.opts.Obs,
		})
		c.streamInfo[ann.StreamID] = ann
		c.monitor.Track(ann.StreamID, ann.SSRC)
		addr := netsim.MakeAddr(c.Host, ann.Port)
		c.mediaPorts = append(c.mediaPorts, addr)
		if err := c.net.Listen(addr, c.handleMedia); err != nil {
			// The stream's media port could not be bound: its frames will
			// never arrive, but the rest of the presentation proceeds.
			c.lastError = err.Error()
			c.logEvent("media listen failed: " + err.Error())
		}
	}

	opts := c.opts.Playout
	opts.OnLink = c.onTimedLink
	if opts.Obs == nil {
		opts.Obs = c.opts.Obs
	}
	c.player = playout.New(c.clk, sc, c.sch, c.bufs, c.display, opts)
	c.logEvent("document ready: " + c.docName)

	// The deliberate initial delay waits only on the buffers that gate the
	// start of the presentation: time-sensitive streams playing from (or
	// near) time zero. Stills retry on lateness, and streams starting
	// later are pre-rolled by the flow scheduler on their own schedule.
	c.fillIDs = nil
	c.stillIDs = nil
	for _, st := range sc.TimedStreams() {
		if st.Start > time.Second {
			continue
		}
		if st.Type.TimeSensitive() {
			c.fillIDs = append(c.fillIDs, st.ID)
		} else {
			c.stillIDs = append(c.stillIDs, st.ID)
		}
	}

	// The deliberate initial delay: start once every buffer holds its
	// media time window, or when the cap expires.
	deadline := c.clk.Now().Add(c.opts.MaxInitialDelay)
	c.pollFillLocked(deadline)
}

func (c *Client) pollFillLocked(deadline time.Time) {
	if c.started || c.player == nil {
		return
	}
	filled := true
	for _, id := range c.fillIDs {
		if b := c.bufs.Get(id); b != nil && !b.Filled() {
			filled = false
			break
		}
	}
	// Stills due at the start must have arrived (one frame suffices).
	for _, id := range c.stillIDs {
		if b := c.bufs.Get(id); b != nil && b.Len() == 0 {
			filled = false
			break
		}
	}
	if filled && len(c.fillIDs) == 0 && len(c.stillIDs) == 0 {
		// No gating stream: wait a token 200ms.
		filled = c.clk.Since(c.docAt) >= 200*time.Millisecond
	}
	if filled || !c.clk.Now().Before(deadline) {
		c.started = true
		c.startDelay = c.clk.Now().Sub(c.docAt)
		c.player.Start()
		c.logEvent("presentation started")
		// Natural end of the presentation (when no timed link ends it
		// first): scenario length plus a small slack.
		length := c.sc.Length()
		c.endTimer = c.clk.AfterFunc(length+500*time.Millisecond, c.onPresentationEnd)
		c.fbTimer = c.clk.AfterFunc(c.opts.FeedbackInterval, c.sendFeedback)
		return
	}
	c.fillTimer = c.clk.AfterFunc(50*time.Millisecond, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.pollFillLocked(deadline)
	})
}

// handleMedia is the stream handler: it parses RTP, updates the QoS
// monitor, reassembles fragments and pushes complete frames into the
// stream's buffer.
//
// Per the netsim.Net ownership rule, pkt.Payload is borrowed for the
// duration of the call only — the simulator recycles the buffer afterwards.
// rtp.Unmarshal and ParseFrameHeader return zero-copy views into it, so the
// fragment data is copied into the assembly's pooled scratch before return
// and nothing retains pkt.Payload.
func (c *Client) handleMedia(pkt netsim.Packet) {
	// RTP/RTCP demultiplexing: RTCP packet types occupy 200–204 in the
	// second octet, a range RTP payload types never reach.
	if len(pkt.Payload) >= 2 && pkt.Payload[1] >= 200 && pkt.Payload[1] <= 204 {
		if cp, err := rtp.UnmarshalControl(pkt.Payload); err == nil && cp.SR != nil {
			if id, ok := c.monitor.StreamID(cp.SR.SSRC); ok {
				c.monitor.ObserveSR(id, cp.SR)
			}
		}
		return
	}
	p, err := rtp.Unmarshal(pkt.Payload)
	if err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.monitor.StreamID(p.SSRC)
	if !ok {
		return
	}
	c.monitor.Observe(id, p, c.clk.Now(), pkt.SentAt)
	hdr, data, err := media.ParseFrameHeader(p.Payload)
	if err != nil {
		return
	}
	byFrame, ok := c.asm[p.SSRC]
	if !ok {
		byFrame = map[uint32]*assembly{}
		c.asm[p.SSRC] = byFrame
	}
	a, ok := byFrame[hdr.Index]
	if !ok {
		a = c.newAssemblyLocked(hdr, p.Timestamp)
		byFrame[hdr.Index] = a
	}
	if !pkt.SentAt.IsZero() && (a.sentAt.IsZero() || pkt.SentAt.Before(a.sentAt)) {
		a.sentAt = pkt.SentAt
	}
	// Copy the fragment into its slot of the frame scratch. The first-seen
	// header is authoritative: fragments whose length disagrees with the
	// frame's fragmentation geometry (corruption, a mismatched retransmit)
	// are dropped, and duplicate deliveries must not double-count.
	if int(hdr.Frag) < len(a.got) && !a.got[hdr.Frag] {
		off, n := media.FragmentSpan(int(a.hdr.FrameSize), int(hdr.Frag))
		if n == len(data) {
			copy(a.pb.B[off:off+n], data)
			a.got[hdr.Frag] = true
			a.have++
		}
	}
	if a.have < a.total {
		return
	}
	delete(byFrame, hdr.Index)
	// Drop stale assemblies far behind this frame (lost fragments never
	// complete; bound the state) and recycle their scratch.
	for idx, stale := range byFrame {
		if idx+50 < hdr.Index {
			delete(byFrame, idx)
			c.freeAssemblyLocked(stale)
		}
	}
	if c.spans.Sampled(hdr.Index) && !a.sentAt.IsZero() {
		c.spans.RecordDelivery(id, c.clk.Now().Sub(a.sentAt))
	}
	if buf := c.bufs.Get(id); buf != nil {
		buf.Push(buffer.Item{
			Frame: media.Frame{
				Index:  int(a.hdr.Index),
				PTS:    rtp.FromTimestamp(a.ts),
				Kind:   a.hdr.Kind,
				Size:   int(a.hdr.FrameSize),
				Marker: true,
				Level:  int(a.hdr.Level),
			},
			ArrivedAt: c.clk.Now(),
		})
	}
	if c.opts.OnFrame != nil {
		c.opts.OnFrame(id, a.hdr, a.pb.B)
	}
	c.freeAssemblyLocked(a)
}

// sendFeedback ships the periodic RTCP receiver report to the server.
func (c *Client) sendFeedback() {
	c.mu.Lock()
	if c.player == nil || c.player.Finished() || c.current == "" {
		c.mu.Unlock()
		return
	}
	rr := c.monitor.BuildRR()
	host := c.current
	c.fbTimer = c.clk.AfterFunc(c.opts.FeedbackInterval, c.sendFeedback)
	c.mu.Unlock()
	c.send(host, protocol.MsgFeedback, protocol.Feedback{RTCP: rr.Marshal()})
}

// onTimedLink fires when the presentation scenario auto-follows a link.
func (c *Client) onTimedLink(link scenario.Link) {
	c.mu.Lock()
	if !c.opts.AutoFollowLinks {
		c.mu.Unlock()
		return
	}
	c.logEvent("timed link → " + link.Target)
	mach := c.machine(c.current)
	if mach.State() == protocol.StViewing {
		// The player already finished; the machine goes back through
		// browsing before the next request.
		c.teardownPresentationLocked()
		mach.Apply(protocol.InPresentationEnd)
	}
	c.followLinkFromEndLocked(link)
	c.mu.Unlock()
}

// followLinkFromEndLocked navigates after the presentation already ended
// (state Browsing), unlike FollowLink which may interrupt a live one.
func (c *Client) followLinkFromEndLocked(link scenario.Link) {
	if link.Host == "" || link.Host == c.current {
		c.requestDocLocked(link.Target)
		return
	}
	host := link.Host
	target := link.Target
	// Per Figure 4 the remote document is requested, found to live on
	// another server, and the connection suspends: browsing → requesting
	// → suspended.
	mach := c.machine(c.current)
	if mach.Can(protocol.InRequestDoc) {
		mach.Apply(protocol.InRequestDoc)
	}
	if mach.Can(protocol.InRedirect) {
		mach.Apply(protocol.InRedirect)
	}
	c.logEvent("suspend " + c.current + " → " + host)
	c.sendReqLocked(c.current, protocol.MsgSuspend, protocol.Suspend{},
		time.Time{}, c.suspendAbandonedLocked)
	c.pendingAfterSuspend = func() {
		c.mu.Lock()
		c.pendingDoc = target
		c.mu.Unlock()
		c.Connect(host)
	}
}

// onPresentationEnd handles the natural completion of a scenario.
func (c *Client) onPresentationEnd() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.player == nil || c.player.Finished() {
		return
	}
	// Pauses freeze presentation time: if it has not actually reached the
	// scenario length yet, re-arm for the remainder.
	if remaining := c.sc.Length() + 500*time.Millisecond - c.player.Now(); remaining > 50*time.Millisecond {
		c.endTimer = c.clk.AfterFunc(remaining, c.onPresentationEnd)
		return
	}
	mach := c.machine(c.current)
	if mach.State() == protocol.StViewing {
		c.player.Finish()
		mach.Apply(protocol.InPresentationEnd)
		c.logEvent("presentation ended")
	}
	c.stopTimersLocked()
}

// teardownPresentationLocked releases the media ports, timers and player of
// the current presentation (keeping display/report for inspection).
func (c *Client) teardownPresentationLocked() {
	if c.player != nil {
		c.player.Finish()
	}
	c.userPaused = false
	c.stopTimersLocked()
	for _, addr := range c.mediaPorts {
		c.net.Listen(addr, nil)
	}
	c.mediaPorts = nil
	for _, byFrame := range c.asm {
		for _, a := range byFrame {
			c.freeAssemblyLocked(a)
		}
	}
	c.asm = nil
}

func (c *Client) stopTimersLocked() {
	if c.fillTimer != nil {
		c.fillTimer.Stop()
		c.fillTimer = nil
	}
	if c.endTimer != nil {
		c.endTimer.Stop()
		c.endTimer = nil
	}
	if c.fbTimer != nil {
		c.fbTimer.Stop()
		c.fbTimer = nil
	}
}

package client

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/playout"
	"repro/internal/qos"
	"repro/internal/server"
)

// One shared scope observes the whole deployment — client and server on the
// same virtual clock — through a congested playback. The JSONL trace must
// contain buffer, skew, grade, and admission events with monotonically
// consistent timestamps, and a stats request must return the server's
// registry snapshot over the control protocol.
func TestEndToEndTraceAndStatsSnapshot(t *testing.T) {
	clk := clock.NewSim()
	net := netsim.New(clk, 1234)
	net.SetDefaultLink(netsim.DefaultLAN())
	scope := obs.NewScopeCap(clk, 65536)

	users := auth.NewDB()
	if err := users.Subscribe(auth.User{
		Name: "alice", Password: "pw", RealName: "Test User",
		Email: "alice@example.gr", Class: qos.Standard,
	}, clk.Now()); err != nil {
		t.Fatal(err)
	}
	db := server.NewDatabase()
	long := `<TITLE>graded</TITLE>
<AU_VI SOURCE=au/n SOURCE=vi/c ID=n ID=cv STARTIME=0 DURATION=30> </AU_VI>`
	if err := db.Put("graded", long, "test doc"); err != nil {
		t.Fatal(err)
	}
	if _, err := server.New("server-a", clk, net, users, db, server.Options{Obs: scope}); err != nil {
		t.Fatal(err)
	}
	c, err := New("laptop", clk, net, Options{
		User: "alice", Password: "pw",
		FeedbackInterval: 500 * time.Millisecond,
		Playout: playout.Options{
			EnableSkewControl: true,
			SkewThreshold:     time.Millisecond,
		},
		Obs: scope,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Heavy loss on the media direction from 5s to 20s.
	net.AddPhase("server-a", "laptop", netsim.Phase{
		Start: 5 * time.Second, Duration: 15 * time.Second, LossFactor: 300,
	})
	c.Connect("server-a")
	clk.RunFor(time.Second)
	if lc := c.LastConnect(); lc == nil || !lc.OK {
		t.Fatalf("connect result = %+v", lc)
	}
	c.RequestDoc("graded")
	clk.RunFor(40 * time.Second)

	// Server-side snapshot over the control protocol.
	c.RequestStats()
	clk.RunFor(2 * time.Second)
	st := c.Stats()
	if st == nil || !st.OK || st.Server != "server-a" {
		t.Fatalf("stats result = %+v", st)
	}
	if len(st.Metrics) == 0 {
		t.Fatal("server registry snapshot empty")
	}
	if st.TraceEvents == 0 {
		t.Fatal("server reports no trace events")
	}

	// The JSONL egress carries every event family of the run.
	var buf bytes.Buffer
	if err := scope.Trace().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	type line struct {
		At     string `json:"at"`
		Kind   string `json:"kind"`
		Stream string `json:"stream"`
	}
	kinds := map[string]int{}
	var prev time.Time
	n := 0
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("bad JSONL line %q: %v", raw, err)
		}
		at, err := time.Parse(time.RFC3339Nano, l.At)
		if err != nil {
			t.Fatalf("bad timestamp %q: %v", l.At, err)
		}
		if at.Before(prev) {
			t.Fatalf("timestamps regress at line %d: %v then %v", n, prev, at)
		}
		prev = at
		kinds[l.Kind]++
		n++
	}
	for _, want := range []string{
		"session-start", "buffer-watermark", "skew-action",
		"grade-change", "admission-decision",
	} {
		if kinds[want] == 0 {
			t.Fatalf("no %q events in trace; kinds = %+v", want, kinds)
		}
	}
	// Virtual-clock stamps: every event falls inside the simulated run.
	if prev.After(clk.Now()) {
		t.Fatalf("last event %v after clock %v", prev, clk.Now())
	}
	if prev.Before(clock.Epoch) {
		t.Fatalf("last event %v before epoch", prev)
	}
}

package client

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/server"
)

// TestFramePayloadIntegrityUnderPoolReuse is the end-to-end proof of the
// pooled data plane's buffer ownership: a full client/server session runs
// over a lossy, duplicating link (so the simulator's in-flight payload pool
// sees drops, recycling and double deliveries) while the server's packet
// pool and the client's reassembly pool churn, and every frame the client
// completes must be byte-identical to the deterministic synthesis of that
// frame. A single shared or stale buffer anywhere on the path shows up as a
// content mismatch. Run under -race by make race / make check, it also
// proves the pooling introduces no data races.
func TestFramePayloadIntegrityUnderPoolReuse(t *testing.T) {
	link := netsim.LinkConfig{
		Bandwidth: 50_000_000,
		Delay:     3 * time.Millisecond,
		Jitter:    4 * time.Millisecond,
		Loss:      0.02, // incomplete frames must simply never complete
		Dup:       0.2,  // dup deliveries must neither corrupt nor double-count
	}
	var (
		frames     int
		fragmented int
		mismatch   string
	)
	copts := Options{
		AutoFollowLinks: false,
		OnFrame: func(id string, hdr media.FrameHeader, payload []byte) {
			frames++
			if hdr.FragCount > 1 {
				fragmented++
			}
			if mismatch != "" {
				return
			}
			if len(payload) != int(hdr.FrameSize) {
				mismatch = fmt.Sprintf("stream %s frame %d: %d bytes reassembled, header says %d",
					id, hdr.Index, len(payload), hdr.FrameSize)
				return
			}
			want := media.Payload(id, int(hdr.Index), int(hdr.FrameSize))
			if !bytes.Equal(payload, want) {
				mismatch = fmt.Sprintf("stream %s frame %d (%d frags, %d bytes): reassembled content differs from synthesis",
					id, hdr.Index, hdr.FragCount, hdr.FrameSize)
			}
		},
	}
	w := newWorld(t, link, copts, server.Options{}, "srv")
	w.subscribe(t, "alice", "pw")
	putDoc(t, w.servers["srv"], "clip", shortAV)

	w.c.Connect("srv")
	w.run(time.Second)
	if lc := w.c.LastConnect(); lc == nil || !lc.OK {
		t.Fatalf("connect result = %+v (err %q)", lc, w.c.LastError())
	}
	w.c.RequestDoc("clip")
	w.run(2 * time.Second)
	// Mid-stream fault drops exercise the simulator's decided-before-copy
	// drop path while media is flowing.
	w.net.DropNext("srv", "laptop", 25)
	w.run(8 * time.Second)

	if mismatch != "" {
		t.Fatal(mismatch)
	}
	// 5s of 20ms audio + 40ms video ≈ 375 frames minus losses.
	if frames < 200 {
		t.Fatalf("only %d frames completed; the link should deliver most of the clip", frames)
	}
	if fragmented == 0 {
		t.Fatal("no multi-fragment frame completed; the test must cover fragment reassembly")
	}
}

package client

import (
	"strings"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/hml"
	"repro/internal/netsim"
	"repro/internal/playout"
	"repro/internal/protocol"
	"repro/internal/qos"
	"repro/internal/rtp"
	"repro/internal/scenario"
	"repro/internal/server"
)

// world is a complete simulated deployment: servers, one client, a shared
// user database, and the virtual clock driving everything.
type world struct {
	clk     *clock.Virtual
	net     *netsim.Network
	users   *auth.DB
	servers map[string]*server.Server
	c       *Client
}

func newWorld(t testing.TB, link netsim.LinkConfig, copts Options, sopts server.Options, serverNames ...string) *world {
	t.Helper()
	clk := clock.NewSim()
	net := netsim.New(clk, 1234)
	net.SetDefaultLink(link)
	users := auth.NewDB()
	w := &world{clk: clk, net: net, users: users, servers: map[string]*server.Server{}}
	for _, name := range serverNames {
		db := server.NewDatabase()
		srv, err := server.New(name, clk, net, users, db, sopts)
		if err != nil {
			t.Fatal(err)
		}
		w.servers[name] = srv
	}
	var peers []string
	for _, n := range serverNames {
		peers = append(peers, n)
	}
	for _, n := range serverNames {
		var others []string
		for _, p := range peers {
			if p != n {
				others = append(others, p)
			}
		}
		w.servers[n].SetPeers(others)
	}
	if copts.User == "" {
		copts.User = "alice"
		copts.Password = "pw"
	}
	c, err := New("laptop", clk, net, copts)
	if err != nil {
		t.Fatal(err)
	}
	w.c = c
	return w
}

func (w *world) subscribe(t testing.TB, user, pw string) {
	t.Helper()
	if err := w.users.Subscribe(auth.User{
		Name: user, Password: pw, RealName: "Test User",
		Email: user + "@example.gr", Class: qos.Standard,
	}, w.clk.Now()); err != nil {
		t.Fatal(err)
	}
}

func (w *world) run(d time.Duration) { w.clk.RunFor(d) }

const shortAV = `<TITLE>short av</TITLE>
<TEXT>narrated clip</TEXT>
<AU_VI SOURCE=au/n SOURCE=vi/c ID=n ID=cv STARTIME=0 DURATION=5> </AU_VI>`

func putDoc(t testing.TB, s *server.Server, name, src string) {
	t.Helper()
	if err := s.Database().Put(name, src, "test doc"); err != nil {
		t.Fatal(err)
	}
}

func TestFullSessionEndToEnd(t *testing.T) {
	w := newWorld(t, netsim.DefaultLAN(), Options{AutoFollowLinks: false}, server.Options{}, "server-a")
	w.subscribe(t, "alice", "pw")
	putDoc(t, w.servers["server-a"], "clip", shortAV)

	w.c.Connect("server-a")
	w.run(time.Second)
	if lc := w.c.LastConnect(); lc == nil || !lc.OK {
		t.Fatalf("connect result = %+v (err %q)", lc, w.c.LastError())
	}
	if w.c.State("server-a") != protocol.StBrowsing {
		t.Fatalf("state = %v", w.c.State("server-a"))
	}

	w.c.RequestTopics()
	w.run(time.Second)
	tops := w.c.Topics()
	if len(tops) != 1 || tops[0].Name != "clip" || tops[0].Server != "server-a" {
		t.Fatalf("topics = %+v", tops)
	}

	w.c.RequestDoc("clip")
	w.run(15 * time.Second)
	if w.c.State("server-a") != protocol.StBrowsing {
		t.Fatalf("post-presentation state = %v", w.c.State("server-a"))
	}
	rep := w.c.Player().Report()
	a := rep.Streams["n"]
	v := rep.Streams["cv"]
	// 5s audio at 20ms = 250 expected; video at 40ms = 125.
	if a.Plays < 240 || v.Plays < 118 {
		t.Fatalf("plays a=%d/%d v=%d/%d gaps a=%d v=%d", a.Plays, a.Expected, v.Plays, v.Expected, a.Gaps, v.Gaps)
	}
	if d := w.c.StartupDelay(); d <= 0 || d > 3*time.Second {
		t.Fatalf("startup delay = %v", d)
	}
	if got := w.c.History(); len(got) != 1 {
		t.Fatalf("history = %v", got)
	}
	w.c.Disconnect()
	w.run(time.Second)
	if w.servers["server-a"].Sessions() != 0 {
		t.Fatal("server session not closed")
	}
	// Pricing charged on disconnect.
	if w.users.Balance("alice") <= 0 {
		t.Fatal("no charge recorded")
	}
}

func TestSubscriptionFlow(t *testing.T) {
	w := newWorld(t, netsim.DefaultLAN(), Options{User: "newbie", Password: "np"}, server.Options{}, "server-a")
	w.c.Connect("server-a")
	w.run(time.Second)
	if lc := w.c.LastConnect(); lc == nil || lc.OK || !lc.NeedSubscription {
		t.Fatalf("connect = %+v", lc)
	}
	if w.c.State("server-a") != protocol.StSubscribing {
		t.Fatalf("state = %v", w.c.State("server-a"))
	}
	w.c.Subscribe(protocol.SubscriptionForm{
		User: "newbie", Password: "np", RealName: "New User",
		Address: "Patras", Email: "new@uni.gr", Phone: "123",
	})
	w.run(time.Second)
	if ls := w.c.LastSubscribe(); ls == nil || !ls.OK {
		t.Fatalf("subscribe = %+v", ls)
	}
	if w.c.State("server-a") != protocol.StBrowsing {
		t.Fatalf("state = %v", w.c.State("server-a"))
	}
	if !w.users.Known("newbie") {
		t.Fatal("user not in the central database")
	}
}

func TestTimedLinkAutoNavigationSameServer(t *testing.T) {
	first := `<TITLE>part one</TITLE>
<AU SOURCE=au/a ID=pa STARTIME=0 DURATION=3> </AU>
<HLINK HREF=part-two AT=4 KIND=SEQ> </HLINK>`
	w := newWorld(t, netsim.DefaultLAN(), Options{AutoFollowLinks: true}, server.Options{}, "server-a")
	w.subscribe(t, "alice", "pw")
	putDoc(t, w.servers["server-a"], "part-one", first)
	putDoc(t, w.servers["server-a"], "part-two", shortAV)
	w.c.Connect("server-a")
	w.run(time.Second)
	w.c.RequestDoc("part-one")
	w.run(20 * time.Second)
	hist := w.c.History()
	if len(hist) != 2 || hist[0] != "part-one" || hist[1] != "part-two" {
		t.Fatalf("history = %v", hist)
	}
	// The second presentation must actually have played.
	rep := w.c.Player().Report()
	if rep.Streams["cv"].Plays < 100 {
		t.Fatalf("second doc plays = %d", rep.Streams["cv"].Plays)
	}
}

func TestCrossServerSuspendAndReturn(t *testing.T) {
	w := newWorld(t, netsim.DefaultLAN(), Options{AutoFollowLinks: false},
		server.Options{Grace: 10 * time.Second}, "server-a", "server-b")
	w.subscribe(t, "alice", "pw")
	putDoc(t, w.servers["server-a"], "intro", shortAV)
	putDoc(t, w.servers["server-b"], "extra", shortAV)

	w.c.Connect("server-a")
	w.run(time.Second)
	w.c.RequestDoc("intro")
	w.run(2 * time.Second) // presentation under way
	// Follow an explorational link to server-b.
	w.c.FollowLink(scenario.Link{Target: "extra", Host: "server-b"})
	w.run(3 * time.Second)
	if w.c.State("server-a") != protocol.StSuspended {
		t.Fatalf("old state = %v", w.c.State("server-a"))
	}
	if w.c.SuspendToken("server-a") == "" {
		t.Fatal("no resume token held")
	}
	if w.c.State("server-b") != protocol.StViewing && w.c.State("server-b") != protocol.StRequesting {
		t.Fatalf("new state = %v", w.c.State("server-b"))
	}
	w.run(10 * time.Second) // let "extra" finish
	// Return to server-a within the grace period (grace restarted? no —
	// grace is 10s from suspension; we are at ~15s... use ReturnTo before
	// expiry in a fresh run below; here verify expiry instead).
	if got := w.c.State("server-a"); got != protocol.StDisconnected {
		t.Fatalf("suspended session after grace = %v", got)
	}
	if !strings.Contains(w.c.LastError(), "grace") {
		t.Fatalf("expiry notice = %q", w.c.LastError())
	}
	if w.servers["server-a"].Sessions() != 0 {
		t.Fatal("server-a kept the expired session")
	}
}

func TestReturnWithinGrace(t *testing.T) {
	w := newWorld(t, netsim.DefaultLAN(), Options{AutoFollowLinks: false},
		server.Options{Grace: 60 * time.Second}, "server-a", "server-b")
	w.subscribe(t, "alice", "pw")
	putDoc(t, w.servers["server-a"], "intro", shortAV)
	putDoc(t, w.servers["server-b"], "extra", shortAV)
	w.c.Connect("server-a")
	w.run(time.Second)
	w.c.RequestDoc("intro")
	w.run(2 * time.Second)
	w.c.FollowLink(scenario.Link{Target: "extra", Host: "server-b"})
	w.run(8 * time.Second)
	// Return within grace: no re-authentication, session preserved.
	w.c.ReturnTo("server-a")
	w.run(time.Second)
	if w.c.State("server-a") != protocol.StBrowsing {
		t.Fatalf("state after return = %v", w.c.State("server-a"))
	}
	if w.servers["server-a"].Sessions() != 1 {
		t.Fatal("server-a session lost")
	}
	// The resume consumed the token.
	if w.c.SuspendToken("server-a") != "" {
		t.Fatal("token not consumed")
	}
}

func TestPauseResumeThroughProtocol(t *testing.T) {
	long := `<TITLE>long</TITLE>
<AU_VI SOURCE=au/n SOURCE=vi/c ID=n ID=cv STARTIME=0 DURATION=20> </AU_VI>`
	w := newWorld(t, netsim.DefaultLAN(), Options{}, server.Options{}, "server-a")
	w.subscribe(t, "alice", "pw")
	putDoc(t, w.servers["server-a"], "long", long)
	w.c.Connect("server-a")
	w.run(time.Second)
	w.c.RequestDoc("long")
	w.run(5 * time.Second)
	w.c.Pause()
	w.run(time.Second)
	if w.c.State("server-a") != protocol.StPaused {
		t.Fatalf("state = %v", w.c.State("server-a"))
	}
	// Server stops sending while paused: buffers stop growing.
	buf := w.c.Buffers().Get("cv")
	occBefore := buf.Occupancy()
	w.run(5 * time.Second)
	occAfter := buf.Occupancy()
	if occAfter > occBefore+200*time.Millisecond {
		t.Fatalf("buffer grew during pause: %v → %v", occBefore, occAfter)
	}
	w.c.Resume()
	w.run(30 * time.Second)
	rep := w.c.Player().Report()
	v := rep.Streams["cv"]
	if v.Plays < v.Expected*9/10 {
		t.Fatalf("plays after resume = %d/%d (gaps %d)", v.Plays, v.Expected, v.Gaps)
	}
}

func TestQoSGradingUnderCongestion(t *testing.T) {
	w := newWorld(t, netsim.DefaultLAN(), Options{FeedbackInterval: 500 * time.Millisecond},
		server.Options{}, "server-a")
	w.subscribe(t, "alice", "pw")
	long := `<TITLE>graded</TITLE>
<AU_VI SOURCE=au/n SOURCE=vi/c ID=n ID=cv STARTIME=0 DURATION=30> </AU_VI>`
	putDoc(t, w.servers["server-a"], "graded", long)
	// Heavy loss on the media direction from 5s to 20s.
	w.net.AddPhase("server-a", "laptop", netsim.Phase{
		Start: 5 * time.Second, Duration: 15 * time.Second, LossFactor: 300,
	})
	w.c.Connect("server-a")
	w.run(time.Second)
	w.c.RequestDoc("graded")
	w.run(40 * time.Second)
	mgr := w.servers["server-a"].QoSManager(netsim.MakeAddr("laptop", 6000))
	if mgr == nil {
		t.Fatal("no qos manager")
	}
	acts := mgr.Actions()
	degrades := 0
	videoFirst := true
	for i, a := range acts {
		if a.Kind == qos.ActDegrade {
			degrades++
			if i == 0 && a.StreamID != "cv" {
				videoFirst = false
			}
		}
	}
	if degrades == 0 {
		t.Fatalf("no degrades under 300× loss; actions = %+v", acts)
	}
	if !videoFirst {
		t.Fatalf("first degrade hit %v, want video", acts[0].StreamID)
	}
	// The client saw reduced-quality frames.
	sawDegraded := false
	for _, ev := range w.c.Display().Events() {
		if ev.Kind == playout.EvPlay && ev.StreamID == "cv" && ev.Frame.Level > 0 {
			sawDegraded = true
			break
		}
	}
	if !sawDegraded {
		t.Fatal("client never played a degraded frame")
	}
}

func TestFederatedSearch(t *testing.T) {
	w := newWorld(t, netsim.DefaultLAN(), Options{}, server.Options{}, "server-a", "server-b", "server-c")
	w.subscribe(t, "alice", "pw")
	putDoc(t, w.servers["server-a"], "db-intro", `<TITLE>Databases introduction</TITLE><TEXT>relational model</TEXT>`)
	putDoc(t, w.servers["server-b"], "db-adv", `<TITLE>Advanced databases</TITLE><TEXT>query optimization</TEXT>`)
	putDoc(t, w.servers["server-b"], "nets", `<TITLE>Networking</TITLE><TEXT>packets and routers</TEXT>`)
	putDoc(t, w.servers["server-c"], "db-lab", `<TITLE>Lab</TITLE><TEXT>hands-on database exercises</TEXT>`)
	w.c.Connect("server-a")
	w.run(time.Second)
	w.c.Search("database")
	w.run(3 * time.Second)
	hits, done := w.c.SearchResults()
	if !done {
		t.Fatal("search never completed")
	}
	if len(hits) != 3 {
		t.Fatalf("hits = %+v", hits)
	}
	servers := map[string]int{}
	for _, h := range hits {
		servers[h.Server]++
	}
	if servers["server-a"] != 1 || servers["server-b"] != 1 || servers["server-c"] != 1 {
		t.Fatalf("per-server hits = %v", servers)
	}
}

func TestAdmissionRejection(t *testing.T) {
	w := newWorld(t, netsim.DefaultLAN(),
		Options{Class: qos.Economy, PeakRate: 5_000_000, MinRate: 5_000_000},
		server.Options{Capacity: 1_000_000}, "server-a")
	w.subscribe(t, "alice", "pw")
	w.c.Connect("server-a")
	w.run(time.Second)
	lc := w.c.LastConnect()
	if lc == nil || lc.OK {
		t.Fatalf("connect = %+v", lc)
	}
	if w.c.State("server-a") != protocol.StIdle {
		t.Fatalf("state = %v", w.c.State("server-a"))
	}
	if !strings.Contains(lc.Reason, "capacity") {
		t.Fatalf("reason = %q", lc.Reason)
	}
}

func TestDocRequestFailure(t *testing.T) {
	w := newWorld(t, netsim.DefaultLAN(), Options{}, server.Options{}, "server-a")
	w.subscribe(t, "alice", "pw")
	w.c.Connect("server-a")
	w.run(time.Second)
	w.c.RequestDoc("missing-doc")
	w.run(time.Second)
	if w.c.State("server-a") != protocol.StBrowsing {
		t.Fatalf("state = %v", w.c.State("server-a"))
	}
	if !strings.Contains(w.c.LastError(), "not found") {
		t.Fatalf("err = %q", w.c.LastError())
	}
}

func TestDisableMediaStopsStream(t *testing.T) {
	w := newWorld(t, netsim.DefaultLAN(), Options{}, server.Options{}, "server-a")
	w.subscribe(t, "alice", "pw")
	long := `<TITLE>long</TITLE>
<AU_VI SOURCE=au/n SOURCE=vi/c ID=n ID=cv STARTIME=0 DURATION=20> </AU_VI>`
	putDoc(t, w.servers["server-a"], "long", long)
	w.c.Connect("server-a")
	w.run(time.Second)
	w.c.RequestDoc("long")
	w.run(3 * time.Second)
	w.c.DisableMedia("cv")
	w.run(time.Second)
	buf := w.c.Buffers().Get("cv")
	occ := buf.Occupancy()
	w.run(5 * time.Second)
	// The buffer drains (playout continues) but receives nothing new.
	if buf.Occupancy() > occ {
		t.Fatalf("disabled stream still receiving: %v → %v", occ, buf.Occupancy())
	}
	// Audio continues unharmed.
	rep := w.c.Player().Report()
	if rep.Streams["n"].Plays == 0 {
		t.Fatal("audio stopped too")
	}
}

func TestLessonScaleSession(t *testing.T) {
	// A multi-slide Hermes lesson end to end.
	w := newWorld(t, netsim.DefaultLAN(), Options{}, server.Options{}, "server-a")
	w.subscribe(t, "alice", "pw")
	putDoc(t, w.servers["server-a"], "lesson", hml.LessonSource("algo", 3, 10*time.Second))
	w.c.Connect("server-a")
	w.run(time.Second)
	w.c.RequestDoc("lesson")
	w.run(45 * time.Second)
	rep := w.c.Player().Report()
	// Every slide's image played.
	for i := 1; i <= 3; i++ {
		id := "algo-img" + string(rune('0'+i))
		if rep.Streams[id].Plays != 1 {
			t.Errorf("image %s plays = %d", id, rep.Streams[id].Plays)
		}
	}
	// All six AV halves played substantially.
	for i := 1; i <= 3; i++ {
		for _, pfx := range []string{"algo-au", "algo-vi"} {
			id := pfx + string(rune('0'+i))
			sr := rep.Streams[id]
			if sr.Plays < sr.Expected*8/10 {
				t.Errorf("%s plays = %d/%d", id, sr.Plays, sr.Expected)
			}
		}
	}
}

func TestSenderReportsReachClient(t *testing.T) {
	w := newWorld(t, netsim.DefaultLAN(), Options{}, server.Options{}, "server-a")
	w.subscribe(t, "alice", "pw")
	long := `<TITLE>long</TITLE>
<AU_VI SOURCE=au/n SOURCE=vi/c ID=n ID=cv STARTIME=0 DURATION=20> </AU_VI>`
	putDoc(t, w.servers["server-a"], "long", long)
	w.c.Connect("server-a")
	w.run(time.Second)
	w.c.RequestDoc("long")
	w.run(12 * time.Second) // past two SR intervals
	sr := w.c.Monitor().LastSR("cv")
	if sr == nil {
		t.Fatal("no sender report received for the video stream")
	}
	if sr.PacketCount == 0 || sr.NTPTime == 0 {
		t.Fatalf("SR contents = %+v", sr)
	}
	if w.c.Monitor().LastSR("ghost") != nil {
		t.Fatal("phantom SR")
	}
}

func TestClientIgnoresGarbageMediaPackets(t *testing.T) {
	w := newWorld(t, netsim.DefaultLAN(), Options{}, server.Options{}, "server-a")
	w.subscribe(t, "alice", "pw")
	putDoc(t, w.servers["server-a"], "clip", shortAV)
	w.c.Connect("server-a")
	w.run(time.Second)
	w.c.RequestDoc("clip")
	w.run(time.Second)
	// Inject garbage at the client's media and control ports mid-session.
	for i := 0; i < 20; i++ {
		w.net.Send(netsim.Packet{From: "attacker:1", To: netsim.MakeAddr("laptop", 7000),
			Payload: []byte{0xff, 0xfe, 0xfd}})
		w.net.Send(netsim.Packet{From: "attacker:1", To: netsim.MakeAddr("laptop", 7001),
			Payload: nil})
		w.net.Send(netsim.Packet{From: "attacker:1", To: netsim.MakeAddr("laptop", 6000),
			Payload: []byte{0x01, '{'}, Reliable: true})
		// A validly-framed RTP packet with an unknown SSRC.
		alien := rtp.Packet{SSRC: 0xDEAD, SequenceNumber: uint16(i), PayloadType: rtp.PTMPEG, Payload: []byte("x")}
		w.net.Send(netsim.Packet{From: "attacker:1", To: netsim.MakeAddr("laptop", 7000),
			Payload: alien.Marshal()})
	}
	w.run(15 * time.Second)
	rep := w.c.Player().Report()
	a := rep.Streams["n"]
	if a.Plays < a.Expected*9/10 {
		t.Fatalf("garbage disrupted playback: %d/%d", a.Plays, a.Expected)
	}
}

func TestFragmentLossDropsWholeFrame(t *testing.T) {
	// A lossy link loses individual fragments; the reassembler must never
	// deliver a frame with missing fragments (it stays incomplete and the
	// slot shows as a gap), and playback continues afterwards.
	w := newWorld(t, netsim.LinkConfig{Bandwidth: 8_000_000, Delay: 10 * time.Millisecond, Loss: 0.03},
		Options{}, server.Options{DisableGrading: true}, "server-a")
	w.subscribe(t, "alice", "pw")
	long := `<TITLE>long</TITLE>
<AU_VI SOURCE=au/n SOURCE=vi/c ID=n ID=cv STARTIME=0 DURATION=20> </AU_VI>`
	putDoc(t, w.servers["server-a"], "long", long)
	w.c.Connect("server-a")
	w.run(time.Second)
	w.c.RequestDoc("long")
	w.run(30 * time.Second)
	rep := w.c.Player().Report()
	v := rep.Streams["cv"]
	// With ~3% packet loss and ~8 fragments per frame, frame loss ≈ 20%:
	// expect a sizable but not total gap count, and plays + gaps ≈ expected.
	if v.Gaps == 0 {
		t.Fatal("no gaps despite fragment loss")
	}
	if v.Plays == 0 {
		t.Fatal("playback died")
	}
	if v.Plays+v.Gaps < v.Expected*9/10 {
		t.Fatalf("slots unaccounted: plays %d + gaps %d vs expected %d", v.Plays, v.Gaps, v.Expected)
	}
}

func TestClientReloadRestartsPresentation(t *testing.T) {
	w := newWorld(t, netsim.DefaultLAN(), Options{}, server.Options{}, "server-a")
	w.subscribe(t, "alice", "pw")
	putDoc(t, w.servers["server-a"], "clip", shortAV)
	w.c.Connect("server-a")
	w.run(time.Second)
	w.c.RequestDoc("clip")
	w.run(3 * time.Second)
	w.c.Reload()
	w.run(12 * time.Second)
	if got := w.c.History(); len(got) != 2 || got[0] != "clip" || got[1] != "clip" {
		t.Fatalf("history = %v", got)
	}
	rep := w.c.Player().Report()
	if rep.Streams["n"].Plays < rep.Streams["n"].Expected*9/10 {
		t.Fatalf("reloaded presentation incomplete: %d/%d", rep.Streams["n"].Plays, rep.Streams["n"].Expected)
	}
}

func TestBackAndForwardNavigation(t *testing.T) {
	w := newWorld(t, netsim.DefaultLAN(), Options{}, server.Options{}, "server-a")
	w.subscribe(t, "alice", "pw")
	putDoc(t, w.servers["server-a"], "one", shortAV)
	putDoc(t, w.servers["server-a"], "two", shortAV)
	putDoc(t, w.servers["server-a"], "three", shortAV)
	w.c.Connect("server-a")
	w.run(time.Second)
	if w.c.Back() || w.c.Forward() {
		t.Fatal("navigation possible before any document")
	}
	for _, doc := range []string{"one", "two", "three"} {
		w.c.RequestDoc(doc)
		w.run(2 * time.Second)
	}
	if !w.c.CanBack() || w.c.CanForward() {
		t.Fatal("stack state wrong after three visits")
	}
	// Back: three → two.
	if !w.c.Back() {
		t.Fatal("back failed")
	}
	w.run(2 * time.Second)
	if got := w.c.History(); got[len(got)-1] != "two" {
		t.Fatalf("after back, current = %v", got)
	}
	// Back again: two → one.
	w.c.Back()
	w.run(2 * time.Second)
	if got := w.c.History(); got[len(got)-1] != "one" {
		t.Fatalf("after back ×2, current = %v", got)
	}
	if !w.c.CanForward() {
		t.Fatal("forward stack empty after backs")
	}
	// Forward: one → two.
	w.c.Forward()
	w.run(2 * time.Second)
	if got := w.c.History(); got[len(got)-1] != "two" {
		t.Fatalf("after forward, current = %v", got)
	}
	// A fresh navigation clears the forward stack.
	w.c.RequestDoc("three")
	w.run(2 * time.Second)
	if w.c.CanForward() {
		t.Fatal("forward stack survived a new navigation")
	}
}

func TestReloadKeepsStacks(t *testing.T) {
	w := newWorld(t, netsim.DefaultLAN(), Options{}, server.Options{}, "server-a")
	w.subscribe(t, "alice", "pw")
	putDoc(t, w.servers["server-a"], "one", shortAV)
	putDoc(t, w.servers["server-a"], "two", shortAV)
	w.c.Connect("server-a")
	w.run(time.Second)
	w.c.RequestDoc("one")
	w.run(2 * time.Second)
	w.c.RequestDoc("two")
	w.run(2 * time.Second)
	w.c.Reload()
	w.run(2 * time.Second)
	// Back still reaches "one": reload didn't push a stack entry.
	w.c.Back()
	w.run(2 * time.Second)
	if got := w.c.History(); got[len(got)-1] != "one" {
		t.Fatalf("after reload+back, current = %v", got)
	}
	if w.c.CanBack() {
		t.Fatal("back stack should be empty at the first document")
	}
}

func TestClientToleratesDuplicatedPackets(t *testing.T) {
	// 30% duplication on the media path: the reassembler and buffers must
	// dedupe (frames play once each).
	w := newWorld(t, netsim.LinkConfig{Bandwidth: 10_000_000, Delay: 5 * time.Millisecond,
		Jitter: 2 * time.Millisecond, Dup: 0.3}, Options{}, server.Options{}, "server-a")
	w.subscribe(t, "alice", "pw")
	putDoc(t, w.servers["server-a"], "clip", shortAV)
	w.c.Connect("server-a")
	w.run(time.Second)
	w.c.RequestDoc("clip")
	w.run(15 * time.Second)
	rep := w.c.Player().Report()
	a := rep.Streams["n"]
	if a.Plays > a.Expected {
		t.Fatalf("duplicates leaked: %d plays of %d expected", a.Plays, a.Expected)
	}
	if a.Plays < a.Expected*9/10 {
		t.Fatalf("duplication broke playback: %d/%d", a.Plays, a.Expected)
	}
}

func TestAnnotationsRoundTrip(t *testing.T) {
	w := newWorld(t, netsim.DefaultLAN(), Options{}, server.Options{}, "server-a")
	w.subscribe(t, "alice", "pw")
	putDoc(t, w.servers["server-a"], "clip", shortAV)
	w.c.Connect("server-a")
	w.run(time.Second)
	w.c.RequestDoc("clip")
	w.run(2 * time.Second)
	w.c.Annotate("the narration drifts here")
	w.c.Annotate("great diagram")
	w.run(time.Second)
	w.c.RequestAnnotations("")
	w.run(time.Second)
	ann := w.c.Annotations()
	if ann == nil || ann.Doc != "clip" || len(ann.Records) != 2 {
		t.Fatalf("annotations = %+v", ann)
	}
	if ann.Records[0].User != "alice" || ann.Records[1].Text != "great diagram" {
		t.Fatalf("records = %+v", ann.Records)
	}
	// Explicit document name works too.
	w.c.RequestAnnotations("clip")
	w.run(time.Second)
	if got := w.c.Annotations(); got == nil || len(got.Records) != 2 {
		t.Fatalf("explicit listing = %+v", got)
	}
}

func TestStreamInfoAndSessionID(t *testing.T) {
	w := newWorld(t, netsim.DefaultLAN(), Options{}, server.Options{}, "server-a")
	w.subscribe(t, "alice", "pw")
	putDoc(t, w.servers["server-a"], "clip", shortAV)
	w.c.Connect("server-a")
	w.run(time.Second)
	if w.c.SessionID("server-a") == "" {
		t.Fatal("no session id recorded")
	}
	w.c.RequestDoc("clip")
	w.run(time.Second)
	ann, ok := w.c.StreamInfo("cv")
	if !ok || ann.SSRC == 0 || ann.Levels < 2 {
		t.Fatalf("stream info = %+v ok=%v", ann, ok)
	}
	if _, ok := w.c.StreamInfo("ghost"); ok {
		t.Fatal("phantom stream info")
	}
}

// Cluster behavior on the browser side: following load-aware admission
// redirects with a bounded hop count and capped backoff, and executing the
// cross-server handoff a source server issues when a requested document is
// homed elsewhere — connect to the target with the signed ticket, re-request
// the document there, and fall back to a plain reconnect (next replica, then
// the suspended source) when the target is down.
package client

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// onRedirectLocked handles a ConnectResult carrying Redirect: the server is
// over its admission watermark and names less-loaded peers. The client tries
// them in order, never revisiting a server within the episode, with a capped
// backoff between hops so a cluster-wide overload cannot tight-loop.
// Caller holds c.mu.
func (c *Client) onRedirectLocked(from string, m protocol.ConnectResult) {
	mach := c.machine(from)
	if mach.State() == protocol.StConnecting && mach.Can(protocol.InAuthReject) {
		mach.Apply(protocol.InAuthReject)
	}
	if c.redirectTried == nil {
		c.redirectTried = map[string]bool{}
	}
	c.redirectTried[from] = true
	c.opts.Obs.Emit(obs.EvRedirect, from, int64(c.redirectHops), "redirected: "+m.Reason)
	c.logEvent("redirected by " + from + ": " + m.Reason)
	if c.redirectHops >= c.opts.MaxRedirectHops {
		c.endRedirectEpisodeLocked(from, "redirect hop limit reached")
		return
	}
	var target string
	for _, p := range append(append([]string{}, m.Peers...), c.peers...) {
		if p != c.Host && !c.redirectTried[p] {
			target = p
			break
		}
	}
	if target == "" {
		c.endRedirectEpisodeLocked(from, "redirected: no untried server")
		return
	}
	c.redirectHops++
	c.opts.Obs.Counter("client_redirects_followed").Inc()
	// Capped exponential backoff between hops: half the retry timeout on the
	// first hop, doubling up to the retry cap.
	delay := c.opts.RetryTimeout / 2 << (c.redirectHops - 1)
	if delay > c.opts.RetryBackoffCap {
		delay = c.opts.RetryBackoffCap
	}
	c.logEvent(fmt.Sprintf("redirect %s → %s (hop %d)", from, target, c.redirectHops))
	c.clk.AfterFunc(delay, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.connectLocked(target, false)
	})
}

// endRedirectEpisodeLocked abandons a redirect episode. Caller holds c.mu.
func (c *Client) endRedirectEpisodeLocked(from, why string) {
	c.lastError = why
	c.logEvent("redirect abandoned: " + why)
	c.redirectHops = 0
	c.redirectTried = nil
	if c.current == from {
		c.current = ""
	}
}

// onDocHandoffLocked handles a DocResponse whose Redirect names another
// server: the source has suspended our session behind its grace machinery
// and (when the cluster runs signed handoffs) minted a ticket. Connect to
// the target, present the ticket, and re-request the document there.
// Caller holds c.mu.
func (c *Client) onDocHandoffLocked(from string, m protocol.DocResponse) {
	mach := c.machine(from)
	if mach.Can(protocol.InRedirect) {
		mach.Apply(protocol.InRedirect) // requesting → suspended, per Figure 4
	}
	if m.ResumeToken != "" {
		c.suspendTokens[from] = m.ResumeToken
	}
	if m.GraceSecs > 0 {
		c.graceSecs = m.GraceSecs
	}
	c.teardownPresentationLocked()
	c.handoffFrom = from
	c.handoffTicket = m.Handoff
	c.handoffPeers = nil
	for _, p := range m.Peers {
		if p != m.Redirect {
			c.handoffPeers = append(c.handoffPeers, p)
		}
	}
	if c.handoffStart.IsZero() {
		// A chained handoff (target immediately hands off again) keeps the
		// original start, so the latency covers the whole user-visible gap.
		c.handoffStart = c.clk.Now()
	}
	c.pendingDoc = m.Name
	c.opts.Obs.Counter("client_handoffs").Inc()
	c.opts.Obs.Emit(obs.EvHandoff, from, 0, "handoff of "+m.Name+" → "+m.Redirect)
	c.logEvent("handoff " + from + " → " + m.Redirect)
	c.connectHandoffLocked(m.Redirect)
}

// connectHandoffLocked connects to a handoff target, presenting the signed
// ticket (or plain credentials when the cluster runs unsigned). The request
// rides the normal tracked-retransmission machinery; exhaustion falls back
// via handoffConnectFailedLocked. Caller holds c.mu.
func (c *Client) connectHandoffLocked(host string) {
	m := c.machine(host)
	if m.State() == protocol.StDisconnected {
		m = protocol.NewMachine()
		c.machines[host] = m
	}
	if m.State() != protocol.StIdle {
		// E.g. a session already suspended toward the target: the ordinary
		// connect path resumes it by token.
		c.connectLocked(host, false)
		return
	}
	m.Apply(protocol.InConnect)
	c.current = host
	c.lastConnect = nil
	body := protocol.Connect{
		User: c.opts.User, Class: c.opts.Class,
		PeakRate: c.opts.PeakRate, MinRate: c.opts.MinRate,
		FloorLevel: c.opts.FloorLevel,
		Handoff:    c.handoffTicket,
	}
	if body.Handoff == nil {
		body.Password = c.opts.Password
	}
	c.logEvent("handoff connect → " + host)
	c.sendReqLocked(host, protocol.MsgConnect, body, time.Time{},
		func() { c.handoffConnectFailedLocked(host) })
}

// handoffConnectFailedLocked runs when the handoff target never answered:
// try the next replica holding the document, and when none is left, fall
// back to a plain reconnect at the suspended source (its grace timer is
// still running). Caller holds c.mu.
func (c *Client) handoffConnectFailedLocked(host string) {
	mach := c.machine(host)
	if mach.State() == protocol.StConnecting && mach.Can(protocol.InAuthReject) {
		mach.Apply(protocol.InAuthReject)
	}
	c.opts.Obs.Counter("client_handoff_fallbacks").Inc()
	c.logEvent("handoff target unreachable: " + host)
	if c.failedPeers == nil {
		c.failedPeers = map[string]bool{}
	}
	c.failedPeers[host] = true
	for _, p := range c.handoffPeers {
		if p != c.Host && p != c.handoffFrom && !c.failedPeers[p] {
			c.logEvent("handoff fallback → " + p)
			c.connectHandoffLocked(p)
			return
		}
	}
	// No replica left: return to the source, whose session is parked behind
	// the grace timer. The remote document stays unplayed.
	src := c.handoffFrom
	c.clearHandoffLocked()
	c.pendingDoc = ""
	if src != "" && c.suspendTokens[src] != "" {
		c.lastError = "handoff failed: " + host + " unreachable; returned to " + src
		c.logEvent("handoff failed; returning to " + src)
		c.connectLocked(src, false)
		return
	}
	c.lastError = "handoff failed: no reachable replica"
	c.logEvent("handoff failed: no reachable replica")
	if c.current == host {
		c.current = ""
	}
}

// clearHandoffLocked ends the handoff episode. Caller holds c.mu.
func (c *Client) clearHandoffLocked() {
	c.handoffFrom = ""
	c.handoffTicket = nil
	c.handoffPeers = nil
	c.handoffStart = time.Time{}
}

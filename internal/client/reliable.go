package client

// The reliable control plane: every request that expects a reply carries a
// request ID and is retransmitted with capped exponential backoff until the
// echoed reply arrives, a deadline passes, or the attempt budget runs out.
// On top of it sit the session heartbeats: when enough go unanswered the
// client enters the paper's suspend state, pauses the presentation, and
// probes the server with a resume-by-session-ID connect until the grace
// window closes — then fails over to a replica and is re-admitted there.

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/server"
)

// pendingReq is one in-flight tracked control request.
type pendingReq struct {
	id       uint32
	host     string
	mt       protocol.MsgType
	frame    []byte
	attempts int
	delay    time.Duration
	// deadline, when set, bounds retransmission in time instead of
	// attempts (used by recovery probes, which retry until the grace
	// window closes).
	deadline time.Time
	// sentAt stamps the first transmission; the control span measures
	// first-send→reply, so retransmission waits count against the RTT.
	sentAt time.Time
	timer  *clock.Timer
	// onFail runs with c.mu held once the request is abandoned.
	onFail func()
}

// sendFrame puts one raw control frame on the wire. Send errors are left to
// the retransmission machinery: a refused packet looks exactly like a lost
// one.
func (c *Client) sendFrame(host string, frame []byte) {
	_ = c.net.Send(netsim.Packet{
		From:     c.ctrlAddr(),
		To:       netsim.MakeAddr(host, server.ControlPort),
		Payload:  frame,
		Reliable: true,
	})
}

// sendReqLocked sends a tracked request: it is retransmitted with capped
// backoff until its reply (correlated by request ID) arrives. A zero
// deadline bounds it by Options.RetryAttempts; otherwise it retries until
// the deadline. Caller holds c.mu.
func (c *Client) sendReqLocked(host string, mt protocol.MsgType, body interface{}, deadline time.Time, onFail func()) uint32 {
	c.nextReq++
	id := c.nextReq
	pr := &pendingReq{
		id:       id,
		host:     host,
		mt:       mt,
		frame:    protocol.MustEncodeReq(mt, id, body),
		delay:    c.opts.RetryTimeout,
		deadline: deadline,
		sentAt:   c.clk.Now(),
		onFail:   onFail,
	}
	c.pending[id] = pr
	pr.timer = c.clk.AfterFunc(pr.delay, func() { c.retryReq(id) })
	c.sendFrame(host, pr.frame)
	return id
}

// retryReq fires when a tracked request's reply timeout expires: either
// retransmit with doubled (capped) backoff, or abandon it, surfacing a
// client Event plus an obs trace event and running the request's onFail.
func (c *Client) retryReq(id uint32) {
	c.mu.Lock()
	pr, ok := c.pending[id]
	if !ok {
		c.mu.Unlock()
		return
	}
	pr.attempts++
	exhausted := pr.attempts >= c.opts.RetryAttempts
	if !pr.deadline.IsZero() {
		exhausted = !c.clk.Now().Before(pr.deadline)
	}
	if exhausted {
		delete(c.pending, id)
		c.opts.Obs.Counter("client_ctrl_timeouts").Inc()
		c.opts.Obs.Emit(obs.EvCtrlTimeout, pr.host, int64(pr.attempts),
			fmt.Sprintf("%s abandoned after %d attempts", pr.mt, pr.attempts))
		c.logEvent("request timeout: " + pr.mt.String() + " → " + pr.host)
		if pr.onFail != nil {
			pr.onFail()
		}
		c.mu.Unlock()
		return
	}
	c.opts.Obs.Counter("client_ctrl_retries").Inc()
	c.opts.Obs.Emit(obs.EvCtrlRetry, pr.host, int64(pr.attempts), "retrying "+pr.mt.String())
	pr.delay *= 2
	if pr.delay > c.opts.RetryBackoffCap {
		pr.delay = c.opts.RetryBackoffCap
	}
	pr.timer = c.clk.AfterFunc(pr.delay, func() { c.retryReq(id) })
	host, frame := pr.host, pr.frame
	c.mu.Unlock()
	c.sendFrame(host, frame)
}

// completePendingLocked resolves a tracked request when its echoed reply
// arrives. It reports false for an unknown ID — a duplicated reply, which
// the caller must ignore so retransmitted requests have no double effects.
func (c *Client) completePendingLocked(reqID uint32) bool {
	pr, ok := c.pending[reqID]
	if !ok {
		c.opts.Obs.Counter("client_ctrl_dup_replies").Inc()
		return false
	}
	if pr.timer != nil {
		pr.timer.Stop()
	}
	delete(c.pending, reqID)
	rtt := c.clk.Now().Sub(pr.sentAt)
	c.hCtrlRTT.Observe(rtt)
	c.opts.Obs.Sample(obs.EvCtrlSpan, pr.host, rtt.Microseconds(), pr.mt.String())
	return true
}

// cancelPendingLocked abandons every tracked request toward a host without
// running onFail (used when tearing the connection down deliberately).
func (c *Client) cancelPendingLocked(host string) {
	for id, pr := range c.pending {
		if pr.host != host {
			continue
		}
		if pr.timer != nil {
			pr.timer.Stop()
		}
		delete(c.pending, id)
	}
}

// --- heartbeats and liveness ---

// startHeartbeatLocked (re)arms the heartbeat loop toward the current
// server. Caller holds c.mu.
func (c *Client) startHeartbeatLocked() {
	if c.opts.DisableHeartbeat {
		return
	}
	if c.hbTimer != nil {
		c.hbTimer.Stop()
	}
	c.hbAwait = false
	c.hbMisses = 0
	c.hbTimer = c.clk.AfterFunc(c.opts.HeartbeatInterval, c.heartbeatTick)
}

// heartbeatTick counts unanswered beats and sends the next one. The loop
// parks itself whenever there is no live session to probe (and is restarted
// by the next successful connect).
func (c *Client) heartbeatTick() {
	c.mu.Lock()
	host := c.current
	sess := c.sessions[host]
	if host == "" || sess == "" || c.recovering != "" {
		c.hbTimer = nil
		c.mu.Unlock()
		return
	}
	switch c.machine(host).State() {
	case protocol.StIdle, protocol.StConnecting, protocol.StSuspended, protocol.StDisconnected:
		// No live session toward this server right now (e.g. a voluntary
		// suspend in flight): stop probing; a connect result re-arms.
		c.hbTimer = nil
		c.mu.Unlock()
		return
	}
	if c.hbAwait {
		c.hbMisses++
		c.opts.Obs.Counter("client_heartbeat_misses").Inc()
		c.opts.Obs.Emit(obs.EvHeartbeatMiss, host, int64(c.hbMisses), "heartbeat unanswered")
	} else {
		c.hbMisses = 0
	}
	if c.hbMisses >= c.opts.LivenessMisses {
		c.hbTimer = nil
		c.onPeerLostLocked(host, "heartbeats unanswered")
		c.mu.Unlock()
		return
	}
	c.hbAwait = true
	c.hbTimer = c.clk.AfterFunc(c.opts.HeartbeatInterval, c.heartbeatTick)
	c.mu.Unlock()
	c.send(host, protocol.MsgHeartbeat, protocol.Heartbeat{SessionID: sess})
}

func (c *Client) onHeartbeatAck(from string, m protocol.HeartbeatAck) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if from != c.current || c.recovering != "" {
		return
	}
	if m.OK {
		c.hbAwait = false
		c.hbMisses = 0
		// Every ack refreshes the per-document replica set, so failover
		// targets track the document being viewed and placement changes.
		if len(m.Peers) > 0 {
			c.peers = append([]string(nil), m.Peers...)
		}
		return
	}
	// The server answers but holds no session for us: it restarted and
	// lost its state. Skip the remaining miss budget and recover now.
	if c.sessions[from] != "" && c.machine(from).State() != protocol.StSuspended {
		c.onPeerLostLocked(from, "server lost session state")
	}
}

// onPeerLostLocked declares the server dead: the paper's suspend state is
// entered, the presentation freezes, and a resume-by-session-ID connect
// probes the server until the grace window closes, after which the client
// fails over. Caller holds c.mu.
func (c *Client) onPeerLostLocked(host, why string) {
	if c.recovering == host {
		return
	}
	c.opts.Obs.Counter("client_liveness_losses").Inc()
	c.opts.Obs.Emit(obs.EvLiveness, host, 0, "peer lost: "+why)
	c.logEvent("liveness lost: " + host)
	if c.hbTimer != nil {
		c.hbTimer.Stop()
		c.hbTimer = nil
	}
	mach := c.machine(host)
	if mach.Can(protocol.InPeerLost) {
		mach.Apply(protocol.InPeerLost)
	}
	if c.player != nil && !c.player.Finished() && c.docHost == host {
		c.player.Pause()
	}
	c.recovering = host
	grace := time.Duration(c.graceSecs) * time.Second
	if grace <= 0 {
		grace = 30 * time.Second
	}
	c.recoverDeadline = c.clk.Now().Add(grace)
	c.sendReqLocked(host, protocol.MsgConnect, protocol.Connect{
		User: c.opts.User, ResumeSession: c.sessions[host],
	}, c.recoverDeadline, func() {
		c.recovering = ""
		c.failoverLocked(host)
	})
}

// failoverLocked abandons a dead server and re-admits the session at the
// first untried replica, re-requesting the interrupted document there.
// Caller holds c.mu.
func (c *Client) failoverLocked(deadHost string) {
	c.recovering = ""
	if c.failedPeers == nil {
		c.failedPeers = map[string]bool{}
	}
	c.failedPeers[deadHost] = true
	delete(c.sessions, deadHost)
	delete(c.suspendTokens, deadHost)
	c.cancelPendingLocked(deadHost)
	mach := c.machine(deadHost)
	if mach.Can(protocol.InGraceExpired) {
		mach.Apply(protocol.InGraceExpired)
	}
	doc := c.docName
	c.teardownPresentationLocked()
	var target string
	for _, p := range c.peers {
		if p != deadHost && p != c.Host && !c.failedPeers[p] {
			target = p
			break
		}
	}
	if target == "" {
		c.lastError = "session lost: no failover peer available"
		c.logEvent("session lost: no failover peer")
		c.opts.Obs.Emit(obs.EvFailover, deadHost, 0, "no replica available")
		if c.current == deadHost {
			c.current = ""
		}
		return
	}
	c.opts.Obs.Counter("client_failovers").Inc()
	c.opts.Obs.Emit(obs.EvFailover, deadHost, 0, "failing over to "+target)
	c.logEvent("failover " + deadHost + " → " + target)
	if doc != "" {
		c.pendingDoc = doc
	}
	c.connectLocked(target, true)
}

// Package client implements the Hermes browser core: connection management
// with the application state machine, scenario preprocessing into the E_i
// playout structures, one buffer handler per parallel media connection,
// media stream handlers that reassemble RTP fragments, the presentation
// handlers (a playout.Player rendering to a Display trace), the Client QoS
// Manager with its periodic feedback reports, navigation history, and the
// interactive operations (pause, resume, reload, disable media, annotate).
package client

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/playout"
	"repro/internal/protocol"
	"repro/internal/qos"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/stats"
)

// Options tunes the browser.
type Options struct {
	// CtrlPort is the client's control port.
	CtrlPort int
	// MediaPortBase is the first port used for parallel media
	// connections.
	MediaPortBase int
	// Window is the media time window per buffer; zero computes it from
	// the announced frame interval and JitterBudget.
	Window time.Duration
	// JitterBudget is the delay-variation allowance used when computing
	// windows (the "tolerance to network delays" of the statistical
	// window calculation).
	JitterBudget time.Duration
	// WindowSafety is the safety multiplier of the window calculation.
	WindowSafety float64
	// MaxInitialDelay caps the deliberate presentation start delay.
	MaxInitialDelay time.Duration
	// FeedbackInterval spaces the QoS feedback reports.
	FeedbackInterval time.Duration
	// Playout tunes the presentation scheduler.
	Playout playout.Options
	// AutoFollowLinks makes the browser follow timed links automatically.
	AutoFollowLinks bool
	// User credentials and contract.
	User     string
	Password string
	Class    qos.PricingClass
	// PeakRate/MinRate describe the connection load for admission.
	PeakRate float64
	MinRate  float64
	// FloorLevel is the worst quality level the user accepts.
	FloorLevel int
	// HeartbeatInterval spaces the session heartbeats probing server
	// liveness.
	HeartbeatInterval time.Duration
	// LivenessMisses is how many consecutive unanswered heartbeats declare
	// the server dead.
	LivenessMisses int
	// RetryTimeout is the initial reply timeout of tracked control
	// requests; it doubles on each retransmission up to RetryBackoffCap.
	RetryTimeout time.Duration
	// RetryBackoffCap bounds the exponential retransmission backoff.
	RetryBackoffCap time.Duration
	// RetryAttempts bounds retransmissions of requests without an explicit
	// deadline.
	RetryAttempts int
	// MaxRedirectHops bounds how many admission redirects the client follows
	// in one connect episode before giving up.
	MaxRedirectHops int
	// Peers seeds the failover/redirect replica set before the first
	// successful connect advertises one (the hermes -peers flag).
	Peers []string
	// DisableHeartbeat turns the liveness probing off (for experiments
	// isolating the control plane).
	DisableHeartbeat bool
	// Obs, when set, threads telemetry through the browser's buffers and
	// playout scheduler and records session lifecycle events.
	Obs *obs.Scope
	// OnFrame, when set, observes every fully reassembled media frame with
	// its payload bytes (integrity tests hook it). The payload slice is
	// borrowed pooled scratch: it is valid only for the duration of the
	// call, and the callback runs under the client's internal lock, so it
	// must copy what it keeps and must not call back into the client.
	OnFrame func(streamID string, hdr media.FrameHeader, payload []byte)
}

func (o *Options) fill() {
	if o.CtrlPort <= 0 {
		o.CtrlPort = 6000
	}
	if o.MediaPortBase <= 0 {
		o.MediaPortBase = 7000
	}
	if o.JitterBudget <= 0 {
		o.JitterBudget = 100 * time.Millisecond
	}
	if o.WindowSafety <= 0 {
		o.WindowSafety = 2
	}
	if o.MaxInitialDelay <= 0 {
		o.MaxInitialDelay = 5 * time.Second
	}
	if o.FeedbackInterval <= 0 {
		o.FeedbackInterval = time.Second
	}
	if o.PeakRate <= 0 {
		o.PeakRate = 2_000_000
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.LivenessMisses <= 0 {
		o.LivenessMisses = 3
	}
	if o.RetryTimeout <= 0 {
		o.RetryTimeout = 750 * time.Millisecond
	}
	if o.RetryBackoffCap <= 0 {
		o.RetryBackoffCap = 4 * time.Second
	}
	if o.RetryAttempts <= 0 {
		o.RetryAttempts = 5
	}
	if o.MaxRedirectHops <= 0 {
		o.MaxRedirectHops = 3
	}
}

// Event is a coarse browser lifecycle notification for tests and examples.
type Event struct {
	At   time.Time
	What string
}

// Client is one Hermes browser instance on the simulated network.
type Client struct {
	mu sync.Mutex

	// Host is the client's host name.
	Host string

	clk  clock.Clock
	net  netsim.Net
	opts Options

	// spans and hCtrlRTT are resolved once at New, like counters: spans
	// samples the wire→reassembled hop of 1-in-N media frames, hCtrlRTT
	// observes the first-send→reply round trip of tracked control requests.
	spans    *obs.FrameSpans
	hCtrlRTT *stats.DurationHistogram

	machines map[string]*protocol.Machine
	current  string // connected server host ("" when none)
	sessions map[string]string

	// presentation state
	sc         *scenario.Scenario
	sch        *scenario.Schedule
	bufs       *buffer.Set
	display    *playout.Display
	player     *playout.Player
	monitor    *qos.ClientMonitor
	streamInfo map[string]protocol.StreamAnnounce
	asm        map[uint32]map[uint32]*assembly
	asmFree    []*assembly // recycled assembly shells (their bufs are pooled separately)
	docName    string
	docHost    string // server the current document came from
	// userPaused remembers a user-requested pause across a liveness
	// suspend: recovery restores the paused presentation instead of
	// restarting playout (the server keeps the sender paused too).
	userPaused bool
	fillIDs    []string // stream buffers gating the deliberate initial delay
	stillIDs   []string // stills that must be present before the start
	docAt      time.Time
	startDelay time.Duration
	started    bool
	fillTimer  *clock.Timer
	endTimer   *clock.Timer
	fbTimer    *clock.Timer

	// results of the last control exchanges
	lastConnect   *protocol.ConnectResult
	lastSubscribe *protocol.SubscribeResult
	topics        []protocol.TopicInfo
	searchHits    []protocol.TopicInfo
	searchDone    bool
	annotations   *protocol.Annotations
	lastStats     *protocol.StatsResult
	lastError     string

	suspendTokens map[string]string
	history       []string
	events        []Event

	// Browser navigation stacks ("moving backward and forward in the list
	// of already viewed lessons", §6.2.3). Each entry records the document
	// and the server it lived on.
	backStack []navEntry
	fwdStack  []navEntry
	// navDirection classifies the in-flight request's effect on the
	// stacks: 0 new navigation, -1 back, +1 forward, 2 reload.
	navDirection int

	mediaPorts []netsim.Addr

	// pendingAfterSuspend runs once the suspend ack arrives (cross-server
	// navigation chains suspend → connect → request asynchronously);
	// pendingDoc is requested once the follow-up connect succeeds.
	pendingAfterSuspend func()
	pendingDoc          string

	// reliable control plane (reliable.go)
	nextReq uint32
	pending map[uint32]*pendingReq
	// peers/graceSecs are the replica set and suspend grace window the
	// server advertised on connect; they bound recovery and failover.
	peers     []string
	graceSecs int
	hbTimer   *clock.Timer
	hbAwait   bool
	hbMisses  int
	// recovering names the server currently being probed for session
	// recovery ("" when healthy); failedPeers tracks replicas that already
	// failed us during this failover episode.
	recovering      string
	recoverDeadline time.Time
	failedPeers     map[string]bool

	// Cluster episode state (cluster.go): admission-redirect following with
	// bounded hops, and the in-flight cross-server handoff.
	redirectHops  int
	redirectTried map[string]bool
	handoffFrom   string // source server of the in-flight handoff ("" none)
	handoffTicket *protocol.HandoffTicket
	handoffPeers  []string // replicas advertised with the handoff
	handoffStart  time.Time
	hHandoff      *stats.DurationHistogram // handoff_latency, resolved at New
}

// navEntry is one visited document in the navigation stacks.
type navEntry struct {
	Host string
	Name string
}

// asmPool recycles the frame-sized reassembly scratch buffers of every
// client's media receive path.
var asmPool buffer.Pool

// assembly collects one frame's fragments into pooled scratch. Fragment fi
// occupies bytes [fi×MTU, fi×MTU+len) of the frame, so arrival order does
// not matter, and the per-fragment data is copied out of the (borrowed,
// transport-owned) packet payload immediately.
type assembly struct {
	pb    *buffer.Buf // FrameSize bytes of pooled scratch
	got   []bool      // fragments seen; duplicate deliveries must not double-count
	have  uint16
	total uint16
	hdr   media.FrameHeader
	ts    uint32
	// sentAt is the wire stamp of the earliest fragment seen (zero when the
	// transport does not stamp); it anchors the wire→reassembled span.
	sentAt time.Time
}

// newAssemblyLocked takes an assembly shell off the free list (or makes one)
// and equips it with pooled scratch sized for the frame. Caller holds c.mu.
func (c *Client) newAssemblyLocked(hdr media.FrameHeader, ts uint32) *assembly {
	var a *assembly
	if n := len(c.asmFree); n > 0 {
		a = c.asmFree[n-1]
		c.asmFree[n-1] = nil
		c.asmFree = c.asmFree[:n-1]
	} else {
		a = &assembly{}
	}
	a.pb = asmPool.Get(int(hdr.FrameSize))
	if cap(a.got) < int(hdr.FragCount) {
		a.got = make([]bool, hdr.FragCount)
	} else {
		a.got = a.got[:hdr.FragCount]
		for i := range a.got {
			a.got[i] = false
		}
	}
	a.have = 0
	a.total = hdr.FragCount
	a.hdr = hdr
	a.ts = ts
	a.sentAt = time.Time{}
	return a
}

// freeAssemblyLocked returns the scratch to the pool and the shell to the
// free list. Caller holds c.mu and must not touch a afterwards.
func (c *Client) freeAssemblyLocked(a *assembly) {
	asmPool.Put(a.pb)
	a.pb = nil
	if len(c.asmFree) < 64 {
		c.asmFree = append(c.asmFree, a)
	}
}

// New creates a browser and registers its control listener. It fails when
// the network cannot bind the browser's control address (only possible on
// the live transport).
func New(host string, clk clock.Clock, net netsim.Net, opts Options) (*Client, error) {
	opts.fill()
	c := &Client{
		Host:          host,
		clk:           clk,
		net:           net,
		opts:          opts,
		machines:      map[string]*protocol.Machine{},
		sessions:      map[string]string{},
		suspendTokens: map[string]string{},
		pending:       map[uint32]*pendingReq{},
		failedPeers:   map[string]bool{},
		monitor:       qos.NewClientMonitor(clk, 0x1996),
	}
	c.spans = opts.Obs.FrameSpans()
	c.hCtrlRTT = opts.Obs.Histogram("client_ctrl_rtt")
	c.hHandoff = opts.Obs.Histogram("handoff_latency")
	c.peers = append([]string(nil), opts.Peers...)
	if err := net.Listen(c.ctrlAddr(), c.handleCtrl); err != nil {
		return nil, fmt.Errorf("client %s: %w", host, err)
	}
	return c, nil
}

func (c *Client) ctrlAddr() netsim.Addr { return netsim.MakeAddr(c.Host, c.opts.CtrlPort) }

func (c *Client) logEvent(what string) {
	c.events = append(c.events, Event{At: c.clk.Now(), What: what})
}

// Events returns the lifecycle log.
func (c *Client) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// machine returns (creating if needed) the per-server state machine.
func (c *Client) machine(host string) *protocol.Machine {
	m, ok := c.machines[host]
	if !ok {
		m = protocol.NewMachine()
		c.machines[host] = m
	}
	return m
}

// State returns the application state toward a server.
func (c *Client) State(host string) protocol.State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.machine(host).State()
}

// CurrentServer returns the host currently connected ("" when none).
func (c *Client) CurrentServer() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.current
}

func (c *Client) send(host string, t protocol.MsgType, body interface{}) {
	c.net.Send(netsim.Packet{
		From:     c.ctrlAddr(),
		To:       netsim.MakeAddr(host, server.ControlPort),
		Payload:  protocol.MustEncode(t, body),
		Reliable: true,
	})
}

// Connect initiates a session with a server. A previous session's terminal
// state does not block a new one: the Figure 4 machine is per session, so a
// fresh machine is started when the old one reached disconnected.
func (c *Client) Connect(host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.connectLocked(host, false)
}

func (c *Client) connectLocked(host string, failover bool) {
	m := c.machine(host)
	if m.State() == protocol.StDisconnected {
		m = protocol.NewMachine()
		c.machines[host] = m
	}
	if m.State() == protocol.StSuspended {
		// Connecting toward a suspended session is a return: the resume
		// token rides along and InReturn fires on the server's answer.
		c.current = host
		c.lastConnect = nil
		c.logEvent("return to " + host)
		c.sendReqLocked(host, protocol.MsgConnect, protocol.Connect{
			User: c.opts.User, ResumeToken: c.suspendTokens[host],
		}, time.Time{}, func() { c.connectFailedLocked(host, failover) })
		return
	}
	if err := m.Apply(protocol.InConnect); err != nil {
		c.lastError = err.Error()
		return
	}
	c.current = host
	c.lastConnect = nil
	c.logEvent("connect → " + host)
	c.sendReqLocked(host, protocol.MsgConnect, protocol.Connect{
		User: c.opts.User, Password: c.opts.Password, Class: c.opts.Class,
		PeakRate: c.opts.PeakRate, MinRate: c.opts.MinRate,
		FloorLevel:  c.opts.FloorLevel,
		ResumeToken: c.suspendTokens[host],
		Failover:    failover,
	}, time.Time{}, func() { c.connectFailedLocked(host, failover) })
}

// connectFailedLocked unsticks a connect whose reply never arrived: the
// machine leaves Connecting instead of hanging there forever. During a
// failover the next untried replica is attempted.
func (c *Client) connectFailedLocked(host string, failover bool) {
	m := c.machine(host)
	if m.State() == protocol.StConnecting && m.Can(protocol.InAuthReject) {
		m.Apply(protocol.InAuthReject)
	}
	c.lastError = "connect timed out: " + host
	c.logEvent("connect timed out: " + host)
	if failover {
		c.failoverLocked(host)
	}
}

// Subscribe submits the subscription form to the current server; the
// browser adopts the form's credentials as its identity.
func (c *Client) Subscribe(form protocol.SubscriptionForm) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastSubscribe = nil
	c.opts.User = form.User
	c.opts.Password = form.Password
	c.sendReqLocked(c.current, protocol.MsgSubscribe, form, time.Time{}, nil)
}

// RequestTopics asks for the contents listing.
func (c *Client) RequestTopics() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.topics = nil
	c.sendReqLocked(c.current, protocol.MsgTopicList, protocol.TopicListRequest{}, time.Time{}, nil)
}

// Search launches a federated content search from the current server.
func (c *Client) Search(token string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.searchHits = nil
	c.searchDone = false
	c.sendReqLocked(c.current, protocol.MsgSearch, protocol.Search{Token: token},
		time.Time{}, func() { c.searchDone = true })
}

// RequestDoc asks the current server for a document.
func (c *Client) RequestDoc(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.requestDocLocked(name)
}

func (c *Client) requestDocLocked(name string) {
	m := c.machine(c.current)
	if m.State() == protocol.StViewing || m.State() == protocol.StPaused {
		// Selecting a new document ends the current presentation.
		c.teardownPresentationLocked()
		m.Apply(protocol.InPresentationEnd)
	}
	if err := m.Apply(protocol.InRequestDoc); err != nil {
		c.lastError = err.Error()
		return
	}
	c.logEvent("request " + name)
	win := c.opts.Window
	if win <= 0 {
		// The statistical window calculation, using the worst (video)
		// frame interval before the announce arrives.
		win = buffer.ComputeWindow(40*time.Millisecond, c.opts.JitterBudget, c.opts.WindowSafety)
	}
	host := c.current
	c.sendReqLocked(host, protocol.MsgDocRequest, protocol.DocRequest{
		Name:          name,
		MediaPortBase: c.opts.MediaPortBase,
		WindowMS:      int(win / time.Millisecond),
	}, time.Time{}, func() {
		mach := c.machine(host)
		if mach.State() == protocol.StRequesting && mach.Can(protocol.InDocFail) {
			mach.Apply(protocol.InDocFail)
		}
		c.lastError = "document request timed out: " + name
	})
}

// Disconnect ends the session with the current server.
func (c *Client) Disconnect() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.current == "" {
		return
	}
	c.teardownPresentationLocked()
	m := c.machine(c.current)
	if m.Can(protocol.InDisconnect) {
		m.Apply(protocol.InDisconnect)
	}
	c.cancelPendingLocked(c.current)
	if c.hbTimer != nil {
		c.hbTimer.Stop()
		c.hbTimer = nil
	}
	c.send(c.current, protocol.MsgDisconnect, protocol.Disconnect{})
	c.logEvent("disconnect " + c.current)
	c.opts.Obs.Emit(obs.EvSessionEnd, c.current, 0, "client disconnect")
	c.current = ""
}

// Pause pauses the presentation locally and at the media servers.
func (c *Client) Pause() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.player == nil || c.machine(c.current).State() != protocol.StViewing {
		return
	}
	c.machine(c.current).Apply(protocol.InPause)
	c.send(c.current, protocol.MsgPause, protocol.MediaOp{})
	c.player.Pause()
	c.userPaused = true
	c.logEvent("pause")
}

// Resume continues a paused presentation.
func (c *Client) Resume() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.player == nil || c.machine(c.current).State() != protocol.StPaused {
		return
	}
	c.machine(c.current).Apply(protocol.InResume)
	c.send(c.current, protocol.MsgResume, protocol.MediaOp{})
	c.player.Resume()
	c.userPaused = false
	c.logEvent("resume")
}

// DisableMedia stops one stream's presentation and transmission.
func (c *Client) DisableMedia(streamID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.send(c.current, protocol.MsgDisableMedia, protocol.MediaOp{StreamID: streamID})
	c.logEvent("disable " + streamID)
}

// Annotate attaches a remark to the current document.
func (c *Client) Annotate(text string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.send(c.current, protocol.MsgAnnotate, protocol.Annotate{Text: text})
}

// RequestStats asks the current server for its telemetry registry
// snapshot; the reply lands in Stats.
func (c *Client) RequestStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastStats = nil
	c.sendReqLocked(c.current, protocol.MsgStatsRequest, protocol.StatsRequest{}, time.Time{}, nil)
}

// Stats returns the last received server telemetry snapshot (nil = none
// yet).
func (c *Client) Stats() *protocol.StatsResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastStats
}

// RequestAnnotations asks for the remarks stored on a document ("" = the
// current one); the reply lands in Annotations.
func (c *Client) RequestAnnotations(doc string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.annotations = nil
	c.sendReqLocked(c.current, protocol.MsgListAnnotations, protocol.ListAnnotations{Doc: doc}, time.Time{}, nil)
}

// Annotations returns the last received annotation listing (nil = none yet).
func (c *Client) Annotations() *protocol.Annotations {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.annotations
}

// Reload re-requests the current document from the start (the navigation
// stacks are untouched).
func (c *Client) Reload() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.docName != "" {
		name := c.docName
		c.navDirection = 2
		c.requestDocLocked(name)
	}
}

// Back returns to the previously viewed document, reconnecting to its
// server when necessary. It reports whether there was anywhere to go.
func (c *Client) Back() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.backStack) == 0 {
		return false
	}
	target := c.backStack[len(c.backStack)-1]
	c.backStack = c.backStack[:len(c.backStack)-1]
	c.navDirection = -1
	c.logEvent("back → " + target.Name)
	c.navigateLocked(target)
	return true
}

// Forward re-advances after a Back. It reports whether there was anywhere
// to go.
func (c *Client) Forward() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.fwdStack) == 0 {
		return false
	}
	target := c.fwdStack[len(c.fwdStack)-1]
	c.fwdStack = c.fwdStack[:len(c.fwdStack)-1]
	c.navDirection = 1
	c.logEvent("forward → " + target.Name)
	c.navigateLocked(target)
	return true
}

// CanBack and CanForward report stack availability.
func (c *Client) CanBack() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.backStack) > 0
}

// CanForward reports whether Forward has anywhere to go.
func (c *Client) CanForward() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.fwdStack) > 0
}

// navigateLocked requests a document, switching servers when the entry
// lives elsewhere.
func (c *Client) navigateLocked(e navEntry) {
	if e.Host == "" || e.Host == c.current {
		c.requestDocLocked(e.Name)
		return
	}
	dir := c.navDirection
	c.followLinkLocked(scenario.Link{Target: e.Name, Host: e.Host})
	c.navDirection = dir
}

// FollowLink navigates to a linked document, suspending the current
// connection when the target lives on another server.
func (c *Client) FollowLink(link scenario.Link) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.followLinkLocked(link)
}

func (c *Client) followLinkLocked(link scenario.Link) {
	target := link.Target
	if link.Host == "" || link.Host == c.current {
		c.requestDocLocked(target)
		return
	}
	// Cross-server navigation: suspend here, connect there.
	m := c.machine(c.current)
	if m.Can(protocol.InRedirect) {
		m.Apply(protocol.InRedirect)
	}
	c.teardownPresentationLocked()
	from := c.current
	c.logEvent(fmt.Sprintf("suspend %s → %s", from, link.Host))
	c.sendReqLocked(from, protocol.MsgSuspend, protocol.Suspend{},
		time.Time{}, c.suspendAbandonedLocked)
	// The new connection proceeds immediately; the suspend ack arrives
	// asynchronously and stores the resume token.
	host := link.Host
	c.pendingAfterSuspend = func() {
		c.mu.Lock()
		c.pendingDoc = target
		c.mu.Unlock()
		c.Connect(host)
	}
}

// suspendAbandonedLocked runs when a suspend request times out: proceed
// with the pending navigation anyway (the unreachable session expires
// server-side). The continuation re-locks, so it runs off a zero timer.
func (c *Client) suspendAbandonedLocked() {
	after := c.pendingAfterSuspend
	c.pendingAfterSuspend = nil
	if after != nil {
		c.clk.AfterFunc(0, after)
	}
}

// ReturnTo resumes a previously suspended connection within its grace
// period.
func (c *Client) ReturnTo(host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.logEvent("return to " + host)
	c.current = host
	c.lastConnect = nil
	c.sendReqLocked(host, protocol.MsgConnect, protocol.Connect{
		User: c.opts.User, ResumeToken: c.suspendTokens[host],
	}, time.Time{}, nil)
}

// --- accessors for tests and experiments ---

// LastConnect returns the most recent connect result.
func (c *Client) LastConnect() *protocol.ConnectResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastConnect
}

// LastSubscribe returns the most recent subscription result.
func (c *Client) LastSubscribe() *protocol.SubscribeResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastSubscribe
}

// Topics returns the last received contents listing.
func (c *Client) Topics() []protocol.TopicInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.topics
}

// SearchResults returns the last search hits and whether the reply arrived.
func (c *Client) SearchResults() ([]protocol.TopicInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.searchHits, c.searchDone
}

// LastError returns the most recent error string.
func (c *Client) LastError() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastError
}

// Display returns the playout trace of the current/last presentation.
func (c *Client) Display() *playout.Display {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.display
}

// Player returns the active presentation scheduler (nil when idle).
func (c *Client) Player() *playout.Player {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.player
}

// Buffers returns the active buffer set (nil when idle).
func (c *Client) Buffers() *buffer.Set {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bufs
}

// Monitor returns the client QoS manager.
func (c *Client) Monitor() *qos.ClientMonitor { return c.monitor }

// StartupDelay returns the deliberate initial delay of the last
// presentation (zero until playout started).
func (c *Client) StartupDelay() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.startDelay
}

// History returns the names of documents viewed, oldest first.
func (c *Client) History() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.history))
	copy(out, c.history)
	return out
}

// SuspendToken returns the resume token held for a server.
func (c *Client) SuspendToken(host string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.suspendTokens[host]
}

// StreamInfo returns the media connection plan the server announced for a
// stream of the current document (zero value when unknown).
func (c *Client) StreamInfo(id string) (protocol.StreamAnnounce, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ann, ok := c.streamInfo[id]
	return ann, ok
}

// SessionID returns the session identifier granted by a server ("" when not
// connected there).
func (c *Client) SessionID(host string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessions[host]
}

// Scenario returns the active scenario (nil when idle).
func (c *Client) Scenario() *scenario.Scenario {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sc
}

package mail

import (
	"strings"
	"testing"
	"time"
)

var when = time.Date(1996, 8, 6, 10, 30, 0, 0, time.UTC)

func msg() *Message {
	return &Message{
		From:    "student@uni.gr",
		To:      "tutor@cti.gr",
		Subject: "Question about lesson 3",
		Date:    when,
		Body:    "Could you explain the synchronization slide?",
	}
}

func TestRenderPlainHeaders(t *testing.T) {
	out := Render(msg())
	for _, want := range []string{
		"From: student@uni.gr", "To: tutor@cti.gr",
		"Subject: Question about lesson 3", "MIME-Version: 1.0",
		"Content-Type: text/plain", "synchronization slide",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestParseRenderRoundTrip(t *testing.T) {
	m := msg()
	got, err := Parse(Render(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.From != m.From || got.To != m.To || got.Subject != m.Subject || got.Body != m.Body {
		t.Fatalf("round trip: %+v", got)
	}
	if !got.Date.Equal(when) {
		t.Fatalf("date = %v", got.Date)
	}
}

func TestMultipartAttachmentRoundTrip(t *testing.T) {
	m := msg()
	m.Attachments = []Attachment{
		{Filename: "annotation.hml", ContentType: "text/x-hml", Data: []byte("<TITLE>note</TITLE>")},
		{Filename: "frame.jpg", ContentType: "image/jpeg", Data: []byte{0xff, 0xd8, 0x01, 0x02}},
	}
	out := Render(m)
	if !strings.Contains(out, "multipart/mixed") {
		t.Fatalf("not multipart:\n%s", out)
	}
	got, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.Body != m.Body {
		t.Fatalf("body = %q", got.Body)
	}
	if len(got.Attachments) != 2 {
		t.Fatalf("attachments = %d", len(got.Attachments))
	}
	if got.Attachments[0].Filename != "annotation.hml" ||
		string(got.Attachments[0].Data) != "<TITLE>note</TITLE>" {
		t.Fatalf("attachment 0 = %+v", got.Attachments[0])
	}
	if got.Attachments[1].ContentType != "image/jpeg" {
		t.Fatalf("attachment 1 CT = %q", got.Attachments[1].ContentType)
	}
}

func TestNonASCIISubject(t *testing.T) {
	m := msg()
	m.Subject = "Ερώτηση για το μάθημα"
	got, err := Parse(Render(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Subject != m.Subject {
		t.Fatalf("subject = %q", got.Subject)
	}
}

func TestSpoolDeliveryAndMailboxes(t *testing.T) {
	s := NewSpool()
	s.Deliver(msg())
	m2 := msg()
	m2.To = "Tutor@CTI.GR" // case-insensitive mailbox
	s.Deliver(m2)
	if got := len(s.Mailbox("tutor@cti.gr")); got != 2 {
		t.Fatalf("mailbox = %d", got)
	}
	if len(s.Mailbox("nobody@x")) != 0 {
		t.Fatal("phantom mailbox")
	}
	if addrs := s.Addresses(); len(addrs) != 1 || addrs[0] != "tutor@cti.gr" {
		t.Fatalf("addresses = %v", addrs)
	}
}

func TestSMTPSessionHappyPath(t *testing.T) {
	srv := NewServer("hermes.cti.gr")
	transcript, err := Send(srv, msg())
	if err != nil {
		t.Fatalf("%v\n%s", err, strings.Join(transcript, "\n"))
	}
	box := srv.Spool.Mailbox("tutor@cti.gr")
	if len(box) != 1 {
		t.Fatalf("mailbox = %d", len(box))
	}
	if box[0].Body != msg().Body || box[0].Subject != msg().Subject {
		t.Fatalf("delivered = %+v", box[0])
	}
	joined := strings.Join(transcript, "\n")
	for _, want := range []string{"HELO", "MAIL FROM", "RCPT TO", "DATA", "250 OK: queued", "221 bye"} {
		if !strings.Contains(joined, want) {
			t.Errorf("transcript missing %q", want)
		}
	}
}

func TestSMTPBadSequence(t *testing.T) {
	srv := NewServer("x")
	sess := srv.Open()
	if r := sess.Line("DATA"); !strings.HasPrefix(r, "503") {
		t.Fatalf("DATA before MAIL: %q", r)
	}
	if r := sess.Line("BOGUS"); !strings.HasPrefix(r, "500") {
		t.Fatalf("unknown verb: %q", r)
	}
	sess.Line("QUIT")
	if !sess.Done() {
		t.Fatal("session not done after QUIT")
	}
}

func TestSMTPDotStuffing(t *testing.T) {
	srv := NewServer("x")
	m := msg()
	m.Body = "line one\r\n.hidden dot line\r\nlast"
	if _, err := Send(srv, m); err != nil {
		t.Fatal(err)
	}
	got := srv.Spool.Mailbox("tutor@cti.gr")[0]
	if !strings.Contains(got.Body, ".hidden dot line") {
		t.Fatalf("dot-stuffed body corrupted: %q", got.Body)
	}
}

func TestTutorReplyFlow(t *testing.T) {
	// Student asks; tutor replies prompting a lesson: two spools, the
	// asynchronous interaction of §6.2.4.
	studentSrv := NewServer("uni.gr")
	tutorSrv := NewServer("cti.gr")
	if _, err := Send(tutorSrv, msg()); err != nil {
		t.Fatal(err)
	}
	q := tutorSrv.Spool.Mailbox("tutor@cti.gr")[0]
	reply := &Message{
		From: q.To, To: q.From,
		Subject: "Re: " + q.Subject,
		Date:    when.Add(time.Hour),
		Body:    "Please retrieve lesson sync-2 from server-b.",
	}
	if _, err := Send(studentSrv, reply); err != nil {
		t.Fatal(err)
	}
	box := studentSrv.Spool.Mailbox("student@uni.gr")
	if len(box) != 1 || !strings.Contains(box[0].Body, "sync-2") {
		t.Fatalf("reply = %+v", box)
	}
}

// Package mail implements the asynchronous tutor/student interaction of the
// Hermes service: MIME message construction and a minimal SMTP-dialect
// server with an in-memory spool. The paper's prototype used SMTP and MIME
// for "the interaction between the student and the teacher"; this package
// exercises the same protocol structure end to end without external network
// access.
package mail

import (
	"bufio"
	"fmt"
	"mime"
	"mime/multipart"
	"net/textproto"
	"sort"
	"strings"
	"sync"
	"time"
)

// Message is one mail message.
type Message struct {
	From    string
	To      string
	Subject string
	Date    time.Time
	// Body is the plain-text part.
	Body string
	// Attachments are additional MIME parts (e.g. an annotated lesson
	// fragment).
	Attachments []Attachment
}

// Attachment is one extra MIME part.
type Attachment struct {
	Filename    string
	ContentType string
	Data        []byte
}

// Render produces the RFC 822 + MIME wire form of the message.
func Render(m *Message) string {
	var b strings.Builder
	fmt.Fprintf(&b, "From: %s\r\n", m.From)
	fmt.Fprintf(&b, "To: %s\r\n", m.To)
	fmt.Fprintf(&b, "Subject: %s\r\n", mime.QEncoding.Encode("utf-8", m.Subject))
	fmt.Fprintf(&b, "Date: %s\r\n", m.Date.UTC().Format(time.RFC1123Z))
	fmt.Fprintf(&b, "MIME-Version: 1.0\r\n")
	if len(m.Attachments) == 0 {
		b.WriteString("Content-Type: text/plain; charset=utf-8\r\n\r\n")
		b.WriteString(m.Body)
		b.WriteString("\r\n")
		return b.String()
	}
	const boundary = "hermes-boundary-1996"
	fmt.Fprintf(&b, "Content-Type: multipart/mixed; boundary=%q\r\n\r\n", boundary)
	w := multipart.NewWriter(&b)
	if err := w.SetBoundary(boundary); err != nil {
		panic(err) // fixed valid boundary
	}
	pw, _ := w.CreatePart(textproto.MIMEHeader{
		"Content-Type": {"text/plain; charset=utf-8"},
	})
	fmt.Fprintf(pw, "%s\r\n", m.Body)
	for _, a := range m.Attachments {
		ct := a.ContentType
		if ct == "" {
			ct = "application/octet-stream"
		}
		pw, _ := w.CreatePart(textproto.MIMEHeader{
			"Content-Type":        {ct},
			"Content-Disposition": {fmt.Sprintf("attachment; filename=%q", a.Filename)},
		})
		pw.Write(a.Data)
	}
	w.Close()
	return b.String()
}

// Parse decodes a rendered message (headers + plain or multipart body).
func Parse(raw string) (*Message, error) {
	tp := textproto.NewReader(bufio.NewReader(strings.NewReader(raw)))
	hdr, err := tp.ReadMIMEHeader()
	if err != nil {
		return nil, fmt.Errorf("mail: headers: %w", err)
	}
	m := &Message{
		From:    hdr.Get("From"),
		To:      hdr.Get("To"),
		Subject: decodeSubject(hdr.Get("Subject")),
	}
	if d, err := time.Parse(time.RFC1123Z, hdr.Get("Date")); err == nil {
		m.Date = d
	}
	ct := hdr.Get("Content-Type")
	mediaType, params, err := mime.ParseMediaType(ct)
	if err != nil || !strings.HasPrefix(mediaType, "multipart/") {
		body, _ := readAll(tp)
		m.Body = strings.TrimRight(body, "\r\n")
		return m, nil
	}
	body, _ := readAll(tp)
	mr := multipart.NewReader(strings.NewReader(body), params["boundary"])
	first := true
	for {
		part, err := mr.NextPart()
		if err != nil {
			break
		}
		data := readPart(part)
		if first {
			m.Body = strings.TrimRight(data, "\r\n")
			first = false
			continue
		}
		_, dparams, _ := mime.ParseMediaType(part.Header.Get("Content-Disposition"))
		m.Attachments = append(m.Attachments, Attachment{
			Filename:    dparams["filename"],
			ContentType: part.Header.Get("Content-Type"),
			Data:        []byte(data),
		})
	}
	return m, nil
}

func decodeSubject(s string) string {
	dec := new(mime.WordDecoder)
	if out, err := dec.DecodeHeader(s); err == nil {
		return out
	}
	return s
}

func readAll(tp *textproto.Reader) (string, error) {
	var b strings.Builder
	for {
		line, err := tp.ReadLine()
		if err != nil {
			return b.String(), nil
		}
		b.WriteString(line)
		b.WriteString("\r\n")
	}
}

func readPart(p *multipart.Part) string {
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := p.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String()
}

// Spool is the in-memory mail store: one mailbox per address.
type Spool struct {
	mu    sync.Mutex
	boxes map[string][]*Message
}

// NewSpool creates an empty spool.
func NewSpool() *Spool { return &Spool{boxes: map[string][]*Message{}} }

// Deliver stores a message in the recipient's mailbox.
func (s *Spool) Deliver(m *Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.boxes[strings.ToLower(m.To)] = append(s.boxes[strings.ToLower(m.To)], m)
}

// Mailbox returns the messages for an address in delivery order.
func (s *Spool) Mailbox(addr string) []*Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	box := s.boxes[strings.ToLower(addr)]
	out := make([]*Message, len(box))
	copy(out, box)
	return out
}

// Addresses lists mailboxes with at least one message.
func (s *Spool) Addresses() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for a, box := range s.boxes {
		if len(box) > 0 {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// SMTPSession drives the minimal SMTP dialect over any line-oriented
// transport: HELO, MAIL FROM, RCPT TO, DATA, QUIT. Submit runs the whole
// client dialogue against a Server and returns the transcript.
type SMTPSession struct {
	srv        *Server
	from, rcpt string
	inData     bool
	data       strings.Builder
	done       bool
}

// Server is the in-process SMTP endpoint fronting a Spool.
type Server struct {
	Spool *Spool
	// Domain names the server in greetings.
	Domain string
}

// NewServer creates an SMTP server over a new spool.
func NewServer(domain string) *Server {
	return &Server{Spool: NewSpool(), Domain: domain}
}

// Open starts a session.
func (srv *Server) Open() *SMTPSession { return &SMTPSession{srv: srv} }

// Line processes one client line and returns the server reply.
func (s *SMTPSession) Line(line string) string {
	if s.inData {
		if line == "." {
			s.inData = false
			msg, err := Parse(s.data.String())
			if err != nil {
				return "554 malformed message"
			}
			if msg.From == "" {
				msg.From = s.from
			}
			if msg.To == "" {
				msg.To = s.rcpt
			}
			s.srv.Spool.Deliver(msg)
			s.data.Reset()
			return "250 OK: queued"
		}
		// Dot-stuffing per RFC 821 §4.5.2.
		s.data.WriteString(strings.TrimPrefix(line, "."))
		s.data.WriteString("\r\n")
		return ""
	}
	verb := strings.ToUpper(line)
	switch {
	case strings.HasPrefix(verb, "HELO"), strings.HasPrefix(verb, "EHLO"):
		return "250 " + s.srv.Domain
	case strings.HasPrefix(verb, "MAIL FROM:"):
		s.from = strings.Trim(line[len("MAIL FROM:"):], " <>")
		return "250 OK"
	case strings.HasPrefix(verb, "RCPT TO:"):
		s.rcpt = strings.Trim(line[len("RCPT TO:"):], " <>")
		return "250 OK"
	case verb == "DATA":
		if s.from == "" || s.rcpt == "" {
			return "503 bad sequence"
		}
		s.inData = true
		return "354 end with ."
	case verb == "QUIT":
		s.done = true
		return "221 bye"
	default:
		return "500 unrecognized"
	}
}

// Done reports whether QUIT was processed.
func (s *SMTPSession) Done() bool { return s.done }

// Send runs the complete SMTP dialogue for one message and returns the
// transcript lines (client and server interleaved, prefixed "C: "/"S: ").
func Send(srv *Server, m *Message) ([]string, error) {
	sess := srv.Open()
	var transcript []string
	say := func(line string) string {
		reply := sess.Line(line)
		transcript = append(transcript, "C: "+line)
		if reply != "" {
			transcript = append(transcript, "S: "+reply)
		}
		return reply
	}
	if r := say("HELO client"); !strings.HasPrefix(r, "250") {
		return transcript, fmt.Errorf("mail: HELO: %s", r)
	}
	if r := say("MAIL FROM:<" + m.From + ">"); !strings.HasPrefix(r, "250") {
		return transcript, fmt.Errorf("mail: MAIL: %s", r)
	}
	if r := say("RCPT TO:<" + m.To + ">"); !strings.HasPrefix(r, "250") {
		return transcript, fmt.Errorf("mail: RCPT: %s", r)
	}
	if r := say("DATA"); !strings.HasPrefix(r, "354") {
		return transcript, fmt.Errorf("mail: DATA: %s", r)
	}
	for _, line := range strings.Split(Render(m), "\r\n") {
		if strings.HasPrefix(line, ".") {
			line = "." + line
		}
		say(line)
	}
	if r := say("."); !strings.HasPrefix(r, "250") {
		return transcript, fmt.Errorf("mail: end-of-data: %s", r)
	}
	say("QUIT")
	return transcript, nil
}

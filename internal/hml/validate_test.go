package hml

import (
	"strings"
	"testing"
	"time"
)

func validDoc() *Document {
	return MustParse(Figure2Source)
}

func TestValidateAcceptsCorpus(t *testing.T) {
	for name, src := range GrammarCorpus() {
		d := MustParse(src)
		// The tiny corpus entries without SOURCE on links etc. are still
		// valid; only check the ones with media.
		if err := Validate(d); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestValidateMissingTitle(t *testing.T) {
	d := validDoc()
	d.Title = "   "
	err := Validate(d)
	if err == nil || !strings.Contains(err.Error(), "title") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateDuplicateIDs(t *testing.T) {
	d := MustParse(`<TITLE>t</TITLE>
<IMG SOURCE=a ID=x STARTIME=0 DURATION=1> </IMG>
<IMG SOURCE=b ID=x STARTIME=1 DURATION=1> </IMG>`)
	err := Validate(d)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateMissingID(t *testing.T) {
	d := MustParse(`<TITLE>t</TITLE><IMG SOURCE=a STARTIME=0> </IMG>`)
	err := Validate(d)
	if err == nil || !strings.Contains(err.Error(), "missing ID") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateMissingSource(t *testing.T) {
	d := MustParse(`<TITLE>t</TITLE><AU ID=a STARTIME=0 DURATION=5> </AU>`)
	err := Validate(d)
	if err == nil || !strings.Contains(err.Error(), "SOURCE") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateStreamNeedsDuration(t *testing.T) {
	d := MustParse(`<TITLE>t</TITLE><VI SOURCE=v ID=v STARTIME=0> </VI>`)
	err := Validate(d)
	if err == nil || !strings.Contains(err.Error(), "DURATION") {
		t.Fatalf("err = %v", err)
	}
	// An image with no duration (open-ended still) is fine.
	d2 := MustParse(`<TITLE>t</TITLE><IMG SOURCE=i ID=i STARTIME=0> </IMG>`)
	if err := Validate(d2); err != nil {
		t.Fatalf("open-ended image rejected: %v", err)
	}
}

func TestValidateAuViMismatchedTiming(t *testing.T) {
	d := validDoc()
	for _, it := range d.Items() {
		if av, ok := it.(*AudioVideo); ok {
			av.Video.Duration += time.Second
		}
	}
	err := Validate(d)
	if err == nil || !strings.Contains(err.Error(), "different durations") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateNegativeTimes(t *testing.T) {
	d := validDoc()
	for _, it := range d.Items() {
		if img, ok := it.(*Image); ok {
			img.Start = -time.Second
			break
		}
	}
	err := Validate(d)
	if err == nil || !strings.Contains(err.Error(), "negative STARTIME") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateLinkTarget(t *testing.T) {
	d := validDoc()
	d.Links()[0].Target = ""
	err := Validate(d)
	if err == nil || !strings.Contains(err.Error(), "hyperlink") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateAggregatesMultipleProblems(t *testing.T) {
	d := MustParse(`<TITLE>t</TITLE>
<IMG ID=x STARTIME=0> </IMG>
<IMG ID=x STARTIME=0> </IMG>`)
	err := Validate(d)
	ve, ok := err.(*ValidationError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if len(ve.Problems) < 3 { // two missing sources + one duplicate id
		t.Fatalf("problems = %v", ve.Problems)
	}
}

func TestStatisticsCounts(t *testing.T) {
	st := Statistics(Figure2())
	// The <SEP> closes the first sentence, so the trailing links form a
	// second one.
	want := Stats{
		Sentences: 2, Headings: 1, Texts: 1,
		Images: 2, Audios: 1, Videos: 0, SyncGroups: 1,
		Links: 2, TimedLinks: 1,
		Chars: st.Chars, // free-form
	}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
	if st.Chars == 0 {
		t.Fatal("no text chars counted")
	}
}

func TestDocumentLengthOpenEnded(t *testing.T) {
	d := MustParse(`<TITLE>t</TITLE>
<IMG SOURCE=i ID=i STARTIME=5> </IMG>
<AU SOURCE=a ID=a STARTIME=0 DURATION=3> </AU>`)
	// Open-ended image contributes its start time only; audio ends at 3s;
	// so length is 5s (image appears at 5 and stays).
	if got := d.Length(); got != 5*time.Second {
		t.Fatalf("Length = %v, want 5s", got)
	}
}

func TestMediaEnd(t *testing.T) {
	m := Media{Start: 2 * time.Second, Duration: 3 * time.Second}
	if m.End() != 5*time.Second {
		t.Fatalf("End = %v", m.End())
	}
}

func TestValidateAfterReferences(t *testing.T) {
	// Forward reference is fine.
	d := MustParse(`<TITLE>t</TITLE>
<IMG SOURCE=a ID=x AFTER=y DURATION=1> </IMG>
<IMG SOURCE=b ID=y STARTIME=0 DURATION=1> </IMG>`)
	if err := Validate(d); err != nil {
		t.Fatalf("forward AFTER rejected: %v", err)
	}
	// Unknown target.
	d2 := MustParse(`<TITLE>t</TITLE><IMG SOURCE=a ID=x AFTER=ghost> </IMG>`)
	if err := Validate(d2); err == nil || !strings.Contains(err.Error(), "unknown media") {
		t.Fatalf("err = %v", err)
	}
	// Self reference.
	d3 := MustParse(`<TITLE>t</TITLE><IMG SOURCE=a ID=x AFTER=x> </IMG>`)
	if err := Validate(d3); err == nil || !strings.Contains(err.Error(), "itself") {
		t.Fatalf("err = %v", err)
	}
}

func TestAfterSurvivesSerialization(t *testing.T) {
	d := MustParse(GrammarCorpus()["after-chain"])
	d2 := MustParse(Serialize(d))
	var found bool
	for _, it := range d2.Items() {
		if img, ok := it.(*Image); ok && img.ID == "rb" {
			found = true
			if img.After != "ra" {
				t.Fatalf("AFTER lost: %+v", img.Media)
			}
		}
	}
	if !found {
		t.Fatal("rb missing after round trip")
	}
}

package hml

import (
	"fmt"
	"time"
)

// Figure2Source is the exact multimedia scenario of Figure 2 of the paper,
// expressed in the markup language: a formatted text shown throughout, image
// I1 at presentation start, image I2 at t_i2, an audio segment A1
// synchronized with video V (same start, same duration d_v), and audio A2 at
// t_a2.
const Figure2Source = `<TITLE>Figure 2 scenario</TITLE>
<H1>A pre-orchestrated multimedia presentation</H1>
<PAR>
<TEXT>This formatted text is always shown throughout the presentation.
<B>Media appear and disappear around it</B> according to the
<I>playout scenario</I>.</TEXT>
<IMG SOURCE=img/I1 ID=I1 STARTIME=0 DURATION=8 WIDTH=320 HEIGHT=240 NOTE="image I1"> </IMG>
<IMG SOURCE=img/I2 ID=I2 STARTIME=8 DURATION=10 WIDTH=320 HEIGHT=240 NOTE="image I2"> </IMG>
<AU_VI SOURCE=au/A1 SOURCE=vi/V ID=A1 ID=V STARTIME=10 STARTIME=10 DURATION=12 DURATION=12 NOTE="lip-synced narration"> </AU_VI>
<AU SOURCE=au/A2 ID=A2 STARTIME=24 DURATION=6 NOTE="audio A2"> </AU>
<SEP>
<HLINK HREF=next-lesson.hml AT=32 KIND=SEQ NOTE="continue to the next unit"> </HLINK>
<HLINK HREF=background.hml NOTE="related background reading"> </HLINK>
`

// Figure2Times collects the symbolic time constants of Figure 2 so tests and
// experiments can assert against the same values the document encodes.
var Figure2Times = struct {
	I1Start, I1Dur time.Duration
	I2Start, I2Dur time.Duration
	AVStart, AVDur time.Duration
	A2Start, A2Dur time.Duration
	LinkAt         time.Duration
}{
	I1Start: 0, I1Dur: 8 * time.Second,
	I2Start: 8 * time.Second, I2Dur: 10 * time.Second,
	AVStart: 10 * time.Second, AVDur: 12 * time.Second,
	A2Start: 24 * time.Second, A2Dur: 6 * time.Second,
	LinkAt: 32 * time.Second,
}

// Figure2 parses Figure2Source; it panics on error (the source is a fixture).
func Figure2() *Document {
	d := MustParse(Figure2Source)
	d.Name = "figure2.hml"
	return d
}

// LessonSource builds a synthetic distance-education lesson with n "slides":
// each slide shows an image, plays a synchronized audio+video segment over
// it, and the last slide carries a timed sequential link to the next lesson.
// Used by workload generators and benchmarks.
func LessonSource(name string, n int, slide time.Duration) string {
	src := fmt.Sprintf("<TITLE>Lesson %s</TITLE>\n<H1>%s</H1>\n", name, name)
	src += "<PAR>\n<TEXT>Lesson overview: <B>pre-orchestrated</B> slides with narration.</TEXT>\n"
	for i := 0; i < n; i++ {
		at := time.Duration(i) * slide
		src += fmt.Sprintf("<H2>Slide %d</H2>\n", i+1)
		src += fmt.Sprintf("<IMG SOURCE=img/%s-slide%d ID=%s-img%d STARTIME=%s DURATION=%s WIDTH=640 HEIGHT=480> </IMG>\n",
			name, i+1, name, i+1, FormatTime(at), FormatTime(slide))
		src += fmt.Sprintf("<AU_VI SOURCE=au/%s-nar%d SOURCE=vi/%s-clip%d ID=%s-au%d ID=%s-vi%d STARTIME=%s DURATION=%s> </AU_VI>\n",
			name, i+1, name, i+1, name, i+1, name, i+1, FormatTime(at), FormatTime(slide-time.Second))
	}
	total := time.Duration(n) * slide
	src += fmt.Sprintf("<SEP>\n<HLINK HREF=%s-next.hml AT=%s KIND=SEQ> </HLINK>\n", name, FormatTime(total))
	src += fmt.Sprintf("<HLINK HREF=%s-extra.hml NOTE=\"optional deep dive\"> </HLINK>\n", name)
	return src
}

// GrammarCorpus returns a set of documents that together exercise every
// production of the Figure 1 grammar; used by the F1 experiment and the
// parser tests.
func GrammarCorpus() map[string]string {
	return map[string]string{
		"minimal": `<TITLE>t</TITLE>` + "\n" + `<TEXT>x</TEXT>`,
		"headings": `<TITLE>Headings</TITLE>
<H1>one</H1><TEXT>a</TEXT>
<H2>two</H2><TEXT>b</TEXT>
<H3>three</H3><TEXT>c</TEXT>`,
		"styles": `<TITLE>Styles</TITLE>
<TEXT>plain <B>bold</B> <I>italic</I> <U>under</U> <B><I>both</I></B> tail</TEXT>`,
		"paragraphs": `<TITLE>Paragraphs</TITLE>
<PAR><TEXT>first</TEXT><SEP>
<PAR><TEXT>second</TEXT>`,
		"image": `<TITLE>Image</TITLE>
<IMG SOURCE=img/x ID=x STARTIME=0 DURATION=5 WIDTH=100 HEIGHT=50 WHERE="10,20" NOTE="an image"> </IMG>`,
		"audio": `<TITLE>Audio</TITLE>
<AU SOURCE=au/x ID=ax STARTIME=2.5 DURATION=7> </AU>`,
		"video": `<TITLE>Video</TITLE>
<VI SOURCE=vi/x ID=vx STARTIME=1 DURATION=30> </VI>`,
		"auvi": `<TITLE>AV</TITLE>
<AU_VI SOURCE=au/a SOURCE=vi/v ID=a ID=v STARTIME=3 STARTIME=3 DURATION=9 DURATION=9> </AU_VI>`,
		"auvi-single": `<TITLE>AV single timing</TITLE>
<AU_VI SOURCE=au/a SOURCE=vi/v ID=a2 ID=v2 STARTIME=4 DURATION=8> </AU_VI>`,
		"links": `<TITLE>Links</TITLE>
<TEXT>see also</TEXT>
<HLINK HREF=other.hml NOTE="explore"> </HLINK>
<HLINK HREF=seq.hml KIND=SEQ> </HLINK>
<HLINK HREF=timed.hml AT=15> </HLINK>
<HLINK HREF=remote.hml HOST=server-b> </HLINK>`,
		"links-bareword": `<TITLE>Bare links</TITLE>
<HLINK> AT 30 next.hml </HLINK>
<HLINK> other.hml server-b </HLINK>`,
		"attrs-in-body": `<TITLE>Body attrs</TITLE>
<IMG> SOURCE=img/y ID=y STARTIME=0 DURATION=3 </IMG>`,
		"after-chain": `<TITLE>Relative timing</TITLE>
<IMG SOURCE=img/a ID=ra STARTIME=0 DURATION=4> </IMG>
<IMG SOURCE=img/b ID=rb AFTER=ra DURATION=4> </IMG>
<AU SOURCE=au/c ID=rc AFTER=rb STARTIME=1 DURATION=5> </AU>`,
		"figure2": Figure2Source,
	}
}

package hml

import (
	"strconv"
	"strings"
)

// Parser builds a Document AST from HML source following the Figure 1 BNF:
//
//	<Hdocument>  ::= TITLE STRING END_TITLE <HSentence>
//	<HSentence>  ::= empty | <Headings> <Main> <Separator> <HSentence>
//	<Main>       ::= <Par> <Body>
//	<Body>       ::= empty | (<Document>|<Image>|<Audio>|<Video>|
//	                          <Audio_Video>|<HyperLink>) <Body>
type Parser struct {
	lex  *Lexer
	tok  Token
	peek *Token
}

// Parse parses a complete HML document.
func Parse(src string) (*Document, error) {
	p := &Parser{lex: NewLexer(src)}
	p.next()
	doc, err := p.parseDocument()
	if err != nil {
		return nil, err
	}
	if lerr := p.lex.Err(); lerr != nil {
		return nil, lerr
	}
	return doc, nil
}

// MustParse parses src and panics on error; for tests and fixtures.
func MustParse(src string) *Document {
	d, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return d
}

func (p *Parser) next() {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return
	}
	p.tok = p.lex.Next()
}

func (p *Parser) expect(kind TokenKind, what string) (Token, error) {
	if p.tok.Kind != kind {
		return Token{}, errAt(p.tok.Pos, "expected %s, found %s", what, p.tok)
	}
	t := p.tok
	p.next()
	return t, nil
}

func (p *Parser) expectOpen(kw Keyword) error {
	if p.tok.Kind != TokOpen || p.tok.Lit != string(kw) {
		return errAt(p.tok.Pos, "expected <%s>, found %s", kw, p.tok)
	}
	p.next()
	if _, err := p.expect(TokGT, "'>'"); err != nil {
		return err
	}
	return nil
}

func (p *Parser) parseDocument() (*Document, error) {
	doc := &Document{}
	if err := p.expectOpen(KwTitle); err != nil {
		return nil, err
	}
	title, err := p.parseRawText(KwTitle)
	if err != nil {
		return nil, err
	}
	doc.Title = strings.TrimSpace(title)
	for p.tok.Kind != TokEOF {
		s, err := p.parseSentence()
		if err != nil {
			return nil, err
		}
		doc.Sentences = append(doc.Sentences, s)
	}
	return doc, nil
}

// parseRawText consumes character data (ignoring inline style tags) until
// the closing tag of kw, returning the flattened text.
func (p *Parser) parseRawText(kw Keyword) (string, error) {
	var b strings.Builder
	for {
		switch p.tok.Kind {
		case TokCharData:
			b.WriteString(p.tok.Lit)
			p.next()
		case TokClose:
			if p.tok.Lit == string(kw) {
				p.next()
				return b.String(), nil
			}
			return "", errAt(p.tok.Pos, "unexpected </%s> inside <%s>", p.tok.Lit, kw)
		case TokEOF:
			return "", errAt(p.tok.Pos, "unterminated <%s>", kw)
		default:
			return "", errAt(p.tok.Pos, "unexpected %s inside <%s>", p.tok, kw)
		}
	}
}

func (p *Parser) parseSentence() (*Sentence, error) {
	s := &Sentence{}
	// <Headings>
	if p.tok.Kind == TokOpen {
		switch Keyword(p.tok.Lit) {
		case KwH1, KwH2, KwH3:
			level := int(p.tok.Lit[1] - '0')
			kw := Keyword(p.tok.Lit)
			p.next()
			if _, err := p.expect(TokGT, "'>'"); err != nil {
				return nil, err
			}
			text, err := p.parseRawText(kw)
			if err != nil {
				return nil, err
			}
			s.Heading = &Heading{Level: level, Text: strings.TrimSpace(text)}
		}
	}
	// <Par>
	if p.tok.Kind == TokOpen && Keyword(p.tok.Lit) == KwPar {
		p.next()
		if _, err := p.expect(TokGT, "'>'"); err != nil {
			return nil, err
		}
		s.Par = true
	}
	// <Body>
	for p.tok.Kind == TokOpen {
		kw := Keyword(p.tok.Lit)
		var it Item
		var err error
		switch kw {
		case KwText:
			it, err = p.parseText()
		case KwImg:
			it, err = p.parseImage()
		case KwAu:
			it, err = p.parseAudio()
		case KwVi:
			it, err = p.parseVideo()
		case KwAuVi:
			it, err = p.parseAudioVideo()
		case KwHLink:
			it, err = p.parseLink()
		default:
			// Heading, PAR or SEP starts the next sentence part.
			err = nil
			it = nil
		}
		if err != nil {
			return nil, err
		}
		if it == nil {
			break
		}
		s.Items = append(s.Items, it)
	}
	// <Separator>
	if p.tok.Kind == TokOpen && Keyword(p.tok.Lit) == KwSep {
		p.next()
		if _, err := p.expect(TokGT, "'>'"); err != nil {
			return nil, err
		}
		s.Separator = true
	}
	if s.Heading == nil && !s.Par && len(s.Items) == 0 && !s.Separator {
		return nil, errAt(p.tok.Pos, "expected sentence content, found %s", p.tok)
	}
	return s, nil
}

func (p *Parser) parseText() (*Text, error) {
	if err := p.expectOpen(KwText); err != nil {
		return nil, err
	}
	t := &Text{}
	if err := p.parseSpans(t, 0, KwText); err != nil {
		return nil, err
	}
	return t, nil
}

// parseSpans collects styled spans until the closing tag of kw.
func (p *Parser) parseSpans(t *Text, style Style, kw Keyword) error {
	for {
		switch p.tok.Kind {
		case TokCharData:
			t.Spans = append(t.Spans, Span{Style: style, Text: p.tok.Lit})
			p.next()
		case TokOpen:
			inner := Keyword(p.tok.Lit)
			var bit Style
			switch inner {
			case KwBold:
				bit = StyleBold
			case KwItalic:
				bit = StyleItalic
			case KwUnder:
				bit = StyleUnderline
			default:
				return errAt(p.tok.Pos, "tag <%s> not allowed inside <%s>", inner, kw)
			}
			p.next()
			if _, err := p.expect(TokGT, "'>'"); err != nil {
				return err
			}
			if err := p.parseSpans(t, style|bit, inner); err != nil {
				return err
			}
		case TokClose:
			if p.tok.Lit != string(kw) {
				return errAt(p.tok.Pos, "expected </%s>, found </%s>", kw, p.tok.Lit)
			}
			p.next()
			return nil
		case TokEOF:
			return errAt(p.tok.Pos, "unterminated <%s>", kw)
		default:
			return errAt(p.tok.Pos, "unexpected %s inside <%s>", p.tok, kw)
		}
	}
}

// attrSet accumulates the attribute list of a media or link tag.
type attrSet struct {
	kw     Keyword
	attrs  []attr
	words  []string
	atWord string // value following a bare AT word (HLINK form)
}

type attr struct {
	key Keyword
	val string
	pos Pos
}

// parseAttrs reads attribute/value pairs and bare words until </kw>.
// The language permits attributes both inside the open tag
// (<IMG SOURCE=x>) and in the body (<IMG> SOURCE=x </IMG>); the lexer
// flattens the two forms into the same token sequence.
func (p *Parser) parseAttrs(kw Keyword) (*attrSet, error) {
	as := &attrSet{kw: kw}
	if p.tok.Kind != TokOpen || p.tok.Lit != string(kw) {
		return nil, errAt(p.tok.Pos, "expected <%s>, found %s", kw, p.tok)
	}
	p.next()
	sawGT := false
	for {
		switch p.tok.Kind {
		case TokGT:
			sawGT = true
			p.next()
		case TokAttr:
			key := Keyword(p.tok.Lit)
			pos := p.tok.Pos
			p.next()
			v, err := p.expect(TokValue, "attribute value")
			if err != nil {
				return nil, err
			}
			as.attrs = append(as.attrs, attr{key: key, val: v.Lit, pos: pos})
		case TokWord:
			if strings.EqualFold(p.tok.Lit, string(KwAt)) {
				p.next()
				if p.tok.Kind != TokWord && p.tok.Kind != TokValue {
					return nil, errAt(p.tok.Pos, "AT requires a time value")
				}
				as.atWord = p.tok.Lit
				p.next()
				continue
			}
			as.words = append(as.words, p.tok.Lit)
			p.next()
		case TokValue:
			as.words = append(as.words, p.tok.Lit)
			p.next()
		case TokClose:
			if p.tok.Lit != string(kw) {
				return nil, errAt(p.tok.Pos, "expected </%s>, found </%s>", kw, p.tok.Lit)
			}
			if !sawGT {
				return nil, errAt(p.tok.Pos, "malformed <%s> tag", kw)
			}
			p.next()
			return as, nil
		case TokEOF:
			return nil, errAt(p.tok.Pos, "unterminated <%s>", kw)
		default:
			return nil, errAt(p.tok.Pos, "unexpected %s inside <%s>", p.tok, kw)
		}
	}
}

// get returns the i-th occurrence (0-based) of key.
func (as *attrSet) get(key Keyword, i int) (string, bool) {
	n := 0
	for _, a := range as.attrs {
		if a.key == key {
			if n == i {
				return a.val, true
			}
			n++
		}
	}
	return "", false
}

func (as *attrSet) count(key Keyword) int {
	n := 0
	for _, a := range as.attrs {
		if a.key == key {
			n++
		}
	}
	return n
}

// fillMedia populates a Media from the idx-th SOURCE/ID/STARTIME occurrence
// (AU_VI repeats those keywords for its two halves).
func (as *attrSet) fillMedia(m *Media, idx int) error {
	if v, ok := as.get(KwSource, idx); ok {
		m.Source = v
	}
	if v, ok := as.get(KwID, idx); ok {
		m.ID = v
	}
	if v, ok := as.get(KwStartime, idx); ok {
		d, err := ParseTime(v)
		if err != nil {
			return err
		}
		m.Start = d
	}
	if v, ok := as.get(KwDuration, idx); ok {
		d, err := ParseTime(v)
		if err != nil {
			return err
		}
		m.Duration = d
	}
	if v, ok := as.get(KwAfter, 0); ok {
		m.After = v
	}
	if v, ok := as.get(KwNote, 0); ok {
		m.Note = v
	}
	if v, ok := as.get(KwWhere, 0); ok {
		m.Where = v
	}
	if v, ok := as.get(KwWidth, 0); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return errAt(Pos{}, "bad WIDTH %q", v)
		}
		m.Width = n
	}
	if v, ok := as.get(KwHeight, 0); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return errAt(Pos{}, "bad HEIGHT %q", v)
		}
		m.Height = n
	}
	return nil
}

func (p *Parser) parseImage() (*Image, error) {
	as, err := p.parseAttrs(KwImg)
	if err != nil {
		return nil, err
	}
	img := &Image{}
	if err := as.fillMedia(&img.Media, 0); err != nil {
		return nil, err
	}
	return img, nil
}

func (p *Parser) parseAudio() (*Audio, error) {
	as, err := p.parseAttrs(KwAu)
	if err != nil {
		return nil, err
	}
	au := &Audio{}
	if err := as.fillMedia(&au.Media, 0); err != nil {
		return nil, err
	}
	return au, nil
}

func (p *Parser) parseVideo() (*Video, error) {
	as, err := p.parseAttrs(KwVi)
	if err != nil {
		return nil, err
	}
	vi := &Video{}
	if err := as.fillMedia(&vi.Media, 0); err != nil {
		return nil, err
	}
	return vi, nil
}

// parseAudioVideo handles the synchronized group. The grammar gives it two
// SOURCEs, two IDs and two STARTIMEs (audio first, then video); a single
// occurrence applies to both halves.
func (p *Parser) parseAudioVideo() (*AudioVideo, error) {
	as, err := p.parseAttrs(KwAuVi)
	if err != nil {
		return nil, err
	}
	av := &AudioVideo{}
	if err := as.fillMedia(&av.Audio, 0); err != nil {
		return nil, err
	}
	vidIdx := 0
	if as.count(KwSource) > 1 || as.count(KwID) > 1 || as.count(KwStartime) > 1 {
		vidIdx = 1
	}
	if err := as.fillMedia(&av.Video, vidIdx); err != nil {
		return nil, err
	}
	if as.count(KwDuration) > 1 {
		if v, ok := as.get(KwDuration, 1); ok {
			d, err := ParseTime(v)
			if err != nil {
				return nil, err
			}
			av.Video.Duration = d
		}
	}
	// The two media "should start and stop playing at the same time": a
	// missing half inherits the other's timing.
	if as.count(KwStartime) == 1 {
		av.Video.Start = av.Audio.Start
	}
	if as.count(KwDuration) == 1 {
		av.Video.Duration = av.Audio.Duration
	}
	return av, nil
}

func (p *Parser) parseLink() (*Link, error) {
	as, err := p.parseAttrs(KwHLink)
	if err != nil {
		return nil, err
	}
	l := &Link{}
	if v, ok := as.get(KwHref, 0); ok {
		l.Target = v
	}
	if v, ok := as.get(KwHost, 0); ok {
		l.Host = v
	}
	if v, ok := as.get(KwNote, 0); ok {
		l.Note = v
	}
	if v, ok := as.get(KwKind, 0); ok {
		switch strings.ToUpper(v) {
		case "SEQ", "SEQUENTIAL":
			l.Kind = Sequential
		case "EXP", "EXPLORATIONAL":
			l.Kind = Explorational
		default:
			return nil, errAt(Pos{}, "bad KIND %q (want SEQ or EXP)", v)
		}
	}
	if v, ok := as.get(KwAt, 0); ok {
		d, err := ParseTime(v)
		if err != nil {
			return nil, err
		}
		l.At, l.HasAt = d, true
	}
	if as.atWord != "" {
		d, err := ParseTime(as.atWord)
		if err != nil {
			return nil, err
		}
		l.At, l.HasAt = d, true
	}
	// Bare-word form: "<HLINK> AT 30 lesson2.hml </HLINK>" — the first
	// remaining word is the target.
	if l.Target == "" && len(as.words) > 0 {
		l.Target = as.words[0]
		if len(as.words) > 1 && l.Host == "" {
			// "<HLINK> doc host </HLINK>" — second word names the host.
			l.Host = as.words[1]
		}
	}
	if l.Target == "" {
		return nil, errAt(Pos{}, "HLINK requires a target document")
	}
	// A timed link preserves the author's sequence by construction.
	if l.HasAt {
		l.Kind = Sequential
	}
	return l, nil
}

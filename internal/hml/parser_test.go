package hml

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestParseTitleOnlyFails(t *testing.T) {
	// A document is a title plus at least zero sentences; title alone is
	// legal per the grammar (<HSentence> ::= empty).
	d, err := Parse(`<TITLE>only</TITLE>`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Title != "only" || len(d.Sentences) != 0 {
		t.Fatalf("doc = %+v", d)
	}
}

func TestParseMissingTitle(t *testing.T) {
	if _, err := Parse(`<TEXT>x</TEXT>`); err == nil {
		t.Fatal("expected error for missing title")
	}
}

func TestParseHeadingLevels(t *testing.T) {
	d := MustParse(GrammarCorpus()["headings"])
	if len(d.Sentences) != 3 {
		t.Fatalf("sentences = %d, want 3", len(d.Sentences))
	}
	for i, s := range d.Sentences {
		if s.Heading == nil || s.Heading.Level != i+1 {
			t.Fatalf("sentence %d heading = %+v", i, s.Heading)
		}
	}
}

func TestParseStyledText(t *testing.T) {
	d := MustParse(GrammarCorpus()["styles"])
	txt := d.Sentences[0].Items[0].(*Text)
	var styles []Style
	for _, sp := range txt.Spans {
		styles = append(styles, sp.Style)
	}
	want := []Style{0, StyleBold, 0, StyleItalic, 0, StyleUnderline, 0, StyleBold | StyleItalic, 0}
	if !reflect.DeepEqual(styles, want) {
		t.Fatalf("styles = %v, want %v", styles, want)
	}
	if !strings.Contains(txt.Plain(), "plain bold italic under both tail") {
		t.Fatalf("plain = %q", txt.Plain())
	}
}

func TestParseImageAttributes(t *testing.T) {
	d := MustParse(GrammarCorpus()["image"])
	img := d.Sentences[0].Items[0].(*Image)
	if img.Source != "img/x" || img.ID != "x" {
		t.Fatalf("source/id = %q/%q", img.Source, img.ID)
	}
	if img.Start != 0 || img.Duration != 5*time.Second {
		t.Fatalf("timing = %v/%v", img.Start, img.Duration)
	}
	if img.Width != 100 || img.Height != 50 {
		t.Fatalf("dims = %dx%d", img.Width, img.Height)
	}
	if img.Where != "10,20" || img.Note != "an image" {
		t.Fatalf("where/note = %q/%q", img.Where, img.Note)
	}
}

func TestParseFractionalSeconds(t *testing.T) {
	d := MustParse(GrammarCorpus()["audio"])
	au := d.Sentences[0].Items[0].(*Audio)
	if au.Start != 2500*time.Millisecond {
		t.Fatalf("start = %v, want 2.5s", au.Start)
	}
}

func TestParseGoDurationSyntax(t *testing.T) {
	d := MustParse(`<TITLE>t</TITLE><VI SOURCE=v ID=v STARTIME=1m30s DURATION=250ms> </VI>`)
	vi := d.Sentences[0].Items[0].(*Video)
	if vi.Start != 90*time.Second || vi.Duration != 250*time.Millisecond {
		t.Fatalf("timing = %v/%v", vi.Start, vi.Duration)
	}
}

func TestParseAudioVideoTwoTimings(t *testing.T) {
	d := MustParse(GrammarCorpus()["auvi"])
	av := d.Sentences[0].Items[0].(*AudioVideo)
	if av.Audio.Source != "au/a" || av.Video.Source != "vi/v" {
		t.Fatalf("sources = %q/%q", av.Audio.Source, av.Video.Source)
	}
	if av.Audio.ID != "a" || av.Video.ID != "v" {
		t.Fatalf("ids = %q/%q", av.Audio.ID, av.Video.ID)
	}
	if av.Audio.Start != 3*time.Second || av.Video.Start != 3*time.Second {
		t.Fatalf("starts = %v/%v", av.Audio.Start, av.Video.Start)
	}
	if av.Audio.Duration != 9*time.Second || av.Video.Duration != 9*time.Second {
		t.Fatalf("durations = %v/%v", av.Audio.Duration, av.Video.Duration)
	}
}

func TestParseAudioVideoSingleTimingInherited(t *testing.T) {
	d := MustParse(GrammarCorpus()["auvi-single"])
	av := d.Sentences[0].Items[0].(*AudioVideo)
	if av.Video.Start != av.Audio.Start || av.Video.Duration != av.Audio.Duration {
		t.Fatalf("video did not inherit timing: %+v", av)
	}
	if av.Audio.Start != 4*time.Second || av.Audio.Duration != 8*time.Second {
		t.Fatalf("audio timing = %v/%v", av.Audio.Start, av.Audio.Duration)
	}
}

func TestParseLinksAllForms(t *testing.T) {
	d := MustParse(GrammarCorpus()["links"])
	links := d.Links()
	if len(links) != 4 {
		t.Fatalf("links = %d, want 4", len(links))
	}
	if links[0].Target != "other.hml" || links[0].Kind != Explorational || links[0].Note != "explore" {
		t.Fatalf("link0 = %+v", links[0])
	}
	if links[1].Kind != Sequential {
		t.Fatalf("link1 kind = %v", links[1].Kind)
	}
	if !links[2].HasAt || links[2].At != 15*time.Second {
		t.Fatalf("link2 = %+v", links[2])
	}
	if links[2].Kind != Sequential {
		t.Fatal("timed links must be sequential")
	}
	if links[3].Host != "server-b" {
		t.Fatalf("link3 host = %q", links[3].Host)
	}
}

func TestParseBareWordLinkForm(t *testing.T) {
	d := MustParse(GrammarCorpus()["links-bareword"])
	links := d.Links()
	if len(links) != 2 {
		t.Fatalf("links = %d", len(links))
	}
	if !links[0].HasAt || links[0].At != 30*time.Second || links[0].Target != "next.hml" {
		t.Fatalf("bare AT link = %+v", links[0])
	}
	if links[1].Target != "other.hml" || links[1].Host != "server-b" {
		t.Fatalf("bare host link = %+v", links[1])
	}
}

func TestParseLinkWithoutTargetFails(t *testing.T) {
	if _, err := Parse(`<TITLE>t</TITLE><HLINK NOTE=x> </HLINK>`); err == nil {
		t.Fatal("expected error for targetless HLINK")
	}
}

func TestParseBadKind(t *testing.T) {
	if _, err := Parse(`<TITLE>t</TITLE><HLINK HREF=x KIND=WRONG> </HLINK>`); err == nil {
		t.Fatal("expected error for bad KIND")
	}
}

func TestParseBadTime(t *testing.T) {
	if _, err := Parse(`<TITLE>t</TITLE><AU SOURCE=a ID=a STARTIME=xyz> </AU>`); err == nil {
		t.Fatal("expected error for bad STARTIME")
	}
}

func TestParseBadDimensions(t *testing.T) {
	if _, err := Parse(`<TITLE>t</TITLE><IMG SOURCE=a ID=a WIDTH=abc> </IMG>`); err == nil {
		t.Fatal("expected error for bad WIDTH")
	}
}

func TestParseFigure2Scenario(t *testing.T) {
	d := Figure2()
	if err := Validate(d); err != nil {
		t.Fatalf("figure 2 document invalid: %v", err)
	}
	ft := Figure2Times
	var i1, i2 *Image
	var av *AudioVideo
	var a2 *Audio
	for _, it := range d.Items() {
		switch v := it.(type) {
		case *Image:
			if v.ID == "I1" {
				i1 = v
			} else if v.ID == "I2" {
				i2 = v
			}
		case *AudioVideo:
			av = v
		case *Audio:
			a2 = v
		}
	}
	if i1 == nil || i1.Start != ft.I1Start || i1.Duration != ft.I1Dur {
		t.Fatalf("I1 = %+v", i1)
	}
	if i2 == nil || i2.Start != ft.I2Start || i2.Duration != ft.I2Dur {
		t.Fatalf("I2 = %+v", i2)
	}
	if av == nil || av.Audio.Start != ft.AVStart || av.Video.Duration != ft.AVDur {
		t.Fatalf("AV = %+v", av)
	}
	if a2 == nil || a2.Start != ft.A2Start || a2.Duration != ft.A2Dur {
		t.Fatalf("A2 = %+v", a2)
	}
	tl := d.TimedLinks()
	if len(tl) != 1 || tl[0].At != ft.LinkAt {
		t.Fatalf("timed links = %+v", tl)
	}
	if d.Length() != ft.LinkAt {
		t.Fatalf("Length = %v, want %v", d.Length(), ft.LinkAt)
	}
}

func TestParseWholeGrammarCorpus(t *testing.T) {
	for name, src := range GrammarCorpus() {
		if _, err := Parse(src); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestParseLessonGenerator(t *testing.T) {
	src := LessonSource("algo", 5, 30*time.Second)
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(d); err != nil {
		t.Fatal(err)
	}
	st := Statistics(d)
	if st.Images != 5 || st.SyncGroups != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if d.Length() != 150*time.Second {
		t.Fatalf("length = %v", d.Length())
	}
}

func TestParseErrorsPropagate(t *testing.T) {
	bad := []string{
		`<TITLE>t</TITLE><TEXT>a<IMG></IMG></TEXT>`, // media inside text
		`<TITLE>t</TITLE><IMG> </AU>`,               // mismatched close
		`<TITLE>t`,                                  // unterminated title
		`<TITLE>t</TITLE><H1>h</H1>`,                // heading with no body is fine...
	}
	for i, src := range bad[:3] {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: no error for %q", i, src)
		}
	}
	// Heading-only sentence is legal (empty body).
	if _, err := Parse(bad[3]); err != nil {
		t.Errorf("heading-only: %v", err)
	}
}

func TestMustParsePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse(`<BROKEN`)
}

func TestParseTimeFormats(t *testing.T) {
	cases := map[string]time.Duration{
		"0":     0,
		"30":    30 * time.Second,
		"2.5":   2500 * time.Millisecond,
		"1m30s": 90 * time.Second,
		"250ms": 250 * time.Millisecond,
		" 5 ":   5 * time.Second,
	}
	for in, want := range cases {
		got, err := ParseTime(in)
		if err != nil {
			t.Errorf("ParseTime(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseTime(%q) = %v, want %v", in, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "12x"} {
		if _, err := ParseTime(bad); err == nil {
			t.Errorf("ParseTime(%q): no error", bad)
		}
	}
}

func TestFormatTimeTrimsZeros(t *testing.T) {
	cases := map[time.Duration]string{
		0:                       "0",
		time.Second:             "1",
		2500 * time.Millisecond: "2.5",
		90 * time.Second:        "90",
		250 * time.Millisecond:  "0.25",
	}
	for in, want := range cases {
		if got := FormatTime(in); got != want {
			t.Errorf("FormatTime(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatParseTimeRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{0, time.Millisecond, 123 * time.Millisecond, time.Second, 12345 * time.Millisecond, time.Hour} {
		got, err := ParseTime(FormatTime(d))
		if err != nil {
			t.Fatalf("round-trip %v: %v", d, err)
		}
		if got != d {
			t.Errorf("round-trip %v → %q → %v", d, FormatTime(d), got)
		}
	}
}

// Property: the parser never panics, whatever bytes arrive; it returns a
// document or an error.
func TestQuickParserTotality(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatalf("parser panicked on %q", raw)
			}
		}()
		_, _ = Parse(string(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: tag-soup built from the language's own tokens never panics and,
// when it parses, re-serializes without panicking either.
func TestQuickTagSoup(t *testing.T) {
	atoms := []string{
		"<TITLE>", "</TITLE>", "<TEXT>", "</TEXT>", "<B>", "</B>",
		"<IMG", "</IMG>", "<AU_VI", "</AU_VI>", "<HLINK", "</HLINK>",
		">", "SOURCE=x", "ID=y", "STARTIME=1", "DURATION=", "AFTER=", "words",
		"\"quoted\"", "<PAR>", "<SEP>", "<H1>", "</H1>",
	}
	f := func(picks []uint8) bool {
		var b strings.Builder
		for _, p := range picks {
			b.WriteString(atoms[int(p)%len(atoms)])
			b.WriteByte(' ')
		}
		doc, err := Parse(b.String())
		if err == nil && doc != nil {
			_ = Serialize(doc)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Package hml implements the paper's hypermedia markup language: an
// HTML-like language extended with timing primitives (STARTIME, DURATION),
// synchronized audio+video groups (AU_VI) and timed hyperlinks (HLINK ... AT),
// exactly as specified by the BNF grammar of Figure 1.
//
// The package provides a lexer, a recursive-descent parser producing an AST,
// a semantic validator, and a canonical serializer such that
// Parse(Serialize(doc)) round-trips.
package hml

import "fmt"

// Keyword names every tag and attribute keyword of the language (Table 1 of
// the paper, plus the attribute keywords that appear in the grammar).
type Keyword string

// Tag keywords.
const (
	KwTitle  Keyword = "TITLE"
	KwH1     Keyword = "H1"
	KwH2     Keyword = "H2"
	KwH3     Keyword = "H3"
	KwPar    Keyword = "PAR"
	KwSep    Keyword = "SEP"
	KwText   Keyword = "TEXT"
	KwImg    Keyword = "IMG"
	KwAu     Keyword = "AU"
	KwVi     Keyword = "VI"
	KwAuVi   Keyword = "AU_VI"
	KwHLink  Keyword = "HLINK"
	KwBold   Keyword = "B"
	KwItalic Keyword = "I"
	KwUnder  Keyword = "U"
)

// Attribute keywords.
const (
	KwSource   Keyword = "SOURCE"
	KwID       Keyword = "ID"
	KwStartime Keyword = "STARTIME"
	KwDuration Keyword = "DURATION"
	KwHeight   Keyword = "HEIGHT"
	KwWidth    Keyword = "WIDTH"
	KwWhere    Keyword = "WHERE"
	KwNote     Keyword = "NOTE"
	KwAt       Keyword = "AT"
	KwHost     Keyword = "HOST"
	KwAfter    Keyword = "AFTER"
	KwHref     Keyword = "HREF"
	KwKind     Keyword = "KIND"
)

// tagKeywords is the set of keywords that open a tag (<KW ...> ... </KW> or
// a void tag such as <PAR>).
var tagKeywords = map[Keyword]bool{
	KwTitle: true, KwH1: true, KwH2: true, KwH3: true,
	KwPar: true, KwSep: true, KwText: true,
	KwImg: true, KwAu: true, KwVi: true, KwAuVi: true,
	KwHLink: true, KwBold: true, KwItalic: true, KwUnder: true,
}

// voidTags never take a closing tag.
var voidTags = map[Keyword]bool{KwPar: true, KwSep: true}

// textBearing tags enclose raw character data (with optional inline style
// tags) rather than attribute lists.
var textBearing = map[Keyword]bool{
	KwTitle: true, KwH1: true, KwH2: true, KwH3: true,
	KwText: true, KwBold: true, KwItalic: true, KwUnder: true,
}

// TokenKind classifies lexer output.
type TokenKind int

// Token kinds produced by the lexer.
const (
	TokEOF      TokenKind = iota
	TokOpen               // <KW   (Lit = keyword)
	TokClose              // </KW> (Lit = keyword)
	TokGT                 // > terminating an open tag
	TokAttr               // KW=   (Lit = keyword)
	TokValue              // attribute value, quoted or bare (Lit = unquoted text)
	TokWord               // bare word inside a tag body (used by HLINK targets)
	TokCharData           // raw text inside a text-bearing tag
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokOpen:
		return "open-tag"
	case TokClose:
		return "close-tag"
	case TokGT:
		return "'>'"
	case TokAttr:
		return "attribute"
	case TokValue:
		return "value"
	case TokWord:
		return "word"
	case TokCharData:
		return "text"
	default:
		return "unknown"
	}
}

// Token is one lexical unit with its source position.
type Token struct {
	Kind TokenKind
	Lit  string
	Pos  Pos
}

func (t Token) String() string {
	if t.Lit == "" {
		return t.Kind.String()
	}
	return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
}

// Pos is a line/column source position (both 1-based).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// SyntaxError reports a lexical or syntactic error with its position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("hml: %s: %s", e.Pos, e.Msg) }

func errAt(pos Pos, format string, args ...interface{}) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

package hml

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Document is the root of an HML document: a title followed by a sequence of
// "hyper-sentences" (grammar production <Hdocument>).
type Document struct {
	// Title is the mandatory document title.
	Title string
	// Sentences are the document's content blocks in source order.
	Sentences []*Sentence
	// Name optionally records where the document came from (file name or
	// database key); it is not part of the language.
	Name string
}

// Sentence is one <HSentence>: an optional heading, an optional paragraph
// break, a body of items, and an optional trailing separator.
type Sentence struct {
	Heading   *Heading
	Par       bool
	Items     []Item
	Separator bool
}

// Heading is an H1, H2 or H3 heading.
type Heading struct {
	Level int // 1, 2 or 3
	Text  string
}

// Item is any element that may appear in a sentence body: Text, Image,
// Audio, Video, AudioVideo or Link.
type Item interface {
	itemNode()
}

// ItemKind returns a short human-readable kind name for an item.
func ItemKind(it Item) string {
	switch it.(type) {
	case *Text:
		return "text"
	case *Image:
		return "image"
	case *Audio:
		return "audio"
	case *Video:
		return "video"
	case *AudioVideo:
		return "audio+video"
	case *Link:
		return "hlink"
	default:
		return "unknown"
	}
}

// Style is a bitmask of inline text styles.
type Style uint8

// Inline style bits.
const (
	StyleBold Style = 1 << iota
	StyleItalic
	StyleUnderline
)

// Has reports whether s contains all bits of q.
func (s Style) Has(q Style) bool { return s&q == q }

func (s Style) String() string {
	var parts []string
	if s.Has(StyleBold) {
		parts = append(parts, "bold")
	}
	if s.Has(StyleItalic) {
		parts = append(parts, "italic")
	}
	if s.Has(StyleUnderline) {
		parts = append(parts, "underline")
	}
	if len(parts) == 0 {
		return "plain"
	}
	return strings.Join(parts, "+")
}

// Span is a run of text with a single style combination.
type Span struct {
	Style Style
	Text  string
}

// Text is a <TEXT> element: styled character content.
type Text struct {
	Spans []Span
}

func (*Text) itemNode() {}

// Plain returns the text content with styling stripped.
func (t *Text) Plain() string {
	var b strings.Builder
	for _, s := range t.Spans {
		b.WriteString(s.Text)
	}
	return b.String()
}

// Media carries the shared attributes of every inline media element
// (grammar productions <Source>, <Id>, <TimeOption> and the layout options).
type Media struct {
	// Source names where the media data lives (the SOURCE retrieval
	// options of the paper; in this implementation a media-server key).
	Source string
	// ID is the unique component identification key used to demultiplex
	// arriving streams.
	ID string
	// Start is the media's relative playout start time (STARTIME). When
	// After is set, Start is an offset added to the referenced media's end
	// time (an extension toward the Amsterdam model's relative timing —
	// the paper's "more complicated presentational features").
	Start time.Duration
	// After names another media component this one starts after ("" =
	// absolute timing).
	After string
	// Duration is the playout duration (DURATION); zero means "until the
	// presentation ends" for stills and "intrinsic length" for streams.
	Duration time.Duration
	// Width and Height are display dimensions (images/video); zero means
	// natural size.
	Width, Height int
	// Where places the media on the display ("x,y").
	Where string
	// Note is an annotation.
	Note string
}

// End returns Start+Duration.
func (m Media) End() time.Duration { return m.Start + m.Duration }

// Image is an <IMG> element.
type Image struct{ Media }

func (*Image) itemNode() {}

// Audio is an <AU> element.
type Audio struct{ Media }

func (*Audio) itemNode() {}

// Video is a <VI> element.
type Video struct{ Media }

func (*Video) itemNode() {}

// AudioVideo is an <AU_VI> synchronized group: an audio stream and a video
// stream that "should start and stop playing at the same time".
type AudioVideo struct {
	Audio Media
	Video Media
}

func (*AudioVideo) itemNode() {}

// LinkKind distinguishes the two hyperlink categories of the paper.
type LinkKind int

// Link kinds.
const (
	// Explorational links override the logical sequence to reach related
	// information.
	Explorational LinkKind = iota
	// Sequential links preserve the author's logical sequence.
	Sequential
)

func (k LinkKind) String() string {
	if k == Sequential {
		return "sequential"
	}
	return "explorational"
}

// Link is an <HLINK> element.
type Link struct {
	Kind LinkKind
	// Target is the linked document (file name / database key).
	Target string
	// Host optionally names another multimedia server holding the target.
	Host string
	// At, when HasAt is set, auto-activates the link once the given
	// scenario-relative time elapses (the AT keyword).
	At    time.Duration
	HasAt bool
	Note  string
}

func (*Link) itemNode() {}

// Items returns every item of the document in source order.
func (d *Document) Items() []Item {
	var out []Item
	for _, s := range d.Sentences {
		out = append(out, s.Items...)
	}
	return out
}

// MediaItems returns every timed media element (images, audio, video and the
// two halves of AU_VI groups are reported as their containing items).
func (d *Document) MediaItems() []Item {
	var out []Item
	for _, it := range d.Items() {
		switch it.(type) {
		case *Image, *Audio, *Video, *AudioVideo:
			out = append(out, it)
		}
	}
	return out
}

// Links returns every hyperlink in source order.
func (d *Document) Links() []*Link {
	var out []*Link
	for _, it := range d.Items() {
		if l, ok := it.(*Link); ok {
			out = append(out, l)
		}
	}
	return out
}

// TimedLinks returns hyperlinks carrying an AT activation time.
func (d *Document) TimedLinks() []*Link {
	var out []*Link
	for _, l := range d.Links() {
		if l.HasAt {
			out = append(out, l)
		}
	}
	return out
}

// Length returns the scenario length: the latest media end time, or the
// earliest timed-link activation if that comes later (a timed link ends the
// presentation by navigating away).
func (d *Document) Length() time.Duration {
	var max time.Duration
	for _, it := range d.Items() {
		switch m := it.(type) {
		case *Image:
			if m.End() > max {
				max = m.End()
			}
		case *Audio:
			if m.End() > max {
				max = m.End()
			}
		case *Video:
			if m.End() > max {
				max = m.End()
			}
		case *AudioVideo:
			if m.Audio.End() > max {
				max = m.Audio.End()
			}
			if m.Video.End() > max {
				max = m.Video.End()
			}
		case *Link:
			if m.HasAt && m.At > max {
				max = m.At
			}
		}
	}
	return max
}

// ParseTime parses the language's time values: Go duration syntax ("1m30s",
// "250ms") or a bare number of seconds ("30", "2.5").
func ParseTime(s string) (time.Duration, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("hml: empty time value")
	}
	if secs, err := strconv.ParseFloat(s, 64); err == nil {
		// Round to the nearest nanosecond so decimal fractions such as
		// "41.611" survive the float multiplication exactly.
		return time.Duration(math.Round(secs * float64(time.Second))), nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("hml: bad time value %q", s)
	}
	return d, nil
}

// FormatTime renders a duration in the canonical serialized form (seconds
// with millisecond precision, trailing zeros trimmed).
func FormatTime(d time.Duration) string {
	secs := float64(d) / float64(time.Second)
	s := strconv.FormatFloat(secs, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s
}

package hml_test

import (
	"fmt"

	"repro/internal/hml"
)

// ExampleParse shows the markup language's core primitives: timed media, a
// synchronized audio+video group and a timed hyperlink.
func ExampleParse() {
	doc, err := hml.Parse(`<TITLE>Demo</TITLE>
<H1>A minimal scenario</H1>
<TEXT>Shown throughout. <B>Bold words.</B></TEXT>
<IMG SOURCE=img/cover ID=cover STARTIME=0 DURATION=5> </IMG>
<AU_VI SOURCE=au/n SOURCE=vi/c ID=n ID=c STARTIME=5 DURATION=10> </AU_VI>
<HLINK HREF=next AT=15 KIND=SEQ> </HLINK>`)
	if err != nil {
		fmt.Println("parse error:", err)
		return
	}
	st := hml.Statistics(doc)
	fmt.Printf("%q: %d image(s), %d sync group(s), length %s\n",
		doc.Title, st.Images, st.SyncGroups, doc.Length())
	// Output:
	// "Demo": 1 image(s), 1 sync group(s), length 15s
}

// ExampleValidate shows the semantic checks the service relies on.
func ExampleValidate() {
	doc := hml.MustParse(`<TITLE>Broken</TITLE>
<AU SOURCE=au/x ID=dup STARTIME=0 DURATION=5> </AU>
<VI SOURCE=vi/x ID=dup STARTIME=0 DURATION=5> </VI>`)
	err := hml.Validate(doc)
	fmt.Println(err)
	// Output:
	// hml: document "" invalid: duplicate media ID "dup"
}

package hml

import (
	"fmt"
	"strings"
)

// ValidationError aggregates every semantic problem found in a document.
type ValidationError struct {
	Doc      string
	Problems []string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("hml: document %q invalid: %s", e.Doc, strings.Join(e.Problems, "; "))
}

// Validate checks the semantic rules the service relies on:
//
//   - the document has a title;
//   - every timed media element has a SOURCE and a unique, non-empty ID
//     ("each component of a hypermedia object has a unique identification
//     number");
//   - start times and durations are non-negative;
//   - audio and video streams have positive durations (stills may be
//     open-ended, streams may not);
//   - AU_VI halves start and stop together, per the paper;
//   - hyperlinks have targets, and AT times are non-negative.
func Validate(d *Document) error {
	var probs []string
	add := func(format string, args ...interface{}) {
		probs = append(probs, fmt.Sprintf(format, args...))
	}
	if strings.TrimSpace(d.Title) == "" {
		add("missing document title")
	}
	ids := map[string]bool{}
	// First pass: collect every media id so AFTER references can be
	// checked regardless of declaration order.
	collect := func(m Media) {
		if m.ID != "" {
			ids[m.ID] = true
		}
	}
	for _, it := range d.Items() {
		switch v := it.(type) {
		case *Image:
			collect(v.Media)
		case *Audio:
			collect(v.Media)
		case *Video:
			collect(v.Media)
		case *AudioVideo:
			collect(v.Audio)
			collect(v.Video)
		}
	}
	seen := map[string]bool{}
	checkMedia := func(m Media, kind string, stream bool) {
		if m.ID == "" {
			add("%s element missing ID", kind)
		} else if seen[m.ID] {
			add("duplicate media ID %q", m.ID)
		} else {
			seen[m.ID] = true
		}
		if m.After != "" {
			if !ids[m.After] {
				add("%s %q AFTER references unknown media %q", kind, m.ID, m.After)
			}
			if m.After == m.ID {
				add("%s %q AFTER references itself", kind, m.ID)
			}
		}
		if m.Source == "" {
			add("%s %q missing SOURCE", kind, m.ID)
		}
		if m.Start < 0 {
			add("%s %q has negative STARTIME", kind, m.ID)
		}
		if m.Duration < 0 {
			add("%s %q has negative DURATION", kind, m.ID)
		}
		if stream && m.Duration == 0 {
			add("%s %q requires a positive DURATION", kind, m.ID)
		}
		if m.Width < 0 || m.Height < 0 {
			add("%s %q has negative dimensions", kind, m.ID)
		}
	}
	for _, it := range d.Items() {
		switch v := it.(type) {
		case *Image:
			checkMedia(v.Media, "image", false)
		case *Audio:
			checkMedia(v.Media, "audio", true)
		case *Video:
			checkMedia(v.Media, "video", true)
		case *AudioVideo:
			checkMedia(v.Audio, "au_vi audio", true)
			checkMedia(v.Video, "au_vi video", true)
			if v.Audio.Start != v.Video.Start {
				add("au_vi group %q/%q halves start at different times", v.Audio.ID, v.Video.ID)
			}
			if v.Audio.Duration != v.Video.Duration {
				add("au_vi group %q/%q halves have different durations", v.Audio.ID, v.Video.ID)
			}
		case *Link:
			if v.Target == "" {
				add("hyperlink missing target")
			}
			if v.HasAt && v.At < 0 {
				add("hyperlink to %q has negative AT time", v.Target)
			}
		}
	}
	if len(probs) > 0 {
		return &ValidationError{Doc: d.Name, Problems: probs}
	}
	return nil
}

// Stats summarizes a document's composition; used by tooling and tests.
type Stats struct {
	Sentences  int
	Headings   int
	Texts      int
	Images     int
	Audios     int
	Videos     int
	SyncGroups int
	Links      int
	TimedLinks int
	Chars      int // plain text characters
}

// Statistics computes document composition counts.
func Statistics(d *Document) Stats {
	var st Stats
	st.Sentences = len(d.Sentences)
	for _, s := range d.Sentences {
		if s.Heading != nil {
			st.Headings++
		}
	}
	for _, it := range d.Items() {
		switch v := it.(type) {
		case *Text:
			st.Texts++
			st.Chars += len(v.Plain())
		case *Image:
			st.Images++
		case *Audio:
			st.Audios++
		case *Video:
			st.Videos++
		case *AudioVideo:
			st.SyncGroups++
		case *Link:
			st.Links++
			if v.HasAt {
				st.TimedLinks++
			}
		}
	}
	return st
}

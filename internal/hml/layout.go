package hml

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// The layout abstraction is one of the four logical layers of the paper's
// model ("content, layout, synchronization and interconnection"): "a set of
// rules that internally specify how the different media will be presented on
// the user's desktop". WHERE carries a media's display coordinates; together
// with WIDTH/HEIGHT it defines a region.

// Region is a display rectangle in desktop coordinates.
type Region struct {
	X, Y, W, H int
}

// Right and Bottom are the exclusive far edges.
func (r Region) Right() int { return r.X + r.W }

// Bottom is the exclusive lower edge.
func (r Region) Bottom() int { return r.Y + r.H }

// Overlaps reports whether two regions intersect.
func (r Region) Overlaps(o Region) bool {
	return r.X < o.Right() && o.X < r.Right() && r.Y < o.Bottom() && o.Y < r.Bottom()
}

// Empty reports a zero-area region.
func (r Region) Empty() bool { return r.W <= 0 || r.H <= 0 }

func (r Region) String() string {
	return fmt.Sprintf("(%d,%d %dx%d)", r.X, r.Y, r.W, r.H)
}

// ParseWhere parses the WHERE attribute's "x,y" coordinate form.
func ParseWhere(s string) (x, y int, err error) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("hml: bad WHERE %q (want \"x,y\")", s)
	}
	x, err = strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, fmt.Errorf("hml: bad WHERE x in %q", s)
	}
	y, err = strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, fmt.Errorf("hml: bad WHERE y in %q", s)
	}
	return x, y, nil
}

// RegionOf computes a media element's display region. Media without WHERE
// default to the origin; media without dimensions get a media-type default
// (320×240 visuals). Audio has no region.
func RegionOf(m Media) (Region, error) {
	x, y := 0, 0
	if m.Where != "" {
		var err error
		x, y, err = ParseWhere(m.Where)
		if err != nil {
			return Region{}, err
		}
	}
	w, h := m.Width, m.Height
	if w == 0 {
		w = 320
	}
	if h == 0 {
		h = 240
	}
	return Region{X: x, Y: y, W: w, H: h}, nil
}

// Placement is one visual element's region and active interval.
type Placement struct {
	ID     string
	Kind   string // "image" or "video"
	Region Region
	Start  time.Duration
	// End is zero for open-ended stills.
	End time.Duration
}

// ActiveAt reports whether the placement is on screen at time t.
func (p Placement) ActiveAt(t time.Duration) bool {
	if t < p.Start {
		return false
	}
	return p.End == 0 || t < p.End
}

// Layout is the document's computed visual arrangement.
type Layout struct {
	Placements []Placement
	// Canvas is the bounding box of every placement.
	Canvas Region
}

// BuildLayout computes the layout of a document's visual media, resolving
// relative (AFTER) timing into absolute start times first so temporal
// overlap checks are exact.
func BuildLayout(d *Document) (*Layout, error) {
	starts, err := resolveDocTimes(d)
	if err != nil {
		return nil, err
	}
	l := &Layout{}
	add := func(m Media, kind string) error {
		r, err := RegionOf(m)
		if err != nil {
			return fmt.Errorf("%s %q: %w", kind, m.ID, err)
		}
		start := m.Start
		if s, ok := starts[m.ID]; ok {
			start = s
		}
		var end time.Duration
		if m.Duration > 0 {
			end = start + m.Duration
		}
		l.Placements = append(l.Placements, Placement{
			ID: m.ID, Kind: kind, Region: r, Start: start, End: end,
		})
		return nil
	}
	for _, it := range d.Items() {
		switch v := it.(type) {
		case *Image:
			if err := add(v.Media, "image"); err != nil {
				return nil, err
			}
		case *Video:
			if err := add(v.Media, "video"); err != nil {
				return nil, err
			}
		case *AudioVideo:
			if err := add(v.Video, "video"); err != nil {
				return nil, err
			}
		}
	}
	for i, p := range l.Placements {
		if i == 0 {
			l.Canvas = p.Region
			continue
		}
		if p.Region.X < l.Canvas.X {
			l.Canvas.W += l.Canvas.X - p.Region.X
			l.Canvas.X = p.Region.X
		}
		if p.Region.Y < l.Canvas.Y {
			l.Canvas.H += l.Canvas.Y - p.Region.Y
			l.Canvas.Y = p.Region.Y
		}
		if p.Region.Right() > l.Canvas.Right() {
			l.Canvas.W = p.Region.Right() - l.Canvas.X
		}
		if p.Region.Bottom() > l.Canvas.Bottom() {
			l.Canvas.H = p.Region.Bottom() - l.Canvas.Y
		}
	}
	return l, nil
}

// Conflict is a pair of placements visible at the same time in overlapping
// regions.
type Conflict struct {
	A, B string
	// From is the first instant both are on screen.
	From time.Duration
}

// Conflicts finds simultaneous spatial overlaps — layout mistakes an author
// would want flagged before publishing a scenario.
func (l *Layout) Conflicts() []Conflict {
	var out []Conflict
	for i := 0; i < len(l.Placements); i++ {
		for j := i + 1; j < len(l.Placements); j++ {
			a, b := l.Placements[i], l.Placements[j]
			if !a.Region.Overlaps(b.Region) {
				continue
			}
			from, ok := overlapStart(a, b)
			if !ok {
				continue
			}
			out = append(out, Conflict{A: a.ID, B: b.ID, From: from})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].A < out[j].A
	})
	return out
}

// overlapStart computes when two placements are first simultaneously active.
func overlapStart(a, b Placement) (time.Duration, bool) {
	from := a.Start
	if b.Start > from {
		from = b.Start
	}
	if a.End > 0 && from >= a.End {
		return 0, false
	}
	if b.End > 0 && from >= b.End {
		return 0, false
	}
	return from, true
}

// VisibleAt returns the placements on screen at time t, in declaration
// order.
func (l *Layout) VisibleAt(t time.Duration) []Placement {
	var out []Placement
	for _, p := range l.Placements {
		if p.ActiveAt(t) {
			out = append(out, p)
		}
	}
	return out
}

// RenderScreen draws an ASCII sketch of the desktop at time t: each visible
// placement is a box labelled by its ID — the textual stand-in for the
// browser's rendering surface, scaled to cols×rows characters.
func (l *Layout) RenderScreen(t time.Duration, cols, rows int) string {
	if cols < 16 {
		cols = 16
	}
	if rows < 8 {
		rows = 8
	}
	canvas := l.Canvas
	if canvas.Empty() {
		canvas = Region{W: 640, H: 480}
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	sx := func(x int) int {
		p := (x - canvas.X) * cols / maxInt(canvas.W, 1)
		return clampInt(p, 0, cols-1)
	}
	sy := func(y int) int {
		p := (y - canvas.Y) * rows / maxInt(canvas.H, 1)
		return clampInt(p, 0, rows-1)
	}
	for _, p := range l.VisibleAt(t) {
		x0, x1 := sx(p.Region.X), sx(p.Region.Right()-1)
		y0, y1 := sy(p.Region.Y), sy(p.Region.Bottom()-1)
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				c := byte('.')
				if y == y0 || y == y1 {
					c = '-'
				}
				if x == x0 || x == x1 {
					c = '|'
				}
				if (y == y0 || y == y1) && (x == x0 || x == x1) {
					c = '+'
				}
				grid[y][x] = c
			}
		}
		label := p.ID
		if len(label) > x1-x0-1 {
			if x1-x0-1 > 0 {
				label = label[:x1-x0-1]
			} else {
				label = ""
			}
		}
		copy(grid[(y0+y1)/2][x0+1:], label)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "desktop at t=%s (canvas %s)\n", FormatTime(t), canvas)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// resolveDocTimes computes every media element's absolute start time,
// resolving AFTER chains (target end + own STARTIME offset). It mirrors the
// scenario layer's resolution so layout checks agree with playout timing.
func resolveDocTimes(d *Document) (map[string]time.Duration, error) {
	type node struct {
		m Media
	}
	all := map[string]*node{}
	collect := func(m Media) {
		if m.ID != "" {
			all[m.ID] = &node{m: m}
		}
	}
	for _, it := range d.Items() {
		switch v := it.(type) {
		case *Image:
			collect(v.Media)
		case *Audio:
			collect(v.Media)
		case *Video:
			collect(v.Media)
		case *AudioVideo:
			collect(v.Audio)
			collect(v.Video)
		}
	}
	starts := map[string]time.Duration{}
	const (
		visiting = 1
		done     = 2
	)
	state := map[string]int{}
	var resolve func(id string) (time.Duration, error)
	resolve = func(id string) (time.Duration, error) {
		n, ok := all[id]
		if !ok {
			return 0, fmt.Errorf("hml: AFTER references unknown media %q", id)
		}
		if state[id] == done {
			return starts[id], nil
		}
		if state[id] == visiting {
			return 0, fmt.Errorf("hml: AFTER cycle involving %q", id)
		}
		state[id] = visiting
		start := n.m.Start
		if n.m.After != "" {
			targetStart, err := resolve(n.m.After)
			if err != nil {
				return 0, err
			}
			target := all[n.m.After]
			start = targetStart + target.m.Duration + n.m.Start
		}
		starts[id] = start
		state[id] = done
		return start, nil
	}
	for id := range all {
		if _, err := resolve(id); err != nil {
			return nil, err
		}
	}
	return starts, nil
}

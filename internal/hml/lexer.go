package hml

import (
	"strings"
	"unicode"
)

// Lexer converts HML source text into a token stream. Tokenization is
// context-sensitive: inside text-bearing tags (TITLE, H1–H3, TEXT, B, I, U)
// the lexer emits raw character data until the next tag; inside media tags it
// emits attribute/value pairs; elsewhere it emits tags and bare words.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	// textMode is a stack of booleans tracking whether the innermost open
	// tag bears text.
	textMode []bool
	pending  []Token
	err      error
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpace() {
	for l.off < len(l.src) && isSpace(l.src[l.off]) {
		l.advance()
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isWordByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == '/' || c == ':' || c == ',' ||
		unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *Lexer) inText() bool {
	return len(l.textMode) > 0 && l.textMode[len(l.textMode)-1]
}

// Next returns the next token. After an error it keeps returning TokEOF; the
// error is available from Err.
func (l *Lexer) Next() Token {
	if len(l.pending) > 0 {
		t := l.pending[0]
		l.pending = l.pending[1:]
		return t
	}
	if l.err != nil {
		return Token{Kind: TokEOF, Pos: l.pos()}
	}
	if l.inText() {
		return l.lexCharData()
	}
	l.skipSpace()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos()}
	}
	if l.peek() == '<' {
		return l.lexTag()
	}
	return l.lexAttrOrWord()
}

// Err reports the first lexical error encountered.
func (l *Lexer) Err() error { return l.err }

func (l *Lexer) fail(pos Pos, format string, args ...interface{}) Token {
	if l.err == nil {
		l.err = errAt(pos, format, args...)
	}
	return Token{Kind: TokEOF, Pos: pos}
}

// lexTag handles "<KW", "</KW>" and the closing ">" of an open tag.
func (l *Lexer) lexTag() Token {
	pos := l.pos()
	l.advance() // consume '<'
	closing := false
	if l.peek() == '/' {
		l.advance()
		closing = true
	}
	start := l.off
	for l.off < len(l.src) && (l.src[l.off] == '_' || unicode.IsLetter(rune(l.src[l.off])) || unicode.IsDigit(rune(l.src[l.off]))) {
		l.advance()
	}
	name := strings.ToUpper(l.src[start:l.off])
	if name == "" {
		return l.fail(pos, "empty tag name")
	}
	kw := Keyword(name)
	if !tagKeywords[kw] {
		return l.fail(pos, "unknown tag %q", name)
	}
	if closing {
		l.skipSpace()
		if l.peek() != '>' {
			return l.fail(l.pos(), "expected '>' to close </%s", name)
		}
		l.advance()
		if len(l.textMode) > 0 {
			l.textMode = l.textMode[:len(l.textMode)-1]
		}
		return Token{Kind: TokClose, Lit: name, Pos: pos}
	}
	// Open tag: emit TokOpen, then scan inline attributes until '>'.
	open := Token{Kind: TokOpen, Lit: name, Pos: pos}
	for {
		l.skipSpace()
		if l.off >= len(l.src) {
			return l.fail(l.pos(), "unterminated <%s tag", name)
		}
		if l.peek() == '>' {
			l.advance()
			break
		}
		mark := len(l.pending)
		t := l.lexAttrOrWord()
		if t.Kind == TokEOF {
			return t // error already recorded
		}
		// lexAttrOrWord may itself have queued the attribute's value
		// token; the key must precede it.
		l.pending = append(l.pending, Token{})
		copy(l.pending[mark+1:], l.pending[mark:])
		l.pending[mark] = t
	}
	l.pending = append(l.pending, Token{Kind: TokGT, Pos: l.pos()})
	if voidTags[kw] {
		// Void tags have no body and no close tag; no mode push.
	} else {
		l.textMode = append(l.textMode, textBearing[kw])
	}
	return open
}

// lexAttrOrWord scans either KW= value (two tokens, value queued) or a bare
// word / quoted string.
func (l *Lexer) lexAttrOrWord() Token {
	pos := l.pos()
	if l.peek() == '"' {
		return l.lexQuoted(TokValue)
	}
	start := l.off
	for l.off < len(l.src) && isWordByte(l.src[l.off]) {
		l.advance()
	}
	word := l.src[start:l.off]
	if word == "" {
		return l.fail(pos, "unexpected character %q", string(l.peek()))
	}
	// An '=' immediately after (possibly with spaces) makes this an
	// attribute key; the paper's examples write both "SOURCE=x" and
	// "SOURCE= x".
	save := l.off
	saveLine, saveCol := l.line, l.col
	l.skipSpace()
	if l.peek() == '=' {
		l.advance()
		l.skipSpace()
		val := l.lexValue()
		if val.Kind == TokEOF {
			return val
		}
		l.pending = append(l.pending, val)
		return Token{Kind: TokAttr, Lit: strings.ToUpper(word), Pos: pos}
	}
	l.off, l.line, l.col = save, saveLine, saveCol
	return Token{Kind: TokWord, Lit: word, Pos: pos}
}

func (l *Lexer) lexValue() Token {
	pos := l.pos()
	if l.peek() == '"' {
		return l.lexQuoted(TokValue)
	}
	start := l.off
	for l.off < len(l.src) && isWordByte(l.src[l.off]) {
		l.advance()
	}
	if l.off == start {
		return l.fail(pos, "expected attribute value")
	}
	return Token{Kind: TokValue, Lit: l.src[start:l.off], Pos: pos}
}

func (l *Lexer) lexQuoted(kind TokenKind) Token {
	pos := l.pos()
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.off >= len(l.src) {
			return l.fail(pos, "unterminated string literal")
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\\' && l.off < len(l.src) {
			c = l.advance()
		}
		b.WriteByte(c)
	}
	return Token{Kind: kind, Lit: b.String(), Pos: pos}
}

// lexCharData scans raw text until the next '<'.
func (l *Lexer) lexCharData() Token {
	pos := l.pos()
	start := l.off
	for l.off < len(l.src) && l.peek() != '<' {
		l.advance()
	}
	text := l.src[start:l.off]
	if text == "" {
		if l.off >= len(l.src) {
			return l.fail(pos, "unterminated text content")
		}
		return l.lexTag()
	}
	return Token{Kind: TokCharData, Lit: text, Pos: pos}
}

// Tokens lexes the whole input, returning all tokens up to EOF.
func Tokens(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t := l.Next()
		if t.Kind == TokEOF {
			break
		}
		out = append(out, t)
	}
	return out, l.Err()
}

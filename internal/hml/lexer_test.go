package hml

import (
	"strings"
	"testing"
)

func kinds(ts []Token) []TokenKind {
	out := make([]TokenKind, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}

func TestLexSimpleTitle(t *testing.T) {
	ts, err := Tokens(`<TITLE>Hello</TITLE>`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokOpen, TokGT, TokCharData, TokClose}
	got := kinds(ts)
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", ts)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (all: %v)", i, got[i], want[i], ts)
		}
	}
	if ts[2].Lit != "Hello" {
		t.Fatalf("chardata = %q", ts[2].Lit)
	}
}

func TestLexAttributesInTag(t *testing.T) {
	ts, err := Tokens(`<IMG SOURCE=img/x ID=y STARTIME=5> </IMG>`)
	if err != nil {
		t.Fatal(err)
	}
	// Open, attr, value, attr, value, attr, value, GT, close.
	want := []TokenKind{TokOpen, TokAttr, TokValue, TokAttr, TokValue, TokAttr, TokValue, TokGT, TokClose}
	got := kinds(ts)
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", ts)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (all: %v)", i, got[i], want[i], ts)
		}
	}
	if ts[1].Lit != "SOURCE" || ts[2].Lit != "img/x" {
		t.Fatalf("first attr = %v %v", ts[1], ts[2])
	}
}

func TestLexAttributesInBody(t *testing.T) {
	ts, err := Tokens(`<IMG> SOURCE= img/x NOTE="hello world" </IMG>`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokOpen, TokGT, TokAttr, TokValue, TokAttr, TokValue, TokClose}
	got := kinds(ts)
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", ts)
	}
	if ts[5].Lit != "hello world" {
		t.Fatalf("quoted value = %q", ts[5].Lit)
	}
}

func TestLexQuotedEscapes(t *testing.T) {
	ts, err := Tokens(`<IMG NOTE="say \"hi\" \\ done"> </IMG>`)
	if err != nil {
		t.Fatal(err)
	}
	var got string
	for i, tok := range ts {
		if tok.Kind == TokAttr && tok.Lit == "NOTE" {
			got = ts[i+1].Lit
		}
	}
	if got != `say "hi" \ done` {
		t.Fatalf("escaped value = %q", got)
	}
}

func TestLexCaseInsensitiveTags(t *testing.T) {
	ts, err := Tokens(`<title>x</title>`)
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].Lit != "TITLE" {
		t.Fatalf("tag name = %q, want TITLE", ts[0].Lit)
	}
}

func TestLexInlineStyleWithinText(t *testing.T) {
	ts, err := Tokens(`<TEXT>a <B>b</B> c</TEXT>`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokOpen, TokGT, TokCharData, TokOpen, TokGT, TokCharData, TokClose, TokCharData, TokClose}
	got := kinds(ts)
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", ts)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	cases := map[string]string{
		"unknown tag":        `<BOGUS>x</BOGUS>`,
		"empty tag":          `<>`,
		"unterminated tag":   `<IMG SOURCE=x`,
		"unterminated quote": `<IMG NOTE="oops> </IMG>`,
		"bad close":          `</TITLE x>`,
		"unterminated text":  `<TEXT>hello`,
	}
	for name, src := range cases {
		if _, err := Tokens(src); err == nil {
			t.Errorf("%s: no error for %q", name, src)
		}
	}
}

func TestLexErrorPositionsAreTracked(t *testing.T) {
	_, err := Tokens("<TITLE>ok</TITLE>\n<BOGUS>")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Pos.Line != 2 {
		t.Fatalf("error line = %d, want 2", se.Pos.Line)
	}
	if !strings.Contains(se.Error(), "2:") {
		t.Fatalf("error text lacks position: %q", se.Error())
	}
}

func TestLexPARIsVoid(t *testing.T) {
	ts, err := Tokens(`<PAR><TEXT>x</TEXT>`)
	if err != nil {
		t.Fatal(err)
	}
	// PAR must not push text mode: the following <TEXT> is a tag, not data.
	if ts[2].Kind != TokOpen || ts[2].Lit != "TEXT" {
		t.Fatalf("after <PAR>: %v", ts[2])
	}
}

func TestLexWindowsNewlines(t *testing.T) {
	ts, err := Tokens("<TITLE>x</TITLE>\r\n<TEXT>y</TEXT>\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) == 0 {
		t.Fatal("no tokens")
	}
}

func TestTokenKindStrings(t *testing.T) {
	for k := TokEOF; k <= TokCharData; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if TokenKind(99).String() != "unknown" {
		t.Fatal("out-of-range kind must be unknown")
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: TokOpen, Lit: "IMG"}
	if !strings.Contains(tok.String(), "IMG") {
		t.Fatalf("Token.String = %q", tok.String())
	}
	eof := Token{Kind: TokEOF}
	if eof.String() != "EOF" {
		t.Fatalf("EOF token = %q", eof.String())
	}
}

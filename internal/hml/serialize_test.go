package hml

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTripCorpus(t *testing.T) {
	for name, src := range GrammarCorpus() {
		d1, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		out := Serialize(d1)
		d2, err := Parse(out)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n--- serialized ---\n%s", name, err, out)
		}
		// Compare semantically relevant structure.
		if d1.Title != d2.Title {
			t.Errorf("%s: title %q != %q", name, d1.Title, d2.Title)
		}
		s1, s2 := Statistics(d1), Statistics(d2)
		if s1 != s2 {
			t.Errorf("%s: stats changed: %+v vs %+v", name, s1, s2)
		}
		it1, it2 := d1.Items(), d2.Items()
		if len(it1) != len(it2) {
			t.Fatalf("%s: item count %d != %d", name, len(it1), len(it2))
		}
		for i := range it1 {
			if !itemsEquivalent(it1[i], it2[i]) {
				t.Errorf("%s: item %d differs:\n  %#v\n  %#v", name, i, it1[i], it2[i])
			}
		}
	}
}

// itemsEquivalent compares items ignoring text-span splitting differences.
func itemsEquivalent(a, b Item) bool {
	switch va := a.(type) {
	case *Text:
		vb, ok := b.(*Text)
		return ok && va.Plain() == vb.Plain()
	default:
		return reflect.DeepEqual(a, b)
	}
}

func TestSerializeIdempotent(t *testing.T) {
	d := Figure2()
	s1 := Serialize(d)
	d2 := MustParse(s1)
	s2 := Serialize(d2)
	if s1 != s2 {
		t.Fatalf("serialization not idempotent:\n%s\n---\n%s", s1, s2)
	}
}

func TestSerializeQuoting(t *testing.T) {
	d := &Document{
		Title: "quoting",
		Sentences: []*Sentence{{
			Items: []Item{&Image{Media{Source: "a b", ID: "x", Note: `with "quotes" and \slash`, Duration: time.Second}}},
		}},
	}
	out := Serialize(d)
	d2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	img := d2.Sentences[0].Items[0].(*Image)
	if img.Source != "a b" || img.Note != `with "quotes" and \slash` {
		t.Fatalf("quoting lost: %+v", img)
	}
}

func TestSerializeEscapesAngleBrackets(t *testing.T) {
	d := &Document{Title: "a < b > c"}
	out := Serialize(d)
	if strings.Contains(strings.TrimPrefix(out, "<TITLE>"), "<b") {
		t.Fatalf("unescaped: %q", out)
	}
	d2, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	// The escape is one-way (entities are not decoded on parse), but the
	// document must remain parseable.
	if d2.Title == "" {
		t.Fatal("title lost")
	}
}

func TestStyleString(t *testing.T) {
	cases := map[Style]string{
		0:                                        "plain",
		StyleBold:                                "bold",
		StyleBold | StyleItalic:                  "bold+italic",
		StyleUnderline:                           "underline",
		StyleBold | StyleItalic | StyleUnderline: "bold+italic+underline",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestLinkKindString(t *testing.T) {
	if Sequential.String() != "sequential" || Explorational.String() != "explorational" {
		t.Fatal("LinkKind strings wrong")
	}
}

// Property: serializing a randomly generated valid document and re-parsing
// preserves media timing exactly.
func TestQuickRoundTripMediaTiming(t *testing.T) {
	f := func(startsMS []uint16, dursMS []uint16) bool {
		n := len(startsMS)
		if len(dursMS) < n {
			n = len(dursMS)
		}
		if n > 20 {
			n = 20
		}
		d := &Document{Title: "gen"}
		s := &Sentence{}
		for i := 0; i < n; i++ {
			m := Media{
				Source:   "src",
				ID:       "m" + string(rune('a'+i%26)) + string(rune('0'+i/26)),
				Start:    time.Duration(startsMS[i]) * time.Millisecond,
				Duration: time.Duration(dursMS[i])*time.Millisecond + time.Millisecond,
			}
			s.Items = append(s.Items, &Video{m})
		}
		d.Sentences = []*Sentence{s}
		d2, err := Parse(Serialize(d))
		if err != nil {
			return false
		}
		it2 := d2.Items()
		if len(it2) != n {
			return false
		}
		for i := 0; i < n; i++ {
			v1 := s.Items[i].(*Video)
			v2, ok := it2[i].(*Video)
			if !ok || v1.Start != v2.Start || v1.Duration != v2.Duration {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestItemKindNames(t *testing.T) {
	cases := []struct {
		it   Item
		want string
	}{
		{&Text{}, "text"},
		{&Image{}, "image"},
		{&Audio{}, "audio"},
		{&Video{}, "video"},
		{&AudioVideo{}, "audio+video"},
		{&Link{}, "hlink"},
	}
	for _, c := range cases {
		if got := ItemKind(c.it); got != c.want {
			t.Errorf("ItemKind(%T) = %q, want %q", c.it, got, c.want)
		}
	}
}

package hml

import (
	"fmt"
	"strings"
)

// Serialize renders a Document to canonical HML text. The output parses back
// to an equivalent Document (see TestRoundTrip), which is what lets servers
// store documents as AST and ship them as markup, per the paper ("the
// representation of a document by the markup language is actually a text
// file").
func Serialize(d *Document) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<TITLE>%s</TITLE>\n", escape(d.Title))
	for _, s := range d.Sentences {
		writeSentence(&b, s)
	}
	return b.String()
}

func escape(s string) string {
	return strings.NewReplacer("<", "&lt;", ">", "&gt;").Replace(s)
}

func quoteVal(s string) string {
	if s == "" {
		return `""`
	}
	for i := 0; i < len(s); i++ {
		if !isWordByte(s[i]) {
			return `"` + strings.NewReplacer(`\`, `\\`, `"`, `\"`).Replace(s) + `"`
		}
	}
	return s
}

func writeSentence(b *strings.Builder, s *Sentence) {
	if s.Heading != nil {
		fmt.Fprintf(b, "<H%d>%s</H%d>\n", s.Heading.Level, escape(s.Heading.Text), s.Heading.Level)
	}
	if s.Par {
		b.WriteString("<PAR>\n")
	}
	for _, it := range s.Items {
		writeItem(b, it)
	}
	if s.Separator {
		b.WriteString("<SEP>\n")
	}
}

func writeItem(b *strings.Builder, it Item) {
	switch v := it.(type) {
	case *Text:
		b.WriteString("<TEXT>")
		writeSpans(b, v.Spans)
		b.WriteString("</TEXT>\n")
	case *Image:
		b.WriteString("<IMG>")
		writeMediaAttrs(b, v.Media, true)
		b.WriteString(" </IMG>\n")
	case *Audio:
		b.WriteString("<AU>")
		writeMediaAttrs(b, v.Media, false)
		b.WriteString(" </AU>\n")
	case *Video:
		b.WriteString("<VI>")
		writeMediaAttrs(b, v.Media, false)
		b.WriteString(" </VI>\n")
	case *AudioVideo:
		b.WriteString("<AU_VI>")
		fmt.Fprintf(b, " SOURCE=%s SOURCE=%s ID=%s ID=%s STARTIME=%s STARTIME=%s DURATION=%s DURATION=%s",
			quoteVal(v.Audio.Source), quoteVal(v.Video.Source),
			quoteVal(v.Audio.ID), quoteVal(v.Video.ID),
			FormatTime(v.Audio.Start), FormatTime(v.Video.Start),
			FormatTime(v.Audio.Duration), FormatTime(v.Video.Duration))
		if v.Audio.Note != "" {
			fmt.Fprintf(b, " NOTE=%s", quoteVal(v.Audio.Note))
		}
		b.WriteString(" </AU_VI>\n")
	case *Link:
		b.WriteString("<HLINK>")
		fmt.Fprintf(b, " HREF=%s", quoteVal(v.Target))
		if v.Host != "" {
			fmt.Fprintf(b, " HOST=%s", quoteVal(v.Host))
		}
		if v.HasAt {
			fmt.Fprintf(b, " AT=%s", FormatTime(v.At))
		}
		if v.Kind == Sequential {
			b.WriteString(" KIND=SEQ")
		}
		if v.Note != "" {
			fmt.Fprintf(b, " NOTE=%s", quoteVal(v.Note))
		}
		b.WriteString(" </HLINK>\n")
	}
}

func writeMediaAttrs(b *strings.Builder, m Media, layout bool) {
	if m.Source != "" {
		fmt.Fprintf(b, " SOURCE=%s", quoteVal(m.Source))
	}
	if m.ID != "" {
		fmt.Fprintf(b, " ID=%s", quoteVal(m.ID))
	}
	if m.After != "" {
		fmt.Fprintf(b, " AFTER=%s", quoteVal(m.After))
	}
	fmt.Fprintf(b, " STARTIME=%s", FormatTime(m.Start))
	if m.Duration != 0 {
		fmt.Fprintf(b, " DURATION=%s", FormatTime(m.Duration))
	}
	if layout {
		if m.Width != 0 {
			fmt.Fprintf(b, " WIDTH=%d", m.Width)
		}
		if m.Height != 0 {
			fmt.Fprintf(b, " HEIGHT=%d", m.Height)
		}
	}
	if m.Where != "" {
		fmt.Fprintf(b, " WHERE=%s", quoteVal(m.Where))
	}
	if m.Note != "" {
		fmt.Fprintf(b, " NOTE=%s", quoteVal(m.Note))
	}
}

func writeSpans(b *strings.Builder, spans []Span) {
	for _, sp := range spans {
		open, close := styleTags(sp.Style)
		b.WriteString(open)
		b.WriteString(escape(sp.Text))
		b.WriteString(close)
	}
}

func styleTags(s Style) (open, close string) {
	var o, c strings.Builder
	if s.Has(StyleBold) {
		o.WriteString("<B>")
		c.WriteString("</B>")
	}
	if s.Has(StyleItalic) {
		o.WriteString("<I>")
		c.WriteString("</I>")
	}
	if s.Has(StyleUnderline) {
		o.WriteString("<U>")
		c.WriteString("</U>")
	}
	// Close tags nest inside-out.
	oc := c.String()
	var rev strings.Builder
	for i := len(oc); i >= 4; {
		// each close tag is 4 chars: </X> — find boundaries backwards.
		j := strings.LastIndex(oc[:i], "<")
		rev.WriteString(oc[j:i])
		i = j
	}
	return o.String(), rev.String()
}

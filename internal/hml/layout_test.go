package hml

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestParseWhere(t *testing.T) {
	x, y, err := ParseWhere("10, 20")
	if err != nil || x != 10 || y != 20 {
		t.Fatalf("ParseWhere = %d,%d,%v", x, y, err)
	}
	for _, bad := range []string{"", "10", "a,b", "1,2,3"} {
		if _, _, err := ParseWhere(bad); err == nil {
			t.Errorf("ParseWhere(%q) accepted", bad)
		}
	}
}

func TestRegionBasics(t *testing.T) {
	a := Region{X: 0, Y: 0, W: 100, H: 100}
	b := Region{X: 50, Y: 50, W: 100, H: 100}
	c := Region{X: 100, Y: 0, W: 10, H: 10}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("overlap not detected")
	}
	if a.Overlaps(c) { // touching edges do not overlap
		t.Fatal("edge touch counted as overlap")
	}
	if !(Region{W: 0, H: 5}).Empty() || (Region{W: 1, H: 1}).Empty() {
		t.Fatal("Empty wrong")
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}

func TestRegionOfDefaults(t *testing.T) {
	r, err := RegionOf(Media{})
	if err != nil || r != (Region{W: 320, H: 240}) {
		t.Fatalf("default region = %v, %v", r, err)
	}
	r, err = RegionOf(Media{Where: "5,6", Width: 10, Height: 20})
	if err != nil || r != (Region{X: 5, Y: 6, W: 10, H: 20}) {
		t.Fatalf("region = %v, %v", r, err)
	}
	if _, err := RegionOf(Media{Where: "oops"}); err == nil {
		t.Fatal("bad WHERE accepted")
	}
}

const layoutDoc = `<TITLE>layout</TITLE>
<IMG SOURCE=a ID=bg STARTIME=0 WHERE="0,0" WIDTH=640 HEIGHT=480> </IMG>
<IMG SOURCE=b ID=inset STARTIME=2 DURATION=6 WHERE="400,300" WIDTH=200 HEIGHT=150> </IMG>
<VI SOURCE=c ID=clip STARTIME=10 DURATION=5 WHERE="700,0" WIDTH=320 HEIGHT=240> </VI>`

func TestBuildLayoutAndCanvas(t *testing.T) {
	l, err := BuildLayout(MustParse(layoutDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Placements) != 3 {
		t.Fatalf("placements = %d", len(l.Placements))
	}
	// Canvas spans 0..1020 x 0..480.
	if l.Canvas != (Region{X: 0, Y: 0, W: 1020, H: 480}) {
		t.Fatalf("canvas = %v", l.Canvas)
	}
}

func TestLayoutConflicts(t *testing.T) {
	l, err := BuildLayout(MustParse(layoutDoc))
	if err != nil {
		t.Fatal(err)
	}
	// bg overlaps inset spatially and both are visible from t=2s; clip is
	// spatially disjoint.
	cons := l.Conflicts()
	if len(cons) != 1 {
		t.Fatalf("conflicts = %+v", cons)
	}
	if cons[0].A != "bg" || cons[0].B != "inset" || cons[0].From != 2*time.Second {
		t.Fatalf("conflict = %+v", cons[0])
	}
}

func TestLayoutNoTemporalOverlapNoConflict(t *testing.T) {
	l, err := BuildLayout(MustParse(`<TITLE>t</TITLE>
<IMG SOURCE=a ID=p STARTIME=0 DURATION=5 WHERE="0,0" WIDTH=100 HEIGHT=100> </IMG>
<IMG SOURCE=b ID=q STARTIME=5 DURATION=5 WHERE="0,0" WIDTH=100 HEIGHT=100> </IMG>`))
	if err != nil {
		t.Fatal(err)
	}
	if cons := l.Conflicts(); len(cons) != 0 {
		t.Fatalf("sequential placements flagged: %+v", cons)
	}
}

func TestVisibleAt(t *testing.T) {
	l, _ := BuildLayout(MustParse(layoutDoc))
	ids := func(t0 time.Duration) []string {
		var out []string
		for _, p := range l.VisibleAt(t0) {
			out = append(out, p.ID)
		}
		return out
	}
	if got := ids(0); len(got) != 1 || got[0] != "bg" {
		t.Fatalf("t=0: %v", got)
	}
	if got := ids(3 * time.Second); len(got) != 2 {
		t.Fatalf("t=3: %v", got)
	}
	if got := ids(12 * time.Second); len(got) != 2 || got[1] != "clip" {
		t.Fatalf("t=12: %v", got)
	}
}

func TestRenderScreen(t *testing.T) {
	l, _ := BuildLayout(MustParse(layoutDoc))
	out := l.RenderScreen(3*time.Second, 64, 16)
	if !strings.Contains(out, "bg") || !strings.Contains(out, "inse") {
		t.Fatalf("labels missing:\n%s", out)
	}
	if strings.Contains(out, "clip") {
		t.Fatalf("future clip drawn:\n%s", out)
	}
	out12 := l.RenderScreen(12*time.Second, 64, 16)
	if !strings.Contains(out12, "clip") {
		t.Fatalf("clip missing at t=12:\n%s", out12)
	}
	// Degenerate sizes are clamped, empty layouts render a default canvas.
	empty := &Layout{}
	if s := empty.RenderScreen(0, 1, 1); !strings.Contains(s, "desktop") {
		t.Fatalf("empty render: %q", s)
	}
}

func TestBuildLayoutBadWhere(t *testing.T) {
	_, err := BuildLayout(MustParse(`<TITLE>t</TITLE>
<IMG SOURCE=a ID=x WHERE="nope"> </IMG>`))
	if err == nil {
		t.Fatal("bad WHERE accepted")
	}
}

// Property: Overlaps is symmetric and a region always overlaps itself when
// non-empty.
func TestQuickOverlapSymmetry(t *testing.T) {
	f := func(ax, ay int8, aw, ah uint8, bx, by int8, bw, bh uint8) bool {
		a := Region{X: int(ax), Y: int(ay), W: int(aw) + 1, H: int(ah) + 1}
		b := Region{X: int(bx), Y: int(by), W: int(bw) + 1, H: int(bh) + 1}
		if a.Overlaps(b) != b.Overlaps(a) {
			return false
		}
		return a.Overlaps(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutResolvesAfterTiming(t *testing.T) {
	l, err := BuildLayout(MustParse(`<TITLE>t</TITLE>
<IMG SOURCE=a ID=first STARTIME=0 DURATION=5 WHERE="0,0" WIDTH=100 HEIGHT=100> </IMG>
<IMG SOURCE=b ID=second AFTER=first DURATION=5 WHERE="0,0" WIDTH=100 HEIGHT=100> </IMG>`))
	if err != nil {
		t.Fatal(err)
	}
	// Same region, but sequential via AFTER: no conflict.
	if cons := l.Conflicts(); len(cons) != 0 {
		t.Fatalf("AFTER-sequenced placements flagged: %+v", cons)
	}
	// The second placement's resolved window is 5–10s.
	for _, p := range l.Placements {
		if p.ID == "second" && (p.Start != 5*time.Second || p.End != 10*time.Second) {
			t.Fatalf("second = %+v", p)
		}
	}
}

func TestLayoutAfterCycleRejected(t *testing.T) {
	_, err := BuildLayout(MustParse(`<TITLE>t</TITLE>
<IMG SOURCE=a ID=p AFTER=q DURATION=1> </IMG>
<IMG SOURCE=b ID=q AFTER=p DURATION=1> </IMG>`))
	if err == nil {
		t.Fatal("cycle accepted by layout")
	}
}

package media

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestAppendPayloadMatchesPayload(t *testing.T) {
	for _, size := range []int{1, 2, 7, 8, 9, 100, MTU, MTU + 1, 4096} {
		want := Payload("vid", 17, size)
		prefix := []byte("hdr")
		got := AppendPayload(append([]byte(nil), prefix...), "vid", 17, size)
		if !bytes.Equal(got[:len(prefix)], prefix) {
			t.Fatalf("size %d: prefix clobbered", size)
		}
		if !bytes.Equal(got[len(prefix):], want) {
			t.Fatalf("size %d: appended payload differs from Payload", size)
		}
	}
}

func TestPayloadTagEdgeCases(t *testing.T) {
	a := Payload("stream-a", 42, 512)
	if bytes.Equal(a, Payload("stream-a", 43, 512)) || bytes.Equal(a, Payload("stream-b", 42, 512)) {
		t.Fatal("payloads must differ across frames and streams")
	}
	// Tiny payloads truncate the tag instead of overflowing.
	tiny := Payload("stream-a", 42, 3)
	if len(tiny) != 3 || string(tiny) != "str" {
		t.Fatalf("tiny payload = %q", tiny)
	}
	// Ids longer than the stack tag scratch still encode correctly.
	long := strings.Repeat("x", 200)
	p := Payload(long, 5, 300)
	if !strings.HasPrefix(string(p), long+"#5|") {
		t.Fatal("long-id tag corrupted")
	}
}

// TestAppendPayloadAllocFree: with a pre-grown destination the synthesis path
// must not allocate — it runs once per emitted frame on the server.
func TestAppendPayloadAllocFree(t *testing.T) {
	scratch := make([]byte, 0, 8192)
	avg := testing.AllocsPerRun(100, func() {
		scratch = AppendPayload(scratch[:0], "vid", 7, 8000)
	})
	if avg != 0 {
		t.Fatalf("AppendPayload allocates %.1f objects/frame with warm scratch", avg)
	}
}

// TestVideoFrameAtAllocFree: frame metadata synthesis is on the per-frame
// emit path and must not allocate (its VBR noise RNG lives on the stack).
func TestVideoFrameAtAllocFree(t *testing.T) {
	v := NewVideo("v", nil)
	i := 0
	avg := testing.AllocsPerRun(100, func() {
		_ = v.FrameAt(i, 0)
		i++
	})
	if avg != 0 {
		t.Fatalf("Video.FrameAt allocates %.1f objects/frame", avg)
	}
}

func TestFragmentSpanMatchesFragments(t *testing.T) {
	f := func(size uint32) bool {
		s := int(size % 500000)
		frags := Fragments(s)
		if FragmentCount(s) != len(frags) {
			return false
		}
		for i, n := range frags {
			off, fn := FragmentSpan(s, i)
			if fn != n || off != i*MTU {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	if c := FragmentCount(0); c != 1 {
		t.Fatalf("FragmentCount(0) = %d, want 1 (empty frames still ship one packet)", c)
	}
	if off, n := FragmentSpan(0, 0); off != 0 || n != 0 {
		t.Fatalf("FragmentSpan(0,0) = %d,%d", off, n)
	}
}

func TestStillPayloadCaching(t *testing.T) {
	im := NewImage("pic", 640, 480)
	for level := 0; level < im.Levels(); level++ {
		p1 := im.CachedPayload(0, level)
		p2 := im.CachedPayload(0, level)
		if p1 == nil || &p1[0] != &p2[0] {
			t.Fatalf("level %d: still body re-synthesized instead of cached", level)
		}
		if want := Payload("pic", 0, im.Size(level)); !bytes.Equal(p1, want) {
			t.Fatalf("level %d: cached body differs from synthesis", level)
		}
	}
	if im.CachedPayload(1, 0) != nil {
		t.Fatal("secondary still frames have no body to cache")
	}
	tx := NewText("note", "hello "+strconv.Itoa(42))
	t1, t2 := tx.CachedPayload(0, 0), tx.CachedPayload(0, 0)
	if t1 == nil || &t1[0] != &t2[0] {
		t.Fatal("text body re-synthesized instead of cached")
	}
	if want := Payload("note", 0, tx.FrameAt(0, 0).Size); !bytes.Equal(t1, want) {
		t.Fatal("cached text body differs from synthesis")
	}
	if tx.CachedPayload(3, 0) != nil {
		t.Fatal("secondary text frames have no body to cache")
	}
}

// TestFrameHeaderAppendToMatchesMarshal keeps the append-style frame-header
// encoder bit-identical to the allocating one.
func TestFrameHeaderAppendToMatchesMarshal(t *testing.T) {
	h := FrameHeader{Index: 9999, Level: 2, Kind: FrameB, Frag: 3, FragCount: 8, FrameSize: 150000}
	if !bytes.Equal(h.AppendTo(nil), h.Marshal(nil)) {
		t.Fatal("AppendTo(nil) differs from Marshal(nil)")
	}
	prefix := []byte("rtp-header-bytes")
	out := h.AppendTo(append([]byte(nil), prefix...))
	if !bytes.Equal(out[:len(prefix)], prefix) || !bytes.Equal(out[len(prefix):], h.Marshal(nil)) {
		t.Fatal("AppendTo after a prefix corrupted the encoding")
	}
}

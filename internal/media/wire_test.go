package media

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestFrameHeaderRoundTrip(t *testing.T) {
	h := FrameHeader{Index: 123456, Level: 3, Kind: FrameP, Frag: 2, FragCount: 5, FrameSize: 7000}
	data := []byte("fragment payload")
	buf := h.Marshal(data)
	if len(buf) != FrameHeaderSize+len(data) {
		t.Fatalf("wire size = %d", len(buf))
	}
	got, rest, err := ParseFrameHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header = %+v, want %+v", got, h)
	}
	if !bytes.Equal(rest, data) {
		t.Fatalf("data = %q", rest)
	}
}

func TestParseFrameHeaderShort(t *testing.T) {
	if _, _, err := ParseFrameHeader(make([]byte, FrameHeaderSize-1)); err != ErrShortHeader {
		t.Fatalf("err = %v", err)
	}
}

func TestQuickFrameHeaderRoundTrip(t *testing.T) {
	f := func(index uint32, level, kind uint8, frag, count uint16, size uint32, data []byte) bool {
		h := FrameHeader{Index: index, Level: level, Kind: FrameKind(kind),
			Frag: frag, FragCount: count, FrameSize: size}
		got, rest, err := ParseFrameHeader(h.Marshal(data))
		return err == nil && got == h && bytes.Equal(rest, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Regression: frame sizes past 64 KiB must survive the wire header intact.
// A full-quality 640×480 still encodes to 153600 bytes, which a uint16
// FrameSize silently truncated to 22528 — corrupting the size the client
// reassembles against.
func TestFrameHeaderLargeFrameSize(t *testing.T) {
	im := NewImage("i", 640, 480)
	size := im.Size(0)
	if size <= 0xFFFF {
		t.Fatalf("test premise broken: 640×480 still = %d bytes, want > 64 KiB", size)
	}
	h := FrameHeader{Index: 0, Kind: FrameStill, Frag: 0,
		FragCount: uint16(len(Fragments(size))), FrameSize: uint32(size)}
	got, _, err := ParseFrameHeader(h.Marshal([]byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	if got.FrameSize != uint32(size) || int(got.FrameSize) != size {
		t.Fatalf("FrameSize = %d, want %d", got.FrameSize, size)
	}
}

func TestFragments(t *testing.T) {
	cases := []struct {
		size int
		want []int
	}{
		{0, []int{0}},
		{-5, []int{0}},
		{1, []int{1}},
		{MTU, []int{MTU}},
		{MTU + 1, []int{MTU, 1}},
		{3*MTU + 7, []int{MTU, MTU, MTU, 7}},
	}
	for _, c := range cases {
		got := Fragments(c.size)
		if len(got) != len(c.want) {
			t.Fatalf("Fragments(%d) = %v", c.size, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Fragments(%d) = %v, want %v", c.size, got, c.want)
			}
		}
	}
}

// Property: fragments always sum to the frame size and never exceed MTU.
func TestQuickFragmentsConserve(t *testing.T) {
	f := func(size uint16) bool {
		sum := 0
		for _, n := range Fragments(int(size)) {
			if n > MTU || n < 0 {
				return false
			}
			sum += n
		}
		return sum == int(size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSourceLevelNamesAndIntervals(t *testing.T) {
	v := NewVideo("v", nil)
	a := NewAudio("a", nil)
	im := NewImage("i", 100, 100)
	tx := NewText("t", "x")
	if a.LevelName(0) != "PCM 16kHz" || a.LevelName(3) != "VADPCM 8kHz" {
		t.Fatal("audio level names")
	}
	if im.LevelName(2) != "GIF 256c" {
		t.Fatal("image level name")
	}
	if tx.LevelName(0) != "text" {
		t.Fatal("text level name")
	}
	if v.FrameInterval() != 40*time.Millisecond || a.FrameInterval() != 20*time.Millisecond {
		t.Fatal("frame intervals")
	}
	if im.FrameInterval() <= 0 || tx.FrameInterval() <= 0 {
		t.Fatal("still intervals must be positive")
	}
	if tx.Bitrate(0) <= 0 || im.Bitrate(1) <= 0 {
		t.Fatal("still bitrates")
	}
	// Text FramesIn windows.
	if got := tx.FramesIn(0, time.Second, 0); len(got) != 1 {
		t.Fatalf("text frames = %d", len(got))
	}
	if tx.FramesIn(time.Second, 2*time.Second, 0) != nil {
		t.Fatal("text delivered twice")
	}
	// Image secondary frames are empty.
	if f := im.FrameAt(3, 0); f.Size != 0 {
		t.Fatalf("image frame 3 size = %d", f.Size)
	}
	if f := tx.FrameAt(2, 0); f.Size != 0 {
		t.Fatalf("text frame 2 size = %d", f.Size)
	}
}

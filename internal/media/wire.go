package media

import (
	"encoding/binary"
	"errors"
)

// FrameHeaderSize is the wire size of the in-payload frame header carried at
// the start of every RTP fragment.
const FrameHeaderSize = 14

// FrameHeader is the per-fragment metadata the media servers prepend inside
// the RTP payload: which frame the fragment belongs to, the quality level it
// was encoded at, the frame kind, and the fragment position.
type FrameHeader struct {
	// Index is the frame ordinal in the stream.
	Index uint32
	// Level is the quality level the frame was encoded at.
	Level uint8
	// Kind is the frame kind.
	Kind FrameKind
	// Frag and FragCount position this fragment within the frame.
	Frag, FragCount uint16
	// FrameSize is the full encoded frame size in bytes. 32 bits wide: a
	// full-quality still already exceeds 64 KiB at 640×480 (0.5 B/px →
	// 153600 bytes), so a uint16 here silently truncated the size the
	// client reassembles against.
	FrameSize uint32
}

// ErrShortHeader reports a payload too small for a frame header.
var ErrShortHeader = errors.New("media: short frame header")

// Marshal prepends the header to the fragment data.
func (h *FrameHeader) Marshal(data []byte) []byte {
	out := make([]byte, 0, FrameHeaderSize+len(data))
	out = h.AppendTo(out)
	return append(out, data...)
}

// AppendTo appends the 14-byte wire header to dst and returns the extended
// slice. The sender hot path uses it to assemble header and fragment into
// one pooled buffer without the intermediate copy Marshal makes.
func (h *FrameHeader) AppendTo(dst []byte) []byte {
	return append(dst,
		byte(h.Index>>24), byte(h.Index>>16), byte(h.Index>>8), byte(h.Index),
		h.Level,
		uint8(h.Kind),
		byte(h.Frag>>8), byte(h.Frag),
		byte(h.FragCount>>8), byte(h.FragCount),
		byte(h.FrameSize>>24), byte(h.FrameSize>>16), byte(h.FrameSize>>8), byte(h.FrameSize),
	)
}

// ParseFrameHeader splits a payload into header and fragment data.
func ParseFrameHeader(buf []byte) (FrameHeader, []byte, error) {
	if len(buf) < FrameHeaderSize {
		return FrameHeader{}, nil, ErrShortHeader
	}
	h := FrameHeader{
		Index:     binary.BigEndian.Uint32(buf[0:]),
		Level:     buf[4],
		Kind:      FrameKind(buf[5]),
		Frag:      binary.BigEndian.Uint16(buf[6:]),
		FragCount: binary.BigEndian.Uint16(buf[8:]),
		FrameSize: binary.BigEndian.Uint32(buf[10:]),
	}
	return h, buf[FrameHeaderSize:], nil
}

// MTU is the maximum RTP payload carried per packet (fragment data after the
// frame header), chosen to keep packets under a typical 1500-byte Ethernet
// MTU with RTP/UDP/IP headers.
const MTU = 1400

// Fragments splits a frame of the given size into fragment sizes of at most
// MTU bytes (at least one fragment, even for empty frames).
func Fragments(size int) []int {
	out := make([]int, FragmentCount(size))
	for i := range out {
		_, out[i] = FragmentSpan(size, i)
	}
	return out
}

// FragmentCount returns the number of MTU-bounded fragments a frame of the
// given size splits into (at least one, even for empty frames). Together
// with FragmentSpan it lets the sender iterate fragments without building a
// slice.
func FragmentCount(size int) int {
	if size <= 0 {
		return 1
	}
	return (size + MTU - 1) / MTU
}

// FragmentSpan returns the byte range [off, off+n) of fragment i within a
// frame of the given size. Fragment i always starts at i×MTU, which is also
// the offset receivers use to place a fragment into reassembly scratch.
func FragmentSpan(size, i int) (off, n int) {
	off = i * MTU
	if size <= off {
		return off, 0
	}
	n = size - off
	if n > MTU {
		n = MTU
	}
	return off, n
}

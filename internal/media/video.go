package media

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/rtp"
	"repro/internal/stats"
)

// VideoProfile is one rung of a video quality ladder: an MPEG encoding at a
// given compression factor. Increasing the compression factor is exactly the
// paper's long-term degradation action for video.
type VideoProfile struct {
	// Name labels the profile for traces.
	Name string
	// CompressionFactor scales frame sizes down (1 = base quality).
	CompressionFactor float64
	// PayloadType is the RTP payload type for this rung.
	PayloadType rtp.PayloadType
}

// DefaultVideoLadder is a five-rung MPEG ladder from ~1.5 Mb/s down to
// ~0.19 Mb/s; the bottom rung is the paper's "lower threshold" below which
// the service stops the stream.
func DefaultVideoLadder() []VideoProfile {
	return []VideoProfile{
		{Name: "MPEG cf=1.0", CompressionFactor: 1.0, PayloadType: rtp.PTMPEG},
		{Name: "MPEG cf=1.7", CompressionFactor: 1.7, PayloadType: rtp.PTMPEG},
		{Name: "MPEG cf=2.8", CompressionFactor: 2.8, PayloadType: rtp.PTMPEG},
		{Name: "MPEG cf=4.7", CompressionFactor: 4.7, PayloadType: rtp.PTMPEG},
		{Name: "AVI low", CompressionFactor: 8.0, PayloadType: rtp.PTAVI},
	}
}

// Video is a synthetic MPEG-like video source: 25 fps with a 12-frame GoP
// (IBBPBBPBBPBB) and VBR noise, sized so level 0 averages ≈1.5 Mb/s.
type Video struct {
	id     string
	ladder []VideoProfile
	fps    int
	gop    []FrameKind
	// base sizes per kind at compression factor 1 (bytes).
	baseI, baseP, baseB int
	noise               *stats.RNG
	noiseAmp            float64
}

// NewVideo creates a video source.
func NewVideo(id string, ladder []VideoProfile) *Video {
	if len(ladder) == 0 {
		ladder = DefaultVideoLadder()
	}
	return &Video{
		id:     id,
		ladder: ladder,
		fps:    25,
		gop: []FrameKind{FrameI, FrameB, FrameB, FrameP, FrameB, FrameB,
			FrameP, FrameB, FrameB, FrameP, FrameB, FrameB},
		// 25 fps, GoP of 12: 1 I (20000) + 3 P (8000) + 8 B (3000)
		// ≈ 68 KB per 480 ms ≈ 1.4 Mb/s at cf=1.
		baseI: 20000, baseP: 8000, baseB: 3000,
		noiseAmp: 0.15,
	}
}

// ID implements Source.
func (v *Video) ID() string { return v.id }

// Levels implements Source.
func (v *Video) Levels() int { return len(v.ladder) }

// FrameInterval implements Source.
func (v *Video) FrameInterval() time.Duration {
	return time.Second / time.Duration(v.fps)
}

// Bitrate implements Source.
func (v *Video) Bitrate(level int) float64 {
	level = clampLevel(level, len(v.ladder))
	gopBytes := 0
	for _, k := range v.gop {
		gopBytes += v.baseSize(k)
	}
	cf := v.ladder[level].CompressionFactor
	gopDur := float64(len(v.gop)) / float64(v.fps)
	return float64(gopBytes) * 8 / cf / gopDur
}

func (v *Video) baseSize(k FrameKind) int {
	switch k {
	case FrameI:
		return v.baseI
	case FrameP:
		return v.baseP
	default:
		return v.baseB
	}
}

// FrameAt implements Source. Sizes carry deterministic VBR noise derived
// from the stream id and frame index so replays are identical.
func (v *Video) FrameAt(i, level int) Frame {
	level = clampLevel(level, len(v.ladder))
	kind := v.gop[i%len(v.gop)]
	cf := v.ladder[level].CompressionFactor
	base := float64(v.baseSize(kind)) / cf
	// Deterministic noise: seed per (id, index). The RNG lives on the stack —
	// FrameAt runs once per emitted frame and must not allocate.
	seed := uint64(i)*0x9E3779B1 + hashID(v.id)
	var r stats.RNG
	r.Seed(seed)
	size := int(base * (1 + v.noiseAmp*(2*r.Float64()-1)))
	if size < 64 {
		size = 64
	}
	return Frame{
		Index:  i,
		PTS:    time.Duration(i) * v.FrameInterval(),
		Kind:   kind,
		Size:   size,
		Marker: true,
		Level:  level,
	}
}

// FramesIn implements Source.
func (v *Video) FramesIn(from, to time.Duration, level int) []Frame {
	return framesIn(v, from, to, level)
}

// PayloadType implements Source.
func (v *Video) PayloadType(level int) rtp.PayloadType {
	return v.ladder[clampLevel(level, len(v.ladder))].PayloadType
}

// LevelName implements Source.
func (v *Video) LevelName(level int) string {
	return v.ladder[clampLevel(level, len(v.ladder))].Name
}

func hashID(id string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

// AudioProfile is one rung of an audio quality ladder. Lowering the sampling
// frequency (and switching PCM→ADPCM→VADPCM) is the paper's degradation
// action for audio.
type AudioProfile struct {
	Name        string
	SampleRate  int // Hz
	BitsPerSamp int // effective bits per sample after compression
	PayloadType rtp.PayloadType
}

// Bitrate returns the profile's rate in bits/s.
func (p AudioProfile) Bitrate() float64 { return float64(p.SampleRate * p.BitsPerSamp) }

// DefaultAudioLadder is a four-rung ladder: 16 kHz PCM, 8 kHz PCM,
// 8 kHz ADPCM (4 bits/sample), 8 kHz VADPCM (2 bits/sample).
func DefaultAudioLadder() []AudioProfile {
	return []AudioProfile{
		{Name: "PCM 16kHz", SampleRate: 16000, BitsPerSamp: 8, PayloadType: rtp.PTPCM},
		{Name: "PCM 8kHz", SampleRate: 8000, BitsPerSamp: 8, PayloadType: rtp.PTPCM},
		{Name: "ADPCM 8kHz", SampleRate: 8000, BitsPerSamp: 4, PayloadType: rtp.PTADPCM},
		{Name: "VADPCM 8kHz", SampleRate: 8000, BitsPerSamp: 2, PayloadType: rtp.PTVADPCM},
	}
}

// Audio is a synthetic audio source emitting fixed 20 ms sample blocks.
type Audio struct {
	id     string
	ladder []AudioProfile
	block  time.Duration
}

// NewAudio creates an audio source.
func NewAudio(id string, ladder []AudioProfile) *Audio {
	if len(ladder) == 0 {
		ladder = DefaultAudioLadder()
	}
	return &Audio{id: id, ladder: ladder, block: 20 * time.Millisecond}
}

// ID implements Source.
func (a *Audio) ID() string { return a.id }

// Levels implements Source.
func (a *Audio) Levels() int { return len(a.ladder) }

// FrameInterval implements Source.
func (a *Audio) FrameInterval() time.Duration { return a.block }

// Bitrate implements Source.
func (a *Audio) Bitrate(level int) float64 {
	return a.ladder[clampLevel(level, len(a.ladder))].Bitrate()
}

// FrameAt implements Source: audio blocks are constant-size per level.
func (a *Audio) FrameAt(i, level int) Frame {
	level = clampLevel(level, len(a.ladder))
	p := a.ladder[level]
	size := int(p.Bitrate() * a.block.Seconds() / 8)
	if size < 16 {
		size = 16
	}
	return Frame{
		Index:  i,
		PTS:    time.Duration(i) * a.block,
		Kind:   FrameAudio,
		Size:   size,
		Marker: i == 0,
		Level:  level,
	}
}

// FramesIn implements Source.
func (a *Audio) FramesIn(from, to time.Duration, level int) []Frame {
	return framesIn(a, from, to, level)
}

// PayloadType implements Source.
func (a *Audio) PayloadType(level int) rtp.PayloadType {
	return a.ladder[clampLevel(level, len(a.ladder))].PayloadType
}

// LevelName implements Source.
func (a *Audio) LevelName(level int) string {
	return a.ladder[clampLevel(level, len(a.ladder))].Name
}

// Image is a still-image source: the whole image is a single "frame",
// chunked by the transport. Quality levels trade JPEG quality for size;
// level names cycle through the prototype's supported formats.
//
// Image caches its frame bodies: stills are one-shot, but a reload or
// session restart re-sends the same image, and a full-quality 640×480 still
// is 153600 bytes of RNG synthesis per send without the cache.
type Image struct {
	id            string
	width, height int

	mu    sync.Mutex
	cache [3][]byte // per-level frame bodies, built lazily
}

// NewImage creates an image source for the given pixel dimensions.
func NewImage(id string, width, height int) *Image {
	return &Image{id: id, width: width, height: height}
}

// ID implements Source.
func (im *Image) ID() string { return im.id }

// Levels implements Source: full-quality JPEG, medium JPEG, GIF-reduced.
func (im *Image) Levels() int { return 3 }

// FrameInterval implements Source; a still has a single delivery.
func (im *Image) FrameInterval() time.Duration { return time.Second }

// Size returns the encoded byte size at a level (≈0.25 byte/pixel JPEG).
func (im *Image) Size(level int) int {
	level = clampLevel(level, im.Levels())
	pixels := im.width * im.height
	per := []float64{0.5, 0.25, 0.1}[level]
	size := int(float64(pixels) * per)
	if size < 256 {
		size = 256
	}
	return size
}

// Bitrate implements Source: nominal rate to deliver the still in 1 s.
func (im *Image) Bitrate(level int) float64 { return float64(im.Size(level) * 8) }

// FrameAt implements Source: index 0 is the image; others are empty.
func (im *Image) FrameAt(i, level int) Frame {
	if i > 0 {
		return Frame{Index: i, PTS: time.Duration(i) * time.Second, Kind: FrameStill, Size: 0, Level: level}
	}
	return Frame{Index: 0, PTS: 0, Kind: FrameStill, Size: im.Size(level), Marker: true, Level: clampLevel(level, im.Levels())}
}

// FramesIn implements Source.
func (im *Image) FramesIn(from, to time.Duration, level int) []Frame {
	if from <= 0 && to > 0 {
		return []Frame{im.FrameAt(0, level)}
	}
	return nil
}

// CachedPayload implements CachedPayloadSource: the still's body is built
// once per level and reused across reload/restart re-sends.
func (im *Image) CachedPayload(index, level int) []byte {
	if index != 0 {
		return nil
	}
	level = clampLevel(level, im.Levels())
	im.mu.Lock()
	defer im.mu.Unlock()
	if im.cache[level] == nil {
		im.cache[level] = Payload(im.id, 0, im.Size(level))
	}
	return im.cache[level]
}

// PayloadType implements Source.
func (im *Image) PayloadType(level int) rtp.PayloadType {
	if clampLevel(level, im.Levels()) == 2 {
		return rtp.PTGIF
	}
	return rtp.PTJPEG
}

// LevelName implements Source.
func (im *Image) LevelName(level int) string {
	return []string{"JPEG q=90", "JPEG q=60", "GIF 256c"}[clampLevel(level, im.Levels())]
}

// Text is a text-content source: one still frame holding the content.
// Like Image it caches its one-shot frame body for reload/restart re-sends.
type Text struct {
	id      string
	content string

	mu    sync.Mutex
	cache []byte
}

// NewText creates a text source.
func NewText(id, content string) *Text { return &Text{id: id, content: content} }

// ID implements Source.
func (t *Text) ID() string { return t.id }

// Levels implements Source: text is never degraded.
func (t *Text) Levels() int { return 1 }

// FrameInterval implements Source.
func (t *Text) FrameInterval() time.Duration { return time.Second }

// Bitrate implements Source.
func (t *Text) Bitrate(int) float64 { return float64(len(t.content)+1) * 8 }

// FrameAt implements Source.
func (t *Text) FrameAt(i, level int) Frame {
	size := len(t.content)
	if size == 0 {
		size = 1
	}
	if i > 0 {
		size = 0
	}
	return Frame{Index: i, PTS: 0, Kind: FrameStill, Size: size, Marker: true}
}

// FramesIn implements Source.
func (t *Text) FramesIn(from, to time.Duration, level int) []Frame {
	if from <= 0 && to > 0 {
		return []Frame{t.FrameAt(0, level)}
	}
	return nil
}

// CachedPayload implements CachedPayloadSource.
func (t *Text) CachedPayload(index, level int) []byte {
	if index != 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cache == nil {
		t.cache = Payload(t.id, 0, t.FrameAt(0, level).Size)
	}
	return t.cache
}

// PayloadType implements Source.
func (t *Text) PayloadType(int) rtp.PayloadType { return rtp.PTText }

// LevelName implements Source.
func (t *Text) LevelName(int) string { return "text" }

// Content returns the text body.
func (t *Text) Content() string { return t.content }

var (
	_ Source = (*Video)(nil)
	_ Source = (*Audio)(nil)
	_ Source = (*Image)(nil)
	_ Source = (*Text)(nil)

	_ CachedPayloadSource = (*Image)(nil)
	_ CachedPayloadSource = (*Text)(nil)
)

// FmtRate renders a bits/s rate human-readably.
func FmtRate(bps float64) string {
	switch {
	case bps >= 1e6:
		return fmt.Sprintf("%.2fMb/s", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.1fkb/s", bps/1e3)
	default:
		return fmt.Sprintf("%.0fb/s", bps)
	}
}

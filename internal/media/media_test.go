package media

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rtp"
	"repro/internal/scenario"
)

func TestVideoGoPStructure(t *testing.T) {
	v := NewVideo("v1", nil)
	kinds := make([]FrameKind, 12)
	for i := range kinds {
		kinds[i] = v.FrameAt(i, 0).Kind
	}
	want := []FrameKind{FrameI, FrameB, FrameB, FrameP, FrameB, FrameB, FrameP, FrameB, FrameB, FrameP, FrameB, FrameB}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("frame %d kind %v, want %v", i, kinds[i], want[i])
		}
	}
	// GoP repeats.
	if v.FrameAt(12, 0).Kind != FrameI {
		t.Fatal("GoP does not repeat")
	}
}

func TestVideoFrameSizeOrdering(t *testing.T) {
	v := NewVideo("v1", nil)
	// On average across many GoPs, I > P > B at a fixed level.
	sum := map[FrameKind]int{}
	cnt := map[FrameKind]int{}
	for i := 0; i < 600; i++ {
		f := v.FrameAt(i, 0)
		sum[f.Kind] += f.Size
		cnt[f.Kind]++
	}
	avgI := sum[FrameI] / cnt[FrameI]
	avgP := sum[FrameP] / cnt[FrameP]
	avgB := sum[FrameB] / cnt[FrameB]
	if !(avgI > avgP && avgP > avgB) {
		t.Fatalf("avg sizes I=%d P=%d B=%d", avgI, avgP, avgB)
	}
}

func TestVideoBitrateLadderMonotone(t *testing.T) {
	v := NewVideo("v1", nil)
	for l := 1; l < v.Levels(); l++ {
		if v.Bitrate(l) >= v.Bitrate(l-1) {
			t.Fatalf("bitrate not decreasing: L%d=%v L%d=%v", l-1, v.Bitrate(l-1), l, v.Bitrate(l))
		}
	}
	// Level 0 ≈ 1.4 Mb/s.
	if r := v.Bitrate(0); r < 1_000_000 || r > 2_000_000 {
		t.Fatalf("base rate = %v", r)
	}
}

func TestVideoFramesDeterministic(t *testing.T) {
	a, b := NewVideo("same", nil), NewVideo("same", nil)
	for i := 0; i < 50; i++ {
		if a.FrameAt(i, 1) != b.FrameAt(i, 1) {
			t.Fatal("video frames not deterministic")
		}
	}
	c := NewVideo("other", nil)
	diff := 0
	for i := 0; i < 50; i++ {
		if a.FrameAt(i, 1).Size != c.FrameAt(i, 1).Size {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different streams produce identical noise")
	}
}

func TestVideoLevelClamping(t *testing.T) {
	v := NewVideo("v", nil)
	if v.FrameAt(0, -5).Level != 0 {
		t.Fatal("negative level not clamped")
	}
	if v.FrameAt(0, 99).Level != v.Levels()-1 {
		t.Fatal("high level not clamped")
	}
	if v.PayloadType(99) != rtp.PTAVI {
		t.Fatal("bottom rung must be AVI")
	}
	if !strings.Contains(v.LevelName(0), "MPEG") {
		t.Fatal("level 0 name")
	}
}

func TestVideoFramesIn(t *testing.T) {
	v := NewVideo("v", nil)
	frames := v.FramesIn(0, time.Second, 0)
	if len(frames) != 25 {
		t.Fatalf("frames in 1s = %d, want 25", len(frames))
	}
	for i, f := range frames {
		if f.PTS != time.Duration(i)*40*time.Millisecond {
			t.Fatalf("frame %d PTS = %v", i, f.PTS)
		}
	}
	// Window not starting at zero.
	frames = v.FramesIn(time.Second, 2*time.Second, 0)
	if len(frames) != 25 || frames[0].PTS != time.Second {
		t.Fatalf("second window: %d frames, first %v", len(frames), frames[0].PTS)
	}
	if v.FramesIn(time.Second, time.Second, 0) != nil {
		t.Fatal("empty window returned frames")
	}
}

func TestAudioBlocks(t *testing.T) {
	a := NewAudio("a", nil)
	f := a.FrameAt(0, 1) // PCM 8 kHz
	// 64 kb/s × 20 ms / 8 = 160 bytes.
	if f.Size != 160 {
		t.Fatalf("PCM block = %d bytes, want 160", f.Size)
	}
	if a.FrameAt(0, 2).Size != 80 { // ADPCM 4-bit
		t.Fatalf("ADPCM block = %d", a.FrameAt(0, 2).Size)
	}
	if got := len(a.FramesIn(0, time.Second, 0)); got != 50 {
		t.Fatalf("blocks in 1s = %d, want 50", got)
	}
}

func TestAudioLadderCodecsAndRates(t *testing.T) {
	a := NewAudio("a", nil)
	pts := []rtp.PayloadType{rtp.PTPCM, rtp.PTPCM, rtp.PTADPCM, rtp.PTVADPCM}
	for l, want := range pts {
		if a.PayloadType(l) != want {
			t.Fatalf("level %d PT = %v, want %v", l, a.PayloadType(l), want)
		}
	}
	for l := 1; l < a.Levels(); l++ {
		if a.Bitrate(l) >= a.Bitrate(l-1) {
			t.Fatal("audio ladder not decreasing")
		}
	}
	if a.Bitrate(1) != 64000 {
		t.Fatalf("PCM 8kHz rate = %v", a.Bitrate(1))
	}
}

func TestImageSizesByLevel(t *testing.T) {
	im := NewImage("i", 320, 240)
	s0, s1, s2 := im.Size(0), im.Size(1), im.Size(2)
	if !(s0 > s1 && s1 > s2) {
		t.Fatalf("sizes %d %d %d", s0, s1, s2)
	}
	if s0 != 320*240/2 {
		t.Fatalf("JPEG q90 size = %d", s0)
	}
	if im.PayloadType(0) != rtp.PTJPEG || im.PayloadType(2) != rtp.PTGIF {
		t.Fatal("image payload types")
	}
	fs := im.FramesIn(0, time.Second, 0)
	if len(fs) != 1 || fs[0].Size != s0 || !fs[0].Marker {
		t.Fatalf("image frames = %+v", fs)
	}
	if im.FramesIn(time.Second, 2*time.Second, 0) != nil {
		t.Fatal("image delivered twice")
	}
}

func TestImageMinimumSize(t *testing.T) {
	im := NewImage("tiny", 8, 8)
	if im.Size(2) < 256 {
		t.Fatalf("size floor violated: %d", im.Size(2))
	}
}

func TestTextSource(t *testing.T) {
	tx := NewText("t", "hello world")
	if tx.Levels() != 1 {
		t.Fatal("text must have one level")
	}
	f := tx.FrameAt(0, 0)
	if f.Size != 11 {
		t.Fatalf("text frame size = %d", f.Size)
	}
	if tx.PayloadType(0) != rtp.PTText {
		t.Fatal("text PT")
	}
	if tx.Content() != "hello world" {
		t.Fatal("content lost")
	}
	empty := NewText("e", "")
	if empty.FrameAt(0, 0).Size != 1 {
		t.Fatal("empty text frame must have size 1")
	}
}

func TestPayloadDeterministicAndTagged(t *testing.T) {
	p1 := Payload("v1", 7, 100)
	p2 := Payload("v1", 7, 100)
	if !bytes.Equal(p1, p2) {
		t.Fatal("payload not deterministic")
	}
	if !bytes.HasPrefix(p1, []byte("v1#7|")) {
		t.Fatalf("payload tag missing: %q", p1[:10])
	}
	if len(Payload("x", 0, 0)) != 1 {
		t.Fatal("zero size not clamped")
	}
}

func TestForStreamDispatch(t *testing.T) {
	cases := []struct {
		s    *scenario.Stream
		want string
	}{
		{&scenario.Stream{ID: "v", Type: scenario.TypeVideo}, "*media.Video"},
		{&scenario.Stream{ID: "a", Type: scenario.TypeAudio}, "*media.Audio"},
		{&scenario.Stream{ID: "i", Type: scenario.TypeImage, Width: 100, Height: 100}, "*media.Image"},
		{&scenario.Stream{ID: "t", Type: scenario.TypeText, Text: "x"}, "*media.Text"},
	}
	for _, c := range cases {
		src := ForStream(c.s)
		if got := typeName(src); got != c.want {
			t.Errorf("ForStream(%v) = %s, want %s", c.s.Type, got, c.want)
		}
		if src.ID() != c.s.ID {
			t.Errorf("source id = %q", src.ID())
		}
	}
	// Default image dimensions applied.
	im := ForStream(&scenario.Stream{ID: "i2", Type: scenario.TypeImage}).(*Image)
	if im.Size(0) != 320*240/2 {
		t.Fatalf("default image size = %d", im.Size(0))
	}
}

func typeName(v interface{}) string {
	switch v.(type) {
	case *Video:
		return "*media.Video"
	case *Audio:
		return "*media.Audio"
	case *Image:
		return "*media.Image"
	case *Text:
		return "*media.Text"
	default:
		return "?"
	}
}

func TestFrameKindStrings(t *testing.T) {
	names := map[FrameKind]string{FrameI: "I", FrameP: "P", FrameB: "B", FrameAudio: "A", FrameStill: "S", FrameKind(99): "?"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", k, k.String(), want)
		}
	}
}

func TestFmtRate(t *testing.T) {
	cases := map[float64]string{
		1_500_000: "1.50Mb/s",
		64_000:    "64.0kb/s",
		500:       "500b/s",
	}
	for in, want := range cases {
		if got := FmtRate(in); got != want {
			t.Errorf("FmtRate(%v) = %q, want %q", in, got, want)
		}
	}
}

// Property: for every source type and level, FramesIn(a,b) ∪ FramesIn(b,c)
// equals FramesIn(a,c) — windows tile without gaps or duplicates.
func TestQuickFramesTile(t *testing.T) {
	v := NewVideo("tile", nil)
	a := NewAudio("tile", nil)
	f := func(aMS, bMS, cMS uint16) bool {
		t0 := time.Duration(aMS) * time.Millisecond
		t1 := t0 + time.Duration(bMS)*time.Millisecond
		t2 := t1 + time.Duration(cMS)*time.Millisecond
		for _, src := range []Source{v, a} {
			left := src.FramesIn(t0, t1, 0)
			right := src.FramesIn(t1, t2, 0)
			whole := src.FramesIn(t0, t2, 0)
			if len(left)+len(right) != len(whole) {
				return false
			}
			for i, f := range append(left, right...) {
				if whole[i] != f {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: bitrate ladders are strictly decreasing for video and audio.
func TestQuickLadderMonotone(t *testing.T) {
	srcs := []Source{NewVideo("v", nil), NewAudio("a", nil), NewImage("i", 640, 480)}
	for _, s := range srcs {
		for l := 1; l < s.Levels(); l++ {
			if s.Bitrate(l) >= s.Bitrate(l-1) {
				t.Fatalf("%s ladder not decreasing at level %d", s.ID(), l)
			}
		}
	}
}

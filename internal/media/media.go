// Package media provides the synthetic media substrate: frame/sample
// generators for video, audio, images and text whose sizes, rates and
// structure match the formats the paper's prototype shipped (MPEG/AVI video,
// PCM/ADPCM/VADPCM audio, GIF/TIFF/BMP/JPEG images), together with the
// quality ladders the Media Stream Quality Converter grades across.
//
// The service machinery manipulates frame timing, sizes and rates — never
// pixel or sample content — so synthetic frames with the right size/rate
// structure exercise exactly the code paths the paper describes. Payload
// bytes are deterministic filler.
package media

import (
	"encoding/binary"
	"strconv"
	"time"

	"repro/internal/rtp"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// FrameKind classifies video frames within a group of pictures.
type FrameKind int

// Video frame kinds.
const (
	FrameI FrameKind = iota
	FrameP
	FrameB
	// FrameAudio marks audio sample blocks.
	FrameAudio
	// FrameStill marks one-shot image/text deliveries.
	FrameStill
)

func (k FrameKind) String() string {
	switch k {
	case FrameI:
		return "I"
	case FrameP:
		return "P"
	case FrameB:
		return "B"
	case FrameAudio:
		return "A"
	case FrameStill:
		return "S"
	default:
		return "?"
	}
}

// Frame is one access unit: a video frame, an audio block or a still chunk.
type Frame struct {
	// Index is the frame's ordinal within the stream.
	Index int
	// PTS is the presentation timestamp relative to the stream's start.
	PTS time.Duration
	// Kind is the frame class.
	Kind FrameKind
	// Size is the encoded size in bytes at the quality level requested.
	Size int
	// Marker flags the last packetizable unit of a visual frame.
	Marker bool
	// Level records the quality level the frame was encoded at.
	Level int
}

// Source generates a stream's frames at a requested quality level. Level 0
// is the best quality; higher levels are progressively degraded, down to
// Levels()-1 (the paper's lowest threshold before stream cut-off).
type Source interface {
	// ID returns the stream identifier this source feeds.
	ID() string
	// Levels returns the number of quality levels.
	Levels() int
	// Bitrate returns the nominal rate in bits/s at a level.
	Bitrate(level int) float64
	// FrameInterval returns the nominal spacing between frames.
	FrameInterval() time.Duration
	// FrameAt returns the i-th frame encoded at the given level.
	FrameAt(i int, level int) Frame
	// FramesIn returns the frames with PTS in [from, to).
	FramesIn(from, to time.Duration, level int) []Frame
	// PayloadType returns the RTP payload type at a level (grading can
	// switch codecs, e.g. PCM→ADPCM→VADPCM).
	PayloadType(level int) rtp.PayloadType
	// LevelName names a level for traces ("MPEG cf=2", "ADPCM 16kHz").
	LevelName(level int) string
}

// clampLevel confines level to [0, n-1].
func clampLevel(level, n int) int {
	if level < 0 {
		return 0
	}
	if level >= n {
		return n - 1
	}
	return level
}

// framesIn is the shared FramesIn implementation. The result is preallocated
// exactly: the window [from, to) contains a computable number of frame
// instants, so the repeated-append growth pattern is avoidable.
func framesIn(s Source, from, to time.Duration, level int) []Frame {
	if to <= from {
		return nil
	}
	fi := s.FrameInterval()
	if fi <= 0 {
		return nil
	}
	first := int(from / fi)
	if time.Duration(first)*fi < from {
		first++
	}
	// Frames in the window are first..last with last = ceil(to/fi)-1.
	count := int((to+fi-1)/fi) - first
	if count <= 0 {
		return nil
	}
	out := make([]Frame, count)
	for k := range out {
		out[k] = s.FrameAt(first+k, level)
	}
	return out
}

// Payload builds a deterministic filler payload of the given size, tagged
// with the stream id and frame index so tests can verify content integrity
// end to end.
func Payload(id string, index, size int) []byte {
	return AppendPayload(nil, id, index, size)
}

// AppendPayload appends the deterministic filler payload for (id, index) to
// dst and returns the extended slice: the tag "id#index|" (truncated when the
// payload is smaller) followed by seeded RNG filler written eight bytes per
// RNG draw. A sender reusing one scratch buffer across frames synthesizes
// payloads with zero steady-state allocations.
func AppendPayload(dst []byte, id string, index, size int) []byte {
	if size <= 0 {
		size = 1
	}
	start := len(dst)
	dst = extend(dst, size)
	buf := dst[start:]
	// Tag, truncated to the payload size exactly as the copy in the original
	// formatting-based implementation truncated it.
	var tag [tagMax]byte
	t := append(tag[:0], id...)
	t = append(t, '#')
	t = strconv.AppendInt(t, int64(index), 10)
	t = append(t, '|')
	n := copy(buf, t)
	// Seeded filler, 8 bytes per draw.
	seed := uint64(index)*2654435761 + uint64(len(id))
	var rng stats.RNG
	rng.Seed(seed)
	for ; n+8 <= size; n += 8 {
		binary.LittleEndian.PutUint64(buf[n:], rng.Uint64())
	}
	if n < size {
		var last [8]byte
		binary.LittleEndian.PutUint64(last[:], rng.Uint64())
		copy(buf[n:], last[:size-n])
	}
	return dst
}

// tagMax bounds the stack scratch for payload tags; stream ids are short,
// and an id long enough to overflow merely costs one allocation.
const tagMax = 96

// extend grows dst by n bytes (reallocating only when capacity is short) and
// returns the lengthened slice; the added bytes are uninitialized garbage the
// caller overwrites.
func extend(dst []byte, n int) []byte {
	if cap(dst)-len(dst) >= n {
		return dst[:len(dst)+n]
	}
	out := make([]byte, len(dst)+n)
	copy(out, dst)
	return out
}

// CachedPayloadSource is implemented by sources that keep their frame bodies
// materialized. One-shot stills are the motivating case: a reload or session
// restart re-sends the same image, and re-synthesizing a 640×480 still costs
// 153600 bytes of RNG output each time. A nil return means "not cached,
// synthesize" — senders fall back to AppendPayload.
type CachedPayloadSource interface {
	// CachedPayload returns the full payload of frame (index, level), or
	// nil when the source does not cache that frame. The returned slice is
	// owned by the source: callers must not modify it.
	CachedPayload(index, level int) []byte
}

// ForStream builds the appropriate Source for a scenario stream.
func ForStream(s *scenario.Stream) Source {
	switch s.Type {
	case scenario.TypeVideo:
		return NewVideo(s.ID, DefaultVideoLadder())
	case scenario.TypeAudio:
		return NewAudio(s.ID, DefaultAudioLadder())
	case scenario.TypeImage:
		w, h := s.Width, s.Height
		if w == 0 {
			w = 320
		}
		if h == 0 {
			h = 240
		}
		return NewImage(s.ID, w, h)
	default:
		return NewText(s.ID, s.Text)
	}
}

// Package media provides the synthetic media substrate: frame/sample
// generators for video, audio, images and text whose sizes, rates and
// structure match the formats the paper's prototype shipped (MPEG/AVI video,
// PCM/ADPCM/VADPCM audio, GIF/TIFF/BMP/JPEG images), together with the
// quality ladders the Media Stream Quality Converter grades across.
//
// The service machinery manipulates frame timing, sizes and rates — never
// pixel or sample content — so synthetic frames with the right size/rate
// structure exercise exactly the code paths the paper describes. Payload
// bytes are deterministic filler.
package media

import (
	"fmt"
	"time"

	"repro/internal/rtp"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// FrameKind classifies video frames within a group of pictures.
type FrameKind int

// Video frame kinds.
const (
	FrameI FrameKind = iota
	FrameP
	FrameB
	// FrameAudio marks audio sample blocks.
	FrameAudio
	// FrameStill marks one-shot image/text deliveries.
	FrameStill
)

func (k FrameKind) String() string {
	switch k {
	case FrameI:
		return "I"
	case FrameP:
		return "P"
	case FrameB:
		return "B"
	case FrameAudio:
		return "A"
	case FrameStill:
		return "S"
	default:
		return "?"
	}
}

// Frame is one access unit: a video frame, an audio block or a still chunk.
type Frame struct {
	// Index is the frame's ordinal within the stream.
	Index int
	// PTS is the presentation timestamp relative to the stream's start.
	PTS time.Duration
	// Kind is the frame class.
	Kind FrameKind
	// Size is the encoded size in bytes at the quality level requested.
	Size int
	// Marker flags the last packetizable unit of a visual frame.
	Marker bool
	// Level records the quality level the frame was encoded at.
	Level int
}

// Source generates a stream's frames at a requested quality level. Level 0
// is the best quality; higher levels are progressively degraded, down to
// Levels()-1 (the paper's lowest threshold before stream cut-off).
type Source interface {
	// ID returns the stream identifier this source feeds.
	ID() string
	// Levels returns the number of quality levels.
	Levels() int
	// Bitrate returns the nominal rate in bits/s at a level.
	Bitrate(level int) float64
	// FrameInterval returns the nominal spacing between frames.
	FrameInterval() time.Duration
	// FrameAt returns the i-th frame encoded at the given level.
	FrameAt(i int, level int) Frame
	// FramesIn returns the frames with PTS in [from, to).
	FramesIn(from, to time.Duration, level int) []Frame
	// PayloadType returns the RTP payload type at a level (grading can
	// switch codecs, e.g. PCM→ADPCM→VADPCM).
	PayloadType(level int) rtp.PayloadType
	// LevelName names a level for traces ("MPEG cf=2", "ADPCM 16kHz").
	LevelName(level int) string
}

// clampLevel confines level to [0, n-1].
func clampLevel(level, n int) int {
	if level < 0 {
		return 0
	}
	if level >= n {
		return n - 1
	}
	return level
}

// framesIn is the shared FramesIn implementation.
func framesIn(s Source, from, to time.Duration, level int) []Frame {
	if to <= from {
		return nil
	}
	fi := s.FrameInterval()
	if fi <= 0 {
		return nil
	}
	first := int(from / fi)
	if time.Duration(first)*fi < from {
		first++
	}
	var out []Frame
	for i := first; time.Duration(i)*fi < to; i++ {
		out = append(out, s.FrameAt(i, level))
	}
	return out
}

// Payload builds a deterministic filler payload of the given size, tagged
// with the stream id and frame index so tests can verify content integrity
// end to end.
func Payload(id string, index, size int) []byte {
	if size <= 0 {
		size = 1
	}
	buf := make([]byte, size)
	tag := fmt.Sprintf("%s#%d|", id, index)
	copy(buf, tag)
	seed := uint64(index)*2654435761 + uint64(len(id))
	rng := stats.NewRNG(seed)
	for i := len(tag); i < size; i++ {
		buf[i] = byte(rng.Uint64())
	}
	return buf
}

// ForStream builds the appropriate Source for a scenario stream.
func ForStream(s *scenario.Stream) Source {
	switch s.Type {
	case scenario.TypeVideo:
		return NewVideo(s.ID, DefaultVideoLadder())
	case scenario.TypeAudio:
		return NewAudio(s.ID, DefaultAudioLadder())
	case scenario.TypeImage:
		w, h := s.Width, s.Height
		if w == 0 {
			w = 320
		}
		if h == 0 {
			h = 240
		}
		return NewImage(s.ID, w, h)
	default:
		return NewText(s.ID, s.Text)
	}
}

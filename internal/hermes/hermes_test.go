package hermes

import (
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/qos"
	"repro/internal/scenario"
)

func twoServerService(t *testing.T) *Service {
	t.Helper()
	svc, err := NewSimulated(Config{
		Servers: []ServerSpec{
			{Name: "hermes-a", Lessons: MakeCourse("algo", 2, 2, 8*time.Second)},
			{Name: "hermes-b", Lessons: MakeCourse("nets", 1, 2, 8*time.Second)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestMakeCourseStructure(t *testing.T) {
	lessons := MakeCourse("db", 3, 4, 10*time.Second)
	if len(lessons) != 3 {
		t.Fatalf("lessons = %d", len(lessons))
	}
	for i, l := range lessons {
		sc, err := scenario.Parse(l.Source)
		if err != nil {
			t.Fatalf("lesson %d: %v", i, err)
		}
		if got := len(sc.SyncGroups()); got != 4 {
			t.Fatalf("lesson %d sync groups = %d", i, got)
		}
		link := sc.NextTimedLink(0)
		if i < 2 {
			if link == nil || link.Target != lessons[i+1].Name {
				t.Fatalf("lesson %d link = %+v", i, link)
			}
		} else if link != nil {
			t.Fatalf("last lesson has a timed link: %+v", link)
		}
	}
}

func TestEnrollAndBrowseLesson(t *testing.T) {
	svc := twoServerService(t)
	if err := svc.Enroll("maria", "pw", qos.Standard); err != nil {
		t.Fatal(err)
	}
	b := svc.NewBrowser("maria", "pw", client.Options{})
	b.Connect("hermes-a")
	svc.Run(time.Second)
	if lc := b.LastConnect(); lc == nil || !lc.OK {
		t.Fatalf("connect = %+v", lc)
	}
	b.RequestTopics()
	svc.Run(time.Second)
	if got := len(b.Topics()); got != 2 {
		t.Fatalf("topics = %d", got)
	}
	b.RequestDoc("algo-L1")
	svc.Run(5 * time.Second)
	if b.State("hermes-a") != protocol.StViewing {
		t.Fatalf("state = %v", b.State("hermes-a"))
	}
	svc.Run(30 * time.Second)
	rep := b.Player().Report()
	if rep.Streams["algou1v0"].Plays == 0 {
		t.Fatal("first slide video never played")
	}
}

func TestCourseAutoAdvance(t *testing.T) {
	svc := twoServerService(t)
	svc.Enroll("nikos", "pw", qos.Standard)
	b := svc.NewBrowser("nikos", "pw", client.Options{AutoFollowLinks: true})
	b.Connect("hermes-a")
	svc.Run(time.Second)
	b.RequestDoc("algo-L1")
	// Lesson 1 is 16s + link at 16s; run long enough for both units.
	svc.Run(60 * time.Second)
	hist := b.History()
	if len(hist) != 2 || hist[0] != "algo-L1" || hist[1] != "algo-L2" {
		t.Fatalf("history = %v", hist)
	}
}

func TestFederatedSearchAcrossHermesServers(t *testing.T) {
	svc := twoServerService(t)
	svc.Enroll("eva", "pw", qos.Standard)
	b := svc.NewBrowser("eva", "pw", client.Options{})
	b.Connect("hermes-a")
	svc.Run(time.Second)
	b.Search("nets")
	svc.Run(3 * time.Second)
	hits, done := b.SearchResults()
	if !done || len(hits) != 1 || hits[0].Server != "hermes-b" {
		t.Fatalf("hits = %+v done=%v", hits, done)
	}
}

func TestTutorInteraction(t *testing.T) {
	svc := twoServerService(t)
	if err := svc.AskTutor("maria@students.example.gr", "Unit 2 question", "What is a sync group?"); err != nil {
		t.Fatal(err)
	}
	box := svc.Mail.Spool.Mailbox("tutor@cti.gr")
	if len(box) != 1 || !strings.Contains(box[0].Body, "sync group") {
		t.Fatalf("tutor box = %+v", box)
	}
	if err := svc.TutorReply("maria@students.example.gr", "Re: Unit 2 question", "Retrieve lesson algo-L2."); err != nil {
		t.Fatal(err)
	}
	sbox := svc.Mail.Spool.Mailbox("maria@students.example.gr")
	if len(sbox) != 1 || !strings.Contains(sbox[0].Body, "algo-L2") {
		t.Fatalf("student box = %+v", sbox)
	}
}

func TestTwoStudentsConcurrently(t *testing.T) {
	svc := twoServerService(t)
	svc.Enroll("s1", "pw", qos.Standard)
	svc.Enroll("s2", "pw", qos.Premium)
	b1 := svc.NewBrowser("s1", "pw", client.Options{})
	b2 := svc.NewBrowser("s2", "pw", client.Options{})
	if b1.Host == b2.Host {
		t.Fatal("browsers share a host")
	}
	b1.Connect("hermes-a")
	b2.Connect("hermes-a")
	svc.Run(time.Second)
	b1.RequestDoc("algo-L1")
	b2.RequestDoc("algo-L2")
	svc.Run(30 * time.Second)
	r1 := b1.Player().Report()
	r2 := b2.Player().Report()
	if r1.Streams["algou1a0"].Plays == 0 || r2.Streams["algou2a0"].Plays == 0 {
		t.Fatalf("concurrent sessions: %d / %d plays",
			r1.Streams["algou1a0"].Plays, r2.Streams["algou2a0"].Plays)
	}
	if svc.Servers["hermes-a"].Sessions() != 2 {
		t.Fatalf("sessions = %d", svc.Servers["hermes-a"].Sessions())
	}
}

func TestNewSimulatedRejectsBadLesson(t *testing.T) {
	_, err := NewSimulated(Config{
		Servers: []ServerSpec{{Name: "x", Lessons: []LessonSpec{{Name: "bad", Source: "<broken"}}}},
	})
	if err == nil {
		t.Fatal("bad lesson accepted")
	}
}

func TestCustomLink(t *testing.T) {
	svc, err := NewSimulated(Config{
		Servers: []ServerSpec{{Name: "a", Lessons: MakeCourse("c", 1, 1, 5*time.Second)}},
		Link:    netsim.DefaultWAN(),
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Enroll("u", "pw", qos.Economy)
	b := svc.NewBrowser("u", "pw", client.Options{})
	b.Connect("a")
	svc.Run(2 * time.Second)
	if lc := b.LastConnect(); lc == nil || !lc.OK {
		t.Fatalf("WAN connect failed: %+v", lc)
	}
}

func TestTimedLinkAcrossServers(t *testing.T) {
	// A lesson on server A whose timed sequential link names server B:
	// the browser must suspend A, connect to B and continue there without
	// user involvement.
	partOne := `<TITLE>part one</TITLE>
<AU SOURCE=au/a ID=p1a STARTIME=0 DURATION=4> </AU>
<HLINK HREF=part-two HOST=hermes-b AT=5 KIND=SEQ> </HLINK>`
	partTwo := `<TITLE>part two</TITLE>
<AU SOURCE=au/b ID=p2a STARTIME=0 DURATION=4> </AU>`
	svc, err := NewSimulated(Config{
		Servers: []ServerSpec{
			{Name: "hermes-a", Lessons: []LessonSpec{{Name: "part-one", Source: partOne}}},
			{Name: "hermes-b", Lessons: []LessonSpec{{Name: "part-two", Source: partTwo}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Enroll("u", "pw", qos.Standard)
	b := svc.NewBrowser("u", "pw", client.Options{AutoFollowLinks: true})
	b.Connect("hermes-a")
	svc.Run(time.Second)
	b.RequestDoc("part-one")
	svc.Run(20 * time.Second)
	hist := b.History()
	if len(hist) != 2 || hist[1] != "part-two" {
		t.Fatalf("history = %v", hist)
	}
	// The old connection was suspended, not dropped, and holds a token.
	if b.State("hermes-a") != protocol.StSuspended {
		t.Fatalf("hermes-a state = %v", b.State("hermes-a"))
	}
	if b.SuspendToken("hermes-a") == "" {
		t.Fatal("no resume token from the auto-suspend")
	}
	// Part two actually played on server B.
	rep := b.Player().Report()
	if rep.Streams["p2a"].Plays < rep.Streams["p2a"].Expected*8/10 {
		t.Fatalf("part-two plays = %d/%d", rep.Streams["p2a"].Plays, rep.Streams["p2a"].Expected)
	}
	// Back returns across servers within the grace period.
	if !b.Back() {
		t.Fatal("back unavailable")
	}
	svc.Run(10 * time.Second)
	hist = b.History()
	if hist[len(hist)-1] != "part-one" {
		t.Fatalf("after back, history = %v", hist)
	}
}

// Package hermes assembles the complete distance-education service of §6 of
// the paper: a federation of multimedia servers holding lessons, the shared
// database of authorized users, the mail service for asynchronous
// tutor/student interaction, and browser (client) instances — all wired over
// a simulated broadband network on a virtual clock, or over a real network
// in the cmd/hermesd and cmd/hermes binaries.
package hermes

import (
	"fmt"
	"time"

	"repro/internal/auth"
	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/hml"
	"repro/internal/mail"
	"repro/internal/netsim"
	"repro/internal/qos"
	"repro/internal/server"
)

// LessonSpec is one lesson stored on a server.
type LessonSpec struct {
	Name        string
	Source      string
	Description string
}

// ServerSpec configures one Hermes server of the federation.
type ServerSpec struct {
	Name    string
	Lessons []LessonSpec
	// Options tunes the server (zero value = defaults).
	Options server.Options
}

// Config configures a simulated deployment.
type Config struct {
	Servers []ServerSpec
	// Link is the default network link between every host pair.
	Link netsim.LinkConfig
	// Seed drives the network's randomness.
	Seed uint64
}

// Service is a running simulated Hermes deployment.
type Service struct {
	Clk     *clock.Virtual
	Net     *netsim.Network
	Users   *auth.DB
	Servers map[string]*server.Server
	Mail    *mail.Server

	clients int
}

// NewSimulated builds the deployment on a fresh virtual clock.
func NewSimulated(cfg Config) (*Service, error) {
	clk := clock.NewSim()
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	net := netsim.New(clk, cfg.Seed)
	link := cfg.Link
	if link.Bandwidth == 0 && link.Delay == 0 {
		link = netsim.DefaultLAN()
	}
	net.SetDefaultLink(link)
	svc := &Service{
		Clk:     clk,
		Net:     net,
		Users:   auth.NewDB(),
		Servers: map[string]*server.Server{},
		Mail:    mail.NewServer("hermes.cti.gr"),
	}
	var names []string
	for _, spec := range cfg.Servers {
		db := server.NewDatabase()
		for _, l := range spec.Lessons {
			if err := db.Put(l.Name, l.Source, l.Description); err != nil {
				return nil, fmt.Errorf("hermes: lesson %s/%s: %w", spec.Name, l.Name, err)
			}
		}
		srv, err := server.New(spec.Name, clk, net, svc.Users, db, spec.Options)
		if err != nil {
			return nil, fmt.Errorf("hermes: server %s: %w", spec.Name, err)
		}
		svc.Servers[spec.Name] = srv
		names = append(names, spec.Name)
	}
	for _, n := range names {
		var peers []string
		for _, p := range names {
			if p != n {
				peers = append(peers, p)
			}
		}
		svc.Servers[n].SetPeers(peers)
	}
	return svc, nil
}

// Enroll subscribes a student directly into the central user database (the
// out-of-band path; the in-band subscription form also works via the
// browser).
func (s *Service) Enroll(name, password string, class qos.PricingClass) error {
	return s.Users.Subscribe(auth.User{
		Name: name, Password: password, RealName: name,
		Email: name + "@students.example.gr", Class: class,
	}, s.Clk.Now())
}

// NewBrowser creates a browser host for a student. Each browser gets its own
// host name and port space.
func (s *Service) NewBrowser(user, password string, opts client.Options) *client.Client {
	s.clients++
	opts.User = user
	opts.Password = password
	host := fmt.Sprintf("pc-%d", s.clients)
	// The simulated network's Listen never fails, so the error is nil.
	c, _ := client.New(host, s.Clk, s.Net, opts)
	return c
}

// Run advances the simulation.
func (s *Service) Run(d time.Duration) { s.Clk.RunFor(d) }

// AskTutor delivers a student question to the tutor's mailbox via the SMTP
// dialect (the asynchronous interaction of §6.2.4).
func (s *Service) AskTutor(from, subject, body string) error {
	_, err := mail.Send(s.Mail, &mail.Message{
		From: from, To: "tutor@cti.gr", Subject: subject,
		Date: s.Clk.Now(), Body: body,
	})
	return err
}

// TutorReply sends the tutor's answer back to a student.
func (s *Service) TutorReply(to, subject, body string) error {
	_, err := mail.Send(s.Mail, &mail.Message{
		From: "tutor@cti.gr", To: to, Subject: subject,
		Date: s.Clk.Now(), Body: body,
	})
	return err
}

// MakeCourse builds a course of n lessons, each a multi-slide presentation
// whose final timed sequential link leads to the next lesson; the last
// lesson links nowhere. Lesson i is named "<course>-L<i>".
func MakeCourse(course string, lessons, slides int, slide time.Duration) []LessonSpec {
	var out []LessonSpec
	for i := 1; i <= lessons; i++ {
		name := fmt.Sprintf("%s-L%d", course, i)
		src := courseLesson(course, i, lessons, slides, slide)
		out = append(out, LessonSpec{
			Name:        name,
			Source:      src,
			Description: fmt.Sprintf("%s, unit %d of %d", course, i, lessons),
		})
	}
	return out
}

func courseLesson(course string, i, total, slides int, slide time.Duration) string {
	src := fmt.Sprintf("<TITLE>%s unit %d</TITLE>\n<H1>%s — unit %d</H1>\n<PAR>\n", course, i, course, i)
	src += fmt.Sprintf("<TEXT>Unit %d of the %s course. <B>Slides with narration follow.</B></TEXT>\n", i, course)
	for sNum := 0; sNum < slides; sNum++ {
		at := time.Duration(sNum) * slide
		src += fmt.Sprintf("<IMG SOURCE=img/%s-%d-%d ID=%su%ds%d STARTIME=%s DURATION=%s WIDTH=640 HEIGHT=480> </IMG>\n",
			course, i, sNum, course, i, sNum, hml.FormatTime(at), hml.FormatTime(slide))
		src += fmt.Sprintf("<AU_VI SOURCE=au/%s-%d-%d SOURCE=vi/%s-%d-%d ID=%su%da%d ID=%su%dv%d STARTIME=%s DURATION=%s> </AU_VI>\n",
			course, i, sNum, course, i, sNum, course, i, sNum, course, i, sNum,
			hml.FormatTime(at), hml.FormatTime(slide-time.Second))
	}
	if i < total {
		end := time.Duration(slides) * slide
		src += fmt.Sprintf("<SEP>\n<HLINK HREF=%s-L%d AT=%s KIND=SEQ NOTE=\"next unit\"> </HLINK>\n",
			course, i+1, hml.FormatTime(end))
	}
	return src
}

package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64-seeded xorshift*), used by the network simulator and workload
// generators so every experiment run is reproducible from its seed without
// depending on math/rand's global state or version-specific streams.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (a zero seed is remapped, since
// xorshift has a zero fixed point).
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state.
func (r *RNG) Seed(seed uint64) {
	// SplitMix64 scramble so nearby seeds give unrelated streams.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	r.state = z
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*r.Float64() }

// Norm returns a normally distributed value with the given mean and standard
// deviation (Box–Muller transform).
func (r *RNG) Norm(mean, std float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mean + std*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Split derives an independent generator, useful for giving each simulated
// link or workload its own stream while preserving reproducibility.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

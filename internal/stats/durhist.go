package stats

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// DurationHistogram counts duration observations into fixed buckets with
// lock-free atomic updates, so hot paths (playout ticks, transport writes)
// can record latencies without external locking. Quantiles are estimated by
// linear interpolation inside the bucket holding the target rank, which is
// the usual fixed-bucket trade-off: cheap concurrent writes, bounded error
// set by the bucket bounds.
//
// Concurrent Observe calls are individually atomic but not grouped, so a
// snapshot taken mid-write may be off by the in-flight observation — fine
// for monitoring, not for accounting.
type DurationHistogram struct {
	bounds []time.Duration // ascending upper bounds; immutable after New
	counts []atomic.Int64  // len(bounds)+1: last is the overflow bucket
	n      atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds high-water
	minp1  atomic.Int64 // nanoseconds low-water plus one; 0 = no observations
}

// DefaultLatencyBounds covers 1ms..10s in roughly 1-2-5 steps — suitable
// for playout lateness, queueing delay and control round trips.
func DefaultLatencyBounds() []time.Duration {
	return []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
		time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
	}
}

// MicroLatencyBounds covers 10µs..100ms in roughly 1-2-5 steps — suitable
// for in-process service times (emit path, control handlers, lock waits,
// sweep ticks) whose whole distribution sits below DefaultLatencyBounds'
// first bucket.
func MicroLatencyBounds() []time.Duration {
	return []time.Duration{
		10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
		100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
		time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond,
	}
}

// NewDurationHistogram builds a histogram over the given ascending bucket
// upper bounds; with no bounds it uses DefaultLatencyBounds.
func NewDurationHistogram(bounds ...time.Duration) *DurationHistogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds()
	}
	bs := make([]time.Duration, len(bounds))
	copy(bs, bounds)
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			panic(fmt.Sprintf("stats: histogram bounds not ascending: %v", bounds))
		}
	}
	return &DurationHistogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one duration (negative observations clamp to zero).
func (h *DurationHistogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	for {
		cur := h.minp1.Load()
		if (cur != 0 && int64(d)+1 >= cur) || h.minp1.CompareAndSwap(cur, int64(d)+1) {
			break
		}
	}
}

// N returns the number of observations.
func (h *DurationHistogram) N() int64 { return h.n.Load() }

// Mean returns the mean observation (0 when empty).
func (h *DurationHistogram) Mean() time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observation (0 when empty).
func (h *DurationHistogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Min returns the smallest observation (0 when empty).
func (h *DurationHistogram) Min() time.Duration {
	v := h.minp1.Load()
	if v == 0 {
		return 0
	}
	return time.Duration(v - 1)
}

// AddTo folds this histogram's buckets and aggregates into dst, which must
// have identical bounds. It lets per-shard histograms be merged into one
// distribution for quantile reporting; the merge is not atomic with respect
// to concurrent observes (monitoring semantics, like Quantile).
func (h *DurationHistogram) AddTo(dst *DurationHistogram) {
	if len(dst.bounds) != len(h.bounds) {
		panic("stats: AddTo between histograms with different bounds")
	}
	for i := range h.bounds {
		if dst.bounds[i] != h.bounds[i] {
			panic("stats: AddTo between histograms with different bounds")
		}
	}
	for i := range h.counts {
		dst.counts[i].Add(h.counts[i].Load())
	}
	dst.n.Add(h.n.Load())
	dst.sum.Add(h.sum.Load())
	if m := h.max.Load(); m > dst.max.Load() {
		dst.max.Store(m)
	}
	if m := h.minp1.Load(); m != 0 {
		if cur := dst.minp1.Load(); cur == 0 || m < cur {
			dst.minp1.Store(m)
		}
	}
}

// Bucket returns bucket i's count; i == len(Bounds()) is the overflow
// bucket (observations above the last bound).
func (h *DurationHistogram) Bucket(i int) int64 { return h.counts[i].Load() }

// Bounds returns the bucket upper bounds.
func (h *DurationHistogram) Bounds() []time.Duration {
	out := make([]time.Duration, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by interpolating inside
// the bucket holding the target rank. Observations in the overflow bucket
// report as the last bound (a deliberate underestimate: the histogram does
// not know how far beyond it they went, beyond what Max reports).
func (h *DurationHistogram) Quantile(q float64) time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(n)
	cum := 0.0
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= target {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := time.Duration(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (target - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// P50, P95 and P99 are the monitoring quantiles.
func (h *DurationHistogram) P50() time.Duration { return h.Quantile(0.50) }

// P95 returns the 95th percentile estimate.
func (h *DurationHistogram) P95() time.Duration { return h.Quantile(0.95) }

// P99 returns the 99th percentile estimate.
func (h *DurationHistogram) P99() time.Duration { return h.Quantile(0.99) }

// String renders a one-line summary (count, mean and the three quantiles).
func (h *DurationHistogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1fms p50=%.1fms p95=%.1fms p99=%.1fms min=%.1fms max=%.1fms",
		h.N(),
		float64(h.Mean())/float64(time.Millisecond),
		float64(h.P50())/float64(time.Millisecond),
		float64(h.P95())/float64(time.Millisecond),
		float64(h.P99())/float64(time.Millisecond),
		float64(h.Min())/float64(time.Millisecond),
		float64(h.Max())/float64(time.Millisecond))
	return b.String()
}

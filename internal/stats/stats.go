// Package stats provides the small measurement toolkit used by the
// experiment harness: streaming summaries, exact-percentile samples, fixed
// width histograms, time series and plain-text table rendering.
//
// Everything here is deliberately dependency-free and deterministic so that
// experiment output is reproducible byte-for-byte.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary accumulates a stream of float64 observations and reports count,
// mean, variance, min and max in O(1) space (Welford's algorithm).
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddDuration records a duration observation in milliseconds.
func (s *Summary) AddDuration(d time.Duration) { s.Add(float64(d) / float64(time.Millisecond)) }

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the running mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the sample variance (0 for fewer than two observations).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Sample retains observations for percentile queries. By default it keeps
// every observation (exact percentiles, O(N) memory). Reservoir switches it
// to a fixed-capacity uniform reservoir (Vitter's Algorithm R): memory is
// bounded at the cap while percentiles remain an unbiased estimate of the
// full stream — the mode the network simulator uses for per-link delay
// records, where a 100k-client run would otherwise retain one float per
// packet forever.
type Sample struct {
	xs     []float64
	sorted bool
	// Reservoir mode: cap > 0 bounds len(xs); seen counts every observation
	// ever offered; rng drives the replacement draws deterministically.
	cap  int
	seen int
	rng  *RNG
}

// Reservoir switches the sample (which must still be empty) to fixed-cap
// reservoir mode. The RNG makes replacement deterministic per seed; a nil
// rng gets a fixed-seed generator.
func (s *Sample) Reservoir(cap int, rng *RNG) {
	if len(s.xs) > 0 {
		panic("stats: Reservoir must be set before observations arrive")
	}
	if cap < 1 {
		cap = 1
	}
	if rng == nil {
		rng = NewRNG(0x5eed)
	}
	s.cap, s.rng = cap, rng
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.seen++
	if s.cap > 0 && len(s.xs) >= s.cap {
		// Keep each of the seen observations with equal probability cap/seen
		// by overwriting a uniformly chosen slot (Algorithm R).
		if j := s.rng.Intn(s.seen); j < s.cap {
			s.xs[j] = x
			s.sorted = false
		}
		return
	}
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddDuration records a duration observation in milliseconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(float64(d) / float64(time.Millisecond)) }

// N returns the number of observations offered (not the number retained;
// the two differ only once a reservoir overflows its cap).
func (s *Sample) N() int { return s.seen }

// Retained returns the number of observations currently held.
func (s *Sample) Retained() int { return len(s.xs) }

// Clone returns an independent copy safe to sort and query while the
// original keeps accumulating.
func (s *Sample) Clone() Sample {
	out := *s
	out.xs = append([]float64(nil), s.xs...)
	out.rng = nil
	out.cap = 0
	return out
}

// Mean returns the arithmetic mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks. It returns 0 when empty.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 { return s.Percentile(0) }

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 { return s.Percentile(100) }

// Values returns a copy of the observations in insertion order is not
// guaranteed; the slice is sorted ascending.
func (s *Sample) Values() []float64 {
	s.sort()
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Histogram counts observations into fixed-width bins over [Lo, Hi); values
// outside the range land in the under/overflow counters.
type Histogram struct {
	Lo, Hi float64
	bins   []int
	under  int
	over   int
	n      int
	sum    float64
}

// NewHistogram builds a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, bins: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.n++
	h.sum += x
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.bins)))
		if i == len(h.bins) { // x == Hi boundary via float rounding
			i--
		}
		h.bins[i]++
	}
}

// N returns the number of observations.
func (h *Histogram) N() int { return h.n }

// Mean returns the mean of all observations, including out-of-range ones.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int { return h.bins[i] }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.bins) }

// Underflow and Overflow report out-of-range counts.
func (h *Histogram) Underflow() int { return h.under }

// Overflow reports the number of observations at or above Hi.
func (h *Histogram) Overflow() int { return h.over }

// String renders a compact ASCII bar chart of the histogram.
func (h *Histogram) String() string {
	var b strings.Builder
	maxC := 1
	for _, c := range h.bins {
		if c > maxC {
			maxC = c
		}
	}
	width := (h.Hi - h.Lo) / float64(len(h.bins))
	for i, c := range h.bins {
		bar := strings.Repeat("#", c*40/maxC)
		fmt.Fprintf(&b, "[%8.2f,%8.2f) %6d %s\n", h.Lo+float64(i)*width, h.Lo+float64(i+1)*width, c, bar)
	}
	if h.under > 0 {
		fmt.Fprintf(&b, "underflow %d\n", h.under)
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "overflow %d\n", h.over)
	}
	return b.String()
}

// Point is one time-stamped observation in a Series.
type Point struct {
	T time.Duration // offset from the series origin
	V float64
}

// Series is an append-only time series of observations, used to record
// quality-level and occupancy trajectories during experiments.
type Series struct {
	Name   string
	points []Point
}

// Add appends an observation at offset t.
func (s *Series) Add(t time.Duration, v float64) { s.points = append(s.points, Point{t, v}) }

// Points returns the recorded points in insertion order.
func (s *Series) Points() []Point { return s.points }

// N returns the number of points.
func (s *Series) N() int { return len(s.points) }

// Last returns the most recent point; ok is false when empty.
func (s *Series) Last() (Point, bool) {
	if len(s.points) == 0 {
		return Point{}, false
	}
	return s.points[len(s.points)-1], true
}

// At returns the value in effect at offset t (the last point with T ≤ t);
// ok is false when t precedes the first point.
func (s *Series) At(t time.Duration) (float64, bool) {
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].T > t })
	if i == 0 {
		return 0, false
	}
	return s.points[i-1].V, true
}

// TimeWeightedMean integrates the step function described by the series over
// [0, horizon] and returns the mean value. Empty series yield 0.
func (s *Series) TimeWeightedMean(horizon time.Duration) float64 {
	if len(s.points) == 0 || horizon <= 0 {
		return 0
	}
	var acc float64
	for i, p := range s.points {
		if p.T >= horizon {
			break
		}
		end := horizon
		if i+1 < len(s.points) && s.points[i+1].T < horizon {
			end = s.points[i+1].T
		}
		acc += p.V * float64(end-p.T)
	}
	// Before the first point the value is taken as the first value.
	if s.points[0].T > 0 {
		first := s.points[0].T
		if first > horizon {
			first = horizon
		}
		acc += s.points[0].V * float64(first)
	}
	return acc / float64(horizon)
}

// Table renders aligned plain-text tables for experiment output.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.1fms", float64(v)/float64(time.Millisecond))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(t.headers) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

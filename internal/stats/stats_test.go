package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := s.Std(); math.Abs(got-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("Std = %v", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.N() != 0 {
		t.Fatal("empty summary must report zeros")
	}
	s.Add(3.5)
	if s.Var() != 0 {
		t.Fatal("single observation variance must be 0")
	}
	if s.Min() != 3.5 || s.Max() != 3.5 {
		t.Fatal("single observation min/max wrong")
	}
}

func TestSummaryAddDuration(t *testing.T) {
	var s Summary
	s.AddDuration(1500 * time.Microsecond)
	if got := s.Mean(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("Mean = %v ms, want 1.5", got)
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct {
		p, want float64
	}{{0, 1}, {100, 100}, {50, 50.5}, {95, 95.05}}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Median = %v, want 50.5", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 || s.Mean() != 0 || s.N() != 0 {
		t.Fatal("empty sample must report zeros")
	}
}

func TestSampleInterleavedAddAndQuery(t *testing.T) {
	var s Sample
	s.Add(10)
	s.Add(0)
	if s.Min() != 0 {
		t.Fatal("min wrong")
	}
	s.Add(-5) // after a query; must re-sort
	if s.Min() != -5 || s.Max() != 10 {
		t.Fatalf("Min/Max = %v/%v after re-add", s.Min(), s.Max())
	}
}

func TestQuickPercentileBounds(t *testing.T) {
	f := func(xs []float64, p float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		p = math.Mod(math.Abs(p), 101)
		var s Sample
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			s.Add(x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		got := s.Percentile(p)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Underflow() != 1 {
		t.Fatalf("underflow = %d, want 1", h.Underflow())
	}
	if h.Overflow() != 2 {
		t.Fatalf("overflow = %d, want 2", h.Overflow())
	}
	if h.Bin(0) != 2 { // 0 and 1.9
		t.Fatalf("bin0 = %d, want 2", h.Bin(0))
	}
	if h.Bin(1) != 1 { // 2
		t.Fatalf("bin1 = %d, want 1", h.Bin(1))
	}
	if h.Bin(4) != 1 { // 9.99
		t.Fatalf("bin4 = %d, want 1", h.Bin(4))
	}
	if h.N() != 7 {
		t.Fatalf("N = %d, want 7", h.N())
	}
}

func TestHistogramDegenerateArgs(t *testing.T) {
	h := NewHistogram(5, 5, 0) // invalid hi and bins get repaired
	h.Add(5)
	if h.N() != 1 || h.Bins() != 1 {
		t.Fatal("degenerate histogram not repaired")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	out := h.String()
	if !strings.Contains(out, "#") {
		t.Fatalf("missing bars in %q", out)
	}
}

func TestSeriesAtAndLast(t *testing.T) {
	var s Series
	if _, ok := s.Last(); ok {
		t.Fatal("Last on empty series")
	}
	if _, ok := s.At(time.Second); ok {
		t.Fatal("At on empty series")
	}
	s.Add(0, 3)
	s.Add(10*time.Second, 2)
	s.Add(20*time.Second, 1)
	if v, ok := s.At(15 * time.Second); !ok || v != 2 {
		t.Fatalf("At(15s) = %v,%v; want 2,true", v, ok)
	}
	if v, ok := s.At(0); !ok || v != 3 {
		t.Fatalf("At(0) = %v,%v; want 3,true", v, ok)
	}
	p, ok := s.Last()
	if !ok || p.V != 1 {
		t.Fatalf("Last = %v,%v", p, ok)
	}
}

func TestSeriesTimeWeightedMean(t *testing.T) {
	var s Series
	s.Add(0, 4)
	s.Add(10*time.Second, 2)
	// 10s at 4, then 10s at 2 → mean 3 over 20s.
	if got := s.TimeWeightedMean(20 * time.Second); math.Abs(got-3) > 1e-12 {
		t.Fatalf("TWM = %v, want 3", got)
	}
	// Horizon inside the first segment.
	if got := s.TimeWeightedMean(5 * time.Second); math.Abs(got-4) > 1e-12 {
		t.Fatalf("TWM(5s) = %v, want 4", got)
	}
}

func TestSeriesTimeWeightedMeanLateStart(t *testing.T) {
	var s Series
	s.Add(5*time.Second, 10)
	// Value before the first point counts as the first value.
	if got := s.TimeWeightedMean(10 * time.Second); math.Abs(got-10) > 1e-12 {
		t.Fatalf("TWM = %v, want 10", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value", "ms")
	tb.AddRow("alpha", 3.14159, 1500*time.Microsecond)
	tb.AddRow("b", 2, time.Second)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "3.14") {
		t.Fatalf("float not formatted: %q", out)
	}
	if !strings.Contains(out, "1.5ms") || !strings.Contains(out, "1000.0ms") {
		t.Fatalf("durations not formatted: %q", out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d, want 2", tb.Rows())
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("nearby seeds correlated: %d/100 collisions", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGUniformMoments(t *testing.T) {
	r := NewRNG(11)
	var s Summary
	for i := 0; i < 50000; i++ {
		s.Add(r.Uniform(2, 4))
	}
	if math.Abs(s.Mean()-3) > 0.02 {
		t.Fatalf("uniform mean = %v, want ≈3", s.Mean())
	}
	if s.Min() < 2 || s.Max() >= 4 {
		t.Fatalf("uniform range [%v,%v] outside [2,4)", s.Min(), s.Max())
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(12)
	var s Summary
	for i := 0; i < 50000; i++ {
		s.Add(r.Norm(10, 2))
	}
	if math.Abs(s.Mean()-10) > 0.05 {
		t.Fatalf("norm mean = %v, want ≈10", s.Mean())
	}
	if math.Abs(s.Std()-2) > 0.05 {
		t.Fatalf("norm std = %v, want ≈2", s.Std())
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(13)
	var s Summary
	for i := 0; i < 50000; i++ {
		s.Add(r.Exp(5))
	}
	if math.Abs(s.Mean()-5) > 0.15 {
		t.Fatalf("exp mean = %v, want ≈5", s.Mean())
	}
	if s.Min() < 0 {
		t.Fatal("exp produced negative value")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(99)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams correlated: %d/100", same)
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(5)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", frac)
	}
}

func TestSampleAddDurationAndValues(t *testing.T) {
	var s Sample
	s.AddDuration(2500 * time.Microsecond)
	s.Add(1)
	if got := s.Mean(); math.Abs(got-1.75) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	vals := s.Values()
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 2.5 {
		t.Fatalf("values = %v", vals)
	}
	// Values returns a copy.
	vals[0] = 99
	if s.Min() == 99 {
		t.Fatal("Values aliases internal storage")
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(0, 10, 2)
	if h.Mean() != 0 {
		t.Fatal("empty mean")
	}
	h.Add(2)
	h.Add(4)
	h.Add(100) // overflow still counts toward the mean
	if got := h.Mean(); math.Abs(got-106.0/3) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
}

func TestSeriesPointsAndN(t *testing.T) {
	var s Series
	s.Add(time.Second, 1)
	s.Add(2*time.Second, 2)
	pts := s.Points()
	if s.N() != 2 || len(pts) != 2 || pts[1].V != 2 {
		t.Fatalf("points = %v", pts)
	}
}

func TestRNGIntnUniformity(t *testing.T) {
	r := NewRNG(77)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[r.Intn(7)]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("bucket %d = %d, want ≈10000", i, c)
		}
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
			c.Add(5)
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*1000+8*5 {
		t.Fatalf("counter = %d", got)
	}
}

func TestHighWaterConcurrent(t *testing.T) {
	var h HighWater
	if h.Value() != 0 {
		t.Fatal("zero value not 0")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(int64(i*1000 + j))
			}
		}(i)
	}
	wg.Wait()
	if got := h.Value(); got != 7*1000+499 {
		t.Fatalf("high water = %d, want %d", got, 7*1000+499)
	}
	h.Observe(3) // lower values never regress the mark
	if h.Value() != 7*1000+499 {
		t.Fatal("mark regressed")
	}
}

// TestReservoirQuantileFidelity pins the reservoir-mode contract the netsim
// link-delay records rely on: memory stays at the cap while quantile
// estimates track the exact stream closely. 200k observations from a skewed
// (exponential-ish) distribution are fed to an exact sample and a 4096-cap
// reservoir; p50/p90/p99 must agree within a few percent of the spread.
func TestReservoirQuantileFidelity(t *testing.T) {
	const n = 200_000
	const cap = 4096
	src := NewRNG(42)
	var exact, res Sample
	res.Reservoir(cap, NewRNG(7))
	for i := 0; i < n; i++ {
		x := src.Exp(100) // mean-100 exponential: long right tail
		exact.Add(x)
		res.Add(x)
	}
	if res.Retained() != cap {
		t.Fatalf("reservoir retained %d, want cap %d", res.Retained(), cap)
	}
	if res.N() != n {
		t.Fatalf("reservoir N() = %d, want %d offered", res.N(), n)
	}
	// A reservoir quantile is a random variable; the right fidelity claim is
	// in quantile space: the estimate of pX must land between the exact
	// values of nearby quantiles (±2 quantile points around the target,
	// ~3 standard errors at cap 4096).
	for _, p := range []float64{50, 90, 99} {
		lo, hi := exact.Percentile(p-2), exact.Percentile(p+0.7)
		if r := res.Percentile(p); r < lo || r > hi {
			t.Fatalf("p%.0f: reservoir %.2f outside exact [p%.1f=%.2f, p%.1f=%.2f]",
				p, r, p-2, lo, p+0.7, hi)
		}
	}
}

// TestReservoirDeterministic: same seed, same stream ⇒ same retained set.
func TestReservoirDeterministic(t *testing.T) {
	run := func() []float64 {
		var s Sample
		s.Reservoir(64, NewRNG(99))
		src := NewRNG(5)
		for i := 0; i < 10_000; i++ {
			s.Add(src.Float64())
		}
		return s.Values()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("retained sets diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSampleBelowCapIsExact: a reservoir that never overflows behaves
// exactly like a plain sample.
func TestSampleBelowCapIsExact(t *testing.T) {
	var plain, res Sample
	res.Reservoir(100, NewRNG(1))
	for i := 10; i > 0; i-- {
		plain.Add(float64(i))
		res.Add(float64(i))
	}
	if plain.Median() != res.Median() || plain.Min() != res.Min() || plain.Max() != res.Max() {
		t.Fatal("under-cap reservoir diverged from exact sample")
	}
	cl := res.Clone()
	res.Add(11)
	if cl.N() != 10 || cl.Max() != 10 {
		t.Fatalf("clone not independent: N=%d max=%v", cl.N(), cl.Max())
	}
}

package stats

import "sync/atomic"

// Counter is a concurrency-safe monotonically increasing counter, usable
// from hot paths without external locking. The zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// HighWater tracks the maximum value ever observed (a high-water mark,
// e.g. peak queue depth). The zero value is ready to use.
type HighWater struct {
	v atomic.Int64
}

// Observe records x, raising the mark if it is a new maximum.
func (h *HighWater) Observe(x int64) {
	for {
		cur := h.v.Load()
		if x <= cur || h.v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// Value returns the high-water mark (0 when nothing positive was observed).
func (h *HighWater) Value() int64 { return h.v.Load() }

// Gauge is a concurrency-safe instantaneous value (e.g. live sessions,
// reserved bandwidth). Unlike Counter it may move in both directions. The
// zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores x.
func (g *Gauge) Set(x int64) { g.v.Store(x) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

package stats

import (
	"sync"
	"testing"
	"time"
)

func TestGauge(t *testing.T) {
	cases := []struct {
		name string
		ops  func(g *Gauge)
		want int64
	}{
		{"zero value", func(g *Gauge) {}, 0},
		{"set", func(g *Gauge) { g.Set(42) }, 42},
		{"set overrides", func(g *Gauge) { g.Set(42); g.Set(7) }, 7},
		{"add both directions", func(g *Gauge) { g.Add(10); g.Add(-3) }, 7},
		{"inc dec", func(g *Gauge) { g.Inc(); g.Inc(); g.Dec() }, 1},
		{"negative", func(g *Gauge) { g.Dec(); g.Dec() }, -2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var g Gauge
			c.ops(&g)
			if got := g.Value(); got != c.want {
				t.Fatalf("value = %d, want %d", got, c.want)
			}
		})
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Inc()
				g.Add(2)
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != workers*per*2 {
		t.Fatalf("value = %d, want %d", got, workers*per*2)
	}
}

func TestDurationHistogramBuckets(t *testing.T) {
	cases := []struct {
		name   string
		bounds []time.Duration
		obs    []time.Duration
		bucket map[int]int64 // index → expected count
		n      int64
	}{
		{
			name:   "boundaries are inclusive upper bounds",
			bounds: []time.Duration{10 * time.Millisecond, 100 * time.Millisecond},
			obs:    []time.Duration{time.Millisecond, 10 * time.Millisecond, 11 * time.Millisecond, 100 * time.Millisecond, time.Second},
			bucket: map[int]int64{0: 2, 1: 2, 2: 1},
			n:      5,
		},
		{
			name:   "negative clamps to zero",
			bounds: []time.Duration{time.Millisecond},
			obs:    []time.Duration{-time.Second},
			bucket: map[int]int64{0: 1},
			n:      1,
		},
		{
			name:   "all overflow",
			bounds: []time.Duration{time.Millisecond},
			obs:    []time.Duration{time.Second, 2 * time.Second},
			bucket: map[int]int64{0: 0, 1: 2},
			n:      2,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := NewDurationHistogram(c.bounds...)
			for _, d := range c.obs {
				h.Observe(d)
			}
			if h.N() != c.n {
				t.Fatalf("N = %d, want %d", h.N(), c.n)
			}
			for i, want := range c.bucket {
				if got := h.Bucket(i); got != want {
					t.Errorf("bucket %d = %d, want %d", i, got, want)
				}
			}
		})
	}
}

func TestDurationHistogramQuantiles(t *testing.T) {
	h := NewDurationHistogram(
		10*time.Millisecond, 20*time.Millisecond, 50*time.Millisecond, 100*time.Millisecond)
	// 100 observations spread 1..100ms: quantiles should land near q*100ms
	// (within one bucket's width).
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	cases := []struct {
		q        float64
		lo, hi   time.Duration
		sanityGE time.Duration
	}{
		{0.50, 40 * time.Millisecond, 60 * time.Millisecond, 0},
		{0.95, 90 * time.Millisecond, 100 * time.Millisecond, 0},
		{0.99, 95 * time.Millisecond, 100 * time.Millisecond, 0},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if got < c.lo || got > c.hi {
			t.Errorf("q%.0f = %v, want in [%v,%v]", c.q*100, got, c.lo, c.hi)
		}
	}
	if p50, p95, p99 := h.P50(), h.P95(), h.P99(); p50 > p95 || p95 > p99 {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	if m := h.Mean(); m < 45*time.Millisecond || m > 56*time.Millisecond {
		t.Fatalf("mean = %v", m)
	}
}

func TestDurationHistogramEmptyAndOverflowQuantile(t *testing.T) {
	h := NewDurationHistogram(time.Millisecond, 2*time.Millisecond)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.Observe(time.Hour) // overflow
	// Overflow observations report as the last bound; Max keeps the truth.
	if got := h.Quantile(0.99); got != 2*time.Millisecond {
		t.Fatalf("overflow quantile = %v", got)
	}
	if h.Max() != time.Hour {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestDurationHistogramConcurrent(t *testing.T) {
	h := NewDurationHistogram()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*per+i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.N() != workers*per {
		t.Fatalf("N = %d, want %d", h.N(), workers*per)
	}
	total := int64(0)
	for i := 0; i <= len(h.Bounds()); i++ {
		total += h.Bucket(i)
	}
	if total != workers*per {
		t.Fatalf("bucket sum = %d, want %d", total, workers*per)
	}
	if h.Max() != time.Duration(workers*per-1)*time.Microsecond {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestDurationHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-ascending bounds")
		}
	}()
	NewDurationHistogram(2*time.Millisecond, time.Millisecond)
}

func TestDurationHistogramMinTracking(t *testing.T) {
	h := NewDurationHistogram()
	if got := h.Min(); got != 0 {
		t.Fatalf("empty min = %v, want 0", got)
	}
	h.Observe(30 * time.Millisecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(80 * time.Millisecond)
	if got := h.Min(); got != 5*time.Millisecond {
		t.Fatalf("min = %v, want 5ms", got)
	}
	if got := h.Max(); got != 80*time.Millisecond {
		t.Fatalf("max = %v, want 80ms", got)
	}
	// A genuine zero observation is distinguishable from "empty".
	h.Observe(0)
	if got := h.Min(); got != 0 {
		t.Fatalf("min after zero observation = %v, want 0", got)
	}
	if h.N() != 4 {
		t.Fatalf("n = %d", h.N())
	}
}

func TestDurationHistogramAddToMerge(t *testing.T) {
	a := NewDurationHistogram(MicroLatencyBounds()...)
	b := NewDurationHistogram(MicroLatencyBounds()...)
	a.Observe(15 * time.Microsecond)
	a.Observe(40 * time.Microsecond)
	b.Observe(300 * time.Microsecond)
	dst := NewDurationHistogram(MicroLatencyBounds()...)
	a.AddTo(dst)
	b.AddTo(dst)
	if got := dst.N(); got != 3 {
		t.Fatalf("merged n = %d, want 3", got)
	}
	if got := dst.Min(); got != 15*time.Microsecond {
		t.Fatalf("merged min = %v", got)
	}
	if got := dst.Max(); got != 300*time.Microsecond {
		t.Fatalf("merged max = %v", got)
	}
	if got := dst.Mean(); got != (15+40+300)*time.Microsecond/3 {
		t.Fatalf("merged mean = %v", got)
	}
	// Per-bucket counts carried over: the p99 lands in b's bucket.
	if q := dst.P99(); q < 200*time.Microsecond {
		t.Fatalf("merged p99 = %v, want the 500µs bucket region", q)
	}
}

func TestDurationHistogramAddToBoundsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddTo across different bounds did not panic")
		}
	}()
	NewDurationHistogram(MicroLatencyBounds()...).AddTo(NewDurationHistogram())
}

func TestMicroLatencyBoundsShape(t *testing.T) {
	bs := MicroLatencyBounds()
	if bs[0] != 10*time.Microsecond || bs[len(bs)-1] != 100*time.Millisecond {
		t.Fatalf("bounds span %v..%v", bs[0], bs[len(bs)-1])
	}
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			t.Fatalf("bounds not ascending at %d: %v", i, bs)
		}
	}
	// A µs-scale service time must resolve below DefaultLatencyBounds' first
	// bucket (the reason the micro bounds exist).
	h := NewDurationHistogram(bs...)
	h.Observe(42 * time.Microsecond)
	if q := h.P50(); q > time.Millisecond {
		t.Fatalf("42µs observation quantizes to %v under micro bounds", q)
	}
}

package protocol

import "fmt"

// State is one node of the application state transition diagram (Figure 4).
type State int

// Application states.
const (
	// StIdle: no connection.
	StIdle State = iota
	// StConnecting: connect request sent, awaiting authentication.
	StConnecting
	// StSubscribing: authentication found no account; the subscription
	// form is being filled.
	StSubscribing
	// StBrowsing: connected; the topic list is available.
	StBrowsing
	// StRequesting: a document request is in flight.
	StRequesting
	// StViewing: a document presentation is playing.
	StViewing
	// StPaused: presentation paused by the user.
	StPaused
	// StSuspended: the connection is parked with a grace period while
	// the user visits another server.
	StSuspended
	// StDisconnected: terminal.
	StDisconnected
)

func (s State) String() string {
	switch s {
	case StIdle:
		return "idle"
	case StConnecting:
		return "connecting"
	case StSubscribing:
		return "subscribing"
	case StBrowsing:
		return "browsing"
	case StRequesting:
		return "requesting"
	case StViewing:
		return "viewing"
	case StPaused:
		return "paused"
	case StSuspended:
		return "suspended"
	case StDisconnected:
		return "disconnected"
	default:
		return "unknown"
	}
}

// Input is a state-machine event.
type Input int

// State machine inputs.
const (
	// InConnect: user initiates connection.
	InConnect Input = iota
	// InAuthOK: authentication succeeded.
	InAuthOK
	// InAuthNeedSubscribe: user unknown, subscription required.
	InAuthNeedSubscribe
	// InAuthReject: admission or authentication refused.
	InAuthReject
	// InSubscribed: subscription form accepted.
	InSubscribed
	// InSubscribeFail: subscription refused.
	InSubscribeFail
	// InRequestDoc: user selects a document.
	InRequestDoc
	// InDocReady: scenario received, presentation starts.
	InDocReady
	// InDocFail: request failed; back to browsing.
	InDocFail
	// InRedirect: the document lives on another server: suspend here.
	InRedirect
	// InPresentationEnd: the scenario completed (or a link was followed
	// within the same server): back to browsing.
	InPresentationEnd
	// InPause / InResume: user playback control.
	InPause
	// InResume resumes a paused presentation.
	InResume
	// InReturn: the user comes back to a suspended connection within the
	// grace period.
	InReturn
	// InGraceExpired: the suspended connection's keep-alive ran out.
	InGraceExpired
	// InDisconnect: user quits.
	InDisconnect
	// InPeerLost: heartbeats went unanswered; the session is involuntarily
	// suspended while the client probes for recovery.
	InPeerLost
	// InRecover: a suspended session was resumed in place after a liveness
	// loss — straight back to viewing, the presentation continues.
	InRecover
)

func (i Input) String() string {
	names := []string{
		"connect", "auth-ok", "auth-need-subscribe", "auth-reject",
		"subscribed", "subscribe-fail", "request-doc", "doc-ready",
		"doc-fail", "redirect", "presentation-end", "pause", "resume",
		"return", "grace-expired", "disconnect", "peer-lost", "recover",
	}
	if int(i) < len(names) {
		return names[i]
	}
	return "unknown"
}

// transitions is the Figure 4 edge table.
var transitions = map[State]map[Input]State{
	StIdle: {
		InConnect: StConnecting,
	},
	StConnecting: {
		InAuthOK:            StBrowsing,
		InAuthNeedSubscribe: StSubscribing,
		InAuthReject:        StIdle,
		InDisconnect:        StIdle,
	},
	StSubscribing: {
		InSubscribed:    StBrowsing,
		InSubscribeFail: StIdle,
		InDisconnect:    StIdle,
	},
	StBrowsing: {
		InRequestDoc: StRequesting,
		InDisconnect: StDisconnected,
		InPeerLost:   StSuspended,
	},
	StRequesting: {
		InDocReady:   StViewing,
		InDocFail:    StBrowsing,
		InRedirect:   StSuspended,
		InDisconnect: StDisconnected,
		InPeerLost:   StSuspended,
	},
	StViewing: {
		InPause:           StPaused,
		InPresentationEnd: StBrowsing,
		InRequestDoc:      StRequesting,
		InRedirect:        StSuspended,
		InDisconnect:      StDisconnected,
		InPeerLost:        StSuspended,
	},
	StPaused: {
		InResume:     StViewing,
		InDisconnect: StDisconnected,
		InRedirect:   StSuspended,
		InPeerLost:   StSuspended,
	},
	StSuspended: {
		InReturn:       StBrowsing,
		InRecover:      StViewing,
		InGraceExpired: StDisconnected,
		InDisconnect:   StDisconnected,
	},
	StDisconnected: {},
}

// TransitionError reports an input illegal in the current state.
type TransitionError struct {
	From  State
	Input Input
}

func (e *TransitionError) Error() string {
	return fmt.Sprintf("protocol: input %q illegal in state %q", e.Input, e.From)
}

// Machine tracks a session through the Figure 4 state diagram and records
// its history for coverage analysis.
type Machine struct {
	state   State
	history []Step
}

// Step is one recorded transition.
type Step struct {
	From  State
	Input Input
	To    State
}

// NewMachine starts in StIdle.
func NewMachine() *Machine { return &Machine{state: StIdle} }

// State returns the current state.
func (m *Machine) State() State { return m.state }

// Apply performs one transition, returning a TransitionError if the input
// is illegal in the current state.
func (m *Machine) Apply(in Input) error {
	next, ok := transitions[m.state][in]
	if !ok {
		return &TransitionError{From: m.state, Input: in}
	}
	m.history = append(m.history, Step{From: m.state, Input: in, To: next})
	m.state = next
	return nil
}

// Can reports whether the input is legal in the current state.
func (m *Machine) Can(in Input) bool {
	_, ok := transitions[m.state][in]
	return ok
}

// History returns the recorded transitions.
func (m *Machine) History() []Step {
	out := make([]Step, len(m.history))
	copy(out, m.history)
	return out
}

// States enumerates all states.
func States() []State {
	return []State{StIdle, StConnecting, StSubscribing, StBrowsing,
		StRequesting, StViewing, StPaused, StSuspended, StDisconnected}
}

// Inputs enumerates all inputs.
func Inputs() []Input {
	return []Input{InConnect, InAuthOK, InAuthNeedSubscribe, InAuthReject,
		InSubscribed, InSubscribeFail, InRequestDoc, InDocReady, InDocFail,
		InRedirect, InPresentationEnd, InPause, InResume, InReturn,
		InGraceExpired, InDisconnect, InPeerLost, InRecover}
}

// Edges returns the full transition table as steps, for coverage checks.
func Edges() []Step {
	var out []Step
	for _, s := range States() {
		for _, in := range Inputs() {
			if to, ok := transitions[s][in]; ok {
				out = append(out, Step{From: s, Input: in, To: to})
			}
		}
	}
	return out
}

// Cross-server handoff tickets. When a client navigates to a document homed
// on another server of the federation, the source server suspends the
// session (grace machinery), mints a ticket naming the user and document,
// signs it with the cluster's shared key, and sends it to the client inside
// the DocResponse. The client presents the ticket in its Connect at the
// target, which verifies the signature and expiry and admits the session as
// a continuation: no password round-trip, watermark-exempt, counted as a
// resumed admission. The ticket is bearer-style but short-lived (it expires
// with the source's grace period) and bound to user+document, so a replayed
// or tampered ticket buys nothing beyond what the session already had.
package protocol

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/qos"
)

// Handoff ticket verification failures, distinguishable by errors.Is.
var (
	ErrTicketExpired = errors.New("handoff ticket expired")
	ErrTicketSig     = errors.New("handoff ticket signature mismatch")
	ErrTicketNoKey   = errors.New("no cluster key configured")
)

// HandoffTicket is the signed voucher for resuming a session at another
// server of the cluster.
type HandoffTicket struct {
	// User is the subscriber the source had authenticated.
	User string `json:"user"`
	// Class is the user's pricing contract, carried so the target can run
	// admission without a subscriber-database lookup.
	Class qos.PricingClass `json:"class"`
	// Doc is the document the handoff is for.
	Doc string `json:"doc"`
	// From is the issuing server; Target the replica it routed toward. Any
	// replica holding Doc may accept the ticket — Target is a routing hint,
	// not a restriction, so fallback to a sibling replica still works.
	From   string `json:"from"`
	Target string `json:"target,omitempty"`
	// ExpiresUnixMilli bounds the ticket's life to the source's grace
	// period.
	ExpiresUnixMilli int64 `json:"expires"`
	// Sig is the HMAC-SHA256 over the ticket fields under the cluster key.
	Sig []byte `json:"sig"`
}

// mac computes the ticket's HMAC-SHA256 under key. Fields are joined with
// an unambiguous separator (NUL cannot appear in names) so no two distinct
// tickets share a MAC input.
func (t *HandoffTicket) mac(key []byte) []byte {
	h := hmac.New(sha256.New, key)
	for _, f := range []string{
		t.User, strconv.Itoa(int(t.Class)), t.Doc, t.From, t.Target,
		strconv.FormatInt(t.ExpiresUnixMilli, 10),
	} {
		h.Write([]byte(f))
		h.Write([]byte{0})
	}
	return h.Sum(nil)
}

// Sign fills Sig under the cluster key.
func (t *HandoffTicket) Sign(key []byte) {
	t.Sig = t.mac(key)
}

// Verify checks the signature and expiry at the accepting server.
func (t *HandoffTicket) Verify(key []byte, now time.Time) error {
	if len(key) == 0 {
		return ErrTicketNoKey
	}
	if !hmac.Equal(t.Sig, t.mac(key)) {
		return ErrTicketSig
	}
	if exp := time.UnixMilli(t.ExpiresUnixMilli); now.After(exp) {
		return fmt.Errorf("%w at %s", ErrTicketExpired, exp.UTC().Format(time.RFC3339))
	}
	return nil
}

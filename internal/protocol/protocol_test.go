package protocol

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/qos"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := Connect{User: "alice", Password: "pw", Class: qos.Premium, PeakRate: 2e6, MinRate: 5e5, FloorLevel: 3}
	buf, err := Encode(MsgConnect, in)
	if err != nil {
		t.Fatal(err)
	}
	mt, body, err := Decode(buf)
	if err != nil || mt != MsgConnect {
		t.Fatalf("decode: %v %v", mt, err)
	}
	var out Connect
	if err := DecodeBody(body, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v vs %+v", out, in)
	}
}

func TestEncodeReqRoundTripsRequestID(t *testing.T) {
	in := Heartbeat{SessionID: "s-1"}
	buf := MustEncodeReq(MsgHeartbeat, 0xDEADBEEF, in)
	mt, reqID, body, err := DecodeReq(buf)
	if err != nil || mt != MsgHeartbeat || reqID != 0xDEADBEEF {
		t.Fatalf("decode: %v %d %v", mt, reqID, err)
	}
	var out Heartbeat
	if err := DecodeBody(body, &out); err != nil || out != in {
		t.Fatalf("round trip: %+v (%v)", out, err)
	}
	// Plain Encode produces the fire-and-forget request ID 0, and plain
	// Decode reads EncodeReq frames (dropping the ID).
	if _, reqID, _, _ := DecodeReq(MustEncode(MsgHeartbeat, in)); reqID != 0 {
		t.Fatalf("Encode reqID = %d, want 0", reqID)
	}
	if mt, _, err := Decode(buf); err != nil || mt != MsgHeartbeat {
		t.Fatalf("Decode on EncodeReq frame: %v %v", mt, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("empty decode accepted")
	}
	var c Connect
	if err := DecodeBody([]byte("{bad json"), &c); err == nil {
		t.Fatal("bad json accepted")
	}
}

func TestMustEncodePanicsOnUnmarshalable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustEncode(MsgError, make(chan int))
}

func TestDocResponseRoundTrip(t *testing.T) {
	in := DocResponse{
		OK:          true,
		ScenarioSrc: "<TITLE>x</TITLE>",
		Streams: []StreamAnnounce{
			{StreamID: "v", SSRC: 42, Port: 5004, PayloadType: 32, Rate: 1.5e6, FrameIntervalUS: 40000, Levels: 5},
		},
	}
	buf := MustEncode(MsgDocResponse, in)
	_, body, _ := Decode(buf)
	var out DocResponse
	if err := DecodeBody(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Streams[0] != in.Streams[0] || out.ScenarioSrc != in.ScenarioSrc {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestMsgTypeNames(t *testing.T) {
	for mt := MsgConnect; mt <= MsgHeartbeatAck; mt++ {
		if strings.HasPrefix(mt.String(), "msg-") {
			t.Fatalf("type %d unnamed", mt)
		}
	}
	if MsgType(200).String() != "msg-200" {
		t.Fatal("unknown type name")
	}
}

func TestHappyPathTransitions(t *testing.T) {
	m := NewMachine()
	seq := []struct {
		in   Input
		want State
	}{
		{InConnect, StConnecting},
		{InAuthNeedSubscribe, StSubscribing},
		{InSubscribed, StBrowsing},
		{InRequestDoc, StRequesting},
		{InDocReady, StViewing},
		{InPause, StPaused},
		{InResume, StViewing},
		{InPresentationEnd, StBrowsing},
		{InRequestDoc, StRequesting},
		{InRedirect, StSuspended},
		{InReturn, StBrowsing},
		{InDisconnect, StDisconnected},
	}
	for _, s := range seq {
		if err := m.Apply(s.in); err != nil {
			t.Fatalf("apply %v in %v: %v", s.in, m.State(), err)
		}
		if m.State() != s.want {
			t.Fatalf("after %v: state %v, want %v", s.in, m.State(), s.want)
		}
	}
	if len(m.History()) != len(seq) {
		t.Fatalf("history = %d", len(m.History()))
	}
}

func TestGraceExpiryPath(t *testing.T) {
	m := NewMachine()
	for _, in := range []Input{InConnect, InAuthOK, InRequestDoc, InRedirect, InGraceExpired} {
		if err := m.Apply(in); err != nil {
			t.Fatal(err)
		}
	}
	if m.State() != StDisconnected {
		t.Fatalf("state = %v", m.State())
	}
}

func TestIllegalTransitionsRejected(t *testing.T) {
	m := NewMachine()
	err := m.Apply(InPause)
	if err == nil {
		t.Fatal("pause in idle accepted")
	}
	te, ok := err.(*TransitionError)
	if !ok || te.From != StIdle || te.Input != InPause {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "illegal") {
		t.Fatalf("err text = %q", err)
	}
	// State unchanged after illegal input.
	if m.State() != StIdle {
		t.Fatal("state moved on illegal input")
	}
}

func TestDisconnectedIsTerminal(t *testing.T) {
	m := NewMachine()
	m.Apply(InConnect)
	m.Apply(InAuthOK)
	m.Apply(InDisconnect)
	for _, in := range Inputs() {
		if m.Can(in) {
			t.Fatalf("input %v legal in disconnected", in)
		}
	}
}

func TestAuthRejectReturnsToIdle(t *testing.T) {
	m := NewMachine()
	m.Apply(InConnect)
	if err := m.Apply(InAuthReject); err != nil {
		t.Fatal(err)
	}
	if m.State() != StIdle {
		t.Fatalf("state = %v", m.State())
	}
	// Idle allows reconnect.
	if !m.Can(InConnect) {
		t.Fatal("cannot reconnect")
	}
}

func TestEveryStateReachable(t *testing.T) {
	// BFS over the edge table from StIdle must reach every state.
	reach := map[State]bool{StIdle: true}
	frontier := []State{StIdle}
	for len(frontier) > 0 {
		s := frontier[0]
		frontier = frontier[1:]
		for _, e := range Edges() {
			if e.From == s && !reach[e.To] {
				reach[e.To] = true
				frontier = append(frontier, e.To)
			}
		}
	}
	for _, s := range States() {
		if !reach[s] {
			t.Errorf("state %v unreachable", s)
		}
	}
}

func TestEveryEdgeDrivable(t *testing.T) {
	// For every edge in the table, a machine placed in the source state
	// (by replaying a path) must accept the input. Build paths by BFS.
	paths := map[State][]Input{StIdle: {}}
	frontier := []State{StIdle}
	for len(frontier) > 0 {
		s := frontier[0]
		frontier = frontier[1:]
		for _, e := range Edges() {
			if e.From != s {
				continue
			}
			if _, ok := paths[e.To]; !ok {
				paths[e.To] = append(append([]Input{}, paths[s]...), e.Input)
				frontier = append(frontier, e.To)
			}
		}
	}
	covered := 0
	for _, e := range Edges() {
		path, ok := paths[e.From]
		if !ok {
			t.Fatalf("no path to %v", e.From)
		}
		m := NewMachine()
		for _, in := range path {
			if err := m.Apply(in); err != nil {
				t.Fatalf("replay to %v: %v", e.From, err)
			}
		}
		if err := m.Apply(e.Input); err != nil {
			t.Fatalf("edge %v --%v--> %v: %v", e.From, e.Input, e.To, err)
		}
		if m.State() != e.To {
			t.Fatalf("edge %v --%v--> got %v, want %v", e.From, e.Input, m.State(), e.To)
		}
		covered++
	}
	if covered != len(Edges()) {
		t.Fatalf("covered %d/%d edges", covered, len(Edges()))
	}
}

func TestStateAndInputNames(t *testing.T) {
	for _, s := range States() {
		if s.String() == "unknown" {
			t.Errorf("state %d unnamed", s)
		}
	}
	for _, in := range Inputs() {
		if in.String() == "unknown" {
			t.Errorf("input %d unnamed", in)
		}
	}
	if State(99).String() != "unknown" || Input(99).String() != "unknown" {
		t.Fatal("out-of-range names")
	}
}

// Property: applying any input sequence never panics and either moves along
// a declared edge or leaves the state unchanged with an error.
func TestQuickMachineTotal(t *testing.T) {
	f := func(seq []uint8) bool {
		m := NewMachine()
		for _, raw := range seq {
			in := Input(int(raw) % len(Inputs()))
			before := m.State()
			err := m.Apply(in)
			if err != nil {
				if m.State() != before {
					return false
				}
				continue
			}
			found := false
			for _, e := range Edges() {
				if e.From == before && e.Input == in && e.To == m.State() {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

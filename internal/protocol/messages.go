// Package protocol defines the service's application protocol: the control
// messages exchanged between the Hermes browser and the multimedia servers
// (connection, authentication, subscription, topic lists, document requests,
// interactive operations, suspension) and the client/server state machine of
// the paper's Figure 4.
//
// Control messages travel over the reliable channel; they are encoded as a
// one-byte type tag, a 4-byte request ID (0 for fire-and-forget messages;
// replies echo the request's ID) and a JSON body, so the wire format is
// self-describing and diffable in traces.
package protocol

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/internal/obs"

	"repro/internal/qos"
)

// MsgType tags each control message.
type MsgType byte

// Control message types.
const (
	MsgConnect MsgType = iota + 1
	MsgConnectResult
	MsgSubscribe
	MsgSubscribeResult
	MsgTopicList
	MsgTopics
	MsgSearch
	MsgSearchResult
	MsgDocRequest
	MsgDocResponse
	MsgPause
	MsgResume
	MsgReload
	MsgDisableMedia
	MsgAnnotate
	MsgSuspend
	MsgSuspendResult
	MsgDisconnect
	MsgError
	MsgFeedback
	MsgListAnnotations
	MsgAnnotations
	MsgStatsRequest
	MsgStatsResult
	MsgHeartbeat
	MsgHeartbeatAck
)

func (t MsgType) String() string {
	names := map[MsgType]string{
		MsgConnect: "connect", MsgConnectResult: "connect-result",
		MsgSubscribe: "subscribe", MsgSubscribeResult: "subscribe-result",
		MsgTopicList: "topic-list", MsgTopics: "topics",
		MsgSearch: "search", MsgSearchResult: "search-result",
		MsgDocRequest: "doc-request", MsgDocResponse: "doc-response",
		MsgPause: "pause", MsgResume: "resume", MsgReload: "reload",
		MsgDisableMedia: "disable-media", MsgAnnotate: "annotate",
		MsgSuspend: "suspend", MsgSuspendResult: "suspend-result",
		MsgDisconnect: "disconnect", MsgError: "error", MsgFeedback: "feedback",
		MsgListAnnotations: "list-annotations", MsgAnnotations: "annotations",
		MsgStatsRequest: "stats-request", MsgStatsResult: "stats-result",
		MsgHeartbeat: "heartbeat", MsgHeartbeatAck: "heartbeat-ack",
	}
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("msg-%d", byte(t))
}

// Connect asks for admission to the service.
type Connect struct {
	User string `json:"user"`
	// Password authenticates subscribed users.
	Password string `json:"password,omitempty"`
	// Class is the user's pricing contract.
	Class qos.PricingClass `json:"class"`
	// PeakRate/MinRate describe the connection's load and the user's
	// quality floor for admission control.
	PeakRate float64 `json:"peakRate"`
	MinRate  float64 `json:"minRate"`
	// FloorLevel is the worst quality level the user accepts.
	FloorLevel int `json:"floorLevel"`
	// Resume identifies a suspended session being returned to.
	ResumeToken string `json:"resumeToken,omitempty"`
	// ResumeSession recovers a live session by its ID after a liveness loss
	// (partition, server restart): the client never received a resume token
	// because it never chose to leave. The server re-attaches if the session
	// still exists (possibly auto-suspended), else answers SessionLost.
	ResumeSession string `json:"resumeSession,omitempty"`
	// Failover marks a re-admission after the original server died; the
	// admission layer records these separately.
	Failover bool `json:"failover,omitempty"`
	// Handoff carries the signed ticket minted by the source server of a
	// cross-server handoff: the target admits the session as a continuation
	// (no password, watermark-exempt) after verifying the signature.
	Handoff *HandoffTicket `json:"handoff,omitempty"`
}

// ConnectResult answers a Connect.
type ConnectResult struct {
	OK bool `json:"ok"`
	// NeedSubscription asks the user to fill the subscription form.
	NeedSubscription bool    `json:"needSubscription,omitempty"`
	SessionID        string  `json:"sessionId,omitempty"`
	GrantedRate      float64 `json:"grantedRate,omitempty"`
	Degraded         bool    `json:"degraded,omitempty"`
	Reason           string  `json:"reason,omitempty"`
	// GraceSecs tells the client how long a lost session stays resumable,
	// bounding its recovery probing before failover.
	GraceSecs int `json:"graceSecs,omitempty"`
	// Peers lists replica servers the client may fail over to.
	Peers []string `json:"peers,omitempty"`
	// Redirect is the cluster's load-aware admission answer: the server is
	// over its admission watermark and asks the client to retry at one of
	// Peers (ordered by advertised load) instead of rejecting outright.
	Redirect bool `json:"redirect,omitempty"`
	// Resumed marks a successful ResumeSession recovery: same session,
	// paused senders restarted.
	Resumed bool `json:"resumed,omitempty"`
	// SessionLost answers a ResumeSession for a session this server no
	// longer holds (grace expired, or the server restarted and lost state);
	// the client should fail over with fresh credentials.
	SessionLost bool `json:"sessionLost,omitempty"`
}

// SubscriptionForm is the paper's subscription form: "personal data such as
// name and address, telephone, e-mail".
type SubscriptionForm struct {
	User     string           `json:"user"`
	Password string           `json:"password"`
	RealName string           `json:"realName"`
	Address  string           `json:"address"`
	Email    string           `json:"email"`
	Phone    string           `json:"phone"`
	Class    qos.PricingClass `json:"class"`
}

// SubscribeResult answers a SubscriptionForm.
type SubscribeResult struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}

// TopicListRequest asks for the list of available topics/lessons.
type TopicListRequest struct{}

// TopicInfo describes one available document.
type TopicInfo struct {
	Name        string `json:"name"`
	Title       string `json:"title"`
	Server      string `json:"server"`
	Description string `json:"description,omitempty"`
}

// Topics is the contents listing.
type Topics struct {
	Topics []TopicInfo `json:"topics"`
}

// Search is a federated content search: the receiving server scans its
// documents and forwards the query to every other server.
type Search struct {
	Token string `json:"token"`
	// NoForward marks server-to-server fan-out queries.
	NoForward bool `json:"noForward,omitempty"`
	// SearchID correlates fan-out replies.
	SearchID int `json:"searchId,omitempty"`
}

// SearchResult lists matches.
type SearchResult struct {
	SearchID int         `json:"searchId,omitempty"`
	Hits     []TopicInfo `json:"hits"`
}

// DocRequest asks for a document's presentation scenario.
type DocRequest struct {
	Name string `json:"name"`
	// MediaPortBase is the first client port for parallel media
	// connections; the server assigns one port per stream from here.
	MediaPortBase int `json:"mediaPortBase"`
	// WindowMS is the client's media time window in milliseconds; the
	// flow scheduler pre-rolls transmission by this much (plus a margin)
	// so the buffers hold one window when playout begins.
	WindowMS int `json:"windowMs,omitempty"`
}

// StreamAnnounce tells the client how one media stream will arrive.
type StreamAnnounce struct {
	StreamID string `json:"streamId"`
	SSRC     uint32 `json:"ssrc"`
	// Port is the client port the media server will send to.
	Port int `json:"port"`
	// PayloadType is the initial coding.
	PayloadType byte `json:"payloadType"`
	// Rate is the nominal full-quality rate (bits/s).
	Rate float64 `json:"rate"`
	// FrameIntervalUS is the nominal frame spacing in microseconds.
	FrameIntervalUS int64 `json:"frameIntervalUs"`
	// Levels is the quality ladder depth.
	Levels int `json:"levels"`
}

// DocResponse carries the scenario and the media connection plan.
type DocResponse struct {
	OK bool `json:"ok"`
	// Name is the document's database key.
	Name string `json:"name,omitempty"`
	// Redirect names the server holding the document when it lives
	// elsewhere (triggers suspend + reconnect at the client).
	Redirect string `json:"redirect,omitempty"`
	// Handoff accompanies Redirect: the signed ticket the client presents
	// at the target to resume as a continuation of this session.
	Handoff *HandoffTicket `json:"handoff,omitempty"`
	// ResumeToken/GraceSecs park the session at the source for the grace
	// period, so the client can fall back here if every replica is down.
	ResumeToken string `json:"resumeToken,omitempty"`
	GraceSecs   int    `json:"graceSecs,omitempty"`
	// Peers is the per-document replica set for this document: the servers
	// (besides the answering one) that also hold it, so failover mid-lesson
	// lands on a replica that can actually serve it.
	Peers []string `json:"peers,omitempty"`
	// ScenarioSrc is the HML text of the presentation scenario.
	ScenarioSrc string           `json:"scenarioSrc,omitempty"`
	Streams     []StreamAnnounce `json:"streams,omitempty"`
	Reason      string           `json:"reason,omitempty"`
}

// MediaOp addresses an interactive operation at the current document
// (pause, resume, reload) or one media stream (disable).
type MediaOp struct {
	StreamID string `json:"streamId,omitempty"`
}

// Annotate attaches a user remark to the current document.
type Annotate struct {
	StreamID string `json:"streamId,omitempty"`
	Text     string `json:"text"`
}

// ListAnnotations asks for the remarks attached to a document.
type ListAnnotations struct {
	Doc string `json:"doc"`
}

// AnnotationRecord is one stored user remark.
type AnnotationRecord struct {
	User string `json:"user"`
	Text string `json:"text"`
	// AtUnixMilli is the remark's timestamp.
	AtUnixMilli int64 `json:"at"`
}

// Annotations answers ListAnnotations.
type Annotations struct {
	Doc     string             `json:"doc"`
	Records []AnnotationRecord `json:"records"`
}

// Suspend asks the server to keep the session alive for the grace period
// while the client visits another server.
type Suspend struct{}

// SuspendResult grants a resume token and the grace period in seconds.
type SuspendResult struct {
	OK          bool   `json:"ok"`
	ResumeToken string `json:"resumeToken,omitempty"`
	GraceSecs   int    `json:"graceSecs,omitempty"`
}

// Disconnect ends the session; the pricing primitive is informed.
type Disconnect struct {
	Reason string `json:"reason,omitempty"`
}

// ErrorMsg reports a protocol-level failure.
type ErrorMsg struct {
	Msg string `json:"msg"`
}

// Feedback wraps an RTCP receiver report travelling on the control channel
// (the client's periodic QoS feedback).
type Feedback struct {
	// RTCP is the marshaled compound RTCP payload.
	RTCP []byte `json:"rtcp"`
}

// StatsRequest asks a server for its telemetry registry snapshot. It is
// sessionless (like TopicListRequest): monitoring must not require
// admission.
type StatsRequest struct{}

// StatsResult answers StatsRequest with the server's metric snapshot and
// the shape of its trace ring.
type StatsResult struct {
	OK     bool   `json:"ok"`
	Server string `json:"server,omitempty"`
	// Metrics is the sorted registry snapshot (empty when the server runs
	// with telemetry off).
	Metrics []obs.MetricPoint `json:"metrics,omitempty"`
	// TraceEvents/TraceDropped describe the server's trace ring.
	TraceEvents  int   `json:"traceEvents,omitempty"`
	TraceDropped int64 `json:"traceDropped,omitempty"`
}

// Heartbeat is the client's periodic liveness probe on the control channel.
type Heartbeat struct {
	SessionID string `json:"sessionId,omitempty"`
}

// HeartbeatAck answers a Heartbeat. OK=false tells the client the server no
// longer holds its session (a restart), so it can recover without waiting
// for missed beats.
type HeartbeatAck struct {
	OK        bool   `json:"ok"`
	SessionID string `json:"sessionId,omitempty"`
	// Peers refreshes the per-document replica set on every ack, so the
	// client's failover targets track the document it is currently viewing
	// (and any placement change) rather than the connect-time snapshot.
	Peers []string `json:"peers,omitempty"`
}

// headerSize is the frame header: one type byte plus a 4-byte big-endian
// request ID (0 = fire-and-forget, no reply correlation).
const headerSize = 5

// Encode frames a fire-and-forget message (request ID 0) as
// [type | reqID=0 | JSON body].
func Encode(t MsgType, body interface{}) ([]byte, error) {
	return EncodeReq(t, 0, body)
}

// EncodeReq frames a message as [type byte | 4-byte big-endian request ID |
// JSON body]. Requests carry a nonzero ID; replies echo it, which lets the
// client match replies to pending retransmissions and the server dedup
// duplicated requests.
func EncodeReq(t MsgType, reqID uint32, body interface{}) ([]byte, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("protocol: encode %s: %w", t, err)
	}
	out := make([]byte, headerSize+len(data))
	out[0] = byte(t)
	binary.BigEndian.PutUint32(out[1:headerSize], reqID)
	copy(out[headerSize:], data)
	return out, nil
}

// MustEncode is Encode for bodies that cannot fail.
func MustEncode(t MsgType, body interface{}) []byte {
	b, err := Encode(t, body)
	if err != nil {
		panic(err)
	}
	return b
}

// MustEncodeReq is EncodeReq for bodies that cannot fail.
func MustEncodeReq(t MsgType, reqID uint32, body interface{}) []byte {
	b, err := EncodeReq(t, reqID, body)
	if err != nil {
		panic(err)
	}
	return b
}

// Decode splits a framed message, discarding the request ID; the body
// remains JSON for DecodeBody.
func Decode(buf []byte) (MsgType, []byte, error) {
	t, _, body, err := DecodeReq(buf)
	return t, body, err
}

// DecodeReq splits a framed message into type, request ID and JSON body.
func DecodeReq(buf []byte) (MsgType, uint32, []byte, error) {
	if len(buf) < headerSize {
		return 0, 0, nil, fmt.Errorf("protocol: short message (%d bytes)", len(buf))
	}
	return MsgType(buf[0]), binary.BigEndian.Uint32(buf[1:headerSize]), buf[headerSize:], nil
}

// DecodeBody unmarshals a message body into out.
func DecodeBody(body []byte, out interface{}) error {
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("protocol: decode body: %w", err)
	}
	return nil
}

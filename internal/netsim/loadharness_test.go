package netsim

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

func quickLoadCfg(shards int) LoadConfig {
	return LoadConfig{
		Shards:          shards,
		Groups:          8,
		ClientsPerGroup: 4,
		Duration:        500 * time.Millisecond,
		Seed:            0xC4A05,
	}
}

// TestLoadDeterministicAcrossGOMAXPROCS is the determinism regression the
// sharded rewrite is gated on: the same seed and shard map must replay
// byte-identically (same delivery digest, same packet counts) whether the
// windows run on one core or many, and across reruns.
func TestLoadDeterministicAcrossGOMAXPROCS(t *testing.T) {
	runAt := func(shards, procs int) LoadResult {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		return RunLoad(quickLoadCfg(shards))
	}
	for _, shards := range []int{1, 8} {
		serial := runAt(shards, 1)
		parallel := runAt(shards, runtime.NumCPU())
		replay := runAt(shards, runtime.NumCPU())
		if serial.Digest != parallel.Digest || parallel.Digest != replay.Digest {
			t.Fatalf("shards=%d digests diverge: GOMAXPROCS=1 %x, =%d %x, replay %x",
				shards, serial.Digest, runtime.NumCPU(), parallel.Digest, replay.Digest)
		}
		if serial.PacketsSent != parallel.PacketsSent || serial.PacketsDelivered != parallel.PacketsDelivered {
			t.Fatalf("shards=%d counts diverge: %d/%d vs %d/%d sent/delivered",
				shards, serial.PacketsSent, serial.PacketsDelivered, parallel.PacketsSent, parallel.PacketsDelivered)
		}
		if serial.PacketsDelivered == 0 {
			t.Fatalf("shards=%d delivered nothing", shards)
		}
	}
}

// TestLoadWorkloadInvariantAcrossShardCounts pins the harness design point
// that makes the speedup column honest: the offered load (sends) is pure
// arithmetic on (seed, client, seq), so sharding changes who simulates a
// host — never what the host does.
func TestLoadWorkloadInvariantAcrossShardCounts(t *testing.T) {
	base := RunLoad(quickLoadCfg(1))
	for _, shards := range []int{2, 8} {
		r := RunLoad(quickLoadCfg(shards))
		if r.PacketsSent != base.PacketsSent {
			t.Fatalf("shards=%d offered %d packets, shards=1 offered %d; workload must not depend on the shard map",
				shards, r.PacketsSent, base.PacketsSent)
		}
		if shards > 1 && r.CrossSent == 0 {
			t.Fatalf("shards=%d moved no cross-shard traffic; the remote fraction is broken", shards)
		}
		if r.CrossClamps != 0 {
			t.Fatalf("shards=%d clamped %d cross arrivals; lookahead must cover the min cross-shard delay", shards, r.CrossClamps)
		}
	}
}

// TestAdmissionStormSmall runs a scaled-down storm end to end: every client
// must complete the reliable connect/ack exchange exactly once.
func TestAdmissionStormSmall(t *testing.T) {
	cfg := StormConfig{Shards: 4, Clients: 2000, Ramp: 500 * time.Millisecond, Seed: 7}
	r := RunAdmissionStorm(cfg)
	if r.Acked != int64(cfg.Clients) {
		t.Fatalf("acked %d of %d clients", r.Acked, cfg.Clients)
	}
	// connect + ack are reliable (always delivered); two unreliable
	// follow-ups per client mostly survive the 0.2% loss.
	if r.PacketsDelivered < 3*cfg.Clients {
		t.Fatalf("delivered %d packets for %d clients; storm traffic missing", r.PacketsDelivered, cfg.Clients)
	}
	if r.HeapMB <= 0 {
		t.Fatal("no heap measurement recorded")
	}
	replay := RunAdmissionStorm(cfg)
	if replay.Digest != r.Digest {
		t.Fatalf("storm replay digest %x != %x", replay.Digest, r.Digest)
	}
}

// TestShardChurnStressRace hammers a running sharded network with the
// dynamic control surface — fault flips, one-shot drops, stats snapshots,
// link edits — from racing goroutines. It asserts nothing beyond survival;
// its job is to give the -race gate (make race) something to bite on.
func TestShardChurnStressRace(t *testing.T) {
	sv := clock.NewShardedSim(4, 2*time.Millisecond)
	n := NewSharded(sv, 99, GroupShardOf(4))
	n.SetDefaultLink(LinkConfig{Delay: 2 * time.Millisecond, Loss: 0.01})
	for g := 0; g < 4; g++ {
		n.Listen(Addr(groupServer(g)+":1"), func(Packet) {})
	}
	for g := 0; g < 4; g++ {
		g := g
		host := groupClient(g, 0)
		shard := sv.Shard(g)
		var tick func()
		tick = func() {
			n.Send(Packet{From: Addr(host + ":2"), To: Addr(groupServer((g+1)%4) + ":1"), Payload: []byte("x")})
			shard.AfterFunc(500*time.Microsecond, tick)
		}
		shard.AfterFunc(time.Millisecond, tick)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				host := groupClient(i%4, 0)
				switch (i + w) % 5 {
				case 0:
					n.SetHostDown(host, i%2 == 0)
				case 1:
					n.HostDown(host)
				case 2:
					n.DropNext(host, groupServer((i+1)%4), 1)
				case 3:
					n.Totals()
				case 4:
					n.Stats(host, groupServer((i+1)%4))
				}
			}
		}()
	}
	for r := 0; r < 40; r++ {
		sv.RunFor(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	for g := 0; g < 4; g++ {
		n.SetHostDown(groupClient(g, 0), false)
	}
	sv.RunFor(20 * time.Millisecond)
}

package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
)

func newSim() (*clock.Virtual, *Network) {
	clk := clock.NewSim()
	return clk, New(clk, 1)
}

func TestAddrHost(t *testing.T) {
	if MakeAddr("server", 80).Host() != "server" {
		t.Fatal("Host() wrong")
	}
	if Addr("bare").Host() != "bare" {
		t.Fatal("bare addr host wrong")
	}
}

func TestDeliveryWithFixedDelay(t *testing.T) {
	clk, net := newSim()
	net.SetLink("a", "b", LinkConfig{Delay: 50 * time.Millisecond})
	var got Packet
	var at time.Time
	net.Listen("b:1", func(p Packet) { got, at = p, clk.Now() })
	net.Send(Packet{From: "a:9", To: "b:1", Payload: []byte("hello")})
	clk.RunUntilIdle()
	if string(got.Payload) != "hello" {
		t.Fatalf("payload = %q", got.Payload)
	}
	if d := at.Sub(clock.Epoch); d != 50*time.Millisecond {
		t.Fatalf("delivered after %v, want 50ms", d)
	}
}

func TestNoListenerNoPanic(t *testing.T) {
	clk, net := newSim()
	net.Send(Packet{From: "a:1", To: "nowhere:1", Payload: []byte("x")})
	clk.RunUntilIdle()
}

func TestListenerUnregister(t *testing.T) {
	clk, net := newSim()
	n := 0
	net.Listen("b:1", func(Packet) { n++ })
	net.Send(Packet{From: "a:1", To: "b:1", Payload: []byte("x")})
	clk.RunUntilIdle()
	net.Listen("b:1", nil)
	net.Send(Packet{From: "a:1", To: "b:1", Payload: []byte("x")})
	clk.RunUntilIdle()
	if n != 1 {
		t.Fatalf("deliveries = %d, want 1", n)
	}
}

func TestSerializationDelay(t *testing.T) {
	clk, net := newSim()
	// 8 kb/s: a 1000-byte payload (1028 wire bytes) takes ~1.028s to send.
	net.SetLink("a", "b", LinkConfig{Bandwidth: 8000, QueueLimit: time.Hour})
	var arrivals []time.Duration
	net.Listen("b:1", func(Packet) { arrivals = append(arrivals, clk.Since(clock.Epoch)) })
	for i := 0; i < 3; i++ {
		net.Send(Packet{From: "a:1", To: "b:1", Payload: make([]byte, 1000)})
	}
	clk.RunUntilIdle()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	// Packets serialize: arrival spacing ≈ tx time (1.028s).
	gap := arrivals[1] - arrivals[0]
	if gap < time.Second || gap > 1100*time.Millisecond {
		t.Fatalf("serialization gap = %v", gap)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	clk, net := newSim()
	net.SetLink("a", "b", LinkConfig{Bandwidth: 8000, QueueLimit: 100 * time.Millisecond})
	dropped := 0
	net.DropHandler = func(_ Packet, reason string) {
		if reason == "queue overflow" {
			dropped++
		}
	}
	for i := 0; i < 10; i++ {
		net.Send(Packet{From: "a:1", To: "b:1", Payload: make([]byte, 1000)})
	}
	clk.RunUntilIdle()
	if dropped == 0 {
		t.Fatal("no queue drops under saturation")
	}
	st := net.Stats("a", "b")
	if st.Dropped != dropped || st.Sent != 10 || st.Delivered+st.Dropped != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLossRateApproximatesConfig(t *testing.T) {
	clk, net := newSim()
	net.SetLink("a", "b", LinkConfig{Loss: 0.2, QueueLimit: time.Hour})
	got := 0
	net.Listen("b:1", func(Packet) { got++ })
	const N = 5000
	for i := 0; i < N; i++ {
		net.Send(Packet{From: "a:1", To: "b:1", Payload: []byte("x")})
	}
	clk.RunUntilIdle()
	frac := 1 - float64(got)/N
	if frac < 0.17 || frac > 0.23 {
		t.Fatalf("observed loss = %v, want ≈0.2", frac)
	}
	st := net.Stats("a", "b")
	if lr := st.LossRate(); lr < 0.17 || lr > 0.23 {
		t.Fatalf("stats loss = %v", lr)
	}
}

func TestReliableNeverDrops(t *testing.T) {
	clk, net := newSim()
	net.SetLink("a", "b", LinkConfig{Loss: 0.3, Delay: 10 * time.Millisecond})
	got := 0
	net.Listen("b:1", func(Packet) { got++ })
	const N = 1000
	for i := 0; i < N; i++ {
		net.Send(Packet{From: "a:1", To: "b:1", Payload: []byte("x"), Reliable: true})
	}
	clk.RunUntilIdle()
	if got != N {
		t.Fatalf("delivered %d/%d reliable packets", got, N)
	}
}

func TestReliableInOrder(t *testing.T) {
	clk, net := newSim()
	net.SetLink("a", "b", LinkConfig{Loss: 0.3, Delay: 10 * time.Millisecond, Jitter: 50 * time.Millisecond})
	var seq []int
	net.Listen("b:1", func(p Packet) { seq = append(seq, int(p.Payload[0])) })
	for i := 0; i < 200; i++ {
		net.Send(Packet{From: "a:1", To: "b:1", Payload: []byte{byte(i)}, Reliable: true})
	}
	clk.RunUntilIdle()
	if len(seq) != 200 {
		t.Fatalf("delivered %d", len(seq))
	}
	for i := 1; i < len(seq); i++ {
		if byte(seq[i]) != byte(seq[i-1]+1) {
			t.Fatalf("out of order at %d: %d after %d", i, seq[i], seq[i-1])
		}
	}
}

func TestReliableLossIncreasesDelay(t *testing.T) {
	// Compare mean delay on a lossy vs clean reliable path.
	mean := func(loss float64) float64 {
		clk := clock.NewSim()
		net := New(clk, 7)
		net.SetLink("a", "b", LinkConfig{Loss: loss, Delay: 40 * time.Millisecond})
		net.Listen("b:1", func(Packet) {})
		for i := 0; i < 2000; i++ {
			net.Send(Packet{From: "a:1", To: "b:1", Payload: []byte("x"), Reliable: true})
			clk.RunUntilIdle()
		}
		st := net.Stats("a", "b")
		return st.Delays.Mean()
	}
	clean, lossy := mean(0), mean(0.2)
	if lossy <= clean*1.1 {
		t.Fatalf("lossy reliable delay %.2fms not > clean %.2fms", lossy, clean)
	}
}

func TestJitterSpreadsDelays(t *testing.T) {
	clk := clock.NewSim()
	net := New(clk, 3)
	net.SetLink("a", "b", LinkConfig{Delay: 20 * time.Millisecond, Jitter: 100 * time.Millisecond})
	net.Listen("b:1", func(Packet) {})
	for i := 0; i < 2000; i++ {
		net.Send(Packet{From: "a:1", To: "b:1", Payload: []byte("x")})
		clk.RunUntilIdle()
	}
	st := net.Stats("a", "b")
	if st.Delays.Min() < 20 || st.Delays.Max() > 121 {
		t.Fatalf("delays outside [20,120]ms: [%v,%v]", st.Delays.Min(), st.Delays.Max())
	}
	spread := st.Delays.Percentile(95) - st.Delays.Percentile(5)
	if spread < 60 {
		t.Fatalf("jitter spread = %.1fms, want wide", spread)
	}
}

func TestBurstLossIsBursty(t *testing.T) {
	clk := clock.NewSim()
	net := New(clk, 5)
	net.SetLink("a", "b", LinkConfig{
		QueueLimit: time.Hour,
		Burst:      &BurstLoss{PGood: 0.001, PBad: 0.5, PGoodToBad: 0.01, PBadToGood: 0.1},
	})
	var outcomes []bool // true = delivered
	net.Listen("b:1", func(Packet) { outcomes = append(outcomes, true) })
	net.DropHandler = func(Packet, string) { outcomes = append(outcomes, false) }
	const N = 20000
	for i := 0; i < N; i++ {
		net.Send(Packet{From: "a:1", To: "b:1", Payload: []byte("x")})
		clk.RunUntilIdle()
	}
	// Compute run-length distribution of drops: bursty loss yields runs of
	// consecutive drops far more often than independent loss at the same
	// average rate would.
	drops, runs, cur := 0, 0, 0
	for _, ok := range outcomes {
		if !ok {
			drops++
			cur++
		} else if cur > 0 {
			runs++
			cur = 0
		}
	}
	if cur > 0 {
		runs++
	}
	if drops == 0 || runs == 0 {
		t.Fatalf("drops=%d runs=%d", drops, runs)
	}
	meanRun := float64(drops) / float64(runs)
	if meanRun < 1.5 {
		t.Fatalf("mean drop-run length %.2f, want bursty (≥1.5)", meanRun)
	}
}

func TestCongestionPhaseRaisesLossAndDelay(t *testing.T) {
	clk := clock.NewSim()
	net := New(clk, 9)
	net.SetLink("a", "b", LinkConfig{Delay: 10 * time.Millisecond, Loss: 0.01, QueueLimit: time.Hour})
	net.AddPhase("a", "b", Phase{
		Start: 10 * time.Second, Duration: 10 * time.Second,
		LossFactor: 20, ExtraDelay: 50 * time.Millisecond,
	})
	delivered := map[bool]int{} // key: during phase?
	sent := map[bool]int{}
	net.Listen("b:1", func(Packet) {})
	for i := 0; i < 3000; i++ {
		inPhase := clk.Since(clock.Epoch) >= 10*time.Second && clk.Since(clock.Epoch) < 20*time.Second
		before := net.Stats("a", "b").Delivered
		net.Send(Packet{From: "a:1", To: "b:1", Payload: []byte("x")})
		clk.RunUntilIdle()
		sent[inPhase]++
		if net.Stats("a", "b").Delivered > before {
			delivered[inPhase]++
		}
		clk.Advance(10 * time.Millisecond)
	}
	lossOut := 1 - float64(delivered[false])/float64(sent[false])
	lossIn := 1 - float64(delivered[true])/float64(sent[true])
	if lossIn < lossOut*5 {
		t.Fatalf("phase loss %.3f not ≫ baseline %.3f", lossIn, lossOut)
	}
}

func TestPhaseBandwidthFactorThrottles(t *testing.T) {
	clk := clock.NewSim()
	net := New(clk, 11)
	net.SetLink("a", "b", LinkConfig{Bandwidth: 1_000_000, QueueLimit: time.Hour})
	net.AddPhase("a", "b", Phase{Start: 0, Duration: time.Hour, BandwidthFactor: 0.1})
	var arrivals []time.Duration
	net.Listen("b:1", func(Packet) { arrivals = append(arrivals, clk.Since(clock.Epoch)) })
	for i := 0; i < 2; i++ {
		net.Send(Packet{From: "a:1", To: "b:1", Payload: make([]byte, 1222)}) // 1250 wire bytes = 10kb
	}
	clk.RunUntilIdle()
	// At 100 kb/s, each 10 kb packet takes 100ms.
	gap := arrivals[1] - arrivals[0]
	if gap < 90*time.Millisecond || gap > 110*time.Millisecond {
		t.Fatalf("gap = %v, want ≈100ms", gap)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (int, int64) {
		clk := clock.NewSim()
		net := New(clk, 42)
		net.SetLink("a", "b", LinkConfig{Loss: 0.1, Jitter: 30 * time.Millisecond, QueueLimit: time.Hour})
		got := 0
		net.Listen("b:1", func(Packet) { got++ })
		for i := 0; i < 500; i++ {
			net.Send(Packet{From: "a:1", To: "b:1", Payload: make([]byte, 100)})
		}
		clk.RunUntilIdle()
		return got, net.Stats("a", "b").Bytes
	}
	g1, b1 := run()
	g2, b2 := run()
	if g1 != g2 || b1 != b2 {
		t.Fatalf("replay diverged: %d/%d vs %d/%d", g1, b1, g2, b2)
	}
}

func TestDuplexLinkIndependence(t *testing.T) {
	clk, net := newSim()
	net.SetDuplexLink("a", "b", LinkConfig{Delay: 30 * time.Millisecond})
	gotA, gotB := 0, 0
	net.Listen("a:1", func(Packet) { gotA++ })
	net.Listen("b:1", func(Packet) { gotB++ })
	net.Send(Packet{From: "a:1", To: "b:1", Payload: []byte("x")})
	net.Send(Packet{From: "b:1", To: "a:1", Payload: []byte("y")})
	clk.RunUntilIdle()
	if gotA != 1 || gotB != 1 {
		t.Fatalf("deliveries: a=%d b=%d", gotA, gotB)
	}
	if net.Stats("a", "b").Sent != 1 || net.Stats("b", "a").Sent != 1 {
		t.Fatal("per-direction stats not independent")
	}
}

// Property: for any loss in [0,0.9), reliable delivery count equals the send
// count and unreliable never exceeds it.
func TestQuickReliableAlwaysDelivers(t *testing.T) {
	f := func(seed uint64, lossPct uint8) bool {
		loss := float64(lossPct%90) / 100
		clk := clock.NewSim()
		net := New(clk, seed)
		net.SetLink("a", "b", LinkConfig{Loss: loss, QueueLimit: time.Hour})
		rel, unrel := 0, 0
		net.Listen("b:1", func(p Packet) {
			if p.Reliable {
				rel++
			} else {
				unrel++
			}
		})
		const N = 100
		for i := 0; i < N; i++ {
			net.Send(Packet{From: "a:1", To: "b:1", Payload: []byte("x"), Reliable: true})
			net.Send(Packet{From: "a:1", To: "b:1", Payload: []byte("x")})
		}
		clk.RunUntilIdle()
		return rel == N && unrel <= N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossTrafficCongestsLink(t *testing.T) {
	run := func(withCross bool) float64 {
		clk := clock.NewSim()
		net := New(clk, 21)
		net.SetLink("a", "b", LinkConfig{Bandwidth: 1_000_000, Delay: 10 * time.Millisecond, QueueLimit: time.Hour})
		if withCross {
			// 900 kb/s of background load on a 1 Mb/s link.
			net.AddCrossTraffic("a", "b", CrossTraffic{Rate: 900_000})
		}
		net.Listen("b:1", func(Packet) {})
		// Foreground probe: 50 kb/s of small packets for 5 seconds.
		for i := 0; i < 100; i++ {
			clk.AfterFunc(time.Duration(i)*50*time.Millisecond, func() {
				net.Send(Packet{From: "a:1", To: "b:1", Payload: make([]byte, 280)})
			})
		}
		clk.RunFor(10 * time.Second)
		st := net.Stats("a", "b")
		return st.Delays.Percentile(95)
	}
	clean := run(false)
	loaded := run(true)
	if loaded < clean*2 {
		t.Fatalf("cross traffic did not congest: p95 %.1fms vs %.1fms", loaded, clean)
	}
}

func TestCrossTrafficOnOffBursts(t *testing.T) {
	clk := clock.NewSim()
	net := New(clk, 22)
	net.SetLink("x", "y", LinkConfig{Bandwidth: 10_000_000, QueueLimit: time.Hour})
	net.AddCrossTraffic("x", "y", CrossTraffic{
		Rate: 2_000_000, OnMean: 500 * time.Millisecond, OffMean: 500 * time.Millisecond,
		Duration: 10 * time.Second,
	})
	clk.RunFor(20 * time.Second)
	st := net.Stats("x", "y")
	if st.Sent == 0 {
		t.Fatal("no cross traffic generated")
	}
	// On/off halves the mean rate: expect roughly 10s × 1 Mb/s of bytes.
	approx := float64(st.Bytes) * 8 / 10 // bits per active second
	if approx < 400_000 || approx > 1_800_000 {
		t.Fatalf("cross traffic volume off: %.0f b/s effective", approx)
	}
	// Bounded duration: nothing after 10s + slack.
	before := st.Sent
	clk.RunFor(10 * time.Second)
	if net.Stats("x", "y").Sent != before {
		t.Fatal("cross traffic survived its Duration")
	}
}

func TestCrossTrafficZeroRateIgnored(t *testing.T) {
	clk := clock.NewSim()
	net := New(clk, 23)
	net.AddCrossTraffic("x", "y", CrossTraffic{Rate: 0})
	clk.RunFor(time.Second)
	if net.Stats("x", "y").Sent != 0 {
		t.Fatal("zero-rate source sent packets")
	}
}

func TestPacketDuplication(t *testing.T) {
	clk := clock.NewSim()
	net := New(clk, 31)
	net.SetLink("a", "b", LinkConfig{Dup: 0.5, QueueLimit: time.Hour})
	got := 0
	net.Listen("b:1", func(Packet) { got++ })
	const N = 2000
	for i := 0; i < N; i++ {
		net.Send(Packet{From: "a:1", To: "b:1", Payload: []byte("x")})
	}
	clk.RunUntilIdle()
	ratio := float64(got) / N
	if ratio < 1.4 || ratio > 1.6 {
		t.Fatalf("duplication ratio = %v, want ≈1.5", ratio)
	}
	// Reliable packets are never duplicated.
	got = 0
	net.SetLink("c", "d", LinkConfig{Dup: 1.0})
	net.Listen("d:1", func(Packet) { got++ })
	for i := 0; i < 100; i++ {
		net.Send(Packet{From: "c:1", To: "d:1", Payload: []byte("x"), Reliable: true})
	}
	clk.RunUntilIdle()
	if got != 100 {
		t.Fatalf("reliable duplicated: %d", got)
	}
}

func TestEgressLimitSharedAcrossDestinations(t *testing.T) {
	clk := clock.NewSim()
	net := New(clk, 41)
	// Fast individual links, but the sender's uplink is 800 kb/s shared.
	net.SetLink("srv", "c1", LinkConfig{Bandwidth: 100_000_000, QueueLimit: time.Hour})
	net.SetLink("srv", "c2", LinkConfig{Bandwidth: 100_000_000, QueueLimit: time.Hour})
	net.SetEgressLimit("srv", 800_000, time.Hour)
	var last1, last2 time.Time
	net.Listen("c1:1", func(Packet) { last1 = clk.Now() })
	net.Listen("c2:1", func(Packet) { last2 = clk.Now() })
	// 100 KB to each destination (200 KB total = 1.6 Mb ≈ 2s at 800 kb/s).
	for i := 0; i < 100; i++ {
		net.Send(Packet{From: "srv:1", To: "c1:1", Payload: make([]byte, 972)})
		net.Send(Packet{From: "srv:1", To: "c2:1", Payload: make([]byte, 972)})
	}
	clk.RunUntilIdle()
	total := last1
	if last2.After(total) {
		total = last2
	}
	elapsed := total.Sub(clock.Epoch)
	// 200 × 1000 wire bytes = 1.6 Mb at 800 kb/s = 2s.
	if elapsed < 1800*time.Millisecond || elapsed > 2300*time.Millisecond {
		t.Fatalf("shared egress drained in %v, want ≈2s", elapsed)
	}
}

func TestEgressOverflowDrops(t *testing.T) {
	clk := clock.NewSim()
	net := New(clk, 42)
	net.SetLink("srv", "c1", LinkConfig{Bandwidth: 100_000_000, QueueLimit: time.Hour})
	net.SetEgressLimit("srv", 8_000, 100*time.Millisecond)
	drops := 0
	net.DropHandler = func(_ Packet, reason string) {
		if reason == "egress overflow" {
			drops++
		}
	}
	for i := 0; i < 50; i++ {
		net.Send(Packet{From: "srv:1", To: "c1:1", Payload: make([]byte, 1000)})
	}
	clk.RunUntilIdle()
	if drops == 0 {
		t.Fatal("no egress drops under saturation")
	}
}

func TestEgressLimitRemoval(t *testing.T) {
	clk := clock.NewSim()
	net := New(clk, 43)
	net.SetEgressLimit("srv", 1000, 0)
	net.SetEgressLimit("srv", 0, 0) // removes the cap
	net.SetLink("srv", "c1", LinkConfig{})
	got := 0
	net.Listen("c1:1", func(Packet) { got++ })
	for i := 0; i < 10; i++ {
		net.Send(Packet{From: "srv:1", To: "c1:1", Payload: make([]byte, 1000)})
	}
	clk.RunUntilIdle()
	if got != 10 {
		t.Fatalf("delivered %d", got)
	}
}

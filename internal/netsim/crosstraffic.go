package netsim

import (
	"time"

	"repro/internal/clock"
	"repro/internal/stats"
)

// CrossTraffic describes a background load generator on one link direction:
// an on/off (burst) source that injects filler packets which compete with
// the service's traffic for the link's serializer — the "network's load
// conditions and probabilistic behavior" the paper's buffering is built to
// absorb.
type CrossTraffic struct {
	// Rate is the mean offered rate in bits/s while On.
	Rate float64
	// PacketSize is the filler packet payload size (default 1000 bytes).
	PacketSize int
	// OnMean/OffMean are the mean burst and silence durations of the
	// on/off process (exponentially distributed). Zero OffMean means a
	// constant source.
	OnMean, OffMean time.Duration
	// Start/Duration bound the generator's activity (zero Duration =
	// forever).
	Start, Duration time.Duration
}

// crossState runs one cross-traffic source.
type crossState struct {
	net      *Network
	clk      clock.Clock
	cfg      CrossTraffic
	from, to string
	rng      *stats.RNG
	on       bool
	stopped  bool
	epoch    time.Time
}

// AddCrossTraffic starts a background traffic source on the directed link.
// The sending host's shard clock drives it, so in simulations (sharded or
// not) it participates in the same deterministic event order as everything
// else on that shard; its RNG splits off the shard's stream, preserving the
// single-shard draw sequence exactly.
func (n *Network) AddCrossTraffic(from, to string, cfg CrossTraffic) {
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = 1000
	}
	if cfg.Rate <= 0 {
		return
	}
	s := n.shardFor(from)
	s.mu.Lock()
	rng := s.rng.Split()
	s.mu.Unlock()
	cs := &crossState{net: n, clk: s.clk, cfg: cfg, from: from, to: to, rng: rng, on: true, epoch: n.epoch}
	s.clk.AfterFunc(cfg.Start, cs.tick)
	if cfg.OffMean > 0 {
		s.clk.AfterFunc(cfg.Start+cs.expDur(cfg.OnMean), cs.toggle)
	}
}

func (cs *crossState) expDur(mean time.Duration) time.Duration {
	if mean <= 0 {
		mean = time.Second
	}
	return time.Duration(cs.rng.Exp(float64(mean)))
}

func (cs *crossState) done(now time.Time) bool {
	if cs.cfg.Duration <= 0 {
		return false
	}
	return now.Sub(cs.epoch) >= cs.cfg.Start+cs.cfg.Duration
}

// tick emits one filler packet and schedules the next at the configured
// rate (exponential inter-arrivals → Poisson packet process).
func (cs *crossState) tick() {
	now := cs.clk.Now()
	if cs.stopped || cs.done(now) {
		return
	}
	if cs.on {
		cs.net.Send(Packet{
			From:    Addr(cs.from + ":0"),
			To:      Addr(cs.to + ":0"),
			Payload: make([]byte, cs.cfg.PacketSize),
		})
	}
	wire := float64((cs.cfg.PacketSize + headerOverhead) * 8)
	gap := time.Duration(wire / cs.cfg.Rate * float64(time.Second))
	next := time.Duration(cs.rng.Exp(float64(gap)))
	if next < time.Microsecond {
		next = time.Microsecond
	}
	cs.clk.AfterFunc(next, cs.tick)
}

// toggle flips the on/off burst state.
func (cs *crossState) toggle() {
	now := cs.clk.Now()
	if cs.stopped || cs.done(now) {
		return
	}
	cs.on = !cs.on
	mean := cs.cfg.OnMean
	if !cs.on {
		mean = cs.cfg.OffMean
	}
	cs.clk.AfterFunc(cs.expDur(mean), cs.toggle)
}

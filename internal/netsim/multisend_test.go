package netsim

import (
	"testing"
	"time"

	"repro/internal/clock"
)

// TestSendMultiFanOutAndOwnership pins the multicast contract: one SendMulti
// call delivers to every destination, and the caller owns its payload buffer
// again the moment the call returns — mutating it immediately must not
// corrupt any of the scheduled copies.
func TestSendMultiFanOutAndOwnership(t *testing.T) {
	clk := clock.NewSim()
	net := New(clk, 5)
	net.SetLink("a", "b", LinkConfig{Delay: time.Millisecond})
	net.SetLink("a", "c", LinkConfig{Delay: 3 * time.Millisecond})
	got := map[string]string{}
	net.Listen("b:1", func(p Packet) { got["b"] = string(append([]byte(nil), p.Payload...)) })
	net.Listen("c:1", func(p Packet) { got["c"] = string(append([]byte(nil), p.Payload...)) })

	const want = "shared-flow-frame"
	buf := []byte(want)
	if err := net.SendMulti(Packet{From: "a:1", Payload: buf}, []Addr{"b:1", "c:1"}); err != nil {
		t.Fatal(err)
	}
	// Caller reuses (pools) its buffer immediately — both in-flight copies
	// must be unaffected.
	for i := range buf {
		buf[i] = 'X'
	}
	clk.RunFor(time.Second)
	if got["b"] != want || got["c"] != want {
		t.Fatalf("deliveries = %v, want %q at both destinations", got, want)
	}
}

// TestSendMultiPerDestinationFaults verifies a fault against one destination
// drops only that copy: the batch still returns nil (like stochastic loss in
// Send) and the other destinations receive their frames.
func TestSendMultiPerDestinationFaults(t *testing.T) {
	clk := clock.NewSim()
	net := New(clk, 5)
	net.SetLink("a", "b", LinkConfig{Delay: time.Millisecond})
	net.SetLink("a", "c", LinkConfig{Delay: time.Millisecond})
	var bPkts, cPkts int
	net.Listen("b:1", func(Packet) { bPkts++ })
	net.Listen("c:1", func(Packet) { cPkts++ })

	net.DropNext("a", "b", 1)
	if err := net.SendMulti(Packet{From: "a:1", Payload: []byte("x")}, []Addr{"b:1", "c:1"}); err != nil {
		t.Fatalf("per-destination fault failed the batch: %v", err)
	}
	clk.RunFor(time.Second)
	if bPkts != 0 {
		t.Fatalf("faulted destination received %d packets, want 0", bPkts)
	}
	if cPkts != 1 {
		t.Fatalf("healthy destination received %d packets, want 1", cPkts)
	}
	if st := net.Stats("a", "b"); st.Dropped != 1 {
		t.Fatalf("a→b drop not accounted: %+v", st)
	}
}

// TestSendMultiChargesEgressOnce pins the multicast economics: fanning one
// packet out to N subscribers serializes it once on the sender's uplink. A
// second SendMulti issued at the same instant must therefore depart only one
// egress transmission later, not N.
func TestSendMultiChargesEgressOnce(t *testing.T) {
	clk := clock.NewSim()
	net := New(clk, 5)
	// 8000 bit/s uplink and 1000-byte frames: one serialization = 1s.
	net.SetEgressLimit("a", 8000, 10*time.Second)
	net.SetLink("a", "b", LinkConfig{})
	net.SetLink("a", "c", LinkConfig{})
	net.SetLink("a", "d", LinkConfig{})
	var arrivals []time.Duration
	start := clk.Now()
	for _, h := range []Addr{"b:1", "c:1", "d:1"} {
		net.Listen(h, func(p Packet) { arrivals = append(arrivals, clk.Now().Sub(start)) })
	}
	frame := make([]byte, 1000)
	tos := []Addr{"b:1", "c:1", "d:1"}
	if err := net.SendMulti(Packet{From: "a:1", Payload: frame, Reliable: true}, tos); err != nil {
		t.Fatal(err)
	}
	if err := net.SendMulti(Packet{From: "a:1", Payload: frame, Reliable: true}, tos); err != nil {
		t.Fatal(err)
	}
	clk.RunFor(time.Minute)
	if len(arrivals) != 6 {
		t.Fatalf("deliveries = %d, want 6", len(arrivals))
	}
	var last time.Duration
	for _, a := range arrivals {
		if a > last {
			last = a
		}
	}
	// Two fan-outs × one serialization each ≈ 2s. Per-copy charging would
	// push the tail past 6s.
	if last > 3*time.Second {
		t.Fatalf("last delivery at %v; egress looks charged per copy, not per fan-out", last)
	}
}

// sendOnlyNet hides Network's SendMulti so SendToAll must take its fallback
// path.
type sendOnlyNet struct{ n *Network }

func (s sendOnlyNet) Send(p Packet) error            { return s.n.Send(p) }
func (s sendOnlyNet) Listen(a Addr, h Handler) error { return s.n.Listen(a, h) }

// TestSendToAllFallback verifies the helper fans out with per-destination
// Send calls when the transport has no SendMulti.
func TestSendToAllFallback(t *testing.T) {
	clk := clock.NewSim()
	net := New(clk, 5)
	net.SetLink("a", "b", LinkConfig{Delay: time.Millisecond})
	net.SetLink("a", "c", LinkConfig{Delay: time.Millisecond})
	var bPkts, cPkts int
	net.Listen("b:1", func(Packet) { bPkts++ })
	net.Listen("c:1", func(Packet) { cPkts++ })
	if err := SendToAll(sendOnlyNet{net}, Packet{From: "a:1", Payload: []byte("x")}, []Addr{"b:1", "c:1"}); err != nil {
		t.Fatal(err)
	}
	clk.RunFor(time.Second)
	if bPkts != 1 || cPkts != 1 {
		t.Fatalf("fallback deliveries b=%d c=%d, want 1 each", bPkts, cPkts)
	}
}

package netsim

import (
	"testing"
	"time"

	"repro/internal/clock"
)

// TestSendCopiesPayloadOnEnqueue pins the packet-buffer ownership rule: the
// caller owns its payload again the moment Send returns, so mutating (or
// pooling) the buffer immediately after Send must not corrupt what the
// receiver sees — even when the link duplicates the packet and the second
// copy arrives much later.
func TestSendCopiesPayloadOnEnqueue(t *testing.T) {
	clk := clock.NewSim()
	net := New(clk, 7)
	net.SetLink("a", "b", LinkConfig{Delay: time.Millisecond, Dup: 1})
	var got [][]byte
	net.Listen("b:1", func(p Packet) {
		// The handler's payload is itself borrowed: copy it out.
		got = append(got, append([]byte(nil), p.Payload...))
	})
	const want = "payload-under-test"
	buf := []byte(want)
	if err := net.Send(Packet{From: "a:1", To: "b:1", Payload: buf}); err != nil {
		t.Fatal(err)
	}
	// Caller reuses its buffer immediately — the aliasing-corruption case.
	for i := range buf {
		buf[i] = 'X'
	}
	clk.RunFor(time.Second)
	if len(got) != 2 {
		t.Fatalf("deliveries = %d, want 2 (Dup=1 link duplicates every packet)", len(got))
	}
	for i, g := range got {
		if string(g) != want {
			t.Fatalf("delivery %d saw %q, want %q: Send aliased the caller's buffer", i, g, want)
		}
	}
}

// TestSendReusedBufferAcrossPackets drives many packets through one reused
// caller buffer with varying contents and sizes: every delivery (including
// duplicates) must see exactly the bytes that were in the buffer at its own
// Send call, proving copies are taken per-enqueue and released copies never
// leak into later packets.
func TestSendReusedBufferAcrossPackets(t *testing.T) {
	clk := clock.NewSim()
	net := New(clk, 11)
	net.SetLink("a", "b", LinkConfig{Delay: 2 * time.Millisecond, Jitter: 3 * time.Millisecond, Dup: 0.5})
	type rec struct{ n, size int }
	var seen []rec
	net.Listen("b:1", func(p Packet) {
		for _, c := range p.Payload[1:] {
			if c != p.Payload[0] {
				t.Fatalf("delivery mixed bytes %d and %d: in-flight copy corrupted", p.Payload[0], c)
			}
		}
		seen = append(seen, rec{int(p.Payload[0]), len(p.Payload)})
	})
	scratch := make([]byte, 0, 64)
	sent := map[int]int{} // packet number → size
	for i := 0; i < 40; i++ {
		size := 1 + (i*7)%64
		scratch = scratch[:size]
		for j := range scratch {
			scratch[j] = byte(i)
		}
		if err := net.Send(Packet{From: "a:1", To: "b:1", Payload: scratch}); err != nil {
			t.Fatal(err)
		}
		sent[i] = size
	}
	clk.RunFor(time.Second)
	if len(seen) < 40 {
		t.Fatalf("deliveries = %d, want ≥ 40 (lossless link)", len(seen))
	}
	for _, r := range seen {
		if sent[r.n] != r.size {
			t.Fatalf("packet %d delivered with %d bytes, sent with %d", r.n, r.size, sent[r.n])
		}
	}
}

// TestFaultDropLeavesCallerBufferAlone covers the drop path of the ownership
// rule: a fault-injected drop is decided before the copy is taken, Send
// returns an error, and the caller's buffer is untouched and immediately
// reusable.
func TestFaultDropLeavesCallerBufferAlone(t *testing.T) {
	clk := clock.NewSim()
	net := New(clk, 3)
	net.SetLink("a", "b", LinkConfig{Delay: time.Millisecond})
	var got []string
	net.Listen("b:1", func(p Packet) { got = append(got, string(p.Payload)) })
	net.DropNext("a", "b", 1)
	buf := []byte("dropped")
	if err := net.Send(Packet{From: "a:1", To: "b:1", Payload: buf}); err == nil {
		t.Fatal("fault drop should surface as a Send error")
	}
	if string(buf) != "dropped" {
		t.Fatalf("caller buffer mutated on drop path: %q", buf)
	}
	copy(buf, "follow!")
	if err := net.Send(Packet{From: "a:1", To: "b:1", Payload: buf}); err != nil {
		t.Fatal(err)
	}
	clk.RunFor(time.Second)
	if len(got) != 1 || got[0] != "follow!" {
		t.Fatalf("deliveries = %v, want just the follow-up packet", got)
	}
}

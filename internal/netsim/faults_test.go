package netsim

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
)

// count wires a delivery counter to an address.
func count(net *Network, addr Addr) *int {
	n := new(int)
	net.Listen(addr, func(Packet) { *n++ })
	return n
}

func TestPartitionWindowDropsBothDirections(t *testing.T) {
	clk, net := newSim()
	atB := count(net, "b:1")
	atA := count(net, "a:1")
	net.AddPartition("a", "b", time.Second, 2*time.Second)

	send := func() {
		net.Send(Packet{From: "a:9", To: "b:1", Payload: []byte("x"), Reliable: true})
		net.Send(Packet{From: "b:9", To: "a:1", Payload: []byte("y")})
	}
	send() // t=0: before the window
	clk.Advance(1500 * time.Millisecond)
	send() // t=1.5s: inside
	clk.Advance(2 * time.Second)
	send() // t=3.5s: after
	clk.RunUntilIdle()

	if *atB != 2 || *atA != 2 {
		t.Fatalf("deliveries a→b=%d b→a=%d, want 2 and 2", *atB, *atA)
	}
}

func TestPartitionSendError(t *testing.T) {
	clk, net := newSim()
	net.Listen("b:1", func(Packet) {})
	net.AddPartition("a", "b", 0, time.Second)
	err := net.Send(Packet{From: "a:1", To: "b:1", Payload: []byte("x")})
	if err == nil || !strings.Contains(err.Error(), "partition") {
		t.Fatalf("Send during partition = %v, want partition error", err)
	}
	clk.Advance(time.Second)
	if err := net.Send(Packet{From: "a:1", To: "b:1", Payload: []byte("x")}); err != nil {
		t.Fatalf("Send after partition = %v, want nil", err)
	}
	// Unrelated pair is unaffected during the window.
	if err := net.Send(Packet{From: "a:1", To: "c:1", Payload: []byte("x")}); err != nil {
		t.Fatalf("Send to unrelated host = %v, want nil", err)
	}
}

func TestOutageBlackholesHost(t *testing.T) {
	clk, net := newSim()
	atS := count(net, "s:1")
	atC := count(net, "c:1")
	net.AddOutage("s", 0, time.Second)

	net.Send(Packet{From: "c:1", To: "s:1", Payload: []byte("in")})
	net.Send(Packet{From: "s:1", To: "c:1", Payload: []byte("out")})
	clk.Advance(time.Second)
	net.Send(Packet{From: "c:1", To: "s:1", Payload: []byte("in")})
	net.Send(Packet{From: "s:1", To: "c:1", Payload: []byte("out")})
	clk.RunUntilIdle()

	if *atS != 1 || *atC != 1 {
		t.Fatalf("deliveries to s=%d to c=%d, want 1 and 1", *atS, *atC)
	}
}

func TestHostDownAndRestart(t *testing.T) {
	clk, net := newSim()
	atS := count(net, "s:1")
	net.SetHostDown("s", true)
	if !net.HostDown("s") {
		t.Fatal("HostDown = false after SetHostDown(true)")
	}
	if err := net.Send(Packet{From: "c:1", To: "s:1", Payload: []byte("x")}); err == nil {
		t.Fatal("Send to down host succeeded")
	}
	net.SetHostDown("s", false)
	if err := net.Send(Packet{From: "c:1", To: "s:1", Payload: []byte("x")}); err != nil {
		t.Fatalf("Send after restart = %v", err)
	}
	clk.RunUntilIdle()
	if *atS != 1 {
		t.Fatalf("deliveries = %d, want 1", *atS)
	}
}

func TestDropNextCountsExactly(t *testing.T) {
	clk, net := newSim()
	atB := count(net, "b:1")
	net.DropNext("a", "b", 2)
	for i := 0; i < 4; i++ {
		net.Send(Packet{From: "a:1", To: "b:1", Payload: []byte("x"), Reliable: true})
	}
	// Reverse direction is untouched.
	atA := count(net, "a:1")
	net.Send(Packet{From: "b:1", To: "a:1", Payload: []byte("y")})
	clk.RunUntilIdle()
	if *atB != 2 {
		t.Fatalf("a→b deliveries = %d, want 2 (2 dropped)", *atB)
	}
	if *atA != 1 {
		t.Fatalf("b→a deliveries = %d, want 1", *atA)
	}
}

func TestFaultDropsReportedToDropHandler(t *testing.T) {
	clk, net := newSim()
	var reasons []string
	net.DropHandler = func(_ Packet, reason string) { reasons = append(reasons, reason) }
	net.Listen("b:1", func(Packet) {})
	net.DropNext("a", "b", 1)
	net.Send(Packet{From: "a:1", To: "b:1", Payload: []byte("x")})
	clk.RunUntilIdle()
	if len(reasons) != 1 || !strings.Contains(reasons[0], "one-shot drop") {
		t.Fatalf("drop reasons = %v", reasons)
	}
	st := net.Stats("a", "b")
	if st.Dropped != 1 {
		t.Fatalf("link dropped = %d, want 1", st.Dropped)
	}
}

// TestFaultScheduleDeterministic replays the same seed and fault schedule
// over a lossy link and expects bit-identical delivery traces.
func TestFaultScheduleDeterministic(t *testing.T) {
	run := func() []time.Duration {
		clk := clock.NewSim()
		net := New(clk, 77)
		net.SetLink("a", "b", LinkConfig{Delay: 10 * time.Millisecond, Loss: 0.2})
		var arrivals []time.Duration
		net.Listen("b:1", func(Packet) { arrivals = append(arrivals, clk.Since(clock.Epoch)) })
		net.AddPartition("a", "b", 200*time.Millisecond, 300*time.Millisecond)
		for i := 0; i < 50; i++ {
			net.Send(Packet{From: "a:1", To: "b:1", Payload: []byte("x")})
			clk.Advance(20 * time.Millisecond)
		}
		clk.RunUntilIdle()
		return arrivals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	if len(a) == 0 || len(a) == 50 {
		t.Fatalf("arrivals = %d, want some but not all of 50", len(a))
	}
}

// TestFaultSendErrorsAreTyped pins the typed fault causes: callers (and the
// chaos suite) distinguish a crashed host from a partition or an outage with
// errors.Is instead of string matching.
func TestFaultSendErrorsAreTyped(t *testing.T) {
	_, net := newSim()
	net.Listen("s:1", func(Packet) {})

	net.SetHostDown("s", true)
	err := net.Send(Packet{From: "c:1", To: "s:1", Payload: []byte("x")})
	if !errors.Is(err, ErrHostDown) {
		t.Fatalf("Send to down host = %v, want ErrHostDown", err)
	}
	if errors.Is(err, ErrPartitioned) || errors.Is(err, ErrOutage) {
		t.Fatalf("host-down error matches the wrong sentinel: %v", err)
	}
	net.SetHostDown("s", false)

	net.AddPartition("c", "s", 0, time.Second)
	err = net.Send(Packet{From: "c:1", To: "s:1", Payload: []byte("x")})
	if !errors.Is(err, ErrPartitioned) {
		t.Fatalf("Send across partition = %v, want ErrPartitioned", err)
	}
	if errors.Is(err, ErrHostDown) {
		t.Fatalf("partition error matches ErrHostDown: %v", err)
	}

	net.AddOutage("o", 0, time.Second)
	err = net.Send(Packet{From: "c:1", To: "o:1", Payload: []byte("x")})
	if !errors.Is(err, ErrOutage) {
		t.Fatalf("Send into outage = %v, want ErrOutage", err)
	}
}

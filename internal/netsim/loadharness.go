// The netsim load harness: the packet-throughput workload behind
// `make bench-netsim` (BENCH_netsim.json) and the determinism regression
// tests. Two scenarios:
//
//   - RunLoad: a steady-state packet mill — G fixed host groups, each with a
//     population of paced clients talking mostly to their own group's server
//     with a deterministic fraction of remote traffic. The group structure
//     is independent of the shard count (group → shard is g mod shards), so
//     the same seed offers the identical workload at every shard count and
//     the shards=1 row is a true baseline for the speedup column.
//
//   - RunAdmissionStorm: the scale headline — 100k+ clients connect over a
//     short ramp, each admitted with a reliable connect/ack exchange and two
//     paced follow-ups. Memory stays bounded because per-link delay records
//     live in fixed-cap reservoirs (SetDelaySampleCap).
//
// Both report the network's replay digest, which the determinism tests
// compare across GOMAXPROCS settings and reruns.
package netsim

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/clock"
)

// LoadConfig parameterizes the steady-state packet mill.
type LoadConfig struct {
	Shards          int           // virtual-clock shards (default 1)
	Groups          int           // fixed host groups, workload-invariant (default 8)
	ClientsPerGroup int           // paced senders per group (default 64)
	Lookahead       time.Duration // conservative window = min cross-group delay (default 10ms)
	Duration        time.Duration // simulated run length (default 5s)
	SendEvery       time.Duration // per-client send period (default 20ms)
	RemotePermille  int           // ‰ of sends aimed at a remote group's server (default 100)
	PayloadSize     int           // bytes per packet (default 512)
	Seed            uint64
}

func (c *LoadConfig) defaults() {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Groups < 1 {
		c.Groups = 8
	}
	if c.ClientsPerGroup < 1 {
		c.ClientsPerGroup = 64
	}
	if c.Lookahead <= 0 {
		c.Lookahead = 10 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.SendEvery <= 0 {
		c.SendEvery = 20 * time.Millisecond
	}
	if c.RemotePermille < 0 {
		c.RemotePermille = 0
	}
	if c.RemotePermille == 0 {
		c.RemotePermille = 100
	}
	if c.PayloadSize <= 0 {
		c.PayloadSize = 512
	}
}

// LoadResult is one harness run's report; JSON-tagged for BENCH_netsim.json.
type LoadResult struct {
	Shards           int     `json:"shards"`
	Groups           int     `json:"groups"`
	Clients          int     `json:"clients"`
	SimSeconds       float64 `json:"sim_seconds"`
	WallMillis       float64 `json:"wall_millis"`
	Events           int     `json:"events"`
	PacketsSent      int     `json:"packets_sent"`
	PacketsDelivered int     `json:"packets_delivered"`
	PacketsDropped   int     `json:"packets_dropped"`
	// PacketsPerSec is simulated packet deliveries per wall-clock second —
	// the throughput the speedup column is computed from.
	PacketsPerSec    float64 `json:"packets_per_sec"`
	CrossSent        int64   `json:"cross_sent"`
	CrossClamps      int64   `json:"cross_clamps"`
	MailboxHighWater int64   `json:"mailbox_high_water"`
	BarrierRounds    int64   `json:"barrier_rounds"`
	Digest           uint64  `json:"digest"`
	HeapMB           float64 `json:"heap_mb"`
}

// Host naming: group g's server is "gNN-srv", its clients "gNN-cJJJJJJ". The
// group number is what the shard map keys on, so placement is a pure
// function of the name.
func groupServer(g int) string    { return fmt.Sprintf("g%02d-srv", g) }
func groupClient(g, j int) string { return fmt.Sprintf("g%02d-c%06d", g, j) }
func hostGroup(host string) int {
	g := 0
	for i := 1; i < len(host) && host[i] >= '0' && host[i] <= '9'; i++ {
		g = g*10 + int(host[i]-'0')
	}
	return g
}

// GroupShardOf is the harness's host→shard assignment: group g lands on
// shard g mod shards, so co-group hosts always share a shard and the group
// structure (and therefore the workload) is invariant across shard counts.
func GroupShardOf(shards int) func(string) int {
	if shards < 1 {
		shards = 1
	}
	return func(host string) int { return hostGroup(host) % shards }
}

// buildLoadNet stands up the sharded driver and network for a harness run:
// intra-group links are short (2ms), everything else — including every
// possible cross-group and therefore cross-shard path — uses the default
// link whose propagation delay equals the lookahead.
func buildLoadNet(shards int, lookahead time.Duration, seed uint64) (*clock.ShardedVirtual, *Network) {
	sv := clock.NewShardedSim(shards, lookahead)
	n := NewSharded(sv, seed, GroupShardOf(shards))
	n.SetDefaultLink(LinkConfig{
		Bandwidth: 100_000_000,
		Delay:     lookahead,
		Jitter:    2 * time.Millisecond,
		Loss:      0.002,
	})
	return sv, n
}

// RunLoad drives the steady-state packet mill and reports throughput.
func RunLoad(cfg LoadConfig) LoadResult {
	cfg.defaults()
	sv, n := buildLoadNet(cfg.Shards, cfg.Lookahead, cfg.Seed)
	intra := LinkConfig{
		Bandwidth: 100_000_000,
		Delay:     2 * time.Millisecond,
		Jitter:    500 * time.Microsecond,
		Loss:      0.001,
	}
	for g := 0; g < cfg.Groups; g++ {
		n.Listen(Addr(groupServer(g)+":7000"), func(Packet) {})
	}
	horizon := clock.Epoch.Add(cfg.Duration)
	payload := make([]byte, cfg.PayloadSize)
	for g := 0; g < cfg.Groups; g++ {
		for j := 0; j < cfg.ClientsPerGroup; j++ {
			g, j := g, j
			host := groupClient(g, j)
			n.SetLink(host, groupServer(g), intra)
			id := uint64(g)<<32 | uint64(j)
			shard := sv.Shard(GroupShardOf(cfg.Shards)(host))
			from := Addr(host + ":9000")
			seq := 0
			var tick func()
			tick = func() {
				seq++
				// Destination choice is pure arithmetic on (seed, id, seq):
				// identical at every shard count and GOMAXPROCS.
				draw := mix64(cfg.Seed ^ id ^ uint64(seq)<<1)
				dstGroup := g
				if cfg.Groups > 1 && int(draw%1000) < cfg.RemotePermille {
					dstGroup = int((draw >> 10) % uint64(cfg.Groups-1))
					if dstGroup >= g {
						dstGroup++
					}
				}
				n.Send(Packet{
					From:    from,
					To:      Addr(groupServer(dstGroup) + ":7000"),
					Payload: payload,
				})
				if next := shard.Now().Add(cfg.SendEvery); next.Before(horizon) {
					shard.AfterFunc(cfg.SendEvery, tick)
				}
			}
			// Staggered deterministic start phase within one period.
			phase := time.Duration(mix64(cfg.Seed^id) % uint64(cfg.SendEvery))
			shard.AfterFunc(phase, tick)
		}
	}

	runtime.GC()
	start := time.Now()
	events := sv.Run(horizon)
	wall := time.Since(start)

	return finishResult(cfg.Shards, cfg.Groups, cfg.Groups*cfg.ClientsPerGroup,
		cfg.Duration, wall, events, sv, n)
}

// StormConfig parameterizes the admission storm.
type StormConfig struct {
	Shards    int
	Groups    int           // default 8
	Clients   int           // default 100_000
	Ramp      time.Duration // connect arrivals spread over this window (default 2s)
	Lookahead time.Duration // default 10ms
	Seed      uint64
}

func (c *StormConfig) defaults() {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Groups < 1 {
		c.Groups = 8
	}
	if c.Clients < 1 {
		c.Clients = 100_000
	}
	if c.Ramp <= 0 {
		c.Ramp = 2 * time.Second
	}
	if c.Lookahead <= 0 {
		c.Lookahead = 10 * time.Millisecond
	}
}

// StormResult reports the admission storm; JSON-tagged for BENCH_netsim.json.
type StormResult struct {
	Shards           int     `json:"shards"`
	Clients          int     `json:"clients"`
	Acked            int64   `json:"acked"`
	SimSeconds       float64 `json:"sim_seconds"`
	WallMillis       float64 `json:"wall_millis"`
	Events           int     `json:"events"`
	PacketsSent      int     `json:"packets_sent"`
	PacketsDelivered int     `json:"packets_delivered"`
	PacketsDropped   int     `json:"packets_dropped"`
	PacketsPerSec    float64 `json:"packets_per_sec"`
	CrossSent        int64   `json:"cross_sent"`
	MailboxHighWater int64   `json:"mailbox_high_water"`
	Digest           uint64  `json:"digest"`
	HeapMB           float64 `json:"heap_mb"`
}

// RunAdmissionStorm connects cfg.Clients clients over the ramp window: each
// sends a reliable connect, the group server acks it reliably, and the
// client follows up with two paced unreliable requests — roughly four
// packets per client, >400k for the default 100k clients. Per-link delay
// reservoirs keep memory bounded no matter the population.
func RunAdmissionStorm(cfg StormConfig) StormResult {
	cfg.defaults()
	sv, n := buildLoadNet(cfg.Shards, cfg.Lookahead, cfg.Seed)

	// acked is indexed by shard; each slot is only ever touched by its own
	// shard's worker (the ack handler runs on the client's shard).
	acked := make([]int64, cfg.Shards)
	shardOf := GroupShardOf(cfg.Shards)
	for g := 0; g < cfg.Groups; g++ {
		srv := Addr(groupServer(g) + ":7000")
		n.Listen(srv, func(pkt Packet) {
			if len(pkt.Payload) == connectSize {
				n.Send(Packet{From: srv, To: pkt.From, Payload: ackPayload, Reliable: true})
			}
		})
	}
	followUp := make([]byte, 64)
	for i := 0; i < cfg.Clients; i++ {
		i := i
		g := i % cfg.Groups
		host := groupClient(g, i/cfg.Groups)
		from := Addr(host + ":9000")
		srv := Addr(groupServer(g) + ":7000")
		shardID := shardOf(host)
		shard := sv.Shard(shardID)
		gotAck := false
		n.Listen(from, func(Packet) {
			if gotAck {
				return
			}
			gotAck = true
			acked[shardID]++
			for k := 1; k <= 2; k++ {
				// The second follow-up of every tenth client fetches from a
				// remote group's server, so the storm also exercises the
				// cross-shard mailbox (deterministic on seed, client, k).
				dst := srv
				if k == 2 && i%10 == 0 && cfg.Groups > 1 {
					rg := int(mix64(cfg.Seed^uint64(i)^uint64(k)) % uint64(cfg.Groups-1))
					if rg >= g {
						rg++
					}
					dst = Addr(groupServer(rg) + ":7000")
				}
				shard.AfterFunc(time.Duration(k)*50*time.Millisecond, func() {
					n.Send(Packet{From: from, To: dst, Payload: followUp})
				})
			}
		})
		// Arrivals spread uniformly over the ramp, deterministically jittered.
		at := time.Duration(uint64(cfg.Ramp) * uint64(i) / uint64(cfg.Clients))
		at += time.Duration(mix64(cfg.Seed^uint64(i)) % uint64(time.Millisecond))
		shard.AfterFunc(at, func() {
			n.Send(Packet{From: from, To: srv, Payload: connectPayload, Reliable: true})
		})
	}

	runtime.GC()
	start := time.Now()
	events := sv.RunUntilIdle()
	wall := time.Since(start)

	var ackTotal int64
	for _, a := range acked {
		ackTotal += a
	}
	lr := finishResult(cfg.Shards, cfg.Groups, cfg.Clients, sv.Since(clock.Epoch), wall, events, sv, n)
	return StormResult{
		Shards:           lr.Shards,
		Clients:          cfg.Clients,
		Acked:            ackTotal,
		SimSeconds:       lr.SimSeconds,
		WallMillis:       lr.WallMillis,
		Events:           lr.Events,
		PacketsSent:      lr.PacketsSent,
		PacketsDelivered: lr.PacketsDelivered,
		PacketsDropped:   lr.PacketsDropped,
		PacketsPerSec:    lr.PacketsPerSec,
		CrossSent:        lr.CrossSent,
		MailboxHighWater: lr.MailboxHighWater,
		Digest:           lr.Digest,
		HeapMB:           lr.HeapMB,
	}
}

const connectSize = 128

var (
	connectPayload = make([]byte, connectSize)
	ackPayload     = make([]byte, 32)
)

// finishResult rolls one completed run into a LoadResult.
func finishResult(shards, groups, clients int, simDur, wall time.Duration, events int, sv *clock.ShardedVirtual, n *Network) LoadResult {
	sent, delivered, dropped, _ := n.Totals()
	crossSent, clamps, _, hw, rounds := sv.CrossStats()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	pps := 0.0
	if wall > 0 {
		pps = float64(delivered) / wall.Seconds()
	}
	return LoadResult{
		Shards:           shards,
		Groups:           groups,
		Clients:          clients,
		SimSeconds:       simDur.Seconds(),
		WallMillis:       float64(wall) / float64(time.Millisecond),
		Events:           events,
		PacketsSent:      sent,
		PacketsDelivered: delivered,
		PacketsDropped:   dropped,
		PacketsPerSec:    pps,
		CrossSent:        crossSent,
		CrossClamps:      clamps,
		MailboxHighWater: hw,
		BarrierRounds:    rounds,
		Digest:           n.DeliveryDigest(),
		HeapMB:           float64(ms.HeapAlloc) / (1 << 20),
	}
}

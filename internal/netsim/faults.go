// Fault injection for the simulated network: scheduled bidirectional
// partitions between host pairs, scheduled host blackouts (outages), manual
// host crash/restart, and one-shot targeted drops. Faults kill packets of
// both reliability classes at Send time — a partition severs the modeled
// TCP connection just as it severs UDP — so the control plane's own
// retransmission, liveness and failover machinery is what has to recover.
//
// All fault schedules are expressed as offsets from the network's epoch
// (the clock time at New), the same convention as Phase, so a run is fully
// determined by the seed and the fault schedule.
//
// Fault state is global to the network — a partition spans two shards by
// nature — so it lives behind its own small lock rather than any shard's.
// An atomic fault-count keeps the fault-free hot path lock-free: when no
// fault of any kind is registered, check returns without touching the
// mutex, so sharded senders never serialize on it. Scheduled windows
// (AddPartition, AddOutage) are deterministic under sharding because they
// are pure functions of the epoch offset; dynamic flips (SetHostDown,
// DropNext) issued from outside the simulation while shards are running are
// race-safe but land at a nondeterministic window boundary — drive them
// from simulated events (timers on a shard clock) when replay fidelity
// matters.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Typed fault causes. Send wraps these with %w, so tests and cluster logic
// can distinguish a crashed host from a partition or an outage with
// errors.Is instead of matching on the error string:
//
//	if errors.Is(net.Send(pkt), netsim.ErrHostDown) { ... }
var (
	// ErrHostDown is the cause when either endpoint is crashed (SetHostDown).
	ErrHostDown = errors.New("host down")
	// ErrOutage is the cause during a scheduled host blackout (AddOutage).
	ErrOutage = errors.New("outage")
	// ErrPartitioned is the cause inside a scheduled partition window
	// (AddPartition).
	ErrPartitioned = errors.New("partition")
)

// faultWindow is one scheduled fault interval, as offsets from the epoch.
type faultWindow struct {
	start, end time.Duration
}

func (w faultWindow) contains(off time.Duration) bool {
	return off >= w.start && off < w.end
}

// oneShotDrop swallows the next n packets matching its predicate.
type oneShotDrop struct {
	remaining int
	reason    string
	match     func(Packet) bool
}

// partitionKey is direction-independent: a partition severs both ways.
func partitionKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "⇹" + b
}

// faultState holds every injected fault, guarded by its own mutex with an
// atomic registered-fault count as the lock-free fast path.
type faultState struct {
	mu         sync.Mutex
	active     atomic.Int32
	partitions map[string][]faultWindow
	outages    map[string][]faultWindow
	downHosts  map[string]bool
	oneShots   []*oneShotDrop
}

// recountLocked refreshes the fast-path counter after a mutation.
func (f *faultState) recountLocked() {
	n := len(f.downHosts) + len(f.oneShots)
	for _, ws := range f.partitions {
		n += len(ws)
	}
	for _, ws := range f.outages {
		n += len(ws)
	}
	f.active.Store(int32(n))
}

// AddPartition schedules a bidirectional partition between hosts a and b:
// every packet between them sent in [start, start+duration) — reliable or
// not — is dropped. start is an offset from the network's epoch.
func (n *Network) AddPartition(a, b string, start, duration time.Duration) {
	f := &n.faults
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.partitions == nil {
		f.partitions = map[string][]faultWindow{}
	}
	key := partitionKey(a, b)
	f.partitions[key] = append(f.partitions[key], faultWindow{start: start, end: start + duration})
	f.recountLocked()
}

// AddOutage schedules a blackhole for one host: during [start,
// start+duration) every packet to or from it is dropped, modeling a crash
// followed by a restart. start is an offset from the network's epoch.
func (n *Network) AddOutage(host string, start, duration time.Duration) {
	f := &n.faults
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.outages == nil {
		f.outages = map[string][]faultWindow{}
	}
	f.outages[host] = append(f.outages[host], faultWindow{start: start, end: start + duration})
	f.recountLocked()
}

// SetHostDown crashes (true) or restarts (false) a host immediately: while
// down, every packet to or from it is dropped. Unlike AddOutage the
// duration is open-ended, for tests that decide recovery dynamically.
func (n *Network) SetHostDown(host string, down bool) {
	f := &n.faults
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.downHosts == nil {
		f.downHosts = map[string]bool{}
	}
	if down {
		f.downHosts[host] = true
	} else {
		delete(f.downHosts, host)
	}
	f.recountLocked()
}

// HostDown reports whether the host is currently crashed via SetHostDown.
func (n *Network) HostDown(host string) bool {
	f := &n.faults
	if f.active.Load() == 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.downHosts[host]
}

// DropNext swallows the next count packets sent from one host to another
// (either direction fixed by the arguments), regardless of reliability —
// the precision tool for losing exactly one reply.
func (n *Network) DropNext(from, to string, count int) {
	n.DropNextMatching(count, fmt.Sprintf("one-shot drop %s→%s", from, to), func(pkt Packet) bool {
		return pkt.From.Host() == from && pkt.To.Host() == to
	})
}

// DropNextMatching swallows the next count packets satisfying pred. reason
// is reported to the DropHandler and in the Send error.
func (n *Network) DropNextMatching(count int, reason string, pred func(Packet) bool) {
	if count <= 0 || pred == nil {
		return
	}
	f := &n.faults
	f.mu.Lock()
	defer f.mu.Unlock()
	f.oneShots = append(f.oneShots, &oneShotDrop{remaining: count, reason: reason, match: pred})
	f.recountLocked()
}

// check decides whether an injected fault kills the packet. offset is the
// send time relative to the epoch. The returned error wraps the typed
// cause (ErrHostDown, ErrOutage, ErrPartitioned) and its text doubles as
// the DropHandler reason. With no faults registered it is a single atomic
// load.
func (f *faultState) check(pkt Packet, offset time.Duration) (error, bool) {
	if f.active.Load() == 0 {
		return nil, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	fromH, toH := pkt.From.Host(), pkt.To.Host()
	if f.downHosts[fromH] {
		return fmt.Errorf("%w: %s", ErrHostDown, fromH), true
	}
	if f.downHosts[toH] {
		return fmt.Errorf("%w: %s", ErrHostDown, toH), true
	}
	for _, w := range f.outages[fromH] {
		if w.contains(offset) {
			return fmt.Errorf("%w: %s", ErrOutage, fromH), true
		}
	}
	for _, w := range f.outages[toH] {
		if w.contains(offset) {
			return fmt.Errorf("%w: %s", ErrOutage, toH), true
		}
	}
	for _, w := range f.partitions[partitionKey(fromH, toH)] {
		if w.contains(offset) {
			return fmt.Errorf("%w: %s⇹%s", ErrPartitioned, fromH, toH), true
		}
	}
	for i, os := range f.oneShots {
		if os.match(pkt) {
			os.remaining--
			if os.remaining <= 0 {
				f.oneShots = append(f.oneShots[:i], f.oneShots[i+1:]...)
				f.recountLocked()
			}
			return errors.New(os.reason), true
		}
	}
	return nil, false
}

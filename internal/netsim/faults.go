// Fault injection for the simulated network: scheduled bidirectional
// partitions between host pairs, scheduled host blackouts (outages), manual
// host crash/restart, and one-shot targeted drops. Faults kill packets of
// both reliability classes at Send time — a partition severs the modeled
// TCP connection just as it severs UDP — so the control plane's own
// retransmission, liveness and failover machinery is what has to recover.
//
// All fault schedules are expressed as offsets from the network's epoch
// (the clock time at New), the same convention as Phase, so a run is fully
// determined by the seed and the fault schedule.
package netsim

import (
	"errors"
	"fmt"
	"time"
)

// Typed fault causes. Send wraps these with %w, so tests and cluster logic
// can distinguish a crashed host from a partition or an outage with
// errors.Is instead of matching on the error string:
//
//	if errors.Is(net.Send(pkt), netsim.ErrHostDown) { ... }
var (
	// ErrHostDown is the cause when either endpoint is crashed (SetHostDown).
	ErrHostDown = errors.New("host down")
	// ErrOutage is the cause during a scheduled host blackout (AddOutage).
	ErrOutage = errors.New("outage")
	// ErrPartitioned is the cause inside a scheduled partition window
	// (AddPartition).
	ErrPartitioned = errors.New("partition")
)

// faultWindow is one scheduled fault interval, as offsets from the epoch.
type faultWindow struct {
	start, end time.Duration
}

func (w faultWindow) contains(off time.Duration) bool {
	return off >= w.start && off < w.end
}

// oneShotDrop swallows the next n packets matching its predicate.
type oneShotDrop struct {
	remaining int
	reason    string
	match     func(Packet) bool
}

// partitionKey is direction-independent: a partition severs both ways.
func partitionKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "⇹" + b
}

// AddPartition schedules a bidirectional partition between hosts a and b:
// every packet between them sent in [start, start+duration) — reliable or
// not — is dropped. start is an offset from the network's epoch.
func (n *Network) AddPartition(a, b string, start, duration time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.partitions == nil {
		n.partitions = map[string][]faultWindow{}
	}
	key := partitionKey(a, b)
	n.partitions[key] = append(n.partitions[key], faultWindow{start: start, end: start + duration})
}

// AddOutage schedules a blackhole for one host: during [start,
// start+duration) every packet to or from it is dropped, modeling a crash
// followed by a restart. start is an offset from the network's epoch.
func (n *Network) AddOutage(host string, start, duration time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.outages == nil {
		n.outages = map[string][]faultWindow{}
	}
	n.outages[host] = append(n.outages[host], faultWindow{start: start, end: start + duration})
}

// SetHostDown crashes (true) or restarts (false) a host immediately: while
// down, every packet to or from it is dropped. Unlike AddOutage the
// duration is open-ended, for tests that decide recovery dynamically.
func (n *Network) SetHostDown(host string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.downHosts == nil {
		n.downHosts = map[string]bool{}
	}
	if down {
		n.downHosts[host] = true
	} else {
		delete(n.downHosts, host)
	}
}

// HostDown reports whether the host is currently crashed via SetHostDown.
func (n *Network) HostDown(host string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.downHosts[host]
}

// DropNext swallows the next count packets sent from one host to another
// (either direction fixed by the arguments), regardless of reliability —
// the precision tool for losing exactly one reply.
func (n *Network) DropNext(from, to string, count int) {
	n.DropNextMatching(count, fmt.Sprintf("one-shot drop %s→%s", from, to), func(pkt Packet) bool {
		return pkt.From.Host() == from && pkt.To.Host() == to
	})
}

// DropNextMatching swallows the next count packets satisfying pred. reason
// is reported to the DropHandler and in the Send error.
func (n *Network) DropNextMatching(count int, reason string, pred func(Packet) bool) {
	if count <= 0 || pred == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.oneShots = append(n.oneShots, &oneShotDrop{remaining: count, reason: reason, match: pred})
}

// faultLocked decides whether an injected fault kills the packet. Caller
// holds n.mu. offset is the send time relative to the epoch. The returned
// error wraps the typed cause (ErrHostDown, ErrOutage, ErrPartitioned) and
// its text doubles as the DropHandler reason.
func (n *Network) faultLocked(pkt Packet, offset time.Duration) (error, bool) {
	fromH, toH := pkt.From.Host(), pkt.To.Host()
	if n.downHosts[fromH] {
		return fmt.Errorf("%w: %s", ErrHostDown, fromH), true
	}
	if n.downHosts[toH] {
		return fmt.Errorf("%w: %s", ErrHostDown, toH), true
	}
	for _, w := range n.outages[fromH] {
		if w.contains(offset) {
			return fmt.Errorf("%w: %s", ErrOutage, fromH), true
		}
	}
	for _, w := range n.outages[toH] {
		if w.contains(offset) {
			return fmt.Errorf("%w: %s", ErrOutage, toH), true
		}
	}
	for _, w := range n.partitions[partitionKey(fromH, toH)] {
		if w.contains(offset) {
			return fmt.Errorf("%w: %s⇹%s", ErrPartitioned, fromH, toH), true
		}
	}
	for i, os := range n.oneShots {
		if os.match(pkt) {
			os.remaining--
			if os.remaining <= 0 {
				n.oneShots = append(n.oneShots[:i], n.oneShots[i+1:]...)
			}
			return errors.New(os.reason), true
		}
	}
	return nil, false
}

// Package netsim is the broadband-network substrate: a deterministic
// packet-level network simulator with configurable bandwidth, propagation
// delay, jitter, random and bursty (Gilbert–Elliott) loss, and scripted
// congestion phases.
//
// The paper evaluated its service over 1996-era Internet/ATM testbeds whose
// only observable effects on the service are per-packet delay, delay
// variation and loss; netsim reproduces exactly those effects with
// controlled, repeatable statistics, which is what the buffering,
// synchronization and QoS-adaptation machinery react to.
//
// The simulator is driven by a clock.Clock: with a clock.Virtual it forms a
// discrete-event simulation, with clock.Wall it delays packets in real time.
//
// # Packet buffer ownership
//
// Send borrows pkt.Payload only for the duration of the call: the moment
// Send returns, the caller may reuse (or pool) the backing array. The
// simulated Network enforces this by copying the payload on enqueue into
// its own pooled buffer — delivery is deferred through the clock and may
// even duplicate the packet, so retaining the caller's slice would alias
// whatever the caller writes next. The pooled copy is released after the
// final delivery (or never taken for drops, which are decided before the
// copy). Symmetrically, the Payload a Handler receives is borrowed: it is
// valid only until the handler returns, after which the network may recycle
// it. Handlers that keep payload bytes — the client's frame reassembly, for
// example — must copy them out. Sniffer and DropHandler run synchronously
// inside Send and observe the caller's original buffer under the same rule.
// Every Net implementation (transport.Live encodes into fresh frames before
// returning; test sinks only count) honors the same contract.
package netsim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/stats"
)

// payloadPool recycles the in-flight payload copies made at Send time and
// released after each packet's final delivery.
var payloadPool buffer.Pool

// Addr is an endpoint address of the form "host:port".
type Addr string

// Host returns the host part of the address.
func (a Addr) Host() string {
	s := string(a)
	if i := strings.LastIndex(s, ":"); i >= 0 {
		return s[:i]
	}
	return s
}

// MakeAddr builds an Addr from host and port.
func MakeAddr(host string, port int) Addr {
	return Addr(fmt.Sprintf("%s:%d", host, port))
}

// Packet is one network datagram.
type Packet struct {
	From, To Addr
	Payload  []byte
	// Reliable selects the in-order lossless path (the simulator's model
	// of a TCP connection: losses become retransmission delay instead of
	// drops). Unreliable packets model UDP: they may be dropped or
	// reordered by jitter.
	Reliable bool
	// SentAt is stamped by the simulator at Send time.
	SentAt time.Time
}

// Size returns the wire size in bytes: payload plus a fixed per-packet
// header overhead (IP+UDP ≈ 28 bytes, counted for both paths for
// simplicity).
func (p *Packet) Size() int { return len(p.Payload) + headerOverhead }

const headerOverhead = 28

// Handler receives delivered packets.
type Handler func(Packet)

// Net is the datagram network the service components are written against:
// the simulated Network implements it for experiments, and
// transport.Live implements it over real UDP/TCP sockets for the
// cmd/hermesd and cmd/hermes binaries.
type Net interface {
	// Send injects a packet toward its destination. A non-nil error means
	// the transport itself refused or discarded the packet — a fault-injected
	// drop in the simulator, a closed or saturated socket in the live
	// transport. Ordinary stochastic loss inside the network is NOT an
	// error: it returns nil, exactly as a real socket send would.
	Send(Packet) error
	// Listen registers (or, with a nil handler, removes) the handler for
	// an address. It returns a non-nil error when the transport cannot
	// actually bind the address; only real-socket implementations can
	// fail — the simulated Network always returns nil.
	Listen(Addr, Handler) error
}

// MultiSender is optionally implemented by transports that can fan one
// packet out to several destinations with a single upstream transmission —
// the multicast model the shared-flow layer is built on. The payload
// ownership rule is identical to Send: the caller's buffer is borrowed only
// for the duration of the call. Implementations charge the sender's egress
// once for the whole fan-out; per-destination link behavior (loss, jitter,
// faults) still applies to each copy independently.
type MultiSender interface {
	SendMulti(pkt Packet, tos []Addr) error
}

// SendToAll fans pkt out to every destination, using the transport's
// SendMulti when it has one and falling back to one Send per destination.
// Callers on a hot path should cache the MultiSender assertion instead.
func SendToAll(nt Net, pkt Packet, tos []Addr) error {
	if ms, ok := nt.(MultiSender); ok {
		return ms.SendMulti(pkt, tos)
	}
	var first error
	for _, to := range tos {
		p := pkt
		p.To = to
		if err := nt.Send(p); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// LinkConfig describes one direction of a link between two hosts.
type LinkConfig struct {
	// Bandwidth is the link rate in bits per second (0 = infinite).
	Bandwidth float64
	// Delay is the fixed propagation delay.
	Delay time.Duration
	// Jitter is the maximum additional uniform random delay per packet.
	Jitter time.Duration
	// Loss is the independent per-packet loss probability [0,1).
	Loss float64
	// Dup is the probability an unreliable packet is delivered twice
	// (the duplicate arrives with fresh jitter), modeling routing
	// pathologies the receiver must tolerate.
	Dup float64
	// Burst enables Gilbert–Elliott two-state bursty loss on top of (or
	// instead of) independent loss.
	Burst *BurstLoss
	// QueueLimit bounds the serialization backlog: a packet whose queueing
	// delay would exceed it is dropped (tail drop). Zero = 500ms.
	QueueLimit time.Duration
}

// BurstLoss is a Gilbert–Elliott loss model: the link alternates between a
// Good state (loss = PGood) and a Bad state (loss = PBad), with per-packet
// transition probabilities.
type BurstLoss struct {
	PGood, PBad            float64 // loss probability in each state
	PGoodToBad, PBadToGood float64 // transition probabilities per packet
}

// DefaultLAN approximates a lightly loaded 10 Mb/s campus link.
func DefaultLAN() LinkConfig {
	return LinkConfig{Bandwidth: 10_000_000, Delay: 5 * time.Millisecond, Jitter: 2 * time.Millisecond, Loss: 0.0005}
}

// DefaultWAN approximates a mid-90s wide-area Internet path.
func DefaultWAN() LinkConfig {
	return LinkConfig{Bandwidth: 2_000_000, Delay: 40 * time.Millisecond, Jitter: 20 * time.Millisecond, Loss: 0.01}
}

// Phase is one scripted congestion episode on a link: between Start and
// Start+Duration the link's loss is multiplied, its delay increased and its
// bandwidth scaled.
type Phase struct {
	Start    time.Duration
	Duration time.Duration
	// LossFactor multiplies the configured loss probability (≥ 1 for
	// congestion; capped at 0.95 effective loss).
	LossFactor float64
	// ExtraDelay is added to the propagation delay.
	ExtraDelay time.Duration
	// ExtraJitter is added to the jitter bound.
	ExtraJitter time.Duration
	// BandwidthFactor scales the bandwidth (0 < f ≤ 1 for congestion).
	BandwidthFactor float64
}

// LinkStats aggregates one direction's counters.
type LinkStats struct {
	Sent      int
	Delivered int
	Dropped   int
	Bytes     int64
	// Delays collects per-packet one-way delays in milliseconds.
	Delays stats.Sample
}

// LossRate returns the observed drop fraction.
func (ls *LinkStats) LossRate() float64 {
	if ls.Sent == 0 {
		return 0
	}
	return float64(ls.Dropped) / float64(ls.Sent)
}

type link struct {
	cfg    LinkConfig
	phases []Phase
	rng    *stats.RNG
	// nextFree is when the serializer finishes the last accepted packet.
	nextFree time.Time
	// lastReliableArrival enforces in-order delivery on the reliable path
	// per link direction.
	lastReliableArrival time.Time
	burstBad            bool
	stats               LinkStats
}

// egress is a per-host outbound serializer shared by every link leaving the
// host — the model of a server's access/uplink capacity that all of its
// clients compete for.
type egress struct {
	rate       float64 // bits/s
	queueLimit time.Duration
	nextFree   time.Time
}

// Network is the simulated network: a set of host-pair links and registered
// endpoints.
type Network struct {
	mu        sync.Mutex
	clk       clock.Clock
	epoch     time.Time
	rng       *stats.RNG
	links     map[string]*link // key host→host
	egresses  map[string]*egress
	defaults  LinkConfig
	endpoints map[Addr]Handler
	// DropHandler, when set, observes every dropped unreliable packet.
	DropHandler func(Packet, string)
	// Sniffer, when set, observes every packet at Send time (before any
	// loss decision); used for protocol-stack byte accounting.
	Sniffer func(Packet)
	// deliveryHist, when set, observes every delivered packet's simulated
	// send→arrival delay — the wire hop of the end-to-end latency spans.
	// Taking a *stats.DurationHistogram directly keeps netsim free of an
	// obs dependency.
	deliveryHist *stats.DurationHistogram

	// Fault-injection state (see faults.go). All guarded by mu; windows are
	// offsets from the network's epoch, so a given seed plus a given fault
	// schedule replays identically.
	partitions map[string][]faultWindow
	outages    map[string][]faultWindow
	downHosts  map[string]bool
	oneShots   []*oneShotDrop
}

// New creates a network on the given clock. seed drives all randomness.
func New(clk clock.Clock, seed uint64) *Network {
	return &Network{
		clk:       clk,
		epoch:     clk.Now(),
		rng:       stats.NewRNG(seed),
		links:     map[string]*link{},
		egresses:  map[string]*egress{},
		defaults:  DefaultLAN(),
		endpoints: map[Addr]Handler{},
	}
}

// SetEgressLimit caps a host's total outbound rate: every packet the host
// sends, to any destination, passes one shared serializer before its link.
// A zero queueLimit defaults to 500ms of backlog (tail drop beyond it for
// unreliable packets).
func (n *Network) SetEgressLimit(host string, bps float64, queueLimit time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if bps <= 0 {
		delete(n.egresses, host)
		return
	}
	if queueLimit <= 0 {
		queueLimit = 500 * time.Millisecond
	}
	n.egresses[host] = &egress{rate: bps, queueLimit: queueLimit}
}

// SetDeliveryHistogram attaches a histogram observing every delivered
// packet's simulated send→arrival delay (nil detaches).
func (n *Network) SetDeliveryHistogram(h *stats.DurationHistogram) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.deliveryHist = h
}

// SetDefaultLink sets the config used for host pairs without an explicit
// link.
func (n *Network) SetDefaultLink(cfg LinkConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaults = cfg
}

// SetLink configures the directed link from one host to another.
func (n *Network) SetLink(from, to string, cfg LinkConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.getLinkLocked(from, to)
	l.cfg = cfg
}

// SetDuplexLink configures both directions identically.
func (n *Network) SetDuplexLink(a, b string, cfg LinkConfig) {
	n.SetLink(a, b, cfg)
	n.SetLink(b, a, cfg)
}

// AddPhase appends a congestion phase to the directed link.
func (n *Network) AddPhase(from, to string, p Phase) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.getLinkLocked(from, to)
	l.phases = append(l.phases, p)
	sort.SliceStable(l.phases, func(i, j int) bool { return l.phases[i].Start < l.phases[j].Start })
}

// AddDuplexPhase appends the phase to both directions.
func (n *Network) AddDuplexPhase(a, b string, p Phase) {
	n.AddPhase(a, b, p)
	n.AddPhase(b, a, p)
}

func (n *Network) getLinkLocked(from, to string) *link {
	key := from + "→" + to
	l, ok := n.links[key]
	if !ok {
		l = &link{cfg: n.defaults, rng: n.rng.Split()}
		n.links[key] = l
	}
	return l
}

// Listen registers a handler for packets addressed to addr, replacing any
// previous handler. A nil handler unregisters. The simulated network can
// always bind, so the error is always nil.
func (n *Network) Listen(addr Addr, h Handler) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h == nil {
		delete(n.endpoints, addr)
		return nil
	}
	n.endpoints[addr] = h
	return nil
}

// Stats returns a snapshot of the directed link's counters.
func (n *Network) Stats(from, to string) LinkStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.getLinkLocked(from, to)
	return l.stats
}

// activePhase returns the multipliers in effect at offset t.
func (l *link) activePhase(t time.Duration) (lossF float64, extraD, extraJ time.Duration, bwF float64) {
	lossF, bwF = 1, 1
	for _, p := range l.phases {
		if t >= p.Start && t < p.Start+p.Duration {
			if p.LossFactor > 0 {
				lossF *= p.LossFactor
			}
			extraD += p.ExtraDelay
			extraJ += p.ExtraJitter
			if p.BandwidthFactor > 0 {
				bwF *= p.BandwidthFactor
			}
		}
	}
	return lossF, extraD, extraJ, bwF
}

// Send injects a packet. Delivery (or drop) is decided immediately and the
// handler is invoked via the clock at the computed arrival time. Sending to
// an address with no listener silently drops at arrival time. Only
// fault-injected drops (partitions, outages, downed hosts, one-shot drops)
// return an error; stochastic loss and tail drop return nil.
func (n *Network) Send(pkt Packet) error {
	pkt.SentAt = n.clk.Now()
	if sn := n.Sniffer; sn != nil {
		sn(pkt)
	}
	n.mu.Lock()
	now := pkt.SentAt
	offset := now.Sub(n.epoch)
	l := n.getLinkLocked(pkt.From.Host(), pkt.To.Host())
	l.stats.Sent++
	l.stats.Bytes += int64(pkt.Size())

	// Injected faults kill the packet regardless of reliability: a
	// partitioned or downed host drops TCP segments just as surely as UDP
	// datagrams.
	if cause, faulted := n.faultLocked(pkt, offset); faulted {
		l.stats.Dropped++
		dh := n.DropHandler
		n.mu.Unlock()
		if dh != nil {
			dh(pkt, cause.Error())
		}
		// %w keeps the typed cause (ErrHostDown, ErrPartitioned, ...)
		// reachable through errors.Is.
		return fmt.Errorf("netsim: fault drop %s→%s: %w", pkt.From, pkt.To, cause)
	}

	lossF, extraD, extraJ, bwF := l.activePhase(offset)

	// Host egress: one shared serializer for everything the host sends.
	egressStart := now
	if eg, ok := n.egresses[pkt.From.Host()]; ok {
		egTx := time.Duration(float64(pkt.Size()*8) / eg.rate * float64(time.Second))
		if eg.nextFree.After(egressStart) {
			egressStart = eg.nextFree
		}
		if egressStart.Sub(now) > eg.queueLimit && !pkt.Reliable {
			l.stats.Dropped++
			dh := n.DropHandler
			n.mu.Unlock()
			if dh != nil {
				dh(pkt, "egress overflow")
			}
			return nil
		}
		eg.nextFree = egressStart.Add(egTx)
		egressStart = eg.nextFree
	}

	// Serialization: the link transmits one packet at a time.
	bw := l.cfg.Bandwidth * bwF
	var txTime time.Duration
	if bw > 0 {
		txTime = time.Duration(float64(pkt.Size()*8) / bw * float64(time.Second))
	}
	depart := egressStart
	if l.nextFree.After(depart) {
		depart = l.nextFree
	}
	queueLimit := l.cfg.QueueLimit
	if queueLimit == 0 {
		queueLimit = 500 * time.Millisecond
	}
	if depart.Sub(now) > queueLimit && !pkt.Reliable {
		// Tail drop: the queue is full.
		l.stats.Dropped++
		dh := n.DropHandler
		n.mu.Unlock()
		if dh != nil {
			dh(pkt, "queue overflow")
		}
		return nil
	}
	l.nextFree = depart.Add(txTime)

	// Loss decision.
	ploss := l.cfg.Loss * lossF
	if l.cfg.Burst != nil {
		b := l.cfg.Burst
		if l.burstBad {
			if l.rng.Bool(b.PBadToGood) {
				l.burstBad = false
			}
		} else if l.rng.Bool(b.PGoodToBad) {
			l.burstBad = true
		}
		if l.burstBad {
			ploss = maxf(ploss, b.PBad*lossF)
		} else {
			ploss = maxf(ploss, b.PGood*lossF)
		}
	}
	if ploss > 0.95 {
		ploss = 0.95
	}

	delay := l.cfg.Delay + extraD
	jitterBound := l.cfg.Jitter + extraJ
	if jitterBound > 0 {
		delay += time.Duration(l.rng.Float64() * float64(jitterBound))
	}

	lost := ploss > 0 && l.rng.Bool(ploss)
	if lost && !pkt.Reliable {
		l.stats.Dropped++
		dh := n.DropHandler
		n.mu.Unlock()
		if dh != nil {
			dh(pkt, "loss")
		}
		return nil
	}
	arrival := l.nextFree.Add(delay)
	if lost && pkt.Reliable {
		// Reliable path: the loss becomes a retransmission, costing one
		// round trip plus a retransmission of the packet. Repeated losses
		// compound geometrically.
		for lost {
			arrival = arrival.Add(2*(l.cfg.Delay+extraD) + txTime)
			lost = l.rng.Bool(ploss)
		}
	}
	if pkt.Reliable {
		// TCP delivers in order per connection; model per link direction.
		if !arrival.After(l.lastReliableArrival) {
			arrival = l.lastReliableArrival.Add(time.Microsecond)
		}
		l.lastReliableArrival = arrival
	}
	l.stats.Delivered++
	l.stats.Delays.AddDuration(arrival.Sub(now))
	if n.deliveryHist != nil {
		n.deliveryHist.Observe(arrival.Sub(now))
	}
	deliverCopies := 1
	if !pkt.Reliable && l.cfg.Dup > 0 && l.rng.Bool(l.cfg.Dup) {
		deliverCopies = 2
	}
	var dupDelay time.Duration
	if deliverCopies == 2 {
		dupDelay = time.Millisecond + time.Duration(l.rng.Float64()*float64(jitterBound+time.Millisecond))
	}
	n.mu.Unlock()

	// Delivery is deferred (and possibly duplicated), but the caller owns
	// pkt.Payload again as soon as Send returns: copy-on-enqueue into a
	// pooled buffer, released after the last delivery fires.
	pb := payloadPool.Get(len(pkt.Payload))
	copy(pb.B, pkt.Payload)
	pkt.Payload = pb.B
	remaining := int32(deliverCopies)
	deliver := func() {
		n.mu.Lock()
		h := n.endpoints[pkt.To]
		n.mu.Unlock()
		if h != nil {
			h(pkt)
		}
		if atomic.AddInt32(&remaining, -1) == 0 {
			payloadPool.Put(pb)
		}
	}
	n.clk.AfterFunc(arrival.Sub(now), deliver)
	if deliverCopies == 2 {
		n.clk.AfterFunc(arrival.Sub(now)+dupDelay, deliver)
	}
	return nil
}

// multiDrop records one destination's drop decision so the DropHandler can
// run after the network lock is released.
type multiDrop struct {
	to    Addr
	cause string
}

// SendMulti implements MultiSender: one packet, many destinations, one
// pooled payload copy shared by every scheduled delivery (refcounted exactly
// like Send's dup deliveries). The sending host's egress serializer is
// charged for a single transmission — the multicast model: fanning a hot
// flow out to N subscribers does not multiply the server's uplink load —
// while each destination's link still makes its own serialization, loss,
// jitter and fault decisions. Per-destination failures (faults, tail drops,
// stochastic loss) never fail the batch; like stochastic loss in Send, they
// return nil.
func (n *Network) SendMulti(pkt Packet, tos []Addr) error {
	if len(tos) == 0 {
		return nil
	}
	pkt.SentAt = n.clk.Now()
	if sn := n.Sniffer; sn != nil {
		sn(pkt)
	}
	now := pkt.SentAt
	type arrivalPlan struct {
		to    Addr
		at    time.Time
		dupAt time.Time // zero = no duplicate
	}
	arrivals := make([]arrivalPlan, 0, len(tos))
	var drops []multiDrop
	n.mu.Lock()
	offset := now.Sub(n.epoch)

	// One egress serialization for the whole fan-out.
	egressStart := now
	egressOverflow := false
	if eg, ok := n.egresses[pkt.From.Host()]; ok {
		egTx := time.Duration(float64(pkt.Size()*8) / eg.rate * float64(time.Second))
		if eg.nextFree.After(egressStart) {
			egressStart = eg.nextFree
		}
		if egressStart.Sub(now) > eg.queueLimit && !pkt.Reliable {
			egressOverflow = true
		} else {
			eg.nextFree = egressStart.Add(egTx)
			egressStart = eg.nextFree
		}
	}

	for _, to := range tos {
		p := pkt
		p.To = to
		l := n.getLinkLocked(p.From.Host(), to.Host())
		l.stats.Sent++
		l.stats.Bytes += int64(p.Size())
		if egressOverflow {
			l.stats.Dropped++
			drops = append(drops, multiDrop{to: to, cause: "egress overflow"})
			continue
		}
		if cause, faulted := n.faultLocked(p, offset); faulted {
			l.stats.Dropped++
			drops = append(drops, multiDrop{to: to, cause: cause.Error()})
			continue
		}
		lossF, extraD, extraJ, bwF := l.activePhase(offset)

		bw := l.cfg.Bandwidth * bwF
		var txTime time.Duration
		if bw > 0 {
			txTime = time.Duration(float64(p.Size()*8) / bw * float64(time.Second))
		}
		depart := egressStart
		if l.nextFree.After(depart) {
			depart = l.nextFree
		}
		queueLimit := l.cfg.QueueLimit
		if queueLimit == 0 {
			queueLimit = 500 * time.Millisecond
		}
		if depart.Sub(now) > queueLimit && !p.Reliable {
			l.stats.Dropped++
			drops = append(drops, multiDrop{to: to, cause: "queue overflow"})
			continue
		}
		l.nextFree = depart.Add(txTime)

		ploss := l.cfg.Loss * lossF
		if l.cfg.Burst != nil {
			b := l.cfg.Burst
			if l.burstBad {
				if l.rng.Bool(b.PBadToGood) {
					l.burstBad = false
				}
			} else if l.rng.Bool(b.PGoodToBad) {
				l.burstBad = true
			}
			if l.burstBad {
				ploss = maxf(ploss, b.PBad*lossF)
			} else {
				ploss = maxf(ploss, b.PGood*lossF)
			}
		}
		if ploss > 0.95 {
			ploss = 0.95
		}

		delay := l.cfg.Delay + extraD
		jitterBound := l.cfg.Jitter + extraJ
		if jitterBound > 0 {
			delay += time.Duration(l.rng.Float64() * float64(jitterBound))
		}

		lost := ploss > 0 && l.rng.Bool(ploss)
		if lost && !p.Reliable {
			l.stats.Dropped++
			drops = append(drops, multiDrop{to: to, cause: "loss"})
			continue
		}
		arrival := l.nextFree.Add(delay)
		if lost && p.Reliable {
			for lost {
				arrival = arrival.Add(2*(l.cfg.Delay+extraD) + txTime)
				lost = l.rng.Bool(ploss)
			}
		}
		if p.Reliable {
			if !arrival.After(l.lastReliableArrival) {
				arrival = l.lastReliableArrival.Add(time.Microsecond)
			}
			l.lastReliableArrival = arrival
		}
		l.stats.Delivered++
		l.stats.Delays.AddDuration(arrival.Sub(now))
		if n.deliveryHist != nil {
			n.deliveryHist.Observe(arrival.Sub(now))
		}
		plan := arrivalPlan{to: to, at: arrival}
		if !p.Reliable && l.cfg.Dup > 0 && l.rng.Bool(l.cfg.Dup) {
			plan.dupAt = arrival.Add(time.Millisecond + time.Duration(l.rng.Float64()*float64(jitterBound+time.Millisecond)))
		}
		arrivals = append(arrivals, plan)
	}
	n.mu.Unlock()

	if dh := n.DropHandler; dh != nil {
		for _, d := range drops {
			p := pkt
			p.To = d.to
			dh(p, d.cause)
		}
	}
	if len(arrivals) == 0 {
		return nil
	}

	// One pooled copy backs every delivery of the fan-out; the refcount
	// releases it after the last handler returns, exactly as Send does for
	// its dup deliveries.
	pb := payloadPool.Get(len(pkt.Payload))
	copy(pb.B, pkt.Payload)
	remaining := int32(0)
	for _, a := range arrivals {
		remaining++
		if !a.dupAt.IsZero() {
			remaining++
		}
	}
	for _, a := range arrivals {
		p := pkt
		p.To = a.to
		p.Payload = pb.B
		deliver := func() {
			n.mu.Lock()
			h := n.endpoints[p.To]
			n.mu.Unlock()
			if h != nil {
				h(p)
			}
			if atomic.AddInt32(&remaining, -1) == 0 {
				payloadPool.Put(pb)
			}
		}
		n.clk.AfterFunc(a.at.Sub(now), deliver)
		if !a.dupAt.IsZero() {
			n.clk.AfterFunc(a.dupAt.Sub(now), deliver)
		}
	}
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

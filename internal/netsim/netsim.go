// Package netsim is the broadband-network substrate: a deterministic
// packet-level network simulator with configurable bandwidth, propagation
// delay, jitter, random and bursty (Gilbert–Elliott) loss, and scripted
// congestion phases.
//
// The paper evaluated its service over 1996-era Internet/ATM testbeds whose
// only observable effects on the service are per-packet delay, delay
// variation and loss; netsim reproduces exactly those effects with
// controlled, repeatable statistics, which is what the buffering,
// synchronization and QoS-adaptation machinery react to.
//
// The simulator is driven by a clock.Clock: with a clock.Virtual it forms a
// discrete-event simulation, with clock.Wall it delays packets in real time.
//
// # Sharding
//
// New builds the classic single-partition network: one lock, one RNG, one
// event stream — every existing pinned-seed scenario replays exactly as
// before. NewSharded partitions the network across a clock.ShardedVirtual:
// every host is owned by one shard (the shardOf assignment), and all state a
// Send touches on the hot path — the from→to link, the sender's egress
// serializer, the shard RNG — lives with the *sending* host's shard, guarded
// by that shard's own mutex, so traffic between hosts of one shard never
// takes a cross-shard lock at all. A packet whose destination lives on
// another shard is handed to the driver's bounded cross-shard mailbox and
// delivered at the destination's next safe window; the conservative
// lookahead makes that handoff always land in the destination's future, and
// cross-shard links are clamped to at least the lookahead of propagation
// delay to guarantee it. Per-shard RNG streams are derived as
// seed^hash(shard), so a given seed plus a given shard assignment replays
// byte-identically regardless of GOMAXPROCS; each shard also folds every
// delivery into a digest that the determinism tests and the netsim benchmark
// compare across runs.
//
// # Packet buffer ownership
//
// Send borrows pkt.Payload only for the duration of the call: the moment
// Send returns, the caller may reuse (or pool) the backing array. The
// simulated Network enforces this by copying the payload on enqueue into
// its own pooled buffer — delivery is deferred through the clock and may
// even duplicate the packet, so retaining the caller's slice would alias
// whatever the caller writes next. The pooled copy is released after the
// final delivery (or never taken for drops, which are decided before the
// copy). Symmetrically, the Payload a Handler receives is borrowed: it is
// valid only until the handler returns, after which the network may recycle
// it. Handlers that keep payload bytes — the client's frame reassembly, for
// example — must copy them out. Sniffer and DropHandler run synchronously
// inside Send and observe the caller's original buffer under the same rule.
// Every Net implementation (transport.Live encodes into fresh frames before
// returning; test sinks only count) honors the same contract.
package netsim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/stats"
)

// payloadPool recycles the in-flight payload copies made at Send time and
// released after each packet's final delivery.
var payloadPool buffer.Pool

// Addr is an endpoint address of the form "host:port".
type Addr string

// Host returns the host part of the address.
func (a Addr) Host() string {
	s := string(a)
	if i := strings.LastIndex(s, ":"); i >= 0 {
		return s[:i]
	}
	return s
}

// MakeAddr builds an Addr from host and port.
func MakeAddr(host string, port int) Addr {
	return Addr(fmt.Sprintf("%s:%d", host, port))
}

// Packet is one network datagram.
type Packet struct {
	From, To Addr
	Payload  []byte
	// Reliable selects the in-order lossless path (the simulator's model
	// of a TCP connection: losses become retransmission delay instead of
	// drops). Unreliable packets model UDP: they may be dropped or
	// reordered by jitter.
	Reliable bool
	// SentAt is stamped by the simulator at Send time.
	SentAt time.Time
}

// Size returns the wire size in bytes: payload plus a fixed per-packet
// header overhead (IP+UDP ≈ 28 bytes, counted for both paths for
// simplicity).
func (p *Packet) Size() int { return len(p.Payload) + headerOverhead }

const headerOverhead = 28

// Handler receives delivered packets.
type Handler func(Packet)

// Net is the datagram network the service components are written against:
// the simulated Network implements it for experiments, and
// transport.Live implements it over real UDP/TCP sockets for the
// cmd/hermesd and cmd/hermes binaries.
type Net interface {
	// Send injects a packet toward its destination. A non-nil error means
	// the transport itself refused or discarded the packet — a fault-injected
	// drop in the simulator, a closed or saturated socket in the live
	// transport. Ordinary stochastic loss inside the network is NOT an
	// error: it returns nil, exactly as a real socket send would.
	Send(Packet) error
	// Listen registers (or, with a nil handler, removes) the handler for
	// an address. It returns a non-nil error when the transport cannot
	// actually bind the address; only real-socket implementations can
	// fail — the simulated Network always returns nil.
	Listen(Addr, Handler) error
}

// MultiSender is optionally implemented by transports that can fan one
// packet out to several destinations with a single upstream transmission —
// the multicast model the shared-flow layer is built on. The payload
// ownership rule is identical to Send: the caller's buffer is borrowed only
// for the duration of the call. Implementations charge the sender's egress
// once for the whole fan-out; per-destination link behavior (loss, jitter,
// faults) still applies to each copy independently.
type MultiSender interface {
	SendMulti(pkt Packet, tos []Addr) error
}

// SendToAll fans pkt out to every destination, using the transport's
// SendMulti when it has one and falling back to one Send per destination.
// Callers on a hot path should cache the MultiSender assertion instead.
func SendToAll(nt Net, pkt Packet, tos []Addr) error {
	if ms, ok := nt.(MultiSender); ok {
		return ms.SendMulti(pkt, tos)
	}
	var first error
	for _, to := range tos {
		p := pkt
		p.To = to
		if err := nt.Send(p); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// LinkConfig describes one direction of a link between two hosts.
type LinkConfig struct {
	// Bandwidth is the link rate in bits per second (0 = infinite).
	Bandwidth float64
	// Delay is the fixed propagation delay.
	Delay time.Duration
	// Jitter is the maximum additional uniform random delay per packet.
	Jitter time.Duration
	// Loss is the independent per-packet loss probability [0,1).
	Loss float64
	// Dup is the probability an unreliable packet is delivered twice
	// (the duplicate arrives with fresh jitter), modeling routing
	// pathologies the receiver must tolerate.
	Dup float64
	// Burst enables Gilbert–Elliott two-state bursty loss on top of (or
	// instead of) independent loss.
	Burst *BurstLoss
	// QueueLimit bounds the serialization backlog: a packet whose queueing
	// delay would exceed it is dropped (tail drop). Zero = 500ms.
	QueueLimit time.Duration
}

// BurstLoss is a Gilbert–Elliott loss model: the link alternates between a
// Good state (loss = PGood) and a Bad state (loss = PBad), with per-packet
// transition probabilities.
type BurstLoss struct {
	PGood, PBad            float64 // loss probability in each state
	PGoodToBad, PBadToGood float64 // transition probabilities per packet
}

// DefaultLAN approximates a lightly loaded 10 Mb/s campus link.
func DefaultLAN() LinkConfig {
	return LinkConfig{Bandwidth: 10_000_000, Delay: 5 * time.Millisecond, Jitter: 2 * time.Millisecond, Loss: 0.0005}
}

// DefaultWAN approximates a mid-90s wide-area Internet path.
func DefaultWAN() LinkConfig {
	return LinkConfig{Bandwidth: 2_000_000, Delay: 40 * time.Millisecond, Jitter: 20 * time.Millisecond, Loss: 0.01}
}

// Phase is one scripted congestion episode on a link: between Start and
// Start+Duration the link's loss is multiplied, its delay increased and its
// bandwidth scaled.
type Phase struct {
	Start    time.Duration
	Duration time.Duration
	// LossFactor multiplies the configured loss probability (≥ 1 for
	// congestion; capped at 0.95 effective loss).
	LossFactor float64
	// ExtraDelay is added to the propagation delay.
	ExtraDelay time.Duration
	// ExtraJitter is added to the jitter bound.
	ExtraJitter time.Duration
	// BandwidthFactor scales the bandwidth (0 < f ≤ 1 for congestion).
	BandwidthFactor float64
}

// LinkStats aggregates one direction's counters.
type LinkStats struct {
	Sent      int
	Delivered int
	Dropped   int
	Bytes     int64
	// Delays collects per-packet one-way delays in milliseconds in a
	// fixed-cap reservoir (see SetDelaySampleCap): quantiles stay faithful
	// while memory stays bounded no matter how many packets the link moves.
	Delays stats.Sample
}

// LossRate returns the observed drop fraction.
func (ls *LinkStats) LossRate() float64 {
	if ls.Sent == 0 {
		return 0
	}
	return float64(ls.Dropped) / float64(ls.Sent)
}

type link struct {
	cfg    LinkConfig
	phases []Phase
	rng    *stats.RNG
	// nextFree is when the serializer finishes the last accepted packet.
	nextFree time.Time
	// lastReliableArrival enforces in-order delivery on the reliable path
	// per link direction.
	lastReliableArrival time.Time
	burstBad            bool
	stats               LinkStats
}

// egress is a per-host outbound serializer shared by every link leaving the
// host — the model of a server's access/uplink capacity that all of its
// clients compete for.
type egress struct {
	rate       float64 // bits/s
	queueLimit time.Duration
	nextFree   time.Time
}

// defaultDelayReservoirCap bounds each link's per-packet delay sample. Below
// the cap the record is exact — today's scenarios never notice — while a
// 100k-client storm retains at most this many floats per link.
const defaultDelayReservoirCap = 8192

// netShard is one partition of the simulated network: every host assigned
// to it, every link leaving those hosts, their shared egress serializers,
// the endpoints listening on them, and the shard's own RNG stream. The
// shard's mutex is the only lock the intra-shard hot path takes, and under
// the sharded driver it is effectively uncontended: all of the shard's
// events run on the shard's own worker.
type netShard struct {
	id  int
	clk clock.Clock

	mu        sync.Mutex
	rng       *stats.RNG
	links     map[string]*link // key host→host, keyed by sending host's shard
	egresses  map[string]*egress
	endpoints map[Addr]Handler
	defaults  LinkConfig

	// delivered and digest fold every packet delivery on this shard into a
	// replay fingerprint: the determinism gate compares them across
	// GOMAXPROCS settings and reruns.
	delivered int64
	digest    uint64
}

// Network is the simulated network: a set of host-pair links and registered
// endpoints, partitioned across one or more shards.
type Network struct {
	sv       *clock.ShardedVirtual // nil = single-partition mode
	shardOf  func(string) int      // nil = everything on shard 0
	shards   []*netShard
	epoch    time.Time
	seed     uint64
	delayCap int

	// DropHandler, when set, observes every dropped unreliable packet.
	// Set it before traffic starts; it is read without synchronization on
	// the hot path.
	DropHandler func(Packet, string)
	// Sniffer, when set, observes every packet at Send time (before any
	// loss decision); used for protocol-stack byte accounting.
	Sniffer func(Packet)
	// deliveryHist, when set, observes every delivered packet's simulated
	// send→arrival delay — the wire hop of the end-to-end latency spans.
	// Taking a *stats.DurationHistogram directly keeps netsim free of an
	// obs dependency; the histogram is internally atomic, and the pointer
	// swap is too.
	deliveryHist atomic.Pointer[stats.DurationHistogram]

	// Fault-injection state (see faults.go): schedules are global (a
	// partition spans two shards by nature), guarded by their own lock with
	// an atomic zero-faults fast path so fault-free traffic never touches
	// it. Windows are offsets from the network's epoch, so a given seed
	// plus a given fault schedule replays identically.
	faults faultState
}

// New creates a single-partition network on the given clock. seed drives
// all randomness.
func New(clk clock.Clock, seed uint64) *Network {
	n := &Network{
		epoch:    clk.Now(),
		seed:     seed,
		delayCap: defaultDelayReservoirCap,
		shards: []*netShard{{
			clk:       clk,
			rng:       stats.NewRNG(seed),
			links:     map[string]*link{},
			egresses:  map[string]*egress{},
			endpoints: map[Addr]Handler{},
			defaults:  DefaultLAN(),
		}},
	}
	return n
}

// NewSharded creates a network partitioned across the driver's shards.
// shardOf assigns each host to its owning shard (it must be a pure function
// of the host name so replays agree); nil assigns everything to shard 0.
// Shard s draws from the RNG stream seed^hash(s) — with one shard the plain
// seed is kept, so a 1-shard NewSharded reproduces New exactly.
func NewSharded(sv *clock.ShardedVirtual, seed uint64, shardOf func(host string) int) *Network {
	k := sv.Shards()
	n := &Network{
		sv:       sv,
		shardOf:  shardOf,
		epoch:    sv.Now(),
		seed:     seed,
		delayCap: defaultDelayReservoirCap,
		shards:   make([]*netShard, k),
	}
	for i := 0; i < k; i++ {
		shardSeed := seed
		if k > 1 {
			shardSeed = seed ^ mix64(uint64(i)+1)
		}
		n.shards[i] = &netShard{
			id:        i,
			clk:       sv.Shard(i),
			rng:       stats.NewRNG(shardSeed),
			links:     map[string]*link{},
			egresses:  map[string]*egress{},
			endpoints: map[Addr]Handler{},
			defaults:  DefaultLAN(),
		}
	}
	return n
}

// HashShards returns the standard host→shard assignment: FNV-1a of the host
// name modulo the shard count. Pure, so replays agree on placement.
func HashShards(shards int) func(string) int {
	if shards < 1 {
		shards = 1
	}
	return func(host string) int {
		return int(fnv64str(host) % uint64(shards))
	}
}

// ShardCount reports the number of network partitions.
func (n *Network) ShardCount() int { return len(n.shards) }

// shardIdx maps a host to its owning shard index.
func (n *Network) shardIdx(host string) int {
	if n.shardOf == nil || len(n.shards) == 1 {
		return 0
	}
	i := n.shardOf(host)
	if i < 0 || i >= len(n.shards) {
		i = ((i % len(n.shards)) + len(n.shards)) % len(n.shards)
	}
	return i
}

func (n *Network) shardFor(host string) *netShard { return n.shards[n.shardIdx(host)] }

// SetEgressLimit caps a host's total outbound rate: every packet the host
// sends, to any destination, passes one shared serializer before its link.
// A zero queueLimit defaults to 500ms of backlog (tail drop beyond it for
// unreliable packets).
func (n *Network) SetEgressLimit(host string, bps float64, queueLimit time.Duration) {
	s := n.shardFor(host)
	s.mu.Lock()
	defer s.mu.Unlock()
	if bps <= 0 {
		delete(s.egresses, host)
		return
	}
	if queueLimit <= 0 {
		queueLimit = 500 * time.Millisecond
	}
	s.egresses[host] = &egress{rate: bps, queueLimit: queueLimit}
}

// SetDeliveryHistogram attaches a histogram observing every delivered
// packet's simulated send→arrival delay (nil detaches).
func (n *Network) SetDeliveryHistogram(h *stats.DurationHistogram) {
	n.deliveryHist.Store(h)
}

// SetDelaySampleCap overrides the per-link delay reservoir capacity. Call
// before traffic starts.
func (n *Network) SetDelaySampleCap(cap int) {
	if cap > 0 {
		n.delayCap = cap
	}
}

// SetDefaultLink sets the config used for host pairs without an explicit
// link.
func (n *Network) SetDefaultLink(cfg LinkConfig) {
	for _, s := range n.shards {
		s.mu.Lock()
		s.defaults = cfg
		s.mu.Unlock()
	}
}

// SetLink configures the directed link from one host to another.
func (n *Network) SetLink(from, to string, cfg LinkConfig) {
	s := n.shardFor(from)
	s.mu.Lock()
	defer s.mu.Unlock()
	l := n.getLinkLocked(s, from, to)
	l.cfg = n.clampCross(from, to, cfg)
}

// SetDuplexLink configures both directions identically.
func (n *Network) SetDuplexLink(a, b string, cfg LinkConfig) {
	n.SetLink(a, b, cfg)
	n.SetLink(b, a, cfg)
}

// AddPhase appends a congestion phase to the directed link.
func (n *Network) AddPhase(from, to string, p Phase) {
	s := n.shardFor(from)
	s.mu.Lock()
	defer s.mu.Unlock()
	l := n.getLinkLocked(s, from, to)
	l.phases = append(l.phases, p)
	sort.SliceStable(l.phases, func(i, j int) bool { return l.phases[i].Start < l.phases[j].Start })
}

// AddDuplexPhase appends the phase to both directions.
func (n *Network) AddDuplexPhase(a, b string, p Phase) {
	n.AddPhase(a, b, p)
	n.AddPhase(b, a, p)
}

// clampCross enforces the conservative-lookahead contract on cross-shard
// links: their propagation delay is raised to at least the driver's
// lookahead, so a cross-shard packet always arrives after the destination
// shard's current window. Intra-shard links are untouched.
func (n *Network) clampCross(from, to string, cfg LinkConfig) LinkConfig {
	if n.sv == nil || n.shardIdx(from) == n.shardIdx(to) {
		return cfg
	}
	if la := n.sv.Lookahead(); cfg.Delay < la {
		cfg.Delay = la
	}
	return cfg
}

// getLinkLocked returns (creating on demand) the directed link. Caller
// holds s.mu, where s owns the sending host. A new link splits its RNG from
// the shard stream — creation order is part of the replay — while the delay
// reservoir gets an independent stream derived from the link name, so
// enabling or resizing it can never perturb loss and jitter draws.
func (n *Network) getLinkLocked(s *netShard, from, to string) *link {
	key := from + "→" + to
	l, ok := s.links[key]
	if !ok {
		l = &link{cfg: n.clampCross(from, to, s.defaults), rng: s.rng.Split()}
		l.stats.Delays.Reservoir(n.delayCap, stats.NewRNG(fnv64str(key)^n.seed))
		s.links[key] = l
	}
	return l
}

// Listen registers a handler for packets addressed to addr, replacing any
// previous handler. A nil handler unregisters. The simulated network can
// always bind, so the error is always nil.
func (n *Network) Listen(addr Addr, h Handler) error {
	s := n.shardFor(addr.Host())
	s.mu.Lock()
	defer s.mu.Unlock()
	if h == nil {
		delete(s.endpoints, addr)
		return nil
	}
	s.endpoints[addr] = h
	return nil
}

// Stats returns a snapshot of the directed link's counters. The delay
// sample is deep-copied, so the snapshot can be sorted and queried while
// the simulation keeps running.
func (n *Network) Stats(from, to string) LinkStats {
	s := n.shardFor(from)
	s.mu.Lock()
	defer s.mu.Unlock()
	l := n.getLinkLocked(s, from, to)
	st := l.stats
	st.Delays = l.stats.Delays.Clone()
	return st
}

// Totals aggregates sent/delivered/dropped/bytes over every link in every
// shard — the harness-facing roll-up.
func (n *Network) Totals() (sent, delivered, dropped int, bytes int64) {
	for _, s := range n.shards {
		s.mu.Lock()
		for _, l := range s.links {
			sent += l.stats.Sent
			delivered += l.stats.Delivered
			dropped += l.stats.Dropped
			bytes += l.stats.Bytes
		}
		s.mu.Unlock()
	}
	return
}

// ShardDelivery is one shard's delivery fingerprint.
type ShardDelivery struct {
	Shard     int
	Delivered int64
	Digest    uint64
}

// ShardDeliveries snapshots every shard's delivered-packet count and replay
// digest, in shard order.
func (n *Network) ShardDeliveries() []ShardDelivery {
	out := make([]ShardDelivery, len(n.shards))
	for i, s := range n.shards {
		s.mu.Lock()
		out[i] = ShardDelivery{Shard: i, Delivered: s.delivered, Digest: s.digest}
		s.mu.Unlock()
	}
	return out
}

// DeliveryDigest folds the per-shard digests (in shard order) into one
// replay fingerprint for the whole network.
func (n *Network) DeliveryDigest() uint64 {
	d := uint64(fnvOffset)
	for _, sd := range n.ShardDeliveries() {
		d = fnvMix(d, sd.Digest)
		d = fnvMix(d, uint64(sd.Delivered))
	}
	return d
}

// activePhase returns the multipliers in effect at offset t.
func (l *link) activePhase(t time.Duration) (lossF float64, extraD, extraJ time.Duration, bwF float64) {
	lossF, bwF = 1, 1
	for _, p := range l.phases {
		if t >= p.Start && t < p.Start+p.Duration {
			if p.LossFactor > 0 {
				lossF *= p.LossFactor
			}
			extraD += p.ExtraDelay
			extraJ += p.ExtraJitter
			if p.BandwidthFactor > 0 {
				bwF *= p.BandwidthFactor
			}
		}
	}
	return lossF, extraD, extraJ, bwF
}

// linkPlanLocked runs one packet through the link's queueing, loss and
// delay machinery: egress and link serialization, tail drop, stochastic and
// bursty loss, jitter, reliable-path retransmission and ordering. It
// returns the arrival time, an optional duplicate arrival, and a drop
// cause ("" = delivered). Caller holds the sending shard's mutex; all
// mutated state (egress serializer, link serializer, burst state, RNG,
// stats) belongs to that shard.
func (n *Network) linkPlanLocked(s *netShard, l *link, pkt *Packet, now time.Time, offset time.Duration, egressStart time.Time) (arrival, dupArrival time.Time, dropCause string) {
	lossF, extraD, extraJ, bwF := l.activePhase(offset)

	// Serialization: the link transmits one packet at a time.
	bw := l.cfg.Bandwidth * bwF
	var txTime time.Duration
	if bw > 0 {
		txTime = time.Duration(float64(pkt.Size()*8) / bw * float64(time.Second))
	}
	depart := egressStart
	if l.nextFree.After(depart) {
		depart = l.nextFree
	}
	queueLimit := l.cfg.QueueLimit
	if queueLimit == 0 {
		queueLimit = 500 * time.Millisecond
	}
	if depart.Sub(now) > queueLimit && !pkt.Reliable {
		return time.Time{}, time.Time{}, "queue overflow"
	}
	l.nextFree = depart.Add(txTime)

	// Loss decision.
	ploss := l.cfg.Loss * lossF
	if l.cfg.Burst != nil {
		b := l.cfg.Burst
		if l.burstBad {
			if l.rng.Bool(b.PBadToGood) {
				l.burstBad = false
			}
		} else if l.rng.Bool(b.PGoodToBad) {
			l.burstBad = true
		}
		if l.burstBad {
			ploss = maxf(ploss, b.PBad*lossF)
		} else {
			ploss = maxf(ploss, b.PGood*lossF)
		}
	}
	if ploss > 0.95 {
		ploss = 0.95
	}

	delay := l.cfg.Delay + extraD
	jitterBound := l.cfg.Jitter + extraJ
	if jitterBound > 0 {
		delay += time.Duration(l.rng.Float64() * float64(jitterBound))
	}

	lost := ploss > 0 && l.rng.Bool(ploss)
	if lost && !pkt.Reliable {
		return time.Time{}, time.Time{}, "loss"
	}
	arrival = l.nextFree.Add(delay)
	if lost && pkt.Reliable {
		// Reliable path: the loss becomes a retransmission, costing one
		// round trip plus a retransmission of the packet. Repeated losses
		// compound geometrically.
		for lost {
			arrival = arrival.Add(2*(l.cfg.Delay+extraD) + txTime)
			lost = l.rng.Bool(ploss)
		}
	}
	if pkt.Reliable {
		// TCP delivers in order per connection; model per link direction.
		if !arrival.After(l.lastReliableArrival) {
			arrival = l.lastReliableArrival.Add(time.Microsecond)
		}
		l.lastReliableArrival = arrival
	}
	l.stats.Delivered++
	l.stats.Delays.AddDuration(arrival.Sub(now))
	if h := n.deliveryHist.Load(); h != nil {
		h.Observe(arrival.Sub(now))
	}
	if !pkt.Reliable && l.cfg.Dup > 0 && l.rng.Bool(l.cfg.Dup) {
		dupArrival = arrival.Add(time.Millisecond + time.Duration(l.rng.Float64()*float64(jitterBound+time.Millisecond)))
	}
	return arrival, dupArrival, ""
}

// scheduleDelivery arranges for the packet (whose payload is already a
// pooled copy shared via the refcount) to be handed to the destination's
// endpoint at the arrival instant: directly on the owning shard's clock
// when source and destination share a shard, through the driver's
// cross-shard mailbox otherwise.
func (n *Network) scheduleDelivery(src int, pkt Packet, now, arrival time.Time, pb *buffer.Buf, remaining *int32) {
	dst := n.shardIdx(pkt.To.Host())
	ds := n.shards[dst]
	deliver := func() {
		ds.mu.Lock()
		h := ds.endpoints[pkt.To]
		ds.delivered++
		ds.digest = deliveryFold(ds.digest, pkt.To, ds.clk.Now().Sub(n.epoch), len(pkt.Payload))
		ds.mu.Unlock()
		if h != nil {
			h(pkt)
		}
		if atomic.AddInt32(remaining, -1) == 0 {
			payloadPool.Put(pb)
		}
	}
	if n.sv == nil || src == dst {
		n.shards[src].clk.AfterFunc(arrival.Sub(now), deliver)
	} else {
		n.sv.ScheduleCross(src, dst, arrival, deliver)
	}
}

// Send injects a packet. Delivery (or drop) is decided immediately and the
// handler is invoked via the clock at the computed arrival time. Sending to
// an address with no listener silently drops at arrival time. Only
// fault-injected drops (partitions, outages, downed hosts, one-shot drops)
// return an error; stochastic loss and tail drop return nil.
//
// In sharded mode, Send must be called from the sending host's shard — the
// natural discipline, since simulated traffic originates from timers on the
// owning shard's clock — or from setup code before the driver runs.
func (n *Network) Send(pkt Packet) error {
	src := n.shardIdx(pkt.From.Host())
	s := n.shards[src]
	pkt.SentAt = s.clk.Now()
	if sn := n.Sniffer; sn != nil {
		sn(pkt)
	}
	now := pkt.SentAt
	offset := now.Sub(n.epoch)

	s.mu.Lock()
	l := n.getLinkLocked(s, pkt.From.Host(), pkt.To.Host())
	l.stats.Sent++
	l.stats.Bytes += int64(pkt.Size())

	// Injected faults kill the packet regardless of reliability: a
	// partitioned or downed host drops TCP segments just as surely as UDP
	// datagrams.
	if cause, faulted := n.faults.check(pkt, offset); faulted {
		l.stats.Dropped++
		dh := n.DropHandler
		s.mu.Unlock()
		if dh != nil {
			dh(pkt, cause.Error())
		}
		// %w keeps the typed cause (ErrHostDown, ErrPartitioned, ...)
		// reachable through errors.Is.
		return fmt.Errorf("netsim: fault drop %s→%s: %w", pkt.From, pkt.To, cause)
	}

	// Host egress: one shared serializer for everything the host sends.
	egressStart := now
	if eg, ok := s.egresses[pkt.From.Host()]; ok {
		egTx := time.Duration(float64(pkt.Size()*8) / eg.rate * float64(time.Second))
		if eg.nextFree.After(egressStart) {
			egressStart = eg.nextFree
		}
		if egressStart.Sub(now) > eg.queueLimit && !pkt.Reliable {
			l.stats.Dropped++
			dh := n.DropHandler
			s.mu.Unlock()
			if dh != nil {
				dh(pkt, "egress overflow")
			}
			return nil
		}
		eg.nextFree = egressStart.Add(egTx)
		egressStart = eg.nextFree
	}

	arrival, dupArrival, dropCause := n.linkPlanLocked(s, l, &pkt, now, offset, egressStart)
	if dropCause != "" {
		l.stats.Dropped++
		dh := n.DropHandler
		s.mu.Unlock()
		if dh != nil {
			dh(pkt, dropCause)
		}
		return nil
	}
	s.mu.Unlock()

	// Delivery is deferred (and possibly duplicated), but the caller owns
	// pkt.Payload again as soon as Send returns: copy-on-enqueue into a
	// pooled buffer, released after the last delivery fires.
	pb := payloadPool.Get(len(pkt.Payload))
	copy(pb.B, pkt.Payload)
	pkt.Payload = pb.B
	remaining := new(int32)
	*remaining = 1
	if !dupArrival.IsZero() {
		*remaining = 2
	}
	n.scheduleDelivery(src, pkt, now, arrival, pb, remaining)
	if !dupArrival.IsZero() {
		n.scheduleDelivery(src, pkt, now, dupArrival, pb, remaining)
	}
	return nil
}

// multiDrop records one destination's drop decision so the DropHandler can
// run after the shard lock is released.
type multiDrop struct {
	to    Addr
	cause string
}

// SendMulti implements MultiSender: one packet, many destinations, one
// pooled payload copy shared by every scheduled delivery (refcounted exactly
// like Send's dup deliveries). The sending host's egress serializer is
// charged for a single transmission — the multicast model: fanning a hot
// flow out to N subscribers does not multiply the server's uplink load —
// while each destination's link still makes its own serialization, loss,
// jitter and fault decisions. Per-destination failures (faults, tail drops,
// stochastic loss) never fail the batch; like stochastic loss in Send, they
// return nil. Every link leaving the sending host lives on the sending
// host's shard, so the whole fan-out plan is computed under that single
// shard lock; deliveries then spread to each destination's own shard.
func (n *Network) SendMulti(pkt Packet, tos []Addr) error {
	if len(tos) == 0 {
		return nil
	}
	src := n.shardIdx(pkt.From.Host())
	s := n.shards[src]
	pkt.SentAt = s.clk.Now()
	if sn := n.Sniffer; sn != nil {
		sn(pkt)
	}
	now := pkt.SentAt
	type arrivalPlan struct {
		to    Addr
		at    time.Time
		dupAt time.Time // zero = no duplicate
	}
	arrivals := make([]arrivalPlan, 0, len(tos))
	var drops []multiDrop
	s.mu.Lock()
	offset := now.Sub(n.epoch)

	// One egress serialization for the whole fan-out.
	egressStart := now
	egressOverflow := false
	if eg, ok := s.egresses[pkt.From.Host()]; ok {
		egTx := time.Duration(float64(pkt.Size()*8) / eg.rate * float64(time.Second))
		if eg.nextFree.After(egressStart) {
			egressStart = eg.nextFree
		}
		if egressStart.Sub(now) > eg.queueLimit && !pkt.Reliable {
			egressOverflow = true
		} else {
			eg.nextFree = egressStart.Add(egTx)
			egressStart = eg.nextFree
		}
	}

	for _, to := range tos {
		p := pkt
		p.To = to
		l := n.getLinkLocked(s, p.From.Host(), to.Host())
		l.stats.Sent++
		l.stats.Bytes += int64(p.Size())
		if egressOverflow {
			l.stats.Dropped++
			drops = append(drops, multiDrop{to: to, cause: "egress overflow"})
			continue
		}
		if cause, faulted := n.faults.check(p, offset); faulted {
			l.stats.Dropped++
			drops = append(drops, multiDrop{to: to, cause: cause.Error()})
			continue
		}
		arrival, dupAt, dropCause := n.linkPlanLocked(s, l, &p, now, offset, egressStart)
		if dropCause != "" {
			l.stats.Dropped++
			drops = append(drops, multiDrop{to: to, cause: dropCause})
			continue
		}
		arrivals = append(arrivals, arrivalPlan{to: to, at: arrival, dupAt: dupAt})
	}
	s.mu.Unlock()

	if dh := n.DropHandler; dh != nil {
		for _, d := range drops {
			p := pkt
			p.To = d.to
			dh(p, d.cause)
		}
	}
	if len(arrivals) == 0 {
		return nil
	}

	// One pooled copy backs every delivery of the fan-out; the refcount
	// releases it after the last handler returns, exactly as Send does for
	// its dup deliveries.
	pb := payloadPool.Get(len(pkt.Payload))
	copy(pb.B, pkt.Payload)
	remaining := new(int32)
	for _, a := range arrivals {
		*remaining++
		if !a.dupAt.IsZero() {
			*remaining++
		}
	}
	for _, a := range arrivals {
		p := pkt
		p.To = a.to
		p.Payload = pb.B
		n.scheduleDelivery(src, p, now, a.at, pb, remaining)
		if !a.dupAt.IsZero() {
			n.scheduleDelivery(src, p, now, a.dupAt, pb, remaining)
		}
	}
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// FNV-1a folding for the replay digests.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

func fnv64str(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// deliveryFold mixes one delivery event into a shard digest.
func deliveryFold(h uint64, to Addr, at time.Duration, size int) uint64 {
	if h == 0 {
		h = fnvOffset
	}
	h = fnvMix(h, fnv64str(string(to)))
	h = fnvMix(h, uint64(at))
	h = fnvMix(h, uint64(size))
	return h
}

// mix64 is the SplitMix64 finalizer, used to derive per-shard seeds.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
)

// DefaultSeriesCap bounds a time series ring (samples, not metrics).
const DefaultSeriesCap = 240

// TimeSeries periodically samples a registry into a bounded ring, turning
// end-state totals into trajectories: counter deltas per interval, gauge
// levels, histogram quantiles over time. Harnesses sample at phase
// boundaries; hermesd samples on its -metrics-every tick. The ring is
// exported as JSONL and rendered as a trail section in the dashboard.
type TimeSeries struct {
	clk clock.Clock
	reg *Registry

	mu       sync.Mutex
	capN     int
	samples  []SeriesSample
	prev     map[string]float64 // counter values / histogram counts at last sample
	timer    *clock.Timer
	interval time.Duration
	running  bool
}

// SeriesSample is one sampling instant: every instrument's point in time.
type SeriesSample struct {
	At     time.Time      `json:"at"`
	Points []SeriesMetric `json:"points"`
}

// SeriesMetric is one instrument at one instant. Counters report the delta
// since the previous sample; gauges and high-water marks report their
// level; histograms report quantiles (milliseconds, like MetricPoint) plus
// the observation delta.
type SeriesMetric struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Value float64 `json:"value"`           // counter delta | gauge level | histogram mean ms
	Count int64   `json:"count,omitempty"` // histogram observations since last sample
	P50   float64 `json:"p50_ms,omitempty"`
	P95   float64 `json:"p95_ms,omitempty"`
	P99   float64 `json:"p99_ms,omitempty"`
	Max   float64 `json:"max_ms,omitempty"`
}

// NewTimeSeries creates a series over reg holding at most capN samples
// (DefaultSeriesCap when capN <= 0). Scopes normally build one via
// Scope.EnableTimeSeries.
func NewTimeSeries(clk clock.Clock, reg *Registry, capN int) *TimeSeries {
	if capN <= 0 {
		capN = DefaultSeriesCap
	}
	return &TimeSeries{clk: clk, reg: reg, capN: capN, prev: map[string]float64{}}
}

// Sample takes one snapshot now. Safe from any goroutine; harnesses call it
// at phase boundaries so the sampling cost never lands inside a measured
// window.
func (ts *TimeSeries) Sample() {
	snap := ts.reg.Snapshot()
	at := ts.clk.Now()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	pts := make([]SeriesMetric, 0, len(snap))
	for _, p := range snap {
		m := SeriesMetric{Name: p.Name, Kind: p.Kind, Value: p.Value}
		switch p.Kind {
		case "counter":
			m.Value = p.Value - ts.prev["c:"+p.Name]
			ts.prev["c:"+p.Name] = p.Value
		case "histogram":
			m.Count = p.Count - int64(ts.prev["h:"+p.Name])
			ts.prev["h:"+p.Name] = float64(p.Count)
			m.P50, m.P95, m.P99, m.Max = p.P50, p.P95, p.P99, p.Max
		}
		pts = append(pts, m)
	}
	if len(ts.samples) == ts.capN {
		copy(ts.samples, ts.samples[1:])
		ts.samples = ts.samples[:ts.capN-1]
	}
	ts.samples = append(ts.samples, SeriesSample{At: at, Points: pts})
}

// Start arms periodic sampling every interval (idempotent; Stop disarms).
func (ts *TimeSeries) Start(interval time.Duration) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.running || interval <= 0 {
		return
	}
	ts.interval = interval
	ts.running = true
	if ts.timer == nil {
		ts.timer = ts.clk.AfterFunc(interval, ts.tick)
	} else {
		ts.timer.Reset(interval)
	}
}

func (ts *TimeSeries) tick() {
	ts.Sample()
	ts.mu.Lock()
	if ts.running {
		ts.timer.Reset(ts.interval)
	}
	ts.mu.Unlock()
}

// Stop disarms periodic sampling (manual Sample still works).
func (ts *TimeSeries) Stop() {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.running = false
	if ts.timer != nil {
		ts.timer.Stop()
	}
}

// Len returns how many samples the ring holds.
func (ts *TimeSeries) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.samples)
}

// Samples returns a copy of the ring, oldest first.
func (ts *TimeSeries) Samples() []SeriesSample {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]SeriesSample, len(ts.samples))
	copy(out, ts.samples)
	return out
}

// WriteJSONL writes one JSON line per sample, oldest first.
func (ts *TimeSeries) WriteJSONL(w io.Writer) error {
	for _, s := range ts.Samples() {
		line, err := json.Marshal(s)
		if err != nil {
			return fmt.Errorf("obs: marshal series sample: %w", err)
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}

// Table renders the last lastK samples as per-metric trails for the
// dashboard: counters as +delta chains, gauges as levels, histograms as p95
// chains — each cell with its unit. Metrics flat at zero across the whole
// window are elided.
func (ts *TimeSeries) Table(lastK int) string {
	samples := ts.Samples()
	if len(samples) == 0 {
		return ""
	}
	if lastK > 0 && len(samples) > lastK {
		samples = samples[len(samples)-lastK:]
	}
	// Column per sample, row per metric named in the newest sample.
	last := samples[len(samples)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "time series (%d samples, newest right):\n", len(samples))
	for _, m := range last.Points {
		cells := make([]string, 0, len(samples))
		allZero := true
		for _, s := range samples {
			var cell string
			for _, p := range s.Points {
				if p.Name != m.Name {
					continue
				}
				switch p.Kind {
				case "counter":
					cell = fmt.Sprintf("+%.0f", p.Value)
					allZero = allZero && p.Value == 0
				case "histogram":
					cell = "p95=" + FmtMS(p.P95)
					allZero = allZero && p.Count == 0 && p.P95 == 0
				default:
					cell = fmt.Sprintf("%.0f", p.Value)
					allZero = allZero && p.Value == 0
				}
				break
			}
			if cell == "" {
				cell = "·"
			}
			cells = append(cells, cell)
		}
		if allZero {
			continue
		}
		fmt.Fprintf(&b, "  %-44s %s\n", m.Name, strings.Join(cells, " → "))
	}
	return b.String()
}

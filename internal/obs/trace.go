// Package obs is the session telemetry layer: a metric registry of named
// instruments (counters, gauges, high-water marks, duration histograms), a
// bounded structured trace of typed events, and the Scope handle that wires
// both through the client, server, buffer, playout, QoS and transport
// layers.
//
// Everything is stamped with clock.Clock time, so the same instrumented
// code traces identically under the virtual simulation clock and the wall
// clock, and a nil *Scope disables all instrumentation at zero cost —
// components never need to know whether telemetry is on.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventKind classifies trace events.
type EventKind uint8

// Trace event kinds. These cover the moments the paper's evaluation turns
// on: buffer occupancy vs watermarks, short-term skew recovery, long-term
// quality grading, admission decisions, and transport-level reconnects.
const (
	// EvSessionStart marks a session coming up (client connected / server
	// admitted).
	EvSessionStart EventKind = iota + 1
	// EvSessionEnd marks a session tearing down.
	EvSessionEnd
	// EvBufferWatermark marks a buffer crossing a watermark: an overflow
	// above the high mark or an underflow at playout time.
	EvBufferWatermark
	// EvFrameDrop marks frames discarded (stale arrival, watermark trim,
	// skew catch-up).
	EvFrameDrop
	// EvFrameDuplicate marks a frame replayed to conceal a gap.
	EvFrameDuplicate
	// EvSkewAction marks a short-term intermedia synchronization action.
	EvSkewAction
	// EvGradeChange marks a long-term quality grading action
	// (degrade/upgrade/cutoff/restore).
	EvGradeChange
	// EvDeadlineMiss marks a playout slot whose frame missed its deadline.
	EvDeadlineMiss
	// EvAdmissionDecision marks a connection-admission verdict.
	EvAdmissionDecision
	// EvReconnect marks a transport-level connection loss and redial.
	EvReconnect
	// EvCtrlRetry marks a control request retransmitted after a reply
	// timeout.
	EvCtrlRetry
	// EvCtrlTimeout marks a control request abandoned after its retries
	// (or its deadline) were exhausted.
	EvCtrlTimeout
	// EvCtrlDedup marks a duplicated control request absorbed by the
	// server's idempotent dedup cache (the cached reply is re-sent, the
	// handler does not run again).
	EvCtrlDedup
	// EvLiveness marks a session liveness transition: a peer declared dead
	// after missed heartbeats (value 0) or alive again (value 1).
	EvLiveness
	// EvFailover marks a client abandoning a dead server for a replica.
	EvFailover
	// EvSessionResume marks a suspended session resumed in place (the peer
	// returned within the grace window).
	EvSessionResume
	// EvSendFailure marks a control message the transport reported it could
	// not deliver (dropped reply, queue overflow, partitioned link).
	EvSendFailure
	// EvHeartbeatMiss marks one unanswered session heartbeat (value = the
	// consecutive miss count); LivenessMisses of these become an EvLiveness.
	EvHeartbeatMiss
	// EvFrameSample is a sampled frame-span measurement teed into the flight
	// recorder (value = hop latency in µs, note = the hop name). It never
	// enters the main trace ring.
	EvFrameSample
	// EvCtrlSpan is a completed control request span teed into the flight
	// recorder (value = round-trip µs including retransmits, note = message
	// type).
	EvCtrlSpan
	// EvAnomaly marks a flight-recorder trigger (note = the anomaly reason).
	EvAnomaly
	// EvRedirect marks a load-aware admission redirect: issued on the server
	// (note = the watermark reason), followed on the client (value = hop
	// number of the episode).
	EvRedirect
	// EvHandoff marks a cross-server handoff step: ticket issued/accepted on
	// the servers, initiated/completed on the client (value = latency in µs
	// on completion).
	EvHandoff
)

func (k EventKind) String() string {
	switch k {
	case EvSessionStart:
		return "session-start"
	case EvSessionEnd:
		return "session-end"
	case EvBufferWatermark:
		return "buffer-watermark"
	case EvFrameDrop:
		return "frame-drop"
	case EvFrameDuplicate:
		return "frame-duplicate"
	case EvSkewAction:
		return "skew-action"
	case EvGradeChange:
		return "grade-change"
	case EvDeadlineMiss:
		return "deadline-miss"
	case EvAdmissionDecision:
		return "admission-decision"
	case EvReconnect:
		return "reconnect"
	case EvCtrlRetry:
		return "ctrl-retry"
	case EvCtrlTimeout:
		return "ctrl-timeout"
	case EvCtrlDedup:
		return "ctrl-dedup"
	case EvLiveness:
		return "liveness"
	case EvFailover:
		return "failover"
	case EvSessionResume:
		return "session-resume"
	case EvSendFailure:
		return "send-failure"
	case EvHeartbeatMiss:
		return "heartbeat-miss"
	case EvFrameSample:
		return "frame-sample"
	case EvCtrlSpan:
		return "ctrl-span"
	case EvAnomaly:
		return "anomaly"
	case EvRedirect:
		return "redirect"
	case EvHandoff:
		return "handoff"
	default:
		return fmt.Sprintf("kind-%d", uint8(k))
	}
}

// Event is one entry in the structured trace.
type Event struct {
	// At is the clock time of the event (virtual or wall, whichever clock
	// the Scope was built on).
	At time.Time
	// Kind classifies the event.
	Kind EventKind
	// Stream names the stream, session, user or host concerned ("" for
	// process-level events).
	Stream string
	// Value carries the event's magnitude (frames dropped, level reached,
	// granted rate, occupancy ms — kind-dependent).
	Value int64
	// Note carries human-readable detail.
	Note string
}

// DefaultTraceCap bounds a Scope's trace ring.
const DefaultTraceCap = 4096

// Trace is a bounded, concurrency-safe ring of events. When full, new
// events overwrite the oldest (counted in Dropped) — recent history is what
// debugging a live glitch needs.
type Trace struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	dropped int64

	// dumpMu serializes the dump paths (Count, WriteJSONL) so they can share
	// one reusable snapshot buffer instead of allocating per call. It is
	// never held together with mu for longer than one EventsAppend.
	dumpMu  sync.Mutex
	dumpBuf []Event
}

// NewTrace creates a trace holding at most capacity events.
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = DefaultTraceCap
	}
	return &Trace{buf: make([]Event, capacity)}
}

// Record appends one event, evicting the oldest when the ring is full.
func (t *Trace) Record(ev Event) {
	t.mu.Lock()
	if t.full {
		t.dropped++
	}
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Len returns the number of retained events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.buf)
	}
	return t.next
}

// Dropped returns how many events were evicted to make room.
func (t *Trace) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the retained events, oldest first, in a fresh slice.
// Periodic consumers should prefer EventsAppend with a reused buffer.
func (t *Trace) Events() []Event {
	return t.EventsAppend(nil)
}

// EventsAppend appends the retained events, oldest first, to buf (which is
// truncated first) and returns the extended slice. With a warm buffer of
// sufficient capacity the call does not allocate, so periodic dumps can
// snapshot the ring for free.
func (t *Trace) EventsAppend(buf []Event) []Event {
	buf = buf[:0]
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append(buf, t.buf[:t.next]...)
	}
	buf = append(buf, t.buf[t.next:]...)
	return append(buf, t.buf[:t.next]...)
}

// Count returns how many retained events match kind (and stream, "" = any).
func (t *Trace) Count(k EventKind, stream string) int {
	t.dumpMu.Lock()
	defer t.dumpMu.Unlock()
	t.dumpBuf = t.EventsAppend(t.dumpBuf)
	n := 0
	for _, ev := range t.dumpBuf {
		if ev.Kind == k && (stream == "" || ev.Stream == stream) {
			n++
		}
	}
	return n
}

// jsonEvent is the JSONL schema of one trace line.
type jsonEvent struct {
	At     string `json:"at"` // RFC3339Nano, clock time
	Kind   string `json:"kind"`
	Stream string `json:"stream,omitempty"`
	Value  int64  `json:"value,omitempty"`
	Note   string `json:"note,omitempty"`
}

// WriteJSONL writes the retained events as JSON Lines, one event per line,
// oldest first. The ring snapshot reuses a buffer across calls.
func (t *Trace) WriteJSONL(w io.Writer) error {
	t.dumpMu.Lock()
	defer t.dumpMu.Unlock()
	t.dumpBuf = t.EventsAppend(t.dumpBuf)
	return writeEventsJSONL(w, t.dumpBuf)
}

// writeEventsJSONL renders events in the shared trace JSONL schema.
func writeEventsJSONL(w io.Writer, evs []Event) error {
	for _, ev := range evs {
		line, err := json.Marshal(jsonEvent{
			At:     ev.At.UTC().Format(time.RFC3339Nano),
			Kind:   ev.Kind.String(),
			Stream: ev.Stream,
			Value:  ev.Value,
			Note:   ev.Note,
		})
		if err != nil {
			return fmt.Errorf("obs: marshal event: %w", err)
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}

package obs

import (
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Latency spans decompose the emit→playout path into per-hop histograms.
// One frame in every N (DefaultSpanSampleEvery) is measured; both ends of
// the wire derive the sampling decision from the frame index the media
// header already carries (and the RTP timestamp/seq identity it maps to),
// so the server and the client measure the very same frames with no extra
// wire bytes and no coordination. Every hop is a plain histogram Observe on
// a pre-resolved instrument — allocation-free, so sampling can stay on in
// the zero-alloc data plane.
//
// The hops:
//
//	emit→wire            server: emit start to last fragment handed to the
//	                     transport (wall time — an in-process service time)
//	wire→reassembled     client: netsim send stamp of the frame's first
//	                     fragment to reassembly completion (clock time)
//	reassembled→deadline client: slack between arrival and the playout
//	                     deadline at play time (clock time; 0 = just-in-time)
const DefaultSpanSampleEvery = 8

// Registry names of the frame-span histograms.
const (
	SpanEmitToWire        = "span_emit_to_wire"
	SpanWireToReassembled = "span_wire_to_reassembled"
	SpanDeadlineSlack     = "span_deadline_slack"
)

// Flight-recorder hop tags of EvFrameSample events (values are µs).
const (
	HopEmitToWire        = "emit_to_wire_us"
	HopWireToReassembled = "wire_to_reassembled_us"
	HopDeadlineSlack     = "deadline_slack_us"
)

// FrameSpans is a scope's frame-span recorder. Components resolve it once
// at construction (like counters) and call Sampled/Record* on the hot path.
// The shared no-op instance a nil scope hands out never samples.
type FrameSpans struct {
	every atomic.Uint32
	scope *Scope // nil on the shared no-op
	hEmit *stats.DurationHistogram
	hWire *stats.DurationHistogram
	hSlak *stats.DurationHistogram
}

var noopSpans = &FrameSpans{hEmit: noopHist, hWire: noopHist, hSlak: noopHist}

func newFrameSpans(s *Scope) *FrameSpans {
	f := &FrameSpans{
		scope: s,
		hEmit: s.reg.HistogramBounds(SpanEmitToWire, stats.MicroLatencyBounds()...),
		hWire: s.reg.Histogram(SpanWireToReassembled),
		hSlak: s.reg.Histogram(SpanDeadlineSlack),
	}
	f.every.Store(DefaultSpanSampleEvery)
	return f
}

// SetSampleEvery changes the sampling stride (0 disables sampling). It is a
// no-op on the shared no-op instance.
func (f *FrameSpans) SetSampleEvery(n uint32) {
	if f.scope == nil {
		return
	}
	f.every.Store(n)
}

// SampleEvery returns the current stride (0 = sampling off).
func (f *FrameSpans) SampleEvery() uint32 { return f.every.Load() }

// Sampled reports whether the frame with this index belongs to the 1-in-N
// sample. Every hop keys on the same index, so a sampled frame is sampled
// end to end.
func (f *FrameSpans) Sampled(idx uint32) bool {
	n := f.every.Load()
	return n != 0 && idx%n == 0
}

// RecordEmit records the emit→wire service time of a sampled frame.
func (f *FrameSpans) RecordEmit(stream string, d time.Duration) {
	f.hEmit.Observe(d)
	f.tee(stream, d, HopEmitToWire)
}

// RecordDelivery records the wire→reassembled latency of a sampled frame.
func (f *FrameSpans) RecordDelivery(stream string, d time.Duration) {
	f.hWire.Observe(d)
	f.tee(stream, d, HopWireToReassembled)
}

// RecordSlack records how early a sampled frame was reassembled relative to
// its playout deadline (clamped at zero: a late frame shows up in the
// playout lateness histogram instead).
func (f *FrameSpans) RecordSlack(stream string, d time.Duration) {
	f.hSlak.Observe(d)
	f.tee(stream, d, HopDeadlineSlack)
}

// EmitToWire exposes the emit→wire histogram (harnesses report its
// percentiles).
func (f *FrameSpans) EmitToWire() *stats.DurationHistogram { return f.hEmit }

// WireToReassembled exposes the wire→reassembled histogram.
func (f *FrameSpans) WireToReassembled() *stats.DurationHistogram { return f.hWire }

// DeadlineSlack exposes the reassembled→deadline slack histogram.
func (f *FrameSpans) DeadlineSlack() *stats.DurationHistogram { return f.hSlak }

// tee forwards the sample into the scope's flight recorder (when one is
// armed) so an anomaly dump carries the latency context around the event
// window. No allocation: the Event is built from existing strings.
func (f *FrameSpans) tee(stream string, d time.Duration, hop string) {
	if f.scope == nil {
		return
	}
	if r := f.scope.rec.Load(); r != nil {
		r.Record(Event{
			At: f.scope.clk.Now(), Kind: EvFrameSample,
			Stream: stream, Value: d.Microseconds(), Note: hop,
		})
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/stats"
)

// Registry is a get-or-create store of named instruments. Lookup takes a
// read lock; components fetch their instruments once at construction, so
// the hot path is pure atomic ops on the instrument itself.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*stats.Counter
	gauges   map[string]*stats.Gauge
	highs    map[string]*stats.HighWater
	hists    map[string]*stats.DurationHistogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*stats.Counter),
		gauges:   make(map[string]*stats.Gauge),
		highs:    make(map[string]*stats.HighWater),
		hists:    make(map[string]*stats.DurationHistogram),
	}
}

// Label renders a labeled family member name, e.g.
// Label("buffer_pushed", "stream", "vi/c") → `buffer_pushed{stream=vi/c}`.
// Pairs must come as key, value, key, value… Values containing reserved
// characters ({ } = , " or space) are double-quoted with backslash escapes,
// so distinct label sets can never collide on one rendered name.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteByte('=')
		writeLabelValue(&b, kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func writeLabelValue(b *strings.Builder, v string) {
	if !strings.ContainsAny(v, "{}=,\" \\") {
		b.WriteString(v)
		return
	}
	b.WriteByte('"')
	for i := 0; i < len(v); i++ {
		if v[i] == '"' || v[i] == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(v[i])
	}
	b.WriteByte('"')
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *stats.Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = new(stats.Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *stats.Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = new(stats.Gauge)
		r.gauges[name] = g
	}
	return g
}

// HighWater returns the named high-water mark, creating it on first use.
func (r *Registry) HighWater(name string) *stats.HighWater {
	r.mu.RLock()
	h := r.highs[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.highs[name]; h == nil {
		h = new(stats.HighWater)
		r.highs[name] = h
	}
	return h
}

// Histogram returns the named duration histogram (default latency bounds),
// creating it on first use.
func (r *Registry) Histogram(name string) *stats.DurationHistogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = stats.NewDurationHistogram()
		r.hists[name] = h
	}
	return h
}

// HistogramBounds is Histogram with explicit bucket bounds used on first
// creation (an existing histogram is returned as-is, whatever its bounds —
// get-or-create identity wins over bounds).
func (r *Registry) HistogramBounds(name string, bounds ...time.Duration) *stats.DurationHistogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = stats.NewDurationHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// MetricPoint is one instrument's snapshot. For histograms Value is the
// mean and the count/min/max/quantile fields are set; every duration field
// is in milliseconds, as its `_ms` JSON suffix says (BENCH files report
// microsecond fields with an `_us` suffix — the unit always rides on the
// name).
type MetricPoint struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"` // counter | gauge | highwater | histogram
	Value float64 `json:"value"`
	Count int64   `json:"count,omitempty"` // histogram observation count
	P50   float64 `json:"p50_ms,omitempty"`
	P95   float64 `json:"p95_ms,omitempty"`
	P99   float64 `json:"p99_ms,omitempty"`
	Min   float64 `json:"min_ms,omitempty"`
	Max   float64 `json:"max_ms,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// FmtMS renders a millisecond quantity with an explicit unit, dropping to
// µs below 1ms and rising to s above 1000ms, so dashboards stay readable
// across the µs-scale service-time histograms and the s-scale playout ones.
func FmtMS(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 1:
		return fmt.Sprintf("%.0fµs", v*1000)
	case v >= 1000:
		return fmt.Sprintf("%.2fs", v/1000)
	default:
		return fmt.Sprintf("%.1fms", v)
	}
}

// Snapshot returns every instrument's current value, sorted by name.
func (r *Registry) Snapshot() []MetricPoint {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]MetricPoint, 0, len(r.counters)+len(r.gauges)+len(r.highs)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, MetricPoint{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, MetricPoint{Name: name, Kind: "gauge", Value: float64(g.Value())})
	}
	for name, h := range r.highs {
		out = append(out, MetricPoint{Name: name, Kind: "highwater", Value: float64(h.Value())})
	}
	for name, h := range r.hists {
		out = append(out, MetricPoint{
			Name: name, Kind: "histogram",
			Value: ms(h.Mean()), Count: h.N(),
			P50: ms(h.P50()), P95: ms(h.P95()), P99: ms(h.P99()),
			Min: ms(h.Min()), Max: ms(h.Max()),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Table renders the snapshot as a text table.
func (r *Registry) Table() *stats.Table {
	tb := stats.NewTable("metrics", "name", "kind", "value", "detail")
	for _, p := range r.Snapshot() {
		detail := ""
		value := fmt.Sprintf("%.0f", p.Value)
		if p.Kind == "histogram" {
			value = FmtMS(p.Value)
			detail = fmt.Sprintf("n=%d p50=%s p95=%s p99=%s min=%s max=%s",
				p.Count, FmtMS(p.P50), FmtMS(p.P95), FmtMS(p.P99), FmtMS(p.Min), FmtMS(p.Max))
		}
		tb.AddRow(p.Name, p.Kind, value, detail)
	}
	return tb
}

// WriteJSON writes the snapshot as one JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

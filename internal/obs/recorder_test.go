package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestRecorderLivenessLossTriggersDelayedDump(t *testing.T) {
	clk := clock.NewSim()
	s := NewScope(clk)
	var gotAnomaly string
	var gotEvents int
	rec := s.EnableFlightRecorder(RecorderOptions{
		FlushDelay: 2 * time.Second,
		Sink: func(anomaly string, events []Event) {
			gotAnomaly = anomaly
			gotEvents = len(events)
		},
	})
	s.Emit(EvHeartbeatMiss, "srv", 3, "heartbeat unanswered")
	s.Emit(EvLiveness, "srv", 0, "peer lost")
	if !rec.Pending() {
		t.Fatal("liveness loss did not arm a pending dump")
	}
	// The window stays open through FlushDelay so the aftermath lands in it.
	clk.Advance(time.Second)
	s.Emit(EvFailover, "srv", 0, "failing over to peer")
	if rec.Dumps() != 0 {
		t.Fatal("dumped before the flush delay elapsed")
	}
	clk.Advance(3 * time.Second)
	if rec.Dumps() != 1 {
		t.Fatalf("dumps = %d, want 1", rec.Dumps())
	}
	if gotAnomaly != "liveness-loss" {
		t.Fatalf("anomaly = %q", gotAnomaly)
	}
	// 2 trigger-adjacent events + failover + 2 anomaly markers (the failover
	// re-trigger extends the same window).
	if gotEvents < 4 {
		t.Fatalf("window holds %d events, want the full incident", gotEvents)
	}
}

func TestRecorderSecondAnomalyExtendsNotDoubles(t *testing.T) {
	clk := clock.NewSim()
	s := NewScope(clk)
	rec := s.EnableFlightRecorder(RecorderOptions{FlushDelay: 2 * time.Second})
	s.Emit(EvLiveness, "a", 0, "lost")
	clk.Advance(1500 * time.Millisecond)
	s.Emit(EvFailover, "a", 0, "failing over") // re-trigger at +1.5s
	clk.Advance(1 * time.Second)               // original deadline (+2s) passes
	if rec.Dumps() != 0 {
		t.Fatal("flush not extended by the second anomaly")
	}
	clk.Advance(2 * time.Second) // extended deadline (+3.5s) passes
	if rec.Dumps() != 1 {
		t.Fatalf("dumps = %d, want exactly 1 for one incident", rec.Dumps())
	}
}

func TestRecorderCooldownSuppressesRetrigger(t *testing.T) {
	clk := clock.NewSim()
	s := NewScope(clk)
	rec := s.EnableFlightRecorder(RecorderOptions{
		FlushDelay: time.Second,
		Cooldown:   30 * time.Second,
	})
	s.Emit(EvLiveness, "a", 0, "lost")
	clk.Advance(2 * time.Second)
	if rec.Dumps() != 1 {
		t.Fatalf("dumps = %d", rec.Dumps())
	}
	s.Emit(EvLiveness, "a", 0, "lost again") // inside cooldown
	clk.Advance(5 * time.Second)
	if rec.Dumps() != 1 {
		t.Fatal("cooldown did not suppress the re-trigger")
	}
	clk.Advance(30 * time.Second)
	s.Emit(EvLiveness, "a", 0, "lost later") // past cooldown
	clk.Advance(2 * time.Second)
	if rec.Dumps() != 2 {
		t.Fatalf("dumps = %d, want 2 after cooldown expiry", rec.Dumps())
	}
}

func TestRecorderDeadlineMissBurst(t *testing.T) {
	clk := clock.NewSim()
	s := NewScope(clk)
	rec := s.EnableFlightRecorder(RecorderOptions{
		FlushDelay:  time.Second,
		BurstN:      4,
		BurstWindow: 2 * time.Second,
	})
	// 3 spaced misses: no burst.
	for i := 0; i < 3; i++ {
		s.Emit(EvDeadlineMiss, "v", 1, "late")
		clk.Advance(3 * time.Second)
	}
	if rec.Pending() || rec.Dumps() != 0 {
		t.Fatal("spaced misses must not trigger")
	}
	// 4 misses inside the window: burst.
	for i := 0; i < 4; i++ {
		s.Emit(EvDeadlineMiss, "v", 1, "late")
		clk.Advance(100 * time.Millisecond)
	}
	if !rec.Pending() {
		t.Fatal("burst did not trigger")
	}
	clk.Advance(2 * time.Second)
	if rec.Dumps() != 1 {
		t.Fatalf("dumps = %d", rec.Dumps())
	}
}

func TestRecorderDumpFileFormat(t *testing.T) {
	clk := clock.NewSim()
	s := NewScope(clk)
	dir := t.TempDir()
	rec := s.EnableFlightRecorder(RecorderOptions{Dir: dir, FlushDelay: time.Second})
	s.Emit(EvHeartbeatMiss, "srv", 2, "unanswered")
	s.FrameSpans().RecordEmit("v", 40*time.Microsecond) // tees into the ring
	s.Emit(EvLiveness, "srv", 0, "lost")
	clk.Advance(2 * time.Second)
	if err := rec.LastErr(); err != nil {
		t.Fatal(err)
	}
	path := rec.LastDumpPath()
	if !strings.HasSuffix(path, "flight-001.jsonl") {
		t.Fatalf("dump path = %q", path)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		t.Fatal("empty dump")
	}
	var hdr struct {
		Anomaly string `json:"anomaly"`
		At      string `json:"at"`
		Events  int    `json:"events"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("header %q: %v", sc.Text(), err)
	}
	if hdr.Anomaly != "liveness-loss" || hdr.Events == 0 || hdr.At == "" {
		t.Fatalf("header = %+v", hdr)
	}
	kinds := map[string]bool{}
	lines := 0
	for sc.Scan() {
		var ln struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		kinds[ln.Kind] = true
		lines++
	}
	if lines != hdr.Events {
		t.Fatalf("header claims %d events, file has %d", hdr.Events, lines)
	}
	for _, want := range []string{"heartbeat-miss", "frame-sample", "liveness", "anomaly"} {
		if !kinds[want] {
			t.Fatalf("dump missing %q events (has %v)", want, kinds)
		}
	}
}

func TestRecorderRingBounded(t *testing.T) {
	clk := clock.NewSim()
	rec := NewRecorder(clk, RecorderOptions{Cap: 8})
	for i := 0; i < 100; i++ {
		rec.Record(Event{At: clk.Now(), Kind: EvFrameDrop, Value: int64(i)})
	}
	evs := rec.Events()
	if len(evs) != 8 {
		t.Fatalf("ring holds %d, want 8", len(evs))
	}
	if evs[0].Value != 92 || evs[7].Value != 99 {
		t.Fatalf("ring kept wrong window: first=%d last=%d", evs[0].Value, evs[7].Value)
	}
}

package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
)

// Recorder is the flight recorder: a bounded ring of the most recent events
// and frame/control samples of one scope, dumped automatically when an
// anomaly fires. Where the main trace answers "what has this session done
// lately", a flight dump answers "what exactly surrounded the failover at
// tick 4.2s" — the causal window a chaos post-mortem needs, frozen at the
// moment it mattered.
//
// Anomalies: a failover, a liveness loss (EvLiveness with value 0), a
// deadline-miss burst (BurstN misses inside BurstWindow) or a grade drop
// (degrade/cutoff grading action). The dump is deferred by FlushDelay so
// the aftermath (recovery probes, the session resuming at a replica) lands
// inside the window; a second anomaly while one is pending extends the
// delay instead of dumping twice. After a dump, Cooldown suppresses
// re-triggering so one incident produces one file.
type Recorder struct {
	clk  clock.Clock
	opts RecorderOptions

	mu       sync.Mutex
	ring     []Event
	next     int
	full     bool
	missAt   []time.Time // timestamps of the last BurstN-1 deadline misses
	missNext int
	missFull bool
	pending  string // anomaly reason awaiting flush ("" = none)
	flush    *clock.Timer
	lastDump time.Time
	dumps    int
	lastPath string
	lastErr  error
	scratch  []Event
}

// RecorderOptions tunes a flight recorder. Zero values take defaults.
type RecorderOptions struct {
	// Cap bounds the ring (default 512 entries).
	Cap int
	// Dir, when set, receives one flight-NNN.jsonl file per dump: a header
	// line naming the anomaly, then the window's events in the trace JSONL
	// schema.
	Dir string
	// Sink, when set, observes each dump in-process. The events slice is
	// reused by the next dump — copy what outlives the call.
	Sink func(anomaly string, events []Event)
	// FlushDelay is how long after the trigger the window is frozen
	// (default 2s); anomalies arriving meanwhile extend it.
	FlushDelay time.Duration
	// BurstN deadline misses within BurstWindow trigger a dump (defaults
	// 8 within 2s).
	BurstN      int
	BurstWindow time.Duration
	// Cooldown suppresses new triggers after a dump (default 30s).
	Cooldown time.Duration
}

func (o *RecorderOptions) fill() {
	if o.Cap <= 0 {
		o.Cap = 512
	}
	if o.FlushDelay <= 0 {
		o.FlushDelay = 2 * time.Second
	}
	if o.BurstN <= 0 {
		o.BurstN = 8
	}
	if o.BurstWindow <= 0 {
		o.BurstWindow = 2 * time.Second
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 30 * time.Second
	}
}

// NewRecorder creates a flight recorder on clk. Scopes normally build one
// via Scope.EnableFlightRecorder, which also tees every Emit into it.
func NewRecorder(clk clock.Clock, opts RecorderOptions) *Recorder {
	opts.fill()
	n := opts.BurstN - 1
	if n < 1 {
		n = 1
	}
	return &Recorder{
		clk:    clk,
		opts:   opts,
		ring:   make([]Event, opts.Cap),
		missAt: make([]time.Time, n),
	}
}

// anomalyOf classifies an event as a dump trigger ("" = none). Deadline
// misses are handled separately: one miss is routine, a burst is not.
func anomalyOf(ev Event) string {
	switch ev.Kind {
	case EvFailover:
		return "failover"
	case EvLiveness:
		if ev.Value == 0 {
			return "liveness-loss"
		}
	case EvGradeChange:
		if strings.HasPrefix(ev.Note, "degrade") || strings.HasPrefix(ev.Note, "cutoff") {
			return "grade-drop"
		}
	}
	return ""
}

// Record appends one event to the ring and fires the anomaly logic. It does
// not allocate, so span sampling can tee into an armed recorder from the
// zero-alloc data plane.
func (r *Recorder) Record(ev Event) {
	r.mu.Lock()
	r.writeLocked(ev)
	reason := anomalyOf(ev)
	if ev.Kind == EvDeadlineMiss && r.burstLocked(ev.At) {
		reason = "deadline-miss-burst"
	}
	if reason != "" {
		r.triggerLocked(reason, ev.At)
	}
	r.mu.Unlock()
}

func (r *Recorder) writeLocked(ev Event) {
	r.ring[r.next] = ev
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
}

// burstLocked registers a deadline miss and reports whether it completes a
// burst: this miss plus the BurstN-1 before it all inside BurstWindow.
func (r *Recorder) burstLocked(at time.Time) bool {
	burst := false
	if r.missFull {
		oldest := r.missAt[r.missNext]
		burst = at.Sub(oldest) <= r.opts.BurstWindow
	}
	r.missAt[r.missNext] = at
	r.missNext++
	if r.missNext == len(r.missAt) {
		r.missNext = 0
		r.missFull = true
	}
	return burst
}

func (r *Recorder) triggerLocked(reason string, at time.Time) {
	if !r.lastDump.IsZero() && at.Sub(r.lastDump) < r.opts.Cooldown {
		return
	}
	// Mark the trigger inside the window itself, then freeze (or keep
	// extending) the tail.
	r.writeLocked(Event{At: at, Kind: EvAnomaly, Note: reason})
	if r.pending != "" {
		r.flush.Reset(r.opts.FlushDelay)
		return
	}
	r.pending = reason
	if r.flush == nil {
		r.flush = r.clk.AfterFunc(r.opts.FlushDelay, r.doFlush)
	} else {
		r.flush.Reset(r.opts.FlushDelay)
	}
}

func (r *Recorder) doFlush() {
	r.mu.Lock()
	reason := r.pending
	r.pending = ""
	if reason == "" {
		r.mu.Unlock()
		return
	}
	r.scratch = r.appendRingLocked(r.scratch[:0])
	evs := r.scratch
	now := r.clk.Now()
	r.lastDump = now
	r.dumps++
	seq := r.dumps
	sink, dir := r.opts.Sink, r.opts.Dir
	r.mu.Unlock()

	if sink != nil {
		sink(reason, evs)
	}
	if dir != "" {
		path := filepath.Join(dir, fmt.Sprintf("flight-%03d.jsonl", seq))
		err := writeDump(path, reason, now, evs)
		r.mu.Lock()
		if err != nil {
			r.lastErr = err
		} else {
			r.lastPath = path
		}
		r.mu.Unlock()
	}
}

func (r *Recorder) appendRingLocked(buf []Event) []Event {
	if !r.full {
		return append(buf, r.ring[:r.next]...)
	}
	buf = append(buf, r.ring[r.next:]...)
	return append(buf, r.ring[:r.next]...)
}

// writeDump writes one flight file: a header line naming the anomaly, then
// the window in the trace JSONL schema.
func writeDump(path, reason string, at time.Time, evs []Event) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("obs: flight dump: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: flight dump: %w", err)
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "{\"anomaly\":%q,\"at\":%q,\"events\":%d}\n",
		reason, at.UTC().Format(time.RFC3339Nano), len(evs)); err != nil {
		return err
	}
	return writeEventsJSONL(f, evs)
}

// Dumps returns how many dumps have been written.
func (r *Recorder) Dumps() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dumps
}

// LastDumpPath returns the path of the most recent dump file ("" when the
// recorder has no Dir or nothing dumped yet).
func (r *Recorder) LastDumpPath() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastPath
}

// LastErr returns the most recent dump-write error (nil when none).
func (r *Recorder) LastErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// Pending reports whether an anomaly is awaiting its flush.
func (r *Recorder) Pending() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pending != ""
}

// Events returns a copy of the ring, oldest first (tests and experiments).
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.appendRingLocked(nil)
}

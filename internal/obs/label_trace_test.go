package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestLabelReservedCharacterEscaping(t *testing.T) {
	cases := []struct{ name, got, want string }{
		{"space", Label("m", "user", "alice smith"), `m{user="alice smith"}`},
		{"comma", Label("m", "doc", "a,b"), `m{doc="a,b"}`},
		{"equals", Label("m", "q", "k=v"), `m{q="k=v"}`},
		{"braces", Label("m", "s", "{x}"), `m{s="{x}"}`},
		{"quote", Label("m", "s", `he said "hi"`), `m{s="he said \"hi\""}`},
		{"backslash", Label("m", "p", `a\b`), `m{p="a\\b"}`},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %q, want %q", c.name, c.got, c.want)
		}
	}
	// Distinct label sets must never collide on the rendered name.
	a := Label("m", "k", `v",x=`)
	b := Label("m", "k", `v`, "x", "")
	if a == b {
		t.Fatalf("escaping collision: %q", a)
	}
}

// TestRegistryCrossKindRace hammers get-or-create for every instrument kind,
// including the same base name across kinds, under the race detector.
func TestRegistryCrossKindRace(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				name := Label("metric", "shard", fmt.Sprintf("%d", i%4))
				r.Counter(name).Inc()
				r.Gauge(name).Set(int64(w))
				r.HighWater(name).Observe(int64(i))
				r.Histogram(name).Observe(time.Microsecond * time.Duration(i+1))
				r.HistogramBounds(name+"_us", 10*time.Microsecond, 100*time.Microsecond).
					Observe(50 * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	for shard := 0; shard < 4; shard++ {
		name := Label("metric", "shard", fmt.Sprintf("%d", shard))
		if got := r.Counter(name).Value(); got != 800 {
			t.Fatalf("%s counter = %d (identity unstable under race)", name, got)
		}
		if got := r.Histogram(name).N(); got != 800 {
			t.Fatalf("%s histogram n = %d", name, got)
		}
	}
	// HistogramBounds get-or-create must converge on one instrument per
	// name: the first creation's bounds win, later calls get the same one.
	if got := r.Histogram(Label("metric", "shard", "0") + "_us").N(); got != 800 {
		t.Fatalf("bounded histogram n = %d, want 800", got)
	}
}

func TestTraceEventsAppendReusesBuffer(t *testing.T) {
	tr := NewTrace(64)
	for i := 0; i < 100; i++ {
		tr.Record(Event{Kind: EvFrameDrop, Value: int64(i)})
	}
	buf := make([]Event, 0, 64)
	buf = tr.EventsAppend(buf)
	if len(buf) != 64 || buf[0].Value != 36 || buf[63].Value != 99 {
		t.Fatalf("window wrong: len=%d first=%d last=%d", len(buf), buf[0].Value, buf[len(buf)-1].Value)
	}
	// A warm buffer of sufficient capacity must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		buf = tr.EventsAppend(buf)
	})
	if allocs != 0 {
		t.Fatalf("EventsAppend allocates %.1f allocs/op on a warm buffer", allocs)
	}
}

// BenchmarkTraceEventsAppend prices the snapshot path a periodic dumper pays.
func BenchmarkTraceEventsAppend(b *testing.B) {
	tr := NewTrace(DefaultTraceCap)
	for i := 0; i < DefaultTraceCap*2; i++ {
		tr.Record(Event{Kind: EvFrameDrop, Stream: "v", Value: int64(i), Note: "bench"})
	}
	buf := make([]Event, 0, DefaultTraceCap)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tr.EventsAppend(buf)
	}
}

// BenchmarkTraceWriteJSONL prices a full trace dump (the -trace exit path and
// each flight-recorder flush go through the same JSONL writer).
func BenchmarkTraceWriteJSONL(b *testing.B) {
	tr := NewTrace(DefaultTraceCap)
	for i := 0; i < DefaultTraceCap; i++ {
		tr.Record(Event{At: time.Unix(int64(i), 0), Kind: EvFrameDrop,
			Stream: "vi/lecture", Value: int64(i), Note: "bench event"})
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := tr.WriteJSONL(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

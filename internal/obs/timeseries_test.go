package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
)

func seriesPoint(t *testing.T, s SeriesSample, name string) SeriesMetric {
	t.Helper()
	for _, p := range s.Points {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("sample has no metric %q", name)
	return SeriesMetric{}
}

func TestTimeSeriesCounterDeltasAndHistogramQuantiles(t *testing.T) {
	clk := clock.NewSim()
	s := NewScope(clk)
	ts := s.EnableTimeSeries(0)
	c := s.Counter("frames")
	h := s.Histogram("lat")

	c.Add(10)
	h.Observe(20 * time.Millisecond)
	ts.Sample()
	c.Add(5)
	h.Observe(40 * time.Millisecond)
	h.Observe(40 * time.Millisecond)
	ts.Sample()

	samples := ts.Samples()
	if len(samples) != 2 {
		t.Fatalf("len = %d", len(samples))
	}
	// Counters report per-interval deltas, not running totals.
	if got := seriesPoint(t, samples[0], "frames").Value; got != 10 {
		t.Fatalf("first delta = %v, want 10", got)
	}
	if got := seriesPoint(t, samples[1], "frames").Value; got != 5 {
		t.Fatalf("second delta = %v, want 5", got)
	}
	// Histograms report the observation delta plus current quantiles.
	p := seriesPoint(t, samples[1], "lat")
	if p.Count != 2 {
		t.Fatalf("histogram count delta = %d, want 2", p.Count)
	}
	if p.P95 <= 0 {
		t.Fatalf("histogram p95 = %v", p.P95)
	}
}

func TestTimeSeriesRingBounded(t *testing.T) {
	clk := clock.NewSim()
	s := NewScope(clk)
	ts := NewTimeSeries(clk, s.Registry(), 4)
	c := s.Counter("n")
	for i := 0; i < 10; i++ {
		c.Inc()
		ts.Sample()
	}
	if got := ts.Len(); got != 4 {
		t.Fatalf("ring len = %d, want 4", got)
	}
	// Deltas survive eviction: each retained sample saw exactly one Inc.
	for _, smp := range ts.Samples() {
		if got := seriesPoint(t, smp, "n").Value; got != 1 {
			t.Fatalf("delta = %v, want 1", got)
		}
	}
}

func TestTimeSeriesPeriodicOnVirtualClock(t *testing.T) {
	clk := clock.NewSim()
	s := NewScope(clk)
	ts := s.EnableTimeSeries(0)
	if got := s.Series(); got != ts {
		t.Fatal("Series() does not return the enabled series")
	}
	ts.Start(10 * time.Second)
	clk.Advance(35 * time.Second)
	if got := ts.Len(); got != 3 {
		t.Fatalf("len after 35s at 10s interval = %d, want 3", got)
	}
	ts.Stop()
	clk.Advance(30 * time.Second)
	if got := ts.Len(); got != 3 {
		t.Fatalf("sampling continued after Stop: len = %d", got)
	}
}

func TestTimeSeriesJSONLRoundTrip(t *testing.T) {
	clk := clock.NewSim()
	s := NewScope(clk)
	ts := s.EnableTimeSeries(0)
	s.Counter("x").Add(3)
	ts.Sample()
	clk.Advance(time.Second)
	ts.Sample()
	var buf bytes.Buffer
	if err := ts.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl lines = %d", len(lines))
	}
	for _, ln := range lines {
		var back SeriesSample
		if err := json.Unmarshal([]byte(ln), &back); err != nil {
			t.Fatalf("line %q: %v", ln, err)
		}
		if len(back.Points) == 0 {
			t.Fatal("sample round-tripped empty")
		}
	}
}

func TestTimeSeriesTableElidesFlatZero(t *testing.T) {
	clk := clock.NewSim()
	s := NewScope(clk)
	ts := s.EnableTimeSeries(0)
	s.Counter("busy").Add(2)
	s.Counter("idle") // stays 0 across the window
	ts.Sample()
	s.Counter("busy").Add(1)
	ts.Sample()
	out := ts.Table(10)
	if !strings.Contains(out, "busy") || !strings.Contains(out, "+2 → +1") {
		t.Fatalf("table missing busy trail:\n%s", out)
	}
	if strings.Contains(out, "idle") {
		t.Fatalf("table shows all-zero metric:\n%s", out)
	}
}

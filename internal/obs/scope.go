package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/stats"
)

// Shared no-op instruments handed out by a nil Scope. They absorb updates
// into dead atomics that nothing reads, so a disabled instrument call is a
// single atomic add with no allocation and no branch beyond the nil check.
var (
	noopCounter = new(stats.Counter)
	noopGauge   = new(stats.Gauge)
	noopHigh    = new(stats.HighWater)
	noopHist    = stats.NewDurationHistogram()
)

// Scope bundles a clock, a metric registry and an event trace into the one
// handle components take. All methods are safe on a nil receiver: a nil
// *Scope means telemetry is off, instrument getters return shared no-op
// instruments, and Emit returns immediately — callers never branch.
type Scope struct {
	clk   clock.Clock
	reg   *Registry
	tr    *Trace
	spans *FrameSpans
	rec   atomic.Pointer[Recorder]
	ts    atomic.Pointer[TimeSeries]

	// dashMu guards the dashboard's reusable trace-snapshot buffer so the
	// periodic dump path does not allocate a fresh slice per render.
	dashMu  sync.Mutex
	dashEvs []Event
}

// NewScope creates a scope stamping events with clk's time and a trace
// ring of DefaultTraceCap events.
func NewScope(clk clock.Clock) *Scope {
	return NewScopeCap(clk, DefaultTraceCap)
}

// NewScopeCap is NewScope with an explicit trace capacity.
func NewScopeCap(clk clock.Clock, traceCap int) *Scope {
	s := &Scope{clk: clk, reg: NewRegistry(), tr: NewTrace(traceCap)}
	s.spans = newFrameSpans(s)
	return s
}

// Emit records one trace event stamped with the scope's clock, teeing it
// into the flight recorder when one is armed. No-op on a nil scope.
func (s *Scope) Emit(k EventKind, stream string, value int64, note string) {
	if s == nil {
		return
	}
	ev := Event{At: s.clk.Now(), Kind: k, Stream: stream, Value: value, Note: note}
	s.tr.Record(ev)
	if r := s.rec.Load(); r != nil {
		r.Record(ev)
	}
}

// Sample records an event into the flight recorder only — high-rate span
// samples that would flood the main trace ring. No-op on a nil scope or
// when no recorder is armed.
func (s *Scope) Sample(k EventKind, stream string, value int64, note string) {
	if s == nil {
		return
	}
	if r := s.rec.Load(); r != nil {
		r.Record(Event{At: s.clk.Now(), Kind: k, Stream: stream, Value: value, Note: note})
	}
}

// Counter returns the named registry counter (a shared no-op when the
// scope is nil).
func (s *Scope) Counter(name string) *stats.Counter {
	if s == nil {
		return noopCounter
	}
	return s.reg.Counter(name)
}

// Gauge returns the named registry gauge (a shared no-op when nil).
func (s *Scope) Gauge(name string) *stats.Gauge {
	if s == nil {
		return noopGauge
	}
	return s.reg.Gauge(name)
}

// HighWater returns the named registry high-water mark (a shared no-op
// when nil).
func (s *Scope) HighWater(name string) *stats.HighWater {
	if s == nil {
		return noopHigh
	}
	return s.reg.HighWater(name)
}

// Histogram returns the named registry duration histogram (a shared no-op
// when nil).
func (s *Scope) Histogram(name string) *stats.DurationHistogram {
	if s == nil {
		return noopHist
	}
	return s.reg.Histogram(name)
}

// HistogramBounds returns the named histogram, created with explicit bucket
// bounds on first use (a shared no-op when nil).
func (s *Scope) HistogramBounds(name string, bounds ...time.Duration) *stats.DurationHistogram {
	if s == nil {
		return noopHist
	}
	return s.reg.HistogramBounds(name, bounds...)
}

// FrameSpans returns the scope's frame-span recorder (a shared no-op that
// never samples when the scope is nil). Resolve once at construction, like
// counters.
func (s *Scope) FrameSpans() *FrameSpans {
	if s == nil {
		return noopSpans
	}
	return s.spans
}

// EnableFlightRecorder arms a flight recorder: from now on every Emit and
// span sample tees into its ring, and anomalies dump per opts. Returns the
// recorder (nil on a nil scope).
func (s *Scope) EnableFlightRecorder(opts RecorderOptions) *Recorder {
	if s == nil {
		return nil
	}
	r := NewRecorder(s.clk, opts)
	s.rec.Store(r)
	return r
}

// Recorder returns the armed flight recorder (nil when none).
func (s *Scope) Recorder() *Recorder {
	if s == nil {
		return nil
	}
	return s.rec.Load()
}

// EnableTimeSeries attaches a snapshot time series holding capN samples
// (DefaultSeriesCap when <= 0). The caller drives it — Sample() at phase
// boundaries or Start(interval) for periodic sampling — and the dashboard
// renders its trails. Returns the series (nil on a nil scope).
func (s *Scope) EnableTimeSeries(capN int) *TimeSeries {
	if s == nil {
		return nil
	}
	ts := NewTimeSeries(s.clk, s.reg, capN)
	s.ts.Store(ts)
	return ts
}

// Series returns the attached time series (nil when none).
func (s *Scope) Series() *TimeSeries {
	if s == nil {
		return nil
	}
	return s.ts.Load()
}

// Enabled reports whether the scope records anything. Use it to guard
// event construction that itself allocates (fmt.Sprintf notes).
func (s *Scope) Enabled() bool { return s != nil }

// Registry exposes the scope's registry (nil on a nil scope).
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Trace exposes the scope's trace (nil on a nil scope).
func (s *Scope) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// Dashboard renders the metric table, the time-series trails (when a
// series is attached) and the last lastN trace events — the live
// introspection view. The trace snapshot reuses a buffer across renders.
func (s *Scope) Dashboard(lastN int) string {
	if s == nil {
		return "(telemetry off)\n"
	}
	var b strings.Builder
	b.WriteString(s.reg.Table().String())
	if ts := s.ts.Load(); ts != nil {
		if trails := ts.Table(8); trails != "" {
			b.WriteString("\n")
			b.WriteString(trails)
		}
	}
	s.dashMu.Lock()
	defer s.dashMu.Unlock()
	s.dashEvs = s.tr.EventsAppend(s.dashEvs)
	evs := s.dashEvs
	if lastN > 0 && len(evs) > lastN {
		evs = evs[len(evs)-lastN:]
	}
	if len(evs) == 0 {
		return b.String()
	}
	b.WriteString("\nrecent events:\n")
	for _, ev := range evs {
		fmt.Fprintf(&b, "  %s  %-18s %-12s %6d  %s\n",
			ev.At.UTC().Format("15:04:05.000"), ev.Kind, ev.Stream, ev.Value, ev.Note)
	}
	if d := s.tr.Dropped(); d > 0 {
		fmt.Fprintf(&b, "  (%d older events evicted)\n", d)
	}
	return b.String()
}

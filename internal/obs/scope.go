package obs

import (
	"fmt"
	"strings"

	"repro/internal/clock"
	"repro/internal/stats"
)

// Shared no-op instruments handed out by a nil Scope. They absorb updates
// into dead atomics that nothing reads, so a disabled instrument call is a
// single atomic add with no allocation and no branch beyond the nil check.
var (
	noopCounter = new(stats.Counter)
	noopGauge   = new(stats.Gauge)
	noopHigh    = new(stats.HighWater)
	noopHist    = stats.NewDurationHistogram()
)

// Scope bundles a clock, a metric registry and an event trace into the one
// handle components take. All methods are safe on a nil receiver: a nil
// *Scope means telemetry is off, instrument getters return shared no-op
// instruments, and Emit returns immediately — callers never branch.
type Scope struct {
	clk clock.Clock
	reg *Registry
	tr  *Trace
}

// NewScope creates a scope stamping events with clk's time and a trace
// ring of DefaultTraceCap events.
func NewScope(clk clock.Clock) *Scope {
	return &Scope{clk: clk, reg: NewRegistry(), tr: NewTrace(DefaultTraceCap)}
}

// NewScopeCap is NewScope with an explicit trace capacity.
func NewScopeCap(clk clock.Clock, traceCap int) *Scope {
	return &Scope{clk: clk, reg: NewRegistry(), tr: NewTrace(traceCap)}
}

// Emit records one trace event stamped with the scope's clock. No-op on a
// nil scope.
func (s *Scope) Emit(k EventKind, stream string, value int64, note string) {
	if s == nil {
		return
	}
	s.tr.Record(Event{At: s.clk.Now(), Kind: k, Stream: stream, Value: value, Note: note})
}

// Counter returns the named registry counter (a shared no-op when the
// scope is nil).
func (s *Scope) Counter(name string) *stats.Counter {
	if s == nil {
		return noopCounter
	}
	return s.reg.Counter(name)
}

// Gauge returns the named registry gauge (a shared no-op when nil).
func (s *Scope) Gauge(name string) *stats.Gauge {
	if s == nil {
		return noopGauge
	}
	return s.reg.Gauge(name)
}

// HighWater returns the named registry high-water mark (a shared no-op
// when nil).
func (s *Scope) HighWater(name string) *stats.HighWater {
	if s == nil {
		return noopHigh
	}
	return s.reg.HighWater(name)
}

// Histogram returns the named registry duration histogram (a shared no-op
// when nil).
func (s *Scope) Histogram(name string) *stats.DurationHistogram {
	if s == nil {
		return noopHist
	}
	return s.reg.Histogram(name)
}

// Enabled reports whether the scope records anything. Use it to guard
// event construction that itself allocates (fmt.Sprintf notes).
func (s *Scope) Enabled() bool { return s != nil }

// Registry exposes the scope's registry (nil on a nil scope).
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Trace exposes the scope's trace (nil on a nil scope).
func (s *Scope) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// Dashboard renders the metric table followed by the last lastN trace
// events — the live introspection view.
func (s *Scope) Dashboard(lastN int) string {
	if s == nil {
		return "(telemetry off)\n"
	}
	var b strings.Builder
	b.WriteString(s.reg.Table().String())
	evs := s.tr.Events()
	if lastN > 0 && len(evs) > lastN {
		evs = evs[len(evs)-lastN:]
	}
	if len(evs) == 0 {
		return b.String()
	}
	b.WriteString("\nrecent events:\n")
	for _, ev := range evs {
		fmt.Fprintf(&b, "  %s  %-18s %-12s %6d  %s\n",
			ev.At.UTC().Format("15:04:05.000"), ev.Kind, ev.Stream, ev.Value, ev.Note)
	}
	if d := s.tr.Dropped(); d > 0 {
		fmt.Fprintf(&b, "  (%d older events evicted)\n", d)
	}
	return b.String()
}

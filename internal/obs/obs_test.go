package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestTraceRingAndDropped(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 6; i++ {
		tr.Record(Event{Kind: EvFrameDrop, Value: int64(i)})
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		if want := int64(i + 2); ev.Value != want {
			t.Fatalf("event %d value = %d, want %d (oldest-first order)", i, ev.Value, want)
		}
	}
	if tr.Count(EvFrameDrop, "") != 4 {
		t.Fatalf("count = %d", tr.Count(EvFrameDrop, ""))
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(Event{Kind: EvSkewAction})
				tr.Events()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 128 {
		t.Fatalf("len = %d", tr.Len())
	}
	if got := tr.Dropped() + int64(tr.Len()); got != 8*500 {
		t.Fatalf("retained+dropped = %d, want %d", got, 8*500)
	}
}

func TestTraceWriteJSONL(t *testing.T) {
	clk := clock.NewSim()
	s := NewScope(clk)
	s.Emit(EvSessionStart, "laptop", 1, "connected")
	clk.Advance(40 * time.Millisecond)
	s.Emit(EvBufferWatermark, "vi/c", 3, "underflow")
	clk.Advance(time.Second)
	s.Emit(EvGradeChange, "vi/c", 2, "degrade: loss")

	var buf bytes.Buffer
	if err := s.Trace().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var prev time.Time
	var kinds []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line struct {
			At     string `json:"at"`
			Kind   string `json:"kind"`
			Stream string `json:"stream"`
			Value  int64  `json:"value"`
			Note   string `json:"note"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		at, err := time.Parse(time.RFC3339Nano, line.At)
		if err != nil {
			t.Fatalf("bad timestamp %q: %v", line.At, err)
		}
		if at.Before(prev) {
			t.Fatalf("timestamps not monotone: %v before %v", at, prev)
		}
		prev = at
		kinds = append(kinds, line.Kind)
	}
	want := []string{"session-start", "buffer-watermark", "grade-change"}
	if len(kinds) != len(want) {
		t.Fatalf("lines = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	if !prev.Equal(clock.Epoch.Add(40*time.Millisecond + time.Second)) {
		t.Fatalf("last timestamp %v not on the virtual clock", prev)
	}
}

func TestRegistryGetOrCreateAndSnapshot(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter not stable across lookups")
	}
	r.Counter("frames").Add(5)
	r.Gauge("sessions").Set(2)
	r.HighWater("queue").Observe(9)
	r.Histogram("lat").Observe(20 * time.Millisecond)

	snap := r.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot size = %d, want 5", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name > snap[i].Name {
			t.Fatalf("snapshot not sorted: %q > %q", snap[i-1].Name, snap[i].Name)
		}
	}
	byName := map[string]MetricPoint{}
	for _, p := range snap {
		byName[p.Name] = p
	}
	if p := byName["frames"]; p.Kind != "counter" || p.Value != 5 {
		t.Fatalf("frames = %+v", p)
	}
	if p := byName["sessions"]; p.Kind != "gauge" || p.Value != 2 {
		t.Fatalf("sessions = %+v", p)
	}
	if p := byName["queue"]; p.Kind != "highwater" || p.Value != 9 {
		t.Fatalf("queue = %+v", p)
	}
	if p := byName["lat"]; p.Kind != "histogram" || p.Count != 1 || p.Max != 20 {
		t.Fatalf("lat = %+v", p)
	}

	tb := r.Table().String()
	for _, want := range []string{"frames", "sessions", "queue", "lat", "p95"} {
		if !strings.Contains(tb, want) {
			t.Fatalf("table missing %q:\n%s", want, tb)
		}
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back []MetricPoint
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON not round-trippable: %v", err)
	}
	if len(back) != 5 {
		t.Fatalf("JSON snapshot size = %d", len(back))
	}
}

func TestRegistryConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("counter = %d (instrument identity not stable under races?)", got)
	}
	if got := r.Histogram("h").N(); got != 8000 {
		t.Fatalf("histogram n = %d", got)
	}
}

func TestLabel(t *testing.T) {
	if got := Label("buffer_pushed", "stream", "vi/c"); got != "buffer_pushed{stream=vi/c}" {
		t.Fatalf("label = %q", got)
	}
	if got := Label("adm", "class", "premium", "verdict", "admitted"); got != "adm{class=premium,verdict=admitted}" {
		t.Fatalf("label = %q", got)
	}
	if got := Label("plain"); got != "plain" {
		t.Fatalf("label = %q", got)
	}
}

func TestNilScopeSafeAndAllocationFree(t *testing.T) {
	var s *Scope
	// Every method must be callable on nil.
	s.Emit(EvFrameDrop, "x", 1, "n")
	s.Counter("c").Inc()
	s.Gauge("g").Set(3)
	s.HighWater("h").Observe(4)
	s.Histogram("d").Observe(time.Millisecond)
	if s.Enabled() || s.Registry() != nil || s.Trace() != nil {
		t.Fatal("nil scope should report disabled")
	}
	if s.Dashboard(5) == "" {
		t.Fatal("nil dashboard empty")
	}

	c := s.Counter("hot")
	h := s.Histogram("hot")
	allocs := testing.AllocsPerRun(1000, func() {
		s.Emit(EvFrameDrop, "stream", 1, "note")
		c.Inc()
		h.Observe(time.Millisecond)
		s.Counter("hot").Add(2)
	})
	if allocs != 0 {
		t.Fatalf("nil-scope instrumentation allocates: %.1f allocs/op", allocs)
	}
}

func TestDashboard(t *testing.T) {
	s := NewScope(clock.NewSim())
	s.Counter("frames").Add(3)
	s.Emit(EvSkewAction, "au/n", 2, "drop to catch up")
	out := s.Dashboard(10)
	for _, want := range []string{"frames", "skew-action", "au/n", "drop to catch up"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
}

package obs

import (
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestFrameSpansSamplingDeterminism(t *testing.T) {
	s := NewScope(clock.NewSim())
	f := s.FrameSpans()
	if got := f.SampleEvery(); got != DefaultSpanSampleEvery {
		t.Fatalf("default stride = %d, want %d", got, DefaultSpanSampleEvery)
	}
	// The sampling rule is a pure function of the frame index, so server and
	// client — holding separate FrameSpans — pick the very same frames.
	other := NewScope(clock.NewSim()).FrameSpans()
	for idx := uint32(0); idx < 64; idx++ {
		want := idx%DefaultSpanSampleEvery == 0
		if f.Sampled(idx) != want {
			t.Fatalf("Sampled(%d) = %v, want %v", idx, f.Sampled(idx), want)
		}
		if f.Sampled(idx) != other.Sampled(idx) {
			t.Fatalf("two scopes disagree on frame %d", idx)
		}
	}
	f.SetSampleEvery(3)
	if !f.Sampled(9) || f.Sampled(10) {
		t.Fatal("stride change not applied")
	}
	f.SetSampleEvery(0)
	for idx := uint32(0); idx < 16; idx++ {
		if f.Sampled(idx) {
			t.Fatal("stride 0 must disable sampling")
		}
	}
}

func TestFrameSpansNilScopeNeverSamples(t *testing.T) {
	var s *Scope
	f := s.FrameSpans()
	for idx := uint32(0); idx < 32; idx++ {
		if f.Sampled(idx) {
			t.Fatalf("nil-scope spans sampled frame %d", idx)
		}
	}
	// SetSampleEvery must not arm the shared no-op for everyone.
	f.SetSampleEvery(1)
	if f.Sampled(0) {
		t.Fatal("SetSampleEvery armed the shared no-op FrameSpans")
	}
	// Record* on the no-op must be safe (they hit the no-op histogram).
	f.RecordEmit("x", time.Millisecond)
	f.RecordDelivery("x", time.Millisecond)
	f.RecordSlack("x", time.Millisecond)
}

func TestFrameSpansRouteToHistograms(t *testing.T) {
	s := NewScope(clock.NewSim())
	f := s.FrameSpans()
	f.RecordEmit("v", 50*time.Microsecond)
	f.RecordEmit("v", 70*time.Microsecond)
	f.RecordDelivery("v", 30*time.Millisecond)
	f.RecordSlack("v", 200*time.Millisecond)
	if got := f.EmitToWire().N(); got != 2 {
		t.Fatalf("emit hop n = %d, want 2", got)
	}
	if got := f.WireToReassembled().N(); got != 1 {
		t.Fatalf("wire hop n = %d, want 1", got)
	}
	if got := f.DeadlineSlack().N(); got != 1 {
		t.Fatalf("slack hop n = %d, want 1", got)
	}
	// The hop instruments live in the registry under their span names.
	if s.Registry().Histogram(SpanEmitToWire) != f.EmitToWire() {
		t.Fatal("emit hop not registered under its span name")
	}
}

// TestFrameSpansRecordAllocFree pins the tentpole's hot-path property: with
// sampling on AND a flight recorder armed, recording a span allocates
// nothing, so the zero-alloc data plane can keep it enabled by default.
func TestFrameSpansRecordAllocFree(t *testing.T) {
	s := NewScope(clock.NewSim())
	s.EnableFlightRecorder(RecorderOptions{})
	f := s.FrameSpans()
	allocs := testing.AllocsPerRun(1000, func() {
		if f.Sampled(0) {
			f.RecordEmit("v", 40*time.Microsecond)
			f.RecordDelivery("v", 20*time.Millisecond)
			f.RecordSlack("v", 100*time.Millisecond)
		}
	})
	if allocs != 0 {
		t.Fatalf("span recording allocates %.1f allocs/op with recorder armed", allocs)
	}
}

func TestFrameSpansConcurrentRecord(t *testing.T) {
	s := NewScope(clock.NewSim())
	s.EnableFlightRecorder(RecorderOptions{})
	f := s.FrameSpans()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.RecordEmit("v", time.Duration(i)*time.Microsecond)
				f.Sampled(uint32(i))
			}
		}()
	}
	wg.Wait()
	if got := f.EmitToWire().N(); got != 4000 {
		t.Fatalf("emit hop n = %d, want 4000", got)
	}
}

// Package cluster federates N media servers over one simulated network into
// the paper's multi-server service: a document→replica placement map decides
// which servers hold which lessons, every server sees the others' live
// admission load through a shared directory view, and the three cluster
// behaviors — load-aware admission redirects, in-protocol cross-server
// handoffs, and replica-aware failover — fall out of wiring the existing
// server.Options cluster knobs to that view. The package also hosts the
// cluster-scale load/chaos harness (RunClusterLoad) behind `make
// bench-cluster` and the seeded chaos suite.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/server"
)

// DefaultClusterKey signs handoff tickets when the config does not supply a
// key. Any non-empty shared secret works: the threat model is a client
// forging or replaying tickets, not an attacker inside the federation.
var DefaultClusterKey = []byte("hermes-federation-key")

// Config describes a federation to boot.
type Config struct {
	// Servers lists the server host names, e.g. srv1..srv3. Order matters:
	// it is the iteration order for deterministic runs.
	Servers []string
	// Placement maps each document to the servers holding it, primary
	// first. Every placed server must appear in Servers.
	Placement server.Placement
	// Docs maps document name → HML source. Every doc must have a
	// placement entry; each server's database gets exactly the documents
	// placed on it.
	Docs map[string]string
	// Descriptions optionally annotates docs for the database listing.
	Descriptions map[string]string
	// ServerOptions is the per-server option template. Obs, Directory and
	// ClusterKey are filled per server by New.
	ServerOptions server.Options
	// Key overrides DefaultClusterKey for handoff-ticket signing.
	Key []byte
}

// Cluster is a running federation: N servers over one network, sharing a
// subscriber database and a live placement/load directory.
type Cluster struct {
	Clk     *clock.Virtual
	Net     *netsim.Network
	Users   *auth.DB
	Servers map[string]*server.Server
	Scopes  map[string]*obs.Scope

	names     []string
	placement server.Placement
	key       []byte
}

// view is the live Directory each server consults: replicas come from the
// placement map, peer load from the sibling server's admission state — the
// in-process stand-in for the load gossip a distributed deployment would
// run.
type view struct {
	c    *Cluster
	self string
}

func (v view) Replicas(doc string) []string { return v.c.placement[doc] }

func (v view) PeerLoad(host string) (float64, bool) {
	if host == v.self {
		return 0, false
	}
	s, ok := v.c.Servers[host]
	if !ok {
		return 0, false
	}
	return s.Admission().Utilization(), true
}

// New boots the federation: one server per name, each holding only the
// documents placed on it, wired to the shared directory view and peer list.
func New(clk *clock.Virtual, net *netsim.Network, users *auth.DB, cfg Config) (*Cluster, error) {
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("cluster: no servers")
	}
	key := cfg.Key
	if key == nil {
		key = DefaultClusterKey
	}
	c := &Cluster{
		Clk:     clk,
		Net:     net,
		Users:   users,
		Servers: map[string]*server.Server{},
		Scopes:  map[string]*obs.Scope{},
		names:   append([]string(nil), cfg.Servers...),
		placement: func() server.Placement {
			p := server.Placement{}
			for d, hosts := range cfg.Placement {
				p[d] = append([]string(nil), hosts...)
			}
			return p
		}(),
		key: key,
	}
	held := map[string]bool{}
	for _, name := range cfg.Servers {
		held[name] = true
	}
	for doc, hosts := range c.placement {
		if _, ok := cfg.Docs[doc]; !ok {
			return nil, fmt.Errorf("cluster: placement names unknown document %q", doc)
		}
		for _, h := range hosts {
			if !held[h] {
				return nil, fmt.Errorf("cluster: document %q placed on unknown server %q", doc, h)
			}
		}
	}
	for doc := range cfg.Docs {
		if len(c.placement[doc]) == 0 {
			return nil, fmt.Errorf("cluster: document %q has no placement", doc)
		}
	}
	for _, name := range cfg.Servers {
		db := server.NewDatabase()
		// Deterministic doc order so database IDs replay identically.
		docs := make([]string, 0, len(c.placement))
		for d := range c.placement {
			docs = append(docs, d)
		}
		sort.Strings(docs)
		for _, d := range docs {
			for _, h := range c.placement[d] {
				if h != name {
					continue
				}
				if err := db.Put(d, cfg.Docs[d], cfg.Descriptions[d]); err != nil {
					return nil, fmt.Errorf("cluster: %s: %w", d, err)
				}
				break
			}
		}
		opts := cfg.ServerOptions
		scope := obs.NewScope(clk)
		opts.Obs = scope
		opts.Directory = view{c: c, self: name}
		opts.ClusterKey = key
		srv, err := server.New(name, clk, net, users, db, opts)
		if err != nil {
			return nil, fmt.Errorf("cluster: boot %s: %w", name, err)
		}
		c.Servers[name] = srv
		c.Scopes[name] = scope
	}
	for _, name := range cfg.Servers {
		var others []string
		for _, p := range cfg.Servers {
			if p != name {
				others = append(others, p)
			}
		}
		c.Servers[name].SetPeers(others)
	}
	return c, nil
}

// Names returns the server names in boot order.
func (c *Cluster) Names() []string { return append([]string(nil), c.names...) }

// Key returns the shared handoff-signing key.
func (c *Cluster) Key() []byte { return c.key }

// Replicas returns the placement entry for doc (primary first).
func (c *Cluster) Replicas(doc string) []string {
	return append([]string(nil), c.placement[doc]...)
}

// CounterTotal sums a counter across every server scope.
func (c *Cluster) CounterTotal(name string) int64 {
	var total int64
	for _, name2 := range c.names {
		total += c.Scopes[name2].Counter(name).Value()
	}
	return total
}

// MaxUtilization reports the highest admission utilization in the cluster
// right now.
func (c *Cluster) MaxUtilization() float64 {
	var max float64
	for _, name := range c.names {
		if u := c.Servers[name].Admission().Utilization(); u > max {
			max = u
		}
	}
	return max
}

// RunFor advances the shared virtual clock.
func (c *Cluster) RunFor(d time.Duration) { c.Clk.RunFor(d) }

package cluster

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/qos"
	"repro/internal/server"
)

// TestRunClusterLoadInvariants runs the full seeded harness scenario — flash
// crowd, watermark redirects, cross-server handoffs, mid-lesson shard kill —
// and checks the invariants BENCH_cluster.json pins: redirects actually
// spread the crowd, handoffs complete with a measurable latency, and not a
// single session is lost to the kill.
func TestRunClusterLoadInvariants(t *testing.T) {
	res, err := RunClusterLoad(LoadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Redirects == 0 || res.RedirectsFollowed == 0 {
		t.Errorf("flash crowd produced no redirects: %+v", res)
	}
	if res.Handoffs == 0 || res.HandoffsCompleted == 0 {
		t.Errorf("satellite navigation produced no completed handoffs: %+v", res)
	}
	if res.HandoffP95Millis <= 0 {
		t.Errorf("handoff latency not measured: p95=%v ms", res.HandoffP95Millis)
	}
	if res.SessionsOnKilled == 0 {
		t.Error("kill hit a server with no sessions; scenario is vacuous")
	}
	if !res.ZeroLostSessions || res.SessionsLost != 0 {
		t.Errorf("sessions lost: %d (recovered %d of %d on killed server)",
			res.SessionsLost, res.SessionsRecovered, res.SessionsOnKilled)
	}
	if res.SessionsRecovered != res.SessionsOnKilled {
		t.Errorf("recovered %d of %d sessions on killed server",
			res.SessionsRecovered, res.SessionsOnKilled)
	}
}

// TestRunClusterLoadDeterministic pins replay: the same seed must yield the
// same counters, or `make bench-cluster` is not reproducible.
func TestRunClusterLoadDeterministic(t *testing.T) {
	a, err := RunClusterLoad(LoadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunClusterLoad(LoadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("two runs with the same seed diverged:\n  %+v\n  %+v", a, b)
	}
}

// --- claimSessionFor cross-shard reattach race (satellite) ---

// directNet is a synchronous netsim.Net: Send invokes the destination
// handler on the caller's goroutine. Two test goroutines sending at once
// therefore execute the server's control handler concurrently — exactly the
// interleaving claimSessionFor's ordered double-lock must survive, made
// visible to the race detector without the virtual clock serializing
// deliveries.
type directNet struct {
	mu       sync.Mutex
	handlers map[netsim.Addr]netsim.Handler
}

func newDirectNet() *directNet {
	return &directNet{handlers: map[netsim.Addr]netsim.Handler{}}
}

func (d *directNet) Listen(a netsim.Addr, h netsim.Handler) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if h == nil {
		delete(d.handlers, a)
		return nil
	}
	d.handlers[a] = h
	return nil
}

func (d *directNet) Send(p netsim.Packet) error {
	d.mu.Lock()
	h := d.handlers[p.To]
	d.mu.Unlock()
	if h != nil {
		h(p)
	}
	return nil
}

// probe is one fake client endpoint on the directNet: it records every
// ConnectResult addressed to it.
type probe struct {
	addr netsim.Addr
	mu   sync.Mutex
	res  []protocol.ConnectResult
}

func newProbe(t *testing.T, d *directNet, host string) *probe {
	t.Helper()
	p := &probe{addr: netsim.MakeAddr(host, 6000)}
	if err := d.Listen(p.addr, func(pkt netsim.Packet) {
		mt, _, body, err := protocol.DecodeReq(pkt.Payload)
		if err != nil || mt != protocol.MsgConnectResult {
			return
		}
		var cr protocol.ConnectResult
		if protocol.DecodeBody(body, &cr) != nil {
			return
		}
		p.mu.Lock()
		p.res = append(p.res, cr)
		p.mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	return p
}

func (p *probe) send(d *directNet, srv string, reqID uint32, m protocol.Connect) {
	_ = d.Send(netsim.Packet{
		From:     p.addr,
		To:       netsim.MakeAddr(srv, server.ControlPort),
		Payload:  protocol.MustEncodeReq(protocol.MsgConnect, reqID, m),
		Reliable: true,
	})
}

func (p *probe) last() *protocol.ConnectResult {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.res) == 0 {
		return nil
	}
	cr := p.res[len(p.res)-1]
	return &cr
}

// TestClaimSessionConcurrentReattach races the voluntary resume-token path
// against liveness-recovery ResumeSession connects for the SAME session,
// arriving from different client addresses (different control shards). The
// ordered double-lock in claimSessionFor must keep exactly one resident
// session through every interleaving; run under -race (the Makefile's race
// gate covers this package), concurrent shard maps or session fields would
// trip the detector.
func TestClaimSessionConcurrentReattach(t *testing.T) {
	clk := clock.NewSim()
	d := newDirectNet()
	users := auth.NewDB()
	if err := users.Subscribe(auth.User{
		Name: "alice", Password: "pw", RealName: "Race Tester",
		Email: "alice@example.gr", Class: qos.Standard,
	}, clk.Now()); err != nil {
		t.Fatal(err)
	}
	db := server.NewDatabase()
	if err := db.Put("lecture", hotLesson, "race doc"); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New("srv1", clk, d, users, db, server.Options{Grace: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	_ = srv

	home := newProbe(t, d, "laptop")
	home.send(d, "srv1", 1, protocol.Connect{
		User: "alice", Password: "pw", PeakRate: 1_000_000,
	})
	cr := home.last()
	if cr == nil || !cr.OK {
		t.Fatalf("connect failed: %+v", cr)
	}
	sessID := cr.SessionID

	// Park the session behind a resume token, as a handoff source would.
	var suspend protocol.SuspendResult
	if err := d.Listen(home.addr, func(pkt netsim.Packet) {
		mt, _, body, err := protocol.DecodeReq(pkt.Payload)
		if err == nil && mt == protocol.MsgSuspendResult {
			_ = protocol.DecodeBody(body, &suspend)
		}
	}); err != nil {
		t.Fatal(err)
	}
	_ = d.Send(netsim.Packet{
		From:     home.addr,
		To:       netsim.MakeAddr("srv1", server.ControlPort),
		Payload:  protocol.MustEncodeReq(protocol.MsgSuspend, 2, protocol.Suspend{}),
		Reliable: true,
	})
	if !suspend.OK || suspend.ResumeToken == "" {
		t.Fatalf("suspend failed: %+v", suspend)
	}

	// Three rivals on distinct addresses (hence, with high probability,
	// distinct control shards) fight over the same session: one by token
	// (the handoff/fallback path), two by session ID (concurrent failover
	// recovery), repeatedly and concurrently.
	const rounds = 40
	tokenP := newProbe(t, d, "rivalTok")
	idP1 := newProbe(t, d, "rivalA")
	idP2 := newProbe(t, d, "rivalB")
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		tokenP.send(d, "srv1", 1, protocol.Connect{
			User: "alice", ResumeToken: suspend.ResumeToken,
		})
	}()
	go func() {
		defer wg.Done()
		for i := uint32(0); i < rounds; i++ {
			idP1.send(d, "srv1", 10+i, protocol.Connect{
				User: "alice", ResumeSession: sessID,
			})
		}
	}()
	go func() {
		defer wg.Done()
		for i := uint32(0); i < rounds; i++ {
			idP2.send(d, "srv1", 10+i, protocol.Connect{
				User: "alice", ResumeSession: sessID,
			})
		}
	}()
	wg.Wait()

	// The token attempt either won the session or found the token already
	// consumed by a reattach — both are legal; a crash or a second resident
	// session is not.
	if cr := tokenP.last(); cr == nil {
		t.Fatal("token resume got no reply")
	} else if !cr.OK && !strings.Contains(cr.Reason, "resume token expired") {
		t.Fatalf("token resume: unexpected rejection %+v", cr)
	}
	for name, p := range map[string]*probe{"rivalA": idP1, "rivalB": idP2} {
		p.mu.Lock()
		n := len(p.res)
		p.mu.Unlock()
		if n != rounds {
			t.Fatalf("%s: %d replies to %d resumes", name, n, rounds)
		}
	}

	// Whatever the interleaving, the session survives with its identity:
	// one final recovery connect must land on the same session ID.
	final := newProbe(t, d, "final")
	final.send(d, "srv1", 1, protocol.Connect{User: "alice", ResumeSession: sessID})
	cr = final.last()
	if cr == nil || !cr.OK || cr.SessionID != sessID {
		t.Fatalf("final resume = %+v, want OK with session %s", cr, sessID)
	}
}

// RunClusterLoad is the cluster-scale load + chaos harness behind `make
// bench-cluster`: a flash crowd of clients aims at one server of a
// three-server federation, the admission watermark spreads them by
// in-protocol redirects, a subset navigates to a document homed on another
// server (exercising the signed handoff path), and the crowded server is
// killed mid-lesson so every one of its sessions must fail over onto a
// replica actually holding the lesson. The result carries the redirect
// rate, handoff latency quantiles, and the zero-lost-sessions invariant
// that BENCH_cluster.json pins.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/auth"
	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/qos"
	"repro/internal/server"
)

// hotLesson is the flash-crowd target: long enough that the kill lands in
// the middle of every playout.
const hotLesson = `<TITLE>hot lecture</TITLE>
<TEXT>the lesson everyone wants</TEXT>
<AU_VI SOURCE=au/n SOURCE=vi/c ID=n ID=cv STARTIME=0 DURATION=120> </AU_VI>`

// satelliteLesson is homed on a single server, so reaching it from anywhere
// else requires a cross-server handoff.
const satelliteLesson = `<TITLE>satellite seminar</TITLE>
<TEXT>the lesson homed elsewhere</TEXT>
<AU_VI SOURCE=au/n SOURCE=vi/c ID=n ID=cv STARTIME=0 DURATION=120> </AU_VI>`

// LoadConfig parameterizes RunClusterLoad. Zero values take the defaults
// noted per field.
type LoadConfig struct {
	Servers int   // federation size (default 3)
	Clients int   // flash-crowd size (default 18)
	Seed    int64 // netsim seed (default 0xC1A57E8)

	// Capacity and RedirectWatermark shape the admission pressure: with the
	// defaults (16 Mb/s, 0.55, 1 Mb/s peak per client) the first server
	// sheds fresh connects once ~9 sessions are resident.
	Capacity          float64       // per-server capacity (default 16e6)
	RedirectWatermark float64       // fraction of capacity (default 0.55)
	SessionWatermark  int           // session-count watermark (default off)
	KillPrimaryAt     time.Duration // when to crash srv1; <0 disables (default 9s)
}

func (c *LoadConfig) fill() {
	if c.Servers <= 0 {
		c.Servers = 3
	}
	if c.Clients <= 0 {
		c.Clients = 18
	}
	if c.Seed == 0 {
		c.Seed = 0xC1A57E8
	}
	if c.Capacity <= 0 {
		c.Capacity = 16_000_000
	}
	if c.RedirectWatermark == 0 {
		c.RedirectWatermark = 0.55
	}
	if c.KillPrimaryAt == 0 {
		c.KillPrimaryAt = 9 * time.Second
	}
}

// LoadResult is one harness run, serialized into BENCH_cluster.json.
type LoadResult struct {
	Servers int   `json:"servers"`
	Clients int   `json:"clients"`
	Seed    int64 `json:"seed"`

	// Redirect spread: redirects issued by servers, followed by clients,
	// and the fraction of fresh connect attempts answered with a redirect.
	Redirects         int64   `json:"redirects"`
	RedirectsFollowed int64   `json:"redirects_followed"`
	RedirectRate      float64 `json:"redirect_rate"`

	// Handoff path: issued at sources, accepted at targets, completed
	// end-to-end at clients, plus the client-observed suspend→first-doc-OK
	// latency quantiles.
	Handoffs          int64   `json:"handoffs"`
	HandoffAccepts    int64   `json:"handoff_accepts"`
	HandoffsCompleted int64   `json:"handoffs_completed"`
	HandoffP50Millis  float64 `json:"handoff_p50_ms"`
	HandoffP95Millis  float64 `json:"handoff_p95_ms"`

	// Failover outcome after the mid-lesson kill.
	SessionsOnKilled  int  `json:"sessions_on_killed"`
	SessionsRecovered int  `json:"sessions_recovered"`
	SessionsLost      int  `json:"sessions_lost"`
	ZeroLostSessions  bool `json:"zero_lost_sessions"`

	// MaxUtilization is the peak admission utilization seen at any server
	// at the scenario checkpoints.
	MaxUtilization float64 `json:"max_utilization"`
}

// viewingHost returns the server a client is currently viewing on, or "".
func viewingHost(c *client.Client, names []string) string {
	for _, n := range names {
		if c.State(n) == protocol.StViewing {
			return n
		}
	}
	return ""
}

// RunClusterLoad builds the federation, runs the flash-crowd → handoff →
// kill scenario on the virtual clock, and checks the cluster invariants.
// The returned error flags harness-level failures (a client that never got
// admitted anywhere); the invariant fields are left to the caller's gates.
func RunClusterLoad(cfg LoadConfig) (LoadResult, error) {
	cfg.fill()
	var res LoadResult
	res.Servers = cfg.Servers
	res.Clients = cfg.Clients
	res.Seed = cfg.Seed

	clk := clock.NewSim()
	net := netsim.New(clk, uint64(cfg.Seed))
	net.SetDefaultLink(netsim.DefaultLAN())
	users := auth.NewDB()
	names := make([]string, cfg.Servers)
	for i := range names {
		names[i] = fmt.Sprintf("srv%d", i+1)
	}
	satelliteHome := names[len(names)-1]
	cl, err := New(clk, net, users, Config{
		Servers: names,
		Placement: server.Placement{
			"hot-lecture": names,
			"satellite":   {satelliteHome},
		},
		Docs: map[string]string{
			"hot-lecture": hotLesson,
			"satellite":   satelliteLesson,
		},
		ServerOptions: server.Options{
			Capacity:          cfg.Capacity,
			Grace:             6 * time.Second,
			HeartbeatEvery:    500 * time.Millisecond,
			LivenessMisses:    3,
			RedirectWatermark: cfg.RedirectWatermark,
			SessionWatermark:  cfg.SessionWatermark,
		},
	})
	if err != nil {
		return res, err
	}

	cscope := obs.NewScope(clk)
	clients := make([]*client.Client, cfg.Clients)
	for i := range clients {
		user := fmt.Sprintf("user%02d", i)
		if err := users.Subscribe(auth.User{
			Name: user, Password: "pw", RealName: "Load User",
			Email: user + "@example.gr", Class: qos.Standard,
		}, clk.Now()); err != nil {
			return res, err
		}
		c, err := client.New(fmt.Sprintf("c%02d", i), clk, net, client.Options{
			User: user, Password: "pw",
			PeakRate: 1_000_000, MinRate: 250_000,
			HeartbeatInterval: 500 * time.Millisecond,
			LivenessMisses:    3,
			RetryTimeout:      250 * time.Millisecond,
			RetryAttempts:     4,
			Obs:               cscope,
			Peers:             names,
		})
		if err != nil {
			return res, err
		}
		clients[i] = c
	}

	// Phase 1 — flash crowd: everyone aims at srv1, staggered 50 ms apart.
	// The watermark turns the pile-up into in-protocol redirects.
	for _, c := range clients {
		c.Connect(names[0])
		clk.RunFor(50 * time.Millisecond)
	}
	clk.RunFor(3 * time.Second)
	if u := cl.MaxUtilization(); u > res.MaxUtilization {
		res.MaxUtilization = u
	}

	// Phase 2 — requests: most clients play the replicated hot lecture;
	// every fourth navigates to the satellite doc homed on the last server,
	// which from anywhere else is a cross-server handoff.
	for i, c := range clients {
		if i%4 == 1 {
			c.RequestDoc("satellite")
		} else {
			c.RequestDoc("hot-lecture")
		}
		clk.RunFor(25 * time.Millisecond)
	}
	clk.RunFor(4 * time.Second)
	if u := cl.MaxUtilization(); u > res.MaxUtilization {
		res.MaxUtilization = u
	}
	for i, c := range clients {
		if viewingHost(c, names) == "" {
			return res, fmt.Errorf("client %d not viewing before kill (err %q)", i, c.LastError())
		}
	}

	// Phase 3 — kill the crowded server mid-lesson. Its clients must ride
	// suspend → grace expiry → failover onto a replica holding their doc.
	before := make([]string, len(clients))
	for i, c := range clients {
		before[i] = viewingHost(c, names)
		if before[i] == names[0] {
			res.SessionsOnKilled++
		}
	}
	net.SetHostDown(names[0], true)
	// Liveness detection (3 × 500 ms) + grace probing (6 s) + failover
	// reconnect and doc restart, with margin for retransmission backoff.
	clk.RunFor(16 * time.Second)

	for i, c := range clients {
		now := viewingHost(c, names)
		if before[i] != names[0] {
			if now == "" {
				res.SessionsLost++
			}
			continue
		}
		if now != "" && now != names[0] {
			res.SessionsRecovered++
		} else {
			res.SessionsLost++
		}
	}
	res.ZeroLostSessions = res.SessionsLost == 0

	res.Redirects = cl.CounterTotal("cluster_redirects")
	res.RedirectsFollowed = cscope.Counter("client_redirects_followed").Value()
	if attempts := int64(cfg.Clients) + res.RedirectsFollowed; attempts > 0 {
		res.RedirectRate = float64(res.Redirects) / float64(attempts)
	}
	res.Handoffs = cl.CounterTotal("cluster_handoffs")
	res.HandoffAccepts = cl.CounterTotal("cluster_handoff_accepts")
	res.HandoffsCompleted = cscope.Counter("client_handoffs_completed").Value()
	h := cscope.Histogram("handoff_latency")
	res.HandoffP50Millis = float64(h.P50()) / float64(time.Millisecond)
	res.HandoffP95Millis = float64(h.P95()) / float64(time.Millisecond)
	return res, nil
}

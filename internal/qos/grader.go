// Package qos implements the paper's quality-of-service machinery: the
// client-side measurement aggregation that turns RTP reception statistics
// into feedback reports, the server-side QoS manager whose grading policy
// gracefully degrades and upgrades stream quality in response to those
// reports (the long-term synchronization recovery of §4), and the
// connection-admission controller that weighs network condition, the new
// connection's load, the user's acceptable-quality floor and the user's
// pricing contract.
package qos

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// Report is one feedback report about one stream, as derived from RTCP
// receiver reports: the loss fraction and delay jitter over the last
// reporting interval.
type Report struct {
	StreamID string
	// Loss is the fraction of packets lost in the interval [0,1].
	Loss float64
	// Jitter is the interarrival jitter estimate.
	Jitter time.Duration
	// Delay is the most recent one-way transit estimate.
	Delay time.Duration
	// At is the report time.
	At time.Time
}

// ActionKind classifies grading decisions.
type ActionKind int

// Grading actions.
const (
	// ActNone means no change.
	ActNone ActionKind = iota
	// ActDegrade lowers quality one level (e.g. raise the video
	// compression factor, lower the audio sampling frequency).
	ActDegrade
	// ActUpgrade restores quality one level.
	ActUpgrade
	// ActCutoff stops transmitting the stream: it sits at the user's
	// lowest acceptable threshold and conditions are still bad.
	ActCutoff
	// ActRestore restarts a cut-off stream at its floor level.
	ActRestore
)

func (k ActionKind) String() string {
	switch k {
	case ActNone:
		return "none"
	case ActDegrade:
		return "degrade"
	case ActUpgrade:
		return "upgrade"
	case ActCutoff:
		return "cutoff"
	case ActRestore:
		return "restore"
	default:
		return "unknown"
	}
}

// Action is one grading decision for one stream.
type Action struct {
	StreamID string
	Kind     ActionKind
	From, To int
	Reason   string
}

// Policy tunes the server QoS manager.
type Policy struct {
	// DegradeLoss: smoothed loss above this triggers degradation.
	DegradeLoss float64
	// UpgradeLoss: smoothed loss below this (and jitter below
	// UpgradeJitter) permits upgrading.
	UpgradeLoss float64
	// DegradeJitter: smoothed jitter above this triggers degradation.
	DegradeJitter time.Duration
	// UpgradeJitter: ceiling for upgrades.
	UpgradeJitter time.Duration
	// HoldDown is the minimum spacing between degrade actions per stream.
	HoldDown time.Duration
	// UpgradeHold is the minimum good-conditions time before an upgrade
	// (hysteresis: upgrades are slower than degrades, per "gracefully
	// upgrade ... when the network's condition permits it").
	UpgradeHold time.Duration
	// Alpha is the EWMA smoothing factor applied to incoming reports.
	Alpha float64
	// VideoFirst degrades a sync group's video before touching its audio
	// ("users can tolerate lower video quality rather than not hear
	// well"), and upgrades audio before video.
	VideoFirst bool
}

// DefaultPolicy returns the policy used by the experiments.
func DefaultPolicy() Policy {
	return Policy{
		DegradeLoss:   0.05,
		UpgradeLoss:   0.01,
		DegradeJitter: 120 * time.Millisecond,
		UpgradeJitter: 40 * time.Millisecond,
		HoldDown:      2 * time.Second,
		UpgradeHold:   8 * time.Second,
		Alpha:         0.3,
		VideoFirst:    true,
	}
}

// StreamConfig registers one stream with the manager.
type StreamConfig struct {
	ID   string
	Kind scenario.MediaType
	// Group is the sync group ("" = none); used by the video-first rule.
	Group string
	// Levels is the stream's quality-ladder depth.
	Levels int
	// Floor is the worst level index the user accepts (the paper's lower
	// threshold); Levels-1 when the user accepts everything.
	Floor int
}

type streamState struct {
	cfg        StreamConfig
	level      int
	stopped    bool
	lossEWMA   float64
	jitterEWMA float64 // milliseconds
	haveData   bool
	lastChange time.Time
	goodSince  time.Time
	series     stats.Series
}

// Manager is the Server QoS Manager: it aggregates feedback reports and
// issues grading actions through the media stream quality converters.
//
// The mutex is a RWMutex because Level sits on the per-frame emit path of
// every media sender: frame pacing takes only a read lock here, so senders
// within a session never serialize on quality lookups, and only feedback
// processing (rare, per RTCP interval) writes.
type Manager struct {
	mu      sync.RWMutex
	clk     clock.Clock
	policy  Policy
	epoch   time.Time
	streams map[string]*streamState
	actions []Action
	obs     *obs.Scope
}

// NewManager creates a server QoS manager.
func NewManager(clk clock.Clock, policy Policy) *Manager {
	if policy.Alpha <= 0 || policy.Alpha > 1 {
		policy.Alpha = 0.3
	}
	return &Manager{
		clk:     clk,
		policy:  policy,
		epoch:   clk.Now(),
		streams: map[string]*streamState{},
	}
}

// SetObs attaches a telemetry scope: every grading action emits a
// GradeChange trace event and bumps a per-kind counter. Nil detaches.
func (m *Manager) SetObs(s *obs.Scope) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.obs = s
}

// recordActionLocked mirrors one grading action into the telemetry scope.
func (m *Manager) recordActionLocked(act Action) {
	if !m.obs.Enabled() {
		return
	}
	m.obs.Counter("qos_" + act.Kind.String()).Inc()
	m.obs.Emit(obs.EvGradeChange, act.StreamID, int64(act.To),
		fmt.Sprintf("%s %d→%d: %s", act.Kind, act.From, act.To, act.Reason))
}

// Register adds a stream at level 0 (best quality).
func (m *Manager) Register(cfg StreamConfig) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cfg.Levels < 1 {
		cfg.Levels = 1
	}
	// A zero Floor means "accept every level": the floor defaults to the
	// bottom of the ladder.
	if cfg.Floor <= 0 || cfg.Floor >= cfg.Levels {
		cfg.Floor = cfg.Levels - 1
	}
	st := &streamState{cfg: cfg, goodSince: m.clk.Now()}
	st.series.Name = cfg.ID
	st.series.Add(m.clk.Since(m.epoch), 0)
	m.streams[cfg.ID] = st
}

// Level returns a stream's current quality level and whether it is stopped.
// Read-locked: safe to call concurrently from every sender's emit path.
func (m *Manager) Level(id string) (level int, stopped bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	st := m.streams[id]
	if st == nil {
		return 0, false
	}
	return st.level, st.stopped
}

// LevelMatches reports whether the stream currently runs at exactly the
// given level and is not cut off. This is the shared-flow reconciliation
// predicate: a session may ride a shared flow only while its own grading
// state agrees with the flow's fixed encode level, and must detach to a
// private sender the moment they diverge. Read-locked like Level.
func (m *Manager) LevelMatches(id string, level int) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	st := m.streams[id]
	if st == nil {
		return level == 0
	}
	return !st.stopped && st.level == level
}

// LevelSeries returns the stream's quality-level trajectory (level index
// over time since the manager's epoch; stopped is recorded as Levels).
func (m *Manager) LevelSeries(id string) *stats.Series {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.streams[id]
	if st == nil {
		return nil
	}
	return &st.series
}

// Actions returns all grading actions issued so far.
func (m *Manager) Actions() []Action {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Action, len(m.actions))
	copy(out, m.actions)
	return out
}

// Feedback processes one report and returns the actions taken (zero or one
// action on this stream, possibly redirected within its sync group by the
// video-first rule).
func (m *Manager) Feedback(rep Report) []Action {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.streams[rep.StreamID]
	if st == nil {
		return nil
	}
	a := m.policy.Alpha
	jms := float64(rep.Jitter) / float64(time.Millisecond)
	if !st.haveData {
		st.lossEWMA, st.jitterEWMA = rep.Loss, jms
		st.haveData = true
	} else {
		st.lossEWMA = a*rep.Loss + (1-a)*st.lossEWMA
		st.jitterEWMA = a*jms + (1-a)*st.jitterEWMA
	}
	now := m.clk.Now()

	// Degrade only when both the smoothed history and the latest report
	// breach the threshold: the EWMA filters single spikes, the
	// instantaneous check stops degradation cascading on after the
	// congestion episode has already ended.
	dj := float64(m.policy.DegradeJitter) / float64(time.Millisecond)
	uj := float64(m.policy.UpgradeJitter) / float64(time.Millisecond)
	bad := (st.lossEWMA > m.policy.DegradeLoss && rep.Loss >= m.policy.DegradeLoss) ||
		(st.jitterEWMA > dj && jms >= dj)
	good := st.lossEWMA < m.policy.UpgradeLoss && rep.Loss <= m.policy.UpgradeLoss &&
		st.jitterEWMA < uj && jms <= uj

	if bad {
		st.goodSince = time.Time{}
	} else if st.goodSince.IsZero() {
		st.goodSince = now
	}

	var out []Action
	if bad {
		target := m.pickDegradeTargetLocked(st)
		if target != nil && now.Sub(target.lastChange) >= m.policy.HoldDown {
			out = append(out, m.degradeLocked(target, now,
				fmt.Sprintf("loss=%.3f jitter=%.0fms", st.lossEWMA, st.jitterEWMA)))
		}
	} else if good {
		target := m.pickUpgradeTargetLocked(st)
		if target != nil && !target.goodSince.IsZero() &&
			now.Sub(latest(target.lastChange, target.goodSince)) >= m.policy.UpgradeHold {
			out = append(out, m.upgradeLocked(target, now))
		}
	}
	return out
}

func latest(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}

// pickDegradeTargetLocked applies the video-first rule: degrading an audio
// stream is redirected to its group's video while the video has headroom.
func (m *Manager) pickDegradeTargetLocked(st *streamState) *streamState {
	if m.policy.VideoFirst && st.cfg.Kind == scenario.TypeAudio && st.cfg.Group != "" {
		if v := m.groupVideoLocked(st.cfg.Group); v != nil && !v.stopped && v.level < v.cfg.Floor {
			return v
		}
	}
	if st.stopped {
		return nil
	}
	return st
}

// pickUpgradeTargetLocked prefers restoring/upgrading audio before video.
func (m *Manager) pickUpgradeTargetLocked(st *streamState) *streamState {
	if m.policy.VideoFirst && st.cfg.Kind == scenario.TypeVideo && st.cfg.Group != "" {
		if a := m.groupAudioLocked(st.cfg.Group); a != nil && (a.stopped || a.level > 0) {
			return a
		}
	}
	if !st.stopped && st.level == 0 {
		return nil
	}
	return st
}

func (m *Manager) groupVideoLocked(group string) *streamState {
	return m.groupKindLocked(group, scenario.TypeVideo)
}

func (m *Manager) groupAudioLocked(group string) *streamState {
	return m.groupKindLocked(group, scenario.TypeAudio)
}

func (m *Manager) groupKindLocked(group string, kind scenario.MediaType) *streamState {
	var ids []string
	for id := range m.streams {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st := m.streams[id]
		if st.cfg.Group == group && st.cfg.Kind == kind {
			return st
		}
	}
	return nil
}

func (m *Manager) degradeLocked(st *streamState, now time.Time, reason string) Action {
	var act Action
	if st.level >= st.cfg.Floor {
		// Already at the user's lowest threshold: cut the stream off.
		act = Action{StreamID: st.cfg.ID, Kind: ActCutoff, From: st.level, To: st.level, Reason: reason}
		st.stopped = true
		st.series.Add(m.clk.Since(m.epoch), float64(st.cfg.Levels))
	} else {
		act = Action{StreamID: st.cfg.ID, Kind: ActDegrade, From: st.level, To: st.level + 1, Reason: reason}
		st.level++
		st.series.Add(m.clk.Since(m.epoch), float64(st.level))
	}
	st.lastChange = now
	st.goodSince = time.Time{}
	m.actions = append(m.actions, act)
	m.recordActionLocked(act)
	return act
}

func (m *Manager) upgradeLocked(st *streamState, now time.Time) Action {
	var act Action
	if st.stopped {
		act = Action{StreamID: st.cfg.ID, Kind: ActRestore, From: st.cfg.Floor, To: st.cfg.Floor, Reason: "conditions recovered"}
		st.stopped = false
		st.level = st.cfg.Floor
	} else {
		act = Action{StreamID: st.cfg.ID, Kind: ActUpgrade, From: st.level, To: st.level - 1, Reason: "conditions recovered"}
		st.level--
	}
	st.series.Add(m.clk.Since(m.epoch), float64(st.level))
	st.lastChange = now
	st.goodSince = now
	m.actions = append(m.actions, act)
	m.recordActionLocked(act)
	return act
}

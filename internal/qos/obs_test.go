package qos

import (
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// A congested sync group must emit GradeChange events, and the video-first
// rule means the first events hit the video stream before any audio event.
func TestGraderEmitsGradeChangeEventsVideoFirst(t *testing.T) {
	clk := clock.NewSim()
	scope := obs.NewScope(clk)
	m := NewManager(clk, DefaultPolicy())
	m.SetObs(scope)
	m.Register(StreamConfig{ID: "a", Kind: scenario.TypeAudio, Group: "g", Levels: 4, Floor: 3})
	m.Register(StreamConfig{ID: "v", Kind: scenario.TypeVideo, Group: "g", Levels: 5, Floor: 4})

	// Sustained loss reported on the audio stream: video takes the hits
	// until its ladder is exhausted, then audio degrades.
	for i := 0; i < 30; i++ {
		m.Feedback(Report{StreamID: "a", Loss: 0.5})
		clk.Advance(3 * time.Second)
	}

	evs := scope.Trace().Events()
	var grades []obs.Event
	for _, ev := range evs {
		if ev.Kind == obs.EvGradeChange {
			grades = append(grades, ev)
		}
	}
	if len(grades) == 0 {
		t.Fatalf("no grade-change events; trace = %+v", evs)
	}
	firstAudio := -1
	lastVideoBefore := -1
	for i, ev := range grades {
		if ev.Stream == "a" && firstAudio == -1 {
			firstAudio = i
		}
		if ev.Stream == "v" && firstAudio == -1 {
			lastVideoBefore = i
		}
	}
	if firstAudio == -1 {
		t.Fatal("audio never degraded after video exhausted")
	}
	if lastVideoBefore == -1 {
		t.Fatalf("first grade-change hit %q, want video before audio", grades[0].Stream)
	}
	// Events carry the new level and a kind → level note.
	if grades[0].Value != 1 || !strings.Contains(grades[0].Note, "degrade") {
		t.Fatalf("first grade event = %+v", grades[0])
	}
	// Timestamps follow the virtual clock monotonically.
	for i := 1; i < len(grades); i++ {
		if grades[i].At.Before(grades[i-1].At) {
			t.Fatalf("timestamps regress: %v then %v", grades[i-1].At, grades[i].At)
		}
	}
	// Action-kind counters landed in the registry.
	found := false
	for _, p := range scope.Registry().Snapshot() {
		if p.Name == "qos_degrade" && p.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("qos_degrade counter missing; snapshot = %+v", scope.Registry().Snapshot())
	}
}

// Every admission verdict must emit an AdmissionDecision event recording the
// pricing class, and bump the class/verdict-labeled counter.
func TestAdmissionEmitsDecisionEventsWithClass(t *testing.T) {
	scope := obs.NewScope(clock.NewSim())
	a := NewAdmission(10_000_000)
	a.SetObs(scope)

	a.Request(ConnRequest{User: "e1", Class: Economy, PeakRate: 5_000_000, MinRate: 1_000_000})
	a.Request(ConnRequest{User: "s1", Class: Standard, PeakRate: 3_000_000, MinRate: 2_000_000})
	// Premium squeezes the lower classes to get in.
	a.Request(ConnRequest{User: "p1", Class: Premium, PeakRate: 6_000_000, MinRate: 5_000_000})
	// Economy pool is now exhausted.
	a.Request(ConnRequest{User: "e2", Class: Economy, PeakRate: 4_000_000, MinRate: 4_000_000})

	var decisions []obs.Event
	for _, ev := range scope.Trace().Events() {
		if ev.Kind == obs.EvAdmissionDecision {
			decisions = append(decisions, ev)
		}
	}
	if len(decisions) != 4 {
		t.Fatalf("decisions = %d, want 4: %+v", len(decisions), decisions)
	}
	wantClass := []string{"class=economy", "class=standard", "class=premium", "class=economy"}
	for i, ev := range decisions {
		if !strings.Contains(ev.Note, wantClass[i]) {
			t.Fatalf("decision %d note %q missing %q", i, ev.Note, wantClass[i])
		}
	}
	if !strings.Contains(decisions[2].Note, "squeezed=") {
		t.Fatalf("premium decision note %q lacks squeeze record", decisions[2].Note)
	}
	if !strings.Contains(decisions[3].Note, "rejected") {
		t.Fatalf("exhausted-pool decision note %q not rejected", decisions[3].Note)
	}

	// Labeled counters: one admitted economy, one rejected economy.
	snap := map[string]float64{}
	for _, p := range scope.Registry().Snapshot() {
		snap[p.Name] = p.Value
	}
	if snap[obs.Label("admission_decisions", "class", "economy", "verdict", "admitted")] != 1 {
		t.Fatalf("admitted economy counter wrong; snapshot = %+v", snap)
	}
	if snap[obs.Label("admission_decisions", "class", "economy", "verdict", "rejected")] != 1 {
		t.Fatalf("rejected economy counter wrong; snapshot = %+v", snap)
	}
	if snap["admission_reserved_bps"] <= 0 {
		t.Fatalf("reserved gauge not set; snapshot = %+v", snap)
	}
}

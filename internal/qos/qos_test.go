package qos

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/rtp"
	"repro/internal/scenario"
)

func mgr() (*clock.Virtual, *Manager) {
	clk := clock.NewSim()
	m := NewManager(clk, DefaultPolicy())
	return clk, m
}

func report(id string, loss float64, jitter time.Duration) Report {
	return Report{StreamID: id, Loss: loss, Jitter: jitter}
}

func TestDegradeOnSustainedLoss(t *testing.T) {
	clk, m := mgr()
	m.Register(StreamConfig{ID: "v", Kind: scenario.TypeVideo, Levels: 5, Floor: 4})
	var acts []Action
	for i := 0; i < 5; i++ {
		acts = append(acts, m.Feedback(report("v", 0.2, 0))...)
		clk.Advance(time.Second)
	}
	if len(acts) == 0 {
		t.Fatal("no degrade under 20% loss")
	}
	if acts[0].Kind != ActDegrade || acts[0].From != 0 || acts[0].To != 1 {
		t.Fatalf("first action = %+v", acts[0])
	}
	lvl, stopped := m.Level("v")
	if lvl < 2 || stopped {
		t.Fatalf("level = %d stopped=%v after sustained loss", lvl, stopped)
	}
	// Loss persisting all the way down the ladder eventually cuts the
	// stream off at the floor.
	for i := 0; i < 10; i++ {
		acts = append(acts, m.Feedback(report("v", 0.2, 0))...)
		clk.Advance(3 * time.Second)
	}
	if _, stopped := m.Level("v"); !stopped {
		t.Fatal("stream not cut off after exhausting the ladder")
	}
	if last := acts[len(acts)-1]; last.Kind != ActCutoff {
		t.Fatalf("last action = %+v", last)
	}
}

func TestHoldDownSpacesDegrades(t *testing.T) {
	clk, m := mgr()
	m.Register(StreamConfig{ID: "v", Kind: scenario.TypeVideo, Levels: 5})
	n := 0
	for i := 0; i < 10; i++ {
		n += len(m.Feedback(report("v", 0.5, 0)))
		clk.Advance(100 * time.Millisecond) // 10 reports within one holddown
	}
	if n != 1 {
		t.Fatalf("%d degrades within hold-down window, want 1", n)
	}
}

func TestCutoffAtFloor(t *testing.T) {
	clk, m := mgr()
	m.Register(StreamConfig{ID: "v", Kind: scenario.TypeVideo, Levels: 3, Floor: 2})
	var last Action
	for i := 0; i < 20; i++ {
		for _, a := range m.Feedback(report("v", 0.5, 0)) {
			last = a
		}
		clk.Advance(3 * time.Second)
	}
	if last.Kind != ActCutoff {
		t.Fatalf("last action = %+v, want cutoff", last)
	}
	if _, stopped := m.Level("v"); !stopped {
		t.Fatal("stream not stopped after cutoff")
	}
}

func TestUpgradeAfterRecoveryWithHysteresis(t *testing.T) {
	clk, m := mgr()
	m.Register(StreamConfig{ID: "v", Kind: scenario.TypeVideo, Levels: 5})
	// Degrade twice.
	for i := 0; i < 2; i++ {
		m.Feedback(report("v", 0.5, 0))
		clk.Advance(3 * time.Second)
	}
	lvl, _ := m.Level("v")
	if lvl != 2 {
		t.Fatalf("level = %d, want 2", lvl)
	}
	// Now perfect conditions: upgrade only after UpgradeHold (8s).
	upgrades := 0
	for i := 0; i < 45; i++ {
		for _, a := range m.Feedback(report("v", 0, 0)) {
			if a.Kind == ActUpgrade {
				upgrades++
			}
		}
		clk.Advance(time.Second)
	}
	lvl, _ = m.Level("v")
	if lvl != 0 {
		t.Fatalf("level = %d after long recovery, want 0", lvl)
	}
	if upgrades != 2 {
		t.Fatalf("upgrades = %d", upgrades)
	}
	// Upgrades spaced ≥ 8s: 2 upgrades need ≥ 16s of the 30s window.
	acts := m.Actions()
	var times []int
	for i, a := range acts {
		if a.Kind == ActUpgrade {
			times = append(times, i)
		}
	}
	if len(times) != 2 {
		t.Fatalf("action log: %+v", acts)
	}
}

func TestRestoreAfterCutoff(t *testing.T) {
	clk, m := mgr()
	m.Register(StreamConfig{ID: "v", Kind: scenario.TypeVideo, Levels: 2, Floor: 1})
	for i := 0; i < 10; i++ {
		m.Feedback(report("v", 0.5, 0))
		clk.Advance(3 * time.Second)
	}
	if _, stopped := m.Level("v"); !stopped {
		t.Fatal("not stopped")
	}
	var restored bool
	for i := 0; i < 30; i++ {
		for _, a := range m.Feedback(report("v", 0, 0)) {
			if a.Kind == ActRestore {
				restored = true
			}
		}
		clk.Advance(2 * time.Second)
	}
	if !restored {
		t.Fatal("stream never restored")
	}
	// After restoration at the floor, continued good conditions upgrade
	// back toward full quality.
	lvl, stopped := m.Level("v")
	if stopped || lvl != 0 {
		t.Fatalf("after restore+recovery: level=%d stopped=%v", lvl, stopped)
	}
}

func TestVideoFirstRuleRedirectsAudioDegrade(t *testing.T) {
	clk, m := mgr()
	m.Register(StreamConfig{ID: "a", Kind: scenario.TypeAudio, Group: "g", Levels: 4, Floor: 3})
	m.Register(StreamConfig{ID: "v", Kind: scenario.TypeVideo, Group: "g", Levels: 5, Floor: 4})
	// Loss reported on the AUDIO stream: the video must take the hit.
	acts := m.Feedback(report("a", 0.5, 0))
	if len(acts) != 1 || acts[0].StreamID != "v" || acts[0].Kind != ActDegrade {
		t.Fatalf("actions = %+v", acts)
	}
	aLvl, _ := m.Level("a")
	vLvl, _ := m.Level("v")
	if aLvl != 0 || vLvl != 1 {
		t.Fatalf("levels a=%d v=%d", aLvl, vLvl)
	}
	// Exhaust the video ladder; only then is audio degraded.
	for i := 0; i < 30; i++ {
		m.Feedback(report("a", 0.5, 0))
		clk.Advance(3 * time.Second)
	}
	aLvl, _ = m.Level("a")
	_, vStopped := m.Level("v")
	if !vStopped && aLvl == 0 {
		t.Fatal("audio untouched but video not exhausted")
	}
	if aLvl == 0 {
		t.Fatal("audio never degraded after video exhausted")
	}
}

func TestJitterAloneTriggersDegrade(t *testing.T) {
	_, m := mgr()
	m.Register(StreamConfig{ID: "v", Kind: scenario.TypeVideo, Levels: 5})
	acts := m.Feedback(report("v", 0, 500*time.Millisecond))
	if len(acts) != 1 || acts[0].Kind != ActDegrade {
		t.Fatalf("actions = %+v", acts)
	}
}

func TestEWMASmoothingIgnoresSingleSpike(t *testing.T) {
	clk, m := mgr()
	m.Register(StreamConfig{ID: "v", Kind: scenario.TypeVideo, Levels: 5})
	// Long clean history.
	for i := 0; i < 20; i++ {
		m.Feedback(report("v", 0, 0))
		clk.Advance(time.Second)
	}
	// One moderate spike (loss 8% won't push EWMA(α=0.3) over 5% from 0).
	acts := m.Feedback(report("v", 0.08, 0))
	if len(acts) != 0 {
		t.Fatalf("single spike caused %+v", acts)
	}
}

func TestLevelSeriesTrajectory(t *testing.T) {
	clk, m := mgr()
	m.Register(StreamConfig{ID: "v", Kind: scenario.TypeVideo, Levels: 5})
	m.Feedback(report("v", 0.5, 0))
	clk.Advance(3 * time.Second)
	m.Feedback(report("v", 0.5, 0))
	s := m.LevelSeries("v")
	if s == nil || s.N() != 3 { // initial 0, then two degrades
		t.Fatalf("series = %+v", s)
	}
	if v, _ := s.At(10 * time.Second); v != 2 {
		t.Fatalf("level at 10s = %v", v)
	}
	if m.LevelSeries("nope") != nil {
		t.Fatal("phantom series")
	}
}

func TestFeedbackUnknownStream(t *testing.T) {
	_, m := mgr()
	if acts := m.Feedback(report("ghost", 1, 0)); acts != nil {
		t.Fatalf("actions for unknown stream: %+v", acts)
	}
}

func TestRegisterClampsFloor(t *testing.T) {
	_, m := mgr()
	m.Register(StreamConfig{ID: "x", Levels: 3, Floor: 99})
	m.Register(StreamConfig{ID: "y", Levels: 0})
	if lvl, _ := m.Level("x"); lvl != 0 {
		t.Fatal("initial level")
	}
}

func TestActionKindStrings(t *testing.T) {
	for k := ActNone; k <= ActRestore; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
}

// --- admission ---

func TestAdmissionFullThenDegradedThenRejected(t *testing.T) {
	a := NewAdmission(10_000_000) // 10 Mb/s
	// Economy cap = 6 Mb/s.
	d1 := a.Request(ConnRequest{User: "u1", Class: Economy, PeakRate: 4_000_000, MinRate: 1_000_000})
	if d1.Verdict != Admitted || d1.Rate != 4_000_000 {
		t.Fatalf("d1 = %+v", d1)
	}
	// 2 Mb/s free under the economy cap → degraded admission.
	d2 := a.Request(ConnRequest{User: "u2", Class: Economy, PeakRate: 4_000_000, MinRate: 1_000_000})
	if d2.Verdict != AdmittedDegraded || d2.Rate != 2_000_000 {
		t.Fatalf("d2 = %+v", d2)
	}
	// Nothing left under the economy cap → rejection.
	d3 := a.Request(ConnRequest{User: "u3", Class: Economy, PeakRate: 4_000_000, MinRate: 1_000_000})
	if d3.Verdict != Rejected {
		t.Fatalf("d3 = %+v", d3)
	}
	adm, deg, rej := a.Counts(Economy)
	if adm != 1 || deg != 1 || rej != 1 {
		t.Fatalf("counts = %d/%d/%d", adm, deg, rej)
	}
}

func TestAdmissionClassCapsDiffer(t *testing.T) {
	a := NewAdmission(10_000_000)
	// Fill to 6 Mb/s with economy.
	a.Request(ConnRequest{User: "e", Class: Economy, PeakRate: 6_000_000, MinRate: 6_000_000})
	// Economy is capped out, standard still fits.
	if d := a.Request(ConnRequest{User: "e2", Class: Economy, PeakRate: 1_000_000, MinRate: 1_000_000}); d.Verdict != Rejected {
		t.Fatalf("economy over cap admitted: %+v", d)
	}
	if d := a.Request(ConnRequest{User: "s", Class: Standard, PeakRate: 1_000_000, MinRate: 1_000_000}); d.Verdict != Admitted {
		t.Fatalf("standard rejected: %+v", d)
	}
}

func TestPremiumSqueezesLowerClasses(t *testing.T) {
	a := NewAdmission(10_000_000)
	e := a.Request(ConnRequest{User: "e", Class: Economy, PeakRate: 5_000_000, MinRate: 1_000_000})
	s := a.Request(ConnRequest{User: "s", Class: Standard, PeakRate: 3_000_000, MinRate: 2_000_000})
	// 8 Mb/s reserved, 2 free. Premium wants 6 Mb/s min 5 Mb/s.
	d := a.Request(ConnRequest{User: "p", Class: Premium, PeakRate: 6_000_000, MinRate: 5_000_000})
	if d.Verdict == Rejected {
		t.Fatalf("premium rejected: %+v", d)
	}
	if len(d.Squeezed) == 0 {
		t.Fatal("no connections squeezed")
	}
	// Economy squeezed before standard.
	if d.Squeezed[0] != e.ConnID {
		t.Fatalf("squeezed = %v, economy first (id %d)", d.Squeezed, e.ConnID)
	}
	if a.Rate(e.ConnID) < 1_000_000-1 {
		t.Fatalf("economy squeezed below floor: %v", a.Rate(e.ConnID))
	}
	// Total never exceeds capacity.
	if a.Reserved() > 10_000_000+1 {
		t.Fatalf("reserved = %v", a.Reserved())
	}
	_ = s
}

func TestPremiumRejectedWhenFloorsBlock(t *testing.T) {
	a := NewAdmission(10_000_000)
	// Economy at its floor: nothing to squeeze.
	a.Request(ConnRequest{User: "e", Class: Economy, PeakRate: 6_000_000, MinRate: 6_000_000})
	a.Request(ConnRequest{User: "s", Class: Standard, PeakRate: 2_500_000, MinRate: 2_500_000})
	d := a.Request(ConnRequest{User: "p", Class: Premium, PeakRate: 9_000_000, MinRate: 8_000_000})
	if d.Verdict != Rejected {
		t.Fatalf("premium admitted impossibly: %+v", d)
	}
}

func TestReleaseFreesCapacity(t *testing.T) {
	a := NewAdmission(1_000_000)
	d := a.Request(ConnRequest{User: "u", Class: Premium, PeakRate: 1_000_000})
	if a.Utilization() != 1 {
		t.Fatalf("utilization = %v", a.Utilization())
	}
	a.Release(d.ConnID)
	if a.Reserved() != 0 {
		t.Fatal("release did not free")
	}
	a.Release(999) // unknown: no panic
	if a.Rate(999) != 0 {
		t.Fatal("unknown rate")
	}
}

func TestMinRateDefaultsToPeak(t *testing.T) {
	a := NewAdmission(1_000_000)
	a.Request(ConnRequest{User: "u1", Class: Premium, PeakRate: 900_000})
	// 100 kb/s free; peak 200 kb/s, no explicit min → min=peak → reject.
	d := a.Request(ConnRequest{User: "u2", Class: Premium, PeakRate: 200_000})
	if d.Verdict != Rejected {
		t.Fatalf("d = %+v", d)
	}
}

func TestPricingClassStringsAndCaps(t *testing.T) {
	if Economy.String() != "economy" || Premium.ShareCap() != 1.0 {
		t.Fatal("class props wrong")
	}
	if !(Economy.ShareCap() < Standard.ShareCap() && Standard.ShareCap() < Premium.ShareCap()) {
		t.Fatal("caps not ordered")
	}
	for v := Admitted; v <= Rejected; v++ {
		if v.String() == "unknown" {
			t.Fatal("verdict unnamed")
		}
	}
}

// --- client monitor ---

func TestClientMonitorEndToEnd(t *testing.T) {
	clk := clock.NewSim()
	cm := NewClientMonitor(clk, 0xC0FFEE)
	cm.Track("v", 42)
	if id, ok := cm.StreamID(42); !ok || id != "v" {
		t.Fatal("SSRC mapping")
	}
	sender := rtp.NewSender(42, rtp.PTMPEG, 0)
	at := clk.Now()
	for i := 0; i < 10; i++ {
		p := sender.Next(time.Duration(i)*40*time.Millisecond, []byte("f"), true)
		if i == 4 {
			continue // lose one packet
		}
		cm.Observe("v", p, at.Add(time.Duration(i)*40*time.Millisecond+50*time.Millisecond), at.Add(time.Duration(i)*40*time.Millisecond))
	}
	reps := cm.Reports()
	if len(reps) != 1 || reps[0].StreamID != "v" {
		t.Fatalf("reports = %+v", reps)
	}
	if reps[0].Loss < 0.05 || reps[0].Loss > 0.15 {
		t.Fatalf("loss = %v, want ≈0.1", reps[0].Loss)
	}
	if reps[0].Delay != 50*time.Millisecond {
		t.Fatalf("delay = %v", reps[0].Delay)
	}
	rr := cm.BuildRR()
	if rr.SSRC != 0xC0FFEE || len(rr.Reports) != 1 {
		t.Fatalf("RR = %+v", rr)
	}
	// Round trip through the wire into a server-side report.
	cp, err := rtp.UnmarshalControl(rr.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	rep := FromRTCP("v", cp.RR.Reports[0], clk.Now())
	if rep.StreamID != "v" || rep.Loss < 0.05 {
		t.Fatalf("FromRTCP = %+v", rep)
	}
}

func TestClientMonitorUntracked(t *testing.T) {
	clk := clock.NewSim()
	cm := NewClientMonitor(clk, 1)
	cm.Observe("ghost", &rtp.Packet{}, clk.Now(), time.Time{}) // no panic
	if cm.Receiver("ghost") != nil {
		t.Fatal("phantom receiver")
	}
	if _, ok := cm.StreamID(9); ok {
		t.Fatal("phantom ssrc")
	}
}

func TestRenegotiateDown(t *testing.T) {
	a := NewAdmission(10_000_000)
	d := a.Request(ConnRequest{User: "u", Class: Standard, PeakRate: 4_000_000, MinRate: 1_000_000})
	got, ok := a.Renegotiate(d.ConnID, 2_000_000)
	if !ok || got != 2_000_000 {
		t.Fatalf("renegotiate down = %v %v", got, ok)
	}
	if a.Reserved() != 2_000_000 {
		t.Fatalf("reserved = %v", a.Reserved())
	}
	// Below the floor clamps to the floor.
	got, ok = a.Renegotiate(d.ConnID, 100)
	if !ok || got != 1_000_000 {
		t.Fatalf("floor clamp = %v %v", got, ok)
	}
}

func TestRenegotiateUpWithinCapacity(t *testing.T) {
	a := NewAdmission(10_000_000)
	d := a.Request(ConnRequest{User: "u", Class: Premium, PeakRate: 2_000_000, MinRate: 1_000_000})
	got, ok := a.Renegotiate(d.ConnID, 5_000_000)
	if !ok || got != 5_000_000 {
		t.Fatalf("renegotiate up = %v %v", got, ok)
	}
	// Beyond capacity: partial grant, ok=false.
	got, ok = a.Renegotiate(d.ConnID, 50_000_000)
	if ok || got != 10_000_000 {
		t.Fatalf("over-capacity = %v %v", got, ok)
	}
	// Unknown connection.
	if _, ok := a.Renegotiate(999, 1); ok {
		t.Fatal("phantom renegotiation")
	}
}

func TestRenegotiateFreesRoomForNewAdmissions(t *testing.T) {
	a := NewAdmission(3_000_000)
	d1 := a.Request(ConnRequest{User: "u1", Class: Premium, PeakRate: 3_000_000, MinRate: 500_000})
	// Full: the next request is rejected.
	if d := a.Request(ConnRequest{User: "u2", Class: Premium, PeakRate: 2_000_000, MinRate: 2_000_000}); d.Verdict != Rejected {
		t.Fatalf("admitted into a full server: %+v", d)
	}
	// u1's grading drops its mix to 1 Mb/s; renegotiation frees 2 Mb/s.
	a.Renegotiate(d1.ConnID, 1_000_000)
	if d := a.Request(ConnRequest{User: "u2", Class: Premium, PeakRate: 2_000_000, MinRate: 2_000_000}); d.Verdict != Admitted {
		t.Fatalf("freed bandwidth not reusable: %+v", d)
	}
}

// TestLevelMatchesGatesSharedFlow pins the predicate the shared-flow layer
// attaches and detaches on: an unregistered stream matches only level 0 (no
// grading has happened), a registered stream matches exactly its current
// level, and a cut-off stream matches nothing.
func TestLevelMatchesGatesSharedFlow(t *testing.T) {
	clk, m := mgr()
	if !m.LevelMatches("v", 0) {
		t.Fatal("unregistered stream must match level 0")
	}
	if m.LevelMatches("v", 1) {
		t.Fatal("unregistered stream must not match a degraded level")
	}
	m.Register(StreamConfig{ID: "v", Kind: scenario.TypeVideo, Levels: 5, Floor: 4})
	if !m.LevelMatches("v", 0) {
		t.Fatal("freshly registered stream must match level 0")
	}
	for i := 0; i < 5 && m.LevelMatches("v", 0); i++ {
		m.Feedback(report("v", 0.2, 0))
		clk.Advance(time.Second)
	}
	lvl, stopped := m.Level("v")
	if lvl == 0 || stopped {
		t.Fatalf("level = %d stopped=%v, wanted a live degrade", lvl, stopped)
	}
	if m.LevelMatches("v", 0) {
		t.Fatal("degraded stream still matches level 0")
	}
	if !m.LevelMatches("v", lvl) {
		t.Fatalf("degraded stream does not match its own level %d", lvl)
	}
	for i := 0; i < 20; i++ {
		m.Feedback(report("v", 0.2, 0))
		clk.Advance(3 * time.Second)
	}
	if _, stopped := m.Level("v"); !stopped {
		t.Fatal("stream not cut off")
	}
	for l := 0; l < 5; l++ {
		if m.LevelMatches("v", l) {
			t.Fatalf("cut-off stream matches level %d", l)
		}
	}
}

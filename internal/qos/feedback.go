package qos

import (
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/rtp"
)

// ClientMonitor is the Client QoS Manager's measurement half: it observes
// every arriving RTP packet (which "carries a timestamping indication ...
// used to carry out conclusions about the connection's condition"), keeps
// per-stream RFC 1889 reception state, and periodically emits feedback
// reports as RTCP receiver-report blocks.
type ClientMonitor struct {
	mu        sync.Mutex
	clk       clock.Clock
	ssrc      uint32 // the receiver's own SSRC for its RRs
	receivers map[string]*rtp.Receiver
	ssrcToID  map[uint32]string
	lastSR    map[string]*rtp.SenderReport
}

// NewClientMonitor creates a monitor with the receiver's own SSRC.
func NewClientMonitor(clk clock.Clock, ssrc uint32) *ClientMonitor {
	return &ClientMonitor{
		clk:       clk,
		ssrc:      ssrc,
		receivers: map[string]*rtp.Receiver{},
		ssrcToID:  map[uint32]string{},
		lastSR:    map[string]*rtp.SenderReport{},
	}
}

// ObserveSR records an RTCP sender report from a stream's source; the SR's
// NTP↔RTP timestamp pair lets receivers map media time to the sender's wall
// clock.
func (c *ClientMonitor) ObserveSR(streamID string, sr *rtp.SenderReport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastSR[streamID] = sr
}

// LastSR returns the most recent sender report for a stream (nil = none).
func (c *ClientMonitor) LastSR(streamID string) *rtp.SenderReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastSR[streamID]
}

// Track registers a stream and its source SSRC.
func (c *ClientMonitor) Track(streamID string, ssrc uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.receivers[streamID] = rtp.NewReceiver(ssrc)
	c.ssrcToID[ssrc] = streamID
}

// StreamID resolves a source SSRC to its stream id.
func (c *ClientMonitor) StreamID(ssrc uint32) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.ssrcToID[ssrc]
	return id, ok
}

// Observe feeds one arrived packet into its stream's reception state.
// sent may be the zero time when the sender clock is unknown.
func (c *ClientMonitor) Observe(streamID string, p *rtp.Packet, arrival, sent time.Time) {
	c.mu.Lock()
	r := c.receivers[streamID]
	c.mu.Unlock()
	if r != nil {
		r.Observe(p, arrival, sent)
	}
}

// Receiver exposes a stream's reception state (nil when untracked).
func (c *ClientMonitor) Receiver(streamID string) *rtp.Receiver {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.receivers[streamID]
}

// BuildRR assembles the RTCP receiver report covering every tracked stream,
// resetting the per-interval counters — this is the feedback packet the
// client sends "periodically or in specifically calculated intervals".
func (c *ClientMonitor) BuildRR() *rtp.ReceiverReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	rr := &rtp.ReceiverReport{SSRC: c.ssrc}
	ids := make([]string, 0, len(c.receivers))
	for id := range c.receivers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		rr.Reports = append(rr.Reports, c.receivers[id].Report())
	}
	return rr
}

// Reports converts the current reception state into qos.Reports without
// resetting interval counters (monitoring snapshot).
func (c *ClientMonitor) Reports() []Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clk.Now()
	ids := make([]string, 0, len(c.receivers))
	for id := range c.receivers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []Report
	for _, id := range ids {
		r := c.receivers[id]
		loss := 0.0
		if exp := r.Expected(); exp > 0 {
			loss = float64(r.CumulativeLost()) / float64(exp)
		}
		out = append(out, Report{
			StreamID: id,
			Loss:     loss,
			Jitter:   r.JitterDuration(),
			Delay:    r.LastDelay(),
			At:       now,
		})
	}
	return out
}

// FromRTCP converts one receiver-report block into a qos.Report for the
// server-side manager. The stream id must be resolved by the caller (the
// server knows which SSRC it assigned to which stream).
func FromRTCP(streamID string, block rtp.ReceptionReport, at time.Time) Report {
	return Report{
		StreamID: streamID,
		Loss:     block.LossFraction(),
		Jitter:   rtp.FromTimestamp(block.Jitter),
		At:       at,
	}
}

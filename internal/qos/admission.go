package qos

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// PricingClass is the user's pricing contract tier. The paper's admission
// rule: "a user who pays more should be serviced, even though it affects the
// other users".
type PricingClass int

// Pricing classes.
const (
	Economy PricingClass = iota
	Standard
	Premium
)

func (c PricingClass) String() string {
	switch c {
	case Economy:
		return "economy"
	case Standard:
		return "standard"
	case Premium:
		return "premium"
	default:
		return "unknown"
	}
}

// ShareCap returns the fraction of server capacity connections of this
// class may collectively occupy.
func (c PricingClass) ShareCap() float64 {
	switch c {
	case Economy:
		return 0.6
	case Standard:
		return 0.85
	default:
		return 1.0
	}
}

// ConnRequest describes a connection asking for admission.
type ConnRequest struct {
	// User identifies the requester.
	User string
	// Class is the pricing contract.
	Class PricingClass
	// PeakRate is the connection's full-quality bandwidth need (bits/s) —
	// the "potential load that will be caused due to the new connection".
	PeakRate float64
	// MinRate is the bandwidth of the user's lowest acceptable quality
	// (the QoS/Quality-of-Presentation floor); admission below this is a
	// rejection.
	MinRate float64
	// Resumed marks a failover re-admission: the user already held a
	// session on a replica that died, and this request restores it here.
	// It goes through the same capacity check as a fresh connection, but
	// is counted separately so failover load is visible.
	Resumed bool
}

// Verdict classifies an admission decision.
type Verdict int

// Admission verdicts.
const (
	// Admitted at full quality.
	Admitted Verdict = iota
	// AdmittedDegraded got in below peak rate but at or above the floor.
	AdmittedDegraded
	// Rejected could not be served above the user's floor.
	Rejected
)

func (v Verdict) String() string {
	switch v {
	case Admitted:
		return "admitted"
	case AdmittedDegraded:
		return "admitted-degraded"
	case Rejected:
		return "rejected"
	default:
		return "unknown"
	}
}

// Decision is the admission controller's answer.
type Decision struct {
	Verdict Verdict
	// Rate is the granted bandwidth (0 when rejected).
	Rate float64
	// ConnID identifies the reservation for Release.
	ConnID int
	// Squeezed lists connections whose rate was reduced to make room for
	// a higher-paying user.
	Squeezed []int
	Reason   string
}

type reservation struct {
	id      int
	user    string
	class   PricingClass
	rate    float64
	minRate float64
}

// Admission is the connection-establishment mechanism: it evaluates the
// network's condition (current reservations vs capacity), the potential load
// of the new connection, the user's acceptable floor and the pricing
// contract.
type Admission struct {
	mu       sync.Mutex
	capacity float64
	nextID   int
	conns    map[int]*reservation
	// reserved is the running sum of every reservation's rate, maintained
	// incrementally on admit/release/squeeze/renegotiate so evaluating a
	// request is O(1) in the number of resident connections — a connect
	// storm of N clients costs O(N), not O(N²).
	reserved float64
	// decisions counts every verdict rendered (admitted + degraded +
	// rejected across classes); the control-plane load harness asserts
	// exactly one per storm client.
	decisions int64
	// counters
	admitted, degraded, rejected map[PricingClass]int
	obs                          *obs.Scope
}

// NewAdmission creates a controller for a server with the given outbound
// capacity in bits/s.
func NewAdmission(capacity float64) *Admission {
	return &Admission{
		capacity: capacity,
		conns:    map[int]*reservation{},
		admitted: map[PricingClass]int{},
		degraded: map[PricingClass]int{},
		rejected: map[PricingClass]int{},
	}
}

// SetObs attaches a telemetry scope: every verdict emits an
// AdmissionDecision trace event (pricing class in the note) and bumps a
// class-labeled counter; the reserved-bandwidth gauge tracks the pool.
// Nil detaches.
func (a *Admission) SetObs(s *obs.Scope) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.obs = s
}

// recordDecisionLocked mirrors one admission decision into the telemetry
// scope.
func (a *Admission) recordDecisionLocked(req ConnRequest, d Decision) {
	if !a.obs.Enabled() {
		return
	}
	verdict := d.Verdict.String()
	class := req.Class.String()
	a.obs.Counter(obs.Label("admission_decisions", "class", class, "verdict", verdict)).Inc()
	if req.Resumed {
		a.obs.Counter("admission_failover_readmits").Inc()
	}
	a.obs.Gauge("admission_reserved_bps").Set(int64(a.reservedLocked()))
	note := fmt.Sprintf("%s class=%s user=%s rate=%.0f", verdict, class, req.User, d.Rate)
	if req.Resumed {
		note += " (failover re-admission)"
	}
	if len(d.Squeezed) > 0 {
		note += fmt.Sprintf(" squeezed=%d", len(d.Squeezed))
	}
	if d.Reason != "" {
		note += ": " + d.Reason
	}
	a.obs.Emit(obs.EvAdmissionDecision, req.User, int64(d.Rate), note)
}

// Reserved returns the total bandwidth currently reserved.
func (a *Admission) Reserved() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reservedLocked()
}

func (a *Admission) reservedLocked() float64 { return a.reserved }

// Decisions returns the total number of admission verdicts rendered.
func (a *Admission) Decisions() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.decisions
}

// Utilization returns reserved/capacity.
func (a *Admission) Utilization() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.capacity <= 0 {
		return 0
	}
	return a.reservedLocked() / a.capacity
}

// OverWatermark reports whether reserved bandwidth has reached frac of
// capacity — the load signal behind the cluster's admission redirects. A
// non-positive frac disables the watermark.
func (a *Admission) OverWatermark(frac float64) bool {
	if frac <= 0 {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.capacity <= 0 {
		return false
	}
	return a.reservedLocked() >= frac*a.capacity
}

// Counts returns (admitted, degraded, rejected) counts for a class.
func (a *Admission) Counts(c PricingClass) (adm, deg, rej int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.admitted[c], a.degraded[c], a.rejected[c]
}

// Request evaluates a connection request.
func (a *Admission) Request(req ConnRequest) Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	d := a.requestLocked(req)
	a.decisions++
	a.recordDecisionLocked(req, d)
	return d
}

func (a *Admission) requestLocked(req ConnRequest) Decision {
	if req.MinRate <= 0 {
		req.MinRate = req.PeakRate
	}
	cap := a.capacity * req.Class.ShareCap()
	used := a.reservedLocked()
	free := cap - used

	if req.PeakRate <= free {
		d := a.admitLocked(req, req.PeakRate, nil)
		d.Verdict = Admitted
		a.admitted[req.Class]++
		return d
	}
	if req.MinRate <= free {
		d := a.admitLocked(req, free, nil)
		d.Verdict = AdmittedDegraded
		d.Reason = "admitted below peak rate: network loaded"
		a.degraded[req.Class]++
		return d
	}
	// A premium user may squeeze lower classes down to their floors.
	if req.Class == Premium {
		squeezed, freed := a.squeezeLocked(req.MinRate - free)
		if freed > 0 {
			free += freed
		}
		if req.MinRate <= free {
			rate := req.PeakRate
			if rate > free {
				rate = free
			}
			d := a.admitLocked(req, rate, squeezed)
			if rate < req.PeakRate {
				d.Verdict = AdmittedDegraded
				d.Reason = "premium admitted by squeezing lower classes"
				a.degraded[req.Class]++
			} else {
				d.Verdict = Admitted
				a.admitted[req.Class]++
			}
			return d
		}
	}
	a.rejected[req.Class]++
	return Decision{Verdict: Rejected, Reason: fmt.Sprintf(
		"insufficient capacity: need ≥ %.0f b/s, free %.0f b/s (class cap %.0f)", req.MinRate, free, cap)}
}

// squeezeLocked reduces Economy then Standard reservations toward their
// floors until need is freed; returns the squeezed conn ids and the total
// freed bandwidth.
func (a *Admission) squeezeLocked(need float64) ([]int, float64) {
	var squeezed []int
	freed := 0.0
	for _, class := range []PricingClass{Economy, Standard} {
		// Deterministic order: ascending id.
		ids := make([]int, 0, len(a.conns))
		for id := range a.conns {
			ids = append(ids, id)
		}
		sortInts(ids)
		for _, id := range ids {
			if freed >= need {
				break
			}
			r := a.conns[id]
			if r.class != class || r.rate <= r.minRate {
				continue
			}
			cut := r.rate - r.minRate
			if cut > need-freed {
				cut = need - freed
			}
			r.rate -= cut
			a.reserved -= cut
			freed += cut
			squeezed = append(squeezed, id)
		}
	}
	return squeezed, freed
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func (a *Admission) admitLocked(req ConnRequest, rate float64, squeezed []int) Decision {
	a.nextID++
	r := &reservation{id: a.nextID, user: req.User, class: req.Class, rate: rate, minRate: req.MinRate}
	a.conns[r.id] = r
	a.reserved += rate
	return Decision{Rate: rate, ConnID: r.id, Squeezed: squeezed}
}

// Renegotiate adjusts a connection's reserved rate mid-session, after the
// connection-oriented service renegotiation of Krishnamurthy & Little
// [KRI 94]: quality grading lowers the stream mix's rate, and renegotiating
// the reservation down returns the difference to the admission pool (so new
// connections can use it); renegotiating up succeeds only when the class's
// capacity share still fits. It reports the rate actually granted.
func (a *Admission) Renegotiate(connID int, newRate float64) (float64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	r, ok := a.conns[connID]
	if !ok {
		return 0, false
	}
	if newRate < r.minRate {
		newRate = r.minRate
	}
	if newRate <= r.rate {
		a.reserved -= r.rate - newRate
		r.rate = newRate
		return r.rate, true
	}
	cap := a.capacity * r.class.ShareCap()
	free := cap - a.reservedLocked()
	grant := r.rate + free
	if grant > newRate {
		grant = newRate
	}
	if grant < r.rate {
		grant = r.rate
	}
	a.reserved += grant - r.rate
	r.rate = grant
	return r.rate, grant == newRate
}

// Release frees a reservation. Unknown ids are ignored.
func (a *Admission) Release(connID int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	r, ok := a.conns[connID]
	if !ok {
		return
	}
	a.reserved -= r.rate
	delete(a.conns, connID)
	if len(a.conns) == 0 {
		// Snap accumulated float error back to exactly zero on an empty
		// pool, so "everything released" reads as reserved == 0.
		a.reserved = 0
	}
}

// Rate returns a connection's current granted rate (0 if unknown) — it may
// have been squeezed since admission.
func (a *Admission) Rate(connID int) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r, ok := a.conns[connID]; ok {
		return r.rate
	}
	return 0
}

// Package transport implements netsim.Net over real operating-system
// sockets, so the same server and client code that runs in simulation also
// runs as live networked binaries (cmd/hermesd, cmd/hermes).
//
// Host names are mapped onto distinct loopback addresses (127.0.0.x), which
// lets several "hosts" — multiple Hermes servers plus browsers — coexist on
// one machine with the same well-known ports the architecture uses.
// Unreliable packets travel as UDP datagrams to the destination address;
// reliable packets travel over per-host-pair TCP connections (one accept
// socket per host on MuxPort) with length-prefixed frames carrying the
// from/to addresses, matching the paper's TCP-for-control/stills,
// RTP-over-UDP-for-audio-video split (Figure 5).
//
// Reliable traffic toward each destination host is owned by a dedicated
// writer goroutine fed through a bounded queue: Send never blocks and never
// holds the transport lock across a socket write, frames are enqueued and
// dropped whole (never partially written), and when a TCP peer goes away
// the writer redials with capped exponential backoff plus jitter. All
// counters are exposed through Metrics.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// MuxPort is the per-host TCP port multiplexing all reliable traffic.
const MuxPort = 4999

const (
	// DefaultQueueSize bounds each destination host's reliable send queue;
	// a full queue drops new frames whole (counted in Metrics.QueueDrops).
	DefaultQueueSize = 256
	// maxFrame bounds one reliable frame on the wire.
	maxFrame = 64 << 20
	// dialTimeout caps one TCP dial attempt.
	dialTimeout = 2 * time.Second
	// backoffBase/backoffMax shape the reconnect schedule: the delay after
	// the n-th consecutive dial failure is drawn from
	// [b/2, b) with b = min(backoffBase·2ⁿ, backoffMax).
	backoffBase = 50 * time.Millisecond
	backoffMax  = 2 * time.Second
)

var errClosed = errors.New("transport: closed")

// Live is a netsim.Net backed by real sockets.
type Live struct {
	mu       sync.Mutex
	hosts    map[string]string // host name → IP
	handlers map[netsim.Addr]netsim.Handler
	udp      map[netsim.Addr]*net.UDPConn
	tcpLn    map[string]net.Listener // per local host
	writers  map[string]*hostWriter  // per destination host
	tcpIn    map[net.Conn]struct{}   // currently open inbound connections
	udpOut   *net.UDPConn            // shared datagram send socket
	closed   bool
	closeCh  chan struct{}
	wg       sync.WaitGroup

	// queueSize is the per-host send queue capacity (DefaultQueueSize;
	// tests shrink it to exercise overflow).
	queueSize int

	obs *obs.Scope
	met liveMetrics
}

// NewLive creates an empty live network with telemetry off.
func NewLive() *Live { return NewLiveObs(nil) }

// NewLiveObs creates an empty live network whose counters live in scope's
// metric registry and whose connection losses emit Reconnect trace events.
// A nil scope disables telemetry.
func NewLiveObs(scope *obs.Scope) *Live {
	return &Live{
		hosts:     map[string]string{},
		handlers:  map[netsim.Addr]netsim.Handler{},
		udp:       map[netsim.Addr]*net.UDPConn{},
		tcpLn:     map[string]net.Listener{},
		writers:   map[string]*hostWriter{},
		tcpIn:     map[net.Conn]struct{}{},
		closeCh:   make(chan struct{}),
		queueSize: DefaultQueueSize,
		obs:       scope,
		met:       newLiveMetrics(scope),
	}
}

// hostIP returns (assigning if needed) the loopback IP for a host name.
func (l *Live) hostIP(host string) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hostIPLocked(host)
}

func (l *Live) hostIPLocked(host string) string {
	if ip, ok := l.hosts[host]; ok {
		return ip
	}
	// Derive a stable loopback address from the host name so independent
	// processes (cmd/hermesd and cmd/hermes) agree without coordination;
	// explicit MapHost entries override on collision.
	h := uint32(2166136261)
	for i := 0; i < len(host); i++ {
		h ^= uint32(host[i])
		h *= 16777619
	}
	ip := fmt.Sprintf("127.0.%d.%d", 1+h%200, 1+(h>>8)%250)
	l.hosts[host] = ip
	return ip
}

// MapHost pins a host name to a specific IP (overriding the derived
// loopback address); must be called before the host is used.
func (l *Live) MapHost(host, ip string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hosts[host] = ip
}

// ParseHostMap parses "host=ip,host=ip" flag syntax into MapHost calls.
func (l *Live) ParseHostMap(s string) error {
	if s == "" {
		return nil
	}
	for _, part := range splitComma(s) {
		i := indexByte(part, '=')
		if i <= 0 || i == len(part)-1 {
			return fmt.Errorf("transport: bad host mapping %q", part)
		}
		l.MapHost(part[:i], part[i+1:])
	}
	return nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Listen implements netsim.Net. The first listen on a host also starts its
// reliable-traffic TCP accept loop. A bind failure (either the host's TCP
// mux or the address's UDP socket) is returned to the caller and leaves no
// handler registered for the address; a TCP mux that did come up stays up
// for the host, since other addresses on the host share it.
func (l *Live) Listen(addr netsim.Addr, h netsim.Handler) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if h == nil {
		delete(l.handlers, addr)
		if c, ok := l.udp[addr]; ok {
			c.Close()
			delete(l.udp, addr)
		}
		return nil
	}
	if l.closed {
		return errClosed
	}
	port, ok := portOf(addr)
	if !ok {
		return fmt.Errorf("transport: listen %q: invalid port", addr)
	}
	host := addr.Host()
	ip := l.hostIPLocked(host)
	if l.tcpLn[host] == nil {
		ln, err := net.Listen("tcp", fmt.Sprintf("%s:%d", ip, MuxPort))
		if err != nil {
			return fmt.Errorf("transport: listen %q: reliable mux: %w", addr, err)
		}
		l.tcpLn[host] = ln
		l.wg.Add(1)
		go l.acceptLoop(ln)
	}
	if l.udp[addr] == nil {
		uc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(ip), Port: port})
		if err != nil {
			return fmt.Errorf("transport: listen %q: datagram socket: %w", addr, err)
		}
		l.udp[addr] = uc
		l.wg.Add(1)
		go l.udpLoop(uc)
	}
	l.handlers[addr] = h
	return nil
}

// portOf extracts and validates the port of an address. It rejects
// addresses without a colon, with non-digit port characters, or with ports
// outside [1, 65535].
func portOf(addr netsim.Addr) (int, bool) {
	s := string(addr)
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] != ':' {
			continue
		}
		p, err := strconv.Atoi(s[i+1:])
		if err != nil || p < 1 || p > 65535 {
			return 0, false
		}
		return p, true
	}
	return 0, false
}

func (l *Live) udpLoop(uc *net.UDPConn) {
	defer l.wg.Done()
	buf := make([]byte, 65535)
	for {
		n, _, err := uc.ReadFromUDP(buf)
		if err != nil {
			return
		}
		l.met.udpDatagramsRecv.Inc()
		l.met.udpBytesRecv.Add(int64(n))
		// The UDP payload is framed with from/to like TCP so the handler
		// sees the logical addresses.
		pkt, ok := decodeFrame(buf[:n])
		if !ok {
			l.met.decodeErrors.Inc()
			continue
		}
		l.dispatch(pkt)
	}
}

func (l *Live) acceptLoop(ln net.Listener) {
	defer l.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.tcpIn[conn] = struct{}{}
		l.met.acceptedConns.Inc()
		l.wg.Add(1)
		l.mu.Unlock()
		go l.readLoop(conn)
	}
}

func (l *Live) readLoop(conn net.Conn) {
	defer l.wg.Done()
	defer func() {
		conn.Close()
		l.mu.Lock()
		delete(l.tcpIn, conn)
		l.mu.Unlock()
	}()
	for {
		var sz [4]byte
		if _, err := io.ReadFull(conn, sz[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(sz[:])
		if n > maxFrame {
			return
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		l.met.tcpFramesRecv.Inc()
		l.met.tcpBytesRecv.Add(int64(4 + len(frame)))
		pkt, ok := decodeFrame(frame)
		if !ok {
			l.met.decodeErrors.Inc()
			continue
		}
		l.dispatch(pkt)
	}
}

func (l *Live) dispatch(pkt netsim.Packet) {
	l.mu.Lock()
	h := l.handlers[pkt.To]
	l.mu.Unlock()
	if h != nil {
		h(pkt)
	}
}

// encodeFrame packs from/to/payload into one frame (without the TCP length
// prefix).
func encodeFrame(pkt netsim.Packet) []byte {
	from, to := []byte(pkt.From), []byte(pkt.To)
	out := make([]byte, 2+len(from)+2+len(to)+len(pkt.Payload))
	i := 0
	binary.BigEndian.PutUint16(out[i:], uint16(len(from)))
	i += 2
	i += copy(out[i:], from)
	binary.BigEndian.PutUint16(out[i:], uint16(len(to)))
	i += 2
	i += copy(out[i:], to)
	copy(out[i:], pkt.Payload)
	return out
}

func decodeFrame(buf []byte) (netsim.Packet, bool) {
	if len(buf) < 2 {
		return netsim.Packet{}, false
	}
	fl := int(binary.BigEndian.Uint16(buf))
	if fl == 0 || len(buf) < 2+fl+2 {
		return netsim.Packet{}, false
	}
	from := netsim.Addr(buf[2 : 2+fl])
	rest := buf[2+fl:]
	tl := int(binary.BigEndian.Uint16(rest))
	if tl == 0 || len(rest) < 2+tl {
		return netsim.Packet{}, false
	}
	to := netsim.Addr(rest[2 : 2+tl])
	payload := append([]byte(nil), rest[2+tl:]...)
	return netsim.Packet{From: from, To: to, Payload: payload, SentAt: time.Now()}, true
}

// Send implements netsim.Net. The error reports local refusal only — a
// closed transport, an unparseable destination, a saturated host queue, or
// a failed datagram write; an accepted frame may still be lost in flight.
func (l *Live) Send(pkt netsim.Packet) error {
	pkt.SentAt = time.Now()
	if pkt.Reliable {
		return l.sendTCP(pkt)
	}
	return l.sendUDP(pkt)
}

func (l *Live) sendUDP(pkt netsim.Packet) error {
	port, ok := portOf(pkt.To)
	if !ok {
		l.met.udpSendErrors.Inc()
		return fmt.Errorf("transport: bad destination %q", pkt.To)
	}
	conn, err := l.udpSender()
	if err != nil {
		return err
	}
	raddr := &net.UDPAddr{IP: net.ParseIP(l.hostIP(pkt.To.Host())), Port: port}
	buf := encodeFrame(pkt)
	if _, err := conn.WriteToUDP(buf, raddr); err != nil {
		l.met.udpSendErrors.Inc()
		return fmt.Errorf("transport: udp send: %w", err)
	}
	l.met.udpDatagramsSent.Inc()
	l.met.udpBytesSent.Add(int64(len(buf)))
	return nil
}

// udpSender returns the shared outbound datagram socket, creating it on
// first use (one socket for all destinations instead of one dial per
// packet).
func (l *Live) udpSender() (*net.UDPConn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, errClosed
	}
	if l.udpOut == nil {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
		if err != nil {
			l.met.udpSendErrors.Inc()
			return nil, err
		}
		l.udpOut = c
	}
	return l.udpOut, nil
}

// sendTCP hands the frame to the destination host's writer goroutine. The
// queue is bounded: when it is full the frame is dropped whole and counted,
// so a stalled peer back-pressures only its own host, never the caller and
// never the other destinations.
func (l *Live) sendTCP(pkt netsim.Packet) error {
	frame := encodeFrame(pkt)
	buf := make([]byte, 4+len(frame))
	binary.BigEndian.PutUint32(buf, uint32(len(frame)))
	copy(buf[4:], frame)

	host := pkt.To.Host()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errClosed
	}
	w := l.writers[host]
	if w == nil {
		w = &hostWriter{l: l, host: host, queue: make(chan []byte, l.queueSize)}
		l.writers[host] = w
		l.wg.Add(1)
		go w.run()
	}
	l.mu.Unlock()

	select {
	case w.queue <- buf:
		l.met.queueHighWater.Observe(int64(len(w.queue)))
		return nil
	default:
		l.met.queueDrops.Inc()
		return fmt.Errorf("transport: queue full for host %s", host)
	}
}

// hostWriter owns all reliable traffic toward one destination host: one
// goroutine, one connection, one bounded queue.
type hostWriter struct {
	l     *Live
	host  string
	queue chan []byte

	mu   sync.Mutex
	conn net.Conn // current outbound connection (nil between dials)
}

func (w *hostWriter) run() {
	defer w.l.wg.Done()
	defer w.closeConn()
	rng := rand.New(rand.NewSource(int64(time.Now().UnixNano())))
	for {
		select {
		case <-w.l.closeCh:
			return
		case buf := <-w.queue:
			if !w.writeFrame(buf, rng) {
				return
			}
		}
	}
}

// writeFrame delivers one full frame, redialing as needed. A frame is
// retried across reconnects until it is written in full on one connection;
// the receiver parses each connection independently, so it only ever
// observes complete frames. Returns false when the transport closed first.
func (w *hostWriter) writeFrame(buf []byte, rng *rand.Rand) bool {
	for {
		select {
		case <-w.l.closeCh:
			return false
		default:
		}
		conn := w.currentConn()
		if conn == nil {
			var ok bool
			conn, ok = w.dial(rng)
			if !ok {
				return false
			}
		}
		if _, err := conn.Write(buf); err != nil {
			w.dropConn(conn)
			w.l.met.reconnects.Inc()
			w.l.obs.Emit(obs.EvReconnect, w.host, 0, "write error; redialing")
			continue
		}
		w.l.met.tcpFramesSent.Inc()
		w.l.met.tcpBytesSent.Add(int64(len(buf)))
		return true
	}
}

// dial connects to the host's mux, retrying failed attempts on a capped
// exponential backoff with jitter. Returns ok=false when the transport
// closed before a connection came up.
func (w *hostWriter) dial(rng *rand.Rand) (net.Conn, bool) {
	backoff := backoffBase
	for {
		addr := fmt.Sprintf("%s:%d", w.l.hostIP(w.host), MuxPort)
		c, err := net.DialTimeout("tcp", addr, dialTimeout)
		if err == nil {
			w.setConn(c)
			select {
			case <-w.l.closeCh:
				// Close ran while the dial was in flight and could not see
				// this connection; tear it down ourselves.
				w.dropConn(c)
				return nil, false
			default:
			}
			return c, true
		}
		w.l.met.dialFailures.Inc()
		w.l.obs.Emit(obs.EvReconnect, w.host, 1, "dial failed; backing off")
		// Jitter over [backoff/2, backoff) decorrelates many writers
		// redialing the same dead peer.
		sleep := backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)))
		select {
		case <-w.l.closeCh:
			return nil, false
		case <-time.After(sleep):
		}
		backoff *= 2
		if backoff > backoffMax {
			backoff = backoffMax
		}
	}
}

func (w *hostWriter) currentConn() net.Conn {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.conn
}

// setConn installs a freshly dialed connection and starts its peer-close
// probe. Outbound connections are write-only — the peer never sends frames
// back on them (its replies travel over its own writer connection) — so a
// returning Read means the peer went away. Dropping the connection at that
// moment matters because the first write into a dead socket succeeds
// silently (the kernel buffers it until the RST arrives) and the frame
// would be lost without an error to trigger the redial.
func (w *hostWriter) setConn(c net.Conn) {
	w.mu.Lock()
	w.conn = c
	w.mu.Unlock()
	// wg.Add is safe here: setConn runs on the writer goroutine, which
	// itself holds a wg count, so Close cannot have passed wg.Wait yet.
	w.l.wg.Add(1)
	go func() {
		defer w.l.wg.Done()
		io.Copy(io.Discard, c)
		w.mu.Lock()
		stale := w.conn == c
		w.mu.Unlock()
		if stale {
			// The probe, not a failed write, discovered the loss.
			w.l.met.reconnects.Inc()
			w.l.obs.Emit(obs.EvReconnect, w.host, 0, "peer closed; redialing")
		}
		w.dropConn(c)
	}()
}

// dropConn closes a broken connection and clears it if still current.
func (w *hostWriter) dropConn(c net.Conn) {
	c.Close()
	w.mu.Lock()
	if w.conn == c {
		w.conn = nil
	}
	w.mu.Unlock()
}

func (w *hostWriter) closeConn() {
	w.mu.Lock()
	if w.conn != nil {
		w.conn.Close()
		w.conn = nil
	}
	w.mu.Unlock()
}

// Close shuts every socket down and waits for the loops to exit. Writer
// goroutines blocked in a backoff sleep or a socket write are interrupted.
func (l *Live) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	close(l.closeCh)
	for _, ln := range l.tcpLn {
		ln.Close()
	}
	for _, c := range l.udp {
		c.Close()
	}
	if l.udpOut != nil {
		l.udpOut.Close()
	}
	for c := range l.tcpIn {
		c.Close()
	}
	writers := make([]*hostWriter, 0, len(l.writers))
	for _, w := range l.writers {
		writers = append(writers, w)
	}
	l.mu.Unlock()
	for _, w := range writers {
		w.closeConn()
	}
	l.wg.Wait()
}

var _ netsim.Net = (*Live)(nil)

// Package transport implements netsim.Net over real operating-system
// sockets, so the same server and client code that runs in simulation also
// runs as live networked binaries (cmd/hermesd, cmd/hermes).
//
// Host names are mapped onto distinct loopback addresses (127.0.0.x), which
// lets several "hosts" — multiple Hermes servers plus browsers — coexist on
// one machine with the same well-known ports the architecture uses.
// Unreliable packets travel as UDP datagrams to the destination address;
// reliable packets travel over per-host-pair TCP connections (one accept
// socket per host on MuxPort) with length-prefixed frames carrying the
// from/to addresses, matching the paper's TCP-for-control/stills,
// RTP-over-UDP-for-audio-video split (Figure 5).
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/netsim"
)

// MuxPort is the per-host TCP port multiplexing all reliable traffic.
const MuxPort = 4999

// Live is a netsim.Net backed by real sockets.
type Live struct {
	mu       sync.Mutex
	hosts    map[string]string // host name → IP
	nextIP   int
	handlers map[netsim.Addr]netsim.Handler
	udp      map[netsim.Addr]*net.UDPConn
	tcpLn    map[string]net.Listener // per local host
	tcpOut   map[string]net.Conn     // per destination host
	tcpIn    []net.Conn              // accepted inbound connections
	closed   bool
	wg       sync.WaitGroup
}

// NewLive creates an empty live network.
func NewLive() *Live {
	return &Live{
		hosts:    map[string]string{},
		handlers: map[netsim.Addr]netsim.Handler{},
		udp:      map[netsim.Addr]*net.UDPConn{},
		tcpLn:    map[string]net.Listener{},
		tcpOut:   map[string]net.Conn{},
	}
}

// hostIP returns (assigning if needed) the loopback IP for a host name.
func (l *Live) hostIP(host string) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hostIPLocked(host)
}

func (l *Live) hostIPLocked(host string) string {
	if ip, ok := l.hosts[host]; ok {
		return ip
	}
	// Derive a stable loopback address from the host name so independent
	// processes (cmd/hermesd and cmd/hermes) agree without coordination;
	// explicit MapHost entries override on collision.
	h := uint32(2166136261)
	for i := 0; i < len(host); i++ {
		h ^= uint32(host[i])
		h *= 16777619
	}
	ip := fmt.Sprintf("127.0.%d.%d", 1+h%200, 1+(h>>8)%250)
	l.hosts[host] = ip
	return ip
}

// MapHost pins a host name to a specific IP (overriding the derived
// loopback address); must be called before the host is used.
func (l *Live) MapHost(host, ip string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hosts[host] = ip
}

// ParseHostMap parses "host=ip,host=ip" flag syntax into MapHost calls.
func (l *Live) ParseHostMap(s string) error {
	if s == "" {
		return nil
	}
	for _, part := range splitComma(s) {
		i := indexByte(part, '=')
		if i <= 0 || i == len(part)-1 {
			return fmt.Errorf("transport: bad host mapping %q", part)
		}
		l.MapHost(part[:i], part[i+1:])
	}
	return nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Listen implements netsim.Net. The first listen on a host also starts its
// reliable-traffic TCP accept loop.
func (l *Live) Listen(addr netsim.Addr, h netsim.Handler) {
	l.mu.Lock()
	if h == nil {
		delete(l.handlers, addr)
		if c, ok := l.udp[addr]; ok {
			c.Close()
			delete(l.udp, addr)
		}
		l.mu.Unlock()
		return
	}
	l.handlers[addr] = h
	host := addr.Host()
	ip := l.hostIPLocked(host)
	needTCP := l.tcpLn[host] == nil
	needUDP := l.udp[addr] == nil
	l.mu.Unlock()

	if needTCP {
		ln, err := net.Listen("tcp", fmt.Sprintf("%s:%d", ip, MuxPort))
		if err == nil {
			l.mu.Lock()
			l.tcpLn[host] = ln
			l.mu.Unlock()
			l.wg.Add(1)
			go l.acceptLoop(ln)
		}
	}
	if needUDP {
		port := portOf(addr)
		uc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(ip), Port: port})
		if err == nil {
			l.mu.Lock()
			l.udp[addr] = uc
			l.mu.Unlock()
			l.wg.Add(1)
			go l.udpLoop(addr, uc)
		}
	}
}

func portOf(addr netsim.Addr) int {
	s := string(addr)
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ':' {
			p := 0
			for _, c := range s[i+1:] {
				p = p*10 + int(c-'0')
			}
			return p
		}
	}
	return 0
}

func (l *Live) udpLoop(addr netsim.Addr, uc *net.UDPConn) {
	defer l.wg.Done()
	buf := make([]byte, 65535)
	for {
		n, _, err := uc.ReadFromUDP(buf)
		if err != nil {
			return
		}
		payload := buf[:n]
		// The UDP payload is framed with from/to like TCP so the handler
		// sees the logical addresses.
		pkt, ok := decodeFrame(payload)
		if !ok {
			continue
		}
		l.dispatch(pkt)
	}
}

func (l *Live) acceptLoop(ln net.Listener) {
	defer l.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.tcpIn = append(l.tcpIn, conn)
		l.mu.Unlock()
		l.wg.Add(1)
		go l.readLoop(conn)
	}
}

func (l *Live) readLoop(conn net.Conn) {
	defer l.wg.Done()
	defer conn.Close()
	for {
		var sz [4]byte
		if _, err := io.ReadFull(conn, sz[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(sz[:])
		if n > 64<<20 {
			return
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		pkt, ok := decodeFrame(frame)
		if !ok {
			continue
		}
		l.dispatch(pkt)
	}
}

func (l *Live) dispatch(pkt netsim.Packet) {
	l.mu.Lock()
	h := l.handlers[pkt.To]
	l.mu.Unlock()
	if h != nil {
		h(pkt)
	}
}

// encodeFrame packs from/to/payload into one frame (without the TCP length
// prefix).
func encodeFrame(pkt netsim.Packet) []byte {
	from, to := []byte(pkt.From), []byte(pkt.To)
	out := make([]byte, 2+len(from)+2+len(to)+len(pkt.Payload))
	i := 0
	binary.BigEndian.PutUint16(out[i:], uint16(len(from)))
	i += 2
	i += copy(out[i:], from)
	binary.BigEndian.PutUint16(out[i:], uint16(len(to)))
	i += 2
	i += copy(out[i:], to)
	copy(out[i:], pkt.Payload)
	return out
}

func decodeFrame(buf []byte) (netsim.Packet, bool) {
	if len(buf) < 2 {
		return netsim.Packet{}, false
	}
	fl := int(binary.BigEndian.Uint16(buf))
	if len(buf) < 2+fl+2 {
		return netsim.Packet{}, false
	}
	from := netsim.Addr(buf[2 : 2+fl])
	rest := buf[2+fl:]
	tl := int(binary.BigEndian.Uint16(rest))
	if len(rest) < 2+tl {
		return netsim.Packet{}, false
	}
	to := netsim.Addr(rest[2 : 2+tl])
	payload := append([]byte(nil), rest[2+tl:]...)
	return netsim.Packet{From: from, To: to, Payload: payload, SentAt: time.Now()}, true
}

// Send implements netsim.Net.
func (l *Live) Send(pkt netsim.Packet) {
	pkt.SentAt = time.Now()
	if pkt.Reliable {
		l.sendTCP(pkt)
		return
	}
	l.sendUDP(pkt)
}

func (l *Live) sendUDP(pkt netsim.Packet) {
	ip := l.hostIP(pkt.To.Host())
	raddr := &net.UDPAddr{IP: net.ParseIP(ip), Port: portOf(pkt.To)}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return
	}
	defer conn.Close()
	conn.Write(encodeFrame(pkt))
}

func (l *Live) sendTCP(pkt netsim.Packet) {
	host := pkt.To.Host()
	l.mu.Lock()
	conn := l.tcpOut[host]
	l.mu.Unlock()
	if conn == nil {
		ip := l.hostIP(host)
		c, err := net.DialTimeout("tcp", fmt.Sprintf("%s:%d", ip, MuxPort), 2*time.Second)
		if err != nil {
			return
		}
		l.mu.Lock()
		if l.tcpOut[host] == nil {
			l.tcpOut[host] = c
			conn = c
		} else {
			c.Close()
			conn = l.tcpOut[host]
		}
		l.mu.Unlock()
	}
	frame := encodeFrame(pkt)
	buf := make([]byte, 4+len(frame))
	binary.BigEndian.PutUint32(buf, uint32(len(frame)))
	copy(buf[4:], frame)
	l.mu.Lock()
	_, err := conn.Write(buf)
	l.mu.Unlock()
	if err != nil {
		l.mu.Lock()
		if l.tcpOut[host] == conn {
			delete(l.tcpOut, host)
		}
		l.mu.Unlock()
		conn.Close()
	}
}

// Close shuts every socket down and waits for the loops to exit.
func (l *Live) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	for _, ln := range l.tcpLn {
		ln.Close()
	}
	for _, c := range l.udp {
		c.Close()
	}
	for _, c := range l.tcpOut {
		c.Close()
	}
	for _, c := range l.tcpIn {
		c.Close()
	}
	l.mu.Unlock()
	l.wg.Wait()
}

var _ netsim.Net = (*Live)(nil)

package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/hml"
	"repro/internal/netsim"
	"repro/internal/qos"
	"repro/internal/server"

	hclient "repro/internal/client"
)

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition never met")
}

func TestFrameRoundTrip(t *testing.T) {
	pkt := netsim.Packet{From: "a:1", To: "b:2", Payload: []byte("hello")}
	got, ok := decodeFrame(encodeFrame(pkt))
	if !ok || got.From != pkt.From || got.To != pkt.To || string(got.Payload) != "hello" {
		t.Fatalf("round trip = %+v %v", got, ok)
	}
	if _, ok := decodeFrame([]byte{0}); ok {
		t.Fatal("short frame accepted")
	}
	if _, ok := decodeFrame([]byte{0, 5, 'x'}); ok {
		t.Fatal("truncated from accepted")
	}
}

func TestHostIPAssignment(t *testing.T) {
	l := NewLive()
	defer l.Close()
	a := l.hostIP("alpha")
	b := l.hostIP("beta")
	if a == b {
		t.Fatal("hosts share an IP")
	}
	if l.hostIP("alpha") != a {
		t.Fatal("IP not stable")
	}
}

func TestPortOf(t *testing.T) {
	cases := []struct {
		addr netsim.Addr
		port int
		ok   bool
	}{
		{"host:1234", 1234, true},
		{"host:1", 1, true},
		{"host:65535", 65535, true},
		{"a:b:443", 443, true}, // last colon wins
		{"noport", 0, false},
		{"host:", 0, false},
		{"host:9x9", 0, false},
		{"host:x99", 0, false},
		{"host:0", 0, false},
		{"host:-1", 0, false},
		{"host:65536", 0, false},
		{"host: 80", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		p, ok := portOf(c.addr)
		if p != c.port || ok != c.ok {
			t.Errorf("portOf(%q) = %d, %v; want %d, %v", c.addr, p, ok, c.port, c.ok)
		}
	}
}

func TestDecodeFrameMalformed(t *testing.T) {
	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"one byte", []byte{0}},
		{"zero-length from", encodeFrame(netsim.Packet{From: "", To: "b:2", Payload: []byte("x")})},
		{"zero-length to", encodeFrame(netsim.Packet{From: "a:1", To: "", Payload: []byte("x")})},
		{"truncated from", []byte{0, 5, 'x'}},
		{"missing to length", []byte{0, 3, 'a', ':', '1'}},
		{"truncated to", []byte{0, 3, 'a', ':', '1', 0, 9, 'b'}},
	}
	for _, c := range cases {
		if _, ok := decodeFrame(c.buf); ok {
			t.Errorf("decodeFrame accepted %s", c.name)
		}
	}
	// A frame truncated anywhere inside a valid encoding must not parse
	// into a deliverable packet with a non-empty To.
	full := encodeFrame(netsim.Packet{From: "a:1", To: "b:2", Payload: []byte("payload")})
	for i := 0; i < 9; i++ { // 2+3+2+3 = address section is 10 bytes
		if pkt, ok := decodeFrame(full[:i]); ok && (pkt.From == "" || pkt.To == "") {
			t.Errorf("truncated frame [:%d] decoded to %+v", i, pkt)
		}
	}
}

func TestUDPAndTCPDelivery(t *testing.T) {
	l := NewLive()
	defer l.Close()
	var mu sync.Mutex
	var got []netsim.Packet
	l.Listen("recv:8000", func(p netsim.Packet) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	})
	time.Sleep(50 * time.Millisecond)
	l.Send(netsim.Packet{From: "send:1", To: "recv:8000", Payload: []byte("udp"), Reliable: false})
	l.Send(netsim.Packet{From: "send:1", To: "recv:8000", Payload: []byte("tcp"), Reliable: true})
	waitFor(t, 3*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 2
	})
	mu.Lock()
	defer mu.Unlock()
	seen := map[string]bool{}
	for _, p := range got {
		seen[string(p.Payload)] = true
		if p.From != "send:1" {
			t.Fatalf("from = %q", p.From)
		}
	}
	if !seen["udp"] || !seen["tcp"] {
		t.Fatalf("payloads = %v", seen)
	}
}

func TestUnlistenStopsDelivery(t *testing.T) {
	l := NewLive()
	defer l.Close()
	n := 0
	var mu sync.Mutex
	l.Listen("r:8100", func(netsim.Packet) { mu.Lock(); n++; mu.Unlock() })
	time.Sleep(50 * time.Millisecond)
	l.Send(netsim.Packet{From: "s:1", To: "r:8100", Payload: []byte("x"), Reliable: true})
	waitFor(t, 2*time.Second, func() bool { mu.Lock(); defer mu.Unlock(); return n == 1 })
	l.Listen("r:8100", nil)
	l.Send(netsim.Packet{From: "s:1", To: "r:8100", Payload: []byte("x"), Reliable: true})
	time.Sleep(100 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if n != 1 {
		t.Fatalf("deliveries = %d", n)
	}
}

// TestLiveEndToEndSession runs the real server and browser over OS sockets
// on the wall clock: the same code path as cmd/hermesd + cmd/hermes.
func TestLiveEndToEndSession(t *testing.T) {
	if testing.Short() {
		t.Skip("live sockets in -short mode")
	}
	l := NewLive()
	defer l.Close()
	clk := clock.NewWall()
	users := auth.NewDB()
	users.Subscribe(auth.User{Name: "live", Password: "pw", Email: "l@x", Class: qos.Standard}, clk.Now())
	db := server.NewDatabase()
	// A short scenario so the test stays fast.
	if err := db.Put("clip", `<TITLE>live clip</TITLE>
<AU_VI SOURCE=au/a SOURCE=vi/v ID=a ID=v STARTIME=0 DURATION=2> </AU_VI>`, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := server.New("live-server", clk, l, users, db, server.Options{PreRoll: 300 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}

	c, err := hclient.New("live-viewer", clk, l, hclient.Options{
		User: "live", Password: "pw",
		Window:          200 * time.Millisecond,
		MaxInitialDelay: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Connect("live-server")
	waitFor(t, 3*time.Second, func() bool {
		lc := c.LastConnect()
		return lc != nil && lc.OK
	})
	c.RequestDoc("clip")
	waitFor(t, 10*time.Second, func() bool {
		p := c.Player()
		return p != nil && p.Finished()
	})
	rep := c.Player().Report()
	a := rep.Streams["a"]
	if a.Plays < a.Expected/2 {
		t.Fatalf("live plays = %d/%d (gaps %d)", a.Plays, a.Expected, a.Gaps)
	}
	_ = hml.Figure2Source
}

func TestDerivedHostIPsStableAcrossInstances(t *testing.T) {
	a, b := NewLive(), NewLive()
	defer a.Close()
	defer b.Close()
	if a.hostIP("hermes-a") != b.hostIP("hermes-a") {
		t.Fatal("derived IPs differ across processes")
	}
}

func TestMapHostOverrides(t *testing.T) {
	l := NewLive()
	defer l.Close()
	l.MapHost("x", "127.0.0.42")
	if l.hostIP("x") != "127.0.0.42" {
		t.Fatal("MapHost ignored")
	}
	if err := l.ParseHostMap("a=127.0.0.5,b=127.0.0.6"); err != nil {
		t.Fatal(err)
	}
	if l.hostIP("a") != "127.0.0.5" || l.hostIP("b") != "127.0.0.6" {
		t.Fatal("ParseHostMap ignored")
	}
	if err := l.ParseHostMap("bad"); err == nil {
		t.Fatal("bad mapping accepted")
	}
	if err := l.ParseHostMap("x="); err == nil {
		t.Fatal("empty ip accepted")
	}
}

package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netsim"
)

// TestListenErrorReported verifies that a bind failure surfaces to the
// caller instead of being silently swallowed (run with a conflicting
// listener already holding the port).
func TestListenErrorReported(t *testing.T) {
	l := NewLive()
	defer l.Close()

	// Occupy the host's reliable mux port out-of-band.
	ip := l.hostIP("conflict-host")
	ln, err := net.Listen("tcp", fmt.Sprintf("%s:%d", ip, MuxPort))
	if err != nil {
		t.Skipf("cannot bind %s:%d: %v", ip, MuxPort, err)
	}
	defer ln.Close()
	if err := l.Listen("conflict-host:8300", func(netsim.Packet) {}); err == nil {
		t.Fatal("Listen succeeded despite the mux port being taken")
	}
	// The failed listen must leave no handler behind.
	l.mu.Lock()
	_, registered := l.handlers["conflict-host:8300"]
	l.mu.Unlock()
	if registered {
		t.Fatal("handler registered despite listen failure")
	}

	// A UDP conflict on the specific address must also surface.
	ip2 := l.hostIP("conflict-udp")
	uc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(ip2), Port: 8301})
	if err != nil {
		t.Skipf("cannot bind udp %s:8301: %v", ip2, err)
	}
	defer uc.Close()
	if err := l.Listen("conflict-udp:8301", func(netsim.Packet) {}); err == nil {
		t.Fatal("Listen succeeded despite the datagram port being taken")
	}

	// Invalid ports are rejected up front.
	if err := l.Listen("h:9x9", func(netsim.Packet) {}); err == nil {
		t.Fatal("Listen accepted a garbage port")
	}
	if err := l.Listen("h:70000", func(netsim.Packet) {}); err == nil {
		t.Fatal("Listen accepted an out-of-range port")
	}
}

// TestConcurrentStressMultiHost hammers several destination hosts from many
// goroutines while a reader polls Metrics; run under -race this checks the
// writer-per-host concurrency design end to end. Every reliable frame must
// either be delivered or be accounted as a queue drop.
func TestConcurrentStressMultiHost(t *testing.T) {
	l := NewLive()
	defer l.Close()

	hosts := []string{"stress-a", "stress-b", "stress-c"}
	var reliable, unreliable atomic.Int64
	for _, h := range hosts {
		addr := netsim.MakeAddr(h, 8400)
		if err := l.Listen(addr, func(p netsim.Packet) {
			if len(p.Payload) > 0 && p.Payload[0] == 'R' {
				reliable.Add(1)
			} else {
				unreliable.Add(1)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var pollers sync.WaitGroup
	pollers.Add(1)
	go func() { // concurrent metrics reader
		defer pollers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = l.Metrics()
				time.Sleep(time.Millisecond)
			}
		}
	}()

	const senders, perSender = 8, 150
	var sendersWG sync.WaitGroup
	for s := 0; s < senders; s++ {
		sendersWG.Add(1)
		go func(s int) {
			defer sendersWG.Done()
			for i := 0; i < perSender; i++ {
				to := netsim.MakeAddr(hosts[(s+i)%len(hosts)], 8400)
				l.Send(netsim.Packet{
					From: "stress-src:1", To: to,
					Payload:  []byte(fmt.Sprintf("R %d/%d", s, i)),
					Reliable: true,
				})
				l.Send(netsim.Packet{
					From: "stress-src:1", To: to,
					Payload: []byte(fmt.Sprintf("U %d/%d", s, i)),
				})
			}
		}(s)
	}
	sendersWG.Wait()

	// Delivery, the writer's sent counter and the read loop's recv counter
	// each settle asynchronously; wait until the books balance.
	const totalReliable = senders * perSender
	waitFor(t, 10*time.Second, func() bool {
		m := l.Metrics()
		kept := totalReliable - m.QueueDrops
		return reliable.Load() == kept && m.TCPFramesSent == kept && m.TCPFramesRecv >= kept
	})
	close(stop)
	pollers.Wait()

	m := l.Metrics()
	if m.QueueHighWater < 1 {
		t.Fatal("queue high-water never observed")
	}
	if m.UDPDatagramsSent == 0 || m.UDPDatagramsRecv == 0 {
		t.Fatalf("udp path unused: %+v", m)
	}
}

// TestReconnectAfterPeerRestart kills a reliable peer mid-conversation and
// verifies the sender's writer redials (with backoff) once a new peer comes
// up on the same address, without the sender ever blocking.
func TestReconnectAfterPeerRestart(t *testing.T) {
	const peerIP = "127.0.0.99"

	sender := NewLive()
	defer sender.Close()
	sender.MapHost("peer", peerIP)

	peer1 := NewLive()
	peer1.MapHost("peer", peerIP)
	var got1 atomic.Int64
	if err := peer1.Listen("peer:8500", func(netsim.Packet) { got1.Add(1) }); err != nil {
		t.Fatal(err)
	}

	send := func(payload string) {
		sender.Send(netsim.Packet{
			From: "origin:1", To: "peer:8500",
			Payload: []byte(payload), Reliable: true,
		})
	}
	send("before restart")
	waitFor(t, 5*time.Second, func() bool { return got1.Load() == 1 })

	// The peer goes away; sends now hit a dead connection. The writer must
	// drop the broken connection and keep redialing with backoff.
	peer1.Close()
	send("into the void")

	peer2 := NewLive()
	defer peer2.Close()
	peer2.MapHost("peer", peerIP)
	var got2 atomic.Int64
	waitFor(t, 5*time.Second, func() bool {
		return peer2.Listen("peer:8500", func(netsim.Packet) { got2.Add(1) }) == nil
	})

	// Keep offering fresh frames: the frame sent against the dying
	// connection may have been accepted by the kernel and lost with it.
	waitFor(t, 10*time.Second, func() bool {
		send("after restart")
		time.Sleep(20 * time.Millisecond)
		return got2.Load() > 0
	})

	m := sender.Metrics()
	if m.Reconnects+m.DialFailures == 0 {
		t.Fatalf("restart left no trace in metrics: %+v", m)
	}
}

// TestQueueOverflowDropsWholeFrames fills a tiny queue toward an
// unreachable host: excess frames are dropped whole and counted, the caller
// never blocks, and Close interrupts the writer's dial backoff promptly.
func TestQueueOverflowDropsWholeFrames(t *testing.T) {
	l := NewLive()
	l.queueSize = 1
	const frames = 20
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < frames; i++ {
			l.Send(netsim.Packet{
				From: "origin:1", To: "black-hole:8600",
				Payload: []byte("frame"), Reliable: true,
			})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Send blocked on a full queue")
	}
	waitFor(t, 5*time.Second, func() bool {
		m := l.Metrics()
		return m.QueueDrops > 0 && m.DialFailures > 0
	})

	start := time.Now()
	l.Close()
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("Close took %v with a writer stuck in backoff", d)
	}
}

// TestSendAfterCloseIsSafe documents the shutdown contract: Send and Listen
// on a closed transport are no-ops / errors, never panics.
func TestSendAfterCloseIsSafe(t *testing.T) {
	l := NewLive()
	l.Close()
	l.Send(netsim.Packet{From: "a:1", To: "b:2", Payload: []byte("x"), Reliable: true})
	l.Send(netsim.Packet{From: "a:1", To: "b:2", Payload: []byte("x")})
	if err := l.Listen("b:2", func(netsim.Packet) {}); err == nil {
		t.Fatal("Listen on closed transport succeeded")
	}
	l.Close() // idempotent
}

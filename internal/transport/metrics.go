package transport

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/stats"
)

// liveMetrics holds the transport's concurrency-safe counters. Hot paths
// (writer goroutines, read loops) update them lock-free. With a telemetry
// scope the instruments live in its registry under transport_* names, so
// periodic dumps and the control-protocol stats snapshot see them; without
// one they are private and only Metrics exposes them.
type liveMetrics struct {
	tcpFramesSent    *stats.Counter
	tcpBytesSent     *stats.Counter
	tcpFramesRecv    *stats.Counter
	tcpBytesRecv     *stats.Counter
	udpDatagramsSent *stats.Counter
	udpBytesSent     *stats.Counter
	udpDatagramsRecv *stats.Counter
	udpBytesRecv     *stats.Counter
	queueHighWater   *stats.HighWater
	queueDrops       *stats.Counter
	reconnects       *stats.Counter
	dialFailures     *stats.Counter
	udpSendErrors    *stats.Counter
	decodeErrors     *stats.Counter
	acceptedConns    *stats.Counter
}

// newLiveMetrics binds the counters into scope's registry, or to private
// instruments when scope is nil. Private instruments (not the scope's
// shared no-ops) keep Metrics() truthful either way.
func newLiveMetrics(scope *obs.Scope) liveMetrics {
	counter := func(name string) *stats.Counter {
		if scope == nil {
			return new(stats.Counter)
		}
		return scope.Counter(name)
	}
	high := func(name string) *stats.HighWater {
		if scope == nil {
			return new(stats.HighWater)
		}
		return scope.HighWater(name)
	}
	return liveMetrics{
		tcpFramesSent:    counter("transport_tcp_frames_sent"),
		tcpBytesSent:     counter("transport_tcp_bytes_sent"),
		tcpFramesRecv:    counter("transport_tcp_frames_recv"),
		tcpBytesRecv:     counter("transport_tcp_bytes_recv"),
		udpDatagramsSent: counter("transport_udp_datagrams_sent"),
		udpBytesSent:     counter("transport_udp_bytes_sent"),
		udpDatagramsRecv: counter("transport_udp_datagrams_recv"),
		udpBytesRecv:     counter("transport_udp_bytes_recv"),
		queueHighWater:   high("transport_queue_high_water"),
		queueDrops:       counter("transport_queue_drops"),
		reconnects:       counter("transport_reconnects"),
		dialFailures:     counter("transport_dial_failures"),
		udpSendErrors:    counter("transport_udp_send_errors"),
		decodeErrors:     counter("transport_decode_errors"),
		acceptedConns:    counter("transport_accepted_conns"),
	}
}

// Metrics is a point-in-time snapshot of the live transport's counters.
type Metrics struct {
	// Reliable (TCP) path.
	TCPFramesSent, TCPBytesSent int64
	TCPFramesRecv, TCPBytesRecv int64
	// Unreliable (UDP) path.
	UDPDatagramsSent, UDPBytesSent int64
	UDPDatagramsRecv, UDPBytesRecv int64
	// QueueHighWater is the deepest any per-host send queue ever got.
	QueueHighWater int64
	// QueueDrops counts reliable frames dropped whole because the
	// destination host's bounded send queue was full.
	QueueDrops int64
	// Reconnects counts outbound connections torn down — after a write
	// error or when the peer-close probe saw the remote side go away — and
	// replaced by a fresh dial on the next frame.
	Reconnects int64
	// DialFailures counts individual failed dial attempts; each is retried
	// on the capped-backoff schedule.
	DialFailures int64
	// UDPSendErrors counts datagrams that could not be sent (bad
	// destination port or socket write error).
	UDPSendErrors int64
	// DecodeErrors counts received frames/datagrams that failed to parse.
	DecodeErrors int64
	// AcceptedConns counts inbound connections accepted over the
	// transport's lifetime; InboundConns is how many are open now.
	AcceptedConns int64
	InboundConns  int
}

// Metrics returns a snapshot of the transport's counters.
func (l *Live) Metrics() Metrics {
	l.mu.Lock()
	inbound := len(l.tcpIn)
	l.mu.Unlock()
	m := &l.met
	return Metrics{
		TCPFramesSent:    m.tcpFramesSent.Value(),
		TCPBytesSent:     m.tcpBytesSent.Value(),
		TCPFramesRecv:    m.tcpFramesRecv.Value(),
		TCPBytesRecv:     m.tcpBytesRecv.Value(),
		UDPDatagramsSent: m.udpDatagramsSent.Value(),
		UDPBytesSent:     m.udpBytesSent.Value(),
		UDPDatagramsRecv: m.udpDatagramsRecv.Value(),
		UDPBytesRecv:     m.udpBytesRecv.Value(),
		QueueHighWater:   m.queueHighWater.Value(),
		QueueDrops:       m.queueDrops.Value(),
		Reconnects:       m.reconnects.Value(),
		DialFailures:     m.dialFailures.Value(),
		UDPSendErrors:    m.udpSendErrors.Value(),
		DecodeErrors:     m.decodeErrors.Value(),
		AcceptedConns:    m.acceptedConns.Value(),
		InboundConns:     inbound,
	}
}

// Table renders the snapshot as an aligned text table (printed by the live
// binaries on shutdown).
func (m Metrics) Table() *stats.Table {
	t := stats.NewTable("live transport", "path", "frames", "bytes", "notes")
	t.AddRow("tcp out", m.TCPFramesSent, m.TCPBytesSent,
		fmt.Sprintf("qmax=%d drops=%d reconnects=%d dialfail=%d",
			m.QueueHighWater, m.QueueDrops, m.Reconnects, m.DialFailures))
	t.AddRow("tcp in", m.TCPFramesRecv, m.TCPBytesRecv,
		fmt.Sprintf("conns=%d/%d", m.InboundConns, m.AcceptedConns))
	t.AddRow("udp out", m.UDPDatagramsSent, m.UDPBytesSent,
		fmt.Sprintf("senderr=%d", m.UDPSendErrors))
	t.AddRow("udp in", m.UDPDatagramsRecv, m.UDPBytesRecv,
		fmt.Sprintf("decodeerr=%d", m.DecodeErrors))
	return t
}

package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/cluster"
	"repro/internal/server"
)

// This file is the BENCH_*.json schema gate: `make bench-verify` (part of
// `make check`) re-validates the *committed* benchmark artifacts without
// re-running the benchmarks, so a PR cannot silently regress a gated
// invariant or drop a reporting field the docs promise. Every BENCH file in
// the repo root must be known here; an unknown one fails verification so new
// benchmarks must register their schema.

// VerifyBenchFiles validates every BENCH_*.json under dir. It returns a
// human-readable summary of what was checked, or an error naming the first
// violated invariant.
func VerifyBenchFiles(dir string) (string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return "", fmt.Errorf("bench-verify: no BENCH_*.json found under %s", dir)
	}
	summary := ""
	for _, p := range paths {
		base := filepath.Base(p)
		switch base {
		case "BENCH_dataplane.json":
			if err := verifyDataPlaneFile(p); err != nil {
				return "", err
			}
		case "BENCH_controlplane.json":
			if err := verifyControlPlaneFile(p); err != nil {
				return "", err
			}
		case "BENCH_cluster.json":
			if err := verifyClusterFile(p); err != nil {
				return "", err
			}
		case "BENCH_netsim.json":
			if err := verifyNetsimFile(p); err != nil {
				return "", err
			}
		default:
			return "", fmt.Errorf("bench-verify: unknown benchmark artifact %s (register its schema in internal/experiments/benchverify.go)", base)
		}
		summary += base + " OK\n"
	}
	return summary, nil
}

func verifyDataPlaneFile(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep DataPlaneReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("bench-verify: %s: %w", path, err)
	}
	if len(rep.Runs) == 0 {
		return fmt.Errorf("bench-verify: %s: no runs", path)
	}
	for _, r := range rep.Runs {
		if r.Sessions <= 0 || r.Senders <= 0 || r.PumpFrames <= 0 || r.FramesPerSec <= 0 {
			return fmt.Errorf("bench-verify: %s: sessions=%d run missing core fields", path, r.Sessions)
		}
		if r.PacedLockAcqs != 0 {
			return fmt.Errorf("bench-verify: %s: sessions=%d shows %d paced shard-lock acquisitions, want 0",
				path, r.Sessions, r.PacedLockAcqs)
		}
		if r.PacedAllocsPerFrame > 1 {
			return fmt.Errorf("bench-verify: %s: sessions=%d paced phase allocates %.2f objects/frame, want ≤ 1",
				path, r.Sessions, r.PacedAllocsPerFrame)
		}
		if r.SpanSampleEvery <= 0 || r.SpanFrames <= 0 {
			return fmt.Errorf("bench-verify: %s: sessions=%d has no frame-span samples (span_sample_every=%d span_frames=%d)",
				path, r.Sessions, r.SpanSampleEvery, r.SpanFrames)
		}
		if r.EmitToWireP95 <= 0 || r.EmitToWireP99 <= 0 || r.EmitToWireMax <= 0 {
			return fmt.Errorf("bench-verify: %s: sessions=%d missing emit_to_wire percentile fields", path, r.Sessions)
		}
		if r.SharedFlows {
			if r.Flows <= 0 || r.MaxFlowSubscribers <= 0 {
				return fmt.Errorf("bench-verify: %s: sessions=%d shared-flow run stood up no flows (flows=%d max_subs=%d)",
					path, r.Sessions, r.Flows, r.MaxFlowSubscribers)
			}
			if r.PacedEncodes <= 0 || r.PacedDelivered < r.PacedEncodes {
				return fmt.Errorf("bench-verify: %s: sessions=%d shared-flow run missing encode/delivery split (encodes=%d delivered=%d)",
					path, r.Sessions, r.PacedEncodes, r.PacedDelivered)
			}
		}
	}
	if rep.FramesPerSecObs <= 0 || rep.FramesPerSecNoop <= 0 {
		return fmt.Errorf("bench-verify: %s: missing span overhead pair fields", path)
	}
	if rep.SpanOverheadPct > spanOverheadGatePct {
		return fmt.Errorf("bench-verify: %s: span_overhead_pct %.1f exceeds the %.0f%% gate",
			path, rep.SpanOverheadPct, spanOverheadGatePct)
	}
	// The fan-out headline: encodes flat across the viewer sweep, deliveries
	// scaling with viewers, amortized-zero allocations per delivered frame —
	// re-checked on the committed artifact (mirrors DataPlane's gates).
	f := rep.Fanout
	if f == nil {
		return fmt.Errorf("bench-verify: %s: missing fanout summary (regenerate with make bench-dataplane)", path)
	}
	if f.ViewersHigh <= f.ViewersLow || f.EncodesLow <= 0 || f.EncodesHigh <= 0 {
		return fmt.Errorf("bench-verify: %s: fanout summary missing core fields", path)
	}
	if float64(f.EncodesHigh) > fanoutEncodeFlatX*float64(f.EncodesLow) {
		return fmt.Errorf("bench-verify: %s: fanout encodes grew %d → %d across %d → %d viewers; not flat",
			path, f.EncodesLow, f.EncodesHigh, f.ViewersLow, f.ViewersHigh)
	}
	if float64(f.DeliveredHigh) < fanoutScaleFrac*float64(f.ViewersHigh)*float64(f.EncodesHigh) {
		return fmt.Errorf("bench-verify: %s: fanout delivered %d frames for %d encodes at %d viewers; does not scale",
			path, f.DeliveredHigh, f.EncodesHigh, f.ViewersHigh)
	}
	if f.AllocsPerDelivered > fanoutAllocsGate {
		return fmt.Errorf("bench-verify: %s: fanout allocs_per_delivered %.3f exceeds the %.2f gate",
			path, f.AllocsPerDelivered, fanoutAllocsGate)
	}
	return nil
}

func verifyNetsimFile(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep NetsimReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("bench-verify: %s: %w", path, err)
	}
	// The same gates Netsim applied at generation time — including the
	// CPU-aware speedup bar, evaluated against the core count recorded in
	// the artifact, so verification is host-independent.
	if err := checkNetsimReport(&rep); err != nil {
		return fmt.Errorf("bench-verify: %s: %w", path, err)
	}
	return nil
}

func verifyClusterFile(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var runs []cluster.LoadResult
	if err := json.Unmarshal(buf, &runs); err != nil {
		return fmt.Errorf("bench-verify: %s: %w", path, err)
	}
	if len(runs) == 0 {
		return fmt.Errorf("bench-verify: %s: no runs", path)
	}
	for _, r := range runs {
		if r.Servers <= 0 || r.Clients <= 0 {
			return fmt.Errorf("bench-verify: %s: clients=%d run missing core fields", path, r.Clients)
		}
		if r.Redirects <= 0 || r.RedirectRate <= 0 {
			return fmt.Errorf("bench-verify: %s: clients=%d shows no admission redirects; the flash crowd was not spread",
				path, r.Clients)
		}
		if r.Handoffs <= 0 || r.HandoffsCompleted <= 0 || r.HandoffP95Millis <= 0 {
			return fmt.Errorf("bench-verify: %s: clients=%d missing completed handoffs or latency quantiles",
				path, r.Clients)
		}
		if r.SessionsOnKilled <= 0 {
			return fmt.Errorf("bench-verify: %s: clients=%d kill scenario vacuous (no sessions on killed server)",
				path, r.Clients)
		}
		// The headline invariant: a shard kill mid-lesson loses nothing.
		if !r.ZeroLostSessions || r.SessionsLost != 0 || r.SessionsRecovered != r.SessionsOnKilled {
			return fmt.Errorf("bench-verify: %s: clients=%d lost %d of %d sessions on the killed server",
				path, r.Clients, r.SessionsLost, r.SessionsOnKilled)
		}
	}
	return nil
}

func verifyControlPlaneFile(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var runs []server.ControlPlaneResult
	if err := json.Unmarshal(buf, &runs); err != nil {
		return fmt.Errorf("bench-verify: %s: %w", path, err)
	}
	if len(runs) == 0 {
		return fmt.Errorf("bench-verify: %s: no runs", path)
	}
	for _, r := range runs {
		if r.Sessions <= 0 || r.ConnectsPerSec <= 0 || r.HeartbeatsPerSec <= 0 || r.SweepTicks <= 0 {
			return fmt.Errorf("bench-verify: %s: sessions=%d run missing core fields", path, r.Sessions)
		}
		if r.AdmissionDecisions != int64(r.Sessions) {
			return fmt.Errorf("bench-verify: %s: sessions=%d shows %d admission decisions; duplicates leaked past dedup",
				path, r.Sessions, r.AdmissionDecisions)
		}
		if r.HandleP99 <= 0 || r.HandleMax <= 0 {
			return fmt.Errorf("bench-verify: %s: sessions=%d missing handle percentile fields", path, r.Sessions)
		}
	}
	// The timer-wheel sublinearity gate, re-checked on the committed file
	// (mirrors ControlPlane's generation-time gate).
	first, last := runs[0], runs[len(runs)-1]
	if len(runs) > 1 && last.Sessions > first.Sessions {
		floor := first.SweepTickMicros
		if floor < 25 {
			floor = 25
		}
		if last.SweepTickMicros > 20*floor {
			return fmt.Errorf("bench-verify: %s: sweep tick grew from %.1fµs (%d sessions) to %.1fµs (%d sessions); not sublinear",
				path, first.SweepTickMicros, first.Sessions, last.SweepTickMicros, last.Sessions)
		}
	}
	return nil
}

package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/stats"
)

// Cluster runs the federated-cluster load/chaos harness at each crowd size
// and tabulates the redirect spread, handoff latency quantiles, and the
// failover outcome of killing the crowded server mid-lesson. The results
// back BENCH_cluster.json, gated on the cluster invariants: the flash crowd
// is actually spread by in-protocol redirects, cross-server handoffs
// complete with a measured latency, and killing the serving shard loses not
// a single session — every one recovers onto a replica holding its lesson.
func Cluster(crowds []int) (*stats.Table, []cluster.LoadResult, error) {
	if len(crowds) == 0 {
		crowds = []int{12, 18, 24}
	}
	tb := stats.NewTable("BENCH — federated cluster: load-aware redirects, signed handoffs, shard-kill failover",
		"clients", "servers", "redirects", "redirect rate", "handoffs",
		"handoff p50 ms", "handoff p95 ms", "on killed", "recovered", "lost")
	var out []cluster.LoadResult
	for _, n := range crowds {
		res, err := cluster.RunClusterLoad(cluster.LoadConfig{Clients: n})
		if err != nil {
			return nil, nil, fmt.Errorf("cluster clients=%d: %w", n, err)
		}
		if res.Redirects == 0 || res.RedirectsFollowed == 0 {
			return nil, nil, fmt.Errorf("cluster clients=%d: flash crowd produced no redirects", n)
		}
		if res.Handoffs == 0 || res.HandoffsCompleted == 0 {
			return nil, nil, fmt.Errorf("cluster clients=%d: no completed cross-server handoffs", n)
		}
		if res.HandoffP95Millis <= 0 {
			return nil, nil, fmt.Errorf("cluster clients=%d: handoff latency not measured", n)
		}
		if res.SessionsOnKilled == 0 {
			return nil, nil, fmt.Errorf("cluster clients=%d: kill hit an empty server; scenario vacuous", n)
		}
		if !res.ZeroLostSessions || res.SessionsRecovered != res.SessionsOnKilled {
			return nil, nil, fmt.Errorf("cluster clients=%d: lost %d of %d sessions on the killed server",
				n, res.SessionsLost, res.SessionsOnKilled)
		}
		tb.AddRow(res.Clients, res.Servers, res.Redirects,
			fmt.Sprintf("%.2f", res.RedirectRate),
			res.Handoffs,
			fmt.Sprintf("%.1f", res.HandoffP50Millis),
			fmt.Sprintf("%.1f", res.HandoffP95Millis),
			res.SessionsOnKilled, res.SessionsRecovered, res.SessionsLost)
		out = append(out, res)
	}
	return tb, out, nil
}

// E13Cluster is the headline federation experiment: the default three-crowd
// sweep of the cluster harness, on its pinned seed so the table in
// EXPERIMENTS.md replays exactly. (The harness ignores the CLI seed: the
// cluster invariants are pinned artifacts, not a stochastic sweep.)
func E13Cluster() (*stats.Table, error) {
	tb, _, err := Cluster(nil)
	return tb, err
}

package experiments

import (
	"fmt"

	"repro/internal/server"
	"repro/internal/stats"
)

// ControlPlane runs the server control-plane load harness at each resident
// session count and tabulates connect-storm throughput, heartbeat
// throughput and the liveness sweep's per-tick cost. The results back
// BENCH_controlplane.json. The harness itself enforces the storm
// invariants (exactly one admission decision per client, ≤ 1 dedup ring
// per client, no reply lost); this gate additionally pins the timer-wheel
// claim: the per-tick sweep cost must stay roughly flat — measurably
// sublinear — as resident sessions grow.
func ControlPlane(sessions []int) (*stats.Table, []server.ControlPlaneResult, error) {
	if len(sessions) == 0 {
		sessions = []int{1_000, 10_000, 100_000}
	}
	tb := stats.NewTable("BENCH — control plane: sharded sessions, dedup storms, timer-wheel sweeps",
		"sessions", "dup", "connects/s", "ctrl reqs/s", "heartbeats/s",
		"sweep µs/tick", "handle p99 µs", "lock wait p99 µs", "dedup rings", "lock held µs")
	var out []server.ControlPlaneResult
	for _, n := range sessions {
		res, err := server.RunControlPlaneLoad(server.ControlPlaneConfig{
			Sessions:  n,
			DupFactor: 3,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("controlplane sessions=%d: %w", n, err)
		}
		tb.AddRow(res.Sessions, res.DupFactor,
			fmt.Sprintf("%.0f", res.ConnectsPerSec),
			fmt.Sprintf("%.0f", res.CtrlReqsPerSec),
			fmt.Sprintf("%.0f", res.HeartbeatsPerSec),
			fmt.Sprintf("%.1f", res.SweepTickMicros),
			fmt.Sprintf("%.1f", res.HandleP99),
			fmt.Sprintf("%.1f", res.LockWaitP99),
			res.DedupRings,
			res.LockHeldMicros)
		out = append(out, res)
	}
	// Sublinearity gate: across a 100× growth in resident sessions the
	// sweep tick must not grow even 20× (the old full-map sweep grew
	// ~100×). A floor absorbs scheduler noise at the microsecond scale.
	first, last := out[0], out[len(out)-1]
	if len(out) > 1 && last.Sessions > first.Sessions {
		floor := first.SweepTickMicros
		if floor < 25 {
			floor = 25
		}
		if last.SweepTickMicros > 20*floor {
			return nil, nil, fmt.Errorf(
				"controlplane: sweep tick grew from %.1fµs (%d sessions) to %.1fµs (%d sessions); not sublinear",
				first.SweepTickMicros, first.Sessions, last.SweepTickMicros, last.Sessions)
		}
	}
	return tb, out, nil
}

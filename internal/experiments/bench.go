package experiments

import (
	"fmt"

	"repro/internal/server"
	"repro/internal/stats"
)

// DataPlaneReport is the JSON shape of BENCH_dataplane.json: the per-scale
// load runs plus the span-overhead pair, which prices the sampled frame-span
// instrumentation by comparing pump throughput with telemetry on against
// telemetry off.
type DataPlaneReport struct {
	Runs []server.DataPlaneResult `json:"runs"`
	// SpanOverheadPct is the frames/s cost of the default telemetry scope
	// (spans sampled 1-in-8) relative to a scope-less run, best-of-3 each.
	// Gated ≤ spanOverheadGatePct here and again by VerifyBenchFiles.
	SpanOverheadPct  float64 `json:"span_overhead_pct"`
	FramesPerSecObs  float64 `json:"frames_per_sec_obs"`
	FramesPerSecNoop float64 `json:"frames_per_sec_noobs"`
}

// spanOverheadGatePct is the acceptance ceiling on the span instrumentation's
// throughput cost.
const spanOverheadGatePct = 5.0

// DataPlane runs the server data-plane load harness at each session count
// and tabulates throughput, emit-latency tail, global-lock pressure, the
// allocation footprint of both phases, and the emit→wire span percentiles.
// The results back BENCH_dataplane.json: frames/s must grow (or hold) with
// session count, the paced phase must show zero shard-lock acquisitions, the
// pooled emit path must hold the paced allocation rate at (amortized) ≤ 1
// object per frame, and the span sampling must cost ≤ 5% throughput.
func DataPlane(sessions []int) (*stats.Table, *DataPlaneReport, error) {
	if len(sessions) == 0 {
		sessions = []int{1, 8, 64}
	}
	tb := stats.NewTable("BENCH — media data plane: parallel zero-alloc emit off the global lock",
		"sessions", "senders", "paced lock acqs", "frames/s", "emit p50 µs", "emit p95 µs",
		"e2w p95 µs", "e2w p99 µs", "paced allocs/frame", "pump allocs/frame", "lock held µs")
	rep := &DataPlaneReport{}
	for _, n := range sessions {
		res, err := server.RunDataPlaneLoad(server.DataPlaneConfig{
			Sessions:        n,
			FramesPerSender: 200,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("dataplane sessions=%d: %w", n, err)
		}
		if res.PacedLockAcqs != 0 {
			return nil, nil, fmt.Errorf("dataplane sessions=%d: %d shard-lock acquisitions during paced emission",
				n, res.PacedLockAcqs)
		}
		if res.PacedAllocsPerFrame > 1 {
			return nil, nil, fmt.Errorf("dataplane sessions=%d: paced phase allocates %.2f objects/frame, want ≤ 1",
				n, res.PacedAllocsPerFrame)
		}
		tb.AddRow(res.Sessions, res.Senders, res.PacedLockAcqs,
			fmt.Sprintf("%.0f", res.FramesPerSec),
			fmt.Sprintf("%.1f", res.EmitP50Micros),
			fmt.Sprintf("%.1f", res.EmitP95Micros),
			fmt.Sprintf("%.1f", res.EmitToWireP95),
			fmt.Sprintf("%.1f", res.EmitToWireP99),
			fmt.Sprintf("%.3f", res.PacedAllocsPerFrame),
			fmt.Sprintf("%.3f", res.PumpAllocsPerFrame),
			res.LockHeldMicros)
		rep.Runs = append(rep.Runs, res)
	}

	// Overhead pair: best-of-3 pump throughput with the default scope (spans
	// sampled) against telemetry off, at a fixed mid scale. Best-of-N rather
	// than mean keeps scheduler noise from masquerading as span cost.
	best := func(disable bool) (float64, error) {
		var top float64
		for i := 0; i < 3; i++ {
			res, err := server.RunDataPlaneLoad(server.DataPlaneConfig{
				Sessions: 8, FramesPerSender: 500, DisableObs: disable,
			})
			if err != nil {
				return 0, err
			}
			if res.FramesPerSec > top {
				top = res.FramesPerSec
			}
		}
		return top, nil
	}
	var err error
	if rep.FramesPerSecObs, err = best(false); err != nil {
		return nil, nil, fmt.Errorf("dataplane overhead pair (obs on): %w", err)
	}
	if rep.FramesPerSecNoop, err = best(true); err != nil {
		return nil, nil, fmt.Errorf("dataplane overhead pair (obs off): %w", err)
	}
	if rep.FramesPerSecNoop > 0 {
		rep.SpanOverheadPct = (rep.FramesPerSecNoop - rep.FramesPerSecObs) / rep.FramesPerSecNoop * 100
	}
	if rep.SpanOverheadPct > spanOverheadGatePct {
		return nil, nil, fmt.Errorf("dataplane: span sampling costs %.1f%% throughput (%.0f → %.0f frames/s), want ≤ %.0f%%",
			rep.SpanOverheadPct, rep.FramesPerSecNoop, rep.FramesPerSecObs, spanOverheadGatePct)
	}
	tb.AddRow("overhead", "", "", fmt.Sprintf("%.0f vs %.0f", rep.FramesPerSecObs, rep.FramesPerSecNoop),
		"", "", "", "", "", "", fmt.Sprintf("%.1f%% span cost", rep.SpanOverheadPct))
	return tb, rep, nil
}

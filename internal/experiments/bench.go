package experiments

import (
	"fmt"

	"repro/internal/server"
	"repro/internal/stats"
)

// DataPlaneReport is the JSON shape of BENCH_dataplane.json: the per-scale
// load runs plus the span-overhead pair, which prices the sampled frame-span
// instrumentation by comparing pump throughput with telemetry on against
// telemetry off.
type DataPlaneReport struct {
	Runs []server.DataPlaneResult `json:"runs"`
	// SpanOverheadPct is the frames/s cost of the default telemetry scope
	// (spans sampled 1-in-8) relative to a scope-less run, best-of-3 each.
	// Gated ≤ spanOverheadGatePct here and again by VerifyBenchFiles.
	SpanOverheadPct  float64 `json:"span_overhead_pct"`
	FramesPerSecObs  float64 `json:"frames_per_sec_obs"`
	FramesPerSecNoop float64 `json:"frames_per_sec_noobs"`
	// Fanout is the shared-flow headline: the same hot document at 1 and
	// at N viewers with shared flows on. Encodes must stay flat while
	// deliveries scale with the viewer count. Gated here and by
	// VerifyBenchFiles.
	Fanout *FanoutSummary `json:"fanout"`
}

// FanoutSummary is the one-encode-N-deliveries headline pair, measured over
// the deterministic paced (virtual-clock) window so the numbers are exactly
// reproducible.
type FanoutSummary struct {
	ViewersLow         int     `json:"viewers_low"`
	ViewersHigh        int     `json:"viewers_high"`
	EncodesLow         int64   `json:"encodes_low"`
	EncodesHigh        int64   `json:"encodes_high"`
	DeliveredHigh      int64   `json:"delivered_high"`
	AmplificationX     float64 `json:"amplification_x"` // delivered/encodes at the high viewer count
	AllocsPerDelivered float64 `json:"allocs_per_delivered"`
}

// spanOverheadGatePct is the acceptance ceiling on the span instrumentation's
// throughput cost.
const spanOverheadGatePct = 5.0

// Shared-flow fan-out gates: at the high viewer count the paced window may
// encode at most fanoutEncodeFlatX times the single-viewer run's frames
// (they are deterministically equal in practice; the headroom absorbs any
// future pacing change), must deliver at least fanoutScaleFrac of the ideal
// viewers×encodes fan-out, and may allocate at most fanoutAllocsGate objects
// per delivered frame.
const (
	fanoutEncodeFlatX = 1.05
	fanoutScaleFrac   = 0.9
	fanoutAllocsGate  = 0.05
)

// DataPlane runs the server data-plane load harness at each session count
// and tabulates throughput, emit-latency tail, global-lock pressure, the
// allocation footprint of both phases, and the emit→wire span percentiles.
// The results back BENCH_dataplane.json: frames/s must grow (or hold) with
// session count, the paced phase must show zero shard-lock acquisitions, the
// pooled emit path must hold the paced allocation rate at (amortized) ≤ 1
// object per frame, and the span sampling must cost ≤ 5% throughput.
func DataPlane(sessions []int) (*stats.Table, *DataPlaneReport, error) {
	if len(sessions) == 0 {
		sessions = []int{1, 8, 64}
	}
	tb := stats.NewTable("BENCH — media data plane: parallel zero-alloc emit off the global lock",
		"sessions", "senders", "paced lock acqs", "frames/s", "emit p50 µs", "emit p95 µs",
		"e2w p95 µs", "e2w p99 µs", "paced allocs/frame", "pump allocs/frame", "lock held µs")
	rep := &DataPlaneReport{}
	for _, n := range sessions {
		res, err := server.RunDataPlaneLoad(server.DataPlaneConfig{
			Sessions:        n,
			FramesPerSender: 200,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("dataplane sessions=%d: %w", n, err)
		}
		if res.PacedLockAcqs != 0 {
			return nil, nil, fmt.Errorf("dataplane sessions=%d: %d shard-lock acquisitions during paced emission",
				n, res.PacedLockAcqs)
		}
		if res.PacedAllocsPerFrame > 1 {
			return nil, nil, fmt.Errorf("dataplane sessions=%d: paced phase allocates %.2f objects/frame, want ≤ 1",
				n, res.PacedAllocsPerFrame)
		}
		tb.AddRow(res.Sessions, res.Senders, res.PacedLockAcqs,
			fmt.Sprintf("%.0f", res.FramesPerSec),
			fmt.Sprintf("%.1f", res.EmitP50Micros),
			fmt.Sprintf("%.1f", res.EmitP95Micros),
			fmt.Sprintf("%.1f", res.EmitToWireP95),
			fmt.Sprintf("%.1f", res.EmitToWireP99),
			fmt.Sprintf("%.3f", res.PacedAllocsPerFrame),
			fmt.Sprintf("%.3f", res.PumpAllocsPerFrame),
			res.LockHeldMicros)
		rep.Runs = append(rep.Runs, res)
	}

	// Shared-flow fan-out: the same hot document at 1 viewer and at 64
	// viewers with shared flows on. The paced (virtual-clock) window is
	// deterministic, so the flatness and scaling gates compare exact frame
	// counts, not wall-clock rates.
	fanout := func(sessions, docs int, zipfS float64) (server.DataPlaneResult, error) {
		res, err := server.RunDataPlaneLoad(server.DataPlaneConfig{
			Sessions:        sessions,
			FramesPerSender: 200,
			SharedFlows:     true,
			Docs:            docs,
			ZipfS:           zipfS,
		})
		if err != nil {
			return res, fmt.Errorf("dataplane fanout sessions=%d docs=%d: %w", sessions, docs, err)
		}
		if res.PacedLockAcqs != 0 {
			return res, fmt.Errorf("dataplane fanout sessions=%d docs=%d: %d shard-lock acquisitions during paced fan-out",
				sessions, docs, res.PacedLockAcqs)
		}
		tb.AddRow(fmt.Sprintf("%d (fanout d=%d)", res.Sessions, res.Docs),
			fmt.Sprintf("%d fl=%d", res.Senders, res.Flows), res.PacedLockAcqs,
			fmt.Sprintf("%.0f dlv", res.DeliveredPerSec),
			fmt.Sprintf("%.1f", res.EmitP50Micros),
			fmt.Sprintf("%.1f", res.EmitP95Micros),
			fmt.Sprintf("%.1f", res.EmitToWireP95),
			fmt.Sprintf("%.1f", res.EmitToWireP99),
			fmt.Sprintf("%.3f", res.PacedAllocsPerFrame),
			fmt.Sprintf("%.3f", res.PumpAllocsPerFrame),
			res.LockHeldMicros)
		rep.Runs = append(rep.Runs, res)
		return res, nil
	}
	fan1, err := fanout(1, 1, 0)
	if err != nil {
		return nil, nil, err
	}
	fan64, err := fanout(64, 1, 0)
	if err != nil {
		return nil, nil, err
	}
	if fan1.PacedEncodes <= 0 || fan64.PacedEncodes <= 0 {
		return nil, nil, fmt.Errorf("dataplane fanout: paced window encoded nothing (1v=%d 64v=%d)",
			fan1.PacedEncodes, fan64.PacedEncodes)
	}
	if float64(fan64.PacedEncodes) > fanoutEncodeFlatX*float64(fan1.PacedEncodes) {
		return nil, nil, fmt.Errorf("dataplane fanout: 64 viewers encoded %d frames vs %d at 1 viewer; encode work is not flat",
			fan64.PacedEncodes, fan1.PacedEncodes)
	}
	if float64(fan64.PacedDelivered) < fanoutScaleFrac*64*float64(fan64.PacedEncodes) {
		return nil, nil, fmt.Errorf("dataplane fanout: 64 viewers saw %d deliveries for %d encodes; fan-out does not scale with viewers",
			fan64.PacedDelivered, fan64.PacedEncodes)
	}
	if fan64.PacedAllocsPerFrame > fanoutAllocsGate {
		return nil, nil, fmt.Errorf("dataplane fanout: %.3f allocations per delivered frame, want ≤ %.2f",
			fan64.PacedAllocsPerFrame, fanoutAllocsGate)
	}
	if fan64.MaxFlowSubscribers != 64 {
		return nil, nil, fmt.Errorf("dataplane fanout: hot flow carries %d subscribers, want 64", fan64.MaxFlowSubscribers)
	}
	rep.Fanout = &FanoutSummary{
		ViewersLow:         fan1.Sessions,
		ViewersHigh:        fan64.Sessions,
		EncodesLow:         fan1.PacedEncodes,
		EncodesHigh:        fan64.PacedEncodes,
		DeliveredHigh:      fan64.PacedDelivered,
		AmplificationX:     float64(fan64.PacedDelivered) / float64(fan64.PacedEncodes),
		AllocsPerDelivered: fan64.PacedAllocsPerFrame,
	}
	// Zipf demand demo: 64 viewers spread over 8 documents with s=1.1 —
	// the popular head shares flows, the tail plays privately. Reported,
	// not gated beyond the zero-lock invariant.
	if _, err := fanout(64, 8, 1.1); err != nil {
		return nil, nil, err
	}

	// Overhead pair: best-of-3 pump throughput with the default scope (spans
	// sampled) against telemetry off, at a fixed mid scale. Best-of-N rather
	// than mean keeps scheduler noise from masquerading as span cost.
	best := func(disable bool) (float64, error) {
		var top float64
		for i := 0; i < 3; i++ {
			res, err := server.RunDataPlaneLoad(server.DataPlaneConfig{
				Sessions: 8, FramesPerSender: 500, DisableObs: disable,
			})
			if err != nil {
				return 0, err
			}
			if res.FramesPerSec > top {
				top = res.FramesPerSec
			}
		}
		return top, nil
	}
	if rep.FramesPerSecObs, err = best(false); err != nil {
		return nil, nil, fmt.Errorf("dataplane overhead pair (obs on): %w", err)
	}
	if rep.FramesPerSecNoop, err = best(true); err != nil {
		return nil, nil, fmt.Errorf("dataplane overhead pair (obs off): %w", err)
	}
	if rep.FramesPerSecNoop > 0 {
		rep.SpanOverheadPct = (rep.FramesPerSecNoop - rep.FramesPerSecObs) / rep.FramesPerSecNoop * 100
	}
	if rep.SpanOverheadPct > spanOverheadGatePct {
		return nil, nil, fmt.Errorf("dataplane: span sampling costs %.1f%% throughput (%.0f → %.0f frames/s), want ≤ %.0f%%",
			rep.SpanOverheadPct, rep.FramesPerSecNoop, rep.FramesPerSecObs, spanOverheadGatePct)
	}
	tb.AddRow("overhead", "", "", fmt.Sprintf("%.0f vs %.0f", rep.FramesPerSecObs, rep.FramesPerSecNoop),
		"", "", "", "", "", "", fmt.Sprintf("%.1f%% span cost", rep.SpanOverheadPct))
	return tb, rep, nil
}

package experiments

import (
	"fmt"

	"repro/internal/server"
	"repro/internal/stats"
)

// DataPlane runs the server data-plane load harness at each session count
// and tabulates throughput, emit-latency tail, global-lock pressure and the
// allocation footprint of both phases. The results back
// BENCH_dataplane.json: frames/s must grow (or hold) with session count, the
// paced phase must show zero srv.mu acquisitions, and the pooled emit path
// must hold the paced allocation rate at (amortized) ≤ 1 object per frame.
func DataPlane(sessions []int) (*stats.Table, []server.DataPlaneResult, error) {
	if len(sessions) == 0 {
		sessions = []int{1, 8, 64}
	}
	tb := stats.NewTable("BENCH — media data plane: parallel zero-alloc emit off the global lock",
		"sessions", "senders", "paced lock acqs", "frames/s", "emit p50 µs", "emit p95 µs",
		"paced allocs/frame", "paced B/frame", "pump allocs/frame", "pump B/frame", "lock held µs")
	var out []server.DataPlaneResult
	for _, n := range sessions {
		res, err := server.RunDataPlaneLoad(server.DataPlaneConfig{
			Sessions:        n,
			FramesPerSender: 200,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("dataplane sessions=%d: %w", n, err)
		}
		if res.PacedLockAcqs != 0 {
			return nil, nil, fmt.Errorf("dataplane sessions=%d: %d srv.mu acquisitions during paced emission",
				n, res.PacedLockAcqs)
		}
		if res.PacedAllocsPerFrame > 1 {
			return nil, nil, fmt.Errorf("dataplane sessions=%d: paced phase allocates %.2f objects/frame, want ≤ 1",
				n, res.PacedAllocsPerFrame)
		}
		tb.AddRow(res.Sessions, res.Senders, res.PacedLockAcqs,
			fmt.Sprintf("%.0f", res.FramesPerSec),
			fmt.Sprintf("%.1f", res.EmitP50Micros),
			fmt.Sprintf("%.1f", res.EmitP95Micros),
			fmt.Sprintf("%.3f", res.PacedAllocsPerFrame),
			fmt.Sprintf("%.1f", res.PacedAllocBytesPerFrame),
			fmt.Sprintf("%.3f", res.PumpAllocsPerFrame),
			fmt.Sprintf("%.1f", res.PumpAllocBytesPerFrame),
			res.LockHeldMicros)
		out = append(out, res)
	}
	return tb, out, nil
}

package experiments

import "testing"

func TestE12FlightRecorderPostMortem(t *testing.T) {
	tb, err := E12FlightRecorder(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.String())
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/hermes"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/server"
	"repro/internal/stats"
)

// E12FlightRecorder kills a lesson's server mid-playback and shows the flight
// recorder's automatic post-mortem: the anomaly-triggered dump holds the
// whole causal window — frames drying up, heartbeats going unanswered, the
// liveness loss, the failover decision, and the session resuming at the
// replica — without anyone having asked for a trace beforehand.
func E12FlightRecorder(seed uint64) (*stats.Table, error) {
	svc, err := hermes.NewSimulated(hermes.Config{
		Seed: seed,
		Servers: []hermes.ServerSpec{
			{
				Name:    "srv-a",
				Lessons: []hermes.LessonSpec{{Name: "av", Source: avDoc(60 * time.Second)}},
				Options: server.Options{Grace: 3 * time.Second, HeartbeatEvery: time.Second, LivenessMisses: 3},
			},
			{
				Name:    "srv-b",
				Lessons: []hermes.LessonSpec{{Name: "av", Source: avDoc(60 * time.Second)}},
				Options: server.Options{Grace: 3 * time.Second, HeartbeatEvery: time.Second, LivenessMisses: 3},
			},
		},
	})
	if err != nil {
		return nil, err
	}
	if err := svc.Enroll("alice", "pw", qos.Standard); err != nil {
		return nil, err
	}
	scope := obs.NewScope(svc.Clk)
	var dumpAnomaly string
	var dump []obs.Event
	scope.EnableFlightRecorder(obs.RecorderOptions{
		// The failover fires ~13s after the liveness loss (the reconnect's
		// retry budget); the flush delay must bridge that gap so one dump
		// holds the whole incident.
		FlushDelay: 15 * time.Second,
		Sink: func(anomaly string, events []obs.Event) {
			if dumpAnomaly == "" { // keep the first (incident-opening) dump
				dumpAnomaly = anomaly
				dump = append(dump[:0], events...)
			}
		},
	})
	b := svc.NewBrowser("alice", "pw", client.Options{Obs: scope})
	b.Connect("srv-a")
	svc.Run(time.Second)
	if lc := b.LastConnect(); lc == nil || !lc.OK {
		return nil, fmt.Errorf("E12: connect to srv-a failed")
	}
	b.RequestDoc("av")
	svc.Run(5 * time.Second)

	tKill := svc.Clk.Now()
	svc.Net.SetHostDown("srv-a", true)
	svc.Run(45 * time.Second)

	if dumpAnomaly == "" {
		return nil, fmt.Errorf("E12: no flight dump fired within 45s of the crash")
	}

	// Pull the incident's causal chain out of the dump, in dump order.
	tb := stats.NewTable(
		fmt.Sprintf("E12 — flight recorder post-mortem (trigger: %s, %d events in window)",
			dumpAnomaly, len(dump)),
		"t+ (s)", "event", "stream", "value", "note")
	find := func(match func(obs.Event) bool) *obs.Event {
		for i := range dump {
			if match(dump[i]) {
				return &dump[i]
			}
		}
		return nil
	}
	chain := []struct {
		label string
		// ordered: part of the causal chain whose dump order is asserted.
		// The first two rows are scene-setting; ring eviction during the
		// deadline-miss storm makes their relative order unstable.
		ordered bool
		ev      *obs.Event
	}{
		{"first deadline miss", false, find(func(e obs.Event) bool { return e.Kind == obs.EvDeadlineMiss })},
		{"anomaly trigger", false, find(func(e obs.Event) bool { return e.Kind == obs.EvAnomaly })},
		{"heartbeat unanswered", true, find(func(e obs.Event) bool { return e.Kind == obs.EvHeartbeatMiss })},
		{"liveness lost", true, find(func(e obs.Event) bool { return e.Kind == obs.EvLiveness && e.Value == 0 })},
		{"failover decision", true, find(func(e obs.Event) bool { return e.Kind == obs.EvFailover })},
		{"session resumed", true, find(func(e obs.Event) bool { return e.Kind == obs.EvSessionStart && e.Stream == "srv-b" })},
	}
	prev := -1
	for _, c := range chain {
		if c.ev == nil {
			return nil, fmt.Errorf("E12: dump (%d events) is missing the %s", len(dump), c.label)
		}
		if c.ordered {
			idx := 0
			for i := range dump {
				if &dump[i] == c.ev {
					idx = i
					break
				}
			}
			if idx < prev {
				return nil, fmt.Errorf("E12: %s appears out of causal order in the dump", c.label)
			}
			prev = idx
		}
		tb.AddRow(fmt.Sprintf("%+.1f", c.ev.At.Sub(tKill).Seconds()),
			c.ev.Kind.String(), c.ev.Stream, c.ev.Value, c.ev.Note)
	}
	if got := scope.Counter("client_failovers").Value(); got != 1 {
		return nil, fmt.Errorf("E12: client_failovers = %d, want 1", got)
	}
	return tb, nil
}

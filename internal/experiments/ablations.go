package experiments

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/hermes"
	"repro/internal/netsim"
	"repro/internal/qos"
	"repro/internal/server"
	"repro/internal/stats"
)

// A1DegradeOrder ablates the video-first rule: the paper degrades video
// before audio because "users can tolerate lower video quality rather than
// not hear well". With the rule off, audio takes direct hits.
func A1DegradeOrder(seed uint64) (*stats.Table, error) {
	tb := stats.NewTable("A1 — ablation: degrade video before audio",
		"video-first", "audio degrades", "video degrades", "audio cut off")
	for _, videoFirst := range []bool{true, false} {
		cfg := core.PlayConfig{
			DocSource: avDoc(30 * time.Second),
			Seed:      seed,
			Link: netsim.LinkConfig{Bandwidth: 2_500_000,
				Delay: 30 * time.Millisecond, Jitter: 20 * time.Millisecond},
			Phases: []netsim.Phase{{Start: 4 * time.Second, Duration: 20 * time.Second,
				BandwidthFactor: 0.45}},
		}
		policy := qos.DefaultPolicy()
		policy.VideoFirst = videoFirst
		cfg.Server.Policy = policy
		cfg.Client.FeedbackInterval = 500 * time.Millisecond
		res, err := core.Play(cfg)
		if err != nil {
			return nil, fmt.Errorf("A1 videoFirst=%v: %w", videoFirst, err)
		}
		aDeg, vDeg, aCut := 0, 0, 0
		for _, a := range res.Actions {
			switch {
			case a.StreamID == "a" && a.Kind == qos.ActDegrade:
				aDeg++
			case a.StreamID == "v" && (a.Kind == qos.ActDegrade || a.Kind == qos.ActCutoff):
				vDeg++
			case a.StreamID == "a" && a.Kind == qos.ActCutoff:
				aCut++
			}
		}
		tb.AddRow(onOff(videoFirst), aDeg, vDeg, aCut)
	}
	return tb, nil
}

// A2Hysteresis ablates the upgrade hold-down: without it the grader flaps
// between levels on every fluctuation instead of upgrading "gracefully ...
// when the network's condition permits it".
func A2Hysteresis(seed uint64) (*stats.Table, error) {
	tb := stats.NewTable("A2 — ablation: upgrade hysteresis (hold-down)",
		"upgrade hold", "grade changes", "degrades", "upgrades")
	for _, hold := range []time.Duration{500 * time.Millisecond, 8 * time.Second} {
		cfg := core.PlayConfig{
			DocSource: avDoc(40 * time.Second),
			Seed:      seed,
			Link: netsim.LinkConfig{Bandwidth: 2_500_000,
				Delay: 30 * time.Millisecond, Jitter: 20 * time.Millisecond},
			// Oscillating congestion: three short crunches.
			Phases: []netsim.Phase{
				{Start: 4 * time.Second, Duration: 4 * time.Second, BandwidthFactor: 0.45},
				{Start: 14 * time.Second, Duration: 4 * time.Second, BandwidthFactor: 0.45},
				{Start: 24 * time.Second, Duration: 4 * time.Second, BandwidthFactor: 0.45},
			},
			RunFor: 55 * time.Second,
		}
		policy := qos.DefaultPolicy()
		policy.UpgradeHold = hold
		cfg.Server.Policy = policy
		cfg.Client.FeedbackInterval = 500 * time.Millisecond
		res, err := core.Play(cfg)
		if err != nil {
			return nil, fmt.Errorf("A2 hold=%v: %w", hold, err)
		}
		deg, up := 0, 0
		for _, a := range res.Actions {
			switch a.Kind {
			case qos.ActDegrade, qos.ActCutoff:
				deg++
			case qos.ActUpgrade, qos.ActRestore:
				up++
			}
		}
		tb.AddRow(hold, deg+up, deg, up)
	}
	return tb, nil
}

// A3WindowSafety ablates the safety multiplier of the statistical window
// calculation (window = safety × jitter + frame interval).
func A3WindowSafety(seed uint64) (*stats.Table, error) {
	tb := stats.NewTable("A3 — ablation: window-calculation safety factor (150ms jitter)",
		"safety", "window", "startup", "gaps")
	for _, safety := range []float64{0.5, 1, 2, 4} {
		cfg := core.PlayConfig{
			DocSource: avDoc(20 * time.Second),
			Seed:      seed,
			Link: netsim.LinkConfig{Bandwidth: 8_000_000,
				Delay: 20 * time.Millisecond, Jitter: 20 * time.Millisecond},
			Phases: []netsim.Phase{{Start: 3 * time.Second, Duration: 17 * time.Second,
				ExtraJitter: 150 * time.Millisecond}},
		}
		cfg.Client.WindowSafety = safety
		cfg.Client.JitterBudget = 150 * time.Millisecond
		res, err := core.Play(cfg)
		if err != nil {
			return nil, fmt.Errorf("A3 safety=%v: %w", safety, err)
		}
		window := time.Duration(safety*float64(150*time.Millisecond)) + 40*time.Millisecond
		if min := 160 * time.Millisecond; window < min {
			window = min
		}
		tb.AddRow(fmt.Sprintf("%.1f×", safety), window, res.Startup, res.Gaps())
	}
	return tb, nil
}

// E9Scale grows the number of concurrent viewers against one server's
// admission capacity: every admitted session keeps playing cleanly while
// the overflow is rejected (or squeezed), showing the admission mechanism
// protecting the sessions already in service.
func E9Scale(seed uint64, quick bool) (*stats.Table, error) {
	counts := []int{2, 5, 10, 20}
	if quick {
		counts = []int{2, 10}
	}
	tb := stats.NewTable("E9 — concurrent viewers vs admission capacity (10 Mb/s server)",
		"viewers", "admitted", "rejected", "utilization", "mean plays/session")
	for _, n := range counts {
		svc, err := hermes.NewSimulated(hermes.Config{
			Seed: seed,
			Servers: []hermes.ServerSpec{{
				Name:    "srv",
				Lessons: hermes.MakeCourse("c", 1, 1, 10*time.Second),
				Options: server.Options{Capacity: 10_000_000},
			}},
		})
		if err != nil {
			return nil, err
		}
		var browsers []*client.Client
		for i := 0; i < n; i++ {
			user := fmt.Sprintf("u%d", i)
			svc.Enroll(user, "pw", qos.Standard)
			b := svc.NewBrowser(user, "pw", client.Options{
				PeakRate: 1_600_000, MinRate: 1_600_000,
			})
			browsers = append(browsers, b)
			b.Connect("srv")
		}
		svc.Run(2 * time.Second)
		admitted, rejected := 0, 0
		for _, b := range browsers {
			if lc := b.LastConnect(); lc != nil && lc.OK {
				admitted++
				b.RequestDoc("c-L1")
			} else {
				rejected++
			}
		}
		util := svc.Servers["srv"].Admission().Utilization()
		svc.Run(25 * time.Second)
		totalPlays := 0
		for _, b := range browsers {
			if p := b.Player(); p != nil {
				for _, s := range p.Report().Streams {
					totalPlays += s.Plays
				}
			}
		}
		mean := 0.0
		if admitted > 0 {
			mean = float64(totalPlays) / float64(admitted)
		}
		tb.AddRow(n, admitted, rejected, fmt.Sprintf("%.2f", util), fmt.Sprintf("%.0f", mean))
	}
	return tb, nil
}

// E10SharedUplink puts several viewers behind one server uplink that cannot
// carry all of them at full quality: with grading, each session sheds one
// video level and the shared bottleneck clears for everyone — the paper's
// "less network traffic, thus more available bandwidth" acting across users.
func E10SharedUplink(seed uint64) (*stats.Table, error) {
	const viewers = 6
	tb := stats.NewTable("E10 — six viewers behind one 6.5 Mb/s server uplink",
		"grading", "degrades", "mean gap rate", "total plays", "uplink drops")
	for _, enabled := range []bool{false, true} {
		svc, err := hermes.NewSimulated(hermes.Config{
			Seed: seed,
			Servers: []hermes.ServerSpec{{
				Name: "srv",
				Lessons: []hermes.LessonSpec{{
					Name:   "av",
					Source: avDoc(30 * time.Second),
				}},
				Options: server.Options{
					Capacity:       100_000_000, // admission out of the way
					DisableGrading: !enabled,
				},
			}},
		})
		if err != nil {
			return nil, err
		}
		// The shared uplink: ~8 Mb/s offered vs 6.5 Mb/s available.
		svc.Net.SetEgressLimit("srv", 6_500_000, 400*time.Millisecond)
		var browsers []*client.Client
		for i := 0; i < viewers; i++ {
			user := fmt.Sprintf("u%d", i)
			svc.Enroll(user, "pw", qos.Standard)
			b := svc.NewBrowser(user, "pw", client.Options{
				FeedbackInterval: 500 * time.Millisecond,
			})
			browsers = append(browsers, b)
			b.Connect("srv")
		}
		svc.Run(time.Second)
		for _, b := range browsers {
			b.RequestDoc("av")
		}
		svc.Run(45 * time.Second)

		gapRate := 0.0
		plays := 0
		degrades := 0
		for i, b := range browsers {
			if p := b.Player(); p != nil {
				rep := p.Report()
				g, e := 0, 0
				for _, s := range rep.Streams {
					g += s.Gaps
					e += s.Expected
					plays += s.Plays
				}
				if e > 0 {
					gapRate += float64(g) / float64(e)
				}
			}
			mgr := svc.Servers["srv"].QoSManager(netsim.MakeAddr(fmt.Sprintf("pc-%d", i+1), 6000))
			if mgr != nil {
				for _, a := range mgr.Actions() {
					if a.Kind == qos.ActDegrade || a.Kind == qos.ActCutoff {
						degrades++
					}
				}
			}
		}
		gapRate /= viewers
		drops := 0
		for i := range browsers {
			st := svc.Net.Stats("srv", fmt.Sprintf("pc-%d", i+1))
			drops += st.Dropped
		}
		tb.AddRow(onOff(enabled), degrades, fmt.Sprintf("%.3f", gapRate), plays, drops)
	}
	return tb, nil
}

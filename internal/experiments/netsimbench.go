package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/netsim"
	"repro/internal/stats"
)

// Netsim runs the parallel discrete-event simulator benchmark behind
// BENCH_netsim.json: the steady-state packet mill at a shard sweep
// (1/2/4/8), a determinism cross-check (same seed, different GOMAXPROCS,
// plus a replay — digests must match), and the 100k-client admission storm
// with its bounded-memory claim.
//
// The speedup gate is CPU-aware by necessity: conservative-window
// parallelism cannot beat wall clock on a single-core host, where the
// sharded driver's win is capacity (100k clients in bounded memory, no
// global lock) rather than speed. The gate therefore demands real speedup
// only where real cores exist, and no worse than a bounded regression at
// one core; the core count is recorded in the artifact so bench-verify
// re-checks the same bar the artifact was generated under.
func Netsim(shardSweep []int) (*stats.Table, *NetsimReport, error) {
	if len(shardSweep) == 0 {
		shardSweep = []int{1, 2, 4, 8}
	}
	cores := runtime.NumCPU()
	rep := &NetsimReport{Cores: cores}

	baseCfg := func(shards int) netsim.LoadConfig {
		return netsim.LoadConfig{
			Shards:          shards,
			Groups:          8,
			ClientsPerGroup: 256,
			Duration:        10 * time.Second,
			SendEvery:       5 * time.Millisecond,
			Seed:            0xC4A05,
		}
	}

	tb := stats.NewTable("BENCH — netsim: sharded virtual clocks, conservative lookahead",
		"shards", "clients", "sim s", "wall ms", "packets", "pkts/s", "pkts/s/core",
		"cross", "clamps", "rounds", "speedup")
	var base float64
	for _, shards := range shardSweep {
		r := netsim.RunLoad(baseCfg(shards))
		if shards == 1 {
			base = r.PacketsPerSec
		}
		speedup := 0.0
		if base > 0 {
			speedup = r.PacketsPerSec / base
		}
		rep.Runs = append(rep.Runs, r)
		tb.AddRow(r.Shards, r.Clients, fmt.Sprintf("%.1f", r.SimSeconds),
			fmt.Sprintf("%.0f", r.WallMillis), r.PacketsDelivered,
			fmt.Sprintf("%.0f", r.PacketsPerSec),
			fmt.Sprintf("%.0f", r.PacketsPerSec/float64(cores)),
			r.CrossSent, r.CrossClamps, r.BarrierRounds,
			fmt.Sprintf("%.2fx", speedup))
	}

	// Determinism cross-check: the 8-shard run replayed under GOMAXPROCS=1
	// and again under all cores must reproduce the digest bit for bit.
	detCfg := baseCfg(8)
	detCfg.Duration = 2 * time.Second
	digestAt := func(procs int) uint64 {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		return netsim.RunLoad(detCfg).Digest
	}
	d1, dN, dR := digestAt(1), digestAt(cores), digestAt(cores)
	rep.DeterminismOK = d1 == dN && dN == dR
	rep.DeterminismDigest = d1
	if !rep.DeterminismOK {
		return nil, nil, fmt.Errorf("netsim: determinism broken: GOMAXPROCS=1 digest %x, =%d %x, replay %x", d1, cores, dN, dR)
	}

	// The scale headline: a 100k-client admission storm in bounded memory.
	storm := netsim.RunAdmissionStorm(netsim.StormConfig{
		Shards:  8,
		Clients: 100_000,
		Seed:    0xC4A05,
	})
	rep.Storm = storm
	tb.AddRow("storm", storm.Clients, fmt.Sprintf("%.1f", storm.SimSeconds),
		fmt.Sprintf("%.0f", storm.WallMillis), storm.PacketsDelivered,
		fmt.Sprintf("%.0f", storm.PacketsPerSec),
		fmt.Sprintf("%.0f", storm.PacketsPerSec/float64(cores)),
		storm.CrossSent, "-", "-", fmt.Sprintf("%.0fMB", storm.HeapMB))

	if err := checkNetsimReport(rep); err != nil {
		return nil, nil, err
	}
	return tb, rep, nil
}

// NetsimReport is the BENCH_netsim.json artifact.
type NetsimReport struct {
	// Cores is runtime.NumCPU() on the generating host; the speedup gate is
	// a function of it, and bench-verify re-applies the same bar.
	Cores             int                 `json:"cores"`
	Runs              []netsim.LoadResult `json:"runs"`
	DeterminismOK     bool                `json:"determinism_ok"`
	DeterminismDigest uint64              `json:"determinism_digest"`
	Storm             netsim.StormResult  `json:"storm"`
}

// netsimSpeedupGate returns the minimum acceptable pkts/s ratio of the
// 4-shard run over the 1-shard run for a host with the given core count:
// real parallel speedup where cores exist, bounded overhead where they
// don't.
func netsimSpeedupGate(cores int) float64 {
	switch {
	case cores >= 4:
		return 2.0
	case cores >= 2:
		return 1.2
	default:
		return 0.8
	}
}

// stormHeapGateMB bounds the 100k-client storm's live heap: the reservoirs
// hold link memory constant per link, so the run fits comfortably under
// this at any packet count.
const stormHeapGateMB = 1024

// checkNetsimReport applies the gates shared by generation (Netsim) and
// re-verification (verifyNetsimFile) so a committed artifact is held to
// exactly the bar it was generated under.
func checkNetsimReport(rep *NetsimReport) error {
	if len(rep.Runs) == 0 {
		return fmt.Errorf("netsim: no shard-sweep runs")
	}
	if rep.Cores < 1 {
		return fmt.Errorf("netsim: cores=%d missing", rep.Cores)
	}
	var pps1, pps4 float64
	for _, r := range rep.Runs {
		if r.Clients <= 0 || r.PacketsDelivered <= 0 || r.PacketsPerSec <= 0 {
			return fmt.Errorf("netsim: shards=%d run missing core fields", r.Shards)
		}
		if r.CrossClamps != 0 {
			return fmt.Errorf("netsim: shards=%d clamped %d cross-shard arrivals; the lookahead does not cover the min cross-shard delay", r.Shards, r.CrossClamps)
		}
		if r.Shards > 1 && r.CrossSent == 0 {
			return fmt.Errorf("netsim: shards=%d moved no cross-shard traffic; the sweep is vacuous", r.Shards)
		}
		switch r.Shards {
		case 1:
			pps1 = r.PacketsPerSec
		case 4:
			pps4 = r.PacketsPerSec
		}
	}
	if pps1 <= 0 || pps4 <= 0 {
		return fmt.Errorf("netsim: sweep must include shards=1 and shards=4 rows")
	}
	gate := netsimSpeedupGate(rep.Cores)
	if speedup := pps4 / pps1; speedup < gate {
		return fmt.Errorf("netsim: 4-shard speedup %.2fx below the %.1fx gate for %d cores", speedup, gate, rep.Cores)
	}
	if !rep.DeterminismOK || rep.DeterminismDigest == 0 {
		return fmt.Errorf("netsim: determinism cross-check missing or failed")
	}
	s := rep.Storm
	if s.Clients < 100_000 {
		return fmt.Errorf("netsim: storm ran %d clients, want ≥ 100000", s.Clients)
	}
	if s.Acked != int64(s.Clients) {
		return fmt.Errorf("netsim: storm acked %d of %d clients", s.Acked, s.Clients)
	}
	if s.HeapMB <= 0 || s.HeapMB > stormHeapGateMB {
		return fmt.Errorf("netsim: storm heap %.0fMB outside (0, %dMB]; link delay reservoirs are not bounding memory", s.HeapMB, stormHeapGateMB)
	}
	if s.Digest == 0 {
		return fmt.Errorf("netsim: storm digest missing")
	}
	if s.Shards > 1 && s.CrossSent == 0 {
		return fmt.Errorf("netsim: storm moved no cross-shard traffic at %d shards; the remote fetches are broken", s.Shards)
	}
	return nil
}

// Package experiments implements the reproduction harness: one runner per
// figure (F1–F5) and per evaluated claim (E1–E8) of the paper, as indexed in
// DESIGN.md. Each runner returns printable tables (and, for the timeline,
// the rendered chart); cmd/experiments prints them and bench_test.go wraps
// them as benchmarks.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/hml"
	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/rtp"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// F1Grammar exercises every production of the Figure 1 grammar: it parses
// the corpus, validates, serializes and re-parses each document, and reports
// composition statistics proving the round trip preserved structure.
func F1Grammar() (*stats.Table, error) {
	tb := stats.NewTable("F1 — Figure 1 grammar: corpus parse & round-trip",
		"document", "sentences", "media", "links", "timed", "round-trip")
	corpus := hml.GrammarCorpus()
	names := make([]string, 0, len(corpus))
	for n := range corpus {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		doc, err := hml.Parse(corpus[name])
		if err != nil {
			return nil, fmt.Errorf("F1 %s: %w", name, err)
		}
		st := hml.Statistics(doc)
		doc2, err := hml.Parse(hml.Serialize(doc))
		if err != nil {
			return nil, fmt.Errorf("F1 %s reparse: %w", name, err)
		}
		rt := "ok"
		if hml.Statistics(doc2) != st {
			rt = "CHANGED"
		}
		tb.AddRow(name, st.Sentences,
			st.Images+st.Audios+st.Videos+st.SyncGroups, st.Links, st.TimedLinks, rt)
	}
	return tb, nil
}

// F2Timeline reconstructs the Figure 2 playout timeline from the markup and
// verifies the temporal relations the figure illustrates.
func F2Timeline() (string, *stats.Table, error) {
	sc, err := scenario.Parse(hml.Figure2Source)
	if err != nil {
		return "", nil, err
	}
	chart := scenario.RenderTimeline(sc, 64)
	if bad := scenario.CheckFigure2Relations(sc); len(bad) > 0 {
		return chart, nil, fmt.Errorf("F2 relations violated: %s", strings.Join(bad, "; "))
	}
	sch := scenario.BuildSchedule(sc)
	if err := sch.Validate(); err != nil {
		return chart, nil, err
	}
	tb := stats.NewTable("F2 — Figure 2 scenario: playout schedule (E_i structures)",
		"stream", "type", "t_i", "d_i", "sync peers")
	for _, e := range sch.Entries {
		peers := strings.Join(e.Peers, ",")
		if peers == "" {
			peers = "-"
		}
		tb.AddRow(e.Stream.ID, e.Stream.Type.String(), e.PlayAt, e.Stream.Duration, peers)
	}
	return chart, tb, nil
}

// F3EndToEnd runs the complete Figure 3 architecture on the Figure 2
// scenario over a clean LAN and reports per-stream playout quality.
func F3EndToEnd(seed uint64) (*stats.Table, *core.Result, error) {
	res, err := core.Play(core.PlayConfig{DocSource: hml.Figure2Source, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	tb := stats.NewTable("F3 — Figure 3 architecture: end-to-end session (clean LAN)",
		"stream", "plays", "expected", "gaps", "drops", "mean late (ms)")
	ids := make([]string, 0, len(res.Playout.Streams))
	for id := range res.Playout.Streams {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s := res.Playout.Streams[id]
		tb.AddRow(id, s.Plays, s.Expected, s.Gaps, s.Drops, s.MeanLatenessMS)
	}
	tb.AddRow("TOTAL", res.Plays(), res.Expected(), res.Gaps(), res.Drops(),
		fmt.Sprintf("startup %.0fms", float64(res.Startup)/float64(time.Millisecond)))
	return tb, res, nil
}

// F4Protocol verifies the Figure 4 state machine: every state reachable,
// every edge drivable, and every illegal input rejected without a state
// change.
func F4Protocol() (*stats.Table, error) {
	edges := protocol.Edges()
	states := protocol.States()
	inputs := protocol.Inputs()

	// BFS paths to each state.
	paths := map[protocol.State][]protocol.Input{protocol.StIdle: {}}
	frontier := []protocol.State{protocol.StIdle}
	for len(frontier) > 0 {
		s := frontier[0]
		frontier = frontier[1:]
		for _, e := range edges {
			if e.From != s {
				continue
			}
			if _, ok := paths[e.To]; !ok {
				paths[e.To] = append(append([]protocol.Input{}, paths[s]...), e.Input)
				frontier = append(frontier, e.To)
			}
		}
	}
	driven := 0
	for _, e := range edges {
		m := protocol.NewMachine()
		for _, in := range paths[e.From] {
			if err := m.Apply(in); err != nil {
				return nil, fmt.Errorf("F4 replay: %w", err)
			}
		}
		if err := m.Apply(e.Input); err != nil || m.State() != e.To {
			return nil, fmt.Errorf("F4 edge %v--%v: err=%v state=%v", e.From, e.Input, err, m.State())
		}
		driven++
	}
	illegal, rejected := 0, 0
	for _, s := range states {
		m := protocol.NewMachine()
		for _, in := range paths[s] {
			m.Apply(in)
		}
		for _, in := range inputs {
			if m.Can(in) {
				continue
			}
			illegal++
			before := m.State()
			if err := m.Apply(in); err != nil && m.State() == before {
				rejected++
			}
		}
	}
	tb := stats.NewTable("F4 — Figure 4 application state machine",
		"metric", "value")
	tb.AddRow("states", len(states))
	tb.AddRow("reachable states", len(paths))
	tb.AddRow("legal transitions (edges)", len(edges))
	tb.AddRow("edges driven successfully", driven)
	tb.AddRow("illegal (state,input) pairs", illegal)
	tb.AddRow("illegal inputs rejected cleanly", rejected)
	if len(paths) != len(states) || driven != len(edges) || rejected != illegal {
		return tb, fmt.Errorf("F4 coverage incomplete")
	}
	return tb, nil
}

// StackSplit is the F5 byte accounting per protocol path.
type StackSplit struct {
	ControlBytes  int64 // application protocol over the reliable path
	FeedbackBytes int64 // RTCP receiver reports (within control messages)
	StillBytes    int64 // images/text RTP over the reliable (TCP) path
	AVBytes       int64 // audio/video RTP over UDP
	AudioBytes    int64
	VideoBytes    int64
	Packets       int
}

// F5StackSplit plays the Figure 2 scenario while classifying every packet by
// protocol layer, reproducing the Figure 5 protocol-stack division: TCP for
// the scenario and non-time-sensitive media, RTP/UDP for audio/video, RTCP
// feedback, SMTP/MIME for the asynchronous interaction.
func F5StackSplit(seed uint64) (*stats.Table, *StackSplit, error) {
	var split StackSplit
	sniff := func(p netsim.Packet) {
		split.Packets++
		n := int64(p.Size())
		if !p.Reliable {
			// Unreliable datagrams are RTP media.
			split.AVBytes += n
			if pkt, err := rtp.Unmarshal(p.Payload); err == nil {
				switch pkt.PayloadType {
				case rtp.PTPCM, rtp.PTADPCM, rtp.PTVADPCM:
					split.AudioBytes += n
				default:
					split.VideoBytes += n
				}
			}
			return
		}
		// Reliable path: either RTP stills or control messages.
		if pkt, err := rtp.Unmarshal(p.Payload); err == nil &&
			(pkt.PayloadType == rtp.PTJPEG || pkt.PayloadType == rtp.PTGIF || pkt.PayloadType == rtp.PTText) {
			split.StillBytes += n
			return
		}
		split.ControlBytes += n
		if len(p.Payload) > 0 && protocol.MsgType(p.Payload[0]) == protocol.MsgFeedback {
			split.FeedbackBytes += n
		}
	}
	_, err := core.Play(core.PlayConfig{DocSource: hml.Figure2Source, Seed: seed, Sniffer: sniff})
	if err != nil {
		return nil, nil, err
	}
	tb := stats.NewTable("F5 — Figure 5 protocol stack: bytes per path (one Figure 2 session)",
		"layer / path", "bytes", "share")
	total := split.ControlBytes + split.StillBytes + split.AVBytes
	pct := func(b int64) string { return fmt.Sprintf("%.1f%%", 100*float64(b)/float64(total)) }
	tb.AddRow("application control (TCP)", split.ControlBytes, pct(split.ControlBytes))
	tb.AddRow("  of which RTCP feedback", split.FeedbackBytes, pct(split.FeedbackBytes))
	tb.AddRow("stills: RTP over TCP path", split.StillBytes, pct(split.StillBytes))
	tb.AddRow("audio/video: RTP over UDP", split.AVBytes, pct(split.AVBytes))
	tb.AddRow("  audio", split.AudioBytes, pct(split.AudioBytes))
	tb.AddRow("  video", split.VideoBytes, pct(split.VideoBytes))
	tb.AddRow("total", total, "100%")
	return tb, &split, nil
}

// avDoc builds a single synchronized audio+video scenario of the given
// length — the canonical workload for the buffering/sync experiments.
func avDoc(d time.Duration) string {
	return fmt.Sprintf(`<TITLE>av workload</TITLE>
<AU_VI SOURCE=au/a SOURCE=vi/v ID=a ID=v STARTIME=0 DURATION=%s> </AU_VI>`, hml.FormatTime(d))
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/hermes"
	"repro/internal/netsim"
	"repro/internal/qos"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/stats"
)

// E1TimeWindow sweeps the media time window against network jitter and
// measures how the window absorbs delay variation before it reaches the
// presentation (playout gaps / intra-media deadline misses).
func E1TimeWindow(seed uint64, quick bool) (*stats.Table, error) {
	// The buffers calibrate to the jitter present at setup time (the
	// deliberate initial delay waits for the window to fill), so the
	// window's protective value shows when delay variation RISES
	// mid-session: the sweep applies a jitter surge from t=5s onwards and
	// varies the window that must absorb it.
	windows := []time.Duration{80 * time.Millisecond, 250 * time.Millisecond,
		500 * time.Millisecond, 1000 * time.Millisecond, 2000 * time.Millisecond}
	surges := []time.Duration{0, 150 * time.Millisecond, 400 * time.Millisecond, 800 * time.Millisecond}
	if quick {
		windows = windows[1:3]
		surges = surges[1:3]
	}
	tb := stats.NewTable("E1 — media time window vs mid-session jitter surge (20s AV scenario)",
		"window", "jitter surge", "gaps", "miss rate", "startup")
	doc := avDoc(20 * time.Second)
	for _, w := range windows {
		for _, j := range surges {
			cfg := core.PlayConfig{
				DocSource: doc,
				Seed:      seed,
				Link: netsim.LinkConfig{Bandwidth: 8_000_000,
					Delay: 20 * time.Millisecond, Jitter: 20 * time.Millisecond},
			}
			if j > 0 {
				cfg.Phases = []netsim.Phase{{Start: 5 * time.Second,
					Duration: 15 * time.Second, ExtraJitter: j}}
			}
			cfg.Client.Window = w
			cfg.Client.MaxInitialDelay = w*3 + time.Second
			res, err := core.Play(cfg)
			if err != nil {
				return nil, fmt.Errorf("E1 w=%v j=%v: %w", w, j, err)
			}
			missRate := 0.0
			if exp := res.Expected(); exp > 0 {
				missRate = float64(res.Gaps()) / float64(exp)
			}
			tb.AddRow(w, j, res.Gaps(), fmt.Sprintf("%.3f", missRate), res.Startup)
		}
	}
	return tb, nil
}

// E2SkewControl compares the short-term drop/duplicate skew control on and
// off while congestion disturbs the synchronized audio+video group.
func E2SkewControl(seed uint64) (*stats.Table, error) {
	tb := stats.NewTable("E2 — short-term intermedia skew control (drop leader / duplicate laggard)",
		"skew control", "skew mean (ms)", "skew p95 (ms)", "skew max (ms)", "drops", "holds", "gaps")
	for _, enabled := range []bool{false, true} {
		cfg := core.PlayConfig{
			DocSource: avDoc(30 * time.Second),
			Seed:      seed,
			Link: netsim.LinkConfig{Bandwidth: 4_000_000,
				Delay: 20 * time.Millisecond, Jitter: 20 * time.Millisecond, Loss: 0.005},
			// A long jitter surge: multi-fragment video frames complete
			// only when their LAST fragment arrives, so large per-packet
			// jitter delays video far more than single-packet audio —
			// sustained asymmetric lateness, i.e. intermedia skew.
			Phases: []netsim.Phase{{Start: 6 * time.Second, Duration: 16 * time.Second,
				ExtraJitter: 600 * time.Millisecond}},
		}
		cfg.Client.Playout.EnableSkewControl = enabled
		cfg.Client.Playout.EnableWatermarkControl = enabled
		cfg.Server.DisableGrading = true // isolate the short-term mechanism
		res, err := core.Play(cfg)
		if err != nil {
			return nil, fmt.Errorf("E2 enabled=%v: %w", enabled, err)
		}
		var sk *stats.Sample
		for _, s := range res.Skew {
			sk = s
		}
		if sk == nil {
			return nil, fmt.Errorf("E2: no skew sample")
		}
		drops, holds := 0, 0
		for _, s := range res.Playout.Streams {
			drops += s.Drops
			holds += s.Holds
		}
		label := "off"
		if enabled {
			label = "on"
		}
		tb.AddRow(label, sk.Mean(), sk.Percentile(95), sk.Max(), drops, holds, res.Gaps())
	}
	return tb, nil
}

// E3Grading compares the long-term feedback-driven quality grading on and
// off across a scripted congestion episode: loss seen by the receiver,
// delivered quality level over time, and the degradation order (video before
// audio).
func E3Grading(seed uint64) (*stats.Table, error) {
	tb := stats.NewTable("E3 — long-term QoS grading under congestion (30s AV scenario)",
		"grading", "net loss", "gaps", "degrades", "first degrade", "mean video level", "restored")
	for _, enabled := range []bool{false, true} {
		cfg := core.PlayConfig{
			DocSource: avDoc(30 * time.Second),
			Seed:      seed,
			Link: netsim.LinkConfig{Bandwidth: 2_500_000,
				Delay: 30 * time.Millisecond, Jitter: 20 * time.Millisecond, Loss: 0.002},
			// A bandwidth bottleneck: the full-quality AV mix (~1.6 Mb/s)
			// no longer fits, so queue drops mount until the grading
			// mechanism sheds rate.
			Phases: []netsim.Phase{{Start: 5 * time.Second, Duration: 14 * time.Second,
				BandwidthFactor: 0.45}},
		}
		cfg.Server.DisableGrading = !enabled
		cfg.Client.FeedbackInterval = 500 * time.Millisecond
		res, err := core.Play(cfg)
		if err != nil {
			return nil, fmt.Errorf("E3 enabled=%v: %w", enabled, err)
		}
		first := "-"
		degrades := 0
		restored := 0
		for _, a := range res.Actions {
			switch a.Kind {
			case qos.ActDegrade, qos.ActCutoff:
				if degrades == 0 {
					first = a.StreamID
				}
				degrades++
			case qos.ActUpgrade, qos.ActRestore:
				restored++
			}
		}
		meanLevel := 0.0
		if s := res.LevelSeries["v"]; s != nil {
			meanLevel = s.TimeWeightedMean(40 * time.Second)
		}
		label := "off"
		if enabled {
			label = "on"
		}
		tb.AddRow(label, fmt.Sprintf("%.3f", res.Net.LossRate()), res.Gaps(),
			degrades, first, meanLevel, restored)
	}
	return tb, nil
}

// E4Combined evaluates the four {short-term, long-term}² configurations on
// the Figure 2 scenario under congestion — the headline claim that the two
// mechanisms together preserve a coherent presentation.
func E4Combined(seed uint64) (*stats.Table, error) {
	tb := stats.NewTable("E4 — combined mechanisms: presentation quality under congestion",
		"buffer/skew ctl", "qos grading", "quality score", "gaps", "skew p95 (ms)", "net loss")
	doc := avDoc(30 * time.Second)
	for _, short := range []bool{false, true} {
		for _, long := range []bool{false, true} {
			cfg := core.PlayConfig{
				DocSource: doc,
				Seed:      seed,
				Link: netsim.LinkConfig{Bandwidth: 2_500_000,
					Delay: 30 * time.Millisecond, Jitter: 40 * time.Millisecond, Loss: 0.005},
				Phases: []netsim.Phase{{Start: 6 * time.Second, Duration: 12 * time.Second,
					BandwidthFactor: 0.45, ExtraJitter: 60 * time.Millisecond}},
			}
			cfg.Client.Playout.EnableSkewControl = short
			cfg.Client.Playout.EnableWatermarkControl = short
			cfg.Server.DisableGrading = !long
			cfg.Client.FeedbackInterval = 500 * time.Millisecond
			res, err := core.Play(cfg)
			if err != nil {
				return nil, fmt.Errorf("E4 %v/%v: %w", short, long, err)
			}
			skewP95 := 0.0
			for _, s := range res.Skew {
				if v := s.Percentile(95); v > skewP95 {
					skewP95 = v
				}
			}
			tb.AddRow(onOff(short), onOff(long),
				fmt.Sprintf("%.3f", res.QualityScore()), res.Gaps(),
				skewP95, fmt.Sprintf("%.3f", res.Net.LossRate()))
		}
	}
	return tb, nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// E5Admission sweeps offered load across mixed pricing classes and reports
// per-class admission outcomes, reproducing the rule that "a user who pays
// more should be serviced, even though it affects the other users".
func E5Admission(seed uint64) (*stats.Table, error) {
	tb := stats.NewTable("E5 — connection admission by offered load and pricing class",
		"offered load", "class", "admitted", "degraded", "rejected", "squeezes")
	rng := stats.NewRNG(seed)
	for _, load := range []float64{0.5, 1.0, 1.5, 2.0} {
		adm := qos.NewAdmission(100_000_000) // 100 Mb/s server
		classes := []qos.PricingClass{qos.Economy, qos.Standard, qos.Premium}
		// Each connection asks ~2 Mb/s; request until offered = load×capacity.
		offered := 0.0
		squeezes := 0
		for offered < load*100_000_000 {
			class := classes[rng.Intn(3)]
			peak := rng.Uniform(1_000_000, 3_000_000)
			dec := adm.Request(qos.ConnRequest{
				User: "u", Class: class, PeakRate: peak, MinRate: peak / 4,
			})
			squeezes += len(dec.Squeezed)
			offered += peak
		}
		for _, c := range classes {
			a, d, r := adm.Counts(c)
			tb.AddRow(fmt.Sprintf("%.1f×", load), c.String(), a, d, r, squeezes)
		}
	}
	return tb, nil
}

// E6Startup sweeps the media time window and reports the startup-latency vs
// smoothness trade-off: the deliberate initial delay is the price paid for
// gap-free playout.
func E6Startup(seed uint64) (*stats.Table, error) {
	tb := stats.NewTable("E6 — startup delay vs playout smoothness (window sweep, 150ms jitter)",
		"window", "startup", "gaps", "quality score")
	doc := avDoc(15 * time.Second)
	for _, w := range []time.Duration{40 * time.Millisecond, 150 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond} {
		cfg := core.PlayConfig{
			DocSource: doc,
			Seed:      seed,
			Link: netsim.LinkConfig{Bandwidth: 8_000_000,
				Delay: 25 * time.Millisecond, Jitter: 150 * time.Millisecond},
		}
		cfg.Client.Window = w
		cfg.Client.MaxInitialDelay = w*3 + time.Second
		res, err := core.Play(cfg)
		if err != nil {
			return nil, fmt.Errorf("E6 w=%v: %w", w, err)
		}
		tb.AddRow(w, res.Startup, res.Gaps(), fmt.Sprintf("%.3f", res.QualityScore()))
	}
	return tb, nil
}

// E7Suspend measures cross-server navigation: returning to a suspended
// connection inside the grace period preserves the session and skips
// re-admission; returning after expiry requires a full reconnection.
func E7Suspend(seed uint64) (*stats.Table, error) {
	tb := stats.NewTable("E7 — suspended-connection grace period",
		"return after", "grace", "session kept", "re-admissions", "outcome state")
	for _, c := range []struct {
		wait, grace time.Duration
	}{
		{5 * time.Second, 20 * time.Second},
		{40 * time.Second, 20 * time.Second},
	} {
		svc, err := hermes.NewSimulated(hermes.Config{
			Seed: seed,
			Servers: []hermes.ServerSpec{
				{Name: "srv-a", Lessons: hermes.MakeCourse("a", 1, 1, 5*time.Second),
					Options: serverOptsWithGrace(c.grace)},
				{Name: "srv-b", Lessons: hermes.MakeCourse("b", 1, 1, 5*time.Second),
					Options: serverOptsWithGrace(c.grace)},
			},
		})
		if err != nil {
			return nil, err
		}
		svc.Enroll("u", "pw", qos.Standard)
		b := svc.NewBrowser("u", "pw", client.Options{})
		b.Connect("srv-a")
		svc.Run(time.Second)
		b.RequestDoc("a-L1")
		svc.Run(2 * time.Second)
		b.FollowLink(scenario.Link{Target: "b-L1", Host: "srv-b"})
		svc.Run(c.wait)
		admBefore, _, _ := svc.Servers["srv-a"].Admission().Counts(qos.Standard)
		kept := svc.Servers["srv-a"].Sessions() == 1
		if kept {
			b.ReturnTo("srv-a")
		} else {
			b.Connect("srv-a")
		}
		svc.Run(2 * time.Second)
		admAfter, _, _ := svc.Servers["srv-a"].Admission().Counts(qos.Standard)
		tb.AddRow(c.wait, c.grace, kept, admAfter-admBefore, b.State("srv-a").String())
	}
	return tb, nil
}

func serverOptsWithGrace(g time.Duration) (o server.Options) {
	o.Grace = g
	return o
}

// E8Search measures federated search latency and correctness against the
// number of Hermes servers.
func E8Search(seed uint64, quick bool) (*stats.Table, error) {
	counts := []int{1, 2, 4, 8}
	if quick {
		counts = []int{1, 4}
	}
	tb := stats.NewTable("E8 — federated search across servers",
		"servers", "lessons", "hits", "latency")
	for _, n := range counts {
		var specs []hermes.ServerSpec
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("course%d", i)
			specs = append(specs, hermes.ServerSpec{
				Name:    fmt.Sprintf("srv-%d", i),
				Lessons: hermes.MakeCourse(name, 3, 1, 5*time.Second),
			})
		}
		svc, err := hermes.NewSimulated(hermes.Config{Seed: seed, Servers: specs})
		if err != nil {
			return nil, err
		}
		svc.Enroll("u", "pw", qos.Standard)
		b := svc.NewBrowser("u", "pw", client.Options{})
		b.Connect("srv-0")
		svc.Run(time.Second)
		start := svc.Clk.Now()
		b.Search("unit 2") // every course's unit 2 matches by title
		var latency time.Duration
		for i := 0; i < 100; i++ {
			svc.Run(50 * time.Millisecond)
			if _, done := b.SearchResults(); done {
				latency = svc.Clk.Now().Sub(start)
				break
			}
		}
		hits, done := b.SearchResults()
		if !done {
			return nil, fmt.Errorf("E8 n=%d: search never completed", n)
		}
		if len(hits) != n {
			return nil, fmt.Errorf("E8 n=%d: hits=%d", n, len(hits))
		}
		tb.AddRow(n, 3*n, len(hits), latency)
	}
	return tb, nil
}

package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// row extracts a rendered table's data rows as trimmed cell slices, which is
// crude but keeps the assertions against exactly what the harness prints.
func rows(t *testing.T, s string) [][]string {
	t.Helper()
	var out [][]string
	lines := strings.Split(strings.TrimSpace(s), "\n")
	dataStart := 0
	for i, l := range lines {
		if strings.HasPrefix(l, "---") {
			dataStart = i + 1
			break
		}
	}
	for _, l := range lines[dataStart:] {
		out = append(out, strings.Fields(l))
	}
	return out
}

func numAt(t *testing.T, cells []string, i int) float64 {
	t.Helper()
	v := strings.TrimSuffix(strings.TrimSuffix(cells[i], "ms"), "%")
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		t.Fatalf("cell %d = %q: %v", i, cells[i], err)
	}
	return f
}

func TestF1GrammarCorpusAllRoundTrip(t *testing.T) {
	tb, err := F1Grammar()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() < 10 {
		t.Fatalf("corpus rows = %d", tb.Rows())
	}
	if strings.Contains(tb.String(), "CHANGED") {
		t.Fatalf("round trip changed structure:\n%s", tb)
	}
}

func TestF2TimelineMatchesFigure(t *testing.T) {
	chart, tb, err := F2Timeline()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, "I1") || !strings.Contains(chart, "link") {
		t.Fatalf("chart:\n%s", chart)
	}
	if tb.Rows() != 5 {
		t.Fatalf("schedule rows = %d", tb.Rows())
	}
}

func TestF3EndToEndCleanLAN(t *testing.T) {
	_, res, err := F3EndToEnd(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.QualityScore() < 0.9 {
		t.Fatalf("clean LAN quality = %v", res.QualityScore())
	}
}

func TestF4ProtocolFullCoverage(t *testing.T) {
	if _, err := F4Protocol(); err != nil {
		t.Fatal(err)
	}
}

func TestF5StackShape(t *testing.T) {
	_, split, err := F5StackSplit(1)
	if err != nil {
		t.Fatal(err)
	}
	// Video dominates bytes; audio < video; control is a small fraction;
	// feedback non-zero; stills present.
	if split.VideoBytes <= split.AudioBytes {
		t.Fatalf("video %d ≤ audio %d", split.VideoBytes, split.AudioBytes)
	}
	if split.StillBytes == 0 || split.FeedbackBytes == 0 {
		t.Fatalf("stills %d feedback %d", split.StillBytes, split.FeedbackBytes)
	}
	total := split.ControlBytes + split.StillBytes + split.AVBytes
	if float64(split.ControlBytes)/float64(total) > 0.1 {
		t.Fatalf("control share = %d/%d", split.ControlBytes, total)
	}
}

func TestE1WindowAbsorbsJitter(t *testing.T) {
	tb, err := E1TimeWindow(1, false)
	if err != nil {
		t.Fatal(err)
	}
	rs := rows(t, tb.String())
	// Build map window→jitter→gaps.
	gaps := map[string]map[string]float64{}
	for _, r := range rs {
		w, j := r[0], r[1]
		if gaps[w] == nil {
			gaps[w] = map[string]float64{}
		}
		gaps[w][j] = numAt(t, r, 2)
	}
	// At a 400ms surge: a large window must beat a tiny one decisively.
	small := gaps["80.0ms"]["400.0ms"]
	large := gaps["1000.0ms"]["400.0ms"]
	if small < 100 || large >= small/4 {
		t.Fatalf("window did not absorb the surge: 80ms→%v gaps, 1000ms→%v gaps\n%s", small, large, tb)
	}
	// Gaps shrink monotonically with window at the 800ms surge.
	prev := -1.0
	for _, w := range []string{"80.0ms", "250.0ms", "500.0ms", "1000.0ms"} {
		g := gaps[w]["800.0ms"]
		if prev >= 0 && g > prev {
			t.Fatalf("gaps not decreasing with window at 800ms surge\n%s", tb)
		}
		prev = g
	}
	// With no surge even a small window is gap-free.
	if g := gaps["250.0ms"]["0.0ms"]; g > 20 {
		t.Fatalf("clean network gaps = %v\n%s", g, tb)
	}
}

func TestE2SkewControlBoundsSkew(t *testing.T) {
	tb, err := E2SkewControl(1)
	if err != nil {
		t.Fatal(err)
	}
	rs := rows(t, tb.String())
	if len(rs) != 2 {
		t.Fatalf("rows:\n%s", tb)
	}
	offP95, onP95 := numAt(t, rs[0], 1+1), numAt(t, rs[1], 1+1)
	if onP95 >= offP95 {
		t.Fatalf("skew control did not help: off p95=%v on p95=%v\n%s", offP95, onP95, tb)
	}
	onDrops := numAt(t, rs[1], 4)
	if onDrops == 0 {
		t.Fatalf("control on but no drops\n%s", tb)
	}
}

func TestE3GradingReducesLoss(t *testing.T) {
	tb, err := E3Grading(1)
	if err != nil {
		t.Fatal(err)
	}
	rs := rows(t, tb.String())
	offLoss, onLoss := numAt(t, rs[0], 1), numAt(t, rs[1], 1)
	if onLoss >= offLoss {
		t.Fatalf("grading did not reduce loss: off=%v on=%v\n%s", offLoss, onLoss, tb)
	}
	// Degrades happen only with grading on, and hit video first.
	if deg := numAt(t, rs[1], 3); deg == 0 {
		t.Fatalf("no degrades with grading on\n%s", tb)
	}
	if rs[1][4] != "v" {
		t.Fatalf("first degrade = %q, want v\n%s", rs[1][4], tb)
	}
	if deg := numAt(t, rs[0], 3); deg != 0 {
		t.Fatalf("degrades with grading off\n%s", tb)
	}
}

func TestE4CombinedBeatsBaseline(t *testing.T) {
	tb, err := E4Combined(1)
	if err != nil {
		t.Fatal(err)
	}
	rs := rows(t, tb.String())
	if len(rs) != 4 {
		t.Fatalf("rows:\n%s", tb)
	}
	// Rows in order: off/off, off/on, on/off, on/on.
	baseline := numAt(t, rs[0], 2)
	combined := numAt(t, rs[3], 2)
	if combined <= baseline {
		t.Fatalf("combined (%v) did not beat baseline (%v)\n%s", combined, baseline, tb)
	}
}

func TestE5PremiumIsServedUnderOverload(t *testing.T) {
	tb, err := E5Admission(1)
	if err != nil {
		t.Fatal(err)
	}
	rs := rows(t, tb.String())
	// At 2.0× load: premium rejection rate must be far below economy's.
	var ecoAdm, ecoRej, premAdm, premRej float64
	for _, r := range rs {
		if r[0] != "2.0×" {
			continue
		}
		switch r[1] {
		case "economy":
			ecoAdm, ecoRej = numAt(t, r, 2), numAt(t, r, 4)
		case "premium":
			premAdm, premRej = numAt(t, r, 2), numAt(t, r, 4)
		}
	}
	ecoRate := ecoRej / (ecoAdm + ecoRej + 1)
	premRate := premRej / (premAdm + premRej + 1)
	if premRate >= ecoRate {
		t.Fatalf("premium rejected as often as economy: %v vs %v\n%s", premRate, ecoRate, tb)
	}
}

func TestE6StartupTradeoff(t *testing.T) {
	tb, err := E6Startup(1)
	if err != nil {
		t.Fatal(err)
	}
	rs := rows(t, tb.String())
	// Startup grows with window; gaps shrink.
	firstStartup := numAt(t, rs[0], 1)
	lastStartup := numAt(t, rs[len(rs)-1], 1)
	if lastStartup <= firstStartup {
		t.Fatalf("startup not increasing\n%s", tb)
	}
	firstGaps := numAt(t, rs[0], 2)
	lastGaps := numAt(t, rs[len(rs)-1], 2)
	if lastGaps >= firstGaps {
		t.Fatalf("gaps not decreasing with window: %v → %v\n%s", firstGaps, lastGaps, tb)
	}
}

func TestE7GracePreservesSession(t *testing.T) {
	tb, err := E7Suspend(1)
	if err != nil {
		t.Fatal(err)
	}
	rs := rows(t, tb.String())
	if len(rs) != 2 {
		t.Fatalf("rows:\n%s", tb)
	}
	// Within grace: kept=true, 0 re-admissions. After: kept=false, 1.
	if rs[0][2] != "true" || numAt(t, rs[0], 3) != 0 {
		t.Fatalf("within-grace row = %v\n%s", rs[0], tb)
	}
	if rs[1][2] != "false" || numAt(t, rs[1], 3) != 1 {
		t.Fatalf("after-grace row = %v\n%s", rs[1], tb)
	}
	for _, r := range rs {
		if r[4] != "browsing" {
			t.Fatalf("final state = %v\n%s", r[4], tb)
		}
	}
}

func TestE8SearchScales(t *testing.T) {
	tb, err := E8Search(1, false)
	if err != nil {
		t.Fatal(err)
	}
	rs := rows(t, tb.String())
	if len(rs) != 4 {
		t.Fatalf("rows:\n%s", tb)
	}
	// Hits equal server count (one matching lesson each).
	for _, r := range rs {
		if r[0] != r[2] {
			t.Fatalf("hits %s != servers %s\n%s", r[2], r[0], tb)
		}
	}
	// Fan-out latency stays bounded (one extra RTT, not linear blowup):
	// the 8-server search takes < 4× the single-server one.
	l1 := numAt(t, rs[0], 3)
	l8 := numAt(t, rs[3], 3)
	if l8 > 4*l1+100 {
		t.Fatalf("latency blowup: %v → %v\n%s", l1, l8, tb)
	}
}

func TestQuickVariantsRun(t *testing.T) {
	if _, err := E1TimeWindow(2, true); err != nil {
		t.Fatal(err)
	}
	if _, err := E8Search(2, true); err != nil {
		t.Fatal(err)
	}
}

func TestAvDocHelper(t *testing.T) {
	src := avDoc(12 * time.Second)
	if !strings.Contains(src, "DURATION=12") {
		t.Fatalf("avDoc = %q", src)
	}
}

func TestA1VideoFirstProtectsAudio(t *testing.T) {
	tb, err := A1DegradeOrder(1)
	if err != nil {
		t.Fatal(err)
	}
	rs := rows(t, tb.String())
	onAudio := numAt(t, rs[0], 1)
	offAudio := numAt(t, rs[1], 1)
	if onAudio >= offAudio {
		t.Fatalf("video-first did not protect audio: %v vs %v\n%s", onAudio, offAudio, tb)
	}
	if onAudio != 0 {
		t.Fatalf("audio degraded despite video headroom\n%s", tb)
	}
}

func TestA2HysteresisReducesFlapping(t *testing.T) {
	tb, err := A2Hysteresis(1)
	if err != nil {
		t.Fatal(err)
	}
	rs := rows(t, tb.String())
	shortHold := numAt(t, rs[0], 1)
	longHold := numAt(t, rs[1], 1)
	if longHold >= shortHold {
		t.Fatalf("hysteresis did not reduce grade changes: %v vs %v\n%s", longHold, shortHold, tb)
	}
}

func TestA3SafetyFactorTradeoff(t *testing.T) {
	tb, err := A3WindowSafety(1)
	if err != nil {
		t.Fatal(err)
	}
	rs := rows(t, tb.String())
	// Startup grows with safety; the smallest factor shows gaps that the
	// larger ones eliminate.
	if numAt(t, rs[len(rs)-1], 2) <= numAt(t, rs[0], 2) {
		t.Fatalf("startup not increasing with safety\n%s", tb)
	}
	if numAt(t, rs[0], 3) == 0 {
		t.Fatalf("under-provisioned window showed no gaps (disturbance too weak)\n%s", tb)
	}
	if numAt(t, rs[len(rs)-1], 3) != 0 {
		t.Fatalf("largest window still gapping\n%s", tb)
	}
}

func TestE9AdmissionCapsConcurrency(t *testing.T) {
	tb, err := E9Scale(1, false)
	if err != nil {
		t.Fatal(err)
	}
	rs := rows(t, tb.String())
	// Admitted count saturates at the capacity limit while offered load
	// keeps growing, and per-session quality stays flat.
	lastAdmitted := numAt(t, rs[len(rs)-1], 1)
	if lastAdmitted >= numAt(t, rs[len(rs)-1], 0) {
		t.Fatalf("no rejections at 2× overload\n%s", tb)
	}
	for _, r := range rs[1:] {
		if numAt(t, r, 1) != lastAdmitted && r[0] != "2" {
			if numAt(t, r, 0) > lastAdmitted {
				if numAt(t, r, 1) != lastAdmitted {
					t.Fatalf("admitted count not saturating\n%s", tb)
				}
			}
		}
	}
	// Mean plays per admitted session stays within 5% across loads.
	base := numAt(t, rs[0], 4)
	for _, r := range rs {
		if m := numAt(t, r, 4); m < base*0.95 || m > base*1.05 {
			t.Fatalf("admitted sessions degraded by overload: %v vs %v\n%s", m, base, tb)
		}
	}
}

func TestE10GradingClearsSharedUplink(t *testing.T) {
	tb, err := E10SharedUplink(1)
	if err != nil {
		t.Fatal(err)
	}
	rs := rows(t, tb.String())
	offGaps, onGaps := numAt(t, rs[0], 2), numAt(t, rs[1], 2)
	if onGaps >= offGaps/2 {
		t.Fatalf("grading did not clear the shared uplink: %v vs %v\n%s", onGaps, offGaps, tb)
	}
	offDrops, onDrops := numAt(t, rs[0], 4), numAt(t, rs[1], 4)
	if onDrops >= offDrops/2 {
		t.Fatalf("uplink drops not reduced: %v vs %v\n%s", onDrops, offDrops, tb)
	}
	if numAt(t, rs[1], 1) == 0 {
		t.Fatalf("no degrades with grading on\n%s", tb)
	}
}

// The whole harness is deterministic: the same seed renders the same
// tables byte for byte.
func TestHarnessDeterminism(t *testing.T) {
	t1, _, err := F3EndToEnd(99)
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := F3EndToEnd(99)
	if err != nil {
		t.Fatal(err)
	}
	if t1.String() != t2.String() {
		t.Fatalf("F3 diverged:\n%s\n---\n%s", t1, t2)
	}
	e1, err := E4Combined(99)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := E4Combined(99)
	if err != nil {
		t.Fatal(err)
	}
	if e1.String() != e2.String() {
		t.Fatalf("E4 diverged:\n%s\n---\n%s", e1, e2)
	}
}

package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/rtp"
)

// longAVDoc runs for two virtual minutes so every scenario here lands
// mid-playout.
const longAVDoc = `<TITLE>long</TITLE>
<AU_VI SOURCE=au/a SOURCE=vi/v ID=a ID=v STARTIME=0 DURATION=120> </AU_VI>`

// attachClient connects a second (or third…) fake client and requests the
// document, capturing its replies like the harness does for fakeClient.
func attachClient(t *testing.T, h *harness, host string, portBase int) protocol.DocResponse {
	t.Helper()
	addr := netsim.MakeAddr(host, 6000)
	var replies []struct {
		mt   protocol.MsgType
		body []byte
	}
	h.net.Listen(addr, func(p netsim.Packet) {
		mt, body, err := protocol.Decode(p.Payload)
		if err == nil {
			replies = append(replies, struct {
				mt   protocol.MsgType
				body []byte
			}{mt, append([]byte(nil), body...)})
		}
	})
	send := func(mt protocol.MsgType, body interface{}) {
		h.net.Send(netsim.Packet{
			From: addr, To: netsim.MakeAddr("srv", ControlPort),
			Payload: protocol.MustEncode(mt, body), Reliable: true,
		})
		h.clk.RunFor(time.Second)
	}
	send(protocol.MsgConnect, protocol.Connect{User: "u", Password: "p"})
	send(protocol.MsgDocRequest, protocol.DocRequest{Name: "doc", MediaPortBase: portBase, WindowMS: 300})
	for i := len(replies) - 1; i >= 0; i-- {
		if replies[i].mt == protocol.MsgDocResponse {
			var dr protocol.DocResponse
			if err := protocol.DecodeBody(replies[i].body, &dr); err != nil {
				t.Fatal(err)
			}
			if !dr.OK {
				t.Fatalf("doc response for %s = %+v", host, dr)
			}
			return dr
		}
	}
	t.Fatalf("no doc response for %s", host)
	return protocol.DocResponse{}
}

func announcedPort(t *testing.T, dr protocol.DocResponse, streamID string) (int, uint32) {
	t.Helper()
	for _, ann := range dr.Streams {
		if ann.StreamID == streamID {
			return ann.Port, ann.SSRC
		}
	}
	t.Fatalf("stream %s not announced: %+v", streamID, dr.Streams)
	return 0, 0
}

func videoFlowStat(t *testing.T, srv *Server) FlowStat {
	t.Helper()
	for _, st := range srv.FlowStats() {
		if st.Stream == "v" {
			return st
		}
	}
	t.Fatalf("no shared video flow: %+v", srv.FlowStats())
	return FlowStat{}
}

// TestSharedFlowFanOutLifecycle walks the whole flow lifecycle: two viewers
// of the same document share one paced flow per time-sensitive stream (one
// encode, two deliveries, one announced SSRC), a pause detaches one
// subscriber without disturbing the other, and the last leave tears the
// flow down.
func TestSharedFlowFanOutLifecycle(t *testing.T) {
	h := newHarness(t, Options{SharedFlows: true, PreRoll: 300 * time.Millisecond})
	h.srv.Database().Put("doc", longAVDoc, "")

	dr1 := connectAndRequest(t, h)
	dr2 := attachClient(t, h, "fake2", 9100)

	// Both sessions ride the same flows: one per time-sensitive stream.
	stats := h.srv.FlowStats()
	if len(stats) != 2 {
		t.Fatalf("flows = %+v, want audio+video", stats)
	}
	for _, st := range stats {
		if st.Subscribers != 2 {
			t.Fatalf("flow %s has %d subscribers, want 2", st.Stream, st.Subscribers)
		}
	}
	// The flow's SSRC is announced to every subscriber.
	_, ssrc1 := announcedPort(t, dr1, "v")
	p2, ssrc2 := announcedPort(t, dr2, "v")
	if ssrc1 != ssrc2 {
		t.Fatalf("video SSRC differs across subscribers: %d vs %d", ssrc1, ssrc2)
	}

	p1, _ := announcedPort(t, dr1, "v")
	var c1Pkts, c2Pkts int
	h.net.Listen(netsim.MakeAddr("fake", p1), func(netsim.Packet) { c1Pkts++ })
	h.net.Listen(netsim.MakeAddr("fake2", p2), func(netsim.Packet) { c2Pkts++ })
	vf0 := videoFlowStat(t, h.srv)
	h.clk.RunFor(2 * time.Second)
	if c1Pkts == 0 || c2Pkts == 0 {
		t.Fatalf("fan-out not delivering: c1=%d c2=%d", c1Pkts, c2Pkts)
	}
	// One encode, two deliveries — measured over a window where both
	// subscribers were attached (c1 rode the flow alone before c2 joined,
	// so cumulative totals would under-count the fan-out).
	vf := videoFlowStat(t, h.srv)
	dFrames, dDelivered := int64(vf.Frames-vf0.Frames), vf.Delivered-vf0.Delivered
	if dFrames == 0 || dDelivered < 2*dFrames-4 {
		t.Fatalf("flow frames+=%d delivered+=%d while both attached, want 2× fan-out", dFrames, dDelivered)
	}

	// c1 pauses: it detaches, c2 rides on undisturbed.
	h.send(protocol.MsgPause, protocol.MediaOp{})
	if vf := videoFlowStat(t, h.srv); vf.Subscribers != 1 {
		t.Fatalf("subscribers after pause = %d, want 1", vf.Subscribers)
	}
	c1Base, c2Base := c1Pkts, c2Pkts
	h.clk.RunFor(2 * time.Second)
	if c1Pkts > c1Base+2 {
		t.Fatalf("paused subscriber kept receiving: %d → %d", c1Base, c1Pkts)
	}
	if c2Pkts <= c2Base {
		t.Fatal("remaining subscriber starved by the pause")
	}

	// c1 resumes privately; the flow keeps one subscriber.
	h.send(protocol.MsgResume, protocol.MediaOp{})
	c1Base = c1Pkts
	h.clk.RunFor(2 * time.Second)
	if c1Pkts <= c1Base {
		t.Fatal("resumed subscriber not receiving from its private sender")
	}
	if vf := videoFlowStat(t, h.srv); vf.Subscribers != 1 {
		t.Fatalf("subscribers after private resume = %d, want 1", vf.Subscribers)
	}

	// The last subscriber leaves: the flow tears down; the private sender
	// is untouched.
	h.net.Send(netsim.Packet{
		From: netsim.MakeAddr("fake2", 6000), To: netsim.MakeAddr("srv", ControlPort),
		Payload: protocol.MustEncode(protocol.MsgDisconnect, protocol.Disconnect{}), Reliable: true,
	})
	h.clk.RunFor(time.Second)
	if stats := h.srv.FlowStats(); len(stats) != 0 {
		t.Fatalf("flows after last leave = %+v, want none", stats)
	}
	c1Base = c1Pkts
	h.clk.RunFor(2 * time.Second)
	if c1Pkts <= c1Base {
		t.Fatal("private sender stopped by flow teardown")
	}
}

// TestSharedFlowLateJoinerCatchUp verifies a mid-playout joiner receives a
// unicast catch-up patch aligned back to an I-frame, with the original frame
// indices, then rides the live cursor.
func TestSharedFlowLateJoinerCatchUp(t *testing.T) {
	h := newHarness(t, Options{SharedFlows: true, PreRoll: 300 * time.Millisecond})
	h.srv.Database().Put("doc", longAVDoc, "")

	connectAndRequest(t, h)
	h.clk.RunFor(3 * time.Second) // the flow fills its segment cache

	// Pre-listen on the late joiner's whole announced range so the patch
	// (which lands right after the DocResponse) is observed.
	type rx struct {
		idx  int
		kind media.FrameKind
	}
	var got []rx
	for p := 9100; p < 9110; p++ {
		h.net.Listen(netsim.MakeAddr("fake2", p), func(p netsim.Packet) {
			if len(p.Payload) <= rtp.HeaderSize {
				return
			}
			hdr, _, err := media.ParseFrameHeader(p.Payload[rtp.HeaderSize:])
			if err == nil {
				got = append(got, rx{int(hdr.Index), hdr.Kind})
			}
		})
	}
	attachClient(t, h, "fake2", 9100)
	h.clk.RunFor(time.Second)

	if vf := videoFlowStat(t, h.srv); vf.Subscribers != 2 {
		t.Fatalf("late joiner not attached: %+v", vf)
	}
	if len(got) == 0 {
		t.Fatal("late joiner received nothing")
	}
	minIdx, kindAtMin := int(^uint(0)>>1), media.FrameKind(0)
	for _, r := range got {
		if r.idx < minIdx {
			minIdx, kindAtMin = r.idx, r.kind
		}
	}
	// The patch reaches back to a mid-stream GoP start, not to frame 0 and
	// not only the live cursor.
	if minIdx == 0 {
		t.Fatal("joiner was replayed from the beginning, not patched")
	}
	if kindAtMin != media.FrameI {
		t.Fatalf("patch starts on a %v frame at idx %d, want an I-frame", kindAtMin, minIdx)
	}
}

// TestSharedFlowGradeDivergenceDetaches hammers one subscriber's video with
// loss reports until grading moves it off the flow's level; that subscriber
// must detach onto a private sender while the other keeps the shared flow.
func TestSharedFlowGradeDivergenceDetaches(t *testing.T) {
	h := newHarness(t, Options{SharedFlows: true, PreRoll: 300 * time.Millisecond})
	h.srv.Database().Put("doc", longAVDoc, "")

	dr1 := connectAndRequest(t, h)
	dr2 := attachClient(t, h, "fake2", 9100)
	_, videoSSRC := announcedPort(t, dr1, "v")

	mgr := h.srv.QoSManager(fakeClient)
	for i := 0; i < 10; i++ {
		rr := rtp.ReceiverReport{SSRC: 1, Reports: []rtp.ReceptionReport{{
			SSRC: videoSSRC, FractionLost: 200,
		}}}
		h.send(protocol.MsgFeedback, protocol.Feedback{RTCP: rr.Marshal()})
		h.clk.RunFor(3 * time.Second)
		if lvl, stopped := mgr.Level("v"); lvl > 0 || stopped {
			break
		}
	}
	if lvl, stopped := mgr.Level("v"); lvl == 0 && !stopped {
		t.Fatal("grading never acted on the video")
	}
	if vf := videoFlowStat(t, h.srv); vf.Subscribers != 1 {
		t.Fatalf("video flow subscribers after divergence = %d, want 1", vf.Subscribers)
	}
	// The undisturbed subscriber still receives shared frames.
	p2, _ := announcedPort(t, dr2, "v")
	var c2Pkts int
	h.net.Listen(netsim.MakeAddr("fake2", p2), func(netsim.Packet) { c2Pkts++ })
	h.clk.RunFor(2 * time.Second)
	if c2Pkts == 0 {
		t.Fatal("remaining subscriber starved by the divergence detach")
	}
}

// TestSenderRestartReseedsPayloadTypeFromLevel is the reload regression: a
// degraded stream that is reloaded must seed its fresh RTP state with the
// payload type of its CURRENT level, not level 0's. The video ladder changes
// payload type at its bottom rung (MPEG → AVI), so degrading there and
// reloading exposes the stale seed.
func TestSenderRestartReseedsPayloadTypeFromLevel(t *testing.T) {
	h := newHarness(t, Options{PreRoll: 300 * time.Millisecond})
	h.srv.Database().Put("doc", longAVDoc, "")
	dr := connectAndRequest(t, h)
	_, videoSSRC := announcedPort(t, dr, "v")

	mgr := h.srv.QoSManager(fakeClient)
	// Degrade to the AVI rung (level 4) without tripping the cutoff.
	for i := 0; i < 40; i++ {
		if lvl, stopped := mgr.Level("v"); lvl >= 4 || stopped {
			break
		}
		rr := rtp.ReceiverReport{SSRC: 1, Reports: []rtp.ReceptionReport{{
			SSRC: videoSSRC, FractionLost: 200,
		}}}
		h.send(protocol.MsgFeedback, protocol.Feedback{RTCP: rr.Marshal()})
		h.clk.RunFor(3 * time.Second)
	}
	if lvl, stopped := mgr.Level("v"); lvl != 4 || stopped {
		t.Fatalf("video level = %d stopped=%v, want level 4 live", lvl, stopped)
	}

	sess, unlock := h.srv.lockedSession(fakeClient)
	if sess == nil {
		unlock()
		t.Fatal("session gone")
	}
	snd := sess.senders["v"]
	unlock()
	// Restart (the reload path) and inspect the fresh RTP state before the
	// next emit: the paced path re-derives the payload type per frame, so a
	// stale seed only shows in the window before the first post-reload frame
	// — and for good on a stream that is disabled or cut off at reload time.
	snd.restart(h.clk.Now())
	snd.mu.Lock()
	pt := snd.rtpS.PayloadType
	snd.mu.Unlock()
	if pt != rtp.PTAVI {
		t.Fatalf("restarted sender payload type = %d, want PTAVI (%d): restart reseeded from level 0", pt, rtp.PTAVI)
	}
}

// TestSenderPauseResumeDisabledNoOp is the pause/origin regression: pause
// and resume on a disabled sender must be no-ops — the old code recorded
// pausedAt and shifted the origin on resume, silently re-timing the stream
// for whenever it was re-enabled.
func TestSenderPauseResumeDisabledNoOp(t *testing.T) {
	h := newHarness(t, Options{PreRoll: 300 * time.Millisecond})
	h.srv.Database().Put("doc", longAVDoc, "")
	connectAndRequest(t, h)
	h.clk.RunFor(time.Second)

	h.send(protocol.MsgDisableMedia, protocol.MediaOp{StreamID: "v"})
	sess, unlock := h.srv.lockedSession(fakeClient)
	snd := sess.senders["v"]
	unlock()
	snd.mu.Lock()
	origin0 := snd.origin
	snd.mu.Unlock()

	h.send(protocol.MsgPause, protocol.MediaOp{})
	h.clk.RunFor(5 * time.Second)
	h.send(protocol.MsgResume, protocol.MediaOp{})

	snd.mu.Lock()
	origin1, paused := snd.origin, snd.paused
	snd.mu.Unlock()
	if paused {
		t.Fatal("disabled sender left in paused state")
	}
	if !origin1.Equal(origin0) {
		t.Fatalf("disabled sender origin drifted %v across pause/resume", origin1.Sub(origin0))
	}
}

// TestSharedFlowConcurrentChurn hammers the attach/detach/pause/reload
// surface from many goroutines while the flows pump — a lock-order and race
// exercise (run under -race via `make race`). No assertions beyond
// consistency: it must neither deadlock nor corrupt the registry.
func TestSharedFlowConcurrentChurn(t *testing.T) {
	// Capacity lifted so admission does not cap the eight-session fleet.
	h := newHarness(t, Options{SharedFlows: true, PreRoll: 300 * time.Millisecond, Capacity: 1e9})
	h.srv.Database().Put("doc", longAVDoc, "")

	connectAndRequest(t, h)
	for i := 2; i <= 8; i++ {
		attachClient(t, h, fmt.Sprintf("fake%d", i), 9000+100*i)
	}

	var senders []*sender
	for i := range h.srv.shards {
		sh := &h.srv.shards[i]
		sh.mu.Lock()
		for _, sess := range sh.sessions {
			for _, snd := range sess.senders {
				if snd.stream.Type.TimeSensitive() {
					senders = append(senders, snd)
				}
			}
		}
		sh.mu.Unlock()
	}
	var flows []*sharedFlow
	h.srv.flows.mu.Lock()
	for _, fl := range h.srv.flows.flows {
		flows = append(flows, fl)
	}
	h.srv.flows.mu.Unlock()
	if len(flows) == 0 {
		t.Fatal("no shared flows stood up")
	}

	origin := h.clk.Now()
	var wg sync.WaitGroup
	for i, snd := range senders {
		wg.Add(1)
		go func(i int, snd *sender) {
			defer wg.Done()
			for k := 0; k < 40; k++ {
				switch (i + k) % 5 {
				case 0:
					snd.pause()
				case 1:
					snd.resume()
				case 2:
					snd.detachShared()
				case 3:
					snd.restart(origin)
				default:
					_ = snd.stats()
				}
			}
		}(i, snd)
	}
	for _, fl := range flows {
		wg.Add(1)
		go func(fl *sharedFlow) {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				fl.pump(10)
			}
		}(fl)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 100; k++ {
			_ = h.srv.FlowStats()
		}
	}()
	wg.Wait()

	// Registry consistency: every surviving flow still has subscribers.
	for _, st := range h.srv.FlowStats() {
		if st.Subscribers <= 0 {
			t.Fatalf("empty flow survived churn: %+v", st)
		}
	}
}

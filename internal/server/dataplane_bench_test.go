package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/protocol"
)

// makeCtrlPacket frames one control message from the fake client, for
// injecting straight into the server's handler.
func makeCtrlPacket(mt protocol.MsgType, body interface{}) netsim.Packet {
	return netsim.Packet{
		From: fakeClient, To: netsim.MakeAddr("srv", ControlPort),
		Payload: protocol.MustEncode(mt, body), Reliable: true,
	}
}

// BenchmarkDataPlane measures parallel emit throughput at 1, 8 and 64
// sessions; frames/s should grow with session count because senders pace
// off their own locks, not the control-plane shard locks.
func BenchmarkDataPlane(b *testing.B) {
	for _, sessions := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := RunDataPlaneLoad(DataPlaneConfig{
					Sessions:        sessions,
					FramesPerSender: 100,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.PumpFrames == 0 {
					b.Fatal("pump phase emitted nothing")
				}
				b.ReportMetric(res.FramesPerSec, "frames/s")
				b.ReportMetric(res.EmitP95Micros, "emit-p95-µs")
				b.ReportMetric(res.PumpAllocsPerFrame, "pump-allocs/frame")
				b.ReportMetric(res.PumpAllocBytesPerFrame, "pump-alloc-B/frame")
				b.ReportMetric(res.PacedAllocsPerFrame, "paced-allocs/frame")
				b.ReportMetric(res.PacedAllocBytesPerFrame, "paced-alloc-B/frame")
			}
		})
	}
}

// TestDataPlaneEmitOffGlobalLock is the data plane's core invariant: during
// a paced emit window no control-plane shard write lock is taken — media
// pacing runs entirely on per-sender locks plus the QoS manager's read lock.
func TestDataPlaneEmitOffGlobalLock(t *testing.T) {
	res, err := RunDataPlaneLoad(DataPlaneConfig{Sessions: 4, FramesPerSender: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.PacedFrames == 0 {
		t.Fatal("paced phase emitted nothing; the window measured no traffic")
	}
	if res.PacedLockAcqs != 0 {
		t.Fatalf("shard write locks acquired %d times during paced emission of %d frames; "+
			"the per-frame path must stay off the global lock",
			res.PacedLockAcqs, res.PacedFrames)
	}
	if res.Senders < 4*5 {
		t.Fatalf("senders = %d; the lesson doc should give each session several streams", res.Senders)
	}
}

// TestDataPlaneRaceStress hammers the emit path from per-sender goroutines
// while the control plane concurrently pauses, resumes, reloads, suspends and
// processes feedback. Run under -race (make race / make check) this proves
// the split locking is sound; sized modestly so it stays cheap in plain runs.
func TestDataPlaneRaceStress(t *testing.T) {
	h := newHarness(t, Options{})
	h.send(protocol.MsgConnect, protocol.Connect{User: "u", Password: "p"})
	h.send(protocol.MsgDocRequest, protocol.DocRequest{Name: "doc"})

	sess, unlock := h.srv.lockedSession(fakeClient)
	if sess == nil {
		unlock()
		t.Fatal("no session")
	}
	snds := make([]*sender, 0, len(sess.senders))
	for _, snd := range sess.senders {
		snds = append(snds, snd)
	}
	unlock()
	if len(snds) == 0 {
		t.Fatal("no senders")
	}

	var wg sync.WaitGroup
	for _, snd := range snds {
		wg.Add(1)
		go func(snd *sender) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				snd.pump(10)
				_ = snd.stats()
				_ = snd.nominalRate()
			}
		}(snd)
	}
	// Control plane churn against the same session, through the real
	// handler so it exercises the same paths as live traffic.
	ops := []protocol.MsgType{
		protocol.MsgPause, protocol.MsgResume, protocol.MsgReload,
		protocol.MsgPause, protocol.MsgResume,
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			for _, mt := range ops {
				h.srv.handle(makeCtrlPacket(mt, protocol.MediaOp{}))
			}
			h.srv.queueRenegotiate(sess)
		}
	}()
	wg.Wait()

	// The session must still be coherent: a reload left pacing armed and a
	// final resume is a no-op, not a crash.
	h.send(protocol.MsgResume, protocol.MediaOp{})
	h.clk.RunFor(2 * time.Second)
}

package server

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/qos"
	"repro/internal/rtp"
)

// connectAndRequest drives the harness session into viewing with live
// senders.
func connectAndRequest(t *testing.T, h *harness) protocol.DocResponse {
	t.Helper()
	h.send(protocol.MsgConnect, protocol.Connect{User: "u", Password: "p"})
	h.send(protocol.MsgDocRequest, protocol.DocRequest{Name: "doc", MediaPortBase: 9000, WindowMS: 300})
	var dr protocol.DocResponse
	h.lastReply(t, protocol.MsgDocResponse, &dr)
	if !dr.OK {
		t.Fatalf("doc response = %+v", dr)
	}
	return dr
}

func TestServerSubscribeInBand(t *testing.T) {
	h := newHarness(t, Options{})
	h.send(protocol.MsgSubscribe, protocol.SubscriptionForm{
		User: "new", Password: "np", Email: "n@x", RealName: "New",
	})
	var sr protocol.SubscribeResult
	h.lastReply(t, protocol.MsgSubscribeResult, &sr)
	if !sr.OK {
		t.Fatalf("subscribe = %+v", sr)
	}
	if !h.users.Known("new") {
		t.Fatal("user missing from the database")
	}
	// Duplicate subscription is refused with a reason.
	h.send(protocol.MsgSubscribe, protocol.SubscriptionForm{
		User: "new", Password: "np", Email: "n@x",
	})
	var sr2 protocol.SubscribeResult
	h.lastReply(t, protocol.MsgSubscribeResult, &sr2)
	if sr2.OK || sr2.Reason == "" {
		t.Fatalf("duplicate subscribe = %+v", sr2)
	}
}

func TestServerFederatedSearchFanOut(t *testing.T) {
	h := newHarness(t, Options{})
	// A peer server with one matching document.
	peerDB := NewDatabase()
	peerDB.Put("remote-doc", `<TITLE>Remote databases</TITLE><TEXT>x</TEXT>`, "")
	if _, err := New("peer", h.clk, h.net, h.users, peerDB, Options{}); err != nil {
		t.Fatal(err)
	}
	h.srv.SetPeers([]string{"peer"})

	h.send(protocol.MsgSearch, protocol.Search{Token: "databases"})
	h.clk.RunFor(3 * time.Second)
	var res protocol.SearchResult
	h.lastReply(t, protocol.MsgSearchResult, &res)
	if len(res.Hits) != 1 || res.Hits[0].Server != "peer" {
		t.Fatalf("hits = %+v", res.Hits)
	}
}

func TestServerSearchTimeoutWithDeadPeer(t *testing.T) {
	h := newHarness(t, Options{})
	h.srv.SetPeers([]string{"ghost-server"}) // nobody listens there
	h.srv.Database().Put("local-db", `<TITLE>Local databases</TITLE><TEXT>y</TEXT>`, "")
	h.send(protocol.MsgSearch, protocol.Search{Token: "databases"})
	h.clk.RunFor(5 * time.Second) // past the 2s search timeout
	var res protocol.SearchResult
	h.lastReply(t, protocol.MsgSearchResult, &res)
	// The local hit still comes back despite the dead peer.
	if len(res.Hits) != 1 || res.Hits[0].Name != "local-db" {
		t.Fatalf("hits = %+v", res.Hits)
	}
}

func TestServerSearchNoForwardAnswersDirectly(t *testing.T) {
	h := newHarness(t, Options{})
	h.srv.Database().Put("d", `<TITLE>Databases</TITLE><TEXT>z</TEXT>`, "")
	h.send(protocol.MsgSearch, protocol.Search{Token: "databases", NoForward: true, SearchID: 77})
	var res protocol.SearchResult
	h.lastReply(t, protocol.MsgSearchResult, &res)
	if res.SearchID != 77 || len(res.Hits) != 1 {
		t.Fatalf("fan-out reply = %+v", res)
	}
}

func TestServerMediaOpsDriveSenders(t *testing.T) {
	h := newHarness(t, Options{PreRoll: 300 * time.Millisecond})
	// Pre-register listeners on the whole announced port range so the
	// earliest stills are observed too.
	var pkts int
	for p := 9000; p < 9010; p++ {
		h.net.Listen(netsim.MakeAddr("fake", p), func(netsim.Packet) { pkts++ })
	}
	dr := connectAndRequest(t, h)
	h.clk.RunFor(2 * time.Second)
	flowing := pkts
	if flowing == 0 {
		t.Fatal("no media flowing")
	}
	// Pause stops the flow.
	h.send(protocol.MsgPause, protocol.MediaOp{})
	base := pkts
	h.clk.RunFor(2 * time.Second)
	if pkts > base+2 {
		t.Fatalf("media flowed during pause: %d → %d", base, pkts)
	}
	// Resume restarts it; run far enough that the next flows (I2 at
	// ~7.6s, shifted by the pause) come due.
	h.send(protocol.MsgResume, protocol.MediaOp{})
	base = pkts
	h.clk.RunFor(8 * time.Second)
	if pkts <= base {
		t.Fatal("media did not resume")
	}
	// Disable one stream: its port goes quiet, others continue.
	var videoPort, audioPort int
	var videoID string
	for _, ann := range dr.Streams {
		if ann.StreamID == "V" {
			videoPort, videoID = ann.Port, ann.StreamID
		}
		if ann.StreamID == "A1" {
			audioPort = ann.Port
		}
	}
	var vPkts, aPkts int
	h.net.Listen(netsim.MakeAddr("fake", videoPort), func(netsim.Packet) { vPkts++ })
	h.net.Listen(netsim.MakeAddr("fake", audioPort), func(netsim.Packet) { aPkts++ })
	h.send(protocol.MsgDisableMedia, protocol.MediaOp{StreamID: videoID})
	// A couple of in-flight packets may still land; after that the
	// disabled stream is silent while the audio continues.
	h.clk.RunFor(time.Second)
	vInFlight := vPkts
	h.clk.RunFor(9 * time.Second)
	if vPkts > vInFlight {
		t.Fatalf("disabled video kept sending: %d → %d", vInFlight, vPkts)
	}
	if aPkts == 0 {
		t.Fatal("audio silenced by video disable")
	}
}

func TestServerReloadRestartsFlows(t *testing.T) {
	h := newHarness(t, Options{PreRoll: 300 * time.Millisecond})
	i1 := 0
	counts := map[int]*int{}
	for p := 9000; p < 9010; p++ {
		p := p
		n := new(int)
		counts[p] = n
		h.net.Listen(netsim.MakeAddr("fake", p), func(netsim.Packet) { *n++ })
	}
	dr := connectAndRequest(t, h)
	var i1Port int
	for _, ann := range dr.Streams {
		if ann.StreamID == "I1" {
			i1Port = ann.Port
		}
	}
	h.clk.RunFor(2 * time.Second)
	i1 = *counts[i1Port]
	first := i1
	if first == 0 {
		t.Fatal("still never sent")
	}
	// Reload: the one-shot still is transmitted again.
	h.send(protocol.MsgReload, protocol.MediaOp{})
	h.clk.RunFor(2 * time.Second)
	if *counts[i1Port] <= first {
		t.Fatalf("reload did not resend the still: %d → %d", first, *counts[i1Port])
	}
}

func TestServerFeedbackDrivesGrading(t *testing.T) {
	h := newHarness(t, Options{PreRoll: 300 * time.Millisecond})
	dr := connectAndRequest(t, h)
	var videoSSRC uint32
	for _, ann := range dr.Streams {
		if ann.StreamID == "V" {
			videoSSRC = ann.SSRC
		}
	}
	mgr := h.srv.QoSManager(fakeClient)
	if mgr == nil {
		t.Fatal("no manager")
	}
	// Repeated heavy-loss receiver reports about the video stream.
	for i := 0; i < 5; i++ {
		rr := rtp.ReceiverReport{SSRC: 1, Reports: []rtp.ReceptionReport{{
			SSRC: videoSSRC, FractionLost: 128, // 50%
		}}}
		h.send(protocol.MsgFeedback, protocol.Feedback{RTCP: rr.Marshal()})
		h.clk.RunFor(3 * time.Second)
	}
	lvl, stopped := mgr.Level("V")
	if lvl == 0 && !stopped {
		t.Fatal("feedback never degraded the video")
	}
	// Unknown SSRCs and garbage RTCP are ignored without panic.
	h.send(protocol.MsgFeedback, protocol.Feedback{RTCP: []byte{1, 2, 3}})
	rr := rtp.ReceiverReport{SSRC: 1, Reports: []rtp.ReceptionReport{{SSRC: 999999}}}
	h.send(protocol.MsgFeedback, protocol.Feedback{RTCP: rr.Marshal()})
}

func TestServerFeedbackIgnoredWhenGradingDisabled(t *testing.T) {
	h := newHarness(t, Options{PreRoll: 300 * time.Millisecond, DisableGrading: true})
	dr := connectAndRequest(t, h)
	mgr := h.srv.QoSManager(fakeClient)
	for i := 0; i < 5; i++ {
		rr := rtp.ReceiverReport{SSRC: 1, Reports: []rtp.ReceptionReport{{
			SSRC: dr.Streams[0].SSRC, FractionLost: 255,
		}}}
		h.send(protocol.MsgFeedback, protocol.Feedback{RTCP: rr.Marshal()})
		h.clk.RunFor(3 * time.Second)
	}
	if len(mgr.Actions()) != 0 {
		t.Fatalf("grading acted while disabled: %+v", mgr.Actions())
	}
}

func TestServerCutoffStopsTransmissionAndRestoreResumes(t *testing.T) {
	h := newHarness(t, Options{PreRoll: 300 * time.Millisecond})
	// Replace the doc with a long AV stream starting at 0.
	h.srv.Database().Put("doc", `<TITLE>long</TITLE>
<AU_VI SOURCE=au/a SOURCE=vi/v ID=a ID=v STARTIME=0 DURATION=120> </AU_VI>`, "")
	dr := connectAndRequest(t, h)
	var videoSSRC uint32
	var videoPort int
	for _, ann := range dr.Streams {
		if ann.StreamID == "v" {
			videoSSRC, videoPort = ann.SSRC, ann.Port
		}
	}
	vPkts := 0
	h.net.Listen(netsim.MakeAddr("fake", videoPort), func(netsim.Packet) { vPkts++ })
	mgr := h.srv.QoSManager(fakeClient)
	// Hammer with loss until cutoff.
	for i := 0; i < 30; i++ {
		rr := rtp.ReceiverReport{SSRC: 1, Reports: []rtp.ReceptionReport{{
			SSRC: videoSSRC, FractionLost: 200,
		}}}
		h.send(protocol.MsgFeedback, protocol.Feedback{RTCP: rr.Marshal()})
		h.clk.RunFor(3 * time.Second)
		if _, stopped := mgr.Level("v"); stopped {
			break
		}
	}
	if _, stopped := mgr.Level("v"); !stopped {
		t.Fatal("video never cut off")
	}
	// While cut off, the sender withholds frames.
	base := vPkts
	h.clk.RunFor(3 * time.Second)
	if vPkts > base {
		t.Fatalf("cut-off stream still transmitting: %d → %d", base, vPkts)
	}
	// Clean reports restore it and transmission resumes (the loss EWMA
	// must decay below the upgrade threshold, then the hold must pass).
	for i := 0; i < 25; i++ {
		rr := rtp.ReceiverReport{SSRC: 1, Reports: []rtp.ReceptionReport{{SSRC: videoSSRC}}}
		h.send(protocol.MsgFeedback, protocol.Feedback{RTCP: rr.Marshal()})
		h.clk.RunFor(3 * time.Second)
		if _, stopped := mgr.Level("v"); !stopped {
			break
		}
	}
	base = vPkts
	h.clk.RunFor(3 * time.Second)
	if vPkts <= base {
		t.Fatal("restored stream not transmitting")
	}
}

func TestMinIntHelper(t *testing.T) {
	if minInt(0, 5) != 5 || minInt(-1, 5) != 5 {
		t.Fatal("non-positive floor must fall back")
	}
	if minInt(3, 5) != 3 || minInt(7, 5) != 5 {
		t.Fatal("min wrong")
	}
}

func TestPricingClassSanity(t *testing.T) {
	if qos.Premium.ShareCap() != 1 {
		t.Fatal("premium cap")
	}
}

package server

import (
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/rtp"
	"repro/internal/scenario"
)

// This file is the shared-flow fan-out layer: sessions viewing the same
// document at the same quality level ride ONE paced flow — one frame encode,
// one packet assembly, N deliveries through the transport's multi-destination
// send (one refcounted pooled copy on the simulated network). A popular
// lesson therefore costs O(1) encode + pacing work instead of O(viewers),
// the broadcast-VoD model of Afrin & Rahaman's adaptive quasi harmonic
// broadcasting applied to the paper's lesson service.
//
// Subscribers join at document request time; late joiners first receive a
// unicast catch-up patch from the flow's bounded segment cache (the cached
// tail of recent frames, aligned back to the last GoP start so the first
// patched video frame is decodable) and then ride the shared pacing cursor.
// Any per-session divergence — a QoS grade change, pause, reload, disable,
// suspend or teardown — detaches that subscriber onto its private sender
// with the flow's forked RTP state (same SSRC, contiguous sequence numbers),
// leaving the other subscribers untouched. The flow tears down when its last
// subscriber leaves.
//
// Lock order (extends the shard.go hierarchy): shard.mu → sender.mu →
// flowRegistry.mu → sharedFlow.mu. The per-frame emit path takes ONLY the
// flow's own mutex — never a shard, sender or registry lock — so paced
// fan-out emission keeps the data plane's zero shard-lock invariant.

// flowKey identifies one shareable flow: a document's stream encoded at one
// quality level.
type flowKey struct {
	doc    string
	stream string
	level  int
}

// flowSub is one subscriber's membership state: its delivery address and the
// flow counter baselines at attach time, so per-session stats and the detach
// continuation cover exactly the frames this subscriber was fanned.
type flowSub struct {
	to          netsim.Addr
	baseFrames  int
	basePackets int
	baseBytes   int64
}

// flowSeg is one cached frame in the flow's bounded segment cache.
type flowSeg struct {
	idx  int
	pts  time.Duration
	kind media.FrameKind
	size int
	buf  []byte // reused across ring laps; holds the frame payload
}

// segCacheCap bounds the per-flow segment cache. It covers at least one full
// video GoP (12 frames) plus slack, so a late joiner can always be patched
// back to a decodable I-frame boundary within the cache horizon.
const segCacheCap = 16

// sharedFlow is one paced fan-out flow. It owns the pacing timer, the shared
// RTP sender state, the payload scratch and the segment cache; everything
// mutable sits behind its own leaf mutex.
type sharedFlow struct {
	// Immutable after construction.
	srv    *Server
	key    flowKey
	stream *scenario.Stream
	src    media.Source
	sendAt time.Duration // flow-scenario transmission lead of the first subscriber
	ssrc   uint32
	from   netsim.Addr
	emitFn func()

	// mu guards everything below; it is the only lock the paced emit path
	// takes.
	mu          sync.Mutex
	rtpS        *rtp.Sender
	scratch     []byte
	origin      time.Time
	nextIdx     int
	timer       *clock.Timer
	finished    bool
	stopped     bool
	subs        map[*sender]*flowSub
	dests       []netsim.Addr
	framesSent  int
	packetsSent int
	bytesSent   int64
	delivered   int64 // frames × subscribers actually fanned
	cache       [segCacheCap]flowSeg
	cacheN      int // frames ever cached; slot = idx % segCacheCap
}

// flowCont is the continuation a detaching subscriber adopts: the pacing
// cursor, the wall instant of the next frame, the forked RTP state and the
// subscriber's share of the transmission counters.
type flowCont struct {
	nextIdx  int
	nextAt   time.Time
	rtp      *rtp.Sender
	frames   int
	packets  int
	bytes    int64
	finished bool
}

// flowRegistry indexes the server's live shared flows.
type flowRegistry struct {
	mu    sync.Mutex
	flows map[flowKey]*sharedFlow
}

// sendAtForLocked returns the wall send instant of flow frame i.
func (fl *sharedFlow) sendAtForLocked(i int) time.Time {
	pts := time.Duration(i) * fl.src.FrameInterval()
	return fl.origin.Add(fl.sendAt + pts)
}

func (fl *sharedFlow) armLocked() {
	if fl.finished || fl.stopped {
		return
	}
	d := fl.sendAtForLocked(fl.nextIdx).Sub(fl.srv.clk.Now())
	if d < 0 {
		d = 0
	}
	if fl.timer == nil {
		fl.timer = fl.srv.clk.AfterFunc(d, fl.emitFn)
	} else {
		fl.timer.Reset(d)
	}
}

func (fl *sharedFlow) stopTimerLocked() {
	if fl.timer != nil {
		fl.timer.Stop()
		fl.timer = nil
	}
}

// emit transmits one frame to every subscriber and schedules the next. It
// runs on the flow's pacing timer and holds only the flow's own lock.
func (fl *sharedFlow) emit() {
	fl.mu.Lock()
	if fl.emitFrameLocked() {
		fl.armLocked()
	}
	fl.mu.Unlock()
}

// emitFrameLocked encodes the frame at the pacing cursor ONCE, assembles its
// packets ONCE, and fans each packet out to every subscriber through the
// transport's multi-destination send. Unlike a private sender there is no
// QoS lookup: the flow's encode level is fixed by its key, and subscribers
// whose grading diverges have already been detached. Caller holds fl.mu.
func (fl *sharedFlow) emitFrameLocked() bool {
	if fl.finished || fl.stopped {
		return false
	}
	i := fl.nextIdx
	pts := time.Duration(i) * fl.src.FrameInterval()
	if fl.stream.Duration > 0 && pts >= fl.stream.Duration {
		fl.finished = true
		return false
	}
	fl.nextIdx++
	// Frame-span sampling keys on the frame index, so every subscriber's
	// client samples exactly the frames the flow stamped — one emit span
	// per encode, N delivery spans downstream.
	spanned := fl.srv.spans.Sampled(uint32(i))
	var spanT0 time.Time
	if spanned {
		spanT0 = time.Now()
	}

	frame := fl.src.FrameAt(i, fl.key.level)
	fl.scratch = media.AppendPayload(fl.scratch[:0], fl.key.stream, i, frame.Size)
	payload := fl.scratch
	fl.storeSegLocked(i, frame, payload)

	fragCount := media.FragmentCount(frame.Size)
	for fi := 0; fi < fragCount; fi++ {
		off, fsize := media.FragmentSpan(frame.Size, fi)
		pb := pktPool.Get(rtp.HeaderSize + media.FrameHeaderSize + fsize)
		buf := fl.rtpS.AppendNext(pb.B[:0], frame.PTS, fi == fragCount-1, media.FrameHeaderSize+fsize)
		hdr := media.FrameHeader{
			Index:     uint32(i),
			Level:     uint8(frame.Level),
			Kind:      frame.Kind,
			Frag:      uint16(fi),
			FragCount: uint16(fragCount),
			FrameSize: uint32(frame.Size),
		}
		buf = hdr.AppendTo(buf)
		buf = append(buf, payload[off:off+fsize]...)
		pb.B = buf
		fl.packetsSent++
		fl.bytesSent += int64(media.FrameHeaderSize + fsize)
		fl.srv.sendMedia(netsim.Packet{From: fl.from, Payload: buf}, fl.dests)
		pktPool.Put(pb)
	}
	fl.framesSent++
	fl.delivered += int64(len(fl.dests))
	fl.srv.mFrames.Inc()
	fl.srv.mPackets.Add(int64(fragCount))
	fl.srv.mBytes.Add(int64(frame.Size))
	fl.srv.mDelivered.Add(int64(len(fl.dests)))
	if spanned {
		fl.srv.spans.RecordEmit(fl.key.stream, time.Since(spanT0))
	}
	return true
}

// storeSegLocked copies one emitted frame into the bounded segment cache.
// Slot buffers are reused across ring laps, so the steady state allocates
// nothing once every slot has grown to the stream's largest frame.
func (fl *sharedFlow) storeSegLocked(idx int, frame media.Frame, payload []byte) {
	seg := &fl.cache[idx%segCacheCap]
	seg.idx = idx
	seg.pts = frame.PTS
	seg.kind = frame.Kind
	seg.size = frame.Size
	seg.buf = append(seg.buf[:0], payload...)
	fl.cacheN++
}

// pump emits up to n frames back-to-back, bypassing the pacing timer — the
// data-plane load harness's full-rate drive, mirroring sender.pump.
func (fl *sharedFlow) pump(n int) []time.Duration {
	times := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		fl.mu.Lock()
		more := fl.emitFrameLocked()
		fl.mu.Unlock()
		times = append(times, time.Since(t0))
		if !more {
			break
		}
	}
	return times
}

// rebuildDestsLocked refreshes the fan-out address list after a membership
// change. Sorted for deterministic delivery order under the seeded simulator.
func (fl *sharedFlow) rebuildDestsLocked() {
	fl.dests = fl.dests[:0]
	for _, sub := range fl.subs {
		fl.dests = append(fl.dests, sub.to)
	}
	sort.Slice(fl.dests, func(i, j int) bool { return fl.dests[i] < fl.dests[j] })
}

// flowPatchDelay is how long after an attach the catch-up patch goes on the
// wire: long enough that the DocResponse (reliable, in-order) has reached
// the client and its media listeners are up, short against any playout
// deadline.
const flowPatchDelay = 50 * time.Millisecond

// catchUpLocked builds a late joiner's unicast catch-up patch from the
// segment cache, aligned back to the most recent cached GoP start (I-frame)
// so the first patched frame is decodable. The patch packets reuse the
// original frame indices, timestamps and payload bytes, with sequence
// numbers immediately below the flow's cursor at attach time — the joiner's
// receiver sees one contiguous sequence range: patch below, live frames
// above, no synthetic loss gap regardless of arrival order. Audio and other
// GoP-free streams return no patch (every frame is independently decodable,
// the joiner just rides the live cursor). The packets are returned, not
// sent: the caller transmits them after flowPatchDelay so they cannot beat
// the DocResponse to a client that is not yet listening.
func (fl *sharedFlow) catchUpLocked() (patch [][]byte, frames, packets int, bytes int64) {
	lo := fl.cacheN - segCacheCap
	if lo < 0 {
		lo = 0
	}
	gop := -1
	for i := fl.cacheN - 1; i >= lo; i-- {
		if fl.cache[i%segCacheCap].kind == media.FrameI {
			gop = i
			break
		}
	}
	if gop < 0 {
		return nil, 0, 0, 0
	}
	totalPkts := 0
	for i := gop; i < fl.cacheN; i++ {
		totalPkts += media.FragmentCount(fl.cache[i%segCacheCap].size)
	}
	seq := fl.rtpS.Seq() - uint16(totalPkts)
	pt := fl.src.PayloadType(fl.key.level)
	for i := gop; i < fl.cacheN; i++ {
		seg := &fl.cache[i%segCacheCap]
		fragCount := media.FragmentCount(seg.size)
		for fi := 0; fi < fragCount; fi++ {
			off, fsize := media.FragmentSpan(seg.size, fi)
			buf := make([]byte, 0, rtp.HeaderSize+media.FrameHeaderSize+fsize)
			buf = rtp.AppendHeader(buf, fi == fragCount-1, pt, seq, rtp.ToTimestamp(seg.pts), fl.ssrc)
			seq++
			hdr := media.FrameHeader{
				Index:     uint32(seg.idx),
				Level:     uint8(fl.key.level),
				Kind:      seg.kind,
				Frag:      uint16(fi),
				FragCount: uint16(fragCount),
				FrameSize: uint32(seg.size),
			}
			buf = hdr.AppendTo(buf)
			buf = append(buf, seg.buf[off:off+fsize]...)
			patch = append(patch, buf)
			packets++
			bytes += int64(media.FrameHeaderSize + fsize)
		}
		frames++
	}
	return patch, frames, packets, bytes
}

// report builds the flow's RTCP SR. Every subscriber's session relays the
// same SR — correct, since they all receive the same SSRC's stream.
func (fl *sharedFlow) report(now time.Time, mediaTime time.Duration) *rtp.SenderReport {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.stopped || fl.rtpS.PacketCount() == 0 {
		return nil
	}
	return fl.rtpS.Report(now, mediaTime)
}

// subStats snapshots one subscriber's share of the flow counters.
func (fl *sharedFlow) subStats(sn *sender) senderStats {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	sub := fl.subs[sn]
	if sub == nil {
		return senderStats{}
	}
	return senderStats{
		frames:  fl.framesSent - sub.baseFrames,
		packets: fl.packetsSent - sub.basePackets,
		bytes:   fl.bytesSent - sub.baseBytes,
	}
}

// attach joins a sender to the document/stream/level flow, creating the flow
// if it does not exist (or if only a finished husk remains). It returns the
// flow, whose SSRC the caller must announce and seed the sender's RTP state
// with. Caller may hold shard.mu and/or sn.mu per the lock hierarchy.
func (r *flowRegistry) attach(srv *Server, key flowKey, f *scenario.FlowSpec, src media.Source, sn *sender, to netsim.Addr, origin time.Time) *sharedFlow {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.flows == nil {
		r.flows = map[flowKey]*sharedFlow{}
	}
	fl := r.flows[key]
	if fl != nil {
		fl.mu.Lock()
		if fl.finished || fl.stopped {
			fl.mu.Unlock()
			delete(r.flows, key)
			fl = nil
		} else {
			patch, cf, cp, cb := fl.catchUpLocked()
			fl.subs[sn] = &flowSub{
				to:          to,
				baseFrames:  fl.framesSent - cf,
				basePackets: fl.packetsSent - cp,
				baseBytes:   fl.bytesSent - cb,
			}
			fl.rebuildDestsLocked()
			fl.mu.Unlock()
			if len(patch) > 0 {
				srv.cFlowCatchup.Add(int64(cf))
				srv.mDelivered.Add(int64(cf))
				from := fl.from
				srv.clk.AfterFunc(flowPatchDelay, func() {
					for _, buf := range patch {
						srv.net.Send(netsim.Packet{From: from, To: to, Payload: buf})
					}
				})
			}
			srv.cFlowAttaches.Inc()
			return fl
		}
	}
	fl = &sharedFlow{
		srv:    srv,
		key:    key,
		stream: f.Stream,
		src:    src,
		sendAt: f.SendAt,
		ssrc:   srv.nextSSRC.Add(1),
		from:   netsim.MakeAddr(srv.Name, mediaPort),
		origin: origin,
		subs:   map[*sender]*flowSub{},
	}
	fl.emitFn = fl.emit
	fl.rtpS = rtp.NewSender(fl.ssrc, src.PayloadType(key.level), 0)
	fl.subs[sn] = &flowSub{to: to}
	fl.mu.Lock()
	fl.rebuildDestsLocked()
	fl.armLocked()
	fl.mu.Unlock()
	r.flows[key] = fl
	srv.cFlowsCreated.Inc()
	srv.cFlowAttaches.Inc()
	return fl
}

// detach removes a subscriber and returns its continuation. When the last
// subscriber leaves, the flow stops pacing and unregisters — one more attach
// for the same key will build a fresh flow. Callers hold sn.mu (and possibly
// shard.mu above it); the registry lock is taken before the flow lock, the
// same order as attach.
func (r *flowRegistry) detach(srv *Server, fl *sharedFlow, sn *sender) flowCont {
	r.mu.Lock()
	fl.mu.Lock()
	sub := fl.subs[sn]
	cont := flowCont{
		nextIdx:  fl.nextIdx,
		nextAt:   fl.sendAtForLocked(fl.nextIdx),
		rtp:      fl.rtpS.Fork(),
		finished: fl.finished,
	}
	if sub != nil {
		cont.frames = fl.framesSent - sub.baseFrames
		cont.packets = fl.packetsSent - sub.basePackets
		cont.bytes = fl.bytesSent - sub.baseBytes
		delete(fl.subs, sn)
		fl.rebuildDestsLocked()
	}
	last := len(fl.subs) == 0
	if last && !fl.stopped {
		fl.stopped = true
		fl.stopTimerLocked()
		if r.flows[fl.key] == fl {
			delete(r.flows, fl.key)
		}
		srv.cFlowsTorn.Inc()
	}
	fl.mu.Unlock()
	r.mu.Unlock()
	srv.cFlowDetaches.Inc()
	return cont
}

// FlowStat is one live shared flow's public snapshot.
type FlowStat struct {
	Doc         string
	Stream      string
	Level       int
	Subscribers int
	Frames      int
	Delivered   int64
}

// FlowStats snapshots every live shared flow (empty when shared flows are
// off or no flow is active).
func (s *Server) FlowStats() []FlowStat {
	s.flows.mu.Lock()
	defer s.flows.mu.Unlock()
	out := make([]FlowStat, 0, len(s.flows.flows))
	for key, fl := range s.flows.flows {
		fl.mu.Lock()
		out = append(out, FlowStat{
			Doc:         key.doc,
			Stream:      key.stream,
			Level:       key.level,
			Subscribers: len(fl.subs),
			Frames:      fl.framesSent,
			Delivered:   fl.delivered,
		})
		fl.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Doc != out[j].Doc {
			return out[i].Doc < out[j].Doc
		}
		return out[i].Stream < out[j].Stream
	})
	return out
}

// sendMedia ships one media packet to every destination: the transport's
// multi-destination fan-out when it has one (cached assertion, one refcounted
// payload copy), a per-destination Send loop otherwise.
func (s *Server) sendMedia(pkt netsim.Packet, tos []netsim.Addr) {
	if s.multi != nil {
		s.multi.SendMulti(pkt, tos)
		return
	}
	for _, to := range tos {
		p := pkt
		p.To = to
		s.net.Send(p)
	}
}

package server

import (
	"time"

	"repro/internal/obs"
)

// This file holds the incremental periodic work of the control plane. The
// old implementation swept *every* resident session (and every dedup ring)
// on each tick — O(resident) work whether or not anything was due. Both
// sweeps now run on hashed timer wheels keyed on each entry's next
// deadline, so a tick costs O(entries due now) plus a constant bucket walk,
// and a server with 100k idle-but-alive sessions pays the same per tick as
// one with 1k. RTCP feedback renegotiation is batched the same way: a
// feedback packet marks its session dirty, and a per-shard tick
// renegotiates each dirty session once instead of once per packet.

// wheelPos locates an entry inside a wheel for O(1) removal. A negative
// bucket means "not queued". Entries embed one wheelPos per wheel they can
// sit on and must initialize it with noWheelPos.
type wheelPos struct{ bucket, slot int }

func noWheelPos() wheelPos { return wheelPos{bucket: -1, slot: -1} }

// wheel is a hashed timer wheel: fixed-width time buckets indexed by
// deadline/gran modulo the bucket count. schedule and remove are O(1);
// advance visits each bucket at most once per gran. Entries whose bucket
// comes up before their true deadline (wrap-around after a long sleep) are
// simply rescheduled by the fire callback's lazy deadline re-check. Not
// goroutine-safe: each wheel is guarded by its shard's lock.
type wheel[T any] struct {
	gran    time.Duration
	buckets [][]T
	pos     func(T) *wheelPos
	cursor  int64 // absolute index of the last drained bucket
	count   int
}

func newWheel[T any](now time.Time, gran time.Duration, buckets int, pos func(T) *wheelPos) *wheel[T] {
	if buckets < 2 {
		buckets = 2
	}
	w := &wheel[T]{gran: gran, buckets: make([][]T, buckets), pos: pos}
	w.cursor = w.bucketNum(now)
	return w
}

func (w *wheel[T]) bucketNum(t time.Time) int64 { return t.UnixNano() / int64(w.gran) }

// Len returns the number of queued entries.
func (w *wheel[T]) Len() int { return w.count }

// schedule (re)queues item for deadline, clamping already-due deadlines to
// the next drain so an entry is never parked behind the cursor.
func (w *wheel[T]) schedule(item T, deadline time.Time) {
	w.remove(item)
	b := w.bucketNum(deadline)
	if b <= w.cursor {
		b = w.cursor + 1
	}
	idx := int(b % int64(len(w.buckets)))
	p := w.pos(item)
	p.bucket = idx
	p.slot = len(w.buckets[idx])
	w.buckets[idx] = append(w.buckets[idx], item)
	w.count++
}

// remove dequeues item if queued (swap-remove via its stored position).
func (w *wheel[T]) remove(item T) {
	p := w.pos(item)
	if p.bucket < 0 {
		return
	}
	b := w.buckets[p.bucket]
	last := len(b) - 1
	moved := b[last]
	b[p.slot] = moved
	w.pos(moved).slot = p.slot
	var zero T
	b[last] = zero
	w.buckets[p.bucket] = b[:last]
	p.bucket, p.slot = -1, -1
	w.count--
}

// advance drains every bucket due by now. fire returns the entry's next
// deadline; a zero time drops it. The walk is capped at one full rotation:
// after a long sleep every bucket is visited exactly once and still-future
// entries are rescheduled by their returned deadlines.
func (w *wheel[T]) advance(now time.Time, fire func(T) time.Time) {
	target := w.bucketNum(now)
	if target <= w.cursor {
		return
	}
	if w.count == 0 {
		w.cursor = target
		return
	}
	first := w.cursor + 1
	if target-first >= int64(len(w.buckets)) {
		first = target - int64(len(w.buckets)) + 1
	}
	for b := first; b <= target; b++ {
		w.cursor = b
		idx := int(b % int64(len(w.buckets)))
		due := w.buckets[idx]
		if len(due) == 0 {
			continue
		}
		// Detach the bucket first: fire may reschedule entries, and fresh
		// inserts must land on the live slice, not the one being drained.
		w.buckets[idx] = nil
		for _, item := range due {
			p := w.pos(item)
			p.bucket, p.slot = -1, -1
		}
		w.count -= len(due)
		for _, item := range due {
			if next := fire(item); !next.IsZero() {
				w.schedule(item, next)
			}
		}
	}
}

// livenessWindow is the silence budget after which a heartbeat-capable
// session is auto-suspended.
func (s *Server) livenessWindow() time.Duration {
	return time.Duration(s.opts.LivenessMisses) * s.opts.HeartbeatEvery
}

// scheduleLivenessLocked keys the session on its next liveness deadline and
// arms the shard's sweep tick. Caller holds sh.mu. Only the heartbeat path
// and the ResumeSession recovery path schedule here, mirroring where the
// old global sweep armed: token resumes and raw-packet sessions are never
// liveness-policed.
func (s *Server) scheduleLivenessLocked(sh *ctrlShard, si int, sess *session) {
	sh.live.schedule(sess, sess.lastBeat.Add(s.livenessWindow()))
	if !sh.liveOn {
		sh.liveOn = true
		s.clk.AfterFunc(s.opts.HeartbeatEvery, func() { s.liveTick(si) })
	}
}

// liveTick is one shard's liveness sweep: it drains the sessions whose
// deadline came up, auto-suspends the truly silent ones and re-keys the
// rest on their refreshed deadlines. Cost is O(sessions due this tick). The
// tick re-arms only while the wheel holds entries, so an idle server's
// virtual clock can still drain.
func (s *Server) liveTick(si int) {
	t0 := time.Now()
	defer func() { s.hLiveTick.Observe(time.Since(t0)) }()
	sh := &s.shards[si]
	sh.mu.Lock()
	now := s.clk.Now()
	window := s.livenessWindow()
	sh.live.advance(now, func(sess *session) time.Time {
		if sess.suspended || sess.lastBeat.IsZero() {
			return time.Time{}
		}
		if now.Sub(sess.lastBeat) >= window {
			s.suspendSessionLocked(sh, sess)
			s.opts.Obs.Counter("server_sessions_suspended_liveness").Inc()
			s.opts.Obs.Emit(obs.EvLiveness, sess.user, 0,
				"client silent; session "+sess.id+" auto-suspended")
			return time.Time{}
		}
		return sess.lastBeat.Add(window)
	})
	if sh.live.Len() > 0 {
		s.clk.AfterFunc(s.opts.HeartbeatEvery, func() { s.liveTick(si) })
	} else {
		sh.liveOn = false
	}
	sh.mu.Unlock()
}

// dedupTick is one shard's sessionless-ring sweep: it drains the rings
// whose TTL came up and evicts the ones still sessionless and idle.
// Session-backed rings are dropped from the wheel at their first fire —
// they are deleted with their session — so a server whose only rings
// belong to live sessions stops ticking entirely (and a virtual clock can
// drain), instead of re-arming every TTL forever.
func (s *Server) dedupTick(si int) {
	t0 := time.Now()
	defer func() { s.hDedupTick.Observe(time.Since(t0)) }()
	sh := &s.shards[si]
	// Session liveness is consulted under sh.mu; rings live under sh.dmu
	// (mu → dmu, matching the handler path's order).
	sh.mu.Lock()
	sh.dmu.Lock()
	now := s.clk.Now()
	sh.rings.advance(now, func(ring *dedupRing) time.Time {
		if _, live := sh.sessions[ring.addr]; live {
			return time.Time{}
		}
		if now.Sub(ring.lastUsed) >= dedupTTL {
			delete(sh.dedup, ring.addr)
			return time.Time{}
		}
		return ring.lastUsed.Add(dedupTTL)
	})
	if sh.rings.Len() > 0 {
		s.clk.AfterFunc(sh.rings.gran, func() { s.dedupTick(si) })
	} else {
		sh.ringsOn = false
	}
	sh.dmu.Unlock()
	sh.mu.Unlock()
}

// releaseRingLocked returns a session's reply cache to the TTL wheel when
// the session leaves its address (cross-address reattach): the ring is
// sessionless again and must not outlive the TTL. Caller holds sh.mu.
func (s *Server) releaseRingLocked(sh *ctrlShard, si int, addr string) {
	sh.dmu.Lock()
	if ring, ok := sh.dedup[addr]; ok {
		sh.rings.schedule(ring, ring.lastUsed.Add(dedupTTL))
		if !sh.ringsOn {
			sh.ringsOn = true
			s.clk.AfterFunc(sh.rings.gran, func() { s.dedupTick(si) })
		}
	}
	sh.dmu.Unlock()
}

// dropRingLocked deletes an address's reply cache outright (session
// teardown). Caller holds sh.mu.
func (sh *ctrlShard) dropRingLocked(addr string) {
	sh.dmu.Lock()
	if ring, ok := sh.dedup[addr]; ok {
		sh.rings.remove(ring)
		delete(sh.dedup, addr)
	}
	sh.dmu.Unlock()
}

// queueRenegotiate marks a session's reservation dirty and arms its
// shard's renegotiation tick. RTCP feedback calls this instead of
// renegotiating inline, so a feedback burst costs one admission-pool
// renegotiation per session per tick, not one per packet.
func (s *Server) queueRenegotiate(sess *session) {
	if !sess.renegQueued.CompareAndSwap(false, true) {
		return
	}
	sh, si := s.lockSession(sess)
	sh.reneg = append(sh.reneg, sess)
	if !sh.renegOn {
		sh.renegOn = true
		s.clk.AfterFunc(s.opts.HeartbeatEvery, func() { s.renegTick(si) })
	}
	sh.mu.Unlock()
}

// renegTick renegotiates every session marked dirty since the last tick:
// the session's reservation is resized to the aggregate nominal rate of
// its streams at their current quality levels ([KRI 94]-style service
// renegotiation). The shard lock covers only the batch swap and the
// sender-list snapshots; per-stream rates are read through each sender's
// own lock and the admission pool has its own.
func (s *Server) renegTick(si int) {
	sh := &s.shards[si]
	type item struct {
		snds   []*sender
		connID int
	}
	sh.mu.Lock()
	batch := sh.reneg
	sh.reneg = nil
	sh.renegOn = false
	items := make([]item, 0, len(batch))
	for _, sess := range batch {
		sess.renegQueued.Store(false)
		// Skip sessions torn down — or moved to another shard — since they
		// were queued; a moved session's next feedback re-queues it there.
		if sh.byID[sess.id] != sess {
			continue
		}
		it := item{snds: make([]*sender, 0, len(sess.senders)), connID: sess.connID}
		for _, snd := range sess.senders {
			it.snds = append(it.snds, snd)
		}
		items = append(items, it)
	}
	sh.mu.Unlock()
	for _, it := range items {
		total := 0.0
		for _, snd := range it.snds {
			total += snd.nominalRate()
		}
		s.adm.Renegotiate(it.connID, total)
		s.opts.Obs.Counter("server_renegotiations").Inc()
	}
	if len(items) > 0 {
		s.opts.Obs.Counter("server_reneg_batches").Inc()
	}
}

package server

import "repro/internal/netsim"

// Test-only accessors into the sharded control plane, so tests reach
// session and dedup state without hard-coding the shard layout.

// lockedSession write-locks addr's shard and returns the session attached
// there (nil when none) plus the unlock.
func (s *Server) lockedSession(addr netsim.Addr) (*session, func()) {
	sh := s.shardOf(string(addr))
	sh.mu.Lock()
	return sh.sessions[string(addr)], sh.mu.Unlock
}

// dedupHas reports whether addr currently holds a reply cache.
func (s *Server) dedupHas(addr netsim.Addr) bool {
	sh := s.shardOf(string(addr))
	sh.dmu.Lock()
	defer sh.dmu.Unlock()
	_, ok := sh.dedup[string(addr)]
	return ok
}

//go:build race

package server

// raceEnabled reports whether this test binary was built with -race. Under
// the race detector sync.Pool deliberately discards a fraction of Put/Get
// pairs to widen the interleavings it can observe, so allocation-count
// bounds that rely on pool hits do not hold there.
const raceEnabled = true

package server

import (
	"fmt"
	"time"

	"repro/internal/auth"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/qos"
	"repro/internal/rtp"
	"repro/internal/scenario"
)

// This file is the control plane's session lifecycle: the packet dispatch
// and every handler that touches sharded session state. Handlers lock only
// the shard of the client address they serve; the resume paths, which may
// move a session between addresses (and thus shards), go through
// claimSessionFor's ordered double-lock.

// dedupable reports whether a message type is a client request whose
// handling must be idempotent under retransmission.
func dedupable(mt protocol.MsgType) bool {
	switch mt {
	case protocol.MsgConnect, protocol.MsgSubscribe, protocol.MsgTopicList,
		protocol.MsgSearch, protocol.MsgDocRequest, protocol.MsgSuspend,
		protocol.MsgListAnnotations, protocol.MsgStatsRequest:
		return true
	}
	return false
}

// handle dispatches one control packet, observing the wall time spent in
// the handler (decode, dedup check, and the message's own work) into the
// server_ctrl_handle histogram.
func (s *Server) handle(pkt netsim.Packet) {
	t0 := time.Now()
	s.handlePacket(pkt)
	s.hHandle.Observe(time.Since(t0))
}

func (s *Server) handlePacket(pkt netsim.Packet) {
	mt, reqID, body, err := protocol.DecodeReq(pkt.Payload)
	if err != nil {
		return
	}
	if reqID != 0 && dedupable(mt) {
		si := shardIndex(string(pkt.From))
		sh := &s.shards[si]
		sh.dmu.Lock()
		ring := s.dedupRingLocked(sh, si, string(pkt.From))
		if frame, seen := ring.get(reqID); seen {
			sh.dmu.Unlock()
			s.opts.Obs.Counter("server_ctrl_dedup_hits").Inc()
			s.opts.Obs.Emit(obs.EvCtrlDedup, string(pkt.From), int64(reqID), "duplicate "+mt.String())
			if frame != nil {
				// The reply is known: re-send it without re-running the
				// handler. A nil frame means the original is still in
				// flight, so the duplicate is simply dropped.
				s.sendCtrl(pkt.From, frame)
			}
			return
		}
		ring.put(reqID, nil)
		sh.dmu.Unlock()
	}
	switch mt {
	case protocol.MsgConnect:
		var m protocol.Connect
		if protocol.DecodeBody(body, &m) == nil {
			s.onConnect(pkt.From, reqID, m)
		}
	case protocol.MsgSubscribe:
		var m protocol.SubscriptionForm
		if protocol.DecodeBody(body, &m) == nil {
			s.onSubscribe(pkt.From, reqID, m)
		}
	case protocol.MsgTopicList:
		s.replyReq(pkt.From, reqID, protocol.MsgTopics, protocol.Topics{Topics: s.db.Topics(s.Name)})
	case protocol.MsgSearch:
		var m protocol.Search
		if protocol.DecodeBody(body, &m) == nil {
			s.onSearch(pkt.From, reqID, m)
		}
	case protocol.MsgSearchResult:
		var m protocol.SearchResult
		if protocol.DecodeBody(body, &m) == nil {
			s.onSearchResult(m)
		}
	case protocol.MsgDocRequest:
		var m protocol.DocRequest
		if protocol.DecodeBody(body, &m) == nil {
			s.onDocRequest(pkt.From, reqID, m)
		}
	case protocol.MsgHeartbeat:
		var m protocol.Heartbeat
		if protocol.DecodeBody(body, &m) == nil {
			s.onHeartbeat(pkt.From, m)
		}
	case protocol.MsgFeedback:
		var m protocol.Feedback
		if protocol.DecodeBody(body, &m) == nil {
			s.onFeedback(pkt.From, m)
		}
	case protocol.MsgPause:
		s.onMediaOp(pkt.From, mt, protocol.MediaOp{})
	case protocol.MsgResume:
		s.onMediaOp(pkt.From, mt, protocol.MediaOp{})
	case protocol.MsgReload:
		s.onMediaOp(pkt.From, mt, protocol.MediaOp{})
	case protocol.MsgDisableMedia:
		var m protocol.MediaOp
		if protocol.DecodeBody(body, &m) == nil {
			s.onMediaOp(pkt.From, mt, m)
		}
	case protocol.MsgAnnotate:
		// Annotations are accepted and logged with the access trail.
		var m protocol.Annotate
		if protocol.DecodeBody(body, &m) == nil {
			s.onAnnotate(pkt.From, m)
		}
	case protocol.MsgListAnnotations:
		var m protocol.ListAnnotations
		if protocol.DecodeBody(body, &m) == nil {
			s.onListAnnotations(pkt.From, reqID, m)
		}
	case protocol.MsgSuspend:
		s.onSuspend(pkt.From, reqID)
	case protocol.MsgDisconnect:
		s.onDisconnect(pkt.From)
	case protocol.MsgStatsRequest:
		s.onStats(pkt.From, reqID)
	}
}

// onHeartbeat refreshes the session's liveness deadline and acks. An ack
// with OK=false tells the client this server holds no such session — the
// fast path to failover after a server restart. A heartbeat whose session
// ID merely mismatches the live session at that address (a stale beat that
// raced a reattach) is NOT a lost session: it is acked OK with the current
// id, without refreshing liveness, so the client neither fails over nor
// keeps a dead incarnation alive.
func (s *Server) onHeartbeat(from netsim.Addr, m protocol.Heartbeat) {
	si := shardIndex(string(from))
	sh := &s.shards[si]
	sh.mu.Lock()
	sess, ok := sh.sessions[string(from)]
	if !ok || sess.suspended {
		sh.mu.Unlock()
		s.reply(from, protocol.MsgHeartbeatAck, protocol.HeartbeatAck{OK: false})
		return
	}
	id, doc := sess.id, sess.doc
	if m.SessionID == "" || m.SessionID == id {
		sess.lastBeat = s.clk.Now()
		s.scheduleLivenessLocked(sh, si, sess)
		sh.mu.Unlock()
		// Every ack refreshes the per-document replica set, so the client's
		// failover targets track the document it is actually viewing.
		s.reply(from, protocol.MsgHeartbeatAck, protocol.HeartbeatAck{
			OK: true, SessionID: id, Peers: s.peersForDoc(doc)})
		return
	}
	sh.mu.Unlock()
	s.opts.Obs.Counter("server_stale_heartbeats").Inc()
	s.opts.Obs.Emit(obs.EvLiveness, string(from), 0,
		"stale heartbeat for "+m.SessionID+"; live session is "+id)
	s.reply(from, protocol.MsgHeartbeatAck, protocol.HeartbeatAck{
		OK: true, SessionID: id, Peers: s.peersForDoc(doc)})
}

// connectExtras fills the recovery parameters every successful
// ConnectResult carries: the grace window bounding recovery probing, and
// the replica list for failover.
func (s *Server) connectExtras(res *protocol.ConnectResult) {
	res.GraceSecs = int(s.opts.Grace.Seconds())
	res.Peers = s.peerList()
}

// reattachLocked moves a (possibly suspended) session to a client address
// and restarts its paused media. Shared by the voluntary resume-token path
// and the liveness-recovery ResumeSession path; only the latter re-arms
// liveness policing (police), mirroring where the old sweep armed. Caller
// holds the locks of shards oi (owning) and ni (target) via lockPair.
func (s *Server) reattachLocked(oi, ni int, sess *session, from netsim.Addr, police bool) {
	old, neu := &s.shards[oi], &s.shards[ni]
	sess.suspended = false
	if sess.graceTimer != nil {
		sess.graceTimer.Stop()
		sess.graceTimer = nil
	}
	if sess.resumeToken != "" {
		delete(old.byToken, sess.resumeToken)
		sess.resumeToken = ""
	}
	oldAddr := string(sess.client)
	if cur, ok := old.sessions[oldAddr]; ok && cur == sess {
		delete(old.sessions, oldAddr)
		s.sessionCount.Add(-1)
	}
	delete(old.byID, sess.id)
	old.live.remove(sess)
	if oldAddr != string(from) {
		// The old address's reply cache is sessionless now: back onto the
		// TTL wheel so it cannot outlive the dedup window.
		s.releaseRingLocked(old, oi, oldAddr)
	}
	sess.client = from
	if _, existed := neu.sessions[string(from)]; !existed {
		s.sessionCount.Add(1)
	}
	neu.sessions[string(from)] = sess
	neu.byID[sess.id] = sess
	sess.shard.Store(int32(ni))
	// Resume-before-expiry wakes every sender the suspend parked — and ONLY
	// those: a sender the user paused before the suspend stays paused with
	// its pause-shifted origin intact, so the user's own Resume later picks
	// up exactly where playback stopped. A fresh liveness deadline keeps the
	// sweep from instantly re-suspending.
	sess.lastBeat = s.clk.Now()
	if police {
		s.scheduleLivenessLocked(neu, ni, sess)
	}
	for _, snd := range sess.senders {
		snd.unpark()
	}
	if len(sess.senders) > 0 {
		if sess.srTimer != nil {
			sess.srTimer.Stop()
		}
		sess.srTimer = s.clk.AfterFunc(5*time.Second, func() { s.sendSenderReports(sess) })
	}
}

func (s *Server) onConnect(from netsim.Addr, reqID uint32, m protocol.Connect) {
	now := s.clk.Now()

	// Returning to a suspended session within the grace period skips
	// authentication and admission entirely.
	if m.ResumeToken != "" {
		sess, oi, ni := s.claimSessionFor(from, func(sh *ctrlShard) *session {
			return sh.byToken[m.ResumeToken]
		})
		if sess == nil {
			s.replyReq(from, reqID, protocol.MsgConnectResult, protocol.ConnectResult{
				OK: false, Reason: "resume token expired"})
			return
		}
		s.reattachLocked(oi, ni, sess, from, false)
		s.unlockPair(oi, ni)
		res := protocol.ConnectResult{OK: true, SessionID: sess.id, Resumed: true}
		s.connectExtras(&res)
		s.replyReq(from, reqID, protocol.MsgConnectResult, res)
		return
	}

	// Recovering a session by ID after a liveness loss: the client never
	// got a resume token because it never chose to leave. If the session
	// survived (possibly auto-suspended by the sweep), re-attach it;
	// otherwise tell the client the session is gone so it fails over.
	if m.ResumeSession != "" {
		sess, oi, ni := s.claimSessionFor(from, func(sh *ctrlShard) *session {
			return sh.byID[m.ResumeSession]
		})
		if sess == nil {
			s.replyReq(from, reqID, protocol.MsgConnectResult, protocol.ConnectResult{
				OK: false, SessionLost: true, Reason: "unknown session " + m.ResumeSession})
			return
		}
		wasSuspended := sess.suspended
		s.reattachLocked(oi, ni, sess, from, true)
		s.unlockPair(oi, ni)
		if wasSuspended {
			s.opts.Obs.Counter("server_sessions_resumed").Inc()
			s.opts.Obs.Emit(obs.EvSessionResume, sess.user, int64(sess.connID),
				"session "+sess.id+" resumed after liveness loss")
		}
		res := protocol.ConnectResult{OK: true, SessionID: sess.id, Resumed: true}
		s.connectExtras(&res)
		s.replyReq(from, reqID, protocol.MsgConnectResult, res)
		return
	}

	// A signed handoff ticket admits the session as a continuation from a
	// peer server: the source already authenticated the user, so the ticket
	// (signature + expiry) replaces the password round-trip, and the connect
	// is exempt from the admission-redirect watermark — shedding a session
	// mid-handoff would orphan it.
	user, class := m.User, qos.Standard
	viaHandoff := false
	if m.Handoff != nil {
		if err := m.Handoff.Verify(s.opts.ClusterKey, now); err != nil {
			s.replyReq(from, reqID, protocol.MsgConnectResult, protocol.ConnectResult{
				OK: false, Reason: "handoff ticket rejected: " + err.Error()})
			return
		}
		user, class = m.Handoff.User, m.Handoff.Class
		viaHandoff = true
		s.cHandoffAccepts.Inc()
		s.opts.Obs.Emit(obs.EvHandoff, user, 0,
			"accepted handoff of "+m.Handoff.Doc+" from "+m.Handoff.From)
	} else {
		// Authentication.
		u, err := s.users.Authenticate(m.User, m.Password, now)
		if err == auth.ErrUnknownUser {
			s.replyReq(from, reqID, protocol.MsgConnectResult, protocol.ConnectResult{
				OK: false, NeedSubscription: true, Reason: "please subscribe"})
			return
		}
		if err != nil {
			s.replyReq(from, reqID, protocol.MsgConnectResult, protocol.ConnectResult{
				OK: false, Reason: err.Error()})
			return
		}
		class = u.Class
	}

	// Load-aware admission redirect: over the watermark, a fresh connect is
	// pointed at less-loaded peers instead of rejected. Failover and handoff
	// connects are exempt — they carry a session that must land somewhere.
	if !m.Failover && !viaHandoff {
		if reason, over := s.overWatermark(); over {
			if targets := s.redirectTargets(nil); len(targets) > 0 {
				s.cRedirects.Inc()
				s.opts.Obs.Emit(obs.EvRedirect, user, 0, "redirect: "+reason)
				s.replyReq(from, reqID, protocol.MsgConnectResult, protocol.ConnectResult{
					OK: false, Redirect: true, Peers: targets, Reason: reason})
				return
			}
		}
	}

	// Admission: network condition + connection load + QoS floor +
	// pricing contract.
	peak := m.PeakRate
	if peak <= 0 {
		peak = 2_000_000
	}
	dec := s.adm.Request(qos.ConnRequest{
		User: user, Class: class, PeakRate: peak, MinRate: m.MinRate,
		Resumed: m.Failover || viaHandoff,
	})
	if dec.Verdict == qos.Rejected {
		s.replyReq(from, reqID, protocol.MsgConnectResult, protocol.ConnectResult{
			OK: false, Reason: dec.Reason})
		return
	}
	sess := &session{
		id:         fmt.Sprintf("%s-sess-%d", s.Name, s.nextID.Add(1)),
		user:       user,
		class:      class,
		client:     from,
		connID:     dec.ConnID,
		floorLevel: m.FloorLevel,
		qosMgr:     qos.NewManager(s.clk, s.opts.Policy),
		senders:    map[string]*sender{},
		ssrcToID:   map[uint32]string{},
		startedAt:  now,
		lwPos:      noWheelPos(),
	}
	sess.qosMgr.SetObs(s.opts.Obs)
	ni := shardIndex(string(from))
	sess.shard.Store(int32(ni))
	sh := &s.shards[ni]
	sh.mu.Lock()
	if _, existed := sh.sessions[string(from)]; !existed {
		s.sessionCount.Add(1)
	}
	sh.sessions[string(from)] = sess
	sh.byID[sess.id] = sess
	sh.mu.Unlock()
	s.opts.Obs.Gauge("server_sessions").Set(s.sessionCount.Load())
	s.opts.Obs.Emit(obs.EvSessionStart, user, int64(dec.ConnID), "session "+sess.id)
	res := protocol.ConnectResult{
		OK: true, SessionID: sess.id,
		GrantedRate: dec.Rate, Degraded: dec.Verdict == qos.AdmittedDegraded,
	}
	s.connectExtras(&res)
	s.replyReq(from, reqID, protocol.MsgConnectResult, res)
}

func (s *Server) onDocRequest(from netsim.Addr, reqID uint32, m protocol.DocRequest) {
	sh := s.shardOf(string(from))
	sh.mu.Lock()
	sess, ok := sh.sessions[string(from)]
	if !ok || sess.suspended {
		sh.mu.Unlock()
		s.replyReq(from, reqID, protocol.MsgDocResponse, protocol.DocResponse{
			OK: false, Reason: "no active session"})
		return
	}
	doc, ok := s.db.Get(m.Name)
	if !ok {
		// Not held here — but if the cluster directory knows replicas that
		// do hold it, hand the session off instead of failing the request.
		if dir := s.opts.Directory; dir != nil {
			var holders []string
			for _, r := range dir.Replicas(m.Name) {
				if r != s.Name {
					holders = append(holders, r)
				}
			}
			if len(holders) > 0 {
				s.issueHandoff(sh, sess, from, reqID, m.Name, holders)
				return
			}
		}
		sh.mu.Unlock()
		s.replyReq(from, reqID, protocol.MsgDocResponse, protocol.DocResponse{
			OK: false, Reason: "document not found: " + m.Name})
		return
	}
	// Tear down any previous document's flows.
	s.stopSendersLocked(sess)
	sess.doc = m.Name
	sess.qosMgr = qos.NewManager(s.clk, s.opts.Policy)
	sess.qosMgr.SetObs(s.opts.Obs)
	sess.ssrcToID = map[uint32]string{}
	s.opts.Obs.Counter("server_docs_served").Inc()

	// The flow scheduler computes the flow scenario and activates the
	// media servers. The pre-roll lead matches the client's media time
	// window (plus a margin), so that the deliberate initial delay fills
	// each buffer to exactly its window.
	preRoll := s.opts.PreRoll
	if m.WindowMS > 0 {
		preRoll = time.Duration(m.WindowMS)*time.Millisecond + 100*time.Millisecond
	}
	flows := scenario.BuildFlow(doc.Scenario, scenario.FlowOptions{
		PreRoll: preRoll,
		Rate: func(st *scenario.Stream) float64 {
			return media.ForStream(st).Bitrate(0)
		},
	})
	var announces []protocol.StreamAnnounce
	clientHost := from.Host()
	base := m.MediaPortBase
	if base <= 0 {
		base = 7000
	}
	// A short setup delay keeps the first media packets from racing the
	// DocResponse on the unordered datagram path.
	origin := s.clk.Now().Add(200 * time.Millisecond)
	for i, f := range flows {
		src := media.ForStream(f.Stream)
		ssrc := s.nextSSRC.Add(1)
		port := base + i
		to := netsim.MakeAddr(clientHost, port)
		snd := newSender(s, sess.qosMgr, f, src, ssrc, to, origin)
		sess.senders[f.Stream.ID] = snd
		sess.qosMgr.Register(qos.StreamConfig{
			ID:     f.Stream.ID,
			Kind:   f.Stream.Type,
			Group:  f.Stream.SyncGroup,
			Levels: src.Levels(),
			Floor:  minInt(sess.floorLevel, src.Levels()-1),
		})
		// Shared fan-out: a time-sensitive stream whose session grades at
		// the flow's level rides the document's shared flow — the announce
		// then carries the FLOW's SSRC, and the client receives the same
		// packets as every other subscriber. Late joiners get a catch-up
		// patch from the flow's segment cache (see sharedflow.go).
		if s.opts.SharedFlows && f.Stream.Type.TimeSensitive() && sess.qosMgr.LevelMatches(f.Stream.ID, 0) {
			fl := s.flows.attach(s, flowKey{doc: m.Name, stream: f.Stream.ID, level: 0}, f, src, snd, to, origin)
			snd.attachShared(fl)
			ssrc = fl.ssrc
		}
		sess.ssrcToID[ssrc] = f.Stream.ID
		announces = append(announces, protocol.StreamAnnounce{
			StreamID:        f.Stream.ID,
			SSRC:            ssrc,
			Port:            port,
			PayloadType:     byte(src.PayloadType(0)),
			Rate:            f.Rate,
			FrameIntervalUS: src.FrameInterval().Microseconds(),
			Levels:          src.Levels(),
		})
	}
	s.users.LogRetrieval(sess.user, m.Name, s.clk.Now())
	sh.mu.Unlock()

	s.replyReq(from, reqID, protocol.MsgDocResponse, protocol.DocResponse{
		OK:          true,
		Name:        doc.Name,
		ScenarioSrc: doc.Source,
		Streams:     announces,
		Peers:       s.peersForDoc(doc.Name),
	})
	// Activate the media servers and the periodic RTCP sender reports. The
	// session may have moved shards (or been torn down) while the reply
	// was on the wire, so re-locate it; starting a stopped sender is a
	// no-op, and sendSenderReports revalidates before re-arming.
	sh2, _ := s.lockSession(sess)
	sess.flowOrigin = origin
	for _, snd := range sess.senders {
		snd.start()
	}
	if sess.srTimer != nil {
		sess.srTimer.Stop()
	}
	sess.srTimer = s.clk.AfterFunc(5*time.Second, func() { s.sendSenderReports(sess) })
	sh2.mu.Unlock()
}

// sendSenderReports emits one RTCP SR per active media sender so receivers
// can map RTP timestamps to the sender's wall clock (RFC 1889 §6.3). The
// shard lock covers only the session snapshot; report construction walks
// each sender under that sender's own lock and the sends happen lock-free.
func (s *Server) sendSenderReports(sess *session) {
	sh, _ := s.lockSession(sess)
	if sess.suspended || sh.byID[sess.id] != sess {
		sh.mu.Unlock()
		return
	}
	now := s.clk.Now()
	mediaTime := now.Sub(sess.flowOrigin)
	if mediaTime < 0 {
		mediaTime = 0
	}
	snds := make([]*sender, 0, len(sess.senders))
	for _, snd := range sess.senders {
		snds = append(snds, snd)
	}
	if len(snds) > 0 {
		sess.srTimer = s.clk.AfterFunc(5*time.Second, func() { s.sendSenderReports(sess) })
	}
	sh.mu.Unlock()
	from := netsim.MakeAddr(s.Name, mediaPort)
	for _, snd := range snds {
		if sr := snd.report(now, mediaTime); sr != nil {
			s.net.Send(netsim.Packet{From: from, To: snd.to, Payload: sr.Marshal()})
		}
	}
}

func (s *Server) onFeedback(from netsim.Addr, m protocol.Feedback) {
	// One short read-side critical section snapshots the session's SSRC
	// map and QoS manager; report decoding and grading then run off the
	// shard lock (the manager has its own fine-grained lock), and any
	// rate change is queued for the batched renegotiation tick instead of
	// renegotiating per packet.
	sh := s.shardOf(string(from))
	sh.mu.RLock()
	sess, ok := sh.sessions[string(from)]
	var mgr *qos.Manager
	var ssrcToID map[uint32]string
	if ok {
		mgr = sess.qosMgr
		ssrcToID = make(map[uint32]string, len(sess.ssrcToID))
		for ssrc, id := range sess.ssrcToID {
			ssrcToID[ssrc] = id
		}
	}
	sh.mu.RUnlock()
	if !ok || s.opts.DisableGrading {
		return
	}
	parts, err := rtp.SplitCompound(m.RTCP)
	if err != nil {
		return
	}
	var acted []string
	for _, part := range parts {
		cp, err := rtp.UnmarshalControl(part)
		if err != nil || cp.RR == nil {
			continue
		}
		for _, block := range cp.RR.Reports {
			id, ok := ssrcToID[block.SSRC]
			if !ok {
				continue
			}
			if acts := mgr.Feedback(qos.FromRTCP(id, block, s.clk.Now())); len(acts) > 0 {
				// Grading changed the stream mix's rate: mark the session
				// for the next renegotiation tick so freed bandwidth
				// returns to the admission pool ([KRI 94]-style service
				// renegotiation) without an admission-pool round-trip per
				// RTCP packet.
				s.queueRenegotiate(sess)
				for _, act := range acts {
					acted = append(acted, act.StreamID)
				}
			}
		}
	}
	if len(acted) == 0 || !s.opts.SharedFlows {
		return
	}
	// Per-flow vs per-session level reconciliation: any grading action moves
	// the acted stream's session level away from the shared flow's fixed
	// encode level (upgrades back toward it only happen on already-private
	// senders), so the subscriber detaches onto its private sender — the
	// other subscribers never notice.
	sh.mu.RLock()
	var diverged []*sender
	if cur, live := sh.sessions[string(from)]; live && cur == sess {
		for _, id := range acted {
			if snd := sess.senders[id]; snd != nil && !sess.qosMgr.LevelMatches(id, 0) {
				diverged = append(diverged, snd)
			}
		}
	}
	sh.mu.RUnlock()
	for _, snd := range diverged {
		snd.detachShared()
	}
}

func (s *Server) onMediaOp(from netsim.Addr, mt protocol.MsgType, m protocol.MediaOp) {
	sh := s.shardOf(string(from))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sess, ok := sh.sessions[string(from)]
	if !ok || sess.suspended {
		// A suspended session's media is parked behind the grace machinery;
		// a delayed fire-and-forget resume/reload must not restart senders
		// toward a client the suspend machinery believes is paused. Only
		// the resume-token / ResumeSession paths may wake it.
		return
	}
	switch mt {
	case protocol.MsgPause:
		for _, snd := range sess.senders {
			snd.pause()
		}
	case protocol.MsgResume:
		for _, snd := range sess.senders {
			snd.resume()
		}
	case protocol.MsgReload:
		origin := s.clk.Now()
		for _, snd := range sess.senders {
			snd.restart(origin)
		}
	case protocol.MsgDisableMedia:
		if snd, ok := sess.senders[m.StreamID]; ok {
			snd.disable()
		}
	}
}

// suspendSessionLocked pauses the session's media and parks it behind a
// fresh resume token and grace timer. Caller holds sh.mu (the shard owning
// the session). Used both for the paper's voluntary suspend and for
// liveness auto-suspension.
func (s *Server) suspendSessionLocked(sh *ctrlShard, sess *session) string {
	for _, snd := range sess.senders {
		snd.park()
	}
	sess.suspended = true
	sess.resumeToken = fmt.Sprintf("%s-tok-%d", s.Name, s.nextID.Add(1))
	sh.byToken[sess.resumeToken] = sess
	tok := sess.resumeToken
	sh.live.remove(sess)
	// "The suspended connection remains active for a period of time ...
	// when this interval is passed the connection closes and the attached
	// client is informed about the event."
	if sess.graceTimer != nil {
		sess.graceTimer.Stop()
	}
	sess.graceTimer = s.clk.AfterFunc(s.opts.Grace, func() { s.expireSuspended(tok) })
	return tok
}

func (s *Server) onSuspend(from netsim.Addr, reqID uint32) {
	sh := s.shardOf(string(from))
	sh.mu.Lock()
	sess, ok := sh.sessions[string(from)]
	if !ok {
		sh.mu.Unlock()
		s.replyReq(from, reqID, protocol.MsgSuspendResult, protocol.SuspendResult{OK: false})
		return
	}
	tok := s.suspendSessionLocked(sh, sess)
	grace := s.opts.Grace
	sh.mu.Unlock()
	s.replyReq(from, reqID, protocol.MsgSuspendResult, protocol.SuspendResult{
		OK: true, ResumeToken: tok, GraceSecs: int(grace.Seconds()),
	})
}

func (s *Server) expireSuspended(token string) {
	// The token lives on the shard of the session's current address; scan
	// for it (grace expiries are rare).
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sess, ok := sh.byToken[token]
		if !ok {
			sh.mu.Unlock()
			continue
		}
		if !sess.suspended {
			sh.mu.Unlock()
			return
		}
		client := sess.client
		s.teardownSessionLocked(sh, sess, "grace period expired")
		sh.mu.Unlock()
		s.reply(client, protocol.MsgError, protocol.ErrorMsg{Msg: "suspended connection closed: grace period expired"})
		return
	}
}

func (s *Server) onDisconnect(from netsim.Addr) {
	sh := s.shardOf(string(from))
	sh.mu.Lock()
	sess, ok := sh.sessions[string(from)]
	if !ok {
		sh.mu.Unlock()
		return
	}
	s.teardownSessionLocked(sh, sess, "client disconnect")
	sh.mu.Unlock()
}

// teardownSessionLocked removes a session from its shard's maps and wheels,
// stops its media, releases its reservation and settles billing. Caller
// holds sh.mu (the shard owning the session).
func (s *Server) teardownSessionLocked(sh *ctrlShard, sess *session, note string) {
	addr := string(sess.client)
	if cur, ok := sh.sessions[addr]; ok && cur == sess {
		delete(sh.sessions, addr)
		s.sessionCount.Add(-1)
	}
	delete(sh.byID, sess.id)
	if sess.resumeToken != "" {
		delete(sh.byToken, sess.resumeToken)
		sess.resumeToken = ""
	}
	if sess.graceTimer != nil {
		sess.graceTimer.Stop()
		sess.graceTimer = nil
	}
	sh.live.remove(sess)
	sh.dropRingLocked(addr)
	s.stopSendersLocked(sess)
	s.adm.Release(sess.connID)
	s.opts.Obs.Gauge("server_sessions").Set(s.sessionCount.Load())
	s.opts.Obs.Emit(obs.EvSessionEnd, sess.user, int64(sess.connID), note)
	s.users.ChargeSession(sess.user, s.clk.Now().Sub(sess.startedAt), s.clk.Now())
	s.users.LogLogout(sess.user, s.clk.Now())
}

func (s *Server) stopSendersLocked(sess *session) {
	for _, snd := range sess.senders {
		snd.stop()
	}
	sess.senders = map[string]*sender{}
	if sess.srTimer != nil {
		sess.srTimer.Stop()
		sess.srTimer = nil
	}
}

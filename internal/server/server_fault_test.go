package server

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/hml"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/qos"
)

// faultHarness is the direct-server harness with telemetry attached and
// request-ID framing on both directions.
type faultHarness struct {
	clk     *clock.Virtual
	net     *netsim.Network
	scope   *obs.Scope
	srv     *Server
	replies []struct {
		mt    protocol.MsgType
		reqID uint32
		body  []byte
	}
}

func newFaultHarness(t *testing.T, opts Options) *faultHarness {
	t.Helper()
	clk := clock.NewSim()
	net := netsim.New(clk, 1)
	scope := obs.NewScope(clk)
	opts.Obs = scope
	users := auth.NewDB()
	users.Subscribe(auth.User{Name: "u", Password: "p", Email: "u@x", Class: qos.Standard}, clk.Now())
	db := NewDatabase()
	db.Put("doc", hml.Figure2Source, "")
	h := &faultHarness{clk: clk, net: net, scope: scope}
	srv, err := New("srv", clk, net, users, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	h.srv = srv
	net.Listen(fakeClient, func(p netsim.Packet) {
		mt, reqID, body, err := protocol.DecodeReq(p.Payload)
		if err == nil {
			// body views p.Payload, which the simulator recycles after this
			// handler returns: keep a copy.
			h.replies = append(h.replies, struct {
				mt    protocol.MsgType
				reqID uint32
				body  []byte
			}{mt, reqID, append([]byte(nil), body...)})
		}
	})
	return h
}

func (h *faultHarness) sendReq(reqID uint32, t protocol.MsgType, body interface{}) {
	h.net.Send(netsim.Packet{
		From: fakeClient, To: netsim.MakeAddr("srv", ControlPort),
		Payload: protocol.MustEncodeReq(t, reqID, body), Reliable: true,
	})
	h.clk.RunFor(time.Second)
}

func (h *faultHarness) lastReply(t *testing.T, want protocol.MsgType, out interface{}) {
	t.Helper()
	for i := len(h.replies) - 1; i >= 0; i-- {
		if h.replies[i].mt == want {
			if err := protocol.DecodeBody(h.replies[i].body, out); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatalf("no %v reply among %d replies", want, len(h.replies))
}

func (h *faultHarness) connectAndPlay(t *testing.T) {
	t.Helper()
	h.sendReq(1, protocol.MsgConnect, protocol.Connect{User: "u", Password: "p", PeakRate: 1_000_000})
	var cr protocol.ConnectResult
	h.lastReply(t, protocol.MsgConnectResult, &cr)
	if !cr.OK {
		t.Fatalf("connect = %+v", cr)
	}
	h.sendReq(2, protocol.MsgDocRequest, protocol.DocRequest{Name: "doc", MediaPortBase: 9000, WindowMS: 300})
	var dr protocol.DocResponse
	h.lastReply(t, protocol.MsgDocResponse, &dr)
	if !dr.OK {
		t.Fatalf("doc = %+v", dr)
	}
}

// The suspend → grace-expiry path must give the reserved admission
// bandwidth back to the pool and close the session.
func TestSuspendGraceExpiryReleasesAdmission(t *testing.T) {
	h := newFaultHarness(t, Options{Grace: 2 * time.Second})
	h.connectAndPlay(t)
	if h.srv.Admission().Reserved() == 0 {
		t.Fatal("no admission reservation after connect")
	}
	h.sendReq(3, protocol.MsgSuspend, protocol.Suspend{})
	sess, unlock := h.srv.lockedSession(fakeClient)
	if sess == nil || !sess.suspended {
		unlock()
		t.Fatal("session not suspended")
	}
	snds := sess.senders
	unlock()
	for id, snd := range snds {
		if !snd.isPaused() {
			t.Fatalf("sender %s not paused while suspended", id)
		}
	}
	h.clk.RunFor(3 * time.Second) // grace (2s) runs out
	if n := h.srv.Sessions(); n != 0 {
		t.Fatalf("sessions after grace expiry = %d, want 0", n)
	}
	if r := h.srv.Admission().Reserved(); r != 0 {
		t.Fatalf("reserved after grace expiry = %v, want 0", r)
	}
}

// Resuming before the grace deadline must restore every paused sender and
// keep the admission reservation intact.
func TestResumeBeforeExpiryRestoresSenders(t *testing.T) {
	h := newFaultHarness(t, Options{Grace: 10 * time.Second})
	h.connectAndPlay(t)
	reserved := h.srv.Admission().Reserved()
	h.sendReq(3, protocol.MsgSuspend, protocol.Suspend{})
	var sr protocol.SuspendResult
	h.lastReply(t, protocol.MsgSuspendResult, &sr)
	if !sr.OK || sr.ResumeToken == "" {
		t.Fatalf("suspend = %+v", sr)
	}
	// The user returns from a different address within the grace window.
	const cl2 = netsim.Addr("fake2:6000")
	h.net.Send(netsim.Packet{
		From: cl2, To: netsim.MakeAddr("srv", ControlPort),
		Payload: protocol.MustEncodeReq(protocol.MsgConnect, 4,
			protocol.Connect{User: "u", ResumeToken: sr.ResumeToken}),
		Reliable: true,
	})
	h.clk.RunFor(time.Second)
	sess, unlock := h.srv.lockedSession(cl2)
	if sess == nil || sess.suspended {
		unlock()
		t.Fatalf("session not reattached to %s", cl2)
	}
	if len(sess.senders) == 0 {
		unlock()
		t.Fatal("no senders survived the suspend/resume cycle")
	}
	snds := sess.senders
	unlock()
	for id, snd := range snds {
		if snd.isPaused() {
			t.Fatalf("sender %s still paused after resume", id)
		}
	}
	if r := h.srv.Admission().Reserved(); r != reserved {
		t.Fatalf("reserved changed across suspend/resume: %v → %v", reserved, r)
	}
	// The old grace timer must not fire later and kill the resumed session.
	h.clk.RunFor(15 * time.Second)
	if n := h.srv.Sessions(); n != 1 {
		t.Fatalf("sessions after resumed run = %d, want 1", n)
	}
}

// A client that heartbeats and then goes silent is auto-suspended by the
// liveness sweep, and the normal grace expiry closes it afterwards.
func TestLivenessSweepAutoSuspendsSilentClient(t *testing.T) {
	h := newFaultHarness(t, Options{
		Grace: 5 * time.Second, HeartbeatEvery: time.Second, LivenessMisses: 3,
	})
	h.connectAndPlay(t)
	h.net.Send(netsim.Packet{
		From: fakeClient, To: netsim.MakeAddr("srv", ControlPort),
		Payload:  protocol.MustEncode(protocol.MsgHeartbeat, protocol.Heartbeat{}),
		Reliable: true,
	})
	h.clk.RunFor(time.Second)
	var ack protocol.HeartbeatAck
	h.lastReply(t, protocol.MsgHeartbeatAck, &ack)
	if !ack.OK {
		t.Fatalf("heartbeat ack = %+v", ack)
	}
	// Silence: past the miss budget the sweep suspends the session.
	h.clk.RunFor(5 * time.Second)
	sess, unlock := h.srv.lockedSession(fakeClient)
	suspended := sess != nil && sess.suspended
	unlock()
	if !suspended {
		t.Fatal("silent session not auto-suspended")
	}
	if got := h.scope.Counter("server_sessions_suspended_liveness").Value(); got != 1 {
		t.Fatalf("liveness suspend counter = %d, want 1", got)
	}
	// Grace then expires and the session closes fully.
	h.clk.RunFor(6 * time.Second)
	if n := h.srv.Sessions(); n != 0 {
		t.Fatalf("sessions after grace = %d, want 0", n)
	}
	if r := h.srv.Admission().Reserved(); r != 0 {
		t.Fatalf("reserved after grace = %v, want 0", r)
	}
}

// A lost reply must be counted and traced, not silently ignored.
func TestReplySendFailureCounted(t *testing.T) {
	h := newFaultHarness(t, Options{})
	h.net.DropNext("srv", "fake", 1)
	h.sendReq(1, protocol.MsgConnect, protocol.Connect{User: "u", Password: "p"})
	if got := h.scope.Counter("server_reply_send_failures").Value(); got != 1 {
		t.Fatalf("send-failure counter = %d, want 1", got)
	}
	found := false
	for _, e := range h.scope.Trace().Events() {
		if e.Kind == obs.EvSendFailure {
			found = true
		}
	}
	if !found {
		t.Fatal("no EvSendFailure trace event")
	}
}

// A storm of rejected connects (bad credentials, each from a distinct
// address with a fresh request ID) must not grow the dedup map without
// bound: rings of clients that never obtained a session are TTL-swept,
// while a connected client's ring survives.
func TestRejectStormDoesNotLeakDedupRings(t *testing.T) {
	h := newFaultHarness(t, Options{})
	h.connectAndPlay(t)
	const storm = 50
	for i := 0; i < storm; i++ {
		h.net.Send(netsim.Packet{
			From: netsim.MakeAddr(fmt.Sprintf("evil%d", i), 6000),
			To:   netsim.MakeAddr("srv", ControlPort),
			Payload: protocol.MustEncodeReq(protocol.MsgConnect, uint32(100+i),
				protocol.Connect{User: "u", Password: "wrong"}),
			Reliable: true,
		})
	}
	h.clk.RunFor(time.Second)
	grown := h.srv.dedupLen()
	if grown < storm {
		t.Fatalf("dedup rings after storm = %d, want ≥ %d", grown, storm)
	}
	// Past the TTL the sweep reaps every sessionless ring.
	h.clk.RunFor(3 * dedupTTL)
	left := h.srv.dedupLen()
	clientSurvives := h.srv.dedupHas(fakeClient)
	if left != 1 || !clientSurvives {
		t.Fatalf("dedup rings after sweep = %d (client survives=%v), want only the live client's",
			left, clientSurvives)
	}
	// The live session must still dedup retransmissions after the sweep.
	if n := h.srv.Sessions(); n != 1 {
		t.Fatalf("sessions = %d, want 1", n)
	}
}

// Fire-and-forget media ops arriving for a suspended session must be
// ignored: a delayed resume or reload must not restart senders the suspend
// machinery paused, or the grace/resume bookkeeping would desynchronize from
// what is actually on the wire.
func TestMediaOpsIgnoredWhileSuspended(t *testing.T) {
	h := newFaultHarness(t, Options{Grace: time.Minute})
	h.connectAndPlay(t)
	h.sendReq(3, protocol.MsgSuspend, protocol.Suspend{})
	var sr protocol.SuspendResult
	h.lastReply(t, protocol.MsgSuspendResult, &sr)
	if !sr.OK {
		t.Fatalf("suspend = %+v", sr)
	}
	// Delayed media ops from the suspended client's address.
	h.sendReq(0, protocol.MsgResume, protocol.MediaOp{})
	h.sendReq(0, protocol.MsgReload, protocol.MediaOp{})
	sess, unlock := h.srv.lockedSession(fakeClient)
	if sess == nil || !sess.suspended {
		unlock()
		t.Fatal("session no longer suspended")
	}
	snds := sess.senders
	unlock()
	for id, snd := range snds {
		if !snd.isPaused() {
			t.Fatalf("sender %s woken by a media op while suspended", id)
		}
	}
	// The legitimate resume path still works afterwards.
	h.sendReq(4, protocol.MsgConnect, protocol.Connect{ResumeToken: sr.ResumeToken})
	var cr protocol.ConnectResult
	h.lastReply(t, protocol.MsgConnectResult, &cr)
	if !cr.OK || !cr.Resumed {
		t.Fatalf("resume = %+v", cr)
	}
}

// Reload must restart per-document statistics from zero: the sender's own
// counters and the RTP-layer totals carried in RTCP sender reports describe
// the new playback, not the sum of every playback since the doc was opened.
func TestReloadResetsSenderCounters(t *testing.T) {
	h := newFaultHarness(t, Options{})
	h.connectAndPlay(t)
	h.clk.RunFor(3 * time.Second)
	sess, unlock := h.srv.lockedSession(fakeClient)
	snds := sess.senders
	unlock()
	var busy *sender
	for _, snd := range snds {
		if snd.stats().frames > 0 {
			busy = snd
			break
		}
	}
	if busy == nil {
		t.Fatal("no sender emitted anything before the reload")
	}
	busy.mu.Lock()
	rtpBefore := busy.rtpS.PacketCount()
	busy.mu.Unlock()
	if rtpBefore == 0 {
		t.Fatal("RTP layer recorded no packets before the reload")
	}
	// Inject the reload synchronously: no virtual time passes, so any
	// non-zero counter afterwards is carried-over history.
	h.srv.handle(makeCtrlPacket(protocol.MsgReload, protocol.MediaOp{}))
	st := busy.stats()
	if st.frames != 0 || st.packets != 0 || st.bytes != 0 || st.skipped != 0 {
		t.Fatalf("sender counters after reload = %+v, want all zero", st)
	}
	busy.mu.Lock()
	rtpAfter := busy.rtpS.PacketCount()
	busy.mu.Unlock()
	if rtpAfter != 0 {
		t.Fatalf("RTP packet count after reload = %d, want 0", rtpAfter)
	}
	// Replay proceeds: the stream re-emits from its first frame.
	h.clk.RunFor(2 * time.Second)
	if busy.stats().frames == 0 {
		t.Fatal("no frames emitted after reload")
	}
}

// A retransmitted request (same request ID) must not re-run its handler:
// the cached reply is re-sent instead.
func TestDuplicateRequestDeduped(t *testing.T) {
	h := newFaultHarness(t, Options{})
	frame := protocol.MustEncodeReq(protocol.MsgConnect, 7,
		protocol.Connect{User: "u", Password: "p", PeakRate: 1_000_000})
	for i := 0; i < 2; i++ {
		h.net.Send(netsim.Packet{
			From: fakeClient, To: netsim.MakeAddr("srv", ControlPort),
			Payload: frame, Reliable: true,
		})
		h.clk.RunFor(time.Second)
	}
	if n := h.srv.Sessions(); n != 1 {
		t.Fatalf("sessions = %d, want 1 (duplicate connect re-admitted)", n)
	}
	if got := h.scope.Counter("server_ctrl_dedup_hits").Value(); got != 1 {
		t.Fatalf("dedup counter = %d, want 1", got)
	}
	var ids []string
	for _, r := range h.replies {
		if r.mt == protocol.MsgConnectResult {
			var cr protocol.ConnectResult
			if err := protocol.DecodeBody(r.body, &cr); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, cr.SessionID)
		}
	}
	if len(ids) != 2 || ids[0] != ids[1] {
		t.Fatalf("connect replies = %v, want the cached reply re-sent with the same session", ids)
	}
}

package server

import (
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/qos"
	"repro/internal/rtp"
	"repro/internal/scenario"
)

// pktPool recycles the packet assembly buffers of every sender: RTP header,
// frame header and payload fragment are appended into one pooled buffer per
// packet. Per the netsim.Net ownership rule, Send borrows the buffer only
// for the duration of the call, so it goes straight back to the pool after
// each Send returns.
var pktPool buffer.Pool

// sender is one media server's per-stream transmission process: it paces the
// stream's frames according to the flow scenario, encodes each frame at the
// quality level currently set by the session's QoS manager (the media stream
// quality converter in action), fragments it to MTU-sized RTP packets and
// ships them over the appropriate transport (RTP/UDP for time-sensitive
// streams, the reliable path for stills).
//
// Concurrency: the sender is the isolated hot loop of the data plane. All of
// its mutable state sits behind its own small mutex, and the per-frame emit
// path — QoS level snapshot, frame encode, fragmentation, transport send —
// runs entirely under that lock, never under a control-plane shard lock.
// Control operations (pause/resume/restart/disable/stop) take the same
// per-sender lock, so one session's media pacing neither serializes with
// other sessions' streams nor with the control plane.
//
// Lock-order rules (see also the shard.go header for the full hierarchy):
// shard.mu → sn.mu. Control handlers may call sender methods while holding
// the owning session's shard lock, but no sender method ever acquires a
// shard lock — sn.mu is a leaf. A sender that needs server state (e.g. the
// obs scope, the transport) reads only immutable fields captured at
// construction.
type sender struct {
	// Immutable after construction.
	srv    *Server
	qos    *qos.Manager
	stream *scenario.Stream
	src    media.Source
	cached media.CachedPayloadSource // non-nil when src caches frame bodies
	flow   *scenario.FlowSpec
	from   netsim.Addr // precomputed source address (MakeAddr formats)
	to     netsim.Addr
	emitFn func() // the emit method value, bound once so re-arms don't allocate

	// mu guards everything below. It is the only lock the per-frame emit
	// path takes.
	mu       sync.Mutex
	rtpS     *rtp.Sender
	scratch  []byte    // reusable payload synthesis buffer, grows to the max frame size
	origin   time.Time // flow time zero
	nextIdx  int
	timer    *clock.Timer
	paused   bool
	pausedAt time.Time
	disabled bool
	finished bool

	// counters (reset on restart so per-document stats and RTCP sender
	// reports describe the current playback, not cumulative history)
	framesSent  int
	packetsSent int
	bytesSent   int64
	skipped     int // frames withheld while the stream was cut off
}

func newSender(srv *Server, mgr *qos.Manager, flow *scenario.FlowSpec, src media.Source, ssrc uint32, to netsim.Addr, origin time.Time) *sender {
	sn := &sender{
		srv:    srv,
		qos:    mgr,
		stream: flow.Stream,
		src:    src,
		rtpS:   rtp.NewSender(ssrc, src.PayloadType(0), 0),
		flow:   flow,
		from:   netsim.MakeAddr(srv.Name, mediaPort),
		to:     to,
		origin: origin,
	}
	sn.cached, _ = src.(media.CachedPayloadSource)
	sn.emitFn = sn.emit
	return sn
}

// reliable reports whether this stream uses the lossless in-order path.
func (sn *sender) reliable() bool { return !sn.stream.Type.TimeSensitive() }

// sendAtFor returns the wall send instant of frame i. Caller holds sn.mu.
func (sn *sender) sendAtFor(i int) time.Time {
	pts := time.Duration(i) * sn.src.FrameInterval()
	return sn.origin.Add(sn.flow.SendAt + pts)
}

// start arms the first frame.
func (sn *sender) start() {
	sn.mu.Lock()
	sn.armLocked()
	sn.mu.Unlock()
}

func (sn *sender) armLocked() {
	if sn.finished || sn.paused || sn.disabled {
		return
	}
	d := sn.sendAtFor(sn.nextIdx).Sub(sn.srv.clk.Now())
	if d < 0 {
		d = 0
	}
	// Reuse one timer across the stream's whole life: re-arming with Reset
	// is allocation-free on both clock implementations, and per-frame
	// re-arm is the steady state of the pacing loop.
	if sn.timer == nil {
		sn.timer = sn.srv.clk.AfterFunc(d, sn.emitFn)
	} else {
		sn.timer.Reset(d)
	}
}

// emit transmits one frame and schedules the next. It runs on the pacing
// timer and holds only the sender's own lock.
func (sn *sender) emit() {
	sn.mu.Lock()
	if sn.emitFrameLocked() {
		sn.armLocked()
	}
	sn.mu.Unlock()
}

// emitFrameLocked encodes and transmits the frame at the pacing cursor (or
// accounts a withheld one) and advances the cursor. It reports whether
// pacing should continue. Caller holds sn.mu; the method touches no
// server-wide state: the QoS level comes through the manager's own
// fine-grained lock and the packets go straight to the transport.
func (sn *sender) emitFrameLocked() bool {
	if sn.finished || sn.paused || sn.disabled {
		return false
	}
	i := sn.nextIdx
	pts := time.Duration(i) * sn.src.FrameInterval()
	// End of stream?
	if sn.stream.Duration > 0 && pts >= sn.stream.Duration {
		sn.finished = true
		return false
	}
	if !sn.stream.Type.TimeSensitive() && i > 0 {
		// Stills are one-shot.
		sn.finished = true
		return false
	}
	level, stopped := sn.qos.Level(sn.stream.ID)
	sn.nextIdx++
	if stopped {
		// Cut off by the long-term mechanism: withhold the frame but
		// keep pacing so a restore resumes cleanly.
		sn.skipped++
		return true
	}
	// Sampled frame span, hop 1 (emit→wire): wall-clock service time from
	// here to the last fragment handed to the transport. The 1-in-N decision
	// keys on the frame index the wire header carries, so the client samples
	// the same frames for the downstream hops. Allocation-free: two wall
	// stamps and an atomic histogram observe.
	spanned := sn.srv.spans.Sampled(uint32(i))
	var spanT0 time.Time
	if spanned {
		spanT0 = time.Now()
	}

	frame := sn.src.FrameAt(i, level)
	sn.rtpS.PayloadType = sn.src.PayloadType(level)

	// Frame body: a cached still body when the source keeps one, otherwise
	// synthesized into the sender's reusable scratch (which grows once to
	// the stream's largest frame and is then allocation-free).
	payload := []byte(nil)
	if sn.cached != nil {
		payload = sn.cached.CachedPayload(i, frame.Level)
	}
	if payload == nil {
		sn.scratch = media.AppendPayload(sn.scratch[:0], sn.stream.ID, i, frame.Size)
		payload = sn.scratch
	}

	// Single-pass packet assembly: RTP header, frame header and payload
	// fragment are appended into one pooled buffer, handed to the transport
	// (which, per the netsim.Net ownership rule, borrows it only for the
	// duration of Send) and immediately recycled.
	fragCount := media.FragmentCount(frame.Size)
	reliable := sn.reliable()
	for fi := 0; fi < fragCount; fi++ {
		off, fsize := media.FragmentSpan(frame.Size, fi)
		pb := pktPool.Get(rtp.HeaderSize + media.FrameHeaderSize + fsize)
		buf := sn.rtpS.AppendNext(pb.B[:0], frame.PTS, fi == fragCount-1, media.FrameHeaderSize+fsize)
		hdr := media.FrameHeader{
			Index:     uint32(i),
			Level:     uint8(frame.Level),
			Kind:      frame.Kind,
			Frag:      uint16(fi),
			FragCount: uint16(fragCount),
			FrameSize: uint32(frame.Size),
		}
		buf = hdr.AppendTo(buf)
		buf = append(buf, payload[off:off+fsize]...)
		pb.B = buf
		sn.packetsSent++
		sn.bytesSent += int64(media.FrameHeaderSize + fsize)
		sn.srv.net.Send(netsim.Packet{
			From:     sn.from,
			To:       sn.to,
			Payload:  buf,
			Reliable: reliable,
		})
		pktPool.Put(pb)
	}
	sn.framesSent++
	sn.srv.mFrames.Inc()
	sn.srv.mPackets.Add(int64(fragCount))
	sn.srv.mBytes.Add(int64(frame.Size))
	if spanned {
		sn.srv.spans.RecordEmit(sn.stream.ID, time.Since(spanT0))
	}
	return true
}

// pump emits up to n frames back-to-back, bypassing the pacing timer: the
// data-plane load harness's way of driving a sender at full rate from its
// own goroutine. It returns per-frame emit service times.
func (sn *sender) pump(n int) []time.Duration {
	times := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		sn.mu.Lock()
		more := sn.emitFrameLocked()
		sn.mu.Unlock()
		times = append(times, time.Since(t0))
		if !more {
			break
		}
	}
	return times
}

// pause stops pacing.
func (sn *sender) pause() {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if sn.paused || sn.finished {
		return
	}
	sn.paused = true
	sn.pausedAt = sn.srv.clk.Now()
	sn.stopTimerLocked()
}

// isPaused reports whether pacing is currently paused.
func (sn *sender) isPaused() bool {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.paused
}

// resume continues pacing, shifting the flow origin by the pause length so
// inter-frame spacing is preserved.
func (sn *sender) resume() {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if !sn.paused || sn.finished {
		return
	}
	sn.paused = false
	sn.origin = sn.origin.Add(sn.srv.clk.Now().Sub(sn.pausedAt))
	sn.armLocked()
}

// restart replays the stream from the beginning (reload). Counters — both
// the sender's own and the RTP-layer totals carried in RTCP sender reports —
// reset so per-document stats describe the new playback only.
func (sn *sender) restart(origin time.Time) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	sn.stopTimerLocked()
	sn.origin = origin
	sn.nextIdx = 0
	sn.finished = false
	sn.paused = false
	sn.framesSent, sn.packetsSent, sn.bytesSent, sn.skipped = 0, 0, 0, 0
	sn.rtpS = rtp.NewSender(sn.rtpS.SSRC, sn.src.PayloadType(0), 0)
	sn.armLocked()
}

// disable stops the stream permanently (user disabled this media).
func (sn *sender) disable() {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	sn.disabled = true
	sn.stopTimerLocked()
}

// stop tears the sender down.
func (sn *sender) stop() {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	sn.finished = true
	sn.stopTimerLocked()
}

func (sn *sender) stopTimerLocked() {
	if sn.timer != nil {
		sn.timer.Stop()
		sn.timer = nil
	}
}

// report builds the sender's RTCP SR, or nil when the sender is inactive.
func (sn *sender) report(now time.Time, mediaTime time.Duration) *rtp.SenderReport {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if sn.finished || sn.disabled || sn.rtpS.PacketCount() == 0 {
		return nil
	}
	return sn.rtpS.Report(now, mediaTime)
}

// nominalRate returns the stream's current reservation-relevant rate: zero
// when the stream is cut off, finished or disabled, its per-level codec rate
// otherwise.
func (sn *sender) nominalRate() float64 {
	level, stopped := sn.qos.Level(sn.stream.ID)
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if stopped || sn.finished || sn.disabled {
		return 0
	}
	return sn.src.Bitrate(level)
}

// senderStats is a snapshot of one sender's transmission counters.
type senderStats struct {
	frames  int
	packets int
	bytes   int64
	skipped int
}

// stats snapshots the counters race-cleanly.
func (sn *sender) stats() senderStats {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return senderStats{
		frames:  sn.framesSent,
		packets: sn.packetsSent,
		bytes:   sn.bytesSent,
		skipped: sn.skipped,
	}
}

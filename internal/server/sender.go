package server

import (
	"time"

	"repro/internal/clock"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/rtp"
	"repro/internal/scenario"
)

// sender is one media server's per-stream transmission process: it paces the
// stream's frames according to the flow scenario, encodes each frame at the
// quality level currently set by the session's QoS manager (the media stream
// quality converter in action), fragments it to MTU-sized RTP packets and
// ships them over the appropriate transport (RTP/UDP for time-sensitive
// streams, the reliable path for stills).
type sender struct {
	srv    *Server
	sess   *session
	stream *scenario.Stream
	src    media.Source
	rtpS   *rtp.Sender
	flow   *scenario.FlowSpec
	to     netsim.Addr

	origin   time.Time // flow time zero
	nextIdx  int
	timer    *clock.Timer
	paused   bool
	pausedAt time.Time
	disabled bool
	finished bool

	// counters
	framesSent  int
	packetsSent int
	bytesSent   int64
	skipped     int // frames withheld while the stream was cut off
}

func newSender(srv *Server, sess *session, flow *scenario.FlowSpec, src media.Source, ssrc uint32, to netsim.Addr, origin time.Time) *sender {
	return &sender{
		srv:    srv,
		sess:   sess,
		stream: flow.Stream,
		src:    src,
		rtpS:   rtp.NewSender(ssrc, src.PayloadType(0), 0),
		flow:   flow,
		to:     to,
		origin: origin,
	}
}

// reliable reports whether this stream uses the lossless in-order path.
func (sn *sender) reliable() bool { return !sn.stream.Type.TimeSensitive() }

// sendAtFor returns the wall send instant of frame i.
func (sn *sender) sendAtFor(i int) time.Time {
	pts := time.Duration(i) * sn.src.FrameInterval()
	return sn.origin.Add(sn.flow.SendAt + pts)
}

// start arms the first frame. Caller holds srv.mu.
func (sn *sender) start() {
	sn.armLocked()
}

func (sn *sender) armLocked() {
	if sn.finished || sn.paused || sn.disabled {
		return
	}
	d := sn.sendAtFor(sn.nextIdx).Sub(sn.srv.clk.Now())
	if d < 0 {
		d = 0
	}
	sn.timer = sn.srv.clk.AfterFunc(d, sn.emit)
}

// emit transmits one frame and schedules the next.
func (sn *sender) emit() {
	sn.srv.mu.Lock()
	if sn.finished || sn.paused || sn.disabled {
		sn.srv.mu.Unlock()
		return
	}
	i := sn.nextIdx
	pts := time.Duration(i) * sn.src.FrameInterval()
	// End of stream?
	if sn.stream.Duration > 0 && pts >= sn.stream.Duration {
		sn.finished = true
		sn.srv.mu.Unlock()
		return
	}
	if !sn.stream.Type.TimeSensitive() && i > 0 {
		// Stills are one-shot.
		sn.finished = true
		sn.srv.mu.Unlock()
		return
	}
	level, stopped := sn.sess.qosMgr.Level(sn.stream.ID)
	sn.nextIdx++
	if stopped {
		// Cut off by the long-term mechanism: withhold the frame but
		// keep pacing so a restore resumes cleanly.
		sn.skipped++
		sn.armLocked()
		sn.srv.mu.Unlock()
		return
	}
	frame := sn.src.FrameAt(i, level)
	sn.rtpS.PayloadType = sn.src.PayloadType(level)
	frags := media.Fragments(frame.Size)
	payload := media.Payload(sn.stream.ID, i, frame.Size)
	off := 0
	for fi, fsize := range frags {
		hdr := media.FrameHeader{
			Index:     uint32(i),
			Level:     uint8(frame.Level),
			Kind:      frame.Kind,
			Frag:      uint16(fi),
			FragCount: uint16(len(frags)),
			FrameSize: uint16(frame.Size),
		}
		data := hdr.Marshal(payload[off : off+fsize])
		off += fsize
		pkt := sn.rtpS.Next(frame.PTS, data, fi == len(frags)-1)
		sn.packetsSent++
		sn.bytesSent += int64(len(data))
		sn.srv.net.Send(netsim.Packet{
			From:     netsim.MakeAddr(sn.srv.Name, mediaPort),
			To:       sn.to,
			Payload:  pkt.Marshal(),
			Reliable: sn.reliable(),
		})
	}
	sn.framesSent++
	sn.armLocked()
	sn.srv.mu.Unlock()
}

// pause stops pacing. Caller holds srv.mu.
func (sn *sender) pause() {
	if sn.paused || sn.finished {
		return
	}
	sn.paused = true
	sn.pausedAt = sn.srv.clk.Now()
	if sn.timer != nil {
		sn.timer.Stop()
		sn.timer = nil
	}
}

// resume continues pacing, shifting the flow origin by the pause length so
// inter-frame spacing is preserved. Caller holds srv.mu.
func (sn *sender) resume() {
	if !sn.paused || sn.finished {
		return
	}
	sn.paused = false
	sn.origin = sn.origin.Add(sn.srv.clk.Now().Sub(sn.pausedAt))
	sn.armLocked()
}

// restart replays the stream from the beginning (reload). Caller holds
// srv.mu.
func (sn *sender) restart(origin time.Time) {
	if sn.timer != nil {
		sn.timer.Stop()
		sn.timer = nil
	}
	sn.origin = origin
	sn.nextIdx = 0
	sn.finished = false
	sn.paused = false
	sn.armLocked()
}

// disable stops the stream permanently (user disabled this media). Caller
// holds srv.mu.
func (sn *sender) disable() {
	sn.disabled = true
	if sn.timer != nil {
		sn.timer.Stop()
		sn.timer = nil
	}
}

// stop tears the sender down. Caller holds srv.mu.
func (sn *sender) stop() {
	sn.finished = true
	if sn.timer != nil {
		sn.timer.Stop()
		sn.timer = nil
	}
}

package server

import (
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/qos"
	"repro/internal/rtp"
	"repro/internal/scenario"
)

// pktPool recycles the packet assembly buffers of every sender: RTP header,
// frame header and payload fragment are appended into one pooled buffer per
// packet. Per the netsim.Net ownership rule, Send borrows the buffer only
// for the duration of the call, so it goes straight back to the pool after
// each Send returns.
var pktPool buffer.Pool

// sender is one media server's per-stream transmission process: it paces the
// stream's frames according to the flow scenario, encodes each frame at the
// quality level currently set by the session's QoS manager (the media stream
// quality converter in action), fragments it to MTU-sized RTP packets and
// ships them over the appropriate transport (RTP/UDP for time-sensitive
// streams, the reliable path for stills).
//
// Concurrency: the sender is the isolated hot loop of the data plane. All of
// its mutable state sits behind its own small mutex, and the per-frame emit
// path — QoS level snapshot, frame encode, fragmentation, transport send —
// runs entirely under that lock, never under a control-plane shard lock.
// Control operations (pause/resume/restart/disable/stop) take the same
// per-sender lock, so one session's media pacing neither serializes with
// other sessions' streams nor with the control plane.
//
// Lock-order rules (see also the shard.go header for the full hierarchy):
// shard.mu → sn.mu → flowRegistry.mu → sharedFlow.mu. Control handlers may
// call sender methods while holding the owning session's shard lock, but no
// sender method ever acquires a shard lock. Below sn.mu sit only the
// shared-flow locks (attach/detach bookkeeping); the sender's own emit path
// takes nothing past sn.mu, and a shared flow's emit path takes only the
// flow's mutex. A sender that needs server state (e.g. the obs scope, the
// transport) reads only immutable fields captured at construction.
type sender struct {
	// Immutable after construction.
	srv    *Server
	qos    *qos.Manager
	stream *scenario.Stream
	src    media.Source
	cached media.CachedPayloadSource // non-nil when src caches frame bodies
	flow   *scenario.FlowSpec
	from   netsim.Addr // precomputed source address (MakeAddr formats)
	to     netsim.Addr
	emitFn func() // the emit method value, bound once so re-arms don't allocate

	// mu guards everything below. It is the only lock the per-frame emit
	// path takes.
	mu       sync.Mutex
	rtpS     *rtp.Sender
	scratch  []byte    // reusable payload synthesis buffer, grows to the max frame size
	origin   time.Time // flow time zero
	nextIdx  int
	timer    *clock.Timer
	paused   bool
	pausedAt time.Time
	disabled bool
	finished bool
	// parked marks a pause applied by the suspend machinery (park), as
	// opposed to one the user requested: only parked senders wake on
	// reattach, so a user pause survives suspend→resume intact.
	parked bool
	// shared, when non-nil, is the fan-out flow this sender subscribes to:
	// pacing and emission belong to the flow, and every local divergence
	// (pause/reload/disable/stop/grade change/suspend) detaches first. See
	// sharedflow.go for the lock order (sn.mu → flowRegistry.mu → flow.mu).
	shared *sharedFlow

	// counters (reset on restart so per-document stats and RTCP sender
	// reports describe the current playback, not cumulative history)
	framesSent  int
	packetsSent int
	bytesSent   int64
	skipped     int // frames withheld while the stream was cut off
}

func newSender(srv *Server, mgr *qos.Manager, flow *scenario.FlowSpec, src media.Source, ssrc uint32, to netsim.Addr, origin time.Time) *sender {
	sn := &sender{
		srv:    srv,
		qos:    mgr,
		stream: flow.Stream,
		src:    src,
		rtpS:   rtp.NewSender(ssrc, src.PayloadType(0), 0),
		flow:   flow,
		from:   netsim.MakeAddr(srv.Name, mediaPort),
		to:     to,
		origin: origin,
	}
	sn.cached, _ = src.(media.CachedPayloadSource)
	sn.emitFn = sn.emit
	return sn
}

// reliable reports whether this stream uses the lossless in-order path.
func (sn *sender) reliable() bool { return !sn.stream.Type.TimeSensitive() }

// sendAtFor returns the wall send instant of frame i. Caller holds sn.mu.
func (sn *sender) sendAtFor(i int) time.Time {
	pts := time.Duration(i) * sn.src.FrameInterval()
	return sn.origin.Add(sn.flow.SendAt + pts)
}

// start arms the first frame.
func (sn *sender) start() {
	sn.mu.Lock()
	sn.armLocked()
	sn.mu.Unlock()
}

func (sn *sender) armLocked() {
	if sn.finished || sn.paused || sn.disabled || sn.shared != nil {
		return
	}
	d := sn.sendAtFor(sn.nextIdx).Sub(sn.srv.clk.Now())
	if d < 0 {
		d = 0
	}
	// Reuse one timer across the stream's whole life: re-arming with Reset
	// is allocation-free on both clock implementations, and per-frame
	// re-arm is the steady state of the pacing loop.
	if sn.timer == nil {
		sn.timer = sn.srv.clk.AfterFunc(d, sn.emitFn)
	} else {
		sn.timer.Reset(d)
	}
}

// emit transmits one frame and schedules the next. It runs on the pacing
// timer and holds only the sender's own lock.
func (sn *sender) emit() {
	sn.mu.Lock()
	if sn.emitFrameLocked() {
		sn.armLocked()
	}
	sn.mu.Unlock()
}

// emitFrameLocked encodes and transmits the frame at the pacing cursor (or
// accounts a withheld one) and advances the cursor. It reports whether
// pacing should continue. Caller holds sn.mu; the method touches no
// server-wide state: the QoS level comes through the manager's own
// fine-grained lock and the packets go straight to the transport.
func (sn *sender) emitFrameLocked() bool {
	if sn.finished || sn.paused || sn.disabled || sn.shared != nil {
		return false
	}
	i := sn.nextIdx
	pts := time.Duration(i) * sn.src.FrameInterval()
	// End of stream?
	if sn.stream.Duration > 0 && pts >= sn.stream.Duration {
		sn.finished = true
		return false
	}
	if !sn.stream.Type.TimeSensitive() && i > 0 {
		// Stills are one-shot.
		sn.finished = true
		return false
	}
	level, stopped := sn.qos.Level(sn.stream.ID)
	sn.nextIdx++
	if stopped {
		// Cut off by the long-term mechanism: withhold the frame but
		// keep pacing so a restore resumes cleanly.
		sn.skipped++
		return true
	}
	// Sampled frame span, hop 1 (emit→wire): wall-clock service time from
	// here to the last fragment handed to the transport. The 1-in-N decision
	// keys on the frame index the wire header carries, so the client samples
	// the same frames for the downstream hops. Allocation-free: two wall
	// stamps and an atomic histogram observe.
	spanned := sn.srv.spans.Sampled(uint32(i))
	var spanT0 time.Time
	if spanned {
		spanT0 = time.Now()
	}

	frame := sn.src.FrameAt(i, level)
	sn.rtpS.PayloadType = sn.src.PayloadType(level)

	// Frame body: a cached still body when the source keeps one, otherwise
	// synthesized into the sender's reusable scratch (which grows once to
	// the stream's largest frame and is then allocation-free).
	payload := []byte(nil)
	if sn.cached != nil {
		payload = sn.cached.CachedPayload(i, frame.Level)
	}
	if payload == nil {
		sn.scratch = media.AppendPayload(sn.scratch[:0], sn.stream.ID, i, frame.Size)
		payload = sn.scratch
	}

	// Single-pass packet assembly: RTP header, frame header and payload
	// fragment are appended into one pooled buffer, handed to the transport
	// (which, per the netsim.Net ownership rule, borrows it only for the
	// duration of Send) and immediately recycled.
	fragCount := media.FragmentCount(frame.Size)
	reliable := sn.reliable()
	for fi := 0; fi < fragCount; fi++ {
		off, fsize := media.FragmentSpan(frame.Size, fi)
		pb := pktPool.Get(rtp.HeaderSize + media.FrameHeaderSize + fsize)
		buf := sn.rtpS.AppendNext(pb.B[:0], frame.PTS, fi == fragCount-1, media.FrameHeaderSize+fsize)
		hdr := media.FrameHeader{
			Index:     uint32(i),
			Level:     uint8(frame.Level),
			Kind:      frame.Kind,
			Frag:      uint16(fi),
			FragCount: uint16(fragCount),
			FrameSize: uint32(frame.Size),
		}
		buf = hdr.AppendTo(buf)
		buf = append(buf, payload[off:off+fsize]...)
		pb.B = buf
		sn.packetsSent++
		sn.bytesSent += int64(media.FrameHeaderSize + fsize)
		sn.srv.net.Send(netsim.Packet{
			From:     sn.from,
			To:       sn.to,
			Payload:  buf,
			Reliable: reliable,
		})
		pktPool.Put(pb)
	}
	sn.framesSent++
	sn.srv.mFrames.Inc()
	sn.srv.mPackets.Add(int64(fragCount))
	sn.srv.mBytes.Add(int64(frame.Size))
	sn.srv.mDelivered.Inc()
	if spanned {
		sn.srv.spans.RecordEmit(sn.stream.ID, time.Since(spanT0))
	}
	return true
}

// pump emits up to n frames back-to-back, bypassing the pacing timer: the
// data-plane load harness's way of driving a sender at full rate from its
// own goroutine. It returns per-frame emit service times.
func (sn *sender) pump(n int) []time.Duration {
	times := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		sn.mu.Lock()
		more := sn.emitFrameLocked()
		sn.mu.Unlock()
		times = append(times, time.Since(t0))
		if !more {
			break
		}
	}
	return times
}

// pause stops pacing. A shared-flow subscriber first detaches (adopting the
// flow's cursor) so the other subscribers keep playing. No-op once disabled,
// like armLocked: a disabled sender must never record pausedAt or shift its
// origin again.
func (sn *sender) pause() {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if sn.paused || sn.finished || sn.disabled {
		return
	}
	sn.detachSharedLocked(true)
	if sn.finished {
		return
	}
	sn.paused = true
	sn.pausedAt = sn.srv.clk.Now()
	sn.stopTimerLocked()
}

// isPaused reports whether pacing is currently paused.
func (sn *sender) isPaused() bool {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.paused
}

// resume continues pacing, shifting the flow origin by the pause length so
// inter-frame spacing is preserved. No-op once disabled (the symmetric guard
// to pause: origin arithmetic must not drift on a dead sender).
func (sn *sender) resume() {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if !sn.paused || sn.finished || sn.disabled {
		return
	}
	sn.paused = false
	sn.parked = false
	sn.origin = sn.origin.Add(sn.srv.clk.Now().Sub(sn.pausedAt))
	sn.armLocked()
}

// park pauses the sender for a session suspend. Unlike pause it never
// clobbers a user-initiated pause: a sender the user already paused keeps
// its original pausedAt (so the eventual user Resume shifts the origin
// across the whole stillness), and only senders the suspend itself stopped
// are marked parked for unpark to wake on reattach.
func (sn *sender) park() {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if sn.finished || sn.disabled {
		return
	}
	sn.detachSharedLocked(true)
	if sn.finished || sn.paused {
		return
	}
	sn.paused = true
	sn.parked = true
	sn.pausedAt = sn.srv.clk.Now()
	sn.stopTimerLocked()
}

// unpark resumes only the senders park stopped. A sender the user paused
// before the suspend stays paused — its pause-shifted origin intact — until
// the user's own Resume.
func (sn *sender) unpark() {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if !sn.parked || !sn.paused || sn.finished || sn.disabled {
		return
	}
	sn.parked = false
	sn.paused = false
	sn.origin = sn.origin.Add(sn.srv.clk.Now().Sub(sn.pausedAt))
	sn.armLocked()
}

// restart replays the stream from the beginning (reload). Counters — both
// the sender's own and the RTP-layer totals carried in RTCP sender reports —
// reset so per-document stats describe the new playback only. The fresh RTP
// state is seeded with the payload type of the session's CURRENT quality
// level: a reload of a degraded session must keep advertising the degraded
// codec, not snap back to level 0 until the next renegotiation.
func (sn *sender) restart(origin time.Time) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	sn.detachSharedLocked(false)
	sn.stopTimerLocked()
	sn.origin = origin
	sn.nextIdx = 0
	sn.finished = false
	sn.paused = false
	sn.parked = false
	sn.framesSent, sn.packetsSent, sn.bytesSent, sn.skipped = 0, 0, 0, 0
	level, _ := sn.qos.Level(sn.stream.ID)
	sn.rtpS = rtp.NewSender(sn.rtpS.SSRC, sn.src.PayloadType(level), 0)
	sn.armLocked()
}

// disable stops the stream permanently (user disabled this media).
func (sn *sender) disable() {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	sn.detachSharedLocked(true)
	sn.disabled = true
	sn.stopTimerLocked()
}

// stop tears the sender down.
func (sn *sender) stop() {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	sn.detachSharedLocked(true)
	sn.finished = true
	sn.stopTimerLocked()
}

// attachShared subscribes the sender to a fan-out flow: pacing and emission
// belong to the flow until a detach. The sender's RTP state is reseeded with
// the flow's SSRC (which the announce advertises) so a later detach hands
// the client one uninterrupted stream.
func (sn *sender) attachShared(fl *sharedFlow) {
	sn.mu.Lock()
	sn.shared = fl
	sn.rtpS = rtp.NewSender(fl.ssrc, sn.src.PayloadType(fl.key.level), 0)
	sn.mu.Unlock()
}

// detachShared detaches a grade-diverged subscriber onto its private sender
// and resumes private pacing at the flow's cursor. No-op when not attached.
func (sn *sender) detachShared() {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if sn.shared == nil {
		return
	}
	sn.detachSharedLocked(true)
	sn.armLocked()
}

// isShared reports whether the sender currently rides a fan-out flow.
func (sn *sender) isShared() bool {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.shared != nil
}

// detachSharedLocked leaves the shared flow. With adopt, the sender takes
// over the flow's continuation — pacing cursor, forked RTP state (same SSRC,
// contiguous sequence numbers) and its share of the transmission counters —
// and computes the private origin that keeps the next frame on the flow's
// schedule. Without adopt the caller is about to reset everything anyway
// (restart). Caller holds sn.mu.
func (sn *sender) detachSharedLocked(adopt bool) {
	fl := sn.shared
	if fl == nil {
		return
	}
	sn.shared = nil
	cont := sn.srv.flows.detach(sn.srv, fl, sn)
	if !adopt {
		return
	}
	sn.nextIdx = cont.nextIdx
	sn.rtpS = cont.rtp
	sn.framesSent += cont.frames
	sn.packetsSent += cont.packets
	sn.bytesSent += cont.bytes
	if cont.finished {
		sn.finished = true
	}
	// Solve sendAtFor(nextIdx) == cont.nextAt for origin, so private pacing
	// continues exactly where the flow's schedule left off.
	pts := time.Duration(cont.nextIdx) * sn.src.FrameInterval()
	sn.origin = cont.nextAt.Add(-(sn.flow.SendAt + pts))
}

func (sn *sender) stopTimerLocked() {
	if sn.timer != nil {
		sn.timer.Stop()
		sn.timer = nil
	}
}

// report builds the sender's RTCP SR, or nil when the sender is inactive.
// A shared-flow subscriber relays the flow's SR: same SSRC, same counters —
// exactly the stream its client receives.
func (sn *sender) report(now time.Time, mediaTime time.Duration) *rtp.SenderReport {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if fl := sn.shared; fl != nil {
		return fl.report(now, mediaTime)
	}
	if sn.finished || sn.disabled || sn.rtpS.PacketCount() == 0 {
		return nil
	}
	return sn.rtpS.Report(now, mediaTime)
}

// nominalRate returns the stream's current reservation-relevant rate: zero
// when the stream is cut off, finished or disabled, its per-level codec rate
// otherwise.
func (sn *sender) nominalRate() float64 {
	level, stopped := sn.qos.Level(sn.stream.ID)
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if stopped || sn.finished || sn.disabled {
		return 0
	}
	return sn.src.Bitrate(level)
}

// senderStats is a snapshot of one sender's transmission counters.
type senderStats struct {
	frames  int
	packets int
	bytes   int64
	skipped int
}

// stats snapshots the counters race-cleanly. While attached to a shared
// flow the sender's own counters are frozen; the subscriber's share of the
// flow counters (frames fanned to it since attach, including any catch-up
// patch) is the session's view.
func (sn *sender) stats() senderStats {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if fl := sn.shared; fl != nil {
		return fl.subStats(sn)
	}
	return senderStats{
		frames:  sn.framesSent,
		packets: sn.packetsSent,
		bytes:   sn.bytesSent,
		skipped: sn.skipped,
	}
}

package server

import (
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/hml"
	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/qos"
)

func TestDatabasePutGetValidation(t *testing.T) {
	db := NewDatabase()
	if err := db.Put("fig2", hml.Figure2Source, "the figure 2 scenario"); err != nil {
		t.Fatal(err)
	}
	if err := db.Put("bad", "<broken", ""); err == nil {
		t.Fatal("bad doc accepted")
	}
	if err := db.Put("invalid", `<TITLE>t</TITLE><AU ID=x STARTIME=0 DURATION=1> </AU>`, ""); err == nil {
		t.Fatal("semantically invalid doc accepted")
	}
	d, ok := db.Get("fig2")
	if !ok || d.Scenario == nil || d.Doc.Title != "Figure 2 scenario" {
		t.Fatalf("get = %+v %v", d, ok)
	}
	if _, ok := db.Get("missing"); ok {
		t.Fatal("phantom doc")
	}
	if db.Len() != 1 {
		t.Fatalf("len = %d", db.Len())
	}
	if names := db.Names(); len(names) != 1 || names[0] != "fig2" {
		t.Fatalf("names = %v", names)
	}
}

func TestDatabaseTopics(t *testing.T) {
	db := NewDatabase()
	db.Put("b-doc", `<TITLE>Beta</TITLE><TEXT>x</TEXT>`, "second")
	db.Put("a-doc", `<TITLE>Alpha</TITLE><TEXT>y</TEXT>`, "first")
	tops := db.Topics("srv")
	if len(tops) != 2 || tops[0].Name != "a-doc" || tops[1].Name != "b-doc" {
		t.Fatalf("topics = %+v", tops)
	}
	if tops[0].Server != "srv" || tops[0].Title != "Alpha" {
		t.Fatalf("topic 0 = %+v", tops[0])
	}
}

func TestDatabaseSearchFields(t *testing.T) {
	db := NewDatabase()
	db.Put("t1", `<TITLE>Databases</TITLE><TEXT>intro</TEXT>`, "")
	db.Put("t2", `<TITLE>Other</TITLE><H1>Database systems</H1><TEXT>x</TEXT>`, "")
	db.Put("t3", `<TITLE>Misc</TITLE><TEXT>all about databases here</TEXT>`, "")
	db.Put("t4", `<TITLE>Nope</TITLE><TEXT>unrelated</TEXT>`, "database lab notes")
	db.Put("t5", `<TITLE>None</TITLE><TEXT>nothing</TEXT>`, "")
	hits := db.Search("database", "s")
	if len(hits) != 4 {
		t.Fatalf("hits = %+v", hits)
	}
	if len(db.Search("", "s")) != 0 {
		t.Fatal("empty token matched")
	}
	if len(db.Search("DATABASE", "s")) != 4 {
		t.Fatal("search not case-insensitive")
	}
}

// harness for direct server-level tests.
type harness struct {
	clk   *clock.Virtual
	net   *netsim.Network
	users *auth.DB
	srv   *Server
	// captured replies to the fake client address
	replies []struct {
		mt   protocol.MsgType
		body []byte
	}
}

const fakeClient = netsim.Addr("fake:6000")

func newHarness(t *testing.T, opts Options) *harness {
	t.Helper()
	clk := clock.NewSim()
	net := netsim.New(clk, 1)
	users := auth.NewDB()
	users.Subscribe(auth.User{Name: "u", Password: "p", Email: "u@x", Class: qos.Standard}, clk.Now())
	db := NewDatabase()
	db.Put("doc", hml.Figure2Source, "")
	h := &harness{clk: clk, net: net, users: users}
	srv, err := New("srv", clk, net, users, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	h.srv = srv
	net.Listen(fakeClient, func(p netsim.Packet) {
		mt, body, err := protocol.Decode(p.Payload)
		if err == nil {
			// body views p.Payload, which the simulator recycles after this
			// handler returns: keep a copy.
			h.replies = append(h.replies, struct {
				mt   protocol.MsgType
				body []byte
			}{mt, append([]byte(nil), body...)})
		}
	})
	return h
}

func (h *harness) send(t protocol.MsgType, body interface{}) {
	h.net.Send(netsim.Packet{
		From: fakeClient, To: netsim.MakeAddr("srv", ControlPort),
		Payload: protocol.MustEncode(t, body), Reliable: true,
	})
	h.clk.RunFor(time.Second)
}

func (h *harness) lastReply(t *testing.T, want protocol.MsgType, out interface{}) {
	t.Helper()
	for i := len(h.replies) - 1; i >= 0; i-- {
		if h.replies[i].mt == want {
			if err := protocol.DecodeBody(h.replies[i].body, out); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatalf("no %v reply among %d replies", want, len(h.replies))
}

func TestServerConnectAuthAndAdmission(t *testing.T) {
	h := newHarness(t, Options{})
	h.send(protocol.MsgConnect, protocol.Connect{User: "u", Password: "p"})
	var cr protocol.ConnectResult
	h.lastReply(t, protocol.MsgConnectResult, &cr)
	if !cr.OK || cr.SessionID == "" {
		t.Fatalf("connect = %+v", cr)
	}
	if h.srv.Sessions() != 1 {
		t.Fatal("no session")
	}
	// Unknown user → subscription prompt.
	h.send(protocol.MsgConnect, protocol.Connect{User: "ghost"})
	var cr2 protocol.ConnectResult
	h.lastReply(t, protocol.MsgConnectResult, &cr2)
	if cr2.OK || !cr2.NeedSubscription {
		t.Fatalf("ghost connect = %+v", cr2)
	}
	// Bad password → refusal without subscription prompt.
	h.send(protocol.MsgConnect, protocol.Connect{User: "u", Password: "wrong"})
	var cr3 protocol.ConnectResult
	h.lastReply(t, protocol.MsgConnectResult, &cr3)
	if cr3.OK || cr3.NeedSubscription {
		t.Fatalf("bad password = %+v", cr3)
	}
}

func TestServerDocRequestWithoutSession(t *testing.T) {
	h := newHarness(t, Options{})
	h.send(protocol.MsgDocRequest, protocol.DocRequest{Name: "doc"})
	var dr protocol.DocResponse
	h.lastReply(t, protocol.MsgDocResponse, &dr)
	if dr.OK {
		t.Fatal("doc served without a session")
	}
}

func TestServerDocResponseAnnouncesAllStreams(t *testing.T) {
	h := newHarness(t, Options{})
	h.send(protocol.MsgConnect, protocol.Connect{User: "u", Password: "p"})
	h.send(protocol.MsgDocRequest, protocol.DocRequest{Name: "doc", MediaPortBase: 9000, WindowMS: 300})
	var dr protocol.DocResponse
	h.lastReply(t, protocol.MsgDocResponse, &dr)
	if !dr.OK || dr.Name != "doc" {
		t.Fatalf("doc response = %+v", dr)
	}
	// Figure 2 has 5 timed streams.
	if len(dr.Streams) != 5 {
		t.Fatalf("streams = %d", len(dr.Streams))
	}
	ports := map[int]bool{}
	ssrcs := map[uint32]bool{}
	for _, s := range dr.Streams {
		if s.Port < 9000 || ports[s.Port] {
			t.Fatalf("bad/duplicate port %d", s.Port)
		}
		if ssrcs[s.SSRC] {
			t.Fatalf("duplicate ssrc %d", s.SSRC)
		}
		ports[s.Port] = true
		ssrcs[s.SSRC] = true
		if s.Levels < 1 || s.Rate <= 0 || s.FrameIntervalUS <= 0 {
			t.Fatalf("announce = %+v", s)
		}
	}
	if !hasRetrieval(h.users.AccessLog("u"), "doc") {
		t.Fatal("retrieval not logged")
	}
}

func hasRetrieval(log []auth.AccessEntry, doc string) bool {
	for _, e := range log {
		if e.Kind == auth.AccessRetrieve && e.Detail == doc {
			return true
		}
	}
	return false
}

func TestServerSuspendGraceExpiry(t *testing.T) {
	h := newHarness(t, Options{Grace: 5 * time.Second})
	h.send(protocol.MsgConnect, protocol.Connect{User: "u", Password: "p"})
	h.send(protocol.MsgSuspend, protocol.Suspend{})
	var sr protocol.SuspendResult
	h.lastReply(t, protocol.MsgSuspendResult, &sr)
	if !sr.OK || sr.ResumeToken == "" || sr.GraceSecs != 5 {
		t.Fatalf("suspend = %+v", sr)
	}
	if h.srv.Sessions() != 1 {
		t.Fatal("session dropped on suspend")
	}
	h.clk.RunFor(6 * time.Second)
	if h.srv.Sessions() != 0 {
		t.Fatal("session survived grace expiry")
	}
	var em protocol.ErrorMsg
	h.lastReply(t, protocol.MsgError, &em)
	if em.Msg == "" {
		t.Fatal("client not informed of expiry")
	}
	// Resuming with the stale token fails.
	h.send(protocol.MsgConnect, protocol.Connect{ResumeToken: sr.ResumeToken})
	var cr protocol.ConnectResult
	h.lastReply(t, protocol.MsgConnectResult, &cr)
	if cr.OK {
		t.Fatal("stale token accepted")
	}
}

func TestServerResumeWithinGrace(t *testing.T) {
	h := newHarness(t, Options{Grace: 30 * time.Second})
	h.send(protocol.MsgConnect, protocol.Connect{User: "u", Password: "p"})
	h.send(protocol.MsgSuspend, protocol.Suspend{})
	var sr protocol.SuspendResult
	h.lastReply(t, protocol.MsgSuspendResult, &sr)
	h.clk.RunFor(10 * time.Second)
	h.send(protocol.MsgConnect, protocol.Connect{ResumeToken: sr.ResumeToken})
	var cr protocol.ConnectResult
	h.lastReply(t, protocol.MsgConnectResult, &cr)
	if !cr.OK {
		t.Fatalf("resume failed: %+v", cr)
	}
	if h.srv.Sessions() != 1 {
		t.Fatal("session lost")
	}
	// Admission was NOT consulted a second time: one reservation only.
	if adm, _, _ := h.srv.Admission().Counts(qos.Standard); adm != 1 {
		t.Fatalf("admissions = %d", adm)
	}
}

func TestServerDisconnectChargesAndReleases(t *testing.T) {
	h := newHarness(t, Options{})
	h.send(protocol.MsgConnect, protocol.Connect{User: "u", Password: "p"})
	reserved := h.srv.Admission().Reserved()
	if reserved <= 0 {
		t.Fatal("nothing reserved")
	}
	h.clk.RunFor(10 * time.Second)
	h.send(protocol.MsgDisconnect, protocol.Disconnect{})
	if h.srv.Admission().Reserved() != 0 {
		t.Fatal("reservation not released")
	}
	if h.users.Balance("u") <= 0 {
		t.Fatal("no charge")
	}
	if h.srv.Sessions() != 0 {
		t.Fatal("session lingers")
	}
}

func TestServerAnnotateLogged(t *testing.T) {
	h := newHarness(t, Options{})
	h.send(protocol.MsgConnect, protocol.Connect{User: "u", Password: "p"})
	h.send(protocol.MsgDocRequest, protocol.DocRequest{Name: "doc"})
	h.send(protocol.MsgAnnotate, protocol.Annotate{Text: "great slide"})
	found := false
	for _, e := range h.users.AccessLog("u") {
		if e.Kind == auth.AccessRetrieve && e.Detail == "annotate doc: great slide" {
			found = true
		}
	}
	if !found {
		t.Fatal("annotation not logged")
	}
}

func TestServerMalformedPacketsIgnored(t *testing.T) {
	h := newHarness(t, Options{})
	h.net.Send(netsim.Packet{From: fakeClient, To: netsim.MakeAddr("srv", ControlPort),
		Payload: []byte{}, Reliable: true})
	h.net.Send(netsim.Packet{From: fakeClient, To: netsim.MakeAddr("srv", ControlPort),
		Payload: []byte{byte(protocol.MsgConnect), '{', 'x'}, Reliable: true})
	h.clk.RunFor(time.Second)
	if h.srv.Sessions() != 0 {
		t.Fatal("session from garbage")
	}
}

func TestQoSManagerUnknownClient(t *testing.T) {
	h := newHarness(t, Options{})
	if h.srv.QoSManager(netsim.Addr("nobody:1")) != nil {
		t.Fatal("phantom manager")
	}
}

// Cluster federation support on the server side: the placement directory
// the server consults for per-document replica sets and peer load, the
// load-aware admission redirect, and the signed cross-server handoff it
// issues when a requested document is homed elsewhere. The server works
// unchanged without a Directory — peersForDoc degrades to the static peer
// list and the watermark/handoff paths stay dormant.
package server

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// Directory is the server's view of the cluster: which servers hold a
// document, and how loaded its peers are. internal/cluster implements it
// live over sibling servers' admission state; a static Placement implements
// the replica half for the hermesd binary.
type Directory interface {
	// Replicas returns the servers holding doc (possibly including the
	// asking server), primary first. Empty or nil means the document is
	// unknown to the directory.
	Replicas(doc string) []string
	// PeerLoad returns the peer's admission utilization (reserved/capacity)
	// when known. ok=false means the load is not observable — redirects
	// then fall back to placement order.
	PeerLoad(host string) (float64, bool)
}

// Placement is a static document→replica map. It implements Directory with
// unobservable peer load, which is what a standalone hermesd knows: where
// documents live, but not how busy its peers are.
type Placement map[string][]string

// Replicas implements Directory.
func (p Placement) Replicas(doc string) []string { return p[doc] }

// PeerLoad implements Directory; static placement carries no load signal.
func (p Placement) PeerLoad(string) (float64, bool) { return 0, false }

// ParsePlacement parses the -placement flag syntax:
// "doc=srvA+srvB,doc2=srvB". Replica order is preserved (primary first).
func ParsePlacement(s string) (Placement, error) {
	p := Placement{}
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		doc, reps, ok := strings.Cut(ent, "=")
		doc = strings.TrimSpace(doc)
		if !ok || doc == "" {
			return nil, fmt.Errorf("placement: bad entry %q (want doc=srvA+srvB)", ent)
		}
		var hosts []string
		for _, h := range strings.Split(reps, "+") {
			if h = strings.TrimSpace(h); h != "" {
				hosts = append(hosts, h)
			}
		}
		if len(hosts) == 0 {
			return nil, fmt.Errorf("placement: no replicas for %q", doc)
		}
		p[doc] = hosts
	}
	return p, nil
}

// peersForDoc is the per-document replica set advertised to clients (on doc
// responses and every heartbeat ack): the other servers holding doc, so a
// mid-lesson failover lands on a replica that can actually serve it. Without
// a directory entry it degrades to the static peer list.
func (s *Server) peersForDoc(doc string) []string {
	if dir := s.opts.Directory; dir != nil && doc != "" {
		if reps := dir.Replicas(doc); len(reps) > 0 {
			out := make([]string, 0, len(reps))
			for _, r := range reps {
				if r != s.Name {
					out = append(out, r)
				}
			}
			if len(out) > 0 {
				return out
			}
		}
	}
	return s.peerList()
}

// overWatermark reports whether this server should shed fresh admissions,
// per the configured reserved-bandwidth and session-count watermarks.
func (s *Server) overWatermark() (string, bool) {
	if s.adm.OverWatermark(s.opts.RedirectWatermark) {
		return fmt.Sprintf("reserved bandwidth over %.0f%% watermark",
			s.opts.RedirectWatermark*100), true
	}
	if s.opts.SessionWatermark > 0 && int(s.sessionCount.Load()) >= s.opts.SessionWatermark {
		return fmt.Sprintf("session count at watermark (%d)", s.opts.SessionWatermark), true
	}
	return "", false
}

// redirectTargets orders candidate servers for an admission redirect,
// least-loaded first. candidates may be nil (use the full peer list). Peers
// with unobservable load keep their given order after the observable ones;
// peers known to be at least as loaded as this server are dropped, so a
// redirect storm converges instead of ping-ponging between full servers.
func (s *Server) redirectTargets(candidates []string) []string {
	if candidates == nil {
		candidates = s.peerList()
	}
	dir := s.opts.Directory
	if dir == nil {
		return candidates
	}
	self := s.adm.Utilization()
	type cand struct {
		host  string
		load  float64
		known bool
	}
	ordered := make([]cand, 0, len(candidates))
	for _, h := range candidates {
		if h == s.Name {
			continue
		}
		load, known := dir.PeerLoad(h)
		if known && load >= self && self > 0 {
			continue
		}
		ordered = append(ordered, cand{host: h, load: load, known: known})
	}
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].known != ordered[j].known {
			return ordered[i].known
		}
		return ordered[i].load < ordered[j].load
	})
	out := make([]string, len(ordered))
	for i, c := range ordered {
		out[i] = c.host
	}
	return out
}

// issueHandoff answers a DocRequest for a document homed elsewhere: it
// suspends the session here behind the existing grace machinery (so the
// client can fall back if every replica is down), mints a signed handoff
// ticket bound to user+document, and points the client at the least-loaded
// replica. Caller holds sh.mu; it is released here before the reply.
func (s *Server) issueHandoff(sh *ctrlShard, sess *session, from netsim.Addr, reqID uint32, doc string, holders []string) {
	tok := s.suspendSessionLocked(sh, sess)
	user, class := sess.user, sess.class
	sh.mu.Unlock()

	targets := s.redirectTargets(holders)
	if len(targets) == 0 {
		targets = holders
	}
	target := targets[0]
	res := protocol.DocResponse{
		OK:          false,
		Name:        doc,
		Redirect:    target,
		Peers:       holders,
		ResumeToken: tok,
		GraceSecs:   int(s.opts.Grace.Seconds()),
		Reason:      "document homed on " + target,
	}
	if len(s.opts.ClusterKey) > 0 {
		t := &protocol.HandoffTicket{
			User: user, Class: class, Doc: doc,
			From: s.Name, Target: target,
			ExpiresUnixMilli: s.clk.Now().Add(s.opts.Grace).UnixMilli(),
		}
		t.Sign(s.opts.ClusterKey)
		res.Handoff = t
	}
	s.cHandoffs.Inc()
	s.opts.Obs.Emit(obs.EvHandoff, user, 0, "handoff of "+doc+" → "+target)
	s.replyReq(from, reqID, protocol.MsgDocResponse, res)
}

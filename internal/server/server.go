package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/qos"
	"repro/internal/stats"
)

// ControlPort is the well-known control port of every multimedia server.
const ControlPort = 5000

// mediaPort is the source port media senders transmit from.
const mediaPort = 5001

// Options tunes a server.
type Options struct {
	// Capacity is the outbound bandwidth for admission control (bits/s).
	Capacity float64
	// Grace is how long a suspended connection is kept alive.
	Grace time.Duration
	// PreRoll is the flow scheduler's transmission lead over playout
	// deadlines (fills the client's media time window).
	PreRoll time.Duration
	// Policy is the QoS grading policy.
	Policy qos.Policy
	// DisableGrading turns the long-term quality adaptation off (the E3
	// ablation baseline).
	DisableGrading bool
	// HeartbeatEvery is the expected client heartbeat period; the liveness
	// sweep runs at this cadence.
	HeartbeatEvery time.Duration
	// LivenessMisses is how many consecutive missed heartbeats declare a
	// client dead and auto-suspend its session (the grace timer then runs
	// as for a voluntary suspend). Liveness is only enforced on sessions
	// that have sent at least one heartbeat.
	LivenessMisses int
	// Obs, when set, receives session/grading/admission telemetry and
	// serves the control-protocol stats snapshot.
	Obs *obs.Scope

	// SharedFlows enables the fan-out layer: sessions requesting the same
	// document attach as subscribers to one paced flow per time-sensitive
	// stream — one encode and one packet assembly per frame regardless of
	// the audience size (see sharedflow.go). Off by default: every session
	// gets private senders, the pre-fan-out behavior.
	SharedFlows bool

	// Directory, when set, is the cluster's placement/load view: it makes
	// the advertised peer set per-document, lets doc requests for documents
	// homed elsewhere answer with a handoff instead of "not found", and
	// informs redirect target ordering. Nil means standalone operation.
	Directory Directory
	// RedirectWatermark, as a fraction of Capacity (e.g. 0.8), makes the
	// server answer fresh Connects with an in-protocol redirect to its
	// less-loaded peers once reserved bandwidth reaches the watermark.
	// Zero disables bandwidth-watermark redirects.
	RedirectWatermark float64
	// SessionWatermark redirects fresh Connects once this many sessions
	// are resident. Zero disables session-count redirects.
	SessionWatermark int
	// ClusterKey is the shared HMAC key signing cross-server handoff
	// tickets. Empty disables ticket minting (handoffs degrade to a plain
	// redirect + credentialed reconnect).
	ClusterKey []byte
}

func (o *Options) fill() {
	if o.Capacity <= 0 {
		o.Capacity = 10_000_000
	}
	if o.Grace <= 0 {
		o.Grace = 30 * time.Second
	}
	if o.PreRoll <= 0 {
		o.PreRoll = 2 * time.Second
	}
	if o.Policy.Alpha == 0 {
		o.Policy = qos.DefaultPolicy()
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = time.Second
	}
	if o.LivenessMisses <= 0 {
		o.LivenessMisses = 3
	}
}

// Server is one multimedia server node. Session and dedup state is split
// across address-hashed shards (see shard.go for the layout and the lock
// order); everything else sits behind small dedicated leaf locks.
type Server struct {
	// Name is the server's host name on the network.
	Name string

	clk   clock.Clock
	net   netsim.Net
	db    *Database
	users *auth.DB
	adm   *qos.Admission
	opts  Options

	shards [ctrlShards]ctrlShard

	// sessionCount mirrors the total resident sessions across shards so
	// Sessions() and the sessions gauge never touch a shard lock.
	sessionCount atomic.Int64
	nextID       atomic.Int64
	nextSSRC     atomic.Uint32

	peersMu sync.RWMutex
	peers   []string // other servers' host names for federated search

	searchMu  sync.Mutex
	nextQuery int
	searches  map[int]*pendingSearch

	// annotations holds user remarks per document name ("the user may
	// also annotate the selected document with his own remarks").
	annMu       sync.Mutex
	annotations map[string][]protocol.AnnotationRecord

	// Data-plane counters, resolved once at construction so the per-frame
	// emit path increments atomics directly instead of doing a registry
	// lookup per frame (shared no-ops when telemetry is off). mFrames counts
	// ENCODES (one per flow frame however many subscribers it fans to);
	// mDelivered counts per-subscriber frame deliveries, so the two diverge
	// exactly by the fan-out factor.
	mFrames    *stats.Counter
	mPackets   *stats.Counter
	mBytes     *stats.Counter
	mDelivered *stats.Counter

	// Shared-flow state: the live flow registry, the cached multi-send
	// assertion (nil when the transport lacks one — sendMedia then loops),
	// and the flow lifecycle counters.
	flows         flowRegistry
	multi         netsim.MultiSender
	cFlowsCreated *stats.Counter
	cFlowsTorn    *stats.Counter
	cFlowAttaches *stats.Counter
	cFlowDetaches *stats.Counter
	cFlowCatchup  *stats.Counter

	// Latency-span instruments, likewise resolved once (shared no-ops when
	// telemetry is off): sampled frame spans for the emit→wire hop, the
	// control-dispatch service time, and the sweep-tick wall durations.
	spans      *obs.FrameSpans
	hHandle    *stats.DurationHistogram
	hLiveTick  *stats.DurationHistogram
	hDedupTick *stats.DurationHistogram

	// Cluster counters, resolved once: admission redirects issued, handoff
	// tickets minted, and handoff tickets accepted from peers.
	cRedirects      *stats.Counter
	cHandoffs       *stats.Counter
	cHandoffAccepts *stats.Counter
}

// session is one client's server-side state.
type session struct {
	id   string
	user string
	// class is the user's pricing contract, kept so a cross-server handoff
	// ticket can carry it without a subscriber-database lookup.
	class       qos.PricingClass
	client      netsim.Addr
	connID      int
	floorLevel  int
	qosMgr      *qos.Manager
	senders     map[string]*sender
	ssrcToID    map[uint32]string
	doc         string
	suspended   bool
	resumeToken string
	graceTimer  *clock.Timer
	srTimer     *clock.Timer
	flowOrigin  time.Time
	startedAt   time.Time
	// lastBeat is the arrival time of the client's latest heartbeat (zero
	// until the first one: such sessions are exempt from the liveness
	// sweep).
	lastBeat time.Time

	// shard is the index of the ctrlShard currently holding the session;
	// it changes only under both the old and the new shard's lock (see
	// lockSession). lwPos is the session's slot on that shard's liveness
	// wheel; renegQueued dedups the shard's renegotiation batch.
	shard       atomic.Int32
	lwPos       wheelPos
	renegQueued atomic.Bool
}

type pendingSearch struct {
	client  netsim.Addr
	reqID   uint32
	hits    []protocol.TopicInfo
	waiting int
	timer   *clock.Timer
}

// New creates a server and registers its control listener on the network.
// It fails when the network cannot bind the server's control address (only
// possible on the live transport).
func New(name string, clk clock.Clock, net netsim.Net, users *auth.DB, db *Database, opts Options) (*Server, error) {
	opts.fill()
	s := &Server{
		Name:        name,
		clk:         clk,
		net:         net,
		db:          db,
		users:       users,
		adm:         qos.NewAdmission(opts.Capacity),
		opts:        opts,
		searches:    map[int]*pendingSearch{},
		annotations: map[string][]protocol.AnnotationRecord{},
	}
	s.nextSSRC.Store(1000)
	now := clk.Now()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.sessions = map[string]*session{}
		sh.byToken = map[string]*session{}
		sh.byID = map[string]*session{}
		sh.dedup = map[string]*dedupRing{}
		// Liveness deadlines span the miss window; ring TTLs span dedupTTL.
		// Bucket counts cover each wheel's horizon with one slot of slack
		// (the wrap-around re-check in advance handles anything longer).
		sh.live = newWheel(now, opts.HeartbeatEvery, opts.LivenessMisses+2,
			func(sess *session) *wheelPos { return &sess.lwPos })
		sh.rings = newWheel(now, dedupTTL/2, 4,
			func(r *dedupRing) *wheelPos { return &r.pos })
	}
	s.adm.SetObs(opts.Obs)
	s.mFrames = opts.Obs.Counter("server_media_frames_sent")
	s.mPackets = opts.Obs.Counter("server_media_packets_sent")
	s.mBytes = opts.Obs.Counter("server_media_bytes_sent")
	s.mDelivered = opts.Obs.Counter("server_media_frames_delivered")
	s.cFlowsCreated = opts.Obs.Counter("server_flows_created")
	s.cFlowsTorn = opts.Obs.Counter("server_flows_torn_down")
	s.cFlowAttaches = opts.Obs.Counter("server_flow_attaches")
	s.cFlowDetaches = opts.Obs.Counter("server_flow_detaches")
	s.cFlowCatchup = opts.Obs.Counter("server_flow_catchup_frames")
	s.multi, _ = net.(netsim.MultiSender)
	s.spans = opts.Obs.FrameSpans()
	s.hHandle = opts.Obs.HistogramBounds("server_ctrl_handle", stats.MicroLatencyBounds()...)
	s.hLiveTick = opts.Obs.HistogramBounds("server_sweep_live_tick", stats.MicroLatencyBounds()...)
	s.hDedupTick = opts.Obs.HistogramBounds("server_sweep_dedup_tick", stats.MicroLatencyBounds()...)
	s.cRedirects = opts.Obs.Counter("cluster_redirects")
	s.cHandoffs = opts.Obs.Counter("cluster_handoffs")
	s.cHandoffAccepts = opts.Obs.Counter("cluster_handoff_accepts")
	for i := range s.shards {
		s.shards[i].mu.hWait = opts.Obs.HistogramBounds(
			obs.Label("server_lock_wait", "shard", fmt.Sprintf("%02d", i)),
			stats.MicroLatencyBounds()...)
	}
	if err := net.Listen(s.ctrlAddr(), s.handle); err != nil {
		return nil, fmt.Errorf("server %s: %w", name, err)
	}
	return s, nil
}

func (s *Server) ctrlAddr() netsim.Addr { return netsim.MakeAddr(s.Name, ControlPort) }

// SetPeers configures the other servers for federated search.
func (s *Server) SetPeers(names []string) {
	s.peersMu.Lock()
	defer s.peersMu.Unlock()
	s.peers = append([]string(nil), names...)
}

// peerList snapshots the federated-search peer set.
func (s *Server) peerList() []string {
	s.peersMu.RLock()
	defer s.peersMu.RUnlock()
	return append([]string(nil), s.peers...)
}

// Database exposes the server's document store.
func (s *Server) Database() *Database { return s.db }

// Admission exposes the admission controller (for experiments).
func (s *Server) Admission() *qos.Admission { return s.adm }

// reply sends a fire-and-forget control message (request ID 0).
func (s *Server) reply(to netsim.Addr, t protocol.MsgType, body interface{}) {
	s.replyReq(to, 0, t, body)
}

// replyReq answers a request, echoing its request ID and caching the
// encoded reply for idempotent retransmission handling.
func (s *Server) replyReq(to netsim.Addr, reqID uint32, t protocol.MsgType, body interface{}) {
	frame := protocol.MustEncodeReq(t, reqID, body)
	if reqID != 0 {
		si := shardIndex(string(to))
		sh := &s.shards[si]
		sh.dmu.Lock()
		s.dedupRingLocked(sh, si, string(to)).put(reqID, frame)
		sh.dmu.Unlock()
	}
	s.sendCtrl(to, frame)
}

// sendCtrl puts one control frame on the wire, making transport refusals
// visible instead of silently losing replies.
func (s *Server) sendCtrl(to netsim.Addr, frame []byte) {
	err := s.net.Send(netsim.Packet{
		From:     s.ctrlAddr(),
		To:       to,
		Payload:  frame,
		Reliable: true,
	})
	if err != nil {
		s.opts.Obs.Counter("server_reply_send_failures").Inc()
		s.opts.Obs.Emit(obs.EvSendFailure, string(to), 0, "control send failed: "+err.Error())
	}
}

// onStats answers a sessionless telemetry snapshot request: the registry's
// sorted metric points plus the shape of the trace ring. With telemetry
// off it answers OK with no metrics, so monitoring tools can distinguish
// "off" from "unreachable".
func (s *Server) onStats(from netsim.Addr, reqID uint32) {
	res := protocol.StatsResult{OK: true, Server: s.Name}
	if sc := s.opts.Obs; sc.Enabled() {
		res.Metrics = sc.Registry().Snapshot()
		res.TraceEvents = sc.Trace().Len()
		res.TraceDropped = sc.Trace().Dropped()
	}
	s.replyReq(from, reqID, protocol.MsgStatsResult, res)
}

func (s *Server) onSubscribe(from netsim.Addr, reqID uint32, m protocol.SubscriptionForm) {
	err := s.users.Subscribe(auth.User{
		Name: m.User, Password: m.Password, RealName: m.RealName,
		Address: m.Address, Email: m.Email, Phone: m.Phone, Class: m.Class,
	}, s.clk.Now())
	res := protocol.SubscribeResult{OK: err == nil}
	if err != nil {
		res.Reason = err.Error()
	}
	s.replyReq(from, reqID, protocol.MsgSubscribeResult, res)
}

func (s *Server) onSearch(from netsim.Addr, reqID uint32, m protocol.Search) {
	local := s.db.Search(m.Token, s.Name)
	if m.NoForward {
		// Fan-out query from a peer server: answer directly.
		s.replyReq(from, reqID, protocol.MsgSearchResult, protocol.SearchResult{
			SearchID: m.SearchID, Hits: local,
		})
		return
	}
	peers := s.peerList()
	if len(peers) == 0 {
		s.replyReq(from, reqID, protocol.MsgSearchResult, protocol.SearchResult{Hits: local})
		return
	}
	s.searchMu.Lock()
	s.nextQuery++
	qid := s.nextQuery
	ps := &pendingSearch{client: from, reqID: reqID, hits: local, waiting: len(peers)}
	s.searches[qid] = ps
	// Safety timeout: answer with whatever arrived.
	ps.timer = s.clk.AfterFunc(2*time.Second, func() { s.finishSearch(qid) })
	s.searchMu.Unlock()
	for _, p := range peers {
		s.net.Send(netsim.Packet{
			From: s.ctrlAddr(),
			To:   netsim.MakeAddr(p, ControlPort),
			Payload: protocol.MustEncode(protocol.MsgSearch, protocol.Search{
				Token: m.Token, NoForward: true, SearchID: qid,
			}),
			Reliable: true,
		})
	}
}

func (s *Server) onSearchResult(m protocol.SearchResult) {
	s.searchMu.Lock()
	ps, ok := s.searches[m.SearchID]
	if !ok {
		s.searchMu.Unlock()
		return
	}
	ps.hits = append(ps.hits, m.Hits...)
	ps.waiting--
	done := ps.waiting == 0
	s.searchMu.Unlock()
	if done {
		s.finishSearch(m.SearchID)
	}
}

func (s *Server) finishSearch(qid int) {
	s.searchMu.Lock()
	ps, ok := s.searches[qid]
	if !ok {
		s.searchMu.Unlock()
		return
	}
	delete(s.searches, qid)
	if ps.timer != nil {
		ps.timer.Stop()
	}
	hits := ps.hits
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Server != hits[j].Server {
			return hits[i].Server < hits[j].Server
		}
		return hits[i].Name < hits[j].Name
	})
	client := ps.client
	s.searchMu.Unlock()
	s.replyReq(client, ps.reqID, protocol.MsgSearchResult, protocol.SearchResult{Hits: hits})
}

func (s *Server) onAnnotate(from netsim.Addr, m protocol.Annotate) {
	sh := s.shardOf(string(from))
	sh.mu.Lock()
	sess, ok := sh.sessions[string(from)]
	if !ok {
		sh.mu.Unlock()
		return
	}
	doc := sess.doc
	user := sess.user
	sh.mu.Unlock()
	s.annMu.Lock()
	s.annotations[doc] = append(s.annotations[doc], protocol.AnnotationRecord{
		User: user, Text: m.Text, AtUnixMilli: s.clk.Now().UnixMilli(),
	})
	s.annMu.Unlock()
	s.users.LogRetrieval(user, fmt.Sprintf("annotate %s: %s", doc, m.Text), s.clk.Now())
}

// onListAnnotations returns the remarks stored for a document.
func (s *Server) onListAnnotations(from netsim.Addr, reqID uint32, m protocol.ListAnnotations) {
	doc := m.Doc
	if doc == "" {
		sh := s.shardOf(string(from))
		sh.mu.RLock()
		if sess, ok := sh.sessions[string(from)]; ok {
			doc = sess.doc
		}
		sh.mu.RUnlock()
	}
	s.annMu.Lock()
	recs := append([]protocol.AnnotationRecord(nil), s.annotations[doc]...)
	s.annMu.Unlock()
	s.replyReq(from, reqID, protocol.MsgAnnotations, protocol.Annotations{Doc: doc, Records: recs})
}

func minInt(a, b int) int {
	if a <= 0 {
		return b
	}
	if a < b {
		return a
	}
	return b
}
